/**
 * @file
 * Multi-tenant co-run subsystem tests: tenant-spec parsing, QoS math,
 * co-run determinism (rerun digests, single-tenant == legacy),
 * scheduler policy behavior, and the cross-tenant arena-ownership
 * audit (corruption injection must be detected).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "alloc/affinity_alloc.hh"
#include "nsc/machine.hh"
#include "os/sim_os.hh"
#include "sim/log.hh"
#include "sim/rng.hh"
#include "tenant/qos.hh"
#include "tenant/scheduler.hh"
#include "tenant/workload_registry.hh"
#include "workloads/run_context.hh"

using namespace affalloc;
using namespace affalloc::tenant;

// ------------------------------------------------------------- specs

TEST(TenantSpecs, ParseGrammar)
{
    const auto specs = parseTenantSpecs("hotspot:2:3,srad");
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0].workload, "hotspot");
    EXPECT_EQ(specs[0].weight, 3u);
    EXPECT_EQ(specs[1].workload, "hotspot");
    EXPECT_EQ(specs[1].weight, 3u);
    EXPECT_EQ(specs[2].workload, "srad");
    EXPECT_EQ(specs[2].weight, 1u);
}

TEST(TenantSpecs, ParseDefaults)
{
    const auto specs = parseTenantSpecs("bfs");
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].workload, "bfs");
    EXPECT_EQ(specs[0].weight, 1u);
}

TEST(TenantSpecs, RejectsUnknownWorkload)
{
    EXPECT_THROW(parseTenantSpecs("bogus:2"), FatalError);
    EXPECT_THROW(parseTenantSpecs(""), FatalError);
    EXPECT_THROW(parseTenantSpecs("hotspot:0"), FatalError);
}

TEST(TenantSpecs, RegistryCoversTableThreeClasses)
{
    const auto &names = workloadNames();
    EXPECT_GE(names.size(), 10u);
    for (const char *expect :
         {"vecadd", "hotspot", "bfs", "sssp", "hash_join", "bin_tree"})
        EXPECT_TRUE(isWorkloadName(expect)) << expect;
    EXPECT_FALSE(isWorkloadName("bogus"));
    EXPECT_THROW(workloadRunner("bogus"), FatalError);
}

// --------------------------------------------------------------- qos

TEST(Qos, JainFairnessBounds)
{
    EXPECT_DOUBLE_EQ(jainFairness({}), 1.0);
    EXPECT_DOUBLE_EQ(jainFairness({0.7}), 1.0);
    EXPECT_DOUBLE_EQ(jainFairness({0.5, 0.5, 0.5}), 1.0);
    // One tenant monopolizing -> 1/n.
    EXPECT_NEAR(jainFairness({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
    const double mixed = jainFairness({1.0, 0.5});
    EXPECT_GT(mixed, 0.5);
    EXPECT_LT(mixed, 1.0);
}

TEST(Qos, ComputeQosFillsAggregates)
{
    CorunReport r;
    r.tenants.resize(2);
    r.tenants[0].soloCycles = 100;
    r.tenants[0].finishCycle = 200;
    r.tenants[1].soloCycles = 100;
    r.tenants[1].finishCycle = 400;
    computeQos(r);
    EXPECT_DOUBLE_EQ(r.tenants[0].slowdown, 2.0);
    EXPECT_DOUBLE_EQ(r.tenants[1].slowdown, 4.0);
    EXPECT_DOUBLE_EQ(r.weightedSpeedup, 0.75);
    EXPECT_GT(r.fairness, 0.5);
    EXPECT_LT(r.fairness, 1.0);
}

TEST(Qos, ComputeQosSkipsTenantsWithoutBaseline)
{
    CorunReport r;
    r.tenants.resize(1);
    r.tenants[0].soloCycles = 0;
    r.tenants[0].finishCycle = 500;
    computeQos(r);
    EXPECT_DOUBLE_EQ(r.tenants[0].slowdown, 0.0);
    EXPECT_DOUBLE_EQ(r.weightedSpeedup, 0.0);
    EXPECT_DOUBLE_EQ(r.fairness, 1.0);
}

// ------------------------------------------------------- determinism

namespace
{

CorunOptions
quickOpts(SchedPolicy policy = SchedPolicy::roundRobin)
{
    CorunOptions opts;
    opts.quick = true;
    opts.solo = false; // baselines not needed for digest tests
    opts.policy = policy;
    return opts;
}

} // namespace

TEST(Corun, RerunDigestsAreIdentical)
{
    const std::vector<TenantSpec> specs = {{"hotspot", 1}, {"vecadd", 1}};
    const CorunReport a = runCorun(specs, quickOpts());
    const CorunReport b = runCorun(specs, quickOpts());
    EXPECT_TRUE(a.allValid);
    EXPECT_EQ(a.digest(), b.digest());
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (std::size_t i = 0; i < a.tenants.size(); ++i) {
        EXPECT_EQ(a.tenants[i].finishCycle, b.tenants[i].finishCycle);
        EXPECT_EQ(a.tenants[i].epochs, b.tenants[i].epochs);
        EXPECT_EQ(a.tenants[i].run.digest(), b.tenants[i].run.digest());
    }
}

TEST(Corun, SingleTenantMatchesLegacyRun)
{
    // A co-run of one tenant must be byte-identical to the classic
    // whole-machine run: arena 0 keeps the legacy address layout, the
    // load board mirrors the lone allocator's own counters, and stream
    // 0 of the root seed *is* the root seed.
    const CorunOptions opts = quickOpts();
    const CorunReport corun = runCorun({{"hotspot", 1}}, opts);
    ASSERT_EQ(corun.tenants.size(), 1u);

    workloads::RunConfig rc;
    rc.mode = opts.mode;
    rc.allocOpts = opts.allocOpts;
    rc.allocOpts.seed = Rng::substreamSeed(opts.seed, 0);
    rc.heapPolicy = opts.heapPolicy;
    rc.machine = opts.machine;
    workloads::RunContext ctx(rc);
    const workloads::RunResult legacy =
        workloadRunner("hotspot")(ctx, opts.seed, /*quick=*/true);

    EXPECT_TRUE(legacy.valid);
    EXPECT_TRUE(corun.tenants[0].run.valid);
    EXPECT_EQ(corun.tenants[0].run.digest(), legacy.digest());
    EXPECT_EQ(corun.tenants[0].run.stats.cycles, legacy.stats.cycles);
    EXPECT_EQ(corun.tenants[0].finishCycle, legacy.stats.cycles);
    EXPECT_EQ(corun.makespan, legacy.stats.cycles);
}

TEST(Corun, WeightedPolicyFavorsHeavyTenant)
{
    // Two identical workloads, weights 1 and 2, tiny quantum: under
    // round-robin the first tenant finishes first (it is granted
    // first); under the weighted policy the heavy tenant gets doubled
    // quanta and overtakes it.
    const std::vector<TenantSpec> specs = {{"hotspot", 1}, {"hotspot", 2}};

    CorunOptions rr = quickOpts(SchedPolicy::roundRobin);
    rr.quantumEpochs = 2;
    const CorunReport rrRep = runCorun(specs, rr);

    CorunOptions w = quickOpts(SchedPolicy::weighted);
    w.quantumEpochs = 2;
    const CorunReport wRep = runCorun(specs, w);

    ASSERT_EQ(rrRep.tenants.size(), 2u);
    ASSERT_EQ(wRep.tenants.size(), 2u);
    EXPECT_LT(rrRep.tenants[0].finishCycle, rrRep.tenants[1].finishCycle);
    EXPECT_LT(wRep.tenants[1].finishCycle, wRep.tenants[0].finishCycle);
    // The heavy tenant finishes strictly earlier than it does under
    // round-robin; total service is unchanged either way.
    EXPECT_LT(wRep.tenants[1].finishCycle, rrRep.tenants[1].finishCycle);
    EXPECT_EQ(rrRep.tenants[0].epochs + rrRep.tenants[1].epochs,
              wRep.tenants[0].epochs + wRep.tenants[1].epochs);
}

TEST(Corun, StatsAttributionSumsToMachineTotal)
{
    // Attributed per-tenant cycles partition the shared clock: the
    // makespan equals the sum of the per-tenant service cycles.
    const CorunReport rep =
        runCorun({{"hotspot", 1}, {"srad", 1}}, quickOpts());
    Cycles service = 0;
    for (const auto &t : rep.tenants)
        service += t.run.stats.cycles;
    EXPECT_EQ(service, rep.makespan);
}

TEST(Corun, SoloBaselinesFillQos)
{
    CorunOptions opts = quickOpts();
    opts.solo = true;
    const CorunReport rep =
        runCorun({{"hotspot", 1}, {"hotspot", 1}}, opts);
    for (const auto &t : rep.tenants) {
        EXPECT_GT(t.soloCycles, 0u);
        EXPECT_GE(t.slowdown, 1.0);
    }
    // Two identical tenants, quantum >= workload epochs: the first
    // finishes at solo speed, the second after both ran — slowdowns
    // {1, 2}, so STP = 1.5 and Jain fairness = 0.9 exactly.
    EXPECT_NEAR(rep.tenants[0].slowdown, 1.0, 1e-9);
    EXPECT_NEAR(rep.tenants[1].slowdown, 2.0, 1e-9);
    EXPECT_NEAR(rep.weightedSpeedup, 1.5, 1e-9);
    EXPECT_NEAR(rep.fairness, 0.9, 1e-9);
}

// -------------------------------------------------- cross-tenant audit

TEST(CorunAudit, ForeignArenaSlotIsDetected)
{
    sim::MachineConfig cfg;
    os::SimOS os(cfg);
    const std::uint32_t arenaB = os.createArena();
    ASSERT_EQ(arenaB, 1u);
    nsc::Machine machine(cfg, os);

    alloc::AllocatorOptions optsB;
    optsB.arena = arenaB;
    alloc::AffinityAllocator allocB(machine, optsB);

    // Clean allocator: no violations.
    EXPECT_TRUE(machine.auditor().collect().empty());

    // Plant a free slot whose simulated address sits inside arena 0's
    // slice of pool 0 — tenant B holding tenant A's memory.
    std::uint64_t backing = 0;
    allocB.adoptFreeSlotForTest(0, 0, &backing,
                                os.poolVirtBaseOf(0, 0));
    const auto violations = machine.auditor().collect();
    ASSERT_FALSE(violations.empty());
    bool found = false;
    for (const auto &v : violations)
        found = found || v.message.find("cross-tenant") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(CorunAudit, OwnArenaSlotOutOfRangeStillCaught)
{
    // The arena check must not mask the existing range check: a slot
    // in this allocator's own arena but beyond the pool's bump pointer
    // is still a violation.
    sim::MachineConfig cfg;
    os::SimOS os(cfg);
    nsc::Machine machine(cfg, os);
    alloc::AffinityAllocator alloc0(machine, {});

    std::uint64_t backing = 0;
    alloc0.adoptFreeSlotForTest(0, 0, &backing,
                                os.poolVirtBaseOf(0, 0));
    const auto violations = machine.auditor().collect();
    ASSERT_FALSE(violations.empty());
    bool found = false;
    for (const auto &v : violations)
        found = found ||
                v.message.find("outside the pool") != std::string::npos;
    EXPECT_TRUE(found);
}
