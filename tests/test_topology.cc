#include <gtest/gtest.h>

#include "noc/topology.hh"
#include "sim/log.hh"

using namespace affalloc;
using noc::Direction;
using noc::Mesh;

TEST(Topology, CoordinatesRowMajor)
{
    Mesh m(8, 8);
    EXPECT_EQ(m.numTiles(), 64u);
    EXPECT_EQ(m.xOf(0), 0u);
    EXPECT_EQ(m.yOf(0), 0u);
    EXPECT_EQ(m.xOf(9), 1u);
    EXPECT_EQ(m.yOf(9), 1u);
    EXPECT_EQ(m.tileAt(7, 7), 63u);
}

TEST(Topology, ManhattanDistance)
{
    Mesh m(8, 8);
    EXPECT_EQ(m.distance(0, 0), 0u);
    EXPECT_EQ(m.distance(0, 7), 7u);
    EXPECT_EQ(m.distance(0, 63), 14u);
    EXPECT_EQ(m.distance(63, 0), 14u);
    EXPECT_EQ(m.distance(9, 18), 2u);
}

TEST(Topology, RouteLengthEqualsDistance)
{
    Mesh m(8, 8);
    for (TileId a : {0u, 5u, 27u, 63u}) {
        for (TileId b : {0u, 9u, 33u, 62u}) {
            std::vector<noc::LinkId> links;
            m.route(a, b, links);
            EXPECT_EQ(links.size(), m.distance(a, b));
        }
    }
}

TEST(Topology, XYRoutingGoesXFirst)
{
    Mesh m(8, 8);
    std::vector<noc::LinkId> links;
    m.route(m.tileAt(0, 0), m.tileAt(2, 2), links);
    ASSERT_EQ(links.size(), 4u);
    // First two hops must be eastward from (0,0) then (1,0).
    EXPECT_EQ(links[0], Mesh::linkOf(m.tileAt(0, 0), Direction::east));
    EXPECT_EQ(links[1], Mesh::linkOf(m.tileAt(1, 0), Direction::east));
    EXPECT_EQ(links[2], Mesh::linkOf(m.tileAt(2, 0), Direction::south));
    EXPECT_EQ(links[3], Mesh::linkOf(m.tileAt(2, 1), Direction::south));
}

TEST(Topology, SelfRouteIsEmpty)
{
    Mesh m(4, 4);
    std::vector<noc::LinkId> links;
    m.route(5, 5, links);
    EXPECT_TRUE(links.empty());
}

TEST(Topology, CornerTiles)
{
    Mesh m(8, 8);
    const auto corners = m.cornerTiles();
    ASSERT_EQ(corners.size(), 4u);
    EXPECT_EQ(corners[0], 0u);
    EXPECT_EQ(corners[1], 7u);
    EXPECT_EQ(corners[2], 56u);
    EXPECT_EQ(corners[3], 63u);
}

TEST(Topology, AverageDistanceCenterBeatsCorner)
{
    Mesh m(8, 8);
    EXPECT_LT(m.averageDistanceFrom(m.tileAt(3, 3)),
              m.averageDistanceFrom(m.tileAt(0, 0)));
}

TEST(Topology, RejectsDegenerateMesh)
{
    EXPECT_THROW(Mesh(0, 4), FatalError);
}

TEST(Topology, RouteRejectsOutOfRange)
{
    Mesh m(2, 2);
    std::vector<noc::LinkId> links;
    EXPECT_THROW(m.route(0, 99, links), PanicError);
}

TEST(Topology, NonSquareMesh)
{
    Mesh m(4, 2);
    EXPECT_EQ(m.numTiles(), 8u);
    EXPECT_EQ(m.distance(0, 7), 4u);
}
