#include <gtest/gtest.h>

#include "sim/energy.hh"

using namespace affalloc;
using sim::EnergyModel;
using sim::EnergyParams;
using sim::MachineConfig;
using sim::Stats;

TEST(Energy, ZeroStatsZeroEnergy)
{
    MachineConfig cfg;
    EnergyModel model(cfg);
    EXPECT_DOUBLE_EQ(model.totalJoules(Stats{}), 0.0);
}

TEST(Energy, DynamicScalesWithEvents)
{
    MachineConfig cfg;
    EnergyModel model(cfg);
    Stats a;
    a.l3Accesses = 1000;
    Stats b;
    b.l3Accesses = 2000;
    EXPECT_DOUBLE_EQ(model.dynamicJoules(b), 2.0 * model.dynamicJoules(a));
}

TEST(Energy, StaticScalesWithCycles)
{
    MachineConfig cfg;
    EnergyModel model(cfg);
    Stats s;
    s.cycles = 2'000'000'000; // one second at 2 GHz
    EXPECT_NEAR(model.staticJoules(s), model.params().staticWatts, 1e-9);
}

TEST(Energy, SeOpsCheaperThanCoreOps)
{
    MachineConfig cfg;
    EnergyModel model(cfg);
    Stats core;
    core.coreOps = 1'000'000;
    Stats se;
    se.seOps = 1'000'000;
    EXPECT_GT(model.dynamicJoules(core), model.dynamicJoules(se));
}

TEST(Energy, NocEnergyCountsFlitHops)
{
    MachineConfig cfg;
    EnergyParams p;
    p.nocFlitHopPj = 100.0;
    EnergyModel model(cfg, p);
    Stats s;
    s.flitHops[int(TrafficClass::data)] = 10;
    EXPECT_NEAR(model.dynamicJoules(s), 1000e-12, 1e-18);
}

TEST(Energy, TotalIsDynamicPlusStatic)
{
    MachineConfig cfg;
    EnergyModel model(cfg);
    Stats s;
    s.cycles = 1000;
    s.dramBytes = 640;
    EXPECT_DOUBLE_EQ(model.totalJoules(s),
                     model.dynamicJoules(s) + model.staticJoules(s));
}
