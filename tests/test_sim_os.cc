#include <gtest/gtest.h>

#include "mem/bank_mapper.hh"
#include "os/sim_os.hh"
#include "sim/log.hh"

using namespace affalloc;
using os::PagePolicy;
using os::SimOS;
using sim::MachineConfig;

TEST(SimOs, HeapAllocBacksPages)
{
    MachineConfig cfg;
    SimOS os(cfg);
    const Addr a = os.heapAlloc(10000);
    EXPECT_EQ(a, mem::heapVirtBase);
    // Pages covering the allocation translate successfully.
    EXPECT_NO_THROW(os.pageTable().translate(a));
    EXPECT_NO_THROW(os.pageTable().translate(a + 9999));
    EXPECT_GE(os.backedPages(), 3u);
}

TEST(SimOs, HeapAllocAlignment)
{
    MachineConfig cfg;
    SimOS os(cfg);
    os.heapAlloc(3);
    const Addr b = os.heapAlloc(8, 4096);
    EXPECT_EQ(b % 4096, 0u);
}

TEST(SimOs, LinearHeapIsPhysicallyContiguous)
{
    MachineConfig cfg;
    SimOS os(cfg, PagePolicy::linear);
    const Addr a = os.heapAlloc(3 * mem::pageSize);
    const Addr p0 = os.pageTable().translate(a);
    const Addr p1 = os.pageTable().translate(a + mem::pageSize);
    EXPECT_EQ(p1, p0 + mem::pageSize);
}

TEST(SimOs, RandomHeapScattersPages)
{
    MachineConfig cfg;
    SimOS os(cfg, PagePolicy::random, 99);
    const Addr a = os.heapAlloc(64 * mem::pageSize);
    int contiguous = 0;
    for (int i = 0; i + 1 < 64; ++i) {
        const Addr p0 = os.pageTable().translate(a + i * mem::pageSize);
        const Addr p1 =
            os.pageTable().translate(a + (i + 1) * mem::pageSize);
        contiguous += (p1 == p0 + mem::pageSize);
    }
    EXPECT_LT(contiguous, 4);
}

TEST(SimOs, PoolExpansionInstallsSingleIotEntry)
{
    MachineConfig cfg;
    SimOS os(cfg);
    os.expandPool(0, 10 * mem::pageSize);
    EXPECT_EQ(os.iot().size(), 1u);
    os.expandPool(0, 100 * mem::pageSize);
    EXPECT_EQ(os.iot().size(), 1u); // grown, not duplicated
    os.expandPool(3, mem::pageSize);
    EXPECT_EQ(os.iot().size(), 2u);
}

TEST(SimOs, PoolBackingIsContiguous)
{
    MachineConfig cfg;
    SimOS os(cfg);
    os.expandPool(2, 8 * mem::pageSize);
    const Addr vbase = os.poolVirtBaseOf(2);
    const Addr p0 = os.pageTable().translate(vbase);
    for (int i = 1; i < 8; ++i) {
        EXPECT_EQ(os.pageTable().translate(vbase + i * mem::pageSize),
                  p0 + Addr(i) * mem::pageSize);
    }
}

TEST(SimOs, PoolAddressesMapToExpectedBanks)
{
    MachineConfig cfg;
    SimOS os(cfg);
    os.expandPool(0, mem::pageSize); // 64 B pool
    mem::BankMapper mapper(cfg, os.iot());
    const Addr vbase = os.poolVirtBaseOf(0);
    for (int i = 0; i < 63; ++i) {
        const Addr p = os.pageTable().translate(vbase + i * 64);
        EXPECT_EQ(mapper.bankOf(p), BankId(i)) << "line " << i;
    }
}

TEST(SimOs, ExpandPoolIdempotent)
{
    MachineConfig cfg;
    SimOS os(cfg);
    const Addr brk1 = os.expandPool(1, 100);
    const Addr brk2 = os.expandPool(1, 50);
    EXPECT_EQ(brk1, brk2);
    EXPECT_EQ(os.poolBrkOf(1), brk1);
}

TEST(SimOs, PagesAtBanksLandOnRequestedBanks)
{
    MachineConfig cfg;
    SimOS os(cfg);
    mem::BankMapper mapper(cfg, os.iot());
    const std::vector<BankId> want = {5, 5, 17, 63, 0};
    const Addr vbase = os.allocPagesAtBanks(want);
    for (std::size_t i = 0; i < want.size(); ++i) {
        const Addr p =
            os.pageTable().translate(vbase + i * mem::pageSize);
        EXPECT_EQ(mapper.bankOf(p), want[i]) << "page " << i;
    }
}

TEST(SimOs, PagesAtBanksKeepOneIotEntry)
{
    MachineConfig cfg;
    SimOS os(cfg);
    os.allocPagesAtBanks({1, 2, 3});
    const auto before = os.iot().size();
    os.allocPagesAtBanks({7, 8});
    EXPECT_EQ(os.iot().size(), before);
}

TEST(SimOs, TopologyReflectsConfig)
{
    MachineConfig cfg;
    SimOS os(cfg);
    const auto topo = os.topology();
    EXPECT_EQ(topo.meshX, 8u);
    EXPECT_EQ(topo.numBanks, 64u);
    EXPECT_EQ(topo.lineSize, 64u);
    ASSERT_EQ(topo.poolInterleavings.size(), 7u);
    EXPECT_EQ(topo.poolInterleavings.front(), 64u);
    EXPECT_EQ(topo.poolInterleavings.back(), 4096u);
}

TEST(SimOs, BadPoolIndexPanics)
{
    MachineConfig cfg;
    SimOS os(cfg);
    EXPECT_THROW(os.expandPool(7, 1), PanicError);
    EXPECT_THROW(os.poolVirtBaseOf(-1), PanicError);
}
