#include <gtest/gtest.h>

#include "graph/generators.hh"
#include "graph/reference.hh"
#include "sim/log.hh"

using namespace affalloc;
using namespace affalloc::graph;

namespace
{

Csr
diamond()
{
    //   0 -> 1 -> 3
    //   0 -> 2 -> 3, weights make 0->2->3 shorter.
    std::vector<Edge> edges = {
        {0, 1, 10}, {1, 3, 10}, {0, 2, 1}, {2, 3, 1}};
    return buildCsr(4, edges, false, true);
}

} // namespace

TEST(Bfs, DepthsOnDiamond)
{
    const auto d = bfsReference(diamond(), 0);
    EXPECT_EQ(d[0], 0);
    EXPECT_EQ(d[1], 1);
    EXPECT_EQ(d[2], 1);
    EXPECT_EQ(d[3], 2);
}

TEST(Bfs, UnreachableMarked)
{
    std::vector<Edge> edges = {{0, 1}};
    const Csr g = buildCsr(3, edges, false, false);
    const auto d = bfsReference(g, 0);
    EXPECT_EQ(d[2], unreachable);
}

TEST(Bfs, BadSourceFatal)
{
    EXPECT_THROW(bfsReference(diamond(), 99), FatalError);
}

TEST(Sssp, PicksShorterWeightedPath)
{
    const auto d = ssspReference(diamond(), 0);
    EXPECT_EQ(d[3], 2); // via 0->2->3
    EXPECT_EQ(d[1], 10);
}

TEST(Sssp, RequiresWeights)
{
    std::vector<Edge> edges = {{0, 1}};
    const Csr g = buildCsr(2, edges, false, false);
    EXPECT_THROW(ssspReference(g, 0), FatalError);
}

TEST(Sssp, AgreesWithBfsOnUnitWeights)
{
    KroneckerParams p;
    p.scale = 10;
    p.edgeFactor = 8;
    p.minWeight = 1;
    p.maxWeight = 1;
    const Csr g = kronecker(p);
    const auto bd = bfsReference(g, 0);
    const auto sd = ssspReference(g, 0);
    for (VertexId v = 0; v < g.numVertices; ++v)
        EXPECT_EQ(bd[v], sd[v]) << "vertex " << v;
}

TEST(PageRank, SumsToOne)
{
    KroneckerParams p;
    p.scale = 10;
    p.edgeFactor = 8;
    const Csr g = kronecker(p);
    const auto pr = pageRankReference(g, 8);
    double sum = 0.0;
    for (double r : pr)
        sum += r;
    // Dangling vertices leak a little mass; tolerance is loose.
    EXPECT_NEAR(sum, 1.0, 0.2);
}

TEST(PageRank, HubsRankHigher)
{
    // Star: everything points at vertex 0.
    std::vector<Edge> edges;
    for (VertexId v = 1; v < 32; ++v)
        edges.push_back({v, 0});
    const Csr g = buildCsr(32, edges, false, false);
    const auto pr = pageRankReference(g, 10);
    for (VertexId v = 1; v < 32; ++v)
        EXPECT_GT(pr[0], pr[v]);
}

TEST(PageRank, DeterministicIterationCount)
{
    KroneckerParams p;
    p.scale = 8;
    p.edgeFactor = 4;
    const Csr g = kronecker(p);
    const auto a = pageRankReference(g, 8);
    const auto b = pageRankReference(g, 8);
    EXPECT_EQ(a, b);
}
