#include <gtest/gtest.h>

#include "mem/dram.hh"

using namespace affalloc;
using mem::Dram;
using noc::Mesh;
using sim::MachineConfig;
using sim::Stats;

namespace
{

struct DramFixture
{
    MachineConfig cfg;
    Stats stats;
    Mesh mesh{8, 8};
    Dram dram{cfg, mesh, stats};
};

} // namespace

TEST(Dram, ControllersSitOnCorners)
{
    DramFixture f;
    EXPECT_EQ(f.dram.controllerTile(0), 0u);
    EXPECT_EQ(f.dram.controllerTile(1), 7u);
    EXPECT_EQ(f.dram.controllerTile(2), 56u);
    EXPECT_EQ(f.dram.controllerTile(3), 63u);
}

TEST(Dram, LinesInterleaveAcrossChannels)
{
    DramFixture f;
    std::array<int, 4> seen{};
    for (Addr line = 0; line < 100; ++line)
        ++seen[f.dram.channelOf(line)];
    EXPECT_EQ(seen[0], 25);
    EXPECT_EQ(seen[1], 25);
    EXPECT_EQ(seen[2], 25);
    EXPECT_EQ(seen[3], 25);
}

TEST(Dram, AccessCountsBytesAndLatency)
{
    DramFixture f;
    const Cycles lat = f.dram.access(0, false);
    EXPECT_EQ(lat, f.cfg.dramLatency);
    EXPECT_EQ(f.stats.dramAccesses, 1u);
    EXPECT_EQ(f.stats.dramBytes, 64u);
}

TEST(Dram, OccupancyAccumulatesPerChannel)
{
    DramFixture f;
    // 100 lines on channel 0: busy = 100 * 64 / 3.2 = 2000 cycles.
    for (int i = 0; i < 100; ++i)
        f.dram.access(0, false);
    EXPECT_NEAR(f.dram.maxChannelBusy(), 2000.0, 1e-9);
    f.dram.resetEpoch();
    EXPECT_DOUBLE_EQ(f.dram.maxChannelBusy(), 0.0);
    // Stats survive the epoch reset.
    EXPECT_EQ(f.stats.dramAccesses, 100u);
}

TEST(Dram, BalancedTrafficBalancesChannels)
{
    DramFixture f;
    for (Addr line = 0; line < 400; ++line)
        f.dram.access(line, line % 2 == 0);
    // All channels equally busy: the max equals one channel's share.
    EXPECT_NEAR(f.dram.maxChannelBusy(), 100.0 * 64 / 3.2, 1e-9);
}
