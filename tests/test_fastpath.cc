/**
 * @file
 * Tests for the host-side performance fast paths: the software TLB in
 * front of the page table, the sorted/MRU Interleave Override Table,
 * the AddressSpace MRU cache, the parallel sweep runner, and the
 * digest-equivalence guarantee that every fast path produces results
 * bit-identical to the reference (slow) paths.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "graph/generators.hh"
#include "harness/sweep.hh"
#include "mem/address_space.hh"
#include "mem/iot.hh"
#include "mem/page_table.hh"
#include "sim/log.hh"
#include "workloads/affine_workloads.hh"
#include "workloads/graph_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

// ------------------------------------------------------------------
// Software TLB (mem::PageTable)
// ------------------------------------------------------------------

TEST(SoftTlb, TranslateFillsSlot)
{
    mem::PageTable pt;
    pt.map(5, 17);
    EXPECT_FALSE(pt.tlbPeek(5).has_value());
    EXPECT_EQ(pt.translate(mem::pageBase(5) + 12), mem::pageBase(17) + 12);
    ASSERT_TRUE(pt.tlbPeek(5).has_value());
    EXPECT_EQ(pt.tlbPeek(5).value(), 17u);
}

TEST(SoftTlb, DirectMappedEviction)
{
    mem::PageTable pt;
    const Addr v1 = 3;
    const Addr v2 = 3 + mem::PageTable::tlbEntries; // same slot as v1
    pt.map(v1, 100);
    pt.map(v2, 200);
    pt.translate(mem::pageBase(v1));
    EXPECT_TRUE(pt.tlbPeek(v1).has_value());
    // v2 maps to the same direct-mapped slot, evicting v1.
    pt.translate(mem::pageBase(v2));
    EXPECT_FALSE(pt.tlbPeek(v1).has_value());
    ASSERT_TRUE(pt.tlbPeek(v2).has_value());
    EXPECT_EQ(pt.tlbPeek(v2).value(), 200u);
    // Both still translate correctly through the backing table.
    EXPECT_EQ(pt.translate(mem::pageBase(v1)), mem::pageBase(100));
    EXPECT_EQ(pt.translate(mem::pageBase(v2)), mem::pageBase(200));
}

TEST(SoftTlb, InvalidatedOnUnmap)
{
    mem::PageTable pt;
    pt.map(7, 42);
    pt.translate(mem::pageBase(7));
    EXPECT_TRUE(pt.tlbPeek(7).has_value());
    pt.unmap(7);
    EXPECT_FALSE(pt.tlbPeek(7).has_value());
    EXPECT_THROW(pt.translate(mem::pageBase(7)), FatalError);
}

TEST(SoftTlb, InvalidatedOnRemap)
{
    mem::PageTable pt;
    pt.map(7, 42);
    pt.translate(mem::pageBase(7));
    pt.unmap(7);
    pt.map(7, 99);
    // The remap itself must not leave a stale cached translation.
    EXPECT_EQ(pt.translate(mem::pageBase(7) + 3), mem::pageBase(99) + 3);
    EXPECT_EQ(pt.tlbPeek(7).value(), 99u);
}

TEST(SoftTlb, FlushDropsEverything)
{
    mem::PageTable pt;
    for (Addr v = 0; v < 16; ++v) {
        pt.map(v, 1000 + v);
        pt.translate(mem::pageBase(v));
    }
    pt.flushTlb();
    for (Addr v = 0; v < 16; ++v)
        EXPECT_FALSE(pt.tlbPeek(v).has_value());
}

TEST(SoftTlb, ReferenceModeBypassesCache)
{
    mem::PageTable pt;
    pt.setReferenceMode(true);
    pt.map(4, 11);
    EXPECT_EQ(pt.translate(mem::pageBase(4) + 1), mem::pageBase(11) + 1);
    EXPECT_FALSE(pt.tlbPeek(4).has_value());
}

// ------------------------------------------------------------------
// Interleave Override Table: sorted index + neighbour overlap checks
// ------------------------------------------------------------------

TEST(IotFastPath, OutOfOrderInsertLookup)
{
    mem::InterleaveOverrideTable iot(16);
    // Insert in descending start order; the sorted index must still
    // resolve every address.
    iot.insert(0x4000, 0x5000, 64);
    iot.insert(0x2000, 0x3000, 128);
    iot.insert(0x0000, 0x1000, 256);
    ASSERT_NE(iot.lookup(0x0800), nullptr);
    EXPECT_EQ(iot.lookup(0x0800)->intrlv, 256u);
    ASSERT_NE(iot.lookup(0x2800), nullptr);
    EXPECT_EQ(iot.lookup(0x2800)->intrlv, 128u);
    ASSERT_NE(iot.lookup(0x4800), nullptr);
    EXPECT_EQ(iot.lookup(0x4800)->intrlv, 64u);
    // Gaps between entries miss.
    EXPECT_EQ(iot.lookup(0x1800), nullptr);
    EXPECT_EQ(iot.lookup(0x3800), nullptr);
    EXPECT_EQ(iot.lookup(0x9000), nullptr);
}

TEST(IotFastPath, NeighbourOverlapChecksOnInsert)
{
    mem::InterleaveOverrideTable iot(16);
    iot.insert(0x1000, 0x2000, 64);
    // Overlapping the existing range from either side is fatal.
    EXPECT_THROW(iot.insert(0x1800, 0x2800, 64), FatalError);
    EXPECT_THROW(iot.insert(0x0800, 0x1800, 64), FatalError);
    EXPECT_THROW(iot.insert(0x1400, 0x1800, 64), FatalError);
    EXPECT_THROW(iot.insert(0x0800, 0x2800, 64), FatalError);
    // Half-open adjacency on both sides is legal.
    iot.insert(0x0000, 0x1000, 64);
    iot.insert(0x2000, 0x3000, 64);
    EXPECT_EQ(iot.size(), 3u);
}

TEST(IotFastPath, GrowChecksNextNeighbour)
{
    mem::InterleaveOverrideTable iot(16);
    const std::size_t lo = iot.insert(0x0000, 0x1000, 64);
    iot.insert(0x4000, 0x5000, 64);
    iot.grow(lo, 0x3000); // into the gap: fine
    EXPECT_EQ(iot.entry(lo).end, 0x3000u);
    iot.grow(lo, 0x4000); // flush against the neighbour: fine
    EXPECT_THROW(iot.grow(lo, 0x4001), FatalError);
    // Lookups reflect the grown range.
    ASSERT_NE(iot.lookup(0x3fff), nullptr);
    EXPECT_EQ(iot.lookup(0x3fff)->start, 0x0000u);
}

TEST(IotFastPath, ReferenceModeAgrees)
{
    mem::InterleaveOverrideTable fast(16);
    mem::InterleaveOverrideTable ref(16);
    ref.setReferenceMode(true);
    for (Addr base : {Addr(0x8000), Addr(0x2000), Addr(0x5000)}) {
        fast.insert(base, base + 0x1000, 64);
        ref.insert(base, base + 0x1000, 64);
    }
    for (Addr a = 0; a < 0xa000; a += 0x380) {
        const auto *f = fast.lookup(a);
        const auto *r = ref.lookup(a);
        ASSERT_EQ(f == nullptr, r == nullptr) << "addr " << a;
        if (f != nullptr) {
            EXPECT_EQ(f->start, r->start);
            EXPECT_EQ(f->bankOf(a, 64), r->bankOf(a, 64));
        }
    }
}

// ------------------------------------------------------------------
// AddressSpace MRU cache
// ------------------------------------------------------------------

TEST(AddressSpaceMru, ManyRangesInterleaved)
{
    mem::AddressSpace as;
    // More concurrently-queried ranges than MRU slots.
    std::vector<std::vector<char>> bufs;
    for (int i = 0; i < 12; ++i)
        bufs.emplace_back(256);
    for (int i = 0; i < 12; ++i)
        as.registerRange(bufs[i].data(), bufs[i].size(),
                         Addr(0x10000) * (i + 1));
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 12; ++i) {
            const auto *r = as.rangeContaining(bufs[i].data() + 100);
            ASSERT_NE(r, nullptr);
            EXPECT_EQ(r->simStart, Addr(0x10000) * (i + 1));
            EXPECT_EQ(as.simAddrOf(bufs[i].data() + 100),
                      Addr(0x10000) * (i + 1) + 100);
        }
    }
}

TEST(AddressSpaceMru, UnregisterEmptiesCache)
{
    mem::AddressSpace as;
    std::vector<char> a(64), b(64);
    as.registerRange(a.data(), a.size(), 0x1000);
    as.registerRange(b.data(), b.size(), 0x2000);
    EXPECT_EQ(as.simAddrOf(a.data() + 5), 0x1005u);
    as.unregisterRange(a.data());
    // A stale MRU pointer to the erased node must not survive.
    EXPECT_EQ(as.rangeContaining(a.data() + 5), nullptr);
    EXPECT_EQ(as.simAddrOf(b.data() + 7), 0x2007u);
}

TEST(AddressSpaceMru, ReferenceModeAgrees)
{
    mem::AddressSpace fast, ref;
    ref.setReferenceMode(true);
    std::vector<std::vector<char>> bufs;
    for (int i = 0; i < 6; ++i)
        bufs.emplace_back(128);
    for (int i = 0; i < 6; ++i) {
        fast.registerRange(bufs[i].data(), bufs[i].size(),
                           Addr(0x100000) * (i + 1));
        ref.registerRange(bufs[i].data(), bufs[i].size(),
                          Addr(0x100000) * (i + 1));
    }
    for (int round = 0; round < 2; ++round) {
        for (int i = 5; i >= 0; --i) {
            EXPECT_EQ(fast.trySimAddrOf(bufs[i].data() + 31),
                      ref.trySimAddrOf(bufs[i].data() + 31));
        }
    }
    int unrelated = 0;
    EXPECT_EQ(fast.trySimAddrOf(&unrelated), ref.trySimAddrOf(&unrelated));
}

// ------------------------------------------------------------------
// Parallel sweep runner
// ------------------------------------------------------------------

TEST(SweepRunner, ParseJobs)
{
    char prog[] = "bench";
    char quick[] = "--quick";
    {
        char *argv[] = {prog, quick};
        EXPECT_EQ(harness::parseJobs(2, argv), 1u);
    }
    {
        char flag[] = "--jobs";
        char val[] = "4";
        char *argv[] = {prog, flag, val};
        EXPECT_EQ(harness::parseJobs(3, argv), 4u);
    }
    {
        char eq[] = "--jobs=7";
        char *argv[] = {prog, quick, eq};
        EXPECT_EQ(harness::parseJobs(3, argv), 7u);
    }
    {
        // --jobs 0 means one worker per hardware thread (>= 1).
        char flag[] = "--jobs";
        char val[] = "0";
        char *argv[] = {prog, flag, val};
        EXPECT_GE(harness::parseJobs(3, argv), 1u);
    }
    {
        ::setenv("AFFALLOC_JOBS", "3", 1);
        char *argv[] = {prog};
        EXPECT_EQ(harness::parseJobs(1, argv), 3u);
        // An explicit flag wins over the environment.
        char eq[] = "--jobs=2";
        char *argv2[] = {prog, eq};
        EXPECT_EQ(harness::parseJobs(2, argv2), 2u);
        ::unsetenv("AFFALLOC_JOBS");
    }
}

TEST(SweepRunner, ResultsInSweepOrderAtAnyJobCount)
{
    std::vector<std::function<int()>> points;
    for (int i = 0; i < 23; ++i)
        points.push_back([i] { return i * i; });
    for (unsigned jobs : {1u, 2u, 4u, 16u}) {
        const std::vector<int> results = harness::runSweep(jobs, points);
        ASSERT_EQ(results.size(), points.size());
        for (int i = 0; i < 23; ++i)
            EXPECT_EQ(results[i], i * i) << "jobs " << jobs;
    }
}

TEST(SweepRunner, AllTasksRunExactlyOnce)
{
    std::atomic<int> calls{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 50; ++i)
        tasks.push_back([&calls] { calls.fetch_add(1); });
    harness::runSweepTasks(4, std::move(tasks));
    EXPECT_EQ(calls.load(), 50);
}

TEST(SweepRunner, LowestIndexedExceptionWins)
{
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
        tasks.push_back([i] {
            if (i == 2)
                throw std::runtime_error("task two");
            if (i == 5)
                throw std::runtime_error("task five");
        });
    }
    try {
        harness::runSweepTasks(3, std::move(tasks));
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task two");
    }
}

// ------------------------------------------------------------------
// Digest equivalence: fast paths vs reference (slow) paths
// ------------------------------------------------------------------

namespace
{

RunConfig
withReferencePaths(RunConfig rc)
{
    rc.machine.referencePaths = true;
    return rc;
}

void
expectIdentical(const RunResult &fast, const RunResult &ref)
{
    EXPECT_EQ(fast.digest(), ref.digest());
    EXPECT_EQ(fast.cycles(), ref.cycles());
    EXPECT_EQ(fast.hops(), ref.hops());
    EXPECT_EQ(fast.placementDigest, ref.placementDigest);
    EXPECT_EQ(fast.valid, ref.valid);
}

} // namespace

TEST(DigestEquivalence, VecAddAllModes)
{
    VecAddParams p;
    p.n = 30'000;
    for (ExecMode m :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        const RunConfig rc = RunConfig::forMode(m);
        const RunResult fast = runVecAdd(rc, p);
        const RunResult ref = runVecAdd(withReferencePaths(rc), p);
        expectIdentical(fast, ref);
    }
}

TEST(DigestEquivalence, GraphWorkloads)
{
    graph::KroneckerParams kp;
    kp.scale = 10;
    kp.edgeFactor = 8;
    const auto g = graph::kronecker(kp);
    GraphParams p;
    p.graph = &g;
    p.iters = 2;

    const RunConfig rc = RunConfig::forMode(ExecMode::affAlloc);
    expectIdentical(runPageRankPush(rc, p),
                    runPageRankPush(withReferencePaths(rc), p));
    expectIdentical(runBfs(rc, p, BfsStrategy::gapSwitch).run,
                    runBfs(withReferencePaths(rc), p,
                           BfsStrategy::gapSwitch)
                        .run);
}
