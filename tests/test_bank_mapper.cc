#include <gtest/gtest.h>

#include "mem/bank_mapper.hh"

using namespace affalloc;
using mem::BankMapper;
using mem::InterleaveOverrideTable;
using sim::MachineConfig;

TEST(BankMapper, DefaultStaticNuca1kB)
{
    MachineConfig cfg;
    InterleaveOverrideTable iot;
    BankMapper mapper(cfg, iot);
    // Table 2: 1 kB static NUCA interleave.
    EXPECT_EQ(mapper.bankOf(0), 0u);
    EXPECT_EQ(mapper.bankOf(1023), 0u);
    EXPECT_EQ(mapper.bankOf(1024), 1u);
    EXPECT_EQ(mapper.bankOf(1024ull * 64), 0u);
    EXPECT_EQ(mapper.bankOf(1024ull * 65), 1u);
}

TEST(BankMapper, IotOverridesDefault)
{
    MachineConfig cfg;
    InterleaveOverrideTable iot;
    iot.insert(0x100000, 0x200000, 64);
    BankMapper mapper(cfg, iot);
    // Inside the IOT range: 64 B interleave from the range start.
    EXPECT_EQ(mapper.bankOf(0x100000), 0u);
    EXPECT_EQ(mapper.bankOf(0x100000 + 64), 1u);
    EXPECT_EQ(mapper.bankOf(0x100000 + 64 * 64), 0u);
    // Outside: default hash again.
    EXPECT_EQ(mapper.bankOf(0x200000),
              mapper.defaultBankOf(0x200000));
}

TEST(BankMapper, ConsecutiveLinesSpreadUnderFineInterleave)
{
    MachineConfig cfg;
    InterleaveOverrideTable iot;
    iot.insert(0, 1 << 20, 64);
    BankMapper mapper(cfg, iot);
    // 64 consecutive lines cover all 64 banks exactly once.
    std::vector<int> seen(64, 0);
    for (Addr a = 0; a < 64 * 64; a += 64)
        ++seen[mapper.bankOf(a)];
    for (int b = 0; b < 64; ++b)
        EXPECT_EQ(seen[b], 1) << "bank " << b;
}

TEST(BankMapper, DefaultSpreadsPages)
{
    MachineConfig cfg;
    InterleaveOverrideTable iot;
    BankMapper mapper(cfg, iot);
    // 64 MB of physical addresses hit all banks roughly evenly.
    std::vector<std::uint64_t> count(64, 0);
    for (Addr a = 0; a < (64ull << 20); a += 1024)
        ++count[mapper.bankOf(a)];
    const auto [mn, mx] = std::minmax_element(count.begin(), count.end());
    EXPECT_GT(*mn, 0u);
    EXPECT_LT(double(*mx) / double(*mn), 1.01);
}
