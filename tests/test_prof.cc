/**
 * @file
 * Host-side self-profiler tests: enabling profiling must be invisible
 * to the simulation (identical determinism digests at any sim-thread
 * count), and the harvested phase tree must obey the structural
 * invariants tools/perf_diff.py and the JSON export rely on (child
 * inclusive time bounded by the parent, exclusive = inclusive minus
 * children, counters monotone).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "graph/generators.hh"
#include "harness/sweep.hh"
#include "sim/prof.hh"
#include "sim/simcheck.hh"
#include "sim/worker_pool.hh"
#include "workloads/graph_workloads.hh"

#include "test_helpers.hh"

using namespace affalloc;
using namespace affalloc::workloads;

namespace
{

/** Re-arm a clean profiler for one test and clean up afterwards. */
struct ProfFixture : ::testing::Test {
    void
    SetUp() override
    {
        prof::setEnabled(false);
        prof::resetForTest();
    }
    void
    TearDown() override
    {
        prof::setEnabled(false);
        prof::resetForTest();
    }
};

const graph::Csr &
testGraph()
{
    static const graph::Csr g = [] {
        graph::KroneckerParams p;
        p.scale = 10;
        p.edgeFactor = 8;
        return graph::kronecker(p);
    }();
    return g;
}

std::string
digestAt(std::uint32_t sim_threads)
{
    RunConfig rc = RunConfig::forMode(ExecMode::affAlloc);
    rc.machine.simThreads = sim_threads;
    GraphParams p;
    p.graph = &testGraph();
    p.iters = 2;
    const RunResult r = runPageRankPush(rc, p);
    EXPECT_TRUE(r.valid);
    return simcheck::digestToString(r.digest());
}

/** Sum of the children's inclusive ns for one harvested node. */
std::uint64_t
childrenInclusive(const prof::PhaseNode &n)
{
    std::uint64_t sum = 0;
    for (const prof::PhaseNode &c : n.children)
        sum += c.inclusiveNs;
    return sum;
}

void
checkTreeInvariants(const prof::PhaseNode &n)
{
    EXPECT_GT(n.count, 0u) << n.name;
    // A child's time is contained in the parent's: children can never
    // sum past the parent's inclusive time.
    EXPECT_LE(childrenInclusive(n), n.inclusiveNs) << n.name;
    EXPECT_EQ(n.exclusiveNs, n.inclusiveNs - childrenInclusive(n))
        << n.name;
    for (const prof::PhaseNode &c : n.children)
        checkTreeInvariants(c);
}

const prof::PhaseNode *
findPhase(const std::vector<prof::PhaseNode> &nodes, const char *name)
{
    for (const prof::PhaseNode &n : nodes) {
        if (n.name == name)
            return &n;
        if (const prof::PhaseNode *hit = findPhase(n.children, name))
            return hit;
    }
    return nullptr;
}

} // namespace

// ----------------------------------------------------- digest neutrality

using ProfNeutrality = ProfFixture;

TEST_F(ProfNeutrality, DigestsIdenticalProfOnAndOff)
{
    const std::string off = digestAt(1);
    prof::setEnabled(true);
    const std::string on = digestAt(1);
    EXPECT_EQ(on, off);
}

TEST_F(ProfNeutrality, DigestsIdenticalUnderShardedReplay)
{
    // The acceptance criterion: profiling changes nothing observable
    // at any --sim-threads count.
    const std::string base = digestAt(1);
    prof::setEnabled(true);
    for (const std::uint32_t t : {1u, 4u})
        EXPECT_EQ(digestAt(t), base) << "sim-threads " << t;
}

// --------------------------------------------------------- phase trees

using ProfPhases = ProfFixture;

TEST_F(ProfPhases, ScopesNestIntoATree)
{
    if (!prof::compiledIn)
        GTEST_SKIP() << "built with -DAFFALLOC_PROF=OFF";
    prof::setEnabled(true);
    for (int i = 0; i < 3; ++i) {
        PROF_SCOPE("test/outer");
        {
            PROF_SCOPE("test/inner");
        }
        {
            PROF_SCOPE("test/inner");
        }
    }
    const prof::Snapshot snap = prof::harvest();
    const prof::PhaseNode *outer = findPhase(snap.phases, "test/outer");
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(outer->count, 3u);
    ASSERT_EQ(outer->children.size(), 1u);
    EXPECT_EQ(outer->children[0].name, "test/inner");
    EXPECT_EQ(outer->children[0].count, 6u);
    checkTreeInvariants(*outer);
}

TEST_F(ProfPhases, AddTimedRecordsARetroactivePhase)
{
    if (!prof::compiledIn)
        GTEST_SKIP() << "built with -DAFFALLOC_PROF=OFF";
    prof::setEnabled(true);
    prof::addTimed("test/record", 1000);
    prof::addTimed("test/record", 500);
    const prof::Snapshot snap = prof::harvest();
    const prof::PhaseNode *rec = findPhase(snap.phases, "test/record");
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->count, 2u);
    EXPECT_EQ(rec->inclusiveNs, 1500u);
    EXPECT_EQ(rec->exclusiveNs, 1500u);
}

TEST_F(ProfPhases, RealRunSatisfiesTreeInvariants)
{
    if (!prof::compiledIn)
        GTEST_SKIP() << "built with -DAFFALLOC_PROF=OFF";
    prof::setEnabled(true);
    digestAt(4);
    const prof::Snapshot snap = prof::harvest();
    ASSERT_FALSE(snap.phases.empty());
    for (const prof::PhaseNode &root : snap.phases)
        checkTreeInvariants(root);
    // The epoch loop's signature phases must be present: the record
    // phase (addTimed) and the replay phase with its wave children.
    ASSERT_NE(findPhase(snap.phases, "machine/epoch.record"), nullptr);
    const prof::PhaseNode *replay =
        findPhase(snap.phases, "machine/epoch.replay");
    ASSERT_NE(replay, nullptr);
    EXPECT_NE(findPhase(replay->children, "machine/epoch.replay/wave1"),
              nullptr);
    EXPECT_NE(findPhase(replay->children, "machine/epoch.replay/wave2"),
              nullptr);
    EXPECT_NE(findPhase(snap.phases, "alloc/malloc_aff.affine"), nullptr);
}

TEST_F(ProfPhases, DisabledScopesRecordNothing)
{
    if (!prof::compiledIn)
        GTEST_SKIP() << "built with -DAFFALLOC_PROF=OFF";
    {
        PROF_SCOPE("test/should-not-exist");
    }
    prof::addTimed("test/should-not-exist", 42);
    const prof::Snapshot snap = prof::harvest();
    EXPECT_EQ(findPhase(snap.phases, "test/should-not-exist"), nullptr);
    EXPECT_EQ(snap.wallNs, 0u);
}

// ------------------------------------------------- counters & telemetry

using ProfTelemetry = ProfFixture;

TEST_F(ProfTelemetry, CountersAddAndMax)
{
    if (!prof::compiledIn)
        GTEST_SKIP() << "built with -DAFFALLOC_PROF=OFF";
    prof::setEnabled(true);
    prof::counterAdd("test/adds", 2);
    prof::counterAdd("test/adds", 3);
    prof::counterMax("test/hwm", 7);
    prof::counterMax("test/hwm", 4);
    const prof::Snapshot snap = prof::harvest();
    std::uint64_t adds = 0, hwm = 0;
    for (const auto &kv : snap.counters) {
        if (kv.first == "test/adds")
            adds = kv.second;
        if (kv.first == "test/hwm")
            hwm = kv.second;
    }
    EXPECT_EQ(adds, 5u);
    EXPECT_EQ(hwm, 7u);
}

TEST_F(ProfTelemetry, RetiredPoolTelemetrySurvivesThePool)
{
    if (!prof::compiledIn)
        GTEST_SKIP() << "built with -DAFFALLOC_PROF=OFF";
    prof::setEnabled(true);
    {
        sim::WorkerPool pool(4);
        for (int wave = 0; wave < 8; ++wave) {
            pool.dispatch([](unsigned role) {
                volatile std::uint64_t sink = 0;
                for (std::uint64_t i = 0; i < 20000 * (role + 1); ++i)
                    sink = sink + i;
            });
        }
    }
    const prof::Snapshot snap = prof::harvest();
    bool found = false;
    for (const prof::PoolTelemetry &p : snap.pools) {
        if (p.threads != 4)
            continue;
        found = true;
        EXPECT_GT(p.dispatches, 0u);
        EXPECT_EQ(p.busyNs.size(), 4u);
        for (const std::uint64_t b : p.busyNs)
            EXPECT_GT(b, 0u);
        // Critical path can never exceed total work, and total work
        // can never exceed threads * critical path.
        EXPECT_LE(p.sumMaxTaskNs, p.sumTaskNs);
        EXPECT_LE(p.sumTaskNs, p.sumMaxTaskNs * p.threads);
    }
    EXPECT_TRUE(found) << "no retired 4-thread pool telemetry";
}

TEST_F(ProfTelemetry, ArenaFootprintsKeepTheHighWatermark)
{
    if (!prof::compiledIn)
        GTEST_SKIP() << "built with -DAFFALLOC_PROF=OFF";
    prof::setEnabled(true);
    prof::noteArenaFootprint(2, 1000);
    prof::noteArenaFootprint(2, 500);
    prof::noteArenaFootprint(9, 42);
    const prof::Snapshot snap = prof::harvest();
    ASSERT_EQ(snap.arenas.size(), 2u);
    EXPECT_EQ(snap.arenas[0].first, 2u);
    EXPECT_EQ(snap.arenas[0].second, 1000u);
    EXPECT_EQ(snap.arenas[1].first, 9u);
    EXPECT_EQ(snap.arenas[1].second, 42u);
}

// ------------------------------------------------------------ export

using ProfExport = ProfFixture;

TEST_F(ProfExport, WriteJsonEmitsTheVersionedSchema)
{
    if (!prof::compiledIn)
        GTEST_SKIP() << "built with -DAFFALLOC_PROF=OFF";
    prof::setEnabled(true);
    {
        PROF_SCOPE("test/export");
    }
    prof::counterAdd("test/counter", 11);
    const prof::Snapshot snap = prof::harvest();

    std::string buf(1 << 16, '\0');
    std::FILE *mem = fmemopen(buf.data(), buf.size(), "w");
    ASSERT_NE(mem, nullptr);
    EXPECT_TRUE(prof::writeJson(mem, snap));
    std::fclose(mem);
    const std::string json = buf.c_str();

    EXPECT_NE(json.find("\"schema\": \"affalloc-prof-1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"test/export\""), std::string::npos);
    EXPECT_NE(json.find("\"test/counter\": 11"), std::string::npos);
    EXPECT_NE(json.find("\"rss\""), std::string::npos);
    // Crude structural check; CI round-trips the real file through
    // python3 -m json.tool.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST_F(ProfExport, ResetForTestClearsEverything)
{
    if (!prof::compiledIn)
        GTEST_SKIP() << "built with -DAFFALLOC_PROF=OFF";
    prof::setEnabled(true);
    {
        PROF_SCOPE("test/reset");
    }
    prof::counterAdd("test/reset", 1);
    prof::noteArenaFootprint(0, 1);
    prof::resetForTest();
    const prof::Snapshot snap = prof::harvest();
    EXPECT_EQ(findPhase(snap.phases, "test/reset"), nullptr);
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.arenas.empty());
    EXPECT_TRUE(snap.pools.empty());
}

// ------------------------------------------------------ flag validation

TEST(ProfFlags, ProgressRejectsGarbageAndOutOfRange)
{
    char prog[] = "bench";
    for (const char *bad :
         {"--progress=0", "--progress=-1", "--progress=potato",
          "--progress=1e9", "--progress="}) {
        std::vector<char> flag(bad, bad + std::strlen(bad) + 1);
        char *argv[] = {prog, flag.data()};
        EXPECT_THROW(harness::applyProfFlags(2, argv), FatalError)
            << bad;
    }
}

TEST(ProfFlags, ProfOutRejectsUnwritablePathUpFront)
{
    char prog[] = "bench";
    char flag[] = "--prof-out=/nonexistent-dir/prof.json";
    char *argv[] = {prog, flag};
    EXPECT_THROW(harness::applyProfFlags(2, argv), FatalError);
}

TEST(ProfFlags, ProfOutRejectsEmptyPath)
{
    char prog[] = "bench";
    char flag[] = "--prof-out=";
    char *argv[] = {prog, flag};
    EXPECT_THROW(harness::applyProfFlags(2, argv), FatalError);
}
