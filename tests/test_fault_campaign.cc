/**
 * @file
 * Randomized fault campaign: for a sweep of fault seeds, every
 * workload class (affine, graph, pointer) must complete with correct
 * results in every ExecMode while banks are offline and offloads are
 * being rejected — graceful degradation, never wrong answers. Also
 * checks the allocator property that no two live allocations overlap
 * in host or simulated address space, even while the allocator is
 * falling back across pools and redirecting around dead banks.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "graph/generators.hh"
#include "sim/rng.hh"
#include "workloads/affine_workloads.hh"
#include "workloads/graph_workloads.hh"
#include "workloads/pointer_workloads.hh"

#include "test_helpers.hh"

using namespace affalloc;
using namespace affalloc::workloads;
using test::MachineFixture;

namespace
{

RunConfig
faultyRunConfig(ExecMode mode, std::uint64_t seed)
{
    RunConfig rc = RunConfig::forMode(mode);
    rc.machine.faults.seed = seed;
    rc.machine.faults.offlineBanks = 5;
    rc.machine.faults.offloadRejectRate = 0.3;
    rc.machine.faults.degradedLinks = 6;
    // The whole campaign runs with SimCheck auditing on a short
    // period: every invariant (flit conservation, free-list
    // integrity, mapping consistency, offload conservation, cache
    // occupancy) must hold while the machine degrades around faults.
    rc.machine.simcheck.audit = true;
    rc.machine.simcheck.auditPeriodEpochs = 4;
    return rc;
}

void
checkDegraded(const RunResult &r, ExecMode mode, const char *what)
{
    EXPECT_TRUE(r.valid) << what << " produced wrong results";
    EXPECT_EQ(r.stats.offlineBanks, 5u) << what;
    if (mode != ExecMode::inCore) {
        // At 30% rejection over dozens of stream configs, a run with
        // zero retries would mean the NACK path is disconnected.
        EXPECT_GT(r.stats.offloadRetries + r.stats.offloadFallbacks, 0u)
            << what << " never exercised the offload NACK path";
    }
}

} // namespace

class FaultCampaign : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FaultCampaign, AffineWorkloadSurvivesAllModes)
{
    for (ExecMode mode :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        VecAddParams p;
        p.n = 1 << 15;
        p.layout = mode == ExecMode::affAlloc
                       ? VecAddLayout::affinity
                       : VecAddLayout::heapLinear;
        const RunResult r =
            runVecAdd(faultyRunConfig(mode, GetParam()), p);
        checkDegraded(r, mode, "vecadd");
    }
}

TEST_P(FaultCampaign, GraphWorkloadSurvivesAllModes)
{
    graph::KroneckerParams kp;
    kp.scale = 9;
    kp.edgeFactor = 8;
    const graph::Csr g = graph::kronecker(kp);
    for (ExecMode mode :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        GraphParams p;
        p.graph = &g;
        p.iters = 2;
        const RunResult r =
            runBfs(faultyRunConfig(mode, GetParam()), p,
                   defaultBfsStrategy(mode))
                .run;
        checkDegraded(r, mode, "bfs");
    }
}

TEST_P(FaultCampaign, PointerWorkloadSurvivesAllModes)
{
    for (ExecMode mode :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        LinkListParams p;
        p.numLists = 200;
        p.nodesPerList = 64;
        const RunResult r =
            runLinkList(faultyRunConfig(mode, GetParam()), p);
        checkDegraded(r, mode, "link_list");
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultCampaign,
                         ::testing::Values(1u, 42u, 0xfa117u));

// ------------------------------------------------ allocator property

TEST(FaultCampaign, AllocationsNeverOverlapUnderFaults)
{
    sim::MachineConfig cfg;
    cfg.faults.offlineBanks = 9;
    cfg.faults.seed = 7;
    cfg.simcheck.audit = true; // slot canaries + free-list audits on
    os::SimOS sim_os(cfg);
    nsc::Machine machine(cfg, sim_os);
    alloc::AffinityAllocator allocator(machine, {});

    struct Range
    {
        const char *host;
        Addr sim;
        std::uint64_t bytes;
    };
    std::vector<Range> ranges;
    std::vector<void *> ptrs;
    Rng rng(99);

    // Anchor array for irregular affinity addresses.
    alloc::AffineArray anchor_req;
    anchor_req.elem_size = 64;
    anchor_req.num_elem = 4096;
    anchor_req.partition = true;
    char *anchor =
        static_cast<char *>(allocator.mallocAff(anchor_req));
    ASSERT_NE(anchor, nullptr);

    auto record = [&](void *p, std::uint64_t bytes) {
        ASSERT_NE(p, nullptr);
        std::memset(p, int(ranges.size() & 0xff), std::size_t(bytes));
        ranges.push_back({static_cast<const char *>(p),
                          machine.addressSpace().simAddrOf(p), bytes});
        ptrs.push_back(p);
    };

    for (int i = 0; i < 200; ++i) {
        switch (rng.below(3)) {
        case 0: { // affine
            alloc::AffineArray req;
            req.elem_size = 8;
            req.num_elem = 64 + rng.below(2048);
            void *p = allocator.mallocAff(req);
            record(p, req.elem_size * req.num_elem);
            break;
        }
        case 1: { // irregular, anchored near a random element
            const void *aff = anchor + rng.below(4096) * 64;
            const std::uint64_t bytes = 64u << rng.below(4);
            void *p = allocator.mallocAff(std::size_t(bytes), 1, &aff);
            record(p, bytes);
            break;
        }
        default: { // plain heap
            const std::uint64_t bytes = 64 + rng.below(4096);
            record(allocator.allocPlain(std::size_t(bytes)), bytes);
            break;
        }
        }
    }

    // Every allocation still holds the pattern written at its birth
    // (an overlap would have clobbered an earlier range) ...
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        const Range &r = ranges[i];
        for (std::uint64_t b = 0; b < r.bytes; b += 61)
            ASSERT_EQ(std::uint8_t(r.host[b]), std::uint8_t(i & 0xff))
                << "allocation " << i << " clobbered at byte " << b;
    }
    // ... and the recorded host/sim intervals are pairwise disjoint.
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        for (std::size_t j = i + 1; j < ranges.size(); ++j) {
            const Range &a = ranges[i], &b = ranges[j];
            const bool host_overlap = a.host < b.host + b.bytes &&
                                      b.host < a.host + a.bytes;
            const bool sim_overlap = a.sim < b.sim + b.bytes &&
                                     b.sim < a.sim + a.bytes;
            ASSERT_FALSE(host_overlap)
                << "host ranges " << i << " and " << j << " overlap";
            ASSERT_FALSE(sim_overlap)
                << "sim ranges " << i << " and " << j << " overlap";
        }
    }
    // All allocations landed on live banks.
    for (void *p : ptrs)
        EXPECT_TRUE(machine.bankLive(machine.bankOfHost(p)));
    for (void *p : ptrs)
        allocator.freeAff(p);
    // On-demand audit after the churn: free lists, canaries, mapping
    // and cache state must all be consistent.
    EXPECT_NO_THROW(machine.audit());
}
