/**
 * @file
 * Error-path coverage: every fatal() guard in the data-structure and
 * graph layers (plus the machine/config validators) must actually
 * fire on bad input instead of silently corrupting a run. Each test
 * names the guard it exercises.
 */

#include <gtest/gtest.h>

#include "ds/dynamic_graph.hh"
#include "ds/linked_csr.hh"
#include "ds/pointer_structs.hh"
#include "ds/spatial_pq.hh"
#include "ds/spatial_queue.hh"
#include "graph/generators.hh"
#include "graph/reference.hh"
#include "sim/log.hh"

#include "test_helpers.hh"

using namespace affalloc;
using test::MachineFixture;

namespace
{

/** Small valid weighted graph: a 4-cycle. */
graph::Csr
smallGraph(bool weighted)
{
    std::vector<graph::Edge> edges = {
        {0, 1, 3}, {1, 2, 1}, {2, 3, 2}, {3, 0, 5}};
    return graph::buildCsr(4, std::move(edges), true, weighted);
}

/** A recorded affine array to anchor structures to. */
void *
recordedArray(MachineFixture &f, std::uint64_t elems = 1024)
{
    alloc::AffineArray req;
    req.elem_size = 4;
    req.num_elem = elems;
    return f.allocator->mallocAff(req);
}

} // namespace

// --------------------------------------------------------- graph/

TEST(ErrorPaths, BfsSourceOutOfRange)
{
    const graph::Csr g = smallGraph(false);
    EXPECT_THROW(graph::bfsReference(g, 4), FatalError);
    EXPECT_NO_THROW(graph::bfsReference(g, 3));
}

TEST(ErrorPaths, SsspSourceOutOfRange)
{
    const graph::Csr g = smallGraph(true);
    EXPECT_THROW(graph::ssspReference(g, 99), FatalError);
}

TEST(ErrorPaths, SsspRequiresWeights)
{
    const graph::Csr g = smallGraph(false);
    EXPECT_THROW(graph::ssspReference(g, 0), FatalError);
}

TEST(ErrorPaths, CsrRejectsEdgeOutsideVertexRange)
{
    std::vector<graph::Edge> edges = {{0, 7, 1}};
    EXPECT_THROW(graph::buildCsr(4, std::move(edges), false, false),
                 FatalError);
}

TEST(ErrorPaths, KroneckerRejectsBadQuadrantProbabilities)
{
    graph::KroneckerParams p;
    p.scale = 4;
    p.a = 0.5;
    p.b = 0.3;
    p.c = 0.3; // a + b + c >= 1 leaves no room for quadrant d
    EXPECT_THROW(graph::kronecker(p), FatalError);
}

// ------------------------------------------------------------ ds/

TEST(ErrorPaths, SpatialQueueRejectsEmptyConfiguration)
{
    MachineFixture f;
    void *arr = recordedArray(f);
    EXPECT_THROW(ds::SpatialQueue(*f.allocator, arr, 0, 4), FatalError);
    EXPECT_THROW(ds::SpatialQueue(*f.allocator, arr, 1024, 0),
                 FatalError);
    EXPECT_THROW(ds::SpatialQueue(*f.allocator, arr, 1024, 4, 0),
                 FatalError);
}

TEST(ErrorPaths, SpatialQueueRejectsUnrecordedArray)
{
    MachineFixture f;
    int stack_array[16] = {};
    EXPECT_THROW(ds::SpatialQueue(*f.allocator, stack_array, 16, 4),
                 FatalError);
}

TEST(ErrorPaths, SpatialPqRejectsEmptyConfiguration)
{
    MachineFixture f;
    void *arr = recordedArray(f);
    EXPECT_THROW(ds::SpatialPriorityQueue(*f.allocator, arr, 0, 4),
                 FatalError);
    EXPECT_THROW(ds::SpatialPriorityQueue(*f.allocator, arr, 1024, 0),
                 FatalError);
}

TEST(ErrorPaths, SpatialPqRejectsUnrecordedArray)
{
    MachineFixture f;
    int stack_array[16] = {};
    EXPECT_THROW(
        ds::SpatialPriorityQueue(*f.allocator, stack_array, 16, 4),
        FatalError);
}

TEST(ErrorPaths, DynamicGraphRejectsUnrecordedVertexArray)
{
    MachineFixture f;
    int stack_array[16] = {};
    EXPECT_THROW(ds::DynamicGraph(16, *f.allocator, stack_array, 4),
                 FatalError);
}

TEST(ErrorPaths, DynamicGraphRejectsEdgeOutOfRange)
{
    MachineFixture f;
    void *arr = recordedArray(f, 16);
    ds::DynamicGraph g(16, *f.allocator, arr, 4);
    EXPECT_THROW(g.addEdge(0, 16), FatalError);
    EXPECT_THROW(g.addEdge(16, 0), FatalError);
    EXPECT_NO_THROW(g.addEdge(0, 15));
}

TEST(ErrorPaths, HashJoinTableRequiresPowerOfTwoBuckets)
{
    MachineFixture f;
    EXPECT_THROW(ds::HashJoinTable(*f.allocator, 0, true), FatalError);
    EXPECT_THROW(ds::HashJoinTable(*f.allocator, 96, true), FatalError);
    EXPECT_NO_THROW(ds::HashJoinTable(*f.allocator, 128, true));
}

TEST(ErrorPaths, LinkedCsrRejectsBadNodeSize)
{
    MachineFixture f;
    void *arr = recordedArray(f, 4);
    const graph::Csr g = smallGraph(false);
    ds::LinkedCsrOptions opts;
    opts.nodeBytes = 32; // below one cache line
    EXPECT_THROW(ds::LinkedCsr(g, *f.allocator, arr, 4, opts),
                 FatalError);
    opts.nodeBytes = 96; // not a power of two
    EXPECT_THROW(ds::LinkedCsr(g, *f.allocator, arr, 4, opts),
                 FatalError);
}

TEST(ErrorPaths, LinkedCsrWeightedRequiresWeightedSource)
{
    MachineFixture f;
    void *arr = recordedArray(f, 4);
    const graph::Csr g = smallGraph(false);
    ds::LinkedCsrOptions opts;
    opts.weighted = true;
    EXPECT_THROW(ds::LinkedCsr(g, *f.allocator, arr, 4, opts),
                 FatalError);
}

TEST(ErrorPaths, LinkedCsrRejectsUnrecordedVertexArray)
{
    MachineFixture f;
    int stack_array[4] = {};
    const graph::Csr g = smallGraph(false);
    EXPECT_THROW(ds::LinkedCsr(g, *f.allocator, stack_array, 4),
                 FatalError);
}

// ------------------------------------------------------ validators

TEST(ErrorPaths, TimingParamsRejectNonPositiveCosts)
{
    nsc::TimingParams tp;
    EXPECT_NO_THROW(tp.validate());
    tp.l3ServiceCycles = 0.0;
    EXPECT_THROW(tp.validate(), FatalError);

    tp = nsc::TimingParams{};
    tp.coreIssueCycles = -0.5;
    EXPECT_THROW(tp.validate(), FatalError);

    tp = nsc::TimingParams{};
    tp.coreFlopsPerCycle = 0.0;
    EXPECT_THROW(tp.validate(), FatalError);

    tp = nsc::TimingParams{};
    tp.seFlopsPerCycle = -1.0;
    EXPECT_THROW(tp.validate(), FatalError);

    tp = nsc::TimingParams{};
    tp.atomicExtraCycles = -0.1;
    EXPECT_THROW(tp.validate(), FatalError);

    tp = nsc::TimingParams{};
    tp.epochOverheadCycles = -1.0;
    EXPECT_THROW(tp.validate(), FatalError);

    // coreMaxMlp divides irregular-access occupancy; zero would be a
    // silent division by zero without the guard.
    tp = nsc::TimingParams{};
    tp.coreMaxMlp = 0.0;
    EXPECT_THROW(tp.validate(), FatalError);
}

TEST(ErrorPaths, MachineConfigRejectsBadRatesAndFaults)
{
    sim::MachineConfig cfg;
    EXPECT_NO_THROW(cfg.validate());

    cfg = sim::MachineConfig{};
    cfg.clockGhz = 0.0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = sim::MachineConfig{};
    cfg.dramTotalGBs = -1.0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = sim::MachineConfig{};
    cfg.linkBytes = 0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = sim::MachineConfig{};
    cfg.faults.offloadRejectRate = -0.25;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = sim::MachineConfig{};
    cfg.faults.offlineBanks = cfg.numTiles();
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = sim::MachineConfig{};
    cfg.faults.linkDegradeFactor = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
}
