#include <gtest/gtest.h>

#include <set>

#include "ds/pointer_structs.hh"
#include <functional>

#include "sim/log.hh"
#include "sim/rng.hh"

#include "test_helpers.hh"

using namespace affalloc;
using alloc::AllocatorOptions;
using alloc::BankPolicy;
using ds::AffinityList;
using ds::AffinityTree;
using ds::HashJoinTable;
using test::MachineFixture;

// ------------------------------------------------------------ list

TEST(AffinityList, AppendAndFind)
{
    MachineFixture f;
    AffinityList list(*f.allocator);
    for (std::uint64_t k = 0; k < 100; ++k)
        list.append(k * 3, k);
    EXPECT_EQ(list.size(), 100u);
    const auto *n = list.find(99);
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->value, 33u);
    EXPECT_EQ(list.find(1000), nullptr);
}

TEST(AffinityList, OrderPreserved)
{
    MachineFixture f;
    AffinityList list(*f.allocator);
    for (std::uint64_t k = 0; k < 10; ++k)
        list.append(k);
    std::uint64_t expect = 0;
    for (const auto *n = list.head(); n; n = n->next)
        EXPECT_EQ(n->key, expect++);
    EXPECT_EQ(expect, 10u);
}

TEST(AffinityList, MinHopColocatesChain)
{
    AllocatorOptions opts;
    opts.policy = BankPolicy::minHop;
    MachineFixture f(opts);
    AffinityList list(*f.allocator);
    for (std::uint64_t k = 0; k < 64; ++k)
        list.append(k);
    // Every node ends up in the first node's bank: zero chase hops.
    const BankId b0 = f.machine->bankOfHost(list.head());
    for (const auto *n = list.head(); n; n = n->next)
        EXPECT_EQ(f.machine->bankOfHost(n), b0);
}

TEST(AffinityList, HybridKeepsChainNearby)
{
    AllocatorOptions opts;
    opts.policy = BankPolicy::hybrid;
    opts.hybridH = 5.0;
    MachineFixture f(opts);
    AffinityList list(*f.allocator);
    for (std::uint64_t k = 0; k < 512; ++k)
        list.append(k);
    double hop_sum = 0;
    std::uint64_t links = 0;
    for (const auto *n = list.head(); n && n->next; n = n->next) {
        hop_sum += f.machine->hopsBetween(f.machine->bankOfHost(n),
                                          f.machine->bankOfHost(n->next));
        ++links;
    }
    EXPECT_LT(hop_sum / double(links), 2.0)
        << "hybrid chains should average well below mesh diameter";
}

TEST(AffinityList, RemoveFrontFreesAndKeepsOrder)
{
    MachineFixture f;
    AffinityList list(*f.allocator);
    for (std::uint64_t k = 0; k < 20; ++k)
        list.append(k, k * 7);
    const std::uint64_t frees_before = f.allocator->allocStats().frees;

    // Drop the first quarter: the freed slots return to the per-bank
    // free lists (the churn_list workload leans on this mid-run).
    EXPECT_EQ(list.removeFront(5), 5u);
    EXPECT_EQ(list.size(), 15u);
    EXPECT_EQ(f.allocator->allocStats().frees, frees_before + 5);
    std::uint64_t expect = 5;
    for (const auto *n = list.head(); n; n = n->next)
        EXPECT_EQ(n->key, expect++);
    EXPECT_EQ(expect, 20u);
    EXPECT_EQ(list.find(0), nullptr);
    ASSERT_NE(list.find(5), nullptr);

    // Over-asking clamps at the list length and empties it cleanly.
    EXPECT_EQ(list.removeFront(100), 15u);
    EXPECT_EQ(list.size(), 0u);
    EXPECT_EQ(list.head(), nullptr);
    EXPECT_EQ(list.removeFront(3), 0u);

    // The emptied list is still usable: tail_ was reset with head_.
    list.append(42);
    EXPECT_EQ(list.size(), 1u);
    ASSERT_NE(list.find(42), nullptr);
}

// ------------------------------------------------------------ tree

TEST(AffinityTree, InsertAndFind)
{
    MachineFixture f;
    AffinityTree tree(*f.allocator);
    const std::uint64_t keys[] = {50, 25, 75, 10, 60, 90, 55};
    for (auto k : keys)
        tree.insert(k, k * 2);
    EXPECT_EQ(tree.size(), 7u);
    for (auto k : keys) {
        const auto *n = tree.find(k);
        ASSERT_NE(n, nullptr);
        EXPECT_EQ(n->value, k * 2);
    }
    EXPECT_EQ(tree.find(42), nullptr);
}

TEST(AffinityTree, BstInvariantHolds)
{
    MachineFixture f;
    Rng rng(3);
    AffinityTree tree(*f.allocator);
    for (int i = 0; i < 500; ++i)
        tree.insert(rng.below(1 << 20));
    // In-order traversal is sorted.
    std::vector<std::uint64_t> keys;
    std::function<void(const ds::TreeNode *)> walk =
        [&](const ds::TreeNode *n) {
            if (!n)
                return;
            walk(n->left);
            keys.push_back(n->key);
            walk(n->right);
        };
    walk(tree.root());
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    EXPECT_EQ(keys.size(), tree.size());
}

TEST(AffinityTree, MinHopCollapsesToOneBank)
{
    AllocatorOptions opts;
    opts.policy = BankPolicy::minHop;
    MachineFixture f(opts);
    AffinityTree tree(*f.allocator);
    Rng rng(5);
    for (int i = 0; i < 200; ++i)
        tree.insert(rng.next());
    // The pathological Min-Hop layout (§7.1): the whole tree lands in
    // a single bank.
    std::set<BankId> banks;
    std::function<void(const ds::TreeNode *)> walk =
        [&](const ds::TreeNode *n) {
            if (!n)
                return;
            banks.insert(f.machine->bankOfHost(n));
            walk(n->left);
            walk(n->right);
        };
    walk(tree.root());
    EXPECT_EQ(banks.size(), 1u);
}

TEST(AffinityTree, HybridSpreadsTree)
{
    AllocatorOptions opts;
    opts.policy = BankPolicy::hybrid;
    opts.hybridH = 5.0;
    MachineFixture f(opts);
    AffinityTree tree(*f.allocator);
    Rng rng(5);
    for (int i = 0; i < 2000; ++i)
        tree.insert(rng.next());
    const auto &loads = f.allocator->bankLoads();
    const auto mx = *std::max_element(loads.begin(), loads.end());
    EXPECT_LT(mx, 2000u / 8) << "hybrid avoids single-bank pileup";
}

// ------------------------------------------------------------ hash

TEST(HashJoin, InsertProbe)
{
    MachineFixture f;
    HashJoinTable table(*f.allocator, 1 << 10, true);
    for (std::uint64_t k = 0; k < 1000; ++k)
        table.insert(k * 7919, k);
    EXPECT_EQ(table.size(), 1000u);
    for (std::uint64_t k = 0; k < 1000; ++k) {
        const auto *n = table.probe(k * 7919);
        ASSERT_NE(n, nullptr);
        EXPECT_EQ(n->value, k);
    }
    EXPECT_EQ(table.probe(13), nullptr);
}

TEST(HashJoin, RejectsNonPow2Buckets)
{
    MachineFixture f;
    EXPECT_THROW(HashJoinTable(*f.allocator, 1000, true), FatalError);
}

TEST(HashJoin, AffinityKeepsChainsInBucketBank)
{
    AllocatorOptions opts;
    opts.policy = BankPolicy::minHop;
    MachineFixture f(opts);
    HashJoinTable table(*f.allocator, 1 << 12, true);
    Rng rng(11);
    for (int i = 0; i < 4000; ++i)
        table.insert(rng.next(), i);
    // Sample buckets: every chain node shares the bucket head's bank.
    for (std::uint64_t b = 0; b < table.numBuckets(); b += 97) {
        const BankId hb = f.machine->bankOfHost(table.bucketHead(b));
        for (const auto *n = *table.bucketHead(b); n; n = n->next)
            EXPECT_EQ(f.machine->bankOfHost(n), hb);
    }
}

TEST(HashJoin, PlainBaselineWorksFunctionally)
{
    MachineFixture f;
    HashJoinTable table(*f.allocator, 1 << 8, false);
    for (std::uint64_t k = 0; k < 100; ++k)
        table.insert(k, k + 1);
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_EQ(table.probe(k)->value, k + 1);
}
