#include <gtest/gtest.h>

#include "workloads/pointer_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

namespace
{

LinkListParams
smallLists()
{
    LinkListParams p;
    p.numLists = 256;
    p.nodesPerList = 256;
    return p;
}

HashJoinParams
smallJoin()
{
    HashJoinParams p;
    p.buildRows = 16 * 1024;
    p.probeRows = 32 * 1024;
    p.numBuckets = 4 * 1024;
    return p;
}

BinTreeParams
smallTree()
{
    BinTreeParams p;
    p.numNodes = 8 * 1024;
    p.numLookups = 16 * 1024;
    return p;
}

} // namespace

TEST(LinkList, ValidInAllModes)
{
    for (ExecMode m :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        const RunResult r = runLinkList(RunConfig::forMode(m),
                                        smallLists());
        EXPECT_TRUE(r.valid) << execModeName(m);
    }
}

TEST(LinkList, OffloadingBeatsInCoreChasing)
{
    const auto core =
        runLinkList(RunConfig::forMode(ExecMode::inCore), smallLists());
    const auto nsc =
        runLinkList(RunConfig::forMode(ExecMode::nearL3), smallLists());
    EXPECT_LT(nsc.cycles(), core.cycles())
        << "NDC pointer chasing avoids the core round trip";
}

TEST(LinkList, AffinityCutsMigrationTraffic)
{
    const auto nl3 =
        runLinkList(RunConfig::forMode(ExecMode::nearL3), smallLists());
    const auto aff = runLinkList(RunConfig::forMode(ExecMode::affAlloc),
                                 smallLists());
    EXPECT_LT(aff.stats.hops[int(TrafficClass::offload)],
              nl3.stats.hops[int(TrafficClass::offload)] + 1);
    EXPECT_LT(aff.hops(), nl3.hops());
}

TEST(HashJoin, ValidInAllModes)
{
    for (ExecMode m :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        const RunResult r =
            runHashJoin(RunConfig::forMode(m), smallJoin());
        EXPECT_TRUE(r.valid) << execModeName(m);
    }
}

TEST(HashJoin, AffinityWins)
{
    const auto nl3 =
        runHashJoin(RunConfig::forMode(ExecMode::nearL3), smallJoin());
    const auto aff = runHashJoin(RunConfig::forMode(ExecMode::affAlloc),
                                 smallJoin());
    EXPECT_LT(aff.cycles(), nl3.cycles());
    EXPECT_LT(double(aff.hops()), 0.6 * double(nl3.hops()));
}

TEST(BinTree, ValidInAllModes)
{
    for (ExecMode m :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        const RunResult r = runBinTree(RunConfig::forMode(m),
                                       smallTree());
        EXPECT_TRUE(r.valid) << execModeName(m);
    }
}

TEST(BinTree, MinHopIsPathological)
{
    // §7.1: Min-Hop allocates the whole tree into one bank, crushing
    // bank-level parallelism; Hybrid-5 avoids it.
    RunConfig rc_min = RunConfig::forMode(ExecMode::affAlloc);
    rc_min.allocOpts.policy = alloc::BankPolicy::minHop;
    const auto min = runBinTree(rc_min, smallTree());

    RunConfig rc_hyb = RunConfig::forMode(ExecMode::affAlloc);
    rc_hyb.allocOpts.policy = alloc::BankPolicy::hybrid;
    rc_hyb.allocOpts.hybridH = 5.0;
    const auto hyb = runBinTree(rc_hyb, smallTree());

    EXPECT_GT(min.cycles(), 3 * hyb.cycles());
    EXPECT_TRUE(min.valid);
    EXPECT_TRUE(hyb.valid);
}

TEST(PointerWorkloads, LnrBeatsRndOnSequentialLists)
{
    // §7.1: linear allocation places consecutive list nodes on
    // neighbouring banks, shortening chases relative to random.
    RunConfig rc_rnd = RunConfig::forMode(ExecMode::affAlloc);
    rc_rnd.allocOpts.policy = alloc::BankPolicy::random;
    RunConfig rc_lnr = RunConfig::forMode(ExecMode::affAlloc);
    rc_lnr.allocOpts.policy = alloc::BankPolicy::linear;
    const auto rnd = runLinkList(rc_rnd, smallLists());
    const auto lnr = runLinkList(rc_lnr, smallLists());
    EXPECT_LT(lnr.stats.totalHops(), rnd.stats.totalHops());
}

TEST(PointerWorkloads, Deterministic)
{
    const auto a =
        runBinTree(RunConfig::forMode(ExecMode::affAlloc), smallTree());
    const auto b =
        runBinTree(RunConfig::forMode(ExecMode::affAlloc), smallTree());
    EXPECT_EQ(a.cycles(), b.cycles());
}
