#include <gtest/gtest.h>

#include "graph/csr.hh"
#include "sim/log.hh"

using namespace affalloc;
using graph::buildCsr;
using graph::Csr;
using graph::Edge;

TEST(Csr, BuildSimpleGraph)
{
    // Fig. 11's toy graph: 0-1, 0-2, 0-3, 1-0, 2-0, 2-3, 3-0, 3-2.
    std::vector<Edge> edges = {{0, 1}, {0, 2}, {0, 3}, {2, 3}};
    const Csr g = buildCsr(4, edges, /*symmetrize=*/true, false);
    EXPECT_EQ(g.numVertices, 4u);
    EXPECT_EQ(g.numEdges(), 8u);
    EXPECT_EQ(g.degree(0), 3u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(g.degree(2), 2u);
    EXPECT_EQ(g.degree(3), 2u);
    const auto n0 = g.neighbors(0);
    EXPECT_EQ(std::vector<graph::VertexId>(n0.begin(), n0.end()),
              (std::vector<graph::VertexId>{1, 2, 3}));
}

TEST(Csr, SelfLoopsRemoved)
{
    std::vector<Edge> edges = {{0, 0}, {0, 1}, {1, 1}};
    const Csr g = buildCsr(2, edges, false, false);
    EXPECT_EQ(g.numEdges(), 1u);
}

TEST(Csr, DuplicatesRemoved)
{
    std::vector<Edge> edges = {{0, 1}, {0, 1}, {0, 1}};
    const Csr g = buildCsr(2, edges, false, false);
    EXPECT_EQ(g.numEdges(), 1u);
}

TEST(Csr, WeightsPreserved)
{
    std::vector<Edge> edges = {{0, 1, 7}, {1, 2, 9}};
    const Csr g = buildCsr(3, edges, false, true);
    ASSERT_EQ(g.weights.size(), 2u);
    EXPECT_EQ(g.weights[0], 7u);
    EXPECT_EQ(g.weights[1], 9u);
}

TEST(Csr, EdgesSortedBySource)
{
    std::vector<Edge> edges = {{2, 0}, {0, 2}, {1, 0}, {0, 1}};
    const Csr g = buildCsr(3, edges, false, false);
    for (graph::VertexId v = 0; v < 3; ++v) {
        for (std::uint64_t e = g.rowOffsets[v]; e < g.rowOffsets[v + 1];
             ++e) {
            // All edges in row v belong to v by construction; check
            // dst ordering within the row.
            if (e + 1 < g.rowOffsets[v + 1]) {
                EXPECT_LE(g.edges[e], g.edges[e + 1]);
            }
        }
    }
}

TEST(Csr, OutOfRangeEdgeIsFatal)
{
    std::vector<Edge> edges = {{0, 9}};
    EXPECT_THROW(buildCsr(2, edges, false, false), FatalError);
}

TEST(Csr, TransposeReversesEdges)
{
    std::vector<Edge> edges = {{0, 1}, {0, 2}, {1, 2}};
    const Csr g = buildCsr(3, edges, false, false);
    const Csr t = g.transpose();
    EXPECT_EQ(t.numEdges(), 3u);
    EXPECT_EQ(t.degree(0), 0u);
    EXPECT_EQ(t.degree(1), 1u);
    EXPECT_EQ(t.degree(2), 2u);
    EXPECT_EQ(t.neighbors(1)[0], 0u);
}

TEST(Csr, TransposeKeepsWeights)
{
    std::vector<Edge> edges = {{0, 1, 5}, {2, 1, 6}};
    const Csr g = buildCsr(3, edges, false, true);
    const Csr t = g.transpose();
    ASSERT_EQ(t.weights.size(), 2u);
    // Vertex 1's incoming edges carry the original weights.
    EXPECT_EQ(t.degree(1), 2u);
    std::vector<std::uint32_t> w(t.weights.begin() + t.rowOffsets[1],
                                 t.weights.begin() + t.rowOffsets[2]);
    std::sort(w.begin(), w.end());
    EXPECT_EQ(w, (std::vector<std::uint32_t>{5, 6}));
}

TEST(Csr, AverageDegree)
{
    std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
    const Csr g = buildCsr(4, edges, false, false);
    EXPECT_DOUBLE_EQ(g.averageDegree(), 1.0);
}

TEST(Csr, SymmetrizeDoublesDistinctEdges)
{
    std::vector<Edge> edges = {{0, 1}, {1, 0}, {1, 2}};
    const Csr g = buildCsr(3, edges, true, false);
    // {0,1},{1,0} symmetrize to themselves; {1,2} adds {2,1}.
    EXPECT_EQ(g.numEdges(), 4u);
}
