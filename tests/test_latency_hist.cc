#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "obs/latency_hist.hh"

using affalloc::obs::LatencyHistogram;

TEST(LatencyHistogram, EmptyReportsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantileUpperBound(0.5), 0u);
    EXPECT_EQ(h.quantileUpperBound(1.0), 0u);
}

TEST(LatencyHistogram, SmallValuesBelowSixteenAreExact)
{
    // Values below 16 get one bucket each: no quantisation at all.
    LatencyHistogram h;
    for (std::uint64_t v = 0; v < 16; ++v) {
        EXPECT_EQ(LatencyHistogram::bucketOf(v), v);
        EXPECT_EQ(
            LatencyHistogram::bucketUpper(LatencyHistogram::bucketOf(v)),
            v);
        h.record(v);
    }
    EXPECT_EQ(h.count(), 16u);
    // 16 samples 0..15: the q-quantile target is ceil-free
    // (target = floor(16q), clamped to [1,16]), so p50 lands on the
    // 8th sample = value 7.
    EXPECT_EQ(h.quantileUpperBound(0.5), 7u);
    EXPECT_EQ(h.quantileUpperBound(1.0), 15u);
}

TEST(LatencyHistogram, SingleSampleAnyQuantile)
{
    LatencyHistogram h;
    h.record(1000);
    EXPECT_EQ(h.count(), 1u);
    for (const double q : {0.001, 0.5, 0.99, 1.0}) {
        const std::uint64_t ub = h.quantileUpperBound(q);
        EXPECT_GE(ub, 1000u) << "q=" << q;
        EXPECT_LE(ub, 1000u + 1000u / 8u) << "q=" << q;
    }
}

TEST(LatencyHistogram, BucketBoundariesExactAtSubBucketEdges)
{
    // A sub-bucket's upper edge maps to its own bucket; the next
    // value starts the next bucket.
    for (std::uint32_t octave = 4; octave < 40; ++octave) {
        const std::uint64_t base = std::uint64_t(1) << octave;
        const std::uint64_t step = base >> 3;
        for (std::uint32_t sub = 0; sub < 8; ++sub) {
            const std::uint64_t lo = base + sub * step;
            const std::uint64_t hi = base + (sub + 1) * step - 1;
            const std::uint32_t idx = LatencyHistogram::bucketOf(lo);
            EXPECT_EQ(idx, octave * 8 + sub);
            EXPECT_EQ(LatencyHistogram::bucketOf(hi), idx);
            EXPECT_EQ(LatencyHistogram::bucketUpper(idx), hi);
            EXPECT_EQ(LatencyHistogram::bucketOf(hi + 1), idx + 1);
        }
    }
}

TEST(LatencyHistogram, UpperBoundWithinTwelvePointFivePercent)
{
    // The documented contract: the reported bound never under-states
    // and over-states by at most 12.5% (one sub-bucket width).
    std::vector<std::uint64_t> probes;
    for (std::uint64_t v = 0; v < 4096; ++v)
        probes.push_back(v);
    for (std::uint32_t octave = 12; octave < 62; ++octave) {
        const std::uint64_t base = std::uint64_t(1) << octave;
        probes.push_back(base);
        probes.push_back(base + 1);
        probes.push_back(base + (base >> 3) - 1);
        probes.push_back(base + 3 * (base >> 3) + 17);
        probes.push_back(2 * base - 1);
    }
    for (const std::uint64_t v : probes) {
        const std::uint64_t ub =
            LatencyHistogram::bucketUpper(LatencyHistogram::bucketOf(v));
        EXPECT_GE(ub, v);
        EXPECT_LE(ub - v, v / 8) << "value " << v;
    }
}

TEST(LatencyHistogram, OverflowBucketHoldsMaxValue)
{
    const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
    const std::uint32_t idx = LatencyHistogram::bucketOf(top);
    EXPECT_EQ(idx, 63u * 8u + 7u);
    EXPECT_EQ(LatencyHistogram::bucketUpper(idx), top);

    LatencyHistogram h;
    h.record(top);
    h.record(1);
    EXPECT_EQ(h.quantileUpperBound(1.0), top);
    EXPECT_EQ(h.quantileUpperBound(0.5), 1u);
}

TEST(LatencyHistogram, QuantilesMonotoneInQ)
{
    LatencyHistogram h;
    std::uint64_t v = 17;
    for (int i = 0; i < 4096; ++i) {
        h.record(v);
        v = v * 2862933555777941757ull + 3037000493ull;
        v = (v >> 24) + 1; // spread over several octaves
    }
    std::uint64_t prev = 0;
    for (const double q :
         {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
        const std::uint64_t ub = h.quantileUpperBound(q);
        EXPECT_GE(ub, prev) << "q=" << q;
        prev = ub;
    }
}

TEST(LatencyHistogram, QuantileBoundsTrueQuantile)
{
    // Against a known distribution 1..N the bound must bracket the
    // exact order statistic from above within the 12.5% contract.
    const std::uint64_t n = 10000;
    LatencyHistogram h;
    for (std::uint64_t i = 1; i <= n; ++i)
        h.record(i);
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
        std::uint64_t target = static_cast<std::uint64_t>(
            q * static_cast<double>(n));
        if (target < 1)
            target = 1;
        const std::uint64_t ub = h.quantileUpperBound(q);
        EXPECT_GE(ub, target) << "q=" << q;
        EXPECT_LE(ub - target, target / 8) << "q=" << q;
    }
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording)
{
    LatencyHistogram a, b, combined;
    for (std::uint64_t i = 0; i < 500; ++i) {
        const std::uint64_t va = 31 * i + 7;
        const std::uint64_t vb = (i * i) % 100000 + 1;
        a.record(va);
        combined.record(va);
        b.record(vb);
        combined.record(vb);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    for (const double q : {0.01, 0.5, 0.9, 0.99, 1.0})
        EXPECT_EQ(a.quantileUpperBound(q), combined.quantileUpperBound(q))
            << "q=" << q;
}
