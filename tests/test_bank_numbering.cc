#include <gtest/gtest.h>

#include <set>

#include "workloads/affine_workloads.hh"

#include "test_helpers.hh"

using namespace affalloc;
using sim::BankNumbering;
using test::MachineFixture;
using namespace affalloc::workloads;

TEST(BankNumbering, Names)
{
    EXPECT_STREQ(sim::bankNumberingName(BankNumbering::rowMajor),
                 "row-major");
    EXPECT_STREQ(sim::bankNumberingName(BankNumbering::snake), "snake");
    EXPECT_STREQ(sim::bankNumberingName(BankNumbering::block2),
                 "block2x2");
}

TEST(BankNumbering, RowMajorIsIdentity)
{
    sim::MachineConfig cfg;
    os::SimOS os(cfg);
    nsc::Machine m(cfg, os);
    for (BankId b = 0; b < 64; ++b)
        EXPECT_EQ(m.tileOfBank(b), b);
}

TEST(BankNumbering, EveryNumberingIsAPermutation)
{
    for (BankNumbering n : {BankNumbering::rowMajor,
                            BankNumbering::snake,
                            BankNumbering::block2}) {
        sim::MachineConfig cfg;
        cfg.bankNumbering = n;
        os::SimOS os(cfg);
        nsc::Machine m(cfg, os);
        std::set<TileId> tiles;
        for (BankId b = 0; b < 64; ++b)
            tiles.insert(m.tileOfBank(b));
        EXPECT_EQ(tiles.size(), 64u) << sim::bankNumberingName(n);
    }
}

TEST(BankNumbering, SnakeMakesConsecutiveBanksAdjacent)
{
    sim::MachineConfig cfg;
    cfg.bankNumbering = BankNumbering::snake;
    os::SimOS os(cfg);
    nsc::Machine m(cfg, os);
    // Every consecutive bank pair is exactly one hop apart — the
    // whole point of boustrophedon numbering (no row-wrap jump).
    for (BankId b = 0; b + 1 < 64; ++b)
        EXPECT_EQ(m.hopsBetween(b, b + 1), 1u) << "bank " << b;
}

TEST(BankNumbering, RowMajorHasRowWrapJumps)
{
    sim::MachineConfig cfg;
    os::SimOS os(cfg);
    nsc::Machine m(cfg, os);
    EXPECT_EQ(m.hopsBetween(7, 8), 8u) << "wrap to the next row";
}

TEST(BankNumbering, Block2KeepsQuadsTogether)
{
    sim::MachineConfig cfg;
    cfg.bankNumbering = BankNumbering::block2;
    os::SimOS os(cfg);
    nsc::Machine m(cfg, os);
    // Banks 0..3 form one 2x2 block: pairwise distance <= 2.
    for (BankId a = 0; a < 4; ++a)
        for (BankId b = 0; b < 4; ++b)
            EXPECT_LE(m.hopsBetween(a, b), 2u);
}

TEST(BankNumbering, SnakeImprovesNeighbourInterleaving)
{
    // A 64 B-interleaved array walks banks in id order; snake
    // numbering makes that walk physically contiguous, reducing
    // average consecutive-block distance.
    auto avg_consecutive = [](BankNumbering n) {
        sim::MachineConfig cfg;
        cfg.bankNumbering = n;
        os::SimOS os(cfg);
        nsc::Machine m(cfg, os);
        double sum = 0;
        for (BankId b = 0; b < 64; ++b)
            sum += m.hopsBetween(b, (b + 1) % 64);
        return sum / 64.0;
    };
    EXPECT_LT(avg_consecutive(BankNumbering::snake),
              avg_consecutive(BankNumbering::rowMajor));
}

TEST(BankNumbering, WorkloadsRunCorrectlyUnderEveryNumbering)
{
    for (BankNumbering n : {BankNumbering::rowMajor,
                            BankNumbering::snake,
                            BankNumbering::block2}) {
        RunConfig rc = RunConfig::forMode(ExecMode::affAlloc);
        rc.machine.bankNumbering = n;
        VecAddParams p;
        p.n = 100'000;
        const auto r = runVecAdd(rc, p);
        EXPECT_TRUE(r.valid) << sim::bankNumberingName(n);
        // Aligned arrays stay aligned whatever the numbering.
        EXPECT_LT(double(r.stats.hops[int(TrafficClass::data)]),
                  0.05 * double(r.hops()) + 500);
    }
}
