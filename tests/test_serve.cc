/**
 * @file
 * Tests for the open-system serving front-end: determinism of the
 * whole request ledger, overload shedding/timeout accounting, arena
 * recycle hygiene under churn, mid-flight fault campaigns with
 * re-affinity recovery, and the latency histogram underneath the
 * quantile reporting.
 */

#include <gtest/gtest.h>

#include "obs/latency_hist.hh"
#include "serve/serve.hh"
#include "sim/fault.hh"
#include "sim/log.hh"

using namespace affalloc;

namespace
{

/** A small CI-scale serving config: one cheap class, two slots. */
serve::ServeOptions
quickOptions()
{
    serve::ServeOptions o;
    o.quick = true;
    o.seed = 7;
    o.numRequests = 12;
    o.slots = 2;
    o.queueCapacity = 4;
    o.arrivalsPerMcycle = 1.0;
    o.maxCycles = 2'000'000'000ULL;
    serve::ServeClass cls;
    cls.workload = "vecadd";
    o.classes.push_back(cls);
    return o;
}

} // namespace

// ------------------------------------------------- latency histogram

TEST(LatencyHistogram, SmallValuesAreExact)
{
    obs::LatencyHistogram h;
    for (std::uint64_t v = 0; v < 16; ++v)
        EXPECT_EQ(obs::LatencyHistogram::bucketOf(v), v);
    h.record(7);
    EXPECT_EQ(h.quantileUpperBound(0.5), 7u);
    EXPECT_EQ(h.quantileUpperBound(1.0), 7u);
}

TEST(LatencyHistogram, UpperBoundWithinTwelveAndAHalfPercent)
{
    for (std::uint64_t v : {16ull, 17ull, 100ull, 1000ull, 123456ull,
                            87654321ull, (1ull << 40) + 12345ull}) {
        obs::LatencyHistogram h;
        h.record(v);
        const std::uint64_t ub = h.quantileUpperBound(0.99);
        EXPECT_GE(ub, v);
        EXPECT_LE(static_cast<double>(ub),
                  static_cast<double>(v) * 1.125 + 1.0)
            << "value " << v;
    }
}

TEST(LatencyHistogram, QuantilesWalkTheDistribution)
{
    obs::LatencyHistogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.record(v * 1000);
    EXPECT_EQ(h.count(), 1000u);
    const std::uint64_t p50 = h.quantileUpperBound(0.5);
    const std::uint64_t p99 = h.quantileUpperBound(0.99);
    const std::uint64_t p999 = h.quantileUpperBound(0.999);
    EXPECT_LE(p50, p99);
    EXPECT_LE(p99, p999);
    EXPECT_GE(p50, 500'000u);
    EXPECT_GE(p99, 990'000u);
    EXPECT_LE(p999, static_cast<std::uint64_t>(1000'000 * 1.125));

    obs::LatencyHistogram other;
    other.record(5);
    other.merge(h);
    EXPECT_EQ(other.count(), 1001u);
}

// --------------------------------------------------- option validation

TEST(ServeOptions, InvalidConfigsAreFatal)
{
    {
        serve::ServeOptions o = quickOptions();
        o.maxCycles = 0;
        EXPECT_THROW(serve::runServe(o), FatalError);
    }
    {
        serve::ServeOptions o = quickOptions();
        o.classes[0].workload = "no_such_workload";
        EXPECT_THROW(serve::runServe(o), FatalError);
    }
    {
        serve::ServeOptions o = quickOptions();
        o.burstiness = 2.0;
        EXPECT_THROW(serve::runServe(o), FatalError);
    }
    {
        // A campaign event beyond the horizon would never fire.
        serve::ServeOptions o = quickOptions();
        sim::TimedFault ev;
        ev.atCycle = o.maxCycles + 1;
        o.faultSchedule.push_back(ev);
        EXPECT_THROW(serve::runServe(o), FatalError);
    }
    {
        // ... as would a kill aimed at a bank outside the mesh.
        serve::ServeOptions o = quickOptions();
        sim::TimedFault ev;
        ev.target = o.machine.numBanks();
        o.faultSchedule.push_back(ev);
        EXPECT_THROW(serve::runServe(o), FatalError);
    }
}

// ------------------------------------------------------- determinism

TEST(ServeOpen, LedgerIsDeterministicAcrossReruns)
{
    const serve::ServeOptions o = quickOptions();
    const serve::ServeReport a = serve::runServe(o);
    const serve::ServeReport b = serve::runServe(o);
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_EQ(a.endCycle, b.endCycle);
    EXPECT_EQ(a.corunDigest, b.corunDigest);

    EXPECT_EQ(a.offered, o.numRequests);
    EXPECT_EQ(a.offered, a.completed + a.shed + a.timedOut);
    EXPECT_GT(a.completed, 0u);
    EXPECT_TRUE(a.allValid);
    EXPECT_GT(a.goodputPerMcycle, 0.0);
    EXPECT_GT(a.worstP99Slowdown, 0.0);

    // A different seed produces a different arrival pattern.
    serve::ServeOptions o2 = o;
    o2.seed = 8;
    EXPECT_NE(serve::runServe(o2).digest(), a.digest());
}

TEST(ServeOpen, ReportAccountingIsConsistent)
{
    const serve::ServeReport r = serve::runServe(quickOptions());
    std::uint32_t ok = 0, shed = 0, tmo = 0;
    for (const serve::RequestRecord &q : r.requests) {
        EXPECT_NE(q.outcome, serve::RequestOutcome::pending);
        switch (q.outcome) {
          case serve::RequestOutcome::completed:
            ok += 1;
            EXPECT_GE(q.admit, q.enqueue);
            EXPECT_GE(q.finish, q.admit);
            EXPECT_GE(q.enqueue, q.arrival);
            break;
          case serve::RequestOutcome::shed:
            shed += 1;
            break;
          default:
            tmo += 1;
            break;
        }
    }
    EXPECT_EQ(ok, r.completed);
    EXPECT_EQ(shed, r.shed);
    EXPECT_EQ(tmo, r.timedOut);
    std::uint32_t class_offered = 0;
    for (const serve::ClassSummary &c : r.classes)
        class_offered += c.offered;
    EXPECT_EQ(class_offered, r.offered);
    // Every rejection either scheduled a retry or finalized a shed.
    EXPECT_EQ(r.shedAttempts, r.retries + r.shed);
}

// ------------------------------------------------ overload shedding

TEST(ServeOpen, OverloadShedsDeterministically)
{
    // Arrivals far faster than service with a tiny queue and little
    // patience: the controller must shed and/or time out, terminate
    // at the horizon, and account every request exactly once.
    serve::ServeOptions o = quickOptions();
    o.numRequests = 60;
    o.arrivalsPerMcycle = 20'000.0; // mean gap 50 cycles: a flood
    o.burstiness = 0.5;
    o.queueCapacity = 2;
    o.slots = 1;
    o.classes[0].maxRetries = 1;
    o.classes[0].retryBackoff = 30'000;
    o.classes[0].giveUpAfter = 100'000;
    o.maxCycles = 40'000'000;

    const serve::ServeReport a = serve::runServe(o);
    const serve::ServeReport b = serve::runServe(o);
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_EQ(a.offered, a.completed + a.shed + a.timedOut);
    EXPECT_GT(a.shed + a.timedOut, 0u);
    EXPECT_GT(a.retries, 0u);
    EXPECT_GT(a.peakQueueDepth, 0u);
    EXPECT_LE(a.peakQueueDepth, o.queueCapacity);
    EXPECT_LT(a.availability, 1.0);
}

TEST(ServeOpen, HorizonFlushBoundsTheRun)
{
    // Arrivals trickle in far apart while the horizon is tiny: the
    // run must terminate at the horizon with everything still
    // pending marked timed out, not idle-loop forever.
    serve::ServeOptions o = quickOptions();
    o.numRequests = 20;
    o.arrivalsPerMcycle = 0.05; // mean gap 20M cycles
    o.maxCycles = 500'000;

    const serve::ServeReport a = serve::runServe(o);
    const serve::ServeReport b = serve::runServe(o);
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_EQ(a.offered, a.completed + a.shed + a.timedOut);
    EXPECT_GT(a.timedOut, 0u);
}

// ------------------------------------------- arena recycle hygiene

TEST(ServeOpen, ArenaRecycleHygieneUnderChurn)
{
    // 120 admit/run/free cycles through 2 recycled slots. The
    // engine's onFinish asserts, at every recycle, that the finished
    // job unregistered all of its host ranges and leaked no IOT
    // entries — the dtor/range-reuse bug class caught red-handed
    // instead of as cross-request aliasing three jobs later.
    serve::ServeOptions o = quickOptions();
    o.numRequests = 120;
    o.arrivalsPerMcycle = 50.0;
    o.queueCapacity = 120; // nothing sheds: every request runs
    o.classes[0].giveUpAfter = 2'000'000'000ULL;
    o.classes[0].maxRetries = 0;
    o.maxCycles = 2'000'000'000ULL;

    const serve::ServeReport r = serve::runServe(o);
    EXPECT_EQ(r.completed, 120u);
    EXPECT_EQ(r.shed, 0u);
    EXPECT_EQ(r.timedOut, 0u);
    EXPECT_TRUE(r.allValid);
}

// ------------------------------------------- mid-flight fault drill

TEST(ServeOpen, MidFlightBankKillWithReaffinityRecovery)
{
    serve::ServeOptions base = quickOptions();
    base.numRequests = 16;
    base.arrivalsPerMcycle = 4.0;
    base.maxCycles = 2'000'000'000ULL;
    // Kill two banks early enough that most requests run degraded.
    sim::TimedFault k1, k2;
    k1.kind = sim::FaultKind::killBank;
    k1.target = 9;
    k1.atCycle = 200'000;
    k2.kind = sim::FaultKind::killBank;
    k2.target = 10;
    k2.atCycle = 400'000;
    base.faultSchedule = {k1, k2};
    sim::TimedFault dl;
    dl.kind = sim::FaultKind::degradeLink;
    dl.target = 4 * 4 + 0; // tile 4 east
    dl.atCycle = 300'000;
    dl.factor = 4;
    base.faultSchedule.push_back(dl);

    serve::ServeOptions rec = base;
    rec.reaffinity = true;
    serve::ServeOptions norec = base;
    norec.reaffinity = false;

    const serve::ServeReport a = serve::runServe(rec);
    const serve::ServeReport a2 = serve::runServe(rec);
    const serve::ServeReport b = serve::runServe(norec);

    // The campaign fired on both runs, deterministically.
    EXPECT_EQ(a.digest(), a2.digest());
    EXPECT_EQ(a.banksKilled, 2u);
    EXPECT_EQ(b.banksKilled, 2u);
    EXPECT_EQ(a.linksDegraded, 1u);
    // Recovery re-targeted every dead bank at least once (the second
    // kill re-runs the assignment for both dead banks).
    EXPECT_GE(a.reaffinityMoves, 3u);
    EXPECT_EQ(b.reaffinityMoves, 0u);

    // Both runs keep serving: the system degrades, it does not stop.
    EXPECT_EQ(a.offered, a.completed + a.shed + a.timedOut);
    EXPECT_EQ(b.offered, b.completed + b.shed + b.timedOut);
    EXPECT_GT(a.completed, 0u);
    EXPECT_GT(b.completed, 0u);
    EXPECT_TRUE(a.allValid);

    // The recovery decision changes placement, hence the ledger.
    EXPECT_NE(a.digest(), b.digest());
    // And availability with recovery is at least as good.
    EXPECT_GE(a.availability, b.availability);
}

TEST(ServeOpen, SpareExhaustionCascadeIsSuppressedNotFatal)
{
    // A cascade that schedules the death of every bank in the mesh:
    // the engine must clamp the cascade at the last live bank
    // (counting the suppression) and keep serving in terminal
    // degradation instead of crashing or asserting.
    serve::ServeOptions o = quickOptions();
    o.numRequests = 8;
    o.arrivalsPerMcycle = 4.0;
    o.reaffinity = true;
    for (std::uint32_t b = 0; b < 64; ++b) {
        sim::TimedFault k;
        k.kind = sim::FaultKind::killBank;
        k.target = b;
        k.atCycle = 50'000 + 10'000ULL * b;
        o.faultSchedule.push_back(k);
    }
    const serve::ServeReport r = serve::runServe(o);
    EXPECT_EQ(r.banksKilled, 63u);
    EXPECT_EQ(r.killsSuppressed, 1u);
    EXPECT_EQ(r.offered, r.completed + r.shed + r.timedOut);
    EXPECT_GT(r.completed, 0u);
    EXPECT_TRUE(r.allValid);
    // Deterministic, like every other campaign.
    EXPECT_EQ(serve::runServe(o).digest(), r.digest());
}

TEST(ServeOpen, NackStormScheduleAppliesAndHeals)
{
    serve::ServeOptions o = quickOptions();
    o.numRequests = 6;
    o.arrivalsPerMcycle = 4.0;
    o.faultSchedule =
        sim::parseFaultSchedule("nack:1000@100000,nack:0@900000");
    const serve::ServeReport a = serve::runServe(o);
    const serve::ServeReport b = serve::runServe(o);
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_EQ(a.nackStorms, 2u);
    EXPECT_EQ(a.offered, a.completed + a.shed + a.timedOut);
    EXPECT_GT(a.completed, 0u);
    EXPECT_TRUE(a.allValid);

    // The storm actually bit: requests served during it paid the
    // NACK/backoff tax, so the ledger differs from a calm run.
    serve::ServeOptions calm = o;
    calm.faultSchedule.clear();
    EXPECT_NE(serve::runServe(calm).digest(), a.digest());
}
