/**
 * @file
 * Cross-product property sweep: every workload must produce correct
 * results and sane statistics under every (mode x policy x bank
 * numbering) combination. Small inputs keep the whole matrix fast.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.hh"
#include "workloads/affine_workloads.hh"
#include "workloads/graph_workloads.hh"
#include "workloads/pointer_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

namespace
{

const graph::Csr &
matrixGraph()
{
    static const graph::Csr g = [] {
        graph::KroneckerParams p;
        p.scale = 10;
        p.edgeFactor = 8;
        return graph::kronecker(p);
    }();
    return g;
}

using Combo = std::tuple<ExecMode, alloc::BankPolicy,
                         sim::BankNumbering>;

RunConfig
configOf(const Combo &combo)
{
    RunConfig rc = RunConfig::forMode(std::get<0>(combo));
    rc.allocOpts.policy = std::get<1>(combo);
    rc.allocOpts.hybridH = 5.0;
    rc.machine.bankNumbering = std::get<2>(combo);
    return rc;
}

class WorkloadMatrix : public ::testing::TestWithParam<Combo>
{
};

std::string
comboName(const ::testing::TestParamInfo<Combo> &info)
{
    std::string name = execModeName(std::get<0>(info.param));
    name += "_";
    name += alloc::bankPolicyName(std::get<1>(info.param));
    name += "_";
    name += sim::bankNumberingName(std::get<2>(info.param));
    for (char &c : name) {
        if (c == '-')
            c = '_';
    }
    return name;
}

} // namespace

TEST_P(WorkloadMatrix, AffineWorkloadsValid)
{
    const RunConfig rc = configOf(GetParam());
    VecAddParams vp;
    vp.n = 30'000;
    vp.layout = rc.mode == ExecMode::affAlloc ? VecAddLayout::affinity
                                              : VecAddLayout::heapLinear;
    EXPECT_TRUE(runVecAdd(rc, vp).valid);
    HotspotParams hp;
    hp.rows = 64;
    hp.cols = 256;
    hp.iters = 2;
    EXPECT_TRUE(runHotspot(rc, hp).valid);
}

TEST_P(WorkloadMatrix, GraphWorkloadsValid)
{
    const RunConfig rc = configOf(GetParam());
    GraphParams p;
    p.graph = &matrixGraph();
    p.iters = 2;
    EXPECT_TRUE(runPageRankPush(rc, p).valid);
    EXPECT_TRUE(runSssp(rc, p).valid);
    EXPECT_TRUE(runBfs(rc, p, defaultBfsStrategy(rc.mode)).run.valid);
}

TEST_P(WorkloadMatrix, PointerWorkloadsValid)
{
    const RunConfig rc = configOf(GetParam());
    LinkListParams lp;
    lp.numLists = 64;
    lp.nodesPerList = 32;
    EXPECT_TRUE(runLinkList(rc, lp).valid);
    BinTreeParams bp;
    bp.numNodes = 2048;
    bp.numLookups = 4096;
    EXPECT_TRUE(runBinTree(rc, bp).valid);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, WorkloadMatrix,
    ::testing::Combine(
        ::testing::Values(ExecMode::inCore, ExecMode::nearL3,
                          ExecMode::affAlloc),
        ::testing::Values(alloc::BankPolicy::random,
                          alloc::BankPolicy::hybrid),
        ::testing::Values(sim::BankNumbering::rowMajor,
                          sim::BankNumbering::snake,
                          sim::BankNumbering::block2)),
    comboName);
