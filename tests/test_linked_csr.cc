#include <gtest/gtest.h>

#include "ds/linked_csr.hh"
#include "graph/generators.hh"
#include "sim/log.hh"

#include "test_helpers.hh"

using namespace affalloc;
using alloc::AffineArray;
using alloc::AllocatorOptions;
using alloc::BankPolicy;
using ds::LinkedCsr;
using ds::LinkedCsrOptions;
using test::MachineFixture;

namespace
{

/** Partitioned per-vertex property array for a graph. */
void *
makeVertexArray(MachineFixture &f, graph::VertexId n)
{
    AffineArray req;
    req.elem_size = 4;
    req.num_elem = n;
    req.partition = true;
    return f.allocator->mallocAff(req);
}

graph::Csr
smallGraph()
{
    graph::KroneckerParams p;
    p.scale = 10;
    p.edgeFactor = 8;
    return graph::kronecker(p);
}

} // namespace

TEST(LinkedCsr, PreservesAllEdges)
{
    MachineFixture f;
    const auto g = smallGraph();
    void *v = makeVertexArray(f, g.numVertices);
    LinkedCsr lcsr(g, *f.allocator, v, 4);

    std::uint64_t total = 0;
    for (graph::VertexId u = 0; u < g.numVertices; ++u) {
        std::vector<graph::VertexId> got;
        for (auto *n = lcsr.head(u); n; n = n->next())
            for (std::uint32_t i = 0; i < n->count(); ++i)
                got.push_back(n->dst(i));
        const auto want = g.neighbors(u);
        ASSERT_EQ(got.size(), want.size()) << "vertex " << u;
        EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
        total += got.size();
    }
    EXPECT_EQ(total, g.numEdges());
}

TEST(LinkedCsr, WeightedEdgesPreserved)
{
    MachineFixture f;
    const auto g = smallGraph();
    void *v = makeVertexArray(f, g.numVertices);
    LinkedCsrOptions opts;
    opts.weighted = true;
    LinkedCsr lcsr(g, *f.allocator, v, 4, opts);
    EXPECT_EQ(lcsr.edgesPerNode(), (64u - 8u) / 8u);

    for (graph::VertexId u = 0; u < 64; ++u) {
        std::uint64_t e = g.rowOffsets[u];
        for (auto *n = lcsr.head(u); n; n = n->next()) {
            for (std::uint32_t i = 0; i < n->count(); ++i, ++e) {
                EXPECT_EQ(n->dst(i), g.edges[e]);
                EXPECT_EQ(n->weight(i), g.weights[e]);
            }
        }
        EXPECT_EQ(e, g.rowOffsets[u + 1]);
    }
}

TEST(LinkedCsr, NodeCountMatchesCeiling)
{
    MachineFixture f;
    const auto g = smallGraph();
    void *v = makeVertexArray(f, g.numVertices);
    LinkedCsr lcsr(g, *f.allocator, v, 4);
    const std::uint32_t per = lcsr.edgesPerNode();
    std::uint64_t expect = 0;
    for (graph::VertexId u = 0; u < g.numVertices; ++u)
        expect += (g.degree(u) + per - 1) / per;
    EXPECT_EQ(lcsr.numNodes(), expect);
}

TEST(LinkedCsr, UnweightedNodeHoldsFourteenEdges)
{
    // The paper: "a 64 B cache line can hold 14 edges of 4 B after
    // the 8 B pointer".
    MachineFixture f;
    const auto g = smallGraph();
    void *v = makeVertexArray(f, g.numVertices);
    LinkedCsr lcsr(g, *f.allocator, v, 4);
    EXPECT_EQ(lcsr.edgesPerNode(), 14u);
}

TEST(LinkedCsr, LargerNodesHoldMoreEdges)
{
    MachineFixture f;
    const auto g = smallGraph();
    void *v = makeVertexArray(f, g.numVertices);
    LinkedCsrOptions opts;
    opts.nodeBytes = 128;
    LinkedCsr lcsr(g, *f.allocator, v, 4, opts);
    EXPECT_EQ(lcsr.edgesPerNode(), (128u - 8u) / 4u);

    // Beyond 128 B the packed count field (5 bits) caps a node at 31
    // entries.
    LinkedCsrOptions big;
    big.nodeBytes = 256;
    LinkedCsr lcsr_big(g, *f.allocator, v, 4, big);
    EXPECT_EQ(lcsr_big.edgesPerNode(), 31u);
}

TEST(LinkedCsr, MinHopPlacesNodesNearDestinations)
{
    AllocatorOptions aopts;
    aopts.policy = BankPolicy::minHop;
    MachineFixture f(aopts);
    const auto g = smallGraph();
    void *v = makeVertexArray(f, g.numVertices);
    LinkedCsr lcsr(g, *f.allocator, v, 4);

    // Average distance from each node to its destinations must be
    // far below the mesh average (~5.3 hops on 8x8).
    double sum = 0.0;
    std::uint64_t cnt = 0;
    for (graph::VertexId u = 0; u < g.numVertices; ++u) {
        for (auto *n = lcsr.head(u); n; n = n->next()) {
            const BankId nb = f.machine->bankOfHost(n);
            for (std::uint32_t i = 0; i < n->count(); ++i) {
                const BankId vb = f.allocator->bankOfElement(v, n->dst(i));
                sum += f.machine->hopsBetween(nb, vb);
                ++cnt;
            }
        }
    }
    EXPECT_LT(sum / double(cnt), 2.5);
}

TEST(LinkedCsr, AffinityBeatsNoAffinityPlacement)
{
    auto avg_dist = [](bool use_aff) {
        AllocatorOptions aopts;
        aopts.policy = use_aff ? BankPolicy::minHop : BankPolicy::random;
        MachineFixture f(aopts);
        const auto g = smallGraph();
        void *v = makeVertexArray(f, g.numVertices);
        LinkedCsrOptions opts;
        opts.useAffinity = use_aff;
        LinkedCsr lcsr(g, *f.allocator, v, 4, opts);
        double sum = 0.0;
        std::uint64_t cnt = 0;
        for (graph::VertexId u = 0; u < g.numVertices; ++u) {
            for (auto *n = lcsr.head(u); n; n = n->next()) {
                const BankId nb = f.machine->bankOfHost(n);
                for (std::uint32_t i = 0; i < n->count(); ++i) {
                    sum += f.machine->hopsBetween(
                        nb, f.allocator->bankOfElement(v, n->dst(i)));
                    ++cnt;
                }
            }
        }
        return sum / double(cnt);
    };
    EXPECT_LT(avg_dist(true), 0.6 * avg_dist(false));
}

TEST(LinkedCsr, RejectsBadNodeSize)
{
    MachineFixture f;
    const auto g = smallGraph();
    void *v = makeVertexArray(f, g.numVertices);
    LinkedCsrOptions opts;
    opts.nodeBytes = 100;
    EXPECT_THROW(LinkedCsr(g, *f.allocator, v, 4, opts), FatalError);
}

TEST(LinkedCsr, RequiresRecordedVertexArray)
{
    MachineFixture f;
    const auto g = smallGraph();
    int dummy;
    EXPECT_THROW(LinkedCsr(g, *f.allocator, &dummy, 4), FatalError);
}
