#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "ds/spatial_queue.hh"
#include "test_helpers.hh"

using namespace affalloc;
using alloc::AffineArray;
using ds::SpatialQueue;
using test::MachineFixture;

namespace
{

void *
makePartitionedArray(MachineFixture &f, std::uint64_t n)
{
    AffineArray req;
    req.elem_size = 4;
    req.num_elem = n;
    req.partition = true;
    return f.allocator->mallocAff(req);
}

} // namespace

TEST(SpatialQueue, PushRoutesToOwningPartition)
{
    MachineFixture f;
    const std::uint64_t n = 1 << 16;
    void *v = makePartitionedArray(f, n);
    SpatialQueue q(*f.allocator, v, n, 64);
    q.push(0);
    q.push(static_cast<std::uint32_t>(n - 1));
    q.push(static_cast<std::uint32_t>(n / 2));
    EXPECT_EQ(q.partition(0).size(), 1u);
    EXPECT_EQ(q.partition(63).size(), 1u);
    EXPECT_EQ(q.partition(32).size(), 1u);
    EXPECT_EQ(q.size(), 3u);
}

TEST(SpatialQueue, AllElementsRecoverable)
{
    MachineFixture f;
    const std::uint64_t n = 4096;
    void *v = makePartitionedArray(f, n);
    SpatialQueue q(*f.allocator, v, n, 64);
    for (std::uint32_t i = 0; i < n; i += 3)
        q.push(i);
    std::set<std::uint32_t> got;
    for (std::uint32_t p = 0; p < 64; ++p)
        for (std::uint32_t x : q.partition(p))
            got.insert(x);
    EXPECT_EQ(got.size(), (n + 2) / 3);
    EXPECT_TRUE(got.count(0));
    EXPECT_TRUE(got.count(4095));
}

TEST(SpatialQueue, ClearResets)
{
    MachineFixture f;
    const std::uint64_t n = 4096;
    void *v = makePartitionedArray(f, n);
    SpatialQueue q(*f.allocator, v, n, 64);
    for (std::uint32_t i = 0; i < 100; ++i)
        q.push(i);
    q.clear();
    EXPECT_EQ(q.size(), 0u);
    for (std::uint32_t p = 0; p < 64; ++p)
        EXPECT_TRUE(q.partition(p).empty());
}

TEST(SpatialQueue, TailsLiveInPartitionBanks)
{
    MachineFixture f;
    const std::uint64_t n = 1 << 16;
    void *v = makePartitionedArray(f, n);
    SpatialQueue q(*f.allocator, v, n, 64);
    for (std::uint32_t p = 0; p < 64; ++p) {
        const std::uint64_t first = std::uint64_t(p) * n / 64;
        EXPECT_EQ(f.machine->bankOfHost(q.tailPtr(p)),
                  f.allocator->bankOfElement(v, first))
            << "partition " << p;
    }
}

TEST(SpatialQueue, StorageAlignedWithPartitions)
{
    MachineFixture f;
    const std::uint64_t n = 1 << 16;
    void *v = makePartitionedArray(f, n);
    SpatialQueue q(*f.allocator, v, n, 64, /*capacity_factor=*/2);
    // Slot 0 of each partition is in the partition's bank (pushes are
    // local — the whole point of the structure).
    for (std::uint32_t p = 0; p < 64; ++p) {
        const std::uint64_t first = std::uint64_t(p) * n / 64;
        EXPECT_EQ(f.machine->bankOfHost(q.slotPtr(p, 0)),
                  f.allocator->bankOfElement(v, first))
            << "partition " << p;
    }
}

TEST(SpatialQueue, OverflowSpills)
{
    MachineFixture f;
    const std::uint64_t n = 1 << 12;
    void *v = makePartitionedArray(f, n);
    SpatialQueue q(*f.allocator, v, n, 64, /*capacity_factor=*/1);
    // Push partition 0's id repeatedly beyond its capacity.
    const std::uint32_t cap = q.capacity();
    for (std::uint32_t i = 0; i < cap + 5; ++i)
        q.push(0);
    EXPECT_EQ(q.spills().size(), 5u);
    EXPECT_EQ(q.size(), std::uint64_t(cap) + 5);
}

TEST(SpatialQueue, FewerPartitionsThanBanksSupported)
{
    MachineFixture f;
    const std::uint64_t n = 1 << 12;
    void *v = makePartitionedArray(f, n);
    SpatialQueue q(*f.allocator, v, n, 16);
    for (std::uint32_t i = 0; i < 256; ++i)
        q.push(i * 13 % n);
    EXPECT_EQ(q.size(), 256u);
}
