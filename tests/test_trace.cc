#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/trace.hh"
#include "sim/log.hh"
#include "workloads/affine_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

struct TempFile
{
    std::string path;
    explicit TempFile(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {}
    ~TempFile() { std::remove(path.c_str()); }
};

} // namespace

TEST(Trace, TimelineCsvHasOneRowPerEpoch)
{
    VecAddParams p;
    p.n = 100'000;
    const auto r = runVecAdd(RunConfig::forMode(ExecMode::affAlloc), p);
    TempFile tmp("timeline.csv");
    harness::writeTimelineCsv(r, tmp.path);
    const std::string csv = slurp(tmp.path);
    // Header + one line per epoch.
    const auto lines = std::count(csv.begin(), csv.end(), '\n');
    EXPECT_EQ(std::size_t(lines), r.timeline.size() + 1);
    EXPECT_NE(csv.find("epoch,end_cycle,phase"), std::string::npos);
}

TEST(Trace, ComparisonCsvRoundTrips)
{
    harness::Comparison cmp({"a", "b"});
    RunResult r1;
    r1.stats.cycles = 123;
    r1.joules = 0.5;
    r1.valid = true;
    RunResult r2;
    r2.stats.cycles = 456;
    r2.stats.hops[int(TrafficClass::data)] = 99;
    r2.valid = false;
    cmp.add("wl", {r1, r2});
    TempFile tmp("cmp.csv");
    harness::writeComparisonCsv(cmp, {"a", "b"}, tmp.path);
    const std::string csv = slurp(tmp.path);
    EXPECT_NE(csv.find("wl,a,123"), std::string::npos);
    EXPECT_NE(csv.find("wl,b,456"), std::string::npos);
    EXPECT_NE(csv.find(",99,"), std::string::npos);
    // Valid flags round-trip; classic results carry the ndc class.
    EXPECT_NE(csv.find(",1,ndc\n"), std::string::npos);
    EXPECT_NE(csv.find(",0,ndc\n"), std::string::npos);
}

TEST(Trace, UnwritablePathIsFatal)
{
    harness::Comparison cmp({"x"});
    EXPECT_THROW(harness::writeComparisonCsv(
                     cmp, {"x"}, "/nonexistent-dir/foo.csv"),
                 FatalError);
}
