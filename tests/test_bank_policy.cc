#include <gtest/gtest.h>

#include <set>

#include "test_helpers.hh"

using namespace affalloc;
using alloc::AllocatorOptions;
using alloc::BankPolicy;
using test::MachineFixture;

namespace
{

MachineFixture
makeFixture(BankPolicy policy, double h = 5.0)
{
    AllocatorOptions opts;
    opts.policy = policy;
    opts.hybridH = h;
    return MachineFixture(opts);
}

} // namespace

TEST(BankPolicy, Names)
{
    EXPECT_STREQ(alloc::bankPolicyName(BankPolicy::random), "Rnd");
    EXPECT_STREQ(alloc::bankPolicyName(BankPolicy::linear), "Lnr");
    EXPECT_STREQ(alloc::bankPolicyName(BankPolicy::minHop), "Min-Hop");
    EXPECT_STREQ(alloc::bankPolicyName(BankPolicy::hybrid), "Hybrid");
}

TEST(BankPolicy, LinearRoundRobins)
{
    auto f = makeFixture(BankPolicy::linear);
    for (BankId expect = 0; expect < 64; ++expect)
        EXPECT_EQ(f.allocator->selectBank({}), expect);
    EXPECT_EQ(f.allocator->selectBank({}), 0u); // wraps
}

TEST(BankPolicy, RandomCoversManyBanks)
{
    auto f = makeFixture(BankPolicy::random);
    std::set<BankId> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(f.allocator->selectBank({}));
    EXPECT_EQ(seen.size(), 64u);
}

TEST(BankPolicy, MinHopIgnoresLoad)
{
    auto f = makeFixture(BankPolicy::minHop);
    // Pile allocations onto bank 5; min-hop keeps choosing it anyway.
    void *anchor = f.allocator->allocInterleaved(64 * 64, 64, 0);
    const void *aff[1] = {static_cast<char *>(anchor) + 5 * 64};
    for (int i = 0; i < 100; ++i) {
        void *p = f.allocator->mallocAff(64, 1, aff);
        EXPECT_EQ(f.machine->bankOfHost(p), 5u);
    }
    EXPECT_EQ(f.allocator->bankLoads()[5], 100u);
}

TEST(BankPolicy, HybridSpillsUnderLoad)
{
    // Eq. 4 with H > 0: once a bank is overloaded relative to the
    // average, a neighbouring bank wins (Fig. 7's n7 spill).
    auto f = makeFixture(BankPolicy::hybrid, 5.0);
    void *anchor = f.allocator->allocInterleaved(64 * 64, 64, 0);
    const void *aff[1] = {static_cast<char *>(anchor) + 9 * 64};
    std::set<BankId> used;
    for (int i = 0; i < 200; ++i) {
        void *p = f.allocator->mallocAff(64, 1, aff);
        used.insert(f.machine->bankOfHost(p));
    }
    EXPECT_GT(used.size(), 1u) << "hybrid should spill off bank 9";
    // But affinity still matters: the load-weighted mean distance to
    // bank 9 stays below what a uniform (random) layout would give.
    double dist_sum = 0.0;
    for (BankId b = 0; b < 64; ++b)
        dist_sum += double(f.allocator->bankLoads()[b]) *
                    f.machine->hopsBetween(b, 9);
    const double mean_dist = dist_sum / 200.0;
    double uniform = 0.0;
    for (BankId b = 0; b < 64; ++b)
        uniform += f.machine->hopsBetween(b, 9) / 64.0;
    EXPECT_LT(mean_dist, 0.8 * uniform);
}

TEST(BankPolicy, HigherHBalancesMore)
{
    // Compare max bank load after identical allocation sequences.
    auto run = [](double h) {
        auto f = makeFixture(BankPolicy::hybrid, h);
        void *anchor = f.allocator->allocInterleaved(64 * 64, 64, 0);
        const void *aff[1] = {static_cast<char *>(anchor) + 20 * 64};
        for (int i = 0; i < 300; ++i)
            f.allocator->mallocAff(64, 1, aff);
        std::uint64_t mx = 0;
        for (auto l : f.allocator->bankLoads())
            mx = std::max(mx, l);
        return mx;
    };
    EXPECT_GE(run(1.0), run(7.0));
}

TEST(BankPolicy, HybridWithoutAffinityBalancesPerfectly)
{
    auto f = makeFixture(BankPolicy::hybrid, 5.0);
    for (int i = 0; i < 640; ++i)
        f.allocator->mallocAff(64, 0, nullptr);
    const auto &loads = f.allocator->bankLoads();
    const auto [mn, mx] = std::minmax_element(loads.begin(), loads.end());
    EXPECT_EQ(*mn, *mx) << "equal-affinity allocations spread evenly";
}

TEST(BankPolicy, ScoreFunctionMatchesEq4)
{
    // Hand-check Eq. 4: affinity at bank 0, bank 0 has load 1, all
    // others 0, total 1, H = 5, avg_load = 1/64.
    // score(0) = 0 + 5*(1/(1/64) - 1) = 5*63 = 315
    // score(1) = 1 + 5*(0 - 1)        = -4  -> a neighbour must win.
    auto f = makeFixture(BankPolicy::hybrid, 5.0);
    void *anchor = f.allocator->allocInterleaved(64 * 64, 64, 0);
    const void *aff[1] = {anchor};
    void *p1 = f.allocator->mallocAff(64, 1, aff); // load(0) = 1
    EXPECT_EQ(f.machine->bankOfHost(p1), 0u);
    const BankId second = f.allocator->selectBank({0});
    EXPECT_NE(second, 0u);
    EXPECT_EQ(f.machine->hopsBetween(second, 0), 1u);
}
