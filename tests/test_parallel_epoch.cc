/**
 * @file
 * Shard-parallel epoch execution: the simulator's acceptance oracle is
 * that --sim-threads is *invisible* in every observable — determinism
 * digests, stats, timelines — at any thread count, healthy or faulty,
 * including mid-epoch aborts and the livelock watchdog. These tests
 * pin that down across the graph/affine workloads that opt into
 * deferred epochs, the serving front-end, and the chaos fuzzer.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "chaos/chaos.hh"
#include "graph/generators.hh"
#include "harness/sweep.hh"
#include "serve/serve.hh"
#include "sim/simcheck.hh"
#include "sim/worker_pool.hh"
#include "workloads/graph_workloads.hh"
#include "workloads/affine_workloads.hh"

#include "test_helpers.hh"

using namespace affalloc;
using namespace affalloc::workloads;

namespace
{

const graph::Csr &
testGraph()
{
    static const graph::Csr g = [] {
        graph::KroneckerParams p;
        p.scale = 10;
        p.edgeFactor = 8;
        return graph::kronecker(p);
    }();
    return g;
}

GraphParams
graphParams()
{
    GraphParams p;
    p.graph = &testGraph();
    p.iters = 2;
    return p;
}

/** The thread counts the acceptance criteria call out. */
const std::vector<std::uint32_t> kThreadCounts = {1, 2, 4, 7};

std::string
digestAt(const std::string &workload, ExecMode mode,
         std::uint32_t sim_threads, std::uint32_t offline_banks = 0)
{
    RunConfig rc = RunConfig::forMode(mode);
    rc.machine.simThreads = sim_threads;
    rc.machine.faults.offlineBanks = offline_banks;
    RunResult r;
    if (workload == "pr_push")
        r = runPageRankPush(rc, graphParams());
    else if (workload == "bfs")
        r = runBfs(rc, graphParams(), defaultBfsStrategy(mode)).run;
    else if (workload == "sssp_pq")
        r = runSsspPq(rc, graphParams());
    else if (workload == "hotspot") {
        HotspotParams p;
        p.iters = 2;
        r = runHotspot(rc, p);
    }
    EXPECT_TRUE(r.valid) << workload << " sim-threads " << sim_threads;
    return simcheck::digestToString(r.digest());
}

} // namespace

// ------------------------------------------- digest thread-invariance

TEST(ParallelEpoch, GraphDigestsIdenticalAcrossThreadCounts)
{
    for (const char *wl : {"pr_push", "bfs", "sssp_pq"}) {
        const std::string base = digestAt(wl, ExecMode::affAlloc, 1);
        for (const std::uint32_t t : kThreadCounts) {
            EXPECT_EQ(digestAt(wl, ExecMode::affAlloc, t), base)
                << wl << " diverged at sim-threads " << t;
        }
    }
}

TEST(ParallelEpoch, AffineDigestsIdenticalAcrossThreadCounts)
{
    const std::string base = digestAt("hotspot", ExecMode::affAlloc, 1);
    for (const std::uint32_t t : kThreadCounts)
        EXPECT_EQ(digestAt("hotspot", ExecMode::affAlloc, t), base)
            << "hotspot diverged at sim-threads " << t;
}

TEST(ParallelEpoch, NearL3ModeDigestsIdentical)
{
    const std::string base = digestAt("pr_push", ExecMode::nearL3, 1);
    for (const std::uint32_t t : kThreadCounts)
        EXPECT_EQ(digestAt("pr_push", ExecMode::nearL3, t), base)
            << "near-L3 diverged at sim-threads " << t;
}

TEST(ParallelEpoch, FaultyMachineDigestsIdentical)
{
    // Offline banks reroute homes through spares and trigger offload
    // NACK retries — the replay must reproduce that traffic exactly.
    const std::string base =
        digestAt("pr_push", ExecMode::affAlloc, 1, /*offline_banks=*/3);
    for (const std::uint32_t t : kThreadCounts)
        EXPECT_EQ(digestAt("pr_push", ExecMode::affAlloc, t, 3), base)
            << "faulty run diverged at sim-threads " << t;
}

// --------------------------------------------------- abort mid-epoch

TEST(ParallelEpoch, AbortMidDeferredEpochRewindsStatsExactly)
{
    sim::MachineConfig cfg;
    cfg.simThreads = 4;
    os::SimOS sim_os(cfg);
    nsc::Machine machine(cfg, sim_os);
    alloc::AffinityAllocator allocator(machine, {});

    void *p = allocator.allocPlain(1 << 14);
    const Addr sim = machine.addressSpace().simAddrOf(p);

    const sim::Stats pre = machine.stats();
    machine.beginEpoch(/*deferrable=*/true);
    ASSERT_TRUE(machine.epochDeferred());
    for (Addr off = 0; off < (1 << 14); off += 64)
        machine.coreAccess(0, sim + off, 64, AccessType::read);
    machine.l3StreamAccess(0, sim, 256, AccessType::write);
    machine.abortEpoch();

    sim::Stats post = machine.stats();
    EXPECT_EQ(post.abortedEpochs, pre.abortedEpochs + 1);
    post.abortedEpochs = pre.abortedEpochs;
    EXPECT_EQ(simcheck::digestOfStats(post), simcheck::digestOfStats(pre));
    EXPECT_FALSE(machine.inEpoch());
}

TEST(ParallelEpoch, AbortLeavesSameCacheStateAsClassic)
{
    // Abort keeps cache/TLB state and lifetime NoC counters exactly as
    // classic inline execution would have left them; a follow-up epoch
    // of identical work must therefore produce identical stats.
    auto runOne = [](std::uint32_t sim_threads) {
        sim::MachineConfig cfg;
        cfg.simThreads = sim_threads;
        os::SimOS sim_os(cfg);
        nsc::Machine machine(cfg, sim_os);
        alloc::AffinityAllocator allocator(machine, {});
        void *p = allocator.allocPlain(1 << 14);
        const Addr sim = machine.addressSpace().simAddrOf(p);

        machine.beginEpoch(/*deferrable=*/true);
        for (Addr off = 0; off < (1 << 14); off += 64)
            machine.coreAccess(0, sim + off, 64, AccessType::read);
        machine.abortEpoch();

        machine.beginEpoch(/*deferrable=*/true);
        for (Addr off = 0; off < (1 << 14); off += 64)
            machine.coreAccess(0, sim + off, 64, AccessType::read);
        machine.l3StreamAccess(5, sim, 512, AccessType::atomic);
        machine.endEpoch();
        return simcheck::digestOfStats(machine.stats());
    };
    const auto classic = runOne(1);
    EXPECT_EQ(runOne(2), classic);
    EXPECT_EQ(runOne(4), classic);
}

// ------------------------------------------------------------ watchdog

TEST(ParallelEpoch, WatchdogFiresOnStalledDeferredEpochs)
{
    sim::MachineConfig cfg;
    cfg.simThreads = 4;
    cfg.simcheck.watchdogStallEpochs = 3;
    os::SimOS sim_os(cfg);
    nsc::Machine machine(cfg, sim_os);

    for (int i = 0; i < 2; ++i) {
        machine.beginEpoch(/*deferrable=*/true);
        EXPECT_NO_THROW(machine.endEpoch());
    }
    machine.beginEpoch(/*deferrable=*/true);
    EXPECT_THROW(machine.endEpoch(), simcheck::LivelockError);
}

// ----------------------------------------------- serve + chaos parity

TEST(ParallelEpoch, ServeReportDigestIdentical)
{
    auto runOne = [](std::uint32_t sim_threads) {
        serve::ServeOptions sopts;
        sopts.quick = true;
        sopts.numRequests = 16;
        sopts.machine.simThreads = sim_threads;
        const serve::ServeReport rep = serve::runServe(sopts);
        return simcheck::digestToString(rep.digest());
    };
    const std::string base = runOne(1);
    EXPECT_EQ(runOne(4), base);
}

TEST(ParallelEpoch, ChaosSmokeVerdictsIdentical)
{
    // FuzzOptions carries no MachineConfig; campaigns pick up the
    // process-wide default, so flip it the way the CLI flag would.
    auto runOne = [](unsigned sim_threads) {
        sim::setDefaultSimThreads(sim_threads);
        chaos::FuzzOptions f;
        f.campaigns = 8;
        f.jobs = 1;
        const chaos::FuzzReport rep = chaos::runFuzz(f);
        sim::setDefaultSimThreads(1);
        return rep;
    };
    const chaos::FuzzReport base = runOne(1);
    const chaos::FuzzReport par = runOne(4);
    EXPECT_EQ(par.failures, base.failures);
    EXPECT_EQ(par.digest, base.digest);
}

// -------------------------------------------------- flag validation

TEST(ParallelEpoch, ApplySimThreadsRejectsZero)
{
    char prog[] = "bench";
    char flag[] = "--sim-threads";
    char val[] = "0";
    char *argv[] = {prog, flag, val};
    EXPECT_THROW(harness::applySimThreads(3, argv), FatalError);
}

TEST(ParallelEpoch, ApplySimThreadsRejectsGarbageAndAbsurd)
{
    char prog[] = "bench";
    {
        char flag[] = "--sim-threads=12potatoes";
        char *argv[] = {prog, flag};
        EXPECT_THROW(harness::applySimThreads(2, argv), FatalError);
    }
    {
        char flag[] = "--sim-threads=4096";
        char *argv[] = {prog, flag};
        EXPECT_THROW(harness::applySimThreads(2, argv), FatalError);
    }
}

TEST(ParallelEpoch, ApplySimThreadsRejectsMoreThanHardwareThreads)
{
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        GTEST_SKIP() << "hardware_concurrency unknown on this host";
    unsetenv("AFFALLOC_SIM_OVERSUBSCRIBE");
    const std::string v = "--sim-threads=" + std::to_string(hw + 1);
    char prog[] = "bench";
    std::vector<char> flag(v.begin(), v.end());
    flag.push_back('\0');
    char *argv[] = {prog, flag.data()};
    EXPECT_THROW(harness::applySimThreads(2, argv), FatalError);
    // The documented escape hatch for cgroup-limited containers.
    setenv("AFFALLOC_SIM_OVERSUBSCRIBE", "1", 1);
    EXPECT_EQ(harness::applySimThreads(2, argv), hw + 1);
    unsetenv("AFFALLOC_SIM_OVERSUBSCRIBE");
    sim::setDefaultSimThreads(1);
}

TEST(ParallelEpoch, ApplySimThreadsInstallsTheDefault)
{
    char prog[] = "bench";
    char flag[] = "--sim-threads=1";
    char *argv[] = {prog, flag};
    EXPECT_EQ(harness::applySimThreads(2, argv), 1u);
    EXPECT_EQ(sim::defaultSimThreads(), 1u);
    // Unset: falls back to the environment, then to 1.
    unsetenv("AFFALLOC_SIM_THREADS");
    EXPECT_EQ(harness::applySimThreads(1, argv), 1u);
    setenv("AFFALLOC_SIM_THREADS", "1", 1);
    EXPECT_EQ(harness::applySimThreads(1, argv), 1u);
    unsetenv("AFFALLOC_SIM_THREADS");
    sim::setDefaultSimThreads(1);
}
