#include <gtest/gtest.h>

#include <cstring>

#include "sim/log.hh"

#include "test_helpers.hh"

using namespace affalloc;
using alloc::AffineArray;
using test::MachineFixture;

TEST(Realloc, AffineGrowPreservesContentsAndLayout)
{
    MachineFixture f;
    AffineArray req;
    req.elem_size = 4;
    req.num_elem = 4096;
    auto *a = static_cast<std::uint32_t *>(f.allocator->mallocAff(req));
    for (std::uint32_t i = 0; i < 4096; ++i)
        a[i] = i * 3;
    const auto old_info = *f.allocator->arrayInfo(a);

    auto *b = static_cast<std::uint32_t *>(
        f.allocator->reallocAff(a, 8192 * 4));
    const auto *ninfo = f.allocator->arrayInfo(b);
    ASSERT_NE(ninfo, nullptr);
    EXPECT_EQ(ninfo->intrlv, old_info.intrlv);
    EXPECT_EQ(ninfo->startBank, old_info.startBank);
    for (std::uint32_t i = 0; i < 4096; ++i)
        EXPECT_EQ(b[i], i * 3);
    // The new array's bank layout matches the old one element-wise.
    for (std::uint32_t i = 0; i < 4096; i += 97) {
        EXPECT_EQ(f.machine->bankOfSim(ninfo->simBase + i * 4),
                  BankId((old_info.startBank + (i * 4) / ninfo->intrlv) %
                         64));
    }
}

TEST(Realloc, AffineShrinkKeepsPrefix)
{
    MachineFixture f;
    AffineArray req;
    req.elem_size = 8;
    req.num_elem = 1024;
    auto *a = static_cast<std::uint64_t *>(f.allocator->mallocAff(req));
    for (std::uint64_t i = 0; i < 1024; ++i)
        a[i] = ~i;
    auto *b = static_cast<std::uint64_t *>(
        f.allocator->reallocAff(a, 256 * 8));
    for (std::uint64_t i = 0; i < 256; ++i)
        EXPECT_EQ(b[i], ~i);
}

TEST(Realloc, IrregularInPlaceWhenFits)
{
    MachineFixture f;
    void *p = f.allocator->mallocAff(24, 0, nullptr);
    std::memset(p, 0x5a, 24);
    void *q = f.allocator->reallocAff(p, 48); // still one 64 B slot
    EXPECT_EQ(p, q);
}

TEST(Realloc, IrregularMoveStaysInBank)
{
    MachineFixture f;
    void *p = f.allocator->allocSlotAtBank(64, 23);
    std::memset(p, 0x77, 64);
    void *q = f.allocator->reallocAff(p, 128);
    EXPECT_NE(p, q);
    EXPECT_EQ(f.machine->bankOfHost(q), 23u);
    EXPECT_EQ(static_cast<unsigned char *>(q)[63], 0x77);
    f.allocator->freeAff(q);
}

TEST(Realloc, UnknownPointerFatal)
{
    MachineFixture f;
    int x;
    EXPECT_THROW(f.allocator->reallocAff(&x, 64), FatalError);
}

// --------------------------------------------------------- free regions

TEST(FreeRegions, FreedAffineRegionIsReused)
{
    MachineFixture f;
    void *a = f.allocator->allocInterleaved(64 * 256, 64, 0);
    void *b = f.allocator->allocInterleaved(64 * 256, 64, 0);
    (void)b;
    const Addr sim_a = f.allocator->arrayInfo(a)->simBase;
    f.allocator->freeAff(a);
    EXPECT_GT(f.allocator->allocStats().freeRegionBytes, 0u);
    // Same interleaving + same start bank: the freed region wins.
    void *c = f.allocator->allocInterleaved(64 * 256, 64, 0);
    EXPECT_EQ(f.allocator->arrayInfo(c)->simBase, sim_a);
    EXPECT_EQ(f.allocator->allocStats().regionReuses, 1u);
}

TEST(FreeRegions, PartialReuseSplitsRegion)
{
    MachineFixture f;
    void *a = f.allocator->allocInterleaved(64 * 256, 64, 0);
    const Addr sim_a = f.allocator->arrayInfo(a)->simBase;
    f.allocator->freeAff(a);
    // A smaller allocation carves the front; a second takes the rest.
    void *c = f.allocator->allocInterleaved(64 * 64, 64, 0);
    EXPECT_EQ(f.allocator->arrayInfo(c)->simBase, sim_a);
    void *d = f.allocator->allocInterleaved(64 * 64, 64, 0);
    EXPECT_EQ(f.allocator->arrayInfo(d)->simBase, sim_a + 64 * 64);
    EXPECT_EQ(f.allocator->allocStats().regionReuses, 2u);
}

TEST(FreeRegions, DifferentStartBankCanStillReuse)
{
    MachineFixture f;
    void *a = f.allocator->allocInterleaved(64 * 256, 64, 0);
    f.allocator->freeAff(a);
    // Start bank 5: reuse is possible by skipping 5 blocks into the
    // freed region.
    void *c = f.allocator->allocInterleaved(64 * 64, 64, 5);
    EXPECT_EQ(f.machine->bankOfHost(c), 5u);
    EXPECT_EQ(f.allocator->allocStats().regionReuses, 1u);
}

TEST(FreeRegions, PoolDoesNotGrowWhenRecycling)
{
    MachineFixture f;
    void *a = f.allocator->allocInterleaved(64 * 1024, 64, 0);
    f.allocator->freeAff(a);
    const Addr brk_before = f.machine->simOs().poolBrkOf(0);
    // Churn: repeated same-size allocations reuse the region instead
    // of expanding the pool.
    for (int i = 0; i < 20; ++i) {
        void *p = f.allocator->allocInterleaved(64 * 1024, 64, 0);
        f.allocator->freeAff(p);
    }
    EXPECT_EQ(f.machine->simOs().poolBrkOf(0), brk_before);
}

TEST(FreeRegions, AccountingBalances)
{
    MachineFixture f;
    void *a = f.allocator->allocInterleaved(64 * 128, 64, 0);
    f.allocator->freeAff(a);
    const auto bytes = f.allocator->allocStats().freeRegionBytes;
    EXPECT_EQ(bytes, 64u * 128);
    void *b = f.allocator->allocInterleaved(64 * 128, 64, 0);
    (void)b;
    EXPECT_EQ(f.allocator->allocStats().freeRegionBytes, 0u);
}
