/**
 * @file
 * Parameterized property tests: invariants swept over parameter
 * spaces with TEST_P / INSTANTIATE_TEST_SUITE_P.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.hh"
#include "sim/log.hh"
#include "test_helpers.hh"

using namespace affalloc;
using alloc::AffineArray;
using alloc::AllocatorOptions;
using alloc::BankPolicy;
using test::MachineFixture;

// ----------------------------------------------- pool interleavings

class PoolInterleaveProperty
    : public ::testing::TestWithParam<std::tuple<int, BankId>>
{
};

TEST_P(PoolInterleaveProperty, StartBankAndStrideHold)
{
    const auto [pool_idx, start_bank] = GetParam();
    const std::uint64_t intrlv = mem::poolInterleave(pool_idx);
    MachineFixture f;
    char *p = static_cast<char *>(
        f.allocator->allocInterleaved(intrlv * 130, intrlv, start_bank));
    // Eq. 1: block j of the allocation is at bank
    // (start_bank + j) mod 64, for every block.
    for (std::uint64_t j = 0; j < 130; ++j) {
        EXPECT_EQ(f.machine->bankOfHost(p + j * intrlv),
                  BankId((start_bank + j) % 64))
            << "pool " << pool_idx << " block " << j;
        // All bytes inside the block share the bank.
        EXPECT_EQ(f.machine->bankOfHost(p + j * intrlv + intrlv - 1),
                  BankId((start_bank + j) % 64));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPoolsAndBanks, PoolInterleaveProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6),
                       ::testing::Values(BankId(0), BankId(17),
                                         BankId(63))));

// ---------------------------------------------- affine alignment law

class AffineAlignmentProperty
    : public ::testing::TestWithParam<
          std::tuple<int /*elemA*/, int /*elemB*/, int /*x blocks*/>>
{
};

TEST_P(AffineAlignmentProperty, Equation2Holds)
{
    const auto [elem_a, elem_b, x_blocks] = GetParam();
    MachineFixture f;
    AffineArray a_req;
    a_req.elem_size = elem_a;
    a_req.num_elem = 1 << 15;
    void *a = f.allocator->mallocAff(a_req);
    const auto *ai = f.allocator->arrayInfo(a);
    ASSERT_NE(ai, nullptr);
    // Offset by whole interleave blocks so alignment is exact.
    const std::int64_t align_x =
        std::int64_t(x_blocks) * std::int64_t(ai->intrlv) / elem_a;

    AffineArray b_req;
    b_req.elem_size = elem_b;
    b_req.num_elem = 1 << 14;
    b_req.align_to = a;
    b_req.align_x = align_x;
    void *b = f.allocator->mallocAff(b_req);
    const auto *bi = f.allocator->arrayInfo(b);
    ASSERT_NE(bi, nullptr);
    if (bi->intrlv == 0)
        GTEST_SKIP() << "runtime fell back (inexact ratio)";

    // Eq. 2: B[i] and A[i + x] share a bank (sampled).
    for (std::uint64_t i = 0; i < (1 << 14); i += 389) {
        EXPECT_EQ(f.allocator->bankOfElement(b, i),
                  f.allocator->bankOfElement(
                      a, i + std::uint64_t(align_x)))
            << "element " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ElemSizesAndOffsets, AffineAlignmentProperty,
    ::testing::Combine(::testing::Values(4, 8),
                       ::testing::Values(4, 8, 16),
                       ::testing::Values(0, 1, 5)));

// ------------------------------------------------- policy invariants

class PolicyProperty
    : public ::testing::TestWithParam<std::tuple<BankPolicy, int>>
{
};

TEST_P(PolicyProperty, AllocationsAlwaysLandOnLegalBanksAndFree)
{
    const auto [policy, seed] = GetParam();
    AllocatorOptions opts;
    opts.policy = policy;
    opts.seed = std::uint64_t(seed);
    MachineFixture f(opts);
    void *anchor = f.allocator->allocInterleaved(64 * 64, 64, 0);
    Rng rng(seed);
    std::vector<void *> live;
    for (int i = 0; i < 500; ++i) {
        const void *aff[2] = {
            static_cast<char *>(anchor) + rng.below(64) * 64,
            static_cast<char *>(anchor) + rng.below(64) * 64};
        void *p = f.allocator->mallocAff(64, 2, aff);
        ASSERT_NE(p, nullptr);
        EXPECT_LT(f.machine->bankOfHost(p), 64u);
        live.push_back(p);
        if (rng.chance(0.3)) {
            f.allocator->freeAff(live.back());
            live.pop_back();
        }
    }
    // Load accounting matches live allocations.
    std::uint64_t total = 0;
    for (auto l : f.allocator->bankLoads())
        total += l;
    EXPECT_EQ(total, live.size());
    for (void *p : live)
        f.allocator->freeAff(p);
    for (auto l : f.allocator->bankLoads())
        EXPECT_EQ(l, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, PolicyProperty,
    ::testing::Combine(::testing::Values(BankPolicy::random,
                                         BankPolicy::linear,
                                         BankPolicy::minHop,
                                         BankPolicy::hybrid),
                       ::testing::Values(1, 2, 3)));

// --------------------------------------------------- mesh invariants

class MeshProperty
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>>
{
};

TEST_P(MeshProperty, DistanceIsAMetricAndRoutesMatch)
{
    const auto [x, y] = GetParam();
    noc::Mesh mesh(x, y);
    std::vector<noc::LinkId> links;
    Rng rng(99);
    for (int trial = 0; trial < 200; ++trial) {
        const TileId a = TileId(rng.below(mesh.numTiles()));
        const TileId b = TileId(rng.below(mesh.numTiles()));
        const TileId c = TileId(rng.below(mesh.numTiles()));
        // Symmetry and identity.
        EXPECT_EQ(mesh.distance(a, b), mesh.distance(b, a));
        EXPECT_EQ(mesh.distance(a, a), 0u);
        // Triangle inequality.
        EXPECT_LE(mesh.distance(a, c),
                  mesh.distance(a, b) + mesh.distance(b, c));
        // Route length equals distance.
        links.clear();
        mesh.route(a, b, links);
        EXPECT_EQ(links.size(), mesh.distance(a, b));
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MeshProperty,
                         ::testing::Values(std::pair{8u, 8u},
                                           std::pair{4u, 4u},
                                           std::pair{16u, 4u},
                                           std::pair{2u, 8u}));

// ---------------------------------------------- generator invariants

class KroneckerProperty : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(KroneckerProperty, StructurallySoundAtEveryScale)
{
    graph::KroneckerParams p;
    p.scale = GetParam();
    p.edgeFactor = 8;
    const auto g = graph::kronecker(p);
    g.validate();
    EXPECT_EQ(g.numVertices, 1u << GetParam());
    // Symmetric: every edge has its reverse.
    for (graph::VertexId u = 0; u < g.numVertices; u += 37) {
        for (graph::VertexId v : g.neighbors(u)) {
            const auto back = g.neighbors(v);
            EXPECT_TRUE(std::binary_search(back.begin(), back.end(), u))
                << u << "->" << v;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Scales, KroneckerProperty,
                         ::testing::Values(6u, 8u, 10u, 12u));

// -------------------------------------------- cache model invariants

class CacheProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t /*assoc*/, bool /*hashed*/>>
{
};

TEST_P(CacheProperty, HitAfterFillUntilCapacity)
{
    const auto [assoc, hashed] = GetParam();
    mem::CacheModel cache(64 * 1024, assoc, 64, hashed);
    // Fill half the capacity: everything must still be resident.
    const std::uint64_t lines = (64 * 1024 / 64) / 2;
    for (Addr l = 0; l < lines; ++l)
        cache.access(l * 977, false); // scattered lines
    std::uint64_t hits = 0;
    for (Addr l = 0; l < lines; ++l)
        hits += cache.access(l * 977, false).hit;
    if (hashed) {
        // Hashed indexing is probabilistic: expect the vast majority.
        EXPECT_GT(hits, lines * 9 / 10);
    } else {
        // 977 is odd so modulo indexing spreads sets evenly too.
        EXPECT_GT(hits, lines * 9 / 10);
    }
    EXPECT_LE(cache.residentLines(), 64u * 1024 / 64);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperty,
    ::testing::Combine(::testing::Values(4u, 8u, 16u),
                       ::testing::Bool()));
