#include <gtest/gtest.h>

#include <vector>

#include "mem/address_space.hh"
#include "sim/log.hh"

using namespace affalloc;
using mem::AddressSpace;

TEST(AddressSpace, RoundTrip)
{
    AddressSpace as;
    std::vector<char> buf(256);
    as.registerRange(buf.data(), buf.size(), 0x1000);
    EXPECT_EQ(as.simAddrOf(buf.data()), 0x1000u);
    EXPECT_EQ(as.simAddrOf(buf.data() + 100), 0x1064u);
}

TEST(AddressSpace, UnknownPointerFatal)
{
    AddressSpace as;
    int x = 0;
    EXPECT_THROW(as.simAddrOf(&x), FatalError);
    EXPECT_EQ(as.trySimAddrOf(&x), invalidAddr);
}

TEST(AddressSpace, RejectsOverlap)
{
    AddressSpace as;
    std::vector<char> buf(256);
    as.registerRange(buf.data(), 256, 0x1000);
    EXPECT_THROW(as.registerRange(buf.data() + 100, 10, 0x9000),
                 FatalError);
}

TEST(AddressSpace, AdjacentRangesAllowed)
{
    AddressSpace as;
    std::vector<char> buf(256);
    as.registerRange(buf.data(), 128, 0x1000);
    as.registerRange(buf.data() + 128, 128, 0x8000);
    EXPECT_EQ(as.simAddrOf(buf.data() + 127), 0x1000u + 127);
    EXPECT_EQ(as.simAddrOf(buf.data() + 128), 0x8000u);
}

TEST(AddressSpace, UnregisterRemoves)
{
    AddressSpace as;
    std::vector<char> buf(64);
    as.registerRange(buf.data(), 64, 0x1000);
    as.unregisterRange(buf.data());
    EXPECT_EQ(as.trySimAddrOf(buf.data()), invalidAddr);
    EXPECT_THROW(as.unregisterRange(buf.data()), FatalError);
}

TEST(AddressSpace, RangeQueries)
{
    AddressSpace as;
    std::vector<char> buf(64);
    as.registerRange(buf.data(), 64, 0x1000);
    EXPECT_NE(as.rangeStartingAt(buf.data()), nullptr);
    EXPECT_EQ(as.rangeStartingAt(buf.data() + 1), nullptr);
    EXPECT_NE(as.rangeContaining(buf.data() + 63), nullptr);
    EXPECT_EQ(as.size(), 1u);
}

TEST(AddressSpace, EndIsExclusive)
{
    AddressSpace as;
    std::vector<char> buf(128);
    as.registerRange(buf.data(), 64, 0x1000);
    EXPECT_EQ(as.trySimAddrOf(buf.data() + 64), invalidAddr);
}

TEST(AddressSpace, ManyRangesResolveCorrectly)
{
    AddressSpace as;
    std::vector<std::vector<char>> bufs;
    for (int i = 0; i < 100; ++i)
        bufs.emplace_back(64);
    for (int i = 0; i < 100; ++i)
        as.registerRange(bufs[i].data(), 64, 0x10000 + i * 0x100);
    for (int i = 99; i >= 0; --i)
        EXPECT_EQ(as.simAddrOf(bufs[i].data() + 5),
                  Addr(0x10000 + i * 0x100 + 5));
}
