#include <gtest/gtest.h>

#include "harness/report.hh"
#include "sim/log.hh"

using namespace affalloc;
using harness::Comparison;
using workloads::RunResult;

namespace
{

RunResult
makeRun(Cycles cycles, std::uint64_t hops_control,
        std::uint64_t hops_data, double joules, bool valid = true)
{
    RunResult r;
    r.stats.cycles = cycles;
    r.stats.hops[int(TrafficClass::control)] = hops_control;
    r.stats.hops[int(TrafficClass::data)] = hops_data;
    r.joules = joules;
    r.valid = valid;
    return r;
}

} // namespace

TEST(Comparison, SpeedupAndEnergy)
{
    Comparison cmp({"base", "fast"});
    cmp.add("w", {makeRun(1000, 10, 10, 2.0), makeRun(250, 5, 5, 0.5)});
    EXPECT_DOUBLE_EQ(cmp.speedup(0, 1, 0), 4.0);
    EXPECT_DOUBLE_EQ(cmp.speedup(0, 0, 0), 1.0);
    EXPECT_DOUBLE_EQ(cmp.energyEff(0, 1, 0), 4.0);
}

TEST(Comparison, HopsNormalization)
{
    Comparison cmp({"base", "better"});
    cmp.add("w", {makeRun(100, 60, 40, 1.0), makeRun(100, 30, 20, 1.0)});
    EXPECT_DOUBLE_EQ(cmp.hopsNorm(0, 1, 0), 0.5);
    EXPECT_DOUBLE_EQ(
        cmp.hopsClassNorm(0, 1, 0, TrafficClass::control), 0.3);
    EXPECT_DOUBLE_EQ(cmp.hopsClassNorm(0, 1, 0, TrafficClass::data),
                     0.2);
}

TEST(Comparison, GeomeanAcrossWorkloads)
{
    Comparison cmp({"base", "fast"});
    cmp.add("a", {makeRun(100, 1, 1, 1.0), makeRun(25, 1, 1, 1.0)});
    cmp.add("b", {makeRun(100, 1, 1, 1.0), makeRun(100, 1, 1, 1.0)});
    // geomean(4, 1) = 2.
    EXPECT_DOUBLE_EQ(cmp.geomeanSpeedup(1, 0), 2.0);
}

TEST(Comparison, MeanHops)
{
    Comparison cmp({"base", "x"});
    cmp.add("a", {makeRun(1, 10, 0, 1.0), makeRun(1, 5, 0, 1.0)});
    cmp.add("b", {makeRun(1, 10, 0, 1.0), makeRun(1, 15, 0, 1.0)});
    EXPECT_DOUBLE_EQ(cmp.meanHops(1, 0), 1.0); // (0.5 + 1.5) / 2
}

TEST(Comparison, ValidityTracking)
{
    Comparison cmp({"only"});
    cmp.add("a", {makeRun(1, 1, 1, 1.0, true)});
    EXPECT_TRUE(cmp.allValid());
    cmp.add("b", {makeRun(1, 1, 1, 1.0, false)});
    EXPECT_FALSE(cmp.allValid());
}

TEST(Comparison, RowSizeMismatchFatal)
{
    Comparison cmp({"a", "b"});
    EXPECT_THROW(cmp.add("w", {makeRun(1, 1, 1, 1.0)}), FatalError);
}

TEST(Comparison, PrintDoesNotCrash)
{
    Comparison cmp({"In-Core", "Aff"});
    cmp.add("w1", {makeRun(100, 10, 10, 1.0), makeRun(50, 5, 5, 0.5)});
    cmp.add("w2", {makeRun(200, 20, 0, 2.0), makeRun(40, 2, 2, 0.4)});
    EXPECT_NO_THROW(cmp.print("test", 0, 0));
}

TEST(QuickMode, ParsesFlag)
{
    char prog[] = "bench";
    char flag[] = "--quick";
    char *with_flag[] = {prog, flag};
    char *without[] = {prog};
    EXPECT_TRUE(harness::quickMode(2, with_flag));
    EXPECT_FALSE(harness::quickMode(1, without));
}
