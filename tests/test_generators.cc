#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hh"

using namespace affalloc;
using graph::Csr;
using graph::KroneckerParams;

TEST(Kronecker, SizeMatchesParameters)
{
    KroneckerParams p;
    p.scale = 12;
    p.edgeFactor = 8;
    const Csr g = graph::kronecker(p);
    EXPECT_EQ(g.numVertices, 1u << 12);
    // Symmetrized and deduped: between edgeFactor*n and 2x that.
    EXPECT_GT(g.numEdges(), (1u << 12) * 8u / 2);
    EXPECT_LE(g.numEdges(), (1u << 12) * 16u);
    g.validate();
}

TEST(Kronecker, Deterministic)
{
    KroneckerParams p;
    p.scale = 10;
    p.edgeFactor = 4;
    const Csr a = graph::kronecker(p);
    const Csr b = graph::kronecker(p);
    EXPECT_EQ(a.edges, b.edges);
    EXPECT_EQ(a.weights, b.weights);
}

TEST(Kronecker, DifferentSeedsDiffer)
{
    KroneckerParams p;
    p.scale = 10;
    p.edgeFactor = 4;
    const Csr a = graph::kronecker(p);
    p.seed = 999;
    const Csr b = graph::kronecker(p);
    EXPECT_NE(a.edges, b.edges);
}

TEST(Kronecker, WeightsInTable3Range)
{
    KroneckerParams p;
    p.scale = 10;
    p.edgeFactor = 4;
    const Csr g = graph::kronecker(p);
    ASSERT_FALSE(g.weights.empty());
    for (auto w : g.weights) {
        EXPECT_GE(w, 1u);
        EXPECT_LE(w, 255u);
    }
}

TEST(Kronecker, SkewedDegreeDistribution)
{
    KroneckerParams p;
    p.scale = 12;
    p.edgeFactor = 16;
    const Csr g = graph::kronecker(p);
    std::uint32_t max_deg = 0;
    for (graph::VertexId v = 0; v < g.numVertices; ++v)
        max_deg = std::max(max_deg, g.degree(v));
    // RMAT hubs dwarf the average.
    EXPECT_GT(max_deg, 8 * g.averageDegree());
}

TEST(PowerLaw, TargetsEdgeCount)
{
    const Csr g = graph::powerLaw(4096, 64 * 1024, 2.2, 7);
    // Dedup removes some, but the bulk survives.
    EXPECT_GT(g.numEdges(), 40u * 1024);
    EXPECT_LE(g.numEdges(), 64u * 1024);
    g.validate();
}

TEST(PowerLaw, SkewIncreasesWithSmallerExponent)
{
    const Csr flat = graph::powerLaw(4096, 32 * 1024, 3.5, 7);
    const Csr skewed = graph::powerLaw(4096, 32 * 1024, 2.0, 7);
    auto max_degree = [](const Csr &g) {
        std::uint32_t m = 0;
        for (graph::VertexId v = 0; v < g.numVertices; ++v)
            m = std::max(m, g.degree(v));
        return m;
    };
    EXPECT_GT(max_degree(skewed), max_degree(flat));
}

TEST(RealWorldStandIns, MatchTable4Scale)
{
    const Csr tw = graph::twitchLike();
    EXPECT_EQ(tw.numVertices, 168114u);
    // Avg degree ~81: allow dedup slack.
    EXPECT_GT(tw.averageDegree(), 40.0);
    EXPECT_LT(tw.averageDegree(), 100.0);

    const Csr gp = graph::gplusLike();
    EXPECT_EQ(gp.numVertices, 107614u);
    EXPECT_GT(gp.averageDegree(), 60.0);
    EXPECT_LT(gp.averageDegree(), 150.0);
    EXPECT_GT(gp.averageDegree(), tw.averageDegree());
}
