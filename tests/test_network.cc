#include <gtest/gtest.h>

#include "noc/network.hh"

using namespace affalloc;
using noc::Network;
using sim::MachineConfig;
using sim::Stats;

namespace
{

struct NetFixture
{
    MachineConfig cfg;
    Stats stats;
    Network net{cfg, stats};
};

} // namespace

TEST(Network, LocalMessageCostsNoHops)
{
    NetFixture f;
    f.net.send(5, 5, 64, TrafficClass::data);
    EXPECT_EQ(f.stats.messages[int(TrafficClass::data)], 1u);
    EXPECT_EQ(f.stats.hops[int(TrafficClass::data)], 0u);
    EXPECT_EQ(f.stats.flitHops[int(TrafficClass::data)], 0u);
    EXPECT_EQ(f.net.maxLinkFlits(), 0u);
}

TEST(Network, HopAndFlitAccounting)
{
    NetFixture f;
    // 0 -> 3 is 3 hops; 64 bytes = 2 flits of 32 B.
    f.net.send(0, 3, 64, TrafficClass::data);
    EXPECT_EQ(f.stats.hops[int(TrafficClass::data)], 3u);
    EXPECT_EQ(f.stats.flitHops[int(TrafficClass::data)], 6u);
    EXPECT_EQ(f.net.maxLinkFlits(), 2u);
    // 6 route flit-links + 2 flits each at the endpoint ports.
    EXPECT_EQ(f.net.totalLinkFlits(), 10u);
}

TEST(Network, LatencyIncludesSerialization)
{
    NetFixture f;
    const Cycles lat1 = f.net.send(0, 1, 16, TrafficClass::control);
    EXPECT_EQ(lat1, Cycles(f.cfg.hopLatency)); // 1 flit, 1 hop
    const Cycles lat2 = f.net.send(0, 1, 96, TrafficClass::data);
    EXPECT_EQ(lat2, Cycles(f.cfg.hopLatency) + 2); // 3 flits
}

TEST(Network, ClassesTrackedSeparately)
{
    NetFixture f;
    f.net.send(0, 1, 16, TrafficClass::control);
    f.net.send(0, 1, 64, TrafficClass::offload);
    EXPECT_EQ(f.stats.messages[int(TrafficClass::control)], 1u);
    EXPECT_EQ(f.stats.messages[int(TrafficClass::offload)], 1u);
    EXPECT_EQ(f.stats.messages[int(TrafficClass::data)], 0u);
}

TEST(Network, EpochResetClearsLinkLoadNotStats)
{
    NetFixture f;
    f.net.send(0, 7, 64, TrafficClass::data);
    EXPECT_GT(f.net.maxLinkFlits(), 0u);
    f.net.resetEpoch();
    EXPECT_EQ(f.net.maxLinkFlits(), 0u);
    EXPECT_EQ(f.stats.hops[int(TrafficClass::data)], 7u);
    // Lifetime link flits survive the reset.
    std::uint64_t total = 0;
    for (auto v : f.net.lifetimeLinkFlits())
        total += v;
    EXPECT_EQ(total, 18u); // 2 flits x (7 links + 2 endpoint ports)
}

TEST(Network, CongestionConcentratesOnSharedLinks)
{
    NetFixture f;
    // Many messages crossing the same east link 0->1.
    for (int i = 0; i < 10; ++i)
        f.net.send(0, 1, 32, TrafficClass::data);
    EXPECT_EQ(f.net.maxLinkFlits(), 10u);
}

TEST(Network, BisectionTraffic)
{
    NetFixture f;
    // Every tile in the left half sends to its mirror on the right:
    // column-crossing links should carry multiple messages.
    const auto &mesh = f.net.mesh();
    for (std::uint32_t y = 0; y < 8; ++y)
        f.net.send(mesh.tileAt(3, y), mesh.tileAt(4, y), 32,
                   TrafficClass::data);
    EXPECT_EQ(f.net.maxLinkFlits(), 1u); // distinct rows: no overlap

    f.net.resetEpoch();
    for (std::uint32_t x = 0; x < 4; ++x)
        f.net.send(mesh.tileAt(x, 0), mesh.tileAt(7, 0), 32,
                   TrafficClass::data);
    // Link (3,0)->(4,0) carries all four messages.
    EXPECT_EQ(f.net.maxLinkFlits(), 4u);
}

TEST(Network, FlitsForRoundsUp)
{
    NetFixture f;
    EXPECT_EQ(f.net.flitsFor(0), 1u);
    EXPECT_EQ(f.net.flitsFor(1), 1u);
    EXPECT_EQ(f.net.flitsFor(32), 1u);
    EXPECT_EQ(f.net.flitsFor(33), 2u);
    EXPECT_EQ(f.net.flitsFor(64), 2u);
}
