/**
 * @file
 * Traffic-class subsystem tests: flag-parser rejection, the
 * way-capped cache primitive, the LLC I/O-policy ablation (DDIO vs.
 * way-restricted vs. bypass), per-class stats attribution
 * conservation, class-arbitration scaling, and digest invariance of
 * mixed-class co-runs across rerun / --jobs / --sim-threads.
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "harness/sweep.hh"
#include "mem/cache_model.hh"
#include "nsc/machine.hh"
#include "sim/log.hh"
#include "sim/stats.hh"
#include "tenant/scheduler.hh"
#include "traffic/traffic.hh"
#include "workloads/run_context.hh"

using namespace affalloc;
using namespace affalloc::traffic;

// ------------------------------------------------------ flag parsing

TEST(TrafficFlags, AgentCountAcceptsPositiveInRange)
{
    EXPECT_EQ(parseAgentCount("--host-agents", "1", 64), 1u);
    EXPECT_EQ(parseAgentCount("--host-agents", "64", 64), 64u);
    EXPECT_EQ(parseAgentCount("--io-streams", "7", 64), 7u);
}

TEST(TrafficFlags, AgentCountRejectsGarbage)
{
    EXPECT_THROW(parseAgentCount("--host-agents", "", 64), FatalError);
    EXPECT_THROW(parseAgentCount("--host-agents", "0", 64), FatalError);
    EXPECT_THROW(parseAgentCount("--host-agents", "abc", 64), FatalError);
    EXPECT_THROW(parseAgentCount("--host-agents", "4x", 64), FatalError);
    EXPECT_THROW(parseAgentCount("--host-agents", "-1", 64), FatalError);
    EXPECT_THROW(parseAgentCount("--host-agents", "65", 64), FatalError);
    EXPECT_THROW(parseAgentCount("--host-agents", "12345678901", 64),
                 FatalError);
}

TEST(TrafficFlags, LlcPolicyGrammar)
{
    std::uint32_t ways = 2;
    EXPECT_EQ(parseLlcPolicy("ddio", &ways, 16),
              sim::LlcIoPolicy::ddio);
    EXPECT_EQ(parseLlcPolicy("bypass", &ways, 16),
              sim::LlcIoPolicy::bypass);
    EXPECT_EQ(parseLlcPolicy("way", &ways, 16),
              sim::LlcIoPolicy::wayRestrict);
    EXPECT_EQ(ways, 2u); // bare "way" keeps the configured default
    EXPECT_EQ(parseLlcPolicy("way:4", &ways, 16),
              sim::LlcIoPolicy::wayRestrict);
    EXPECT_EQ(ways, 4u);
}

TEST(TrafficFlags, LlcPolicyRejectsBadValues)
{
    std::uint32_t ways = 2;
    EXPECT_THROW(parseLlcPolicy("junk", &ways, 16), FatalError);
    EXPECT_THROW(parseLlcPolicy("", &ways, 16), FatalError);
    EXPECT_THROW(parseLlcPolicy("way:0", &ways, 16), FatalError);
    // K must leave at least one way for the tenants.
    EXPECT_THROW(parseLlcPolicy("way:16", &ways, 16), FatalError);
    EXPECT_THROW(parseLlcPolicy("way:x", &ways, 16), FatalError);
}

TEST(TrafficFlags, ClassBwGrammar)
{
    const sim::ClassArbConfig none = parseClassBw("none");
    EXPECT_EQ(none.mode, sim::ClassArbMode::none);

    const sim::ClassArbConfig prio = parseClassBw("prio");
    EXPECT_EQ(prio.mode, sim::ClassArbMode::priority);
    EXPECT_DOUBLE_EQ(prio.yieldPenalty, 0.5);
    const sim::ClassArbConfig prio2 = parseClassBw("prio:1.25");
    EXPECT_DOUBLE_EQ(prio2.yieldPenalty, 1.25);

    const sim::ClassArbConfig part = parseClassBw("part:4,2,1");
    EXPECT_EQ(part.mode, sim::ClassArbMode::partition);
    EXPECT_DOUBLE_EQ(part.share[int(AgentClass::ndc)], 4.0);
    EXPECT_DOUBLE_EQ(part.share[int(AgentClass::host)], 2.0);
    EXPECT_DOUBLE_EQ(part.share[int(AgentClass::io)], 1.0);
}

TEST(TrafficFlags, ClassBwRejectsBadValues)
{
    EXPECT_THROW(parseClassBw(""), FatalError);
    EXPECT_THROW(parseClassBw("junk"), FatalError);
    EXPECT_THROW(parseClassBw("prio:-1"), FatalError);
    EXPECT_THROW(parseClassBw("prio:abc"), FatalError);
    // Exactly one share per agent class.
    EXPECT_THROW(parseClassBw("part:1,2"), FatalError);
    EXPECT_THROW(parseClassBw("part:1,2,3,4"), FatalError);
    EXPECT_THROW(parseClassBw("part:1,0,1"), FatalError);
    EXPECT_THROW(parseClassBw("part:1,-2,1"), FatalError);
    EXPECT_THROW(parseClassBw("part:1,x,1"), FatalError);
}

// ----------------------------------------------- way-capped primitive

TEST(CappedCache, ProtectedWaysAreNeverDisplaced)
{
    // One 4-way set; modulo indexing so every line we use maps there.
    mem::CacheModel c(4 * 64, 4, 64);
    ASSERT_EQ(c.numSets(), 1u);

    // Two "tenant" lines fill the MRU positions.
    c.access(4, false);
    c.access(8, false);
    ASSERT_TRUE(c.contains(4));
    ASSERT_TRUE(c.contains(8));

    // A capped stream of many distinct lines (max 2 ways) churns only
    // the LRU half of the set.
    for (Addr line = 100; line < 200; line += 4)
        c.accessCapped(line, true, 2);
    EXPECT_TRUE(c.contains(4));
    EXPECT_TRUE(c.contains(8));
    EXPECT_LE(c.residentLines(), 4u);
}

TEST(CappedCache, HitDoesNotPromoteAndVictimWritesBack)
{
    mem::CacheModel c(4 * 64, 4, 64);
    c.access(4, false);
    c.access(8, false);

    // Dirty capped fill, then one more: the first capped line is the
    // victim and must signal a writeback — never the tenant lines.
    const auto fill = c.accessCapped(100, true, 2);
    EXPECT_FALSE(fill.hit);
    const auto hit = c.accessCapped(100, false, 2);
    EXPECT_TRUE(hit.hit);
    c.accessCapped(104, true, 2); // set now full: [8,4,104,100]
    const auto evict = c.accessCapped(108, true, 2);
    EXPECT_FALSE(evict.hit);
    EXPECT_TRUE(evict.writeback);
    EXPECT_EQ(evict.victimLine, 100u);
    EXPECT_TRUE(c.contains(4));
    EXPECT_TRUE(c.contains(8));
}

TEST(CappedCache, FullWidthCapDegeneratesToPlainAccess)
{
    mem::CacheModel a(4 * 64, 4, 64);
    mem::CacheModel b(4 * 64, 4, 64);
    for (Addr line = 0; line < 64; line += 4) {
        const auto ra = a.access(line, line % 8 == 0);
        const auto rb = b.accessCapped(line, line % 8 == 0, 4);
        EXPECT_EQ(ra.hit, rb.hit);
        EXPECT_EQ(ra.writeback, rb.writeback);
        EXPECT_EQ(ra.victimLine, rb.victimLine);
    }
    EXPECT_EQ(a.residentLines(), b.residentLines());
}

// ------------------------------------------------- LLC policy ablation

namespace
{

/** A small machine so the I/O storm actually pressures the L3. */
workloads::RunConfig
smallMachineConfig(sim::LlcIoPolicy policy, std::uint32_t io_ways)
{
    workloads::RunConfig rc;
    rc.machine.meshX = 2;
    rc.machine.meshY = 2;
    rc.machine.l3BankSizeBytes = 16 * 1024; // 256 lines, 64 sets x 4
    rc.machine.l3Assoc = 4;
    rc.machine.llcIoPolicy = policy;
    rc.machine.llcIoWays = io_ways;
    return rc;
}

/** Count the tenant buffer's lines still resident in L3. */
std::uint64_t
residentTenantLines(workloads::RunContext &ctx, Addr base,
                    std::uint64_t bytes)
{
    nsc::Machine &m = ctx.machine;
    const std::uint32_t ls = m.config().lineSize;
    std::uint64_t n = 0;
    for (Addr a = base; a < base + bytes; a += ls) {
        const Addr pline = ctx.os.pageTable().translate(a) / ls;
        if (m.l3Bank(m.bankOfSim(a)).contains(pline))
            ++n;
    }
    return n;
}

/**
 * Fill a tenant working set into L3, unleash a deterministic I/O
 * write storm, and report (before, after) tenant residency.
 */
std::pair<std::uint64_t, std::uint64_t>
tenantResidencyUnderIoStorm(sim::LlcIoPolicy policy,
                            std::uint32_t io_ways)
{
    workloads::RunContext ctx(smallMachineConfig(policy, io_ways));
    nsc::Machine &m = ctx.machine;
    const std::uint32_t ls = m.config().lineSize;

    const std::uint64_t tenantBytes = 64 * 1024;
    const std::uint64_t ioBytes = 256 * 1024;
    void *tbuf = ctx.allocator.allocPlain(tenantBytes);
    void *ibuf = ctx.allocator.allocPlain(ioBytes);
    const Addr tbase = m.addressSpace().simAddrOf(tbuf);
    const Addr ibase = m.addressSpace().simAddrOf(ibuf);

    m.beginEpoch();
    for (Addr a = tbase; a < tbase + tenantBytes; a += ls)
        m.coreAccess(0, a, 8, AccessType::write, true);
    m.endEpoch(0.0, "tenant-fill");
    const std::uint64_t before =
        residentTenantLines(ctx, tbase, tenantBytes);
    EXPECT_GT(before, 0u);

    m.setPresentClasses((1u << int(AgentClass::ndc)) |
                        (1u << int(AgentClass::io)));
    m.setActiveClass(AgentClass::io);
    m.beginEpoch();
    for (Addr a = ibase; a < ibase + ioBytes; a += ls)
        m.ioWrite(/*ingress=*/0, a, ls);
    m.endEpoch(0.0, "io-storm");
    m.setActiveClass(AgentClass::ndc);

    return {before, residentTenantLines(ctx, tbase, tenantBytes)};
}

} // namespace

TEST(LlcPolicy, BypassLeavesTenantOccupancyUntouched)
{
    const auto [before, after] =
        tenantResidencyUnderIoStorm(sim::LlcIoPolicy::bypass, 1);
    EXPECT_EQ(after, before);
}

TEST(LlcPolicy, WayRestrictionBoundsTenantEviction)
{
    const auto [beforeDdio, afterDdio] =
        tenantResidencyUnderIoStorm(sim::LlcIoPolicy::ddio, 1);
    const auto [beforeWay, afterWay] =
        tenantResidencyUnderIoStorm(sim::LlcIoPolicy::wayRestrict, 1);
    ASSERT_EQ(beforeDdio, beforeWay); // identical fill phase

    // Unrestricted DDIO storms evict tenant lines; the way cap can
    // only ever displace lines sitting in the single LRU position of
    // each set, so the eviction count is hard-bounded.
    EXPECT_LT(afterDdio, beforeDdio);
    const workloads::RunContext probe(
        smallMachineConfig(sim::LlcIoPolicy::wayRestrict, 1));
    const std::uint64_t bound =
        std::uint64_t(probe.machine.config().numBanks()) *
        probe.machine.l3Bank(0).numSets() * 1 /*io way*/;
    EXPECT_GE(afterWay, beforeWay > bound ? beforeWay - bound : 0u);
    EXPECT_GT(afterWay, afterDdio);
}

// --------------------------------------- attribution and arbitration

TEST(ClassAttribution, PerClassStatsSumToGlobalTotal)
{
    workloads::RunConfig rc =
        smallMachineConfig(sim::LlcIoPolicy::ddio, 2);
    workloads::RunContext ctx(rc);
    nsc::Machine &m = ctx.machine;
    const std::uint32_t ls = m.config().lineSize;

    void *buf = ctx.allocator.allocPlain(64 * 1024);
    const Addr base = m.addressSpace().simAddrOf(buf);
    m.setPresentClasses(0b111);

    m.setActiveClass(AgentClass::ndc);
    m.beginEpoch();
    for (Addr a = base; a < base + 16 * 1024; a += ls)
        m.coreAccess(0, a, 8, AccessType::read, true);
    m.endEpoch(0.0, "ndc");

    m.setActiveClass(AgentClass::host);
    m.beginEpoch();
    for (Addr a = base; a < base + 16 * 1024; a += ls)
        m.coreAccess(1, a, 8, AccessType::write, false);
    m.endEpoch(0.0, "host");

    m.setActiveClass(AgentClass::io);
    m.beginEpoch();
    for (Addr a = base; a < base + 16 * 1024; a += ls)
        m.ioWrite(0, a, ls);
    m.endEpoch(0.0, "io");

    // Flush the io tail, then check exact conservation per counter.
    m.setActiveClass(AgentClass::ndc);
    for (const sim::CounterRef &ref : sim::statsCounters()) {
        std::uint64_t sum = 0;
        for (int c = 0; c < numAgentClasses; ++c)
            sum += ref.get(m.classStats(static_cast<AgentClass>(c)));
        EXPECT_EQ(sum, ref.get(m.stats())) << ref.name;
    }
    // Every class did attributable work.
    EXPECT_GT(m.classStats(AgentClass::ndc).cycles, 0u);
    EXPECT_GT(m.classStats(AgentClass::host).cycles, 0u);
    EXPECT_GT(m.classStats(AgentClass::io).cycles, 0u);
    EXPECT_GT(m.classStats(AgentClass::io).l3Accesses, 0u);
    // And the registered simcheck audit agrees.
    EXPECT_NO_THROW(m.audit());
}

TEST(ClassArb, PartitionScalesContendedOccupancy)
{
    // The same I/O epoch under no arbitration vs. a 1:1:1 partition
    // with two present classes: the partitioned run charges the
    // active class 2x bank/link occupancy, so the epoch is longer.
    auto runIoEpoch = [](sim::ClassArbMode mode) {
        workloads::RunConfig rc =
            smallMachineConfig(sim::LlcIoPolicy::ddio, 2);
        rc.machine.classArb.mode = mode;
        workloads::RunContext ctx(rc);
        nsc::Machine &m = ctx.machine;
        const std::uint32_t ls = m.config().lineSize;
        // 16 KB into a 64 KB L3: allocates without evictions, so the
        // epoch max is the (scaled) bank/link term, not DRAM.
        void *buf = ctx.allocator.allocPlain(16 * 1024);
        const Addr base = m.addressSpace().simAddrOf(buf);
        m.setPresentClasses((1u << int(AgentClass::ndc)) |
                            (1u << int(AgentClass::io)));
        m.setActiveClass(AgentClass::io);
        m.beginEpoch();
        for (Addr a = base; a < base + 16 * 1024; a += ls)
            m.ioWrite(0, a, ls);
        return m.endEpoch(0.0, "io");
    };
    const Cycles plain = runIoEpoch(sim::ClassArbMode::none);
    const Cycles part = runIoEpoch(sim::ClassArbMode::partition);
    EXPECT_GT(part, plain);
}

TEST(ClassArb, SinglePresentClassIsExactlyClassic)
{
    // Arbitration must not move a single-class run at all: same
    // machine, same work, arb none vs. partition with only ndc
    // present — identical epoch durations and stats.
    auto runNdcEpoch = [](sim::ClassArbMode mode) {
        workloads::RunConfig rc =
            smallMachineConfig(sim::LlcIoPolicy::ddio, 2);
        rc.machine.classArb.mode = mode;
        rc.machine.classArb.share[0] = 7.0; // must be irrelevant
        workloads::RunContext ctx(rc);
        nsc::Machine &m = ctx.machine;
        const std::uint32_t ls = m.config().lineSize;
        void *buf = ctx.allocator.allocPlain(32 * 1024);
        const Addr base = m.addressSpace().simAddrOf(buf);
        m.beginEpoch();
        for (Addr a = base; a < base + 32 * 1024; a += ls)
            m.coreAccess(0, a, 8, AccessType::write, true);
        return m.endEpoch(0.0, "ndc");
    };
    EXPECT_EQ(runNdcEpoch(sim::ClassArbMode::none),
              runNdcEpoch(sim::ClassArbMode::partition));
    EXPECT_EQ(runNdcEpoch(sim::ClassArbMode::none),
              runNdcEpoch(sim::ClassArbMode::priority));
}

// --------------------------------------------- mixed-class co-runs

namespace
{

tenant::CorunOptions
mixedOpts(std::uint32_t sim_threads)
{
    tenant::CorunOptions opts;
    opts.quick = true;
    opts.solo = false;
    opts.machine.simThreads = sim_threads;
    opts.machine.simcheck.audit = true; // class-conservation each epoch
    return opts;
}

std::vector<tenant::TenantSpec>
mixedSpecs()
{
    TrafficConfig tc;
    tc.hostAgents = 1;
    tc.ioStreams = 1;
    std::vector<tenant::TenantSpec> specs = {
        {.workload = "vecadd", .weight = 1}};
    for (tenant::TenantSpec &s : makeBackgroundSpecs(tc))
        specs.push_back(std::move(s));
    return specs;
}

} // namespace

TEST(TrafficCorun, MixedClassRerunDigestsIdentical)
{
    const tenant::CorunReport a = runCorun(mixedSpecs(), mixedOpts(1));
    const tenant::CorunReport b = runCorun(mixedSpecs(), mixedOpts(1));
    EXPECT_TRUE(a.allValid);
    EXPECT_EQ(a.digest(), b.digest());
    // Classes survive into the report, foreground first.
    ASSERT_EQ(a.tenants.size(), 3u);
    EXPECT_EQ(a.tenants[0].cls, AgentClass::ndc);
    EXPECT_EQ(a.tenants[1].cls, AgentClass::host);
    EXPECT_EQ(a.tenants[2].cls, AgentClass::io);
    EXPECT_EQ(a.tenants[1].run.cls, AgentClass::host);
    EXPECT_EQ(a.tenants[2].run.cls, AgentClass::io);
}

TEST(TrafficCorun, SimThreadsDigestInvariance)
{
    const tenant::CorunReport serial =
        runCorun(mixedSpecs(), mixedOpts(1));
    const tenant::CorunReport sharded =
        runCorun(mixedSpecs(), mixedOpts(4));
    EXPECT_TRUE(serial.allValid);
    EXPECT_TRUE(sharded.allValid);
    EXPECT_EQ(serial.digest(), sharded.digest());
    ASSERT_EQ(serial.tenants.size(), sharded.tenants.size());
    for (std::size_t i = 0; i < serial.tenants.size(); ++i) {
        EXPECT_EQ(serial.tenants[i].finishCycle,
                  sharded.tenants[i].finishCycle);
        EXPECT_EQ(serial.tenants[i].run.digest(),
                  sharded.tenants[i].run.digest());
    }
}

TEST(TrafficCorun, JobsSweepDigestInvariance)
{
    // The same two mixed-class points through the sweep pool at
    // --jobs 1 and --jobs 4: worker scheduling must not leak in.
    std::vector<std::function<tenant::CorunReport()>> tasks;
    for (int i = 0; i < 2; ++i)
        tasks.push_back(
            [] { return runCorun(mixedSpecs(), mixedOpts(1)); });
    const auto j1 = harness::runSweep(1u, tasks);
    const auto j4 = harness::runSweep(4u, tasks);
    ASSERT_EQ(j1.size(), 2u);
    ASSERT_EQ(j4.size(), 2u);
    EXPECT_EQ(j1[0].digest(), j1[1].digest());
    EXPECT_EQ(j1[0].digest(), j4[0].digest());
    EXPECT_EQ(j1[1].digest(), j4[1].digest());
}

TEST(TrafficCorun, BackgroundDrainsAfterForeground)
{
    // Background agents would run 256 quick epochs on their own; the
    // drain signal must wrap them up right after the foreground ends,
    // and their attributed work must be non-empty and class-tagged.
    // Single-epoch quanta force real interleaving even when the quick
    // foreground finishes in a handful of epochs.
    tenant::CorunOptions opts = mixedOpts(1);
    opts.quantumEpochs = 1;
    const tenant::CorunReport rep = runCorun(mixedSpecs(), opts);
    ASSERT_EQ(rep.tenants.size(), 3u);
    const auto &fg = rep.tenants[0];
    for (std::size_t i = 1; i < rep.tenants.size(); ++i) {
        const auto &bg = rep.tenants[i];
        EXPECT_GT(bg.epochs, 0u);
        EXPECT_GT(bg.run.stats.cycles, 0u);
        EXPECT_GE(bg.finishCycle, fg.finishCycle);
        EXPECT_TRUE(bg.run.valid);
    }
    // QoS aggregates exclude agents without a solo baseline.
    EXPECT_EQ(rep.tenants[1].soloCycles, 0u);
    EXPECT_EQ(rep.tenants[2].soloCycles, 0u);
}
