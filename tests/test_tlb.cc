#include <gtest/gtest.h>

#include "test_helpers.hh"

using namespace affalloc;
using test::MachineFixture;

TEST(Tlb, PageLocalAccessesHitAfterFirstTouch)
{
    MachineFixture f;
    void *p = f.allocator->allocPlain(4096);
    const Addr sim = f.machine->addressSpace().simAddrOf(p);
    f.machine->beginEpoch();
    f.machine->coreAccess(0, sim, 4, AccessType::read);
    EXPECT_EQ(f.machine->stats().tlbAccesses, 1u);
    EXPECT_EQ(f.machine->stats().tlbWalks, 1u) << "first touch walks";
    // Another line on the same page: L1 TLB hit, no walk. (The line
    // must miss L1/L2 to reach translation; use a distinct line.)
    f.machine->coreAccess(0, sim + 1024, 4, AccessType::read);
    EXPECT_EQ(f.machine->stats().tlbWalks, 1u);
    EXPECT_EQ(f.machine->stats().tlbAccesses, 2u);
}

TEST(Tlb, HugeSparseScanWalksRepeatedly)
{
    MachineFixture f;
    // Touch 16k distinct pages: far beyond the 2048-entry L2 TLB, so
    // a second sweep walks again.
    const std::uint64_t pages = 16 * 1024;
    void *p = f.allocator->allocPlain(pages * 4096);
    const Addr sim = f.machine->addressSpace().simAddrOf(p);
    f.machine->beginEpoch();
    for (std::uint64_t i = 0; i < pages; ++i)
        f.machine->coreAccess(0, sim + i * 4096, 4, AccessType::read);
    const auto first_walks = f.machine->stats().tlbWalks;
    EXPECT_EQ(first_walks, pages);
    for (std::uint64_t i = 0; i < pages; ++i)
        f.machine->coreAccess(0, sim + i * 4096, 4, AccessType::read);
    // LRU over a cyclic sweep larger than capacity: everything walks
    // again (L1 hits would need the line resident; lines got evicted
    // from L1/L2 as well given 16k distinct lines > L1/L2... but TLB
    // walks are what we assert).
    EXPECT_GE(f.machine->stats().tlbWalks, first_walks + pages / 2);
}

TEST(Tlb, SeTlbIsPerBank)
{
    // Heap (page-table-backed) data exercises the SEL3 TLBs; pool
    // data is direct-segment translated (see below).
    MachineFixture f;
    void *p = f.allocator->allocPlain(4096);
    const Addr sim = f.machine->addressSpace().simAddrOf(p);
    f.machine->preloadL3Range(sim, 4096);
    f.machine->beginEpoch();
    const BankId home = f.machine->bankOfSim(sim);
    // The home bank's SE touches the page: walk once.
    f.machine->l3StreamAccess(home, sim, 8, AccessType::read);
    EXPECT_EQ(f.machine->stats().tlbWalks, 1u);
    // Same page from the same requester again: hit.
    f.machine->l3StreamAccess(home, sim + 8, 4, AccessType::read);
    EXPECT_EQ(f.machine->stats().tlbWalks, 1u);
    // A *different* bank's SE has its own TLB: walks again.
    f.machine->l3StreamAccess((home + 5) % 64, sim + 16, 4,
                              AccessType::read);
    EXPECT_EQ(f.machine->stats().tlbWalks, 2u);
}

TEST(Tlb, PoolAddressesAreDirectSegmentTranslated)
{
    // §4.1: pools are backed by contiguous physical segments, so
    // their translation is a range check — no TLB, no walks.
    MachineFixture f;
    void *p = f.allocator->allocInterleaved(64 * 1024, 64, 0);
    const Addr sim = f.machine->addressSpace().simAddrOf(p);
    f.machine->preloadL3Range(sim, 64 * 1024);
    f.machine->beginEpoch();
    for (Addr off = 0; off < 64 * 1024; off += 64)
        f.machine->l3StreamAccess(0, sim + off, 8, AccessType::read);
    EXPECT_EQ(f.machine->stats().tlbWalks, 0u);
    EXPECT_EQ(f.machine->stats().tlbAccesses, 0u);
}

TEST(Tlb, WalkLatencyShowsUpInAccessLatency)
{
    MachineFixture f;
    void *p = f.allocator->allocPlain(2 * 4096);
    const Addr sim = f.machine->addressSpace().simAddrOf(p);
    f.machine->preloadL3Range(sim, 2 * 4096);
    f.machine->beginEpoch();
    const auto cold = f.machine->coreAccess(0, sim, 4, AccessType::read);
    // Second distinct line in the same page *and* same 1 kB NUCA
    // block (same home bank, so routing latency matches): TLB-warm.
    const auto warm =
        f.machine->coreAccess(0, sim + 128, 4, AccessType::read);
    EXPECT_GE(cold.latency,
              warm.latency + f.cfg.tlbWalkLatency)
        << "cold access pays the page walk";
}
