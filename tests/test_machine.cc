#include <gtest/gtest.h>

#include "sim/log.hh"

#include "test_helpers.hh"

using namespace affalloc;
using test::MachineFixture;

TEST(Machine, BankLookupThroughPools)
{
    MachineFixture f;
    void *p = f.allocator->allocInterleaved(64 * 64, 64, 0);
    const auto *info = f.allocator->arrayInfo(p);
    ASSERT_NE(info, nullptr);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(f.machine->bankOfSim(info->simBase + i * 64), BankId(i));
    EXPECT_EQ(f.machine->bankOfHost(p), 0u);
}

TEST(Machine, CoreAccessColdMissGoesToDram)
{
    MachineFixture f;
    void *p = f.allocator->allocPlain(4096);
    const Addr sim = f.machine->addressSpace().simAddrOf(p);
    f.machine->beginEpoch();
    const auto out = f.machine->coreAccess(0, sim, 4, AccessType::read);
    EXPECT_EQ(out.servedBy, 4); // DRAM
    EXPECT_EQ(f.machine->stats().l1Misses, 1u);
    EXPECT_EQ(f.machine->stats().l3Misses, 1u);
    EXPECT_EQ(f.machine->stats().dramAccesses, 1u);
    // Second access hits L1.
    const auto out2 = f.machine->coreAccess(0, sim, 4, AccessType::read);
    EXPECT_EQ(out2.servedBy, 1);
    EXPECT_EQ(out2.latency, f.cfg.l1Latency);
}

TEST(Machine, CoreAccessL3HitAfterPreload)
{
    MachineFixture f;
    void *p = f.allocator->allocPlain(4096);
    const Addr sim = f.machine->addressSpace().simAddrOf(p);
    f.machine->preloadL3Range(sim, 4096);
    f.machine->beginEpoch();
    const auto out = f.machine->coreAccess(1, sim, 4, AccessType::read);
    EXPECT_EQ(out.servedBy, 3);
    EXPECT_EQ(f.machine->stats().dramAccesses, 0u);
}

TEST(Machine, PreloadChargesNothing)
{
    MachineFixture f;
    void *p = f.allocator->allocPlain(1 << 16);
    const Addr sim = f.machine->addressSpace().simAddrOf(p);
    f.machine->preloadL3Range(sim, 1 << 16);
    EXPECT_EQ(f.machine->stats().l3Accesses, 0u);
    EXPECT_EQ(f.machine->stats().cycles, 0u);
}

TEST(Machine, StreamAccessLocalVersusRemote)
{
    MachineFixture f;
    void *p = f.allocator->allocInterleaved(64 * 64, 64, 0);
    const Addr sim = f.machine->addressSpace().simAddrOf(p);
    f.machine->preloadL3Range(sim, 64 * 64);
    f.machine->beginEpoch();
    // Local access: line 0 homed at bank 0, requested from bank 0.
    const auto snap = f.machine->stats();
    f.machine->l3StreamAccess(0, sim, 64, AccessType::read);
    auto delta = f.machine->stats() - snap;
    EXPECT_EQ(delta.totalHops(), 0u);
    EXPECT_EQ(delta.l3Accesses, 1u);
    // Remote: line 5 homed at bank 5, requested from bank 0:
    // request + data response over 5 hops each.
    const auto snap2 = f.machine->stats();
    f.machine->l3StreamAccess(0, sim + 5 * 64, 64, AccessType::read);
    delta = f.machine->stats() - snap2;
    EXPECT_EQ(delta.hops[int(TrafficClass::control)], 5u);
    EXPECT_EQ(delta.hops[int(TrafficClass::data)], 5u);
}

TEST(Machine, AtomicStreamAccessCountsAtomics)
{
    MachineFixture f;
    void *p = f.allocator->allocInterleaved(4096, 64, 0);
    const Addr sim = f.machine->addressSpace().simAddrOf(p);
    f.machine->preloadL3Range(sim, 4096);
    f.machine->beginEpoch();
    f.machine->l3StreamAccess(3, sim, 8, AccessType::atomic);
    EXPECT_EQ(f.machine->stats().atomicOps, 1u);
    const auto dur = f.machine->endEpoch();
    EXPECT_GT(dur, 0u);
    // Timeline recorded the atomic at bank 0.
    ASSERT_EQ(f.machine->timeline().size(), 1u);
    EXPECT_EQ(f.machine->timeline().at(0).atomicStreamsPerBank[0], 1u);
}

TEST(Machine, EpochDurationTracksBottleneck)
{
    MachineFixture f;
    void *p = f.allocator->allocInterleaved(1 << 16, 64, 0);
    const Addr sim = f.machine->addressSpace().simAddrOf(p);
    f.machine->preloadL3Range(sim, 1 << 16);

    // Few accesses: duration is close to the overhead floor.
    f.machine->beginEpoch();
    f.machine->l3StreamAccess(0, sim, 64, AccessType::read);
    const Cycles small = f.machine->endEpoch();

    // Hammer one bank: duration grows with bank occupancy.
    f.machine->beginEpoch();
    for (int i = 0; i < 5000; ++i)
        f.machine->l3StreamAccess(0, sim, 64, AccessType::read);
    const Cycles big = f.machine->endEpoch();
    EXPECT_GT(big, small + 500);
}

TEST(Machine, LatencyFloorDominatesWhenSerial)
{
    MachineFixture f;
    f.machine->beginEpoch();
    const Cycles dur = f.machine->endEpoch(50000.0);
    EXPECT_GE(dur, 50000u);
}

TEST(Machine, ForwardAndOffloadPrimitives)
{
    MachineFixture f;
    f.machine->beginEpoch();
    f.machine->forwardData(0, 1, 64);
    f.machine->migrateStream(1, 2);
    f.machine->configStream(0, 5);
    f.machine->creditMessage(0, 5);
    const auto &s = f.machine->stats();
    EXPECT_EQ(s.messages[int(TrafficClass::data)], 1u);
    EXPECT_EQ(s.messages[int(TrafficClass::offload)], 2u);
    EXPECT_EQ(s.messages[int(TrafficClass::control)], 1u);
    EXPECT_EQ(s.streamMigrations, 1u);
    EXPECT_EQ(s.streamConfigs, 1u);
}

TEST(Machine, ComputePrimitivesSplitCoreAndSe)
{
    MachineFixture f;
    f.machine->beginEpoch();
    f.machine->coreCompute(0, 100.0);
    f.machine->seCompute(3, 200.0);
    EXPECT_EQ(f.machine->stats().coreOps, 100u);
    EXPECT_EQ(f.machine->stats().seOps, 200u);
}

TEST(Machine, NocUtilizationBounded)
{
    MachineFixture f;
    void *p = f.allocator->allocInterleaved(1 << 14, 64, 0);
    const Addr sim = f.machine->addressSpace().simAddrOf(p);
    f.machine->preloadL3Range(sim, 1 << 14);
    f.machine->beginEpoch();
    for (int i = 0; i < 256; ++i)
        f.machine->l3StreamAccess(63, sim + (i % 256) * 64, 64,
                                  AccessType::read);
    f.machine->endEpoch();
    const double util = f.machine->nocUtilization();
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.0);
}

TEST(Machine, DirtyL3EvictionsWriteBack)
{
    MachineFixture f;
    // Write 3 MB through one bank's slice of a 64 B-interleaved pool:
    // bank 0's share (~48 KB... need > 1 MB per bank) - use a large
    // region so bank 0 receives > its 1 MB capacity in dirty lines.
    const std::uint64_t bytes = 128ull << 20; // 2 MB per bank
    void *p = f.allocator->allocInterleaved(bytes, 64, 0);
    const Addr sim = f.machine->addressSpace().simAddrOf(p);
    f.machine->beginEpoch();
    for (Addr a = 0; a < bytes; a += 64 * 64) // bank 0 lines only
        f.machine->l3StreamAccess(0, sim + a, 64, AccessType::write);
    f.machine->endEpoch();
    const auto &s = f.machine->stats();
    EXPECT_GT(s.dramBytes, 0u);
    EXPECT_GT(s.l3Misses, 0u);
}
