#include <gtest/gtest.h>

#include "mem/iot.hh"
#include "sim/log.hh"

using namespace affalloc;
using mem::InterleaveOverrideTable;
using mem::IotEntry;

TEST(Iot, Equation1BankMapping)
{
    // bank(paddr) = floor((paddr - start) / intrlv) mod N (Eq. 1).
    IotEntry e{0x1000, 0x100000, 64};
    EXPECT_EQ(e.bankOf(0x1000, 64), 0u);
    EXPECT_EQ(e.bankOf(0x1000 + 63, 64), 0u);
    EXPECT_EQ(e.bankOf(0x1000 + 64, 64), 1u);
    EXPECT_EQ(e.bankOf(0x1000 + 64 * 64, 64), 0u); // wraps at N banks
    EXPECT_EQ(e.bankOf(0x1000 + 64 * 65, 64), 1u);
}

TEST(Iot, LookupFindsCoveringEntry)
{
    InterleaveOverrideTable iot(4);
    iot.insert(0x1000, 0x2000, 64);
    iot.insert(0x8000, 0x9000, 4096);
    EXPECT_EQ(iot.lookup(0x1800)->intrlv, 64u);
    EXPECT_EQ(iot.lookup(0x8000)->intrlv, 4096u);
    EXPECT_EQ(iot.lookup(0x3000), nullptr);
    EXPECT_EQ(iot.lookup(0x2000), nullptr); // end is exclusive
}

TEST(Iot, CapacityEnforced)
{
    InterleaveOverrideTable iot(2);
    iot.insert(0x0, 0x100, 64);
    iot.insert(0x200, 0x300, 64);
    EXPECT_THROW(iot.insert(0x400, 0x500, 64), FatalError);
}

TEST(Iot, RejectsOverlap)
{
    InterleaveOverrideTable iot(4);
    iot.insert(0x1000, 0x2000, 64);
    EXPECT_THROW(iot.insert(0x1800, 0x2800, 128), FatalError);
    EXPECT_THROW(iot.insert(0x0800, 0x1001, 128), FatalError);
}

TEST(Iot, RejectsBadInterleaving)
{
    InterleaveOverrideTable iot(4);
    EXPECT_THROW(iot.insert(0, 0x100, 32), FatalError);  // below a line
    EXPECT_THROW(iot.insert(0, 0x100, 96), FatalError);  // not pow2
    EXPECT_THROW(iot.insert(0x100, 0x100, 64), FatalError); // empty
}

TEST(Iot, GrowExtendsRange)
{
    InterleaveOverrideTable iot(4);
    const auto idx = iot.insert(0x1000, 0x2000, 64);
    iot.grow(idx, 0x4000);
    EXPECT_NE(iot.lookup(0x3fff), nullptr);
    EXPECT_THROW(iot.grow(idx, 0x1000), FatalError); // shrink forbidden
}

TEST(Iot, GrowCannotOverlapNeighbour)
{
    InterleaveOverrideTable iot(4);
    const auto a = iot.insert(0x1000, 0x2000, 64);
    iot.insert(0x3000, 0x4000, 128);
    EXPECT_THROW(iot.grow(a, 0x3800), FatalError);
}

TEST(Iot, SixteenEntriesMatchTable2)
{
    InterleaveOverrideTable iot; // default capacity
    EXPECT_EQ(iot.capacity(), 16u);
}
