#include <gtest/gtest.h>

#include <cstring>

#include "sim/log.hh"

#include "test_helpers.hh"

using namespace affalloc;
using alloc::AffineArray;
using alloc::AllocatorOptions;
using alloc::BankPolicy;
using test::MachineFixture;

// ------------------------------------------------------------- affine

TEST(AffineAlloc, DefaultInterleaveIsOneLine)
{
    MachineFixture f;
    AffineArray req;
    req.elem_size = 4;
    req.num_elem = 1 << 16;
    auto *a = static_cast<float *>(f.allocator->mallocAff(req));
    const auto *info = f.allocator->arrayInfo(a);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->intrlv, 64u);
    EXPECT_EQ(info->startBank, 0u);
    // Elements 0..15 share a line -> bank 0; 16..31 -> bank 1.
    EXPECT_EQ(f.allocator->bankOfElement(a, 0), 0u);
    EXPECT_EQ(f.allocator->bankOfElement(a, 15), 0u);
    EXPECT_EQ(f.allocator->bankOfElement(a, 16), 1u);
}

TEST(AffineAlloc, HostMemoryIsWritable)
{
    MachineFixture f;
    AffineArray req;
    req.elem_size = 8;
    req.num_elem = 1000;
    auto *a = static_cast<double *>(f.allocator->mallocAff(req));
    for (int i = 0; i < 1000; ++i)
        a[i] = i * 1.5;
    EXPECT_DOUBLE_EQ(a[999], 1498.5);
}

TEST(AffineAlloc, InterArrayAlignmentColocatesElements)
{
    // Fig. 8(b): B[i] aligned to A[i] lands in the same bank for
    // every element.
    MachineFixture f;
    AffineArray a_req;
    a_req.elem_size = 4;
    a_req.num_elem = 1 << 14;
    void *a = f.allocator->mallocAff(a_req);

    AffineArray b_req = a_req;
    b_req.align_to = a;
    void *b = f.allocator->mallocAff(b_req);

    for (std::uint64_t i = 0; i < (1 << 14); i += 97) {
        EXPECT_EQ(f.allocator->bankOfElement(a, i),
                  f.allocator->bankOfElement(b, i))
            << "element " << i;
    }
}

TEST(AffineAlloc, ElementSizeRatioScalesInterleave)
{
    // Fig. 8(b): double C[N] aligned to float A[N] gets 2x the
    // interleave so element banks still match (Eq. 3).
    MachineFixture f;
    AffineArray a_req;
    a_req.elem_size = 4;
    a_req.num_elem = 1 << 14;
    void *a = f.allocator->mallocAff(a_req);

    AffineArray c_req;
    c_req.elem_size = 8;
    c_req.num_elem = 1 << 14;
    c_req.align_to = a;
    void *c = f.allocator->mallocAff(c_req);

    EXPECT_EQ(f.allocator->arrayInfo(c)->intrlv, 128u);
    for (std::uint64_t i = 0; i < (1 << 14); i += 61) {
        EXPECT_EQ(f.allocator->bankOfElement(a, i),
                  f.allocator->bankOfElement(c, i))
            << "element " << i;
    }
}

TEST(AffineAlloc, AlignXOffsetsStartBank)
{
    // B[i] -> A[i + 32]: with 4 B elements and 64 B interleave, a
    // 32-element offset is 2 interleave blocks.
    MachineFixture f;
    AffineArray a_req;
    a_req.elem_size = 4;
    a_req.num_elem = 1 << 14;
    void *a = f.allocator->mallocAff(a_req);

    AffineArray b_req = a_req;
    b_req.align_to = a;
    b_req.align_x = 32;
    void *b = f.allocator->mallocAff(b_req);

    const auto *info = f.allocator->arrayInfo(b);
    ASSERT_NE(info, nullptr);
    EXPECT_NE(info->intrlv, 0u) << "should not have fallen back";
    for (std::uint64_t i = 0; i < 4096; i += 33) {
        EXPECT_EQ(f.allocator->bankOfElement(b, i),
                  f.allocator->bankOfElement(a, i + 32))
            << "element " << i;
    }
}

TEST(AffineAlloc, NegativeAlignXWrapsStartBank)
{
    MachineFixture f;
    AffineArray a_req;
    a_req.elem_size = 4;
    a_req.num_elem = 1 << 14;
    void *a = f.allocator->mallocAff(a_req);

    AffineArray b_req = a_req;
    b_req.align_to = a;
    b_req.align_x = -32; // B[i] aligns to A[i - 32]: 2 blocks back
    void *b = f.allocator->mallocAff(b_req);
    const auto *info = f.allocator->arrayInfo(b);
    ASSERT_NE(info, nullptr);
    EXPECT_NE(info->intrlv, 0u) << "negative offsets are exact too";
    for (std::uint64_t i = 32; i < 4096; i += 33) {
        EXPECT_EQ(f.allocator->bankOfElement(b, i),
                  f.allocator->bankOfElement(a, i - 32))
            << "element " << i;
    }
}

TEST(AffineAlloc, ImperfectOffsetFallsBack)
{
    // align_x * elem not a multiple of the interleave: the paper's
    // fallback rule applies.
    MachineFixture f;
    AffineArray a_req;
    a_req.elem_size = 4;
    a_req.num_elem = 4096;
    void *a = f.allocator->mallocAff(a_req);

    AffineArray b_req = a_req;
    b_req.align_to = a;
    b_req.align_x = 3; // 12 bytes: not a multiple of 64
    void *b = f.allocator->mallocAff(b_req);
    EXPECT_EQ(f.allocator->arrayInfo(b)->intrlv, 0u);
    EXPECT_EQ(f.allocator->allocStats().fallbacks, 1u);
}

TEST(AffineAlloc, NonIntegralRatioFallsBack)
{
    MachineFixture f;
    AffineArray a_req;
    a_req.elem_size = 4;
    a_req.num_elem = 4096;
    void *a = f.allocator->mallocAff(a_req);

    AffineArray b_req;
    b_req.elem_size = 4;
    b_req.num_elem = 4096;
    b_req.align_to = a;
    b_req.align_p = 3; // intrlv = 64/3: inexact
    void *b = f.allocator->mallocAff(b_req);
    EXPECT_EQ(f.allocator->arrayInfo(b)->intrlv, 0u);
}

TEST(AffineAlloc, UnknownAlignTargetFallsBack)
{
    MachineFixture f;
    int dummy = 0;
    AffineArray req;
    req.elem_size = 4;
    req.num_elem = 64;
    req.align_to = &dummy;
    void *b = f.allocator->mallocAff(req);
    EXPECT_EQ(f.allocator->arrayInfo(b)->intrlv, 0u);
    EXPECT_EQ(f.allocator->allocStats().fallbacks, 1u);
}

TEST(AffineAlloc, IntraArrayRowAffinity)
{
    // Fig. 8(c): 2D array M x N, want A[i,j] near A[i+1,j]. With a
    // 4 kB row (1024 floats) and 64 B interleave, rows align
    // perfectly: distance 0.
    MachineFixture f;
    const std::uint64_t n_cols = 1024;
    AffineArray req;
    req.elem_size = 4;
    req.num_elem = 64 * n_cols;
    req.align_x = static_cast<std::int64_t>(n_cols);
    void *a = f.allocator->mallocAff(req);
    const auto *info = f.allocator->arrayInfo(a);
    ASSERT_NE(info, nullptr);
    EXPECT_NE(info->intrlv, 0u);
    for (std::uint64_t j = 0; j < n_cols; j += 111) {
        EXPECT_EQ(f.allocator->bankOfElement(a, j),
                  f.allocator->bankOfElement(a, j + n_cols));
    }
}

TEST(AffineAlloc, PartitionSpreadsAcrossAllBanks)
{
    MachineFixture f;
    AffineArray req;
    req.elem_size = 4;
    req.num_elem = 1 << 17; // 512 kB -> 8 kB per bank
    req.partition = true;
    void *v = f.allocator->mallocAff(req);
    const auto *info = f.allocator->arrayInfo(v);
    ASSERT_NE(info, nullptr);
    EXPECT_TRUE(info->partitioned);
    // Every bank owns exactly one contiguous chunk.
    std::vector<int> seen(64, 0);
    const std::uint64_t per_bank = (1 << 17) / 64;
    for (std::uint64_t i = 0; i < (1 << 17); i += per_bank)
        ++seen[f.allocator->bankOfElement(v, i)];
    for (int b = 0; b < 64; ++b)
        EXPECT_EQ(seen[b], 1) << "bank " << b;
    // Partition p is entirely within one bank.
    EXPECT_EQ(f.allocator->bankOfElement(v, 0),
              f.allocator->bankOfElement(v, per_bank - 1));
}

TEST(AffineAlloc, SmallPartitionUsesPools)
{
    MachineFixture f;
    AffineArray req;
    req.elem_size = 8;
    req.num_elem = 64; // one element per bank
    req.partition = true;
    void *t = f.allocator->mallocAff(req);
    const auto *info = f.allocator->arrayInfo(t);
    EXPECT_TRUE(info->partitioned);
    EXPECT_EQ(info->intrlv, 64u);
    EXPECT_EQ(f.allocator->bankOfElement(t, 8), 1u);
}

TEST(AffineAlloc, AlignToPartitionedArray)
{
    MachineFixture f;
    AffineArray v_req;
    v_req.elem_size = 4;
    v_req.num_elem = 1 << 17;
    v_req.partition = true;
    void *v = f.allocator->mallocAff(v_req);

    AffineArray q_req;
    q_req.elem_size = 4;
    q_req.num_elem = 1 << 17;
    q_req.align_to = v;
    void *q = f.allocator->mallocAff(q_req);
    const auto *qi = f.allocator->arrayInfo(q);
    ASSERT_NE(qi, nullptr);
    EXPECT_NE(qi->intrlv, 0u);
    for (std::uint64_t i = 0; i < (1 << 17); i += 7777) {
        EXPECT_EQ(f.allocator->bankOfElement(q, i),
                  f.allocator->bankOfElement(v, i))
            << "element " << i;
    }
}

// ----------------------------------------------------------- irregular

TEST(IrregularAlloc, SlotRoundsUpToLine)
{
    MachineFixture f;
    void *p = f.allocator->mallocAff(24, 0, nullptr);
    EXPECT_NE(p, nullptr);
    EXPECT_EQ(f.allocator->allocStats().irregularAllocs, 1u);
    std::memset(p, 0xab, 24);
    f.allocator->freeAff(p);
    EXPECT_EQ(f.allocator->allocStats().frees, 1u);
}

TEST(IrregularAlloc, FreeListReusesSlot)
{
    MachineFixture f;
    AllocatorOptions opts;
    void *p1 = f.allocator->mallocAff(64, 0, nullptr);
    const Addr sim1 = f.machine->addressSpace().simAddrOf(p1);
    f.allocator->freeAff(p1);
    // Same-bank allocation reuses the freed slot (hybrid with no
    // affinity and equal load picks bank 0 deterministically).
    void *p2 = f.allocator->mallocAff(64, 0, nullptr);
    const Addr sim2 = f.machine->addressSpace().simAddrOf(p2);
    EXPECT_EQ(sim1, sim2);
}

TEST(IrregularAlloc, MinHopColocatesWithAffinityAddress)
{
    AllocatorOptions opts;
    opts.policy = BankPolicy::minHop;
    MachineFixture f(opts);
    void *anchor = f.allocator->allocInterleaved(64 * 64, 64, 0);
    // Element at line 17 is homed at bank 17.
    const void *aff[1] = {static_cast<char *>(anchor) + 17 * 64};
    void *p = f.allocator->mallocAff(64, 1, aff);
    EXPECT_EQ(f.machine->bankOfHost(p), 17u);
}

TEST(IrregularAlloc, MinHopPicksCentroidOfManyAddresses)
{
    AllocatorOptions opts;
    opts.policy = BankPolicy::minHop;
    MachineFixture f(opts);
    void *anchor = f.allocator->allocInterleaved(64 * 64, 64, 0);
    // Affinity to banks 0 and 2 (same row): bank 1 or better must
    // win; all three have equal avg distance 1 -> lowest index 0..2.
    const void *aff[2] = {static_cast<char *>(anchor) + 0 * 64,
                          static_cast<char *>(anchor) + 2 * 64};
    void *p = f.allocator->mallocAff(64, 2, aff);
    const BankId b = f.machine->bankOfHost(p);
    EXPECT_LE(b, 2u);
}

TEST(IrregularAlloc, LoadsTracked)
{
    AllocatorOptions opts;
    opts.policy = BankPolicy::minHop;
    MachineFixture f(opts);
    void *anchor = f.allocator->allocInterleaved(64 * 64, 64, 0);
    const void *aff[1] = {static_cast<char *>(anchor) + 9 * 64};
    void *p1 = f.allocator->mallocAff(64, 1, aff);
    void *p2 = f.allocator->mallocAff(64, 1, aff);
    EXPECT_EQ(f.allocator->bankLoads()[9], 2u);
    f.allocator->freeAff(p1);
    EXPECT_EQ(f.allocator->bankLoads()[9], 1u);
    f.allocator->freeAff(p2);
    EXPECT_EQ(f.allocator->bankLoads()[9], 0u);
}

TEST(IrregularAlloc, OversizeFallsBackToHeap)
{
    MachineFixture f;
    void *p = f.allocator->mallocAff(8192, 0, nullptr);
    EXPECT_NE(p, nullptr);
    EXPECT_EQ(f.allocator->allocStats().fallbacks, 1u);
    f.allocator->freeAff(p);
}

TEST(IrregularAlloc, UnregisteredAffinityAddressesIgnored)
{
    AllocatorOptions opts;
    opts.policy = BankPolicy::minHop;
    MachineFixture f(opts);
    int stack_var = 0;
    const void *aff[2] = {&stack_var, nullptr};
    void *p = f.allocator->mallocAff(64, 2, aff);
    EXPECT_NE(p, nullptr);
}

TEST(IrregularAlloc, AllocSlotAtBankPins)
{
    MachineFixture f;
    for (BankId b : {0u, 13u, 63u}) {
        void *p = f.allocator->allocSlotAtBank(64, b);
        EXPECT_EQ(f.machine->bankOfHost(p), b);
    }
    EXPECT_THROW(f.allocator->allocSlotAtBank(64, 64), FatalError);
}

TEST(IrregularAlloc, FreeUnknownPointerFatal)
{
    MachineFixture f;
    int x;
    EXPECT_THROW(f.allocator->freeAff(&x), FatalError);
}

// ----------------------------------------------------------- low level

TEST(AllocInterleaved, StartBankHonored)
{
    MachineFixture f;
    for (BankId start : {0u, 7u, 63u}) {
        void *p = f.allocator->allocInterleaved(64 * 128, 64, start);
        EXPECT_EQ(f.machine->bankOfHost(p), start);
        const auto *info = f.allocator->arrayInfo(p);
        EXPECT_EQ(info->startBank, start);
    }
}

TEST(AllocInterleaved, LargePageMultipleInterleave)
{
    MachineFixture f;
    void *p = f.allocator->allocInterleaved(64 * 8192, 8192, 3);
    // Pages 0-1 at bank 3, pages 2-3 at bank 4...
    EXPECT_EQ(f.machine->bankOfHost(p), 3u);
    EXPECT_EQ(f.machine->bankOfHost(static_cast<char *>(p) + 4096), 3u);
    EXPECT_EQ(f.machine->bankOfHost(static_cast<char *>(p) + 8192), 4u);
}

TEST(AllocStats, WasteIsBounded)
{
    MachineFixture f;
    // Allocating at rotating start banks wastes at most
    // numBanks * intrlv bytes each.
    for (int i = 0; i < 10; ++i)
        f.allocator->allocInterleaved(4096, 64, BankId(i * 7 % 64));
    EXPECT_LE(f.allocator->allocStats().alignmentWasteBytes,
              10ull * 64 * 64);
}
