#include <gtest/gtest.h>

#include "mem/cache_model.hh"
#include "sim/log.hh"

using namespace affalloc;
using mem::CacheModel;

TEST(CacheModel, MissThenHit)
{
    CacheModel c(1024, 2, 64); // 16 lines, 8 sets x 2 ways
    EXPECT_FALSE(c.access(100, false).hit);
    EXPECT_TRUE(c.access(100, false).hit);
}

TEST(CacheModel, LruEviction)
{
    CacheModel c(256, 2, 64); // 4 lines, 2 sets x 2 ways
    // Lines 0, 2, 4 all map to set 0 (line & 1 == 0).
    c.access(0, false);
    c.access(2, false);
    c.access(0, false); // touch 0: line 2 becomes LRU
    const auto r = c.access(4, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(2));
    EXPECT_TRUE(c.contains(4));
}

TEST(CacheModel, DirtyEvictionReportsWriteback)
{
    CacheModel c(256, 2, 64);
    c.access(0, true); // dirty
    c.access(2, false);
    const auto r = c.access(4, false); // evicts 0 (LRU, dirty)
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victimLine, 0u);
}

TEST(CacheModel, CleanEvictionNoWriteback)
{
    CacheModel c(256, 2, 64);
    c.access(0, false);
    c.access(2, false);
    const auto r = c.access(4, false);
    EXPECT_FALSE(r.writeback);
}

TEST(CacheModel, WriteHitMarksDirty)
{
    CacheModel c(256, 2, 64);
    c.access(0, false);
    c.access(0, true); // now dirty
    c.access(2, false);
    const auto r = c.access(4, false);
    EXPECT_TRUE(r.writeback);
}

TEST(CacheModel, ResidentLinesTracksFills)
{
    CacheModel c(64 * 64, 4, 64);
    for (Addr l = 0; l < 10; ++l)
        c.access(l, false);
    EXPECT_EQ(c.residentLines(), 10u);
    c.access(0, false); // hit: no change
    EXPECT_EQ(c.residentLines(), 10u);
}

TEST(CacheModel, ResetEmptiesCache)
{
    CacheModel c(1024, 2, 64);
    c.access(1, true);
    c.reset();
    EXPECT_FALSE(c.contains(1));
    EXPECT_EQ(c.residentLines(), 0u);
}

TEST(CacheModel, RejectsBadGeometry)
{
    EXPECT_THROW(CacheModel(1000, 3, 64), FatalError); // non-pow2 sets
    EXPECT_THROW(CacheModel(0, 2, 64), FatalError);
}

TEST(CacheModel, L3BankGeometryMatchesTable2)
{
    CacheModel c(1024 * 1024, 16, 64);
    EXPECT_EQ(c.numSets(), 1024u);
    EXPECT_EQ(c.assoc(), 16u);
}

TEST(CacheModel, FullWorkingSetStaysResident)
{
    CacheModel c(64 * 1024, 16, 64); // 1024 lines
    for (Addr l = 0; l < 1024; ++l)
        c.access(l, false);
    // Second pass: everything hits (capacity exactly matches).
    for (Addr l = 0; l < 1024; ++l)
        EXPECT_TRUE(c.access(l, false).hit);
}

TEST(CacheModel, OverCapacityWorkingSetThrashes)
{
    CacheModel c(64 * 1024, 16, 64); // 1024 lines
    // 2x capacity streaming with LRU: second pass misses everything.
    for (Addr l = 0; l < 2048; ++l)
        c.access(l, false);
    int hits = 0;
    for (Addr l = 0; l < 2048; ++l)
        hits += c.access(l, false).hit;
    EXPECT_EQ(hits, 0);
}
