/**
 * @file
 * Chaos-engine tests: fuzzer determinism (same seed => byte-identical
 * campaigns, verdicts and digests at any job count), signature
 * normalization, ddmin shrinking, the planted spare-of-spare keying
 * regression (fails legacy, passes hardened, shrinks to the two
 * kills), and repro-bundle round-trip + replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "chaos/chaos.hh"
#include "sim/fault.hh"
#include "sim/log.hh"

using namespace affalloc;

namespace
{

std::string
scheduleOf(const chaos::Campaign &c)
{
    return sim::formatFaultSchedule(c.opts.faultSchedule);
}

/**
 * A campaign that fails instantly and deterministically: the fault
 * schedule names a bank that does not exist, which the serving
 * engine's parse-time validation rejects before any simulation. The
 * decoy events are all valid; only the bad kill is load-bearing, so
 * the shrinker must isolate it. Each oracle run costs microseconds,
 * which keeps the ddmin unit test fast.
 */
chaos::Campaign
invalidTargetCampaign()
{
    chaos::Campaign c;
    c.opts.quick = true;
    c.opts.numRequests = 8;
    c.opts.maxCycles = 2'000'000'000ULL;
    serve::ServeClass cls;
    cls.workload = "vecadd";
    c.opts.classes = {cls};
    c.opts.faultSchedule = sim::parseFaultSchedule(
        "link:20@100000x4,bank:3@200000,nack:250@300000,"
        "bank:9999@400000,nack:0@500000,link:21@600000x2");
    return c;
}

} // namespace

// --------------------------------------------------------- signatures

TEST(ChaosSignature, CollapsesLongNumbersKeepsShortOnes)
{
    EXPECT_EQ(chaos::normalizeSignature(
                  "pool 3: slot sim 7f00deadbeef on bank 27's free "
                  "list but served by bank 9"),
              "pool 3: slot sim # on bank 27's free list but served "
              "by bank 9");
    EXPECT_EQ(chaos::normalizeSignature("stalled for 100000 epochs"),
              "stalled for # epochs");
    // Hex with 0x prefix collapses too.
    EXPECT_EQ(chaos::normalizeSignature("addr 0x1f3a8 bad"),
              "addr # bad");
}

TEST(ChaosSignature, FirstLineOnlyAndCapped)
{
    EXPECT_EQ(chaos::normalizeSignature("first\nsecond line"), "first");
    const std::string longMsg(1000, 'a');
    EXPECT_LE(chaos::normalizeSignature(longMsg).size(), 240u);
}

TEST(ChaosSignature, WordsWithDigitsSurvive)
{
    // "hotspot3d" has a digit but also non-hex letters: kept.
    EXPECT_EQ(chaos::normalizeSignature("workload hotspot3d invalid"),
              "workload hotspot3d invalid");
}

// -------------------------------------------------------- determinism

TEST(ChaosFuzzer, CampaignGenerationIsDeterministic)
{
    chaos::FuzzOptions f;
    f.seed = 42;
    for (std::uint32_t i = 0; i < 8; ++i) {
        const chaos::Campaign a = chaos::generateCampaign(f, i);
        const chaos::Campaign b = chaos::generateCampaign(f, i);
        EXPECT_EQ(scheduleOf(a), scheduleOf(b));
        EXPECT_EQ(a.opts.seed, b.opts.seed);
        EXPECT_EQ(a.opts.allocOpts.seed, b.opts.allocOpts.seed);
        EXPECT_EQ(a.opts.numRequests, b.opts.numRequests);
        EXPECT_EQ(a.opts.arrivalsPerMcycle, b.opts.arrivalsPerMcycle);
        ASSERT_EQ(a.opts.classes.size(), b.opts.classes.size());
        for (std::size_t k = 0; k < a.opts.classes.size(); ++k)
            EXPECT_EQ(a.opts.classes[k].workload,
                      b.opts.classes[k].workload);
    }
    // A different seed moves the campaigns.
    chaos::FuzzOptions g;
    g.seed = 43;
    bool differs = false;
    for (std::uint32_t i = 0; i < 8 && !differs; ++i)
        differs = scheduleOf(chaos::generateCampaign(f, i)) !=
                  scheduleOf(chaos::generateCampaign(g, i));
    EXPECT_TRUE(differs);
}

TEST(ChaosFuzzer, CampaignsRespectBounds)
{
    chaos::FuzzOptions f;
    f.seed = 7;
    for (std::uint32_t i = 0; i < 32; ++i) {
        const chaos::Campaign c = chaos::generateCampaign(f, i);
        const std::uint32_t banks = c.opts.machine.numBanks();
        std::uint32_t kills = 0;
        for (const sim::TimedFault &ev : c.opts.faultSchedule) {
            EXPECT_LE(ev.atCycle, c.opts.maxCycles);
            if (ev.kind == sim::FaultKind::killBank) {
                EXPECT_LT(ev.target, banks);
                ++kills;
            } else if (ev.kind == sim::FaultKind::degradeLink) {
                EXPECT_GE(ev.factor, 2u);
                EXPECT_LE(ev.factor, sim::maxLinkDegradeFactor);
            } else {
                EXPECT_LE(ev.target, 1000u);
            }
        }
        // Never kills enough banks to exhaust the machine outright.
        EXPECT_LE(kills, banks / 2);
        // The generated schedule round-trips the CLI grammar.
        EXPECT_EQ(sim::formatFaultSchedule(
                      sim::parseFaultSchedule(scheduleOf(c))),
                  scheduleOf(c));
    }
}

TEST(ChaosFuzzer, FuzzReportIdenticalAtAnyJobCount)
{
    chaos::FuzzOptions f;
    f.seed = 5;
    f.campaigns = 3;
    f.jobs = 1;
    const chaos::FuzzReport one = chaos::runFuzz(f);
    f.jobs = 4;
    const chaos::FuzzReport four = chaos::runFuzz(f);
    EXPECT_EQ(one.digest, four.digest);
    EXPECT_EQ(one.failures, four.failures);
    ASSERT_EQ(one.results.size(), four.results.size());
    for (std::size_t i = 0; i < one.results.size(); ++i) {
        EXPECT_EQ(one.results[i].schedule, four.results[i].schedule);
        EXPECT_EQ(one.results[i].verdict.failed,
                  four.results[i].verdict.failed);
        EXPECT_EQ(one.results[i].verdict.signature,
                  four.results[i].verdict.signature);
    }
}

// ----------------------------------------------------------- shrinking

TEST(ChaosShrink, IsolatesTheLoadBearingEvent)
{
    const chaos::Campaign c = invalidTargetCampaign();
    const chaos::Verdict v = chaos::runOracle(c.opts);
    ASSERT_TRUE(v.failed);
    EXPECT_EQ(v.errorType, "fatal");

    std::uint32_t runs = 0;
    const chaos::Campaign small = chaos::shrinkCampaign(c, v, &runs);
    ASSERT_EQ(small.opts.faultSchedule.size(), 1u);
    EXPECT_EQ(small.opts.faultSchedule[0].target, 9999u);
    EXPECT_EQ(small.opts.numRequests, 1u);
    EXPECT_GT(runs, 0u);

    // The shrunk campaign still fails identically.
    const chaos::Verdict sv = chaos::runOracle(small.opts);
    EXPECT_TRUE(sv.failed);
    EXPECT_EQ(sv.klass, v.klass);
}

TEST(ChaosShrink, IsDeterministic)
{
    const chaos::Campaign c = invalidTargetCampaign();
    const chaos::Verdict v = chaos::runOracle(c.opts);
    ASSERT_TRUE(v.failed);
    std::uint32_t runsA = 0;
    std::uint32_t runsB = 0;
    const chaos::Campaign a = chaos::shrinkCampaign(c, v, &runsA);
    const chaos::Campaign b = chaos::shrinkCampaign(c, v, &runsB);
    EXPECT_EQ(scheduleOf(a), scheduleOf(b));
    EXPECT_EQ(a.opts.numRequests, b.opts.numRequests);
    EXPECT_EQ(a.opts.maxCycles, b.opts.maxCycles);
    EXPECT_EQ(runsA, runsB);
}

TEST(ChaosShrink, RefusesPassingCampaign)
{
    const chaos::Campaign c = invalidTargetCampaign();
    chaos::Verdict passing;
    EXPECT_THROW(chaos::shrinkCampaign(c, passing), FatalError);
}

// ------------------------------------------- planted keying regression

TEST(ChaosPlanted, FailsLegacyKeyingPassesHardened)
{
    const chaos::Campaign planted = chaos::plantedSpareKeyingCampaign();
    ASSERT_TRUE(planted.opts.allocOpts.legacySpareKeying);
    const chaos::Verdict v = chaos::runOracle(planted.opts);
    ASSERT_TRUE(v.failed);
    EXPECT_EQ(v.errorType, "audit");
    EXPECT_EQ(v.klass, "audit:alloc/freelist-integrity");

    // The identical campaign under the hardened keying is clean.
    chaos::Campaign hardened = planted;
    hardened.opts.allocOpts.legacySpareKeying = false;
    const chaos::Verdict hv = chaos::runOracle(hardened.opts);
    EXPECT_FALSE(hv.failed) << hv.signature;
}

TEST(ChaosPlanted, ShrinksToTheKillCluster)
{
    const chaos::Campaign planted = chaos::plantedSpareKeyingCampaign();
    const chaos::Verdict v = chaos::runOracle(planted.opts);
    ASSERT_TRUE(v.failed);

    std::uint32_t runs = 0;
    const chaos::Campaign small =
        chaos::shrinkCampaign(planted, v, &runs);
    // The decoy link/NACK events peel away; the spare-of-spare kill
    // pair (at most one decoy glued by timing) remains.
    EXPECT_LE(small.opts.faultSchedule.size(), 3u);
    std::uint32_t kills = 0;
    for (const sim::TimedFault &ev : small.opts.faultSchedule)
        kills += ev.kind == sim::FaultKind::killBank;
    EXPECT_EQ(kills, 2u);

    const chaos::Verdict sv = chaos::runOracle(small.opts);
    ASSERT_TRUE(sv.failed);
    EXPECT_EQ(sv.klass, v.klass);
}

// ------------------------------------------------------------- bundles

TEST(ChaosBundle, RoundTripsEveryField)
{
    const chaos::Campaign c = chaos::plantedSpareKeyingCampaign();
    chaos::Verdict v;
    v.failed = true;
    v.errorType = "audit";
    v.klass = "audit:alloc/freelist-integrity";
    v.signature = "alloc/freelist-integrity: pool 3: \"quoted\"\tsig";

    const std::string json = chaos::formatBundle(c, v);
    chaos::Verdict back;
    const chaos::Campaign parsed = chaos::parseBundle(json, &back);

    EXPECT_EQ(parsed.index, c.index);
    EXPECT_EQ(parsed.opts.mode, c.opts.mode);
    EXPECT_EQ(scheduleOf(parsed), scheduleOf(c));
    EXPECT_EQ(parsed.opts.seed, c.opts.seed);
    EXPECT_EQ(parsed.opts.allocOpts.seed, c.opts.allocOpts.seed);
    EXPECT_EQ(parsed.opts.allocOpts.legacySpareKeying,
              c.opts.allocOpts.legacySpareKeying);
    EXPECT_EQ(parsed.opts.numRequests, c.opts.numRequests);
    EXPECT_EQ(parsed.opts.arrivalsPerMcycle, c.opts.arrivalsPerMcycle);
    EXPECT_EQ(parsed.opts.burstiness, c.opts.burstiness);
    EXPECT_EQ(parsed.opts.slots, c.opts.slots);
    EXPECT_EQ(parsed.opts.queueCapacity, c.opts.queueCapacity);
    EXPECT_EQ(parsed.opts.quantumEpochs, c.opts.quantumEpochs);
    EXPECT_EQ(parsed.opts.maxCycles, c.opts.maxCycles);
    EXPECT_EQ(parsed.opts.quick, c.opts.quick);
    EXPECT_EQ(parsed.opts.reaffinity, c.opts.reaffinity);
    EXPECT_EQ(parsed.opts.machine.simcheck.audit,
              c.opts.machine.simcheck.audit);
    EXPECT_EQ(parsed.opts.machine.simcheck.auditPeriodEpochs,
              c.opts.machine.simcheck.auditPeriodEpochs);
    ASSERT_EQ(parsed.opts.classes.size(), c.opts.classes.size());
    for (std::size_t k = 0; k < c.opts.classes.size(); ++k) {
        EXPECT_EQ(parsed.opts.classes[k].workload,
                  c.opts.classes[k].workload);
        EXPECT_EQ(parsed.opts.classes[k].weight,
                  c.opts.classes[k].weight);
        EXPECT_EQ(parsed.opts.classes[k].maxRetries,
                  c.opts.classes[k].maxRetries);
        EXPECT_EQ(parsed.opts.classes[k].retryBackoff,
                  c.opts.classes[k].retryBackoff);
        EXPECT_EQ(parsed.opts.classes[k].giveUpAfter,
                  c.opts.classes[k].giveUpAfter);
    }
    EXPECT_EQ(back.errorType, v.errorType);
    EXPECT_EQ(back.klass, v.klass);
    EXPECT_EQ(back.signature, v.signature);
}

TEST(ChaosBundle, RejectsMalformedInput)
{
    EXPECT_THROW(chaos::parseBundle("{}"), FatalError);
    EXPECT_THROW(chaos::parseBundle("not json at all"), FatalError);
    // Wrong version is refused, not misread.
    const chaos::Campaign c = chaos::plantedSpareKeyingCampaign();
    chaos::Verdict v;
    v.failed = true;
    std::string json = chaos::formatBundle(c, v);
    const std::size_t at = json.find("\"version\": 1");
    ASSERT_NE(at, std::string::npos);
    json.replace(at, 12, "\"version\": 9");
    EXPECT_THROW(chaos::parseBundle(json), FatalError);
}

TEST(ChaosBundle, ReplayReproducesTheShrunkFailure)
{
    const chaos::Campaign planted = chaos::plantedSpareKeyingCampaign();
    const chaos::Verdict v = chaos::runOracle(planted.opts);
    ASSERT_TRUE(v.failed);
    const chaos::Campaign small = chaos::shrinkCampaign(planted, v);
    const chaos::Verdict sv = chaos::runOracle(small.opts);
    ASSERT_TRUE(sv.failed);

    const std::string path =
        testing::TempDir() + "/chaos-repro-test.json";
    chaos::writeBundleFile(path, small, sv);
    const chaos::ReplayResult r = chaos::replayBundleFile(path);
    EXPECT_TRUE(r.reproduced)
        << "expected [" << r.expected.signature << "] got ["
        << r.got.signature << "]";
    EXPECT_EQ(r.got.errorType, sv.errorType);
    EXPECT_EQ(r.got.signature, sv.signature);
    std::remove(path.c_str());
}

TEST(ChaosBundle, ReplayOfMissingFileIsAFatalError)
{
    EXPECT_THROW(chaos::replayBundleFile("/nonexistent/nope.json"),
                 FatalError);
}

// ------------------------------------------------------ full fuzz loop

TEST(ChaosFuzz, PlantedMatrixFindsShrinksAndBundles)
{
    chaos::FuzzOptions f;
    f.seed = 1;
    f.campaigns = 1;
    f.jobs = 1;
    f.plantSpareKeying = true;
    f.bundleDir = testing::TempDir() + "/chaos-planted-fuzz";
    const chaos::FuzzReport rep = chaos::runFuzz(f);
    EXPECT_EQ(rep.campaigns, 1u);
    ASSERT_EQ(rep.results.size(), 1u);
    EXPECT_NE(rep.digest, 0u);

    // Planting seeds campaign 0 with the known-bad spare-of-spare
    // matrix, so the run must find it, shrink it to a handful of
    // fault events, and drop a replayable bundle.
    EXPECT_EQ(rep.failures, 1u);
    const chaos::CampaignResult &r = rep.results[0];
    ASSERT_TRUE(r.verdict.failed);
    EXPECT_EQ(r.verdict.klass, "audit:alloc/freelist-integrity");
    ASSERT_TRUE(r.shrunkVerdict.failed);
    EXPECT_LE(r.shrunk.opts.faultSchedule.size(), 3u);
    ASSERT_FALSE(r.bundlePath.empty());
    const chaos::ReplayResult replay =
        chaos::replayBundleFile(r.bundlePath);
    EXPECT_TRUE(replay.reproduced);
    std::remove(r.bundlePath.c_str());
}

TEST(ChaosFuzz, ZeroCampaignsIsAConfigError)
{
    chaos::FuzzOptions f;
    f.campaigns = 0;
    EXPECT_THROW(chaos::runFuzz(f), FatalError);
}
