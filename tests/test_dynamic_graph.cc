#include <gtest/gtest.h>

#include "ds/dynamic_graph.hh"
#include "graph/generators.hh"
#include "graph/reference.hh"
#include "sim/log.hh"
#include "sim/rng.hh"

#include "test_helpers.hh"

using namespace affalloc;
using alloc::AffineArray;
using ds::DynamicGraph;
using test::MachineFixture;

namespace
{

void *
makeVertexArray(MachineFixture &f, graph::VertexId n)
{
    AffineArray req;
    req.elem_size = 4;
    req.num_elem = n;
    req.partition = true;
    return f.allocator->mallocAff(req);
}

} // namespace

TEST(DynamicGraph, AddAndQueryEdges)
{
    MachineFixture f;
    void *v = makeVertexArray(f, 1024);
    DynamicGraph g(1024, *f.allocator, v, 4);
    g.addEdge(1, 2);
    g.addEdge(1, 3);
    g.addEdge(5, 1);
    EXPECT_TRUE(g.hasEdge(1, 2));
    EXPECT_TRUE(g.hasEdge(5, 1));
    EXPECT_FALSE(g.hasEdge(2, 1));
    EXPECT_EQ(g.degree(1), 2u);
    EXPECT_EQ(g.numEdges(), 3u);
}

TEST(DynamicGraph, RemoveEdge)
{
    MachineFixture f;
    void *v = makeVertexArray(f, 256);
    DynamicGraph g(256, *f.allocator, v, 4);
    for (graph::VertexId d = 0; d < 40; ++d)
        g.addEdge(7, d);
    EXPECT_EQ(g.degree(7), 40u);
    EXPECT_TRUE(g.removeEdge(7, 13));
    EXPECT_FALSE(g.hasEdge(7, 13));
    EXPECT_FALSE(g.removeEdge(7, 13));
    EXPECT_EQ(g.degree(7), 39u);
    // Everything else intact.
    for (graph::VertexId d = 0; d < 40; ++d)
        if (d != 13) {
            EXPECT_TRUE(g.hasEdge(7, d)) << d;
        }
}

TEST(DynamicGraph, NodesRecycleWhenEmptied)
{
    MachineFixture f;
    void *v = makeVertexArray(f, 256);
    DynamicGraph g(256, *f.allocator, v, 4);
    for (int i = 0; i < 12; ++i)
        g.addEdge(3, graph::VertexId(i));
    EXPECT_EQ(g.numNodes(), 1u);
    for (int i = 0; i < 12; ++i)
        EXPECT_TRUE(g.removeEdge(3, graph::VertexId(i)));
    EXPECT_EQ(g.numNodes(), 0u);
    EXPECT_EQ(g.head(3), nullptr);
    EXPECT_EQ(g.numEdges(), 0u);
}

TEST(DynamicGraph, SnapshotMatchesReference)
{
    MachineFixture f;
    void *v = makeVertexArray(f, 512);
    DynamicGraph g(512, *f.allocator, v, 4);
    Rng rng(17);
    std::set<std::pair<graph::VertexId, graph::VertexId>> truth;
    for (int i = 0; i < 3000; ++i) {
        const auto u = graph::VertexId(rng.below(512));
        const auto w = graph::VertexId(rng.below(512));
        if (u == w)
            continue;
        if (truth.insert({u, w}).second)
            g.addEdge(u, w);
    }
    const graph::Csr snap = g.toCsr();
    EXPECT_EQ(snap.numEdges(), truth.size());
    for (const auto &[u, w] : truth) {
        const auto nbrs = snap.neighbors(u);
        EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), w));
    }
}

TEST(DynamicGraph, ChurnKeepsGraphConsistent)
{
    MachineFixture f;
    void *v = makeVertexArray(f, 256);
    DynamicGraph g(256, *f.allocator, v, 4);
    Rng rng(19);
    std::multiset<std::pair<graph::VertexId, graph::VertexId>> truth;
    for (int i = 0; i < 5000; ++i) {
        const auto u = graph::VertexId(rng.below(256));
        const auto w = graph::VertexId(rng.below(256));
        if (rng.chance(0.6)) {
            g.addEdge(u, w);
            truth.insert({u, w});
        } else {
            const bool had = truth.count({u, w}) > 0;
            EXPECT_EQ(g.removeEdge(u, w), had);
            if (had)
                truth.erase(truth.find({u, w}));
        }
    }
    EXPECT_EQ(g.numEdges(), truth.size());
}

TEST(DynamicGraph, AffinityMaintainedUnderEvolution)
{
    // §8: pointer-based dynamic graphs "naturally benefit from the
    // improved spatial locality... without extra preprocessing."
    auto locality = [](bool use_aff) {
        alloc::AllocatorOptions opts;
        opts.policy = use_aff ? alloc::BankPolicy::hybrid
                              : alloc::BankPolicy::random;
        MachineFixture f(opts);
        void *v = makeVertexArray(f, 4096);
        DynamicGraph g(4096, *f.allocator, v, 4, use_aff);
        Rng rng(23);
        // Community-structured insertions (social graphs cluster):
        // destinations land near the source's id neighbourhood.
        auto community_edge = [&](DynamicGraph &dg) {
            const auto u = graph::VertexId(rng.below(4096));
            const auto w = graph::VertexId(
                (u + rng.below(96)) % 4096);
            if (u != w)
                dg.addEdge(u, w);
        };
        // Evolve: grow, churn, grow again.
        for (int i = 0; i < 20000; ++i)
            community_edge(g);
        for (int i = 0; i < 5000; ++i) {
            const auto u = graph::VertexId(rng.below(4096));
            if (g.head(u))
                g.removeEdge(u, g.head(u)->dst(0));
            community_edge(g);
        }
        return g.averageNodeToDestDistance(*f.machine);
    };
    const double aff = locality(true);
    const double oblivious = locality(false);
    EXPECT_LT(aff, 0.8 * oblivious)
        << "affinity placement survives graph evolution";
}
