#include <gtest/gtest.h>

#include "workloads/affine_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

namespace
{

/** Small-but-nontrivial sizes so every test runs in milliseconds. */
PathfinderParams
smallPathfinder()
{
    PathfinderParams p;
    p.cols = 50'000;
    p.iters = 4;
    return p;
}

HotspotParams
smallHotspot()
{
    // 4 kB rows so the vertical-affinity choice (64 B interleave,
    // +/-row in the same bank) differs from the heap layout.
    HotspotParams p;
    p.rows = 256;
    p.cols = 1024;
    p.iters = 4;
    return p;
}

} // namespace

TEST(VecAdd, ValidInAllModes)
{
    for (ExecMode m :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        VecAddParams p;
        p.n = 100'000;
        p.layout = m == ExecMode::affAlloc ? VecAddLayout::affinity
                                           : VecAddLayout::heapLinear;
        const RunResult r = runVecAdd(RunConfig::forMode(m), p);
        EXPECT_TRUE(r.valid) << execModeName(m);
        EXPECT_GT(r.cycles(), 0u);
    }
}

TEST(VecAdd, AffinityEliminatesDataForwarding)
{
    VecAddParams p;
    p.n = 100'000;
    p.layout = VecAddLayout::affinity;
    const RunResult r =
        runVecAdd(RunConfig::forMode(ExecMode::affAlloc), p);
    // Aligned arrays: essentially no data-class traffic (small
    // residue from slice-boundary effects).
    EXPECT_LT(double(r.stats.hops[int(TrafficClass::data)]),
              0.05 * double(r.hops()) + 500);
}

TEST(VecAdd, AlignedBeatsMisaligned)
{
    VecAddParams aligned;
    aligned.n = 100'000;
    aligned.layout = VecAddLayout::poolDelta;
    aligned.deltaBank = 0;
    VecAddParams offset = aligned;
    offset.deltaBank = 28;
    const auto rc = RunConfig::forMode(ExecMode::nearL3);
    EXPECT_LT(runVecAdd(rc, aligned).cycles(),
              runVecAdd(rc, offset).cycles());
}

TEST(VecAdd, RandomLayoutBetweenBestAndWorst)
{
    const auto rc = RunConfig::forMode(ExecMode::nearL3);
    VecAddParams p;
    p.n = 600'000;
    p.layout = VecAddLayout::poolDelta;
    p.deltaBank = 0;
    const auto best = runVecAdd(rc, p);
    p.deltaBank = 28;
    const auto worst = runVecAdd(rc, p);
    p.layout = VecAddLayout::heapRandom;
    const auto random = runVecAdd(rc, p);
    EXPECT_GT(random.cycles(), best.cycles());
    EXPECT_LT(random.cycles(), worst.cycles());
}

TEST(Pathfinder, ValidInAllModes)
{
    for (ExecMode m :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        const RunResult r =
            runPathfinder(RunConfig::forMode(m), smallPathfinder());
        EXPECT_TRUE(r.valid) << execModeName(m);
    }
}

TEST(Hotspot, ValidInAllModes)
{
    for (ExecMode m :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        const RunResult r =
            runHotspot(RunConfig::forMode(m), smallHotspot());
        EXPECT_TRUE(r.valid) << execModeName(m);
    }
}

TEST(Hotspot, AffinityReducesTraffic)
{
    const auto nl3 = runHotspot(RunConfig::forMode(ExecMode::nearL3),
                                smallHotspot());
    const auto aff = runHotspot(RunConfig::forMode(ExecMode::affAlloc),
                                smallHotspot());
    EXPECT_LT(aff.hops(), nl3.hops());
}

TEST(Srad, ValidInAllModes)
{
    SradParams p;
    p.rows = 128;
    p.cols = 256;
    p.iters = 3;
    for (ExecMode m :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        const RunResult r = runSrad(RunConfig::forMode(m), p);
        EXPECT_TRUE(r.valid) << execModeName(m);
    }
}

TEST(Hotspot3d, ValidInAllModes)
{
    Hotspot3dParams p;
    p.nx = 64;
    p.ny = 64;
    p.nz = 8;
    p.iters = 3;
    for (ExecMode m :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        const RunResult r = runHotspot3d(RunConfig::forMode(m), p);
        EXPECT_TRUE(r.valid) << execModeName(m);
    }
}

TEST(AffineWorkloads, DeterministicCycles)
{
    const auto a = runHotspot(RunConfig::forMode(ExecMode::affAlloc),
                              smallHotspot());
    const auto b = runHotspot(RunConfig::forMode(ExecMode::affAlloc),
                              smallHotspot());
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.hops(), b.hops());
}

TEST(AffineWorkloads, ResultRecordsPopulated)
{
    const auto r = runVecAdd(RunConfig::forMode(ExecMode::affAlloc),
                             VecAddParams{.n = 50'000});
    EXPECT_EQ(r.workload, "vecadd");
    EXPECT_EQ(r.mode, ExecMode::affAlloc);
    EXPECT_GT(r.joules, 0.0);
    EXPECT_GE(r.nocUtilization, 0.0);
    EXPECT_LE(r.nocUtilization, 1.0);
    EXPECT_GT(r.stats.epochs, 0u);
}
