#include <gtest/gtest.h>

#include "mem/page_table.hh"
#include "sim/log.hh"

using namespace affalloc;
using mem::PageTable;

TEST(PageTable, TranslatePreservesOffset)
{
    PageTable pt;
    pt.map(0x100, 0x200);
    EXPECT_EQ(pt.translate(mem::pageBase(0x100) + 123),
              mem::pageBase(0x200) + 123);
}

TEST(PageTable, UnmappedAccessIsFatal)
{
    PageTable pt;
    EXPECT_THROW(pt.translate(0x1234), FatalError);
}

TEST(PageTable, TryTranslateReturnsNullopt)
{
    PageTable pt;
    EXPECT_FALSE(pt.tryTranslate(0x1234).has_value());
    pt.map(0, 7);
    EXPECT_EQ(pt.tryTranslate(42).value(), mem::pageBase(7) + 42);
}

TEST(PageTable, DoubleMapIsFatal)
{
    PageTable pt;
    pt.map(1, 2);
    EXPECT_THROW(pt.map(1, 3), FatalError);
}

TEST(PageTable, UnmapRemovesMapping)
{
    PageTable pt;
    pt.map(1, 2);
    pt.unmap(1);
    EXPECT_FALSE(pt.isMapped(1));
    EXPECT_THROW(pt.unmap(1), FatalError);
}

TEST(PageTable, CacheInvalidatedByRemap)
{
    PageTable pt;
    pt.map(1, 2);
    // Prime the translation cache.
    EXPECT_EQ(pt.translate(mem::pageBase(1)), mem::pageBase(2));
    pt.unmap(1);
    pt.map(1, 9);
    EXPECT_EQ(pt.translate(mem::pageBase(1)), mem::pageBase(9));
}

TEST(PageTable, ManyMappings)
{
    PageTable pt;
    for (Addr v = 0; v < 1000; ++v)
        pt.map(v, 1000 + v);
    EXPECT_EQ(pt.size(), 1000u);
    for (Addr v = 0; v < 1000; ++v)
        EXPECT_EQ(pt.translate(mem::pageBase(v)), mem::pageBase(1000 + v));
}

TEST(AddressHelpers, PoolConstants)
{
    EXPECT_EQ(mem::poolInterleave(0), 64u);
    EXPECT_EQ(mem::poolInterleave(6), 4096u);
    EXPECT_EQ(mem::poolIndexFor(64), 0);
    EXPECT_EQ(mem::poolIndexFor(4096), 6);
    EXPECT_EQ(mem::poolIndexFor(96), -1);
    EXPECT_EQ(mem::poolIndexFor(8192), -1);
}

TEST(AddressHelpers, PageRounding)
{
    EXPECT_EQ(mem::roundUpPage(0), 0u);
    EXPECT_EQ(mem::roundUpPage(1), 4096u);
    EXPECT_EQ(mem::roundUpPage(4096), 4096u);
    EXPECT_EQ(mem::roundUpPage(4097), 8192u);
}
