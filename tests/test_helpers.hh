/**
 * @file
 * Shared fixtures for unit tests: a booted OS + machine + allocator
 * with the paper's default configuration.
 */

#ifndef AFFALLOC_TESTS_TEST_HELPERS_HH
#define AFFALLOC_TESTS_TEST_HELPERS_HH

#include <memory>

#include "alloc/affinity_alloc.hh"
#include "nsc/machine.hh"
#include "nsc/stream_executor.hh"
#include "os/sim_os.hh"
#include "sim/config.hh"

namespace affalloc::test
{

/** A full machine stack wired together for tests. */
struct MachineFixture
{
    sim::MachineConfig cfg;
    std::unique_ptr<os::SimOS> os;
    std::unique_ptr<nsc::Machine> machine;
    std::unique_ptr<alloc::AffinityAllocator> allocator;

    explicit MachineFixture(
        alloc::AllocatorOptions opts = alloc::AllocatorOptions{},
        os::PagePolicy heap_policy = os::PagePolicy::linear)
    {
        os = std::make_unique<os::SimOS>(cfg, heap_policy);
        machine = std::make_unique<nsc::Machine>(cfg, *os);
        allocator =
            std::make_unique<alloc::AffinityAllocator>(*machine, opts);
    }
};

} // namespace affalloc::test

#endif // AFFALLOC_TESTS_TEST_HELPERS_HH
