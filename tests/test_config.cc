#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/log.hh"

using namespace affalloc;
using sim::MachineConfig;

TEST(Config, DefaultsMatchTable2)
{
    MachineConfig cfg;
    EXPECT_EQ(cfg.meshX, 8u);
    EXPECT_EQ(cfg.meshY, 8u);
    EXPECT_EQ(cfg.numBanks(), 64u);
    EXPECT_EQ(cfg.l3BankSizeBytes, 1024u * 1024u);
    EXPECT_EQ(cfg.l3TotalBytes(), 64ull * 1024 * 1024);
    EXPECT_EQ(cfg.l3DefaultInterleave, 1024u);
    EXPECT_EQ(cfg.l1SizeBytes, 32u * 1024u);
    EXPECT_EQ(cfg.l2SizeBytes, 256u * 1024u);
    EXPECT_EQ(cfg.dramChannels, 4u);
    EXPECT_EQ(cfg.iotEntries, 16u);
    EXPECT_EQ(cfg.seL3Streams, 768u);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, DramChannelBandwidth)
{
    MachineConfig cfg;
    // 25.6 GB/s over 4 channels at 2 GHz = 3.2 B/cycle each.
    EXPECT_DOUBLE_EQ(cfg.dramChannelBytesPerCycle(), 3.2);
}

TEST(Config, ValidateRejectsBadLineSize)
{
    MachineConfig cfg;
    cfg.lineSize = 48;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Config, ValidateRejectsZeroMesh)
{
    MachineConfig cfg;
    cfg.meshX = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Config, ValidateRejectsTooManyChannels)
{
    MachineConfig cfg;
    cfg.dramChannels = 100;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Config, ToStringMentionsKeyParameters)
{
    MachineConfig cfg;
    const std::string s = cfg.toString();
    EXPECT_NE(s.find("8x8"), std::string::npos);
    EXPECT_NE(s.find("1MB/bank"), std::string::npos);
    EXPECT_NE(s.find("IOT"), std::string::npos);
}

TEST(Config, TrafficClassNames)
{
    EXPECT_STREQ(trafficClassName(TrafficClass::control), "Control");
    EXPECT_STREQ(trafficClassName(TrafficClass::data), "Data");
    EXPECT_STREQ(trafficClassName(TrafficClass::offload), "Offload");
}

TEST(Config, ExecModeNames)
{
    EXPECT_STREQ(execModeName(ExecMode::inCore), "In-Core");
    EXPECT_STREQ(execModeName(ExecMode::nearL3), "Near-L3");
    EXPECT_STREQ(execModeName(ExecMode::affAlloc), "Aff-Alloc");
}
