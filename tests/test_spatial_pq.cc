#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ds/spatial_pq.hh"

#include "test_helpers.hh"

using namespace affalloc;
using alloc::AffineArray;
using ds::PqEntry;
using ds::SpatialPriorityQueue;
using test::MachineFixture;

namespace
{

void *
makePartitionedArray(test::MachineFixture &f, std::uint64_t n)
{
    AffineArray req;
    req.elem_size = 4;
    req.num_elem = n;
    req.partition = true;
    return f.allocator->mallocAff(req);
}

} // namespace

TEST(SpatialPq, PushPopLocalOrdering)
{
    MachineFixture f;
    const std::uint64_t n = 1 << 14;
    void *v = makePartitionedArray(f, n);
    SpatialPriorityQueue pq(*f.allocator, v, n, 64);
    // All ids in partition 0, scrambled priorities.
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        pq.push(std::uint32_t(i), std::uint32_t(rng.below(1000)));
    PqEntry prev{0, 0};
    PqEntry e;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(pq.popLocal(0, e));
        if (i > 0) {
            EXPECT_GE(e.priority, prev.priority)
                << "local pops are exactly ordered";
        }
        prev = e;
    }
    EXPECT_TRUE(pq.empty());
}

TEST(SpatialPq, RelaxedPopDrainsEverything)
{
    MachineFixture f;
    const std::uint64_t n = 1 << 14;
    void *v = makePartitionedArray(f, n);
    SpatialPriorityQueue pq(*f.allocator, v, n, 64);
    Rng rng(2);
    std::multiset<std::uint32_t> expect;
    for (int i = 0; i < 2000; ++i) {
        const auto id = std::uint32_t(rng.below(n));
        const auto prio = std::uint32_t(rng.below(100000));
        pq.push(id, prio);
        expect.insert(prio);
    }
    std::multiset<std::uint32_t> got;
    PqEntry e;
    Rng pop_rng(3);
    while (pq.popRelaxed(pop_rng, e))
        got.insert(e.priority);
    EXPECT_EQ(got, expect) << "relaxed pops lose nothing";
}

TEST(SpatialPq, RelaxedPopIsApproximatelyOrdered)
{
    MachineFixture f;
    const std::uint64_t n = 1 << 14;
    void *v = makePartitionedArray(f, n);
    SpatialPriorityQueue pq(*f.allocator, v, n, 64);
    Rng rng(5);
    for (int i = 0; i < 5000; ++i)
        pq.push(std::uint32_t(rng.below(n)),
                std::uint32_t(rng.below(1 << 20)));
    // Count inversions in the popped sequence: MultiQueues relaxes
    // order but should remain far from random.
    Rng pop_rng(6);
    PqEntry e;
    std::vector<std::uint32_t> seq;
    while (pq.popRelaxed(pop_rng, e, 4))
        seq.push_back(e.priority);
    std::uint64_t inversions = 0;
    for (std::size_t i = 1; i < seq.size(); ++i)
        inversions += seq[i] < seq[i - 1];
    EXPECT_LT(inversions, seq.size() / 2)
        << "mostly ascending priority order";
}

TEST(SpatialPq, StorageIsBankAligned)
{
    MachineFixture f;
    const std::uint64_t n = 1 << 16;
    void *v = makePartitionedArray(f, n);
    SpatialPriorityQueue pq(*f.allocator, v, n, 64);
    // Partition p's heap storage lives in partition p's bank.
    for (std::uint32_t p = 0; p < 64; p += 7) {
        const std::uint64_t first = std::uint64_t(p) * n / 64;
        EXPECT_EQ(f.machine->bankOfHost(pq.heapStorage(p)),
                  f.allocator->bankOfElement(v, first))
            << "partition " << p;
    }
}

TEST(SpatialPq, PartitionRouting)
{
    MachineFixture f;
    const std::uint64_t n = 6400;
    void *v = makePartitionedArray(f, n);
    SpatialPriorityQueue pq(*f.allocator, v, n, 64);
    pq.push(0, 5);
    pq.push(std::uint32_t(n - 1), 7);
    EXPECT_EQ(pq.heapSize(0), 1u);
    EXPECT_EQ(pq.heapSize(63), 1u);
    EXPECT_EQ(pq.size(), 2u);
}

TEST(SpatialPq, OverflowSpillsSafely)
{
    MachineFixture f;
    const std::uint64_t n = 640;
    void *v = makePartitionedArray(f, n);
    SpatialPriorityQueue pq(*f.allocator, v, n, 64,
                            /*capacity_factor=*/1);
    // Hammer one partition far beyond its capacity.
    for (int i = 0; i < 200; ++i)
        pq.push(0, std::uint32_t(200 - i));
    EXPECT_EQ(pq.size(), 200u);
    PqEntry e;
    Rng rng(9);
    int drained = 0;
    while (pq.popRelaxed(rng, e))
        ++drained;
    EXPECT_EQ(drained, 200);
}
