#include <gtest/gtest.h>

#include "sim/stats.hh"

using namespace affalloc;
using sim::EpochRecord;
using sim::Stats;
using sim::Timeline;

TEST(Stats, DefaultsAreZero)
{
    Stats s;
    EXPECT_EQ(s.totalHops(), 0u);
    EXPECT_EQ(s.totalFlitHops(), 0u);
    EXPECT_DOUBLE_EQ(s.l3MissRate(), 0.0);
}

TEST(Stats, SubtractionGivesDeltas)
{
    Stats a;
    a.l3Accesses = 100;
    a.l3Misses = 30;
    a.cycles = 1000;
    a.hops[0] = 5;
    Stats b;
    b.l3Accesses = 40;
    b.l3Misses = 10;
    b.cycles = 400;
    b.hops[0] = 2;
    const Stats d = a - b;
    EXPECT_EQ(d.l3Accesses, 60u);
    EXPECT_EQ(d.l3Misses, 20u);
    EXPECT_EQ(d.cycles, 600u);
    EXPECT_EQ(d.hops[0], 3u);
}

TEST(Stats, AccumulateAddsEverything)
{
    Stats a, b;
    a.dramBytes = 10;
    b.dramBytes = 32;
    a.flitHops[1] = 7;
    b.flitHops[1] = 3;
    a += b;
    EXPECT_EQ(a.dramBytes, 42u);
    EXPECT_EQ(a.flitHops[1], 10u);
}

TEST(Stats, MissRate)
{
    Stats s;
    s.l3Accesses = 200;
    s.l3Misses = 50;
    EXPECT_DOUBLE_EQ(s.l3MissRate(), 0.25);
}

TEST(Stats, ToStringContainsCounters)
{
    Stats s;
    s.cycles = 12345;
    EXPECT_NE(s.toString().find("12345"), std::string::npos);
}

TEST(Timeline, BandsOfUniformDistribution)
{
    EpochRecord rec;
    rec.atomicStreamsPerBank.assign(64, 4);
    const auto b = Timeline::bands(rec);
    EXPECT_DOUBLE_EQ(b[0], 4.0);
    EXPECT_DOUBLE_EQ(b[2], 4.0);
    EXPECT_DOUBLE_EQ(b[4], 4.0);
}

TEST(Timeline, BandsOfSkewedDistribution)
{
    EpochRecord rec;
    rec.atomicStreamsPerBank.assign(64, 0);
    rec.atomicStreamsPerBank[0] = 64;
    const auto b = Timeline::bands(rec);
    EXPECT_DOUBLE_EQ(b[0], 0.0);  // min
    EXPECT_DOUBLE_EQ(b[2], 1.0);  // mean
    EXPECT_DOUBLE_EQ(b[4], 64.0); // max
}

TEST(Timeline, RecordsInOrder)
{
    Timeline t;
    EXPECT_TRUE(t.empty());
    t.record(EpochRecord{100, {}, "a"});
    t.record(EpochRecord{200, {}, "b"});
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t.at(0).endCycle, 100u);
    EXPECT_EQ(t.at(1).phase, "b");
    t.clear();
    EXPECT_TRUE(t.empty());
}

TEST(Geomean, MatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(sim::geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(sim::geomean({1.0, 2.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(sim::geomean({}), 0.0);
}
