/**
 * @file
 * SimCheck self-tests: deliberately corrupt simulator state (clobber a
 * free-list slot through a stale pointer, drop a flit in transit,
 * plant a stale IOT entry) and assert the corresponding audit catches
 * it; trip the livelock watchdog; and pin down the determinism-digest
 * contract (order-insensitive, value-sensitive, run-to-run stable).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sim/simcheck.hh"
#include "sim/stats.hh"
#include "workloads/affine_workloads.hh"

#include "test_helpers.hh"

using namespace affalloc;
using namespace affalloc::workloads;

namespace
{

sim::MachineConfig
auditedConfig()
{
    sim::MachineConfig cfg;
    cfg.simcheck.audit = true;
    cfg.simcheck.auditPeriodEpochs = 1;
    return cfg;
}

/** Machine stack with auditing (and allocator canaries) enabled. */
struct AuditedFixture
{
    sim::MachineConfig cfg = auditedConfig();
    os::SimOS os{cfg};
    nsc::Machine machine{cfg, os};
    alloc::AffinityAllocator allocator{machine, {}};
};

/** Expect machine.audit() to throw and return the first violation. */
simcheck::Violation
expectAuditFailure(nsc::Machine &machine)
{
    try {
        machine.audit();
    } catch (const simcheck::AuditError &e) {
        EXPECT_FALSE(e.report().empty());
        return e.report().empty() ? simcheck::Violation{}
                                  : e.report().front();
    }
    ADD_FAILURE() << "corruption was not detected by any audit";
    return {};
}

} // namespace

// ----------------------------------------------------- auditor basics

TEST(SimCheckAuditor, CollectsViolationsAcrossChecks)
{
    simcheck::Auditor auditor;
    const int ok = auditor.registerCheck(
        "a", "fine", [](simcheck::CheckContext &) {});
    auditor.registerCheck("b", "broken",
                          [](simcheck::CheckContext &ctx) {
                              ctx.failf("value %d out of range", 7);
                          });
    EXPECT_EQ(auditor.numChecks(), 2u);

    const auto violations = auditor.collect();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].component, "b");
    EXPECT_EQ(violations[0].check, "broken");
    EXPECT_EQ(violations[0].message, "value 7 out of range");
    EXPECT_THROW(auditor.runAll(), simcheck::AuditError);

    auditor.unregisterCheck(ok);
    EXPECT_EQ(auditor.numChecks(), 1u);
}

TEST(SimCheckAuditor, EpochHookHonoursEnableAndPeriod)
{
    simcheck::Auditor auditor;
    int fires = 0;
    auditor.registerCheck("a", "count",
                          [&](simcheck::CheckContext &) { ++fires; });

    // Disabled: the epoch hook never runs checks.
    auditor.onEpochEnd(1);
    EXPECT_EQ(fires, 0);

    auditor.setEnabled(true);
    auditor.setPeriodEpochs(4);
    for (std::uint64_t e = 1; e <= 8; ++e)
        auditor.onEpochEnd(e);
    EXPECT_EQ(fires, simcheck::compiledIn ? 2 : 0);
}

// ------------------------------------------------ corruption injection

TEST(SimCheckCorruption, ClobberedFreeSlotCanaryDetected)
{
    AuditedFixture f;
    alloc::AffineArray anchor_req;
    anchor_req.elem_size = 64;
    anchor_req.num_elem = 1024;
    anchor_req.partition = true;
    char *anchor =
        static_cast<char *>(f.allocator.mallocAff(anchor_req));
    ASSERT_NE(anchor, nullptr);

    const void *aff = anchor;
    void *slot = f.allocator.mallocAff(std::size_t(64), 1, &aff);
    ASSERT_NE(slot, nullptr);
    f.allocator.freeAff(slot);
    EXPECT_NO_THROW(f.machine.audit());

    // Use-after-free: write through the stale pointer, clobbering the
    // canary the allocator stamped into the freed slot.
    std::memset(slot, 0xab, 8);

    const simcheck::Violation v = expectAuditFailure(f.machine);
    EXPECT_EQ(v.component, "alloc");
    EXPECT_EQ(v.check, "freelist-integrity");
    EXPECT_NE(v.message.find("canary"), std::string::npos) << v.message;
}

TEST(SimCheckCorruption, DroppedFlitDetected)
{
    AuditedFixture f;
    void *p = f.allocator.allocPlain(4096);
    const Addr sim = f.machine.addressSpace().simAddrOf(p);

    f.machine.beginEpoch();
    // Cold accesses generate real NoC traffic (core <-> L3 <-> DRAM).
    for (Addr off = 0; off < 4096; off += 64)
        f.machine.coreAccess(0, sim + off, 64, AccessType::read);
    EXPECT_NO_THROW(f.machine.audit());

    // Lose three flits in transit on link 0.
    f.machine.network().corruptLinkFlitsForTest(0, -3);

    const simcheck::Violation v = expectAuditFailure(f.machine);
    EXPECT_EQ(v.component, "noc");
    EXPECT_EQ(v.check, "flit-conservation");
    f.machine.abortEpoch();
}

TEST(SimCheckCorruption, StaleIotEntryDetected)
{
    AuditedFixture f;
    alloc::AffineArray req;
    req.elem_size = 64;
    req.num_elem = 4096;
    req.partition = true;
    ASSERT_NE(f.allocator.mallocAff(req), nullptr);
    EXPECT_NO_THROW(f.machine.audit());

    // Plant a stale interleaving in the entry covering the touched
    // pool: the hardware table and the OS's placement now disagree.
    mem::InterleaveOverrideTable &iot = f.os.iotForTest();
    ASSERT_GT(iot.size(), 0u);
    iot.entryForTest(0).intrlv *= 2;

    const simcheck::Violation v = expectAuditFailure(f.machine);
    EXPECT_EQ(v.component, "mem");
    EXPECT_EQ(v.check, "mapping-consistency");
}

TEST(SimCheckCorruption, DoubleFreeDetected)
{
    AuditedFixture f;
    alloc::AffineArray anchor_req;
    anchor_req.elem_size = 64;
    anchor_req.num_elem = 256;
    anchor_req.partition = true;
    char *anchor =
        static_cast<char *>(f.allocator.mallocAff(anchor_req));
    const void *aff = anchor;
    void *slot = f.allocator.mallocAff(std::size_t(64), 1, &aff);
    f.allocator.freeAff(slot);
    EXPECT_THROW(f.allocator.freeAff(slot), FatalError);
}

TEST(SimCheckCorruption, ForeignPointerFreeDetected)
{
    AuditedFixture f;
    int local = 0;
    EXPECT_THROW(f.allocator.freeAff(&local), FatalError);
}

// -------------------------------------------------- livelock watchdog

TEST(SimCheckWatchdog, TripsAfterConfiguredStallStreak)
{
    sim::MachineConfig cfg;
    cfg.simcheck.watchdogStallEpochs = 3;
    os::SimOS sim_os(cfg);
    nsc::Machine machine(cfg, sim_os);

    // Two empty epochs: stalled but under the limit.
    for (int i = 0; i < 2; ++i) {
        machine.beginEpoch();
        EXPECT_NO_THROW(machine.endEpoch());
    }
    machine.beginEpoch();
    EXPECT_THROW(machine.endEpoch(), simcheck::LivelockError);
}

TEST(SimCheckWatchdog, ProgressResetsTheStreak)
{
    sim::MachineConfig cfg;
    cfg.simcheck.watchdogStallEpochs = 3;
    os::SimOS sim_os(cfg);
    nsc::Machine machine(cfg, sim_os);
    alloc::AffinityAllocator allocator(machine, {});
    void *p = allocator.allocPlain(4096);
    const Addr sim = machine.addressSpace().simAddrOf(p);

    for (int round = 0; round < 4; ++round) {
        // Two stalled epochs ...
        for (int i = 0; i < 2; ++i) {
            machine.beginEpoch();
            machine.endEpoch();
        }
        // ... then one with real work resets the streak.
        machine.beginEpoch();
        machine.coreAccess(0, sim + Addr(round) * 64, 64,
                           AccessType::read);
        EXPECT_NO_THROW(machine.endEpoch());
    }
}

TEST(SimCheckWatchdog, DisabledByDefaultThreshold)
{
    sim::MachineConfig cfg;
    cfg.simcheck.watchdogStallEpochs = 0; // explicit off
    os::SimOS sim_os(cfg);
    nsc::Machine machine(cfg, sim_os);
    for (int i = 0; i < 64; ++i) {
        machine.beginEpoch();
        EXPECT_NO_THROW(machine.endEpoch());
    }
}

// ------------------------------------------------ determinism digests

TEST(SimCheckDigest, OrderInsensitiveAndValueSensitive)
{
    simcheck::Digest a;
    a.fold("cycles", 123);
    a.fold("hops", 456);
    simcheck::Digest b;
    b.fold("hops", 456);
    b.fold("cycles", 123);
    EXPECT_EQ(a.value(), b.value());

    simcheck::Digest c;
    c.fold("cycles", 456);
    c.fold("hops", 123);
    EXPECT_NE(a.value(), c.value());

    simcheck::Digest d;
    d.fold("cycles", 123);
    EXPECT_NE(a.value(), d.value());
}

TEST(SimCheckDigest, RunDigestIsDeterministicAcrossRuns)
{
    auto run = [](ExecMode mode) {
        RunConfig rc = RunConfig::forMode(mode);
        rc.machine.simcheck.audit = true;
        rc.machine.simcheck.auditPeriodEpochs = 4;
        VecAddParams p;
        p.n = 1 << 14;
        p.layout = mode == ExecMode::affAlloc ? VecAddLayout::affinity
                                              : VecAddLayout::heapLinear;
        return runVecAdd(rc, p);
    };
    const RunResult a = run(ExecMode::affAlloc);
    const RunResult b = run(ExecMode::affAlloc);
    EXPECT_TRUE(a.valid);
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_NE(a.placementDigest, 0u);
    EXPECT_EQ(a.placementDigest, b.placementDigest);

    // A different configuration must not collide.
    const RunResult c = run(ExecMode::inCore);
    EXPECT_NE(a.digest(), c.digest());
}

TEST(SimCheckDigest, StatsDigestTracksTheCounterRegistry)
{
    ASSERT_FALSE(sim::statsCounters().empty());
    // The registry must be duplicate-free (it already validated itself
    // once at load; re-validating here exercises the public path).
    EXPECT_NO_THROW(sim::validateCounterNames(sim::statsCounters()));

    sim::Stats zero{};
    for (const sim::CounterRef &c : sim::statsCounters())
        EXPECT_EQ(c.get(zero), 0u) << c.name;

    sim::Stats s{};
    s.cycles = 1;
    EXPECT_NE(simcheck::digestOfStats(s), simcheck::digestOfStats(zero));
    s.cycles = 0;
    s.epochs = 1;
    EXPECT_NE(simcheck::digestOfStats(s), simcheck::digestOfStats(zero));
}

TEST(SimCheckDigest, DigestStringIsCanonical)
{
    EXPECT_EQ(simcheck::digestToString(0), "0x0000000000000000");
    EXPECT_EQ(simcheck::digestToString(0xdeadbeefull),
              "0x00000000deadbeef");
}

// ------------------------------------------------------ stats hygiene

TEST(SimCheckStats, DuplicateCounterRegistrationFailsFast)
{
    const std::vector<sim::CounterRef> dup = {
        {"cycles", +[](const sim::Stats &s) { return s.cycles; }},
        {"cycles", +[](const sim::Stats &s) { return s.cycles; }},
    };
    EXPECT_THROW(sim::validateCounterNames(dup), FatalError);

    const std::vector<sim::CounterRef> ok = {
        {"cycles", +[](const sim::Stats &s) { return s.cycles; }},
        {"epochs", +[](const sim::Stats &s) { return s.epochs; }},
    };
    EXPECT_NO_THROW(sim::validateCounterNames(ok));
}

// ---------------------------------------------------- healthy baseline

TEST(SimCheck, HealthyRunPassesEveryAudit)
{
    RunConfig rc = RunConfig::forMode(ExecMode::affAlloc);
    rc.machine.simcheck.audit = true;
    rc.machine.simcheck.auditPeriodEpochs = 1;
    VecAddParams p;
    p.n = 1 << 15;
    p.layout = VecAddLayout::affinity;
    const RunResult r = runVecAdd(rc, p); // throws on any violation
    EXPECT_TRUE(r.valid);
}
