#include <gtest/gtest.h>

#include "graph/generators.hh"
#include "workloads/graph_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

namespace
{

const graph::Csr &
testGraph()
{
    static const graph::Csr g = [] {
        graph::KroneckerParams p;
        p.scale = 11;
        p.edgeFactor = 8;
        return graph::kronecker(p);
    }();
    return g;
}

GraphParams
params()
{
    GraphParams p;
    p.graph = &testGraph();
    p.iters = 3;
    return p;
}

} // namespace

TEST(PageRankPush, ValidInAllModes)
{
    for (ExecMode m :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        const RunResult r =
            runPageRankPush(RunConfig::forMode(m), params());
        EXPECT_TRUE(r.valid) << execModeName(m);
        EXPECT_GT(r.stats.atomicOps, 0u) << execModeName(m);
    }
}

TEST(PageRankPull, ValidInAllModes)
{
    for (ExecMode m :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        const RunResult r =
            runPageRankPull(RunConfig::forMode(m), params());
        EXPECT_TRUE(r.valid) << execModeName(m);
        // Pull gathers with plain reads, not atomics.
        EXPECT_EQ(r.stats.atomicOps, 0u) << execModeName(m);
    }
}

TEST(PageRank, AffinityCutsTraffic)
{
    const auto nl3 =
        runPageRankPush(RunConfig::forMode(ExecMode::nearL3), params());
    const auto aff = runPageRankPush(
        RunConfig::forMode(ExecMode::affAlloc), params());
    EXPECT_LT(double(aff.hops()), 0.7 * double(nl3.hops()))
        << "linked CSR + partitioned properties must cut indirect "
           "traffic";
}

TEST(Bfs, AllStrategiesProduceCorrectDepths)
{
    for (BfsStrategy s :
         {BfsStrategy::pushOnly, BfsStrategy::pullOnly,
          BfsStrategy::gapSwitch, BfsStrategy::affSwitch}) {
        for (ExecMode m : {ExecMode::nearL3, ExecMode::affAlloc}) {
            const BfsResult r = runBfs(RunConfig::forMode(m), params(), s);
            EXPECT_TRUE(r.run.valid)
                << execModeName(m) << " strategy " << int(s);
        }
    }
}

TEST(Bfs, IterSamplesAreConsistent)
{
    const BfsResult r = runBfs(RunConfig::forMode(ExecMode::nearL3),
                               params(), BfsStrategy::pushOnly);
    ASSERT_FALSE(r.iters.empty());
    std::uint64_t prev_visited = 0;
    Cycles prev_cycle = 0;
    for (const auto &it : r.iters) {
        EXPECT_GE(it.visited, prev_visited) << "visited is cumulative";
        EXPECT_GE(it.visited, it.active);
        EXPECT_GT(it.endCycle, prev_cycle);
        EXPECT_TRUE(it.push);
        prev_visited = it.visited;
        prev_cycle = it.endCycle;
    }
    EXPECT_LE(r.iters.back().visited, testGraph().numVertices);
    EXPECT_EQ(r.iters.back().active, 0u) << "last iteration drains";
}

TEST(Bfs, SwitchStrategiesChangeDirection)
{
    const BfsResult gap = runBfs(RunConfig::forMode(ExecMode::nearL3),
                                 params(), BfsStrategy::gapSwitch);
    bool saw_pull = false;
    bool saw_push = false;
    for (const auto &it : gap.iters) {
        saw_pull |= !it.push;
        saw_push |= it.push;
    }
    EXPECT_TRUE(saw_push);
    EXPECT_TRUE(saw_pull) << "GAP heuristic should pull in the middle";
}

TEST(Bfs, SpatialQueueLocalizesPushTraffic)
{
    // The global queue's tail is a single hot line; the spatially
    // distributed queue pushes locally. Compare push-phase traffic.
    const auto nl3 = runBfs(RunConfig::forMode(ExecMode::nearL3),
                            params(), BfsStrategy::pushOnly);
    const auto aff = runBfs(RunConfig::forMode(ExecMode::affAlloc),
                            params(), BfsStrategy::pushOnly);
    EXPECT_LT(aff.run.hops(), nl3.run.hops());
}

TEST(Sssp, ValidInAllModes)
{
    for (ExecMode m :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        const RunResult r = runSssp(RunConfig::forMode(m), params());
        EXPECT_TRUE(r.valid) << execModeName(m);
    }
}

TEST(SsspPq, ValidInAllModesAndCutsRelaxations)
{
    for (ExecMode m :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        const RunResult r = runSsspPq(RunConfig::forMode(m), params());
        EXPECT_TRUE(r.valid) << execModeName(m);
    }
    // Priority ordering performs far fewer relaxations than the
    // FIFO-round Bellman-Ford variant.
    const auto fifo =
        runSssp(RunConfig::forMode(ExecMode::affAlloc), params());
    const auto pq =
        runSsspPq(RunConfig::forMode(ExecMode::affAlloc), params());
    EXPECT_LT(pq.stats.atomicOps, fifo.stats.atomicOps);
}

TEST(Sssp, AffinityWins)
{
    const auto nl3 =
        runSssp(RunConfig::forMode(ExecMode::nearL3), params());
    const auto aff =
        runSssp(RunConfig::forMode(ExecMode::affAlloc), params());
    EXPECT_LT(aff.cycles(), nl3.cycles());
    EXPECT_LT(aff.hops(), nl3.hops());
}

TEST(ChunkRemap, ValidAndFinerChunksCutTraffic)
{
    GraphParams p = params();
    p.layout = EdgeLayout::chunkRemap;
    const auto rc = RunConfig::forMode(ExecMode::nearL3);

    p.chunkBytes = 4096;
    const auto coarse = runPageRankPush(rc, p);
    EXPECT_TRUE(coarse.valid);
    p.chunkBytes = 64;
    const auto fine = runPageRankPush(rc, p);
    EXPECT_TRUE(fine.valid);
    EXPECT_LT(fine.hops(), coarse.hops());
}

TEST(IdealIndirect, RemovesIndirectTraffic)
{
    GraphParams p = params();
    const auto rc = RunConfig::forMode(ExecMode::nearL3);
    const auto base = runPageRankPush(rc, p);
    p.idealIndirect = true;
    const auto ideal = runPageRankPush(rc, p);
    EXPECT_TRUE(ideal.valid);
    EXPECT_LT(double(ideal.hops()), 0.7 * double(base.hops()));
    EXPECT_LE(ideal.cycles(), base.cycles());
}

TEST(LinkedLayoutInBaselineMode, Works)
{
    // The linked CSR can be forced under Near-L3 too (ablation).
    GraphParams p = params();
    p.layout = EdgeLayout::linked;
    const auto r =
        runPageRankPush(RunConfig::forMode(ExecMode::nearL3), p);
    EXPECT_TRUE(r.valid);
}

TEST(GraphWorkloads, Deterministic)
{
    const auto a =
        runSssp(RunConfig::forMode(ExecMode::affAlloc), params());
    const auto b =
        runSssp(RunConfig::forMode(ExecMode::affAlloc), params());
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.hops(), b.hops());
}

TEST(GraphWorkloads, TimelineRecordsPhases)
{
    const auto r = runPageRankPush(
        RunConfig::forMode(ExecMode::affAlloc), params());
    bool saw_scatter = false;
    for (const auto &rec : r.timeline.records())
        saw_scatter |= rec.phase == "scatter";
    EXPECT_TRUE(saw_scatter);
}
