#include <gtest/gtest.h>

#include "sim/log.hh"

#include "test_helpers.hh"

using namespace affalloc;
using nsc::AffineRef;
using nsc::MigratingStream;
using nsc::StreamExecutor;
using test::MachineFixture;

namespace
{

/** Allocate three aligned arrays for a vecadd-shaped kernel. */
struct VecAddSetup
{
    void *a;
    void *b;
    void *c;
    std::uint64_t n = 1 << 15;

    explicit VecAddSetup(MachineFixture &f, BankId delta = 0)
    {
        a = f.allocator->allocInterleaved(n * 4, 64, 0);
        b = f.allocator->allocInterleaved(n * 4, 64, 0);
        c = f.allocator->allocInterleaved(n * 4, 64, delta);
        for (void *p : {a, b, c}) {
            const auto *info = f.allocator->arrayInfo(p);
            f.machine->preloadL3Range(info->simBase, info->bytes);
        }
    }
};

AffineRef
refOf(MachineFixture &f, void *p, std::int64_t offset = 0)
{
    return AffineRef{f.allocator->arrayInfo(p)->simBase, 4, offset};
}

} // namespace

TEST(StreamExecutor, AlignedNscKernelHasNoDataForwarding)
{
    MachineFixture f;
    VecAddSetup v(f);
    StreamExecutor exec(*f.machine, ExecMode::nearL3);
    exec.affineKernel({refOf(f, v.a), refOf(f, v.b)}, {refOf(f, v.c)},
                      v.n, 1.0);
    const auto &s = f.machine->stats();
    EXPECT_EQ(s.hops[int(TrafficClass::data)], 0u)
        << "perfectly aligned arrays forward zero data";
    EXPECT_GT(s.seOps, 0u);
    EXPECT_EQ(s.coreOps, 0u);
    EXPECT_GT(s.cycles, 0u);
}

TEST(StreamExecutor, MisalignedNscKernelForwardsOperands)
{
    MachineFixture f;
    VecAddSetup v(f, /*delta=*/8);
    StreamExecutor exec(*f.machine, ExecMode::nearL3);
    exec.affineKernel({refOf(f, v.a), refOf(f, v.b)}, {refOf(f, v.c)},
                      v.n, 1.0);
    const auto &s = f.machine->stats();
    EXPECT_GT(s.hops[int(TrafficClass::data)], 0u);
}

TEST(StreamExecutor, BiggerOffsetCostsMoreTraffic)
{
    // On the row-major 8x8 mesh a bank offset of +8 is one row (1
    // hop) while +28 is 3 rows plus 4 columns (~7 hops on average).
    std::uint64_t hops[2];
    int i = 0;
    for (BankId delta : {8u, 28u}) {
        MachineFixture f;
        VecAddSetup v(f, delta);
        StreamExecutor exec(*f.machine, ExecMode::nearL3);
        exec.affineKernel({refOf(f, v.a), refOf(f, v.b)},
                          {refOf(f, v.c)}, v.n, 1.0);
        hops[i++] = f.machine->stats().hops[int(TrafficClass::data)];
    }
    EXPECT_LT(hops[0], hops[1]);
}

TEST(StreamExecutor, InCoreModeUsesCores)
{
    MachineFixture f;
    VecAddSetup v(f);
    StreamExecutor exec(*f.machine, ExecMode::inCore);
    exec.affineKernel({refOf(f, v.a), refOf(f, v.b)}, {refOf(f, v.c)},
                      v.n, 1.0);
    const auto &s = f.machine->stats();
    EXPECT_GT(s.coreOps, 0u);
    EXPECT_EQ(s.seOps, 0u);
    EXPECT_GT(s.l1Accesses, 0u);
    EXPECT_EQ(s.streamMigrations, 0u);
}

TEST(StreamExecutor, NscBeatsInCoreOnAlignedVecAdd)
{
    Cycles cycles[2];
    int i = 0;
    for (ExecMode mode : {ExecMode::inCore, ExecMode::nearL3}) {
        MachineFixture f;
        VecAddSetup v(f);
        StreamExecutor exec(*f.machine, mode);
        exec.affineKernel({refOf(f, v.a), refOf(f, v.b)},
                          {refOf(f, v.c)}, v.n, 1.0);
        cycles[i++] = f.machine->stats().cycles;
    }
    EXPECT_GT(cycles[0], cycles[1])
        << "offloaded aligned vecadd must beat in-core";
}

TEST(StreamExecutor, StencilOffsetsSkipOutOfRange)
{
    MachineFixture f;
    VecAddSetup v(f);
    StreamExecutor exec(*f.machine, ExecMode::nearL3);
    // i-1 / i+1 accesses clamp at the borders without crashing.
    exec.affineKernel({refOf(f, v.a, -1), refOf(f, v.a, +1)},
                      {refOf(f, v.c)}, v.n, 2.0);
    EXPECT_GT(f.machine->stats().l3Accesses, 0u);
}

TEST(StreamExecutor, StreamStepMigratesAcrossBanks)
{
    MachineFixture f;
    void *arr = f.allocator->allocInterleaved(64 * 64, 64, 0);
    const Addr sim = f.allocator->arrayInfo(arr)->simBase;
    f.machine->preloadL3Range(sim, 64 * 64);
    StreamExecutor exec(*f.machine, ExecMode::nearL3);
    f.machine->beginEpoch();
    MigratingStream st(0);
    exec.configure(st, sim);
    EXPECT_EQ(st.currentBank(), 0u);
    exec.streamStep(st, sim, 8, AccessType::read);
    EXPECT_EQ(f.machine->stats().streamMigrations, 0u);
    exec.streamStep(st, sim + 64, 8, AccessType::read); // next bank
    EXPECT_EQ(st.currentBank(), 1u);
    EXPECT_EQ(f.machine->stats().streamMigrations, 1u);
    EXPECT_GT(st.chainLatency(), 0.0);
}

TEST(StreamExecutor, StreamBufferDedupsSameLine)
{
    MachineFixture f;
    void *arr = f.allocator->allocInterleaved(4096, 64, 0);
    const Addr sim = f.allocator->arrayInfo(arr)->simBase;
    f.machine->preloadL3Range(sim, 4096);
    StreamExecutor exec(*f.machine, ExecMode::nearL3);
    f.machine->beginEpoch();
    MigratingStream st(0);
    exec.configure(st, sim);
    exec.streamStep(st, sim, 8, AccessType::read);
    const auto before = f.machine->stats().l3Accesses;
    exec.streamStep(st, sim + 8, 8, AccessType::read); // same line
    EXPECT_EQ(f.machine->stats().l3Accesses, before);
}

TEST(StreamExecutor, IndirectFromStreamCountsControlTraffic)
{
    MachineFixture f;
    void *arr = f.allocator->allocInterleaved(64 * 64, 64, 0);
    const Addr sim = f.allocator->arrayInfo(arr)->simBase;
    f.machine->preloadL3Range(sim, 64 * 64);
    StreamExecutor exec(*f.machine, ExecMode::nearL3);
    f.machine->beginEpoch();
    MigratingStream st(0);
    exec.configure(st, sim);
    const auto snap = f.machine->stats();
    exec.indirect(st, sim + 10 * 64, 4, AccessType::atomic);
    const auto d = f.machine->stats() - snap;
    EXPECT_EQ(d.atomicOps, 1u);
    const std::uint64_t dist = f.machine->hopsBetween(0, 10);
    EXPECT_EQ(d.hops[int(TrafficClass::control)], 2 * dist)
        << "request + response to bank 10's tile";
}

TEST(StreamExecutor, InCoreStreamStepUsesCaches)
{
    MachineFixture f;
    void *arr = f.allocator->allocPlain(4096);
    const Addr sim = f.machine->addressSpace().simAddrOf(arr);
    StreamExecutor exec(*f.machine, ExecMode::inCore);
    f.machine->beginEpoch();
    MigratingStream st(3);
    exec.configure(st, sim);
    exec.streamStep(st, sim, 8, AccessType::read);
    EXPECT_EQ(f.machine->stats().l1Accesses, 1u);
    EXPECT_EQ(f.machine->stats().streamConfigs, 0u);
}

TEST(StreamExecutor, ChainLatencyAccumulatesAndResets)
{
    MachineFixture f;
    void *arr = f.allocator->allocInterleaved(64 * 64, 64, 0);
    const Addr sim = f.allocator->arrayInfo(arr)->simBase;
    f.machine->preloadL3Range(sim, 64 * 64);
    StreamExecutor exec(*f.machine, ExecMode::nearL3);
    f.machine->beginEpoch();
    MigratingStream st(0);
    exec.configure(st, sim);
    for (int i = 0; i < 8; ++i)
        exec.streamStep(st, sim + i * 64, 8, AccessType::read);
    const double chain = st.chainLatency();
    EXPECT_GT(chain, 0.0);
    st.resetChain();
    EXPECT_DOUBLE_EQ(st.chainLatency(), 0.0);
}
