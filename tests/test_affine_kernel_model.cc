/**
 * @file
 * Focused tests of the affine-kernel execution model's subtleties:
 * same-array stream coalescing, stencil halo traffic, and epoch
 * accounting, across bank numberings.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

using namespace affalloc;
using nsc::AffineRef;
using nsc::StreamExecutor;
using test::MachineFixture;

namespace
{

struct Grid
{
    void *a;
    void *out;
    std::uint64_t n = 1 << 14;
    Addr simA;
    Addr simOut;

    explicit Grid(MachineFixture &f)
    {
        a = f.allocator->allocInterleaved(n * 4, 64, 0);
        out = f.allocator->allocInterleaved(n * 4, 64, 0);
        simA = f.allocator->arrayInfo(a)->simBase;
        simOut = f.allocator->arrayInfo(out)->simBase;
        f.machine->preloadL3Range(simA, n * 4);
        f.machine->preloadL3Range(simOut, n * 4);
    }
};

} // namespace

TEST(AffineKernelModel, UnitOffsetStreamsCoalesce)
{
    // A[i-1], A[i], A[i+1] must be served by one fetched stream, not
    // three: the L3 access count matches a single-load kernel's.
    MachineFixture f;
    Grid g(f);
    StreamExecutor exec(*f.machine, ExecMode::nearL3);
    exec.affineKernel({AffineRef{g.simA, 4, 0}},
                      {AffineRef{g.simOut, 4, 0}}, g.n, 1.0);
    const auto single = f.machine->stats().l3Accesses;

    MachineFixture f2;
    Grid g2(f2);
    StreamExecutor exec2(*f2.machine, ExecMode::nearL3);
    exec2.affineKernel({AffineRef{g2.simA, 4, -1}, AffineRef{g2.simA, 4, 0},
                        AffineRef{g2.simA, 4, +1}},
                       {AffineRef{g2.simOut, 4, 0}}, g2.n, 1.0);
    const auto halo = f2.machine->stats().l3Accesses;
    // Near-equal up to per-slice boundary lines (64 slices x the
    // halo's extra first/last lines).
    EXPECT_LT(double(halo), 1.15 * double(single));
}

TEST(AffineKernelModel, DistantOffsetsStaySeparateStreams)
{
    // A[i] and A[i+4096] are different rows: the +row stream fetches
    // its own lines (roughly doubling the load accesses).
    MachineFixture f;
    Grid g(f);
    StreamExecutor exec(*f.machine, ExecMode::nearL3);
    exec.affineKernel({AffineRef{g.simA, 4, 0}},
                      {AffineRef{g.simOut, 4, 0}}, g.n, 1.0);
    const auto single = f.machine->stats().l3Accesses;

    MachineFixture f2;
    Grid g2(f2);
    StreamExecutor exec2(*f2.machine, ExecMode::nearL3);
    exec2.affineKernel({AffineRef{g2.simA, 4, 0},
                        AffineRef{g2.simA, 4, 4096}},
                       {AffineRef{g2.simOut, 4, 0}}, g2.n, 1.0);
    const auto rows = f2.machine->stats().l3Accesses;
    // single = 1024 load lines + 1024 store lines; the +row stream
    // adds its own (clamped) ~768 lines.
    EXPECT_GT(double(rows), 1.3 * double(single));
}

TEST(AffineKernelModel, EpochCountMatchesChunking)
{
    MachineFixture f;
    Grid g(f);
    StreamExecutor exec(*f.machine, ExecMode::nearL3);
    exec.affineKernel({AffineRef{g.simA, 4, 0}},
                      {AffineRef{g.simOut, 4, 0}}, g.n, 1.0);
    // n = 16k elements over 64 slices = 256/slice; one epoch.
    EXPECT_EQ(f.machine->stats().epochs, 1u);
}

TEST(AffineKernelModel, AlignedKernelInvariantUnderNumbering)
{
    // Perfectly aligned layouts forward nothing regardless of how
    // banks are numbered onto tiles.
    for (sim::BankNumbering n :
         {sim::BankNumbering::rowMajor, sim::BankNumbering::snake,
          sim::BankNumbering::block2}) {
        alloc::AllocatorOptions opts;
        MachineFixture f(opts);
        // Rebuild the machine with the numbering.
        sim::MachineConfig cfg;
        cfg.bankNumbering = n;
        os::SimOS os2(cfg);
        nsc::Machine m2(cfg, os2);
        alloc::AffinityAllocator alloc2(m2);
        void *a = alloc2.allocInterleaved(1 << 16, 64, 0);
        void *b = alloc2.allocInterleaved(1 << 16, 64, 0);
        const Addr sa = m2.addressSpace().simAddrOf(a);
        const Addr sb = m2.addressSpace().simAddrOf(b);
        m2.preloadL3Range(sa, 1 << 16);
        m2.preloadL3Range(sb, 1 << 16);
        StreamExecutor exec(m2, ExecMode::nearL3);
        exec.affineKernel({AffineRef{sa, 4, 0}}, {AffineRef{sb, 4, 0}},
                          (1 << 16) / 4, 1.0);
        EXPECT_EQ(m2.stats().hops[int(TrafficClass::data)], 0u)
            << sim::bankNumberingName(n);
    }
}

TEST(AffineKernelModel, EmptyKernelIsNoOp)
{
    MachineFixture f;
    Grid g(f);
    StreamExecutor exec(*f.machine, ExecMode::nearL3);
    exec.affineKernel({AffineRef{g.simA, 4, 0}},
                      {AffineRef{g.simOut, 4, 0}}, 0, 1.0);
    EXPECT_EQ(f.machine->stats().cycles, 0u);
    EXPECT_EQ(f.machine->stats().epochs, 0u);
}
