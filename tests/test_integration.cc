/**
 * @file
 * Cross-module integration tests: whole-stack invariants that hold
 * after running complete workloads (IOT budget, stats conservation,
 * layering guarantees).
 */

#include <gtest/gtest.h>

#include "ds/pointer_structs.hh"
#include "graph/generators.hh"
#include "sim/rng.hh"
#include "workloads/affine_workloads.hh"
#include "workloads/graph_workloads.hh"
#include "workloads/pointer_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

namespace
{

/** Invariants every finished run must satisfy. */
void
checkStatsInvariants(const RunResult &r)
{
    const auto &s = r.stats;
    EXPECT_LE(s.l1Misses, s.l1Accesses);
    EXPECT_LE(s.l2Misses, s.l2Accesses);
    EXPECT_LE(s.l3Misses, s.l3Accesses);
    // Flit-hops can never be below message-hops (>= 1 flit/message).
    for (int c = 0; c < numTrafficClasses; ++c)
        EXPECT_GE(s.flitHops[c], s.hops[c]);
    // DRAM traffic only comes from misses/writebacks.
    EXPECT_LE(s.dramAccesses, 2 * s.l3Misses + s.l3Accesses);
    EXPECT_GT(s.cycles, 0u);
    EXPECT_GT(s.epochs, 0u);
    EXPECT_GE(r.nocUtilization, 0.0);
    EXPECT_LE(r.nocUtilization, 1.0);
    EXPECT_GT(r.joules, 0.0);
}

} // namespace

TEST(Integration, FullStackVecAddInvariants)
{
    for (ExecMode m :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        VecAddParams p;
        p.n = 200'000;
        p.layout = m == ExecMode::affAlloc ? VecAddLayout::affinity
                                           : VecAddLayout::heapLinear;
        const auto r = runVecAdd(RunConfig::forMode(m), p);
        EXPECT_TRUE(r.valid);
        checkStatsInvariants(r);
    }
}

TEST(Integration, GraphWorkloadInvariants)
{
    graph::KroneckerParams kp;
    kp.scale = 11;
    kp.edgeFactor = 8;
    const auto g = graph::kronecker(kp);
    GraphParams p;
    p.graph = &g;
    p.iters = 2;
    for (ExecMode m :
         {ExecMode::inCore, ExecMode::nearL3, ExecMode::affAlloc}) {
        checkStatsInvariants(runPageRankPush(RunConfig::forMode(m), p));
        checkStatsInvariants(runSssp(RunConfig::forMode(m), p));
        checkStatsInvariants(
            runBfs(RunConfig::forMode(m), p, defaultBfsStrategy(m)).run);
    }
}

TEST(Integration, IotStaysWithinHardwareBudget)
{
    // A full Aff-Alloc graph run exercises pools + partitioned arrays
    // + page-at-bank regions; the IOT must stay within its 16 entries
    // (the point of contiguous pool backing, §4.1).
    graph::KroneckerParams kp;
    kp.scale = 11;
    kp.edgeFactor = 8;
    const auto g = graph::kronecker(kp);
    GraphParams p;
    p.graph = &g;
    p.iters = 2;

    RunContext ctx(RunConfig::forMode(ExecMode::affAlloc));
    // Run through the public entry point (fresh context inside), then
    // verify on a context we can inspect by doing the setup directly.
    (void)runPageRankPush(RunConfig::forMode(ExecMode::affAlloc), p);

    // Inspectable variant: allocate the same structure kinds here.
    alloc::AffineArray va;
    va.elem_size = 4;
    va.num_elem = g.numVertices;
    va.partition = true;
    void *v = ctx.allocator.mallocAff(va);
    for (int i = 0; i < 1000; ++i) {
        const void *aff[1] = {static_cast<char *>(v) + (i % 64) * 64};
        ctx.allocator.mallocAff(64, 1, aff);
    }
    EXPECT_LE(ctx.os.iot().size(), ctx.config.machine.iotEntries);
}

TEST(Integration, PoolsBackedContiguously)
{
    // After heavy mixed allocation, every pool's physical backing is
    // still contiguous (the invariant that keeps the IOT at one entry
    // per pool).
    RunContext ctx(RunConfig::forMode(ExecMode::affAlloc));
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const std::size_t size = 64u << rng.below(5);
        ctx.allocator.mallocAff(size, 0, nullptr);
    }
    for (int k = 0; k < mem::numInterleavePools; ++k) {
        const Addr brk = ctx.os.poolBrkOf(k);
        if (brk == 0)
            continue;
        const Addr vbase = ctx.os.poolVirtBaseOf(k);
        const Addr p0 = ctx.os.pageTable().translate(vbase);
        for (Addr off = 0; off < brk; off += mem::pageSize) {
            ASSERT_EQ(ctx.os.pageTable().translate(vbase + off),
                      p0 + off)
                << "pool " << k << " offset " << off;
        }
    }
}

TEST(Integration, EnergyAccountingConsistent)
{
    VecAddParams p;
    p.n = 100'000;
    const auto r =
        runVecAdd(RunConfig::forMode(ExecMode::affAlloc), p);
    sim::MachineConfig cfg;
    sim::EnergyModel model(cfg);
    EXPECT_NEAR(r.joules, model.totalJoules(r.stats), 1e-12);
    EXPECT_GT(model.dynamicJoules(r.stats), 0.0);
    EXPECT_GT(model.staticJoules(r.stats), 0.0);
}

TEST(Integration, PointerWorkloadsShareOneRuntime)
{
    // Multiple co-designed structures in one process must coexist
    // (shared pools, shared free lists, shared load tracking).
    RunContext ctx(RunConfig::forMode(ExecMode::affAlloc));
    ds::AffinityList list(ctx.allocator);
    ds::AffinityTree tree(ctx.allocator);
    ds::HashJoinTable table(ctx.allocator, 256, true);
    Rng rng(4);
    for (int i = 0; i < 500; ++i) {
        list.append(rng.next());
        tree.insert(rng.next());
        table.insert(rng.next(), i);
    }
    EXPECT_EQ(list.size(), 500u);
    EXPECT_EQ(tree.size(), 500u);
    EXPECT_EQ(table.size(), 500u);
    std::uint64_t load = 0;
    for (auto l : ctx.allocator.bankLoads())
        load += l;
    // 500 list nodes + 500 tree nodes + 500 chain nodes (+1 tail-less
    // structures' slots are affine, not counted).
    EXPECT_EQ(load, 1500u);
}

TEST(Integration, TimelineCoversWholeRun)
{
    VecAddParams p;
    p.n = 200'000;
    const auto r =
        runVecAdd(RunConfig::forMode(ExecMode::nearL3), p);
    ASSERT_FALSE(r.timeline.empty());
    EXPECT_EQ(r.timeline.records().back().endCycle, r.cycles());
    // Epoch end cycles are strictly increasing.
    Cycles prev = 0;
    for (const auto &rec : r.timeline.records()) {
        EXPECT_GT(rec.endCycle, prev);
        prev = rec.endCycle;
    }
}
