#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"

using affalloc::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.below(64);
        EXPECT_LT(v, 64u);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 5000; ++i)
        seen.insert(rng.below(16));
    EXPECT_EQ(seen.size(), 16u);
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.between(1, 255);
        ASSERT_GE(v, 1);
        ASSERT_LE(v, 255);
        saw_lo |= v == 1;
        saw_hi |= v == 255;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ReseedReproduces)
{
    Rng rng(5);
    const auto first = rng.next();
    rng.next();
    rng.reseed(5);
    EXPECT_EQ(rng.next(), first);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, SubstreamZeroIsRoot)
{
    // Stream 0 must be the root stream itself so single-tenant code
    // that never heard of substreams stays byte-identical.
    for (const std::uint64_t root : {0ULL, 1ULL, 42ULL, ~0ULL})
        EXPECT_EQ(Rng::substreamSeed(root, 0), root);
}

TEST(Rng, SubstreamSeedsAreDistinct)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t root : {42ULL, 1234567ULL})
        for (std::uint64_t stream = 0; stream < 64; ++stream)
            seen.insert(Rng::substreamSeed(root, stream));
    EXPECT_EQ(seen.size(), 128u);
}

TEST(Rng, SubstreamDependsOnlyOnRootAndStream)
{
    // A tenant's sequence is a pure function of (root, stream id) —
    // drawing from stream 2 first must not perturb stream 1.
    Rng first(Rng::substreamSeed(42, 1));
    const std::uint64_t expect = first.next();

    Rng other(Rng::substreamSeed(42, 2));
    (void)other.next();
    Rng again(Rng::substreamSeed(42, 1));
    EXPECT_EQ(again.next(), expect);
}

TEST(Rng, SubstreamsDecorrelated)
{
    // Adjacent substreams of one root must not produce overlapping
    // short prefixes (the splitmix64 mix scatters them).
    Rng a(Rng::substreamSeed(7, 1));
    Rng b(Rng::substreamSeed(7, 2));
    std::set<std::uint64_t> fromA;
    for (int i = 0; i < 256; ++i)
        fromA.insert(a.next());
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(fromA.count(b.next()), 0u);
}
