/**
 * @file
 * Unit tests for the fault-injection subsystem: FaultPlan drawing,
 * bank redirection, link degradation, offload rejection, and the
 * Machine-level degradation hooks (dynamic injection, NACK charging,
 * epoch abort, victim migration). Also pins the zero-overhead
 * guarantee: an empty FaultConfig must not perturb cycle counts.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "sim/fault.hh"
#include "sim/log.hh"
#include "sim/simcheck.hh"
#include "workloads/affine_workloads.hh"

#include "test_helpers.hh"

using namespace affalloc;
using test::MachineFixture;

namespace
{

constexpr std::uint32_t kMeshX = 8;
constexpr std::uint32_t kMeshY = 8;
constexpr std::uint32_t kBanks = kMeshX * kMeshY;

sim::FaultConfig
faultyConfig(std::uint32_t offline, double reject = 0.0,
             std::uint32_t links = 0)
{
    sim::FaultConfig fc;
    fc.seed = 12345;
    fc.offlineBanks = offline;
    fc.offloadRejectRate = reject;
    fc.degradedLinks = links;
    return fc;
}

} // namespace

// ---------------------------------------------------------- FaultPlan

TEST(FaultPlan, EmptyConfigIsHealthy)
{
    sim::FaultPlan plan(sim::FaultConfig{}, kMeshX, kMeshY);
    EXPECT_FALSE(plan.any());
    EXPECT_EQ(plan.numOfflineBanks(), 0u);
    EXPECT_EQ(plan.numLiveBanks(), kBanks);
    EXPECT_EQ(plan.numDegradedLinks(), 0u);
    EXPECT_FALSE(plan.rejectsOffloads());
    for (BankId b = 0; b < kBanks; ++b) {
        EXPECT_TRUE(plan.bankLive(b));
        EXPECT_EQ(plan.redirect(b), b);
    }
    for (std::uint32_t l = 0; l < kBanks * 4; ++l)
        EXPECT_EQ(plan.linkFlitMultiplier(l), 1u);
    // Rate 0 must never admit a rejection (and never draw the Rng).
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(plan.rejectOffload());
}

TEST(FaultPlan, DrawsRequestedOfflineBanks)
{
    sim::FaultPlan plan(faultyConfig(6), kMeshX, kMeshY);
    EXPECT_TRUE(plan.any());
    EXPECT_EQ(plan.numOfflineBanks(), 6u);
    EXPECT_EQ(plan.numLiveBanks(), kBanks - 6);
    std::uint32_t dead = 0;
    for (BankId b = 0; b < kBanks; ++b)
        dead += plan.bankLive(b) ? 0 : 1;
    EXPECT_EQ(dead, 6u);
    EXPECT_EQ(plan.liveBankMask().size(), kBanks);
}

TEST(FaultPlan, SameSeedSamePlan)
{
    sim::FaultPlan a(faultyConfig(8, 0.0, 4), kMeshX, kMeshY);
    sim::FaultPlan b(faultyConfig(8, 0.0, 4), kMeshX, kMeshY);
    EXPECT_EQ(a.liveBankMask(), b.liveBankMask());
    for (std::uint32_t l = 0; l < kBanks * 4; ++l)
        EXPECT_EQ(a.linkFlitMultiplier(l), b.linkFlitMultiplier(l));
}

TEST(FaultPlan, DifferentSeedDifferentPlan)
{
    sim::FaultConfig fc = faultyConfig(8);
    sim::FaultPlan a(fc, kMeshX, kMeshY);
    fc.seed = 54321;
    sim::FaultPlan b(fc, kMeshX, kMeshY);
    EXPECT_NE(a.liveBankMask(), b.liveBankMask());
}

TEST(FaultPlan, RedirectTargetsNextLiveBank)
{
    sim::FaultPlan plan(faultyConfig(10), kMeshX, kMeshY);
    for (BankId b = 0; b < kBanks; ++b) {
        const BankId spare = plan.redirect(b);
        EXPECT_TRUE(plan.bankLive(spare));
        if (plan.bankLive(b)) {
            EXPECT_EQ(spare, b);
        } else {
            // The spare is the *next* live bank in numbering order:
            // every bank strictly between b and spare is dead.
            for (BankId i = (b + 1) % kBanks; i != spare;
                 i = (i + 1) % kBanks)
                EXPECT_FALSE(plan.bankLive(i));
        }
    }
}

TEST(FaultPlan, DegradedLinksAreRealAndCounted)
{
    sim::FaultConfig fc = faultyConfig(0, 0.0, 5);
    fc.linkDegradeFactor = 4;
    sim::FaultPlan plan(fc, kMeshX, kMeshY);
    EXPECT_EQ(plan.numDegradedLinks(), 5u);
    std::uint32_t degraded = 0;
    for (std::uint32_t l = 0; l < kBanks * 4; ++l) {
        const std::uint32_t m = plan.linkFlitMultiplier(l);
        EXPECT_TRUE(m == 1 || m == 4);
        degraded += m > 1 ? 1 : 0;
    }
    EXPECT_EQ(degraded, 5u);
}

TEST(FaultPlan, RejectRateOneAlwaysRejects)
{
    sim::FaultPlan plan(faultyConfig(0, 1.0), kMeshX, kMeshY);
    EXPECT_TRUE(plan.rejectsOffloads());
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(plan.rejectOffload());
}

TEST(FaultPlan, DynamicOfflineUpdatesRedirect)
{
    sim::FaultPlan plan(sim::FaultConfig{}, kMeshX, kMeshY);
    EXPECT_TRUE(plan.offlineBank(3));
    EXPECT_FALSE(plan.bankLive(3));
    EXPECT_EQ(plan.numOfflineBanks(), 1u);
    EXPECT_EQ(plan.redirect(3), 4u);
    // Offlining the spare too pushes the redirect one further.
    EXPECT_TRUE(plan.offlineBank(4));
    EXPECT_EQ(plan.redirect(3), 5u);
    // Re-offlining is a no-op.
    EXPECT_FALSE(plan.offlineBank(3));
    EXPECT_EQ(plan.numOfflineBanks(), 2u);
    EXPECT_TRUE(plan.any());
}

TEST(FaultPlan, LastLiveBankIsProtected)
{
    sim::FaultPlan plan(sim::FaultConfig{}, 2, 1);
    EXPECT_TRUE(plan.offlineBank(0));
    EXPECT_THROW(plan.offlineBank(1), FatalError);
    EXPECT_THROW(plan.offlineBank(7), FatalError); // out of range
}

TEST(FaultPlan, InvalidConfigsAreFatal)
{
    EXPECT_THROW(sim::FaultPlan(sim::FaultConfig{}, 0, 0), FatalError);
    EXPECT_THROW(sim::FaultPlan(faultyConfig(kBanks), kMeshX, kMeshY),
                 FatalError);
    sim::FaultConfig bad_rate;
    bad_rate.offloadRejectRate = 1.5;
    EXPECT_THROW(sim::FaultPlan(bad_rate, kMeshX, kMeshY), FatalError);
    sim::FaultConfig bad_factor;
    bad_factor.degradedLinks = 1;
    bad_factor.linkDegradeFactor = 0;
    EXPECT_THROW(sim::FaultPlan(bad_factor, kMeshX, kMeshY),
                 FatalError);
}

// ---------------------------------------------------- machine hooks

TEST(MachineFault, BootPlanSurfacesInStats)
{
    sim::MachineConfig cfg;
    cfg.faults = faultyConfig(4);
    os::SimOS sim_os(cfg);
    nsc::Machine machine(cfg, sim_os);
    EXPECT_EQ(machine.stats().offlineBanks, 4u);
    EXPECT_EQ(machine.faultPlan().numOfflineBanks(), 4u);
    // The topology export carries the live mask.
    const os::Topology topo = sim_os.topology();
    ASSERT_EQ(topo.liveBanks.size(), cfg.numBanks());
    std::uint32_t live = 0;
    for (auto v : topo.liveBanks)
        live += v;
    EXPECT_EQ(live, cfg.numBanks() - 4);
}

TEST(MachineFault, MapperNeverHomesLinesAtDeadBanks)
{
    sim::MachineConfig cfg;
    cfg.faults = faultyConfig(12);
    os::SimOS sim_os(cfg);
    nsc::Machine machine(cfg, sim_os);
    alloc::AffinityAllocator allocator(machine, {});
    char *p = static_cast<char *>(
        allocator.allocInterleaved(64 * kBanks, 64, 0));
    for (std::uint32_t i = 0; i < kBanks; ++i) {
        const BankId b = machine.bankOfHost(p + i * 64);
        EXPECT_TRUE(machine.bankLive(b))
            << "line " << i << " homed at dead bank " << b;
    }
}

TEST(MachineFault, InjectBankFaultCountsAndRedirects)
{
    MachineFixture f;
    EXPECT_EQ(f.machine->stats().offlineBanks, 0u);
    f.machine->injectBankFault(7);
    EXPECT_EQ(f.machine->stats().offlineBanks, 1u);
    EXPECT_FALSE(f.machine->bankLive(7));
    // Repeat injection is a no-op on the counter.
    f.machine->injectBankFault(7);
    EXPECT_EQ(f.machine->stats().offlineBanks, 1u);
    EXPECT_THROW(f.machine->injectBankFault(kBanks), FatalError);
}

TEST(MachineFault, OffloadNackChargesRetryTraffic)
{
    MachineFixture f;
    const std::uint64_t hops_before = f.machine->stats().totalHops();
    const Cycles lat = f.machine->offloadNack(0, 63);
    EXPECT_GT(lat, 0u);
    EXPECT_EQ(f.machine->stats().offloadRetries, 1u);
    EXPECT_GT(f.machine->stats().totalHops(), hops_before);
}

TEST(MachineFault, AbortEpochRestoresStats)
{
    MachineFixture f;
    f.machine->beginEpoch();
    const sim::Stats before = f.machine->stats();
    f.machine->forwardData(0, 63, 4096);
    f.machine->forwardData(5, 20, 4096);
    EXPECT_GT(f.machine->stats().totalHops(), before.totalHops());
    f.machine->abortEpoch();
    EXPECT_EQ(f.machine->stats().totalHops(), before.totalHops());
    EXPECT_EQ(f.machine->stats().cycles, before.cycles);
    // The machine is reusable: a fresh epoch still works.
    f.machine->beginEpoch();
    f.machine->forwardData(0, 1, 64);
    EXPECT_GT(f.machine->endEpoch(), 0u);
}

TEST(MachineFault, DegradedLinksInflateFlits)
{
    sim::MachineConfig cfg;
    cfg.faults = faultyConfig(0, 0.0, 8);
    os::SimOS sim_os(cfg);
    nsc::Machine machine(cfg, sim_os);
    machine.beginEpoch();
    // All-pairs traffic crosses every real mesh link at least once,
    // so some of it must hit a degraded link.
    for (BankId from = 0; from < kBanks; ++from)
        for (BankId to = 0; to < kBanks; ++to)
            if (from != to)
                machine.forwardData(from, to, 256);
    machine.endEpoch();
    EXPECT_GT(machine.stats().degradedLinkFlits, 0u);
}

// ------------------------------------------------- victim migration

TEST(MachineFault, MigrateVictimsMovesSlotsOffDeadBanks)
{
    MachineFixture f;
    // A partitioned array gives every bank some elements to anchor
    // irregular slots at.
    alloc::AffineArray req;
    req.elem_size = 64;
    req.num_elem = kBanks * 8;
    req.partition = true;
    char *anchor = static_cast<char *>(f.allocator->mallocAff(req));
    ASSERT_NE(anchor, nullptr);

    std::vector<void *> slots;
    std::vector<BankId> homes;
    for (std::uint64_t i = 0; i < req.num_elem; ++i) {
        const void *aff = anchor + i * 64;
        void *slot = f.allocator->mallocAff(64, 1, &aff);
        std::memset(slot, int('a' + i % 26), 64);
        slots.push_back(slot);
        homes.push_back(f.machine->bankOfHost(slot));
    }

    // Kill the bank hosting slot 0 and migrate.
    const BankId dead = homes[0];
    f.machine->injectBankFault(dead);
    const auto moved = f.allocator->migrateVictims();
    ASSERT_FALSE(moved.empty());
    EXPECT_EQ(f.machine->stats().victimMigrations, moved.size());

    for (const auto &[old_p, new_p] : moved) {
        EXPECT_TRUE(f.machine->bankLive(f.machine->bankOfHost(new_p)));
        // Contents survived the copy.
        const char *np = static_cast<const char *>(new_p);
        for (int j = 1; j < 64; ++j)
            EXPECT_EQ(np[j], np[0]);
    }
    // A second sweep finds nothing left to move.
    EXPECT_TRUE(f.allocator->migrateVictims().empty());
}

// ------------------------------------------------- zero overhead

TEST(MachineFault, EmptyPlanIsDeterministicAcrossSeeds)
{
    // The fault seed must not leak into healthy runs: with no fault
    // class enabled, changing the seed cannot change a single cycle.
    auto run = [](std::uint64_t fault_seed) {
        workloads::RunConfig rc =
            workloads::RunConfig::forMode(ExecMode::affAlloc);
        rc.machine.faults.seed = fault_seed;
        workloads::VecAddParams p;
        p.n = 1 << 14;
        p.layout = workloads::VecAddLayout::affinity;
        return workloads::runVecAdd(rc, p);
    };
    const workloads::RunResult a = run(1);
    const workloads::RunResult b = run(0xdeadbeef);
    EXPECT_TRUE(a.valid);
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.hops(), b.hops());
    EXPECT_EQ(a.stats.offloadRetries, 0u);
    EXPECT_EQ(a.stats.offlineBanks, 0u);
}

// ---------------------------------------------- timed fault campaigns

TEST(FaultSchedule, ParsesBankAndLinkEvents)
{
    const auto sched = sim::parseFaultSchedule(
        "bank:3@50000,link:12@80000x8,link:13@90000");
    ASSERT_EQ(sched.size(), 3u);
    EXPECT_EQ(sched[0].kind, sim::FaultKind::killBank);
    EXPECT_EQ(sched[0].target, 3u);
    EXPECT_EQ(sched[0].atCycle, 50000u);
    EXPECT_EQ(sched[1].kind, sim::FaultKind::degradeLink);
    EXPECT_EQ(sched[1].target, 12u);
    EXPECT_EQ(sched[1].factor, 8u);
    EXPECT_EQ(sched[2].factor, 4u); // default degrade factor
    EXPECT_TRUE(sim::parseFaultSchedule("").empty());
}

TEST(FaultSchedule, MalformedSpecsAreFatal)
{
    EXPECT_THROW(sim::parseFaultSchedule("bank:3"), FatalError);
    EXPECT_THROW(sim::parseFaultSchedule("core:1@5"), FatalError);
    EXPECT_THROW(sim::parseFaultSchedule("bank:x@5"), FatalError);
    EXPECT_THROW(sim::parseFaultSchedule("link:1@z"), FatalError);
    EXPECT_THROW(sim::parseFaultSchedule("link:1@5xq"), FatalError);
}

TEST(FaultSchedule, ValidationRejectsBadTargetsAndLateEvents)
{
    auto one = [](sim::FaultKind k, std::uint32_t tgt, Cycles at,
                  std::uint32_t factor = 4) {
        sim::TimedFault f;
        f.kind = k;
        f.target = tgt;
        f.atCycle = at;
        f.factor = factor;
        return std::vector<sim::TimedFault>{f};
    };
    using sim::FaultKind;
    // In-range events pass (bank 63 east link does not exist; its
    // west link 63*4+1 does).
    sim::validateFaultSchedule(one(FaultKind::killBank, kBanks - 1, 10),
                               kMeshX, kMeshY, 100);
    sim::validateFaultSchedule(
        one(FaultKind::degradeLink, (kBanks - 1) * 4 + 1, 10), kMeshX,
        kMeshY, 100);
    // Bank id outside the mesh.
    EXPECT_THROW(sim::validateFaultSchedule(
                     one(FaultKind::killBank, kBanks, 10), kMeshX,
                     kMeshY),
                 FatalError);
    // Edge slot: the top-right tile has no east link.
    EXPECT_THROW(sim::validateFaultSchedule(
                     one(FaultKind::degradeLink, (kMeshX - 1) * 4 + 0,
                         10),
                     kMeshX, kMeshY),
                 FatalError);
    // Link id past the link table entirely.
    EXPECT_THROW(sim::validateFaultSchedule(
                     one(FaultKind::degradeLink, kBanks * 4, 10),
                     kMeshX, kMeshY),
                 FatalError);
    // Factor 0 can never be a flit multiplier.
    EXPECT_THROW(sim::validateFaultSchedule(
                     one(FaultKind::degradeLink, 1, 10, 0), kMeshX,
                     kMeshY),
                 FatalError);
    // An event beyond the horizon would silently never fire.
    EXPECT_THROW(sim::validateFaultSchedule(
                     one(FaultKind::killBank, 0, 101), kMeshX, kMeshY,
                     100),
                 FatalError);
    // ... but with no horizon given, any time is acceptable.
    sim::validateFaultSchedule(one(FaultKind::killBank, 0, 101), kMeshX,
                               kMeshY, 0);
}

TEST(FaultSchedule, PlanCtorValidatesScheduleTargets)
{
    sim::FaultConfig fc;
    sim::TimedFault ev;
    ev.kind = sim::FaultKind::killBank;
    ev.target = kBanks; // out of range
    fc.schedule.push_back(ev);
    EXPECT_THROW(sim::FaultPlan(fc, kMeshX, kMeshY), FatalError);
}

TEST(FaultPlan, SetRedirectRetargetsDeadBanksOnly)
{
    sim::FaultPlan plan(sim::FaultConfig{}, kMeshX, kMeshY);
    // Only dead banks can be re-targeted, and only to live banks.
    EXPECT_THROW(plan.setRedirect(3, 10), FatalError); // 3 still live
    EXPECT_TRUE(plan.offlineBank(3));
    EXPECT_EQ(plan.redirect(3), 4u); // default next-in-order spare
    plan.setRedirect(3, 42);
    EXPECT_EQ(plan.redirect(3), 42u);
    EXPECT_TRUE(plan.offlineBank(42));
    EXPECT_THROW(plan.setRedirect(3, 42), FatalError); // target dead
    EXPECT_THROW(plan.setRedirect(3, kBanks), FatalError);
    // A later kill rebuilds the default map: custom targets are gone
    // (recovery re-runs its assignment after every kill batch).
    EXPECT_EQ(plan.redirect(3), 4u);
}

TEST(FaultPlan, DynamicLinkDegradeTracksCount)
{
    sim::FaultPlan plan(sim::FaultConfig{}, kMeshX, kMeshY);
    EXPECT_FALSE(plan.any());
    EXPECT_TRUE(plan.degradeLink(5, 4));
    EXPECT_EQ(plan.linkFlitMultiplier(5), 4u);
    EXPECT_EQ(plan.numDegradedLinks(), 1u);
    EXPECT_TRUE(plan.any());
    EXPECT_FALSE(plan.degradeLink(5, 4)); // unchanged
    EXPECT_TRUE(plan.degradeLink(5, 1));  // healed
    EXPECT_EQ(plan.numDegradedLinks(), 0u);
    EXPECT_THROW(plan.degradeLink(kBanks * 4, 2), FatalError);
    EXPECT_THROW(plan.degradeLink(5, 0), FatalError);
}

TEST(MachineFault, InjectLinkDegradeInflatesTraffic)
{
    MachineFixture healthy, degraded;
    // Degrade every real link of the mesh (E/W/N/S = 0..3) so the
    // route taken by the payload below is certainly affected.
    for (std::uint32_t y = 0; y < kMeshY; ++y) {
        for (std::uint32_t x = 0; x < kMeshX; ++x) {
            const std::uint32_t tile = y * kMeshX + x;
            if (x + 1 < kMeshX)
                degraded.machine->injectLinkDegrade(tile * 4 + 0, 4);
            if (x > 0)
                degraded.machine->injectLinkDegrade(tile * 4 + 1, 4);
            if (y > 0)
                degraded.machine->injectLinkDegrade(tile * 4 + 2, 4);
            if (y + 1 < kMeshY)
                degraded.machine->injectLinkDegrade(tile * 4 + 3, 4);
        }
    }
    healthy.machine->beginEpoch();
    degraded.machine->beginEpoch();
    healthy.machine->forwardData(0, kBanks - 1, 4096);
    degraded.machine->forwardData(0, kBanks - 1, 4096);
    const Cycles h = healthy.machine->endEpoch();
    const Cycles d = degraded.machine->endEpoch();
    EXPECT_GT(d, h);
}

// --------------------------------------- transient-NACK boundaries

TEST(StreamFault, BackoffCapReachedExactlyOnceThenInCore)
{
    // With a 100% reject rate the executor burns its full retry
    // budget exactly once per admission attempt: R+1 NACKs (attempts
    // 0..R inclusive), then one fallback, then pure in-core execution
    // with no further retries.
    constexpr std::uint32_t kRetries = 3;
    sim::MachineConfig cfg;
    cfg.faults.offloadRejectRate = 1.0;
    cfg.faults.maxOffloadRetries = kRetries;
    cfg.faults.offloadRetryBackoff = 16;
    os::SimOS sim_os(cfg);
    nsc::Machine machine(cfg, sim_os);
    alloc::AffinityAllocator allocator(machine, {});
    nsc::StreamExecutor exec(machine, ExecMode::nearL3);

    char *p = static_cast<char *>(allocator.allocInterleaved(4096, 64, 0));
    ASSERT_NE(p, nullptr);
    const Addr sim = machine.addressSpace().simAddrOf(p);

    nsc::MigratingStream s(0);
    machine.beginEpoch();
    exec.configure(s, sim);
    EXPECT_TRUE(s.fellBackInCore());
    EXPECT_EQ(machine.stats().offloadRetries, kRetries + 1);
    EXPECT_EQ(machine.stats().offloadFallbacks, 1u);
    // The accumulated chain carries the full exponential backoff:
    // 16 * (2^0 + ... + 2^kRetries) plus the NACK round-trips.
    const double backoff_floor =
        16.0 * static_cast<double>((1u << (kRetries + 1)) - 1);
    EXPECT_GE(s.chainLatency(), backoff_floor);

    // In-core execution afterwards never touches the retry path.
    exec.streamStep(s, sim, 64, AccessType::read);
    exec.streamStep(s, sim + 64, 64, AccessType::read);
    EXPECT_EQ(machine.stats().offloadRetries, kRetries + 1);
    EXPECT_EQ(machine.stats().offloadFallbacks, 1u);
    machine.endEpoch();

    // Reconfiguration starts a fresh admission attempt: the cap is
    // reached exactly once more, not carried over.
    machine.beginEpoch();
    exec.configure(s, sim);
    EXPECT_TRUE(s.fellBackInCore());
    EXPECT_EQ(machine.stats().offloadRetries, 2 * (kRetries + 1));
    EXPECT_EQ(machine.stats().offloadFallbacks, 2u);
    machine.endEpoch();
}

TEST(FaultSchedule, NackStormParsesAndRoundTrips)
{
    const auto sched = sim::parseFaultSchedule(
        "bank:3@50000,link:12@80000x8,nack:800@90000,nack:0@120000");
    ASSERT_EQ(sched.size(), 4u);
    EXPECT_EQ(sched[2].kind, sim::FaultKind::nackStorm);
    EXPECT_EQ(sched[2].target, 800u);
    EXPECT_EQ(sched[2].atCycle, 90000u);
    EXPECT_EQ(sched[3].target, 0u); // rate 0 ends the storm

    // format -> parse is the identity: the chaos repro bundles rely
    // on the grammar round-tripping every event kind.
    const std::string text = sim::formatFaultSchedule(sched);
    const auto again = sim::parseFaultSchedule(text);
    ASSERT_EQ(again.size(), sched.size());
    for (std::size_t i = 0; i < sched.size(); ++i) {
        EXPECT_EQ(again[i].kind, sched[i].kind);
        EXPECT_EQ(again[i].target, sched[i].target);
        EXPECT_EQ(again[i].atCycle, sched[i].atCycle);
        EXPECT_EQ(again[i].factor, sched[i].factor);
    }
    EXPECT_EQ(sim::formatFaultSchedule(again), text);
}

TEST(FaultSchedule, DegradeFactorAndNackRateBoundsAreEnforced)
{
    auto one = [](sim::FaultKind k, std::uint32_t tgt,
                  std::uint32_t factor = 4) {
        sim::TimedFault f;
        f.kind = k;
        f.target = tgt;
        f.atCycle = 10;
        f.factor = factor;
        return std::vector<sim::TimedFault>{f};
    };
    using sim::FaultKind;
    // Degrade factor: 1 (heal) and the sanity bound itself pass ...
    sim::validateFaultSchedule(one(FaultKind::degradeLink, 5, 1), kMeshX,
                               kMeshY);
    sim::validateFaultSchedule(
        one(FaultKind::degradeLink, 5, sim::maxLinkDegradeFactor), kMeshX,
        kMeshY);
    // ... one past the bound is rejected at validation time.
    EXPECT_THROW(
        sim::validateFaultSchedule(
            one(FaultKind::degradeLink, 5, sim::maxLinkDegradeFactor + 1),
            kMeshX, kMeshY),
        FatalError);
    // The dynamic injection path enforces the same bounds.
    sim::FaultPlan plan(sim::FaultConfig{}, kMeshX, kMeshY);
    EXPECT_TRUE(plan.degradeLink(5, sim::maxLinkDegradeFactor));
    EXPECT_THROW(plan.degradeLink(6, sim::maxLinkDegradeFactor + 1),
                 FatalError);

    // NACK rate: 1000 permille is a full storm, 1001 is nonsense.
    sim::validateFaultSchedule(one(FaultKind::nackStorm, 1000), kMeshX,
                               kMeshY);
    EXPECT_THROW(sim::validateFaultSchedule(one(FaultKind::nackStorm, 1001),
                                            kMeshX, kMeshY),
                 FatalError);
    MachineFixture f;
    EXPECT_THROW(f.machine->injectNackStorm(1001), FatalError);
}

TEST(FaultPlan, OverlappingLinkDegradesAreLastWriterWins)
{
    // Two degradations of the same link do not compound: the second
    // event overwrites the multiplier (last-writer-wins), and the
    // degraded-link count tracks distinct degraded links, not events.
    sim::FaultPlan plan(sim::FaultConfig{}, kMeshX, kMeshY);
    EXPECT_TRUE(plan.degradeLink(9, 4));
    EXPECT_TRUE(plan.degradeLink(9, 8));
    EXPECT_EQ(plan.linkFlitMultiplier(9), 8u) << "overwrite, not 4*8";
    EXPECT_EQ(plan.numDegradedLinks(), 1u);
    // Re-degrading to the same factor is a no-op ...
    EXPECT_FALSE(plan.degradeLink(9, 8));
    EXPECT_EQ(plan.numDegradedLinks(), 1u);
    // ... a weaker overwrite still wins ...
    EXPECT_TRUE(plan.degradeLink(9, 2));
    EXPECT_EQ(plan.linkFlitMultiplier(9), 2u);
    EXPECT_EQ(plan.numDegradedLinks(), 1u);
    // ... and factor 1 heals the link exactly once.
    EXPECT_TRUE(plan.degradeLink(9, 1));
    EXPECT_EQ(plan.numDegradedLinks(), 0u);
    EXPECT_FALSE(plan.any());
}

TEST(StreamFault, NackStormEveryOffloadNacksOnceThenHeals)
{
    // During a full-rate storm with a zero retry budget, every
    // offload admission NACKs exactly once and falls back in-core;
    // after the storm ends, admissions succeed with no new retries.
    sim::MachineConfig cfg;
    cfg.faults.maxOffloadRetries = 0;
    cfg.faults.offloadRetryBackoff = 16;
    os::SimOS sim_os(cfg);
    nsc::Machine machine(cfg, sim_os);
    alloc::AffinityAllocator allocator(machine, {});
    nsc::StreamExecutor exec(machine, ExecMode::nearL3);

    char *p = static_cast<char *>(allocator.allocInterleaved(8192, 64, 0));
    ASSERT_NE(p, nullptr);
    const Addr sim = machine.addressSpace().simAddrOf(p);

    machine.injectNackStorm(1000);
    constexpr std::uint32_t kStreams = 8;
    machine.beginEpoch();
    for (std::uint32_t i = 0; i < kStreams; ++i) {
        nsc::MigratingStream s(i);
        exec.configure(s, sim + i * 512);
        EXPECT_TRUE(s.fellBackInCore());
    }
    machine.endEpoch();
    EXPECT_EQ(machine.stats().offloadRetries, kStreams);
    EXPECT_EQ(machine.stats().offloadFallbacks, kStreams);

    machine.injectNackStorm(0);
    machine.beginEpoch();
    nsc::MigratingStream healed(kStreams);
    exec.configure(healed, sim);
    EXPECT_FALSE(healed.fellBackInCore());
    machine.endEpoch();
    EXPECT_EQ(machine.stats().offloadRetries, kStreams);
    EXPECT_EQ(machine.stats().offloadFallbacks, kStreams);
}

// ------------------------------------------- spare-exhaustion keying

namespace
{

/** Machine stack with free-list auditing on, per-test keying mode. */
struct KeyingFixture
{
    explicit KeyingFixture(bool legacy)
        : allocator(machine, [legacy] {
              alloc::AllocatorOptions ao;
              ao.legacySpareKeying = legacy;
              return ao;
          }())
    {
    }

    static sim::MachineConfig
    auditedConfig()
    {
        sim::MachineConfig cfg;
        cfg.simcheck.audit = true;
        cfg.simcheck.auditPeriodEpochs = 1;
        return cfg;
    }

    sim::MachineConfig cfg = auditedConfig();
    os::SimOS os{cfg};
    nsc::Machine machine{cfg, os};
    alloc::AffinityAllocator allocator;

    /** Park one freed slot on every bank's free list; returns the
     *  bank of the first slot and its affinity anchor. */
    std::pair<BankId, const void *>
    parkSlots()
    {
        alloc::AffineArray req;
        req.elem_size = 64;
        req.num_elem = kBanks * 4;
        req.partition = true;
        anchor = static_cast<char *>(allocator.mallocAff(req));
        std::vector<void *> slots;
        for (std::uint64_t i = 0; i < req.num_elem; ++i) {
            const void *aff = anchor + i * 64;
            slots.push_back(allocator.mallocAff(64, 1, &aff));
        }
        const BankId victim = machine.bankOfHost(slots[0]);
        for (void *s : slots)
            allocator.freeAff(s);
        return {victim, anchor};
    }

    char *anchor = nullptr;
};

} // namespace

TEST(MachineFault, SpareOfSpareKillRekeysFreeLists)
{
    // Directed regression for the chaos engine's headline defect:
    // kill a bank whose freed slots sit on the free lists, then kill
    // the spare those slots were re-keyed to. The hardened keying
    // reconciles at each redirect change (counted in rekeyedSlots)
    // and the audit stays green; nothing asserts or crashes.
    KeyingFixture f(/*legacy=*/false);
    const auto parked = f.parkSlots();
    const BankId victim = parked.first;
    const void *aff = parked.second;
    f.machine.audit(); // clean baseline

    f.machine.injectBankFault(victim);
    f.machine.audit();
    const std::uint64_t first = f.allocator.allocStats().rekeyedSlots;
    EXPECT_GT(first, 0u);

    // The designated spare is already carrying the victim's slots;
    // now it dies too (spare-of-spare exhaustion).
    const BankId spare = f.machine.faultPlan().redirect(victim);
    ASSERT_TRUE(f.machine.bankLive(spare));
    f.machine.injectBankFault(spare);
    f.machine.audit();
    EXPECT_GT(f.allocator.allocStats().rekeyedSlots, first);

    // Allocation aimed at the doubly-dead neighbourhood degrades to
    // a live bank instead of failing an internal check.
    void *slot = f.allocator.mallocAff(64, 1, &aff);
    ASSERT_NE(slot, nullptr);
    EXPECT_TRUE(f.machine.bankLive(f.machine.bankOfHost(slot)));
    f.allocator.freeAff(slot);
    f.machine.audit();
}

TEST(MachineFault, LegacySpareKeyingStrandsSlotsOnRetarget)
{
    // The defect class the planted chaos campaign reproduces end to
    // end: under the legacy keying, slots freed while their home
    // bank is dead are keyed at the *current* redirect target; the
    // re-affinity re-target that follows a later kill wave moves the
    // service elsewhere and strands them, which the free-list audit
    // reports (and the hardened keying above survives).
    KeyingFixture f(/*legacy=*/true);

    alloc::AffineArray req;
    req.elem_size = 64;
    req.num_elem = kBanks * 4;
    req.partition = true;
    char *anchor = static_cast<char *>(f.allocator.mallocAff(req));
    std::vector<void *> slots;
    for (std::uint64_t i = 0; i < req.num_elem; ++i) {
        const void *aff = anchor + i * 64;
        slots.push_back(f.allocator.mallocAff(64, 1, &aff));
    }
    const BankId victim = f.machine.bankOfHost(slots[0]);

    // Kill first, free afterwards: legacy keys the victim's slots at
    // its redirect-of-the-moment.
    f.machine.injectBankFault(victim);
    for (void *s : slots)
        f.allocator.freeAff(s);
    f.machine.audit(); // still self-consistent at this instant

    // Re-affinity recovery re-targets the dead bank, as the serve
    // engine does after every kill wave. The keyed slots go stale.
    const BankId keyed = f.machine.faultPlan().redirect(victim);
    BankId other = kBanks;
    for (BankId b = 0; b < kBanks; ++b) {
        if (b != keyed && b != victim && f.machine.bankLive(b)) {
            other = b;
            break;
        }
    }
    ASSERT_LT(other, kBanks);
    f.machine.faultPlan().setRedirect(victim, other);

    try {
        f.machine.audit();
        ADD_FAILURE() << "legacy keying audit unexpectedly clean";
    } catch (const simcheck::AuditError &e) {
        ASSERT_FALSE(e.report().empty());
        EXPECT_EQ(e.report().front().component, "alloc");
        EXPECT_EQ(e.report().front().check, "freelist-integrity");
    }
}

TEST(StreamFault, BackoffExponentIsCappedAtEight)
{
    // Past attempt 8 the backoff stops doubling (2^min(attempt, 8)):
    // with 12 retries the chain grows by the capped geometric sum.
    constexpr std::uint32_t kRetries = 12;
    sim::MachineConfig cfg;
    cfg.faults.offloadRejectRate = 1.0;
    cfg.faults.maxOffloadRetries = kRetries;
    cfg.faults.offloadRetryBackoff = 16;
    os::SimOS sim_os(cfg);
    nsc::Machine machine(cfg, sim_os);
    alloc::AffinityAllocator allocator(machine, {});
    nsc::StreamExecutor exec(machine, ExecMode::nearL3);

    char *p = static_cast<char *>(allocator.allocInterleaved(4096, 64, 0));
    const Addr sim = machine.addressSpace().simAddrOf(p);
    nsc::MigratingStream s(0);
    machine.beginEpoch();
    exec.configure(s, sim);
    machine.endEpoch();
    EXPECT_TRUE(s.fellBackInCore());
    EXPECT_EQ(machine.stats().offloadRetries, kRetries + 1);
    EXPECT_EQ(machine.stats().offloadFallbacks, 1u);
    // Exponents: 0..8 then 8, 8, 8, 8 -> sum = (2^9 - 1) + 4 * 2^8.
    const double capped_sum =
        16.0 * (511.0 + 4.0 * 256.0);
    EXPECT_GE(s.chainLatency(), capped_sum);
    // An uncapped exponent would add 16*(2^9+2^10+2^11+2^12 - 4*2^8)
    // = 112640 more; make sure we are nowhere near that.
    EXPECT_LT(s.chainLatency(), capped_sum + 112640.0);
}
