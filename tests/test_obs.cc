/**
 * @file
 * Observability-layer tests: Chrome trace validity and schema,
 * per-bank counter conservation against the global Stats scalars,
 * heatmap golden rendering, digest neutrality (observability on/off),
 * jobs-independence (byte-identical traces at any --jobs), and loud
 * failure on unwritable output paths.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hh"
#include "harness/sweep.hh"
#include "harness/trace.hh"
#include "obs/chrome_trace.hh"
#include "obs/heatmap.hh"
#include "obs/placement_explain.hh"
#include "sim/log.hh"
#include "workloads/affine_workloads.hh"
#include "workloads/graph_workloads.hh"

using namespace affalloc;
using namespace affalloc::workloads;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

struct TempFile
{
    std::string path;
    explicit TempFile(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {}
    ~TempFile() { std::remove(path.c_str()); }
};

// ------------------------------------------------- mini JSON checker
// Just enough of a recursive-descent JSON parser to assert the trace
// is syntactically valid without a JSON library dependency.

struct JsonChecker
{
    const std::string &s;
    std::size_t i = 0;

    explicit JsonChecker(const std::string &text) : s(text) {}

    void ws() { while (i < s.size() && std::isspace((unsigned char)s[i])) ++i; }

    bool
    value()
    {
        ws();
        if (i >= s.size())
            return false;
        switch (s[i]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    literal(const char *lit)
    {
        const std::size_t n = std::strlen(lit);
        if (s.compare(i, n, lit) != 0)
            return false;
        i += n;
        return true;
    }

    bool
    number()
    {
        const std::size_t start = i;
        if (i < s.size() && (s[i] == '-' || s[i] == '+'))
            ++i;
        while (i < s.size() &&
               (std::isdigit((unsigned char)s[i]) || s[i] == '.' ||
                s[i] == 'e' || s[i] == 'E' || s[i] == '-' || s[i] == '+'))
            ++i;
        return i > start;
    }

    bool
    string()
    {
        if (s[i] != '"')
            return false;
        ++i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\')
                ++i;
            ++i;
        }
        if (i >= s.size())
            return false;
        ++i; // closing quote
        return true;
    }

    bool
    object()
    {
        ++i; // '{'
        ws();
        if (i < s.size() && s[i] == '}') {
            ++i;
            return true;
        }
        while (true) {
            ws();
            if (!string())
                return false;
            ws();
            if (i >= s.size() || s[i] != ':')
                return false;
            ++i;
            if (!value())
                return false;
            ws();
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            break;
        }
        if (i >= s.size() || s[i] != '}')
            return false;
        ++i;
        return true;
    }

    bool
    array()
    {
        ++i; // '['
        ws();
        if (i < s.size() && s[i] == ']') {
            ++i;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            ws();
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            break;
        }
        if (i >= s.size() || s[i] != ']')
            return false;
        ++i;
        return true;
    }

    bool
    wholeDocument()
    {
        if (!value())
            return false;
        ws();
        return i == s.size();
    }
};

RunConfig
obsConfig(ExecMode mode, bool metrics, const std::string &trace = "",
          const std::string &explain = "")
{
    RunConfig rc = RunConfig::forMode(mode);
    rc.obs.metrics = metrics;
    rc.obs.tracePath = trace;
    rc.obs.explainPath = explain;
    return rc;
}

std::uint64_t
sumU64(const std::vector<std::uint64_t> &v)
{
    return std::accumulate(v.begin(), v.end(), std::uint64_t(0));
}

} // namespace

TEST(Obs, TraceIsValidJsonWithSchema)
{
    TempFile tmp("obs_vecadd_trace.json");
    VecAddParams p;
    p.n = 100'000;
    const auto r =
        runVecAdd(obsConfig(ExecMode::affAlloc, false, tmp.path), p);
    ASSERT_TRUE(r.valid);

    const std::string trace = slurp(tmp.path);
    ASSERT_FALSE(trace.empty());
    JsonChecker checker(trace);
    EXPECT_TRUE(checker.wholeDocument()) << "trace is not valid JSON";

    // Chrome trace_event object-format schema markers.
    EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
    // Lane metadata, epoch spans and per-stream spans all present.
    EXPECT_NE(trace.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(trace.find("\"name\":\"epochs\""), std::string::npos);
    // Every event sits in the one trace process.
    EXPECT_NE(trace.find("\"pid\":1"), std::string::npos);
}

TEST(Obs, BankCountersConserveGlobalStats)
{
    // Affine workload: accesses / misses / SE ops.
    VecAddParams p;
    p.n = 100'000;
    const auto r = runVecAdd(obsConfig(ExecMode::affAlloc, true), p);
    ASSERT_TRUE(r.valid);
    const obs::SpatialSnapshot &s = r.obsSnapshot;
    ASSERT_FALSE(s.empty());
    EXPECT_EQ(sumU64(s.bankAccesses), r.stats.l3Accesses);
    EXPECT_EQ(sumU64(s.bankMisses), r.stats.l3Misses);
    EXPECT_EQ(sumU64(s.bankSeOps), r.stats.seOps);
    EXPECT_GT(r.stats.seOps, 0u);

    // Graph workload: remote atomics.
    graph::KroneckerParams kp;
    kp.scale = 10;
    kp.edgeFactor = 8;
    const auto g = graph::kronecker(kp);
    GraphParams gp;
    gp.graph = &g;
    gp.iters = 2;
    const auto gr =
        runPageRankPush(obsConfig(ExecMode::affAlloc, true), gp);
    ASSERT_TRUE(gr.valid);
    const obs::SpatialSnapshot &gs = gr.obsSnapshot;
    ASSERT_FALSE(gs.empty());
    EXPECT_GT(gr.stats.atomicOps, 0u);
    EXPECT_EQ(sumU64(gs.bankAtomics), gr.stats.atomicOps);
    EXPECT_EQ(sumU64(gs.bankAccesses), gr.stats.l3Accesses);

    // Stream-note accumulation equals the timeline's per-epoch series.
    std::uint64_t timeline_notes = 0;
    for (std::size_t e = 0; e < gr.timeline.size(); ++e)
        for (const auto n : gr.timeline.at(e).atomicStreamsPerBank)
            timeline_notes += n;
    EXPECT_EQ(sumU64(gs.bankStreamNotes), timeline_notes);
}

TEST(Obs, SnapshotCarriesEpochAndLinkSeries)
{
    VecAddParams p;
    p.n = 100'000;
    const auto r = runVecAdd(obsConfig(ExecMode::affAlloc, true), p);
    const obs::SpatialSnapshot &s = r.obsSnapshot;
    ASSERT_FALSE(s.empty());
    // One EpochMetrics record per simulated epoch, ending at the run's
    // final cycle count.
    ASSERT_EQ(s.epochs.size(), std::size_t(r.stats.epochs));
    EXPECT_EQ(s.epochs.back().endCycle, r.stats.cycles);
    // Offloaded vecadd moves data, so some mesh link carried flits.
    ASSERT_EQ(s.linkFlits.size(),
              std::size_t(s.meshX) * s.meshY * 4);
    EXPECT_GT(sumU64(s.linkFlits), 0u);
}

TEST(Obs, HeatShadeRamp)
{
    EXPECT_EQ(obs::heatShade(0, 100), ' ');
    EXPECT_EQ(obs::heatShade(0, 0), ' ');
    // Nonzero never renders blank.
    EXPECT_EQ(obs::heatShade(1, 1'000'000), '.');
    EXPECT_EQ(obs::heatShade(100, 100), '@');
    EXPECT_EQ(obs::heatShade(50, 100), '+');
}

TEST(Obs, BankHeatmapGolden)
{
    // 2x2 mesh, identity numbering.
    const std::vector<std::uint64_t> v = {0, 10, 5, 10};
    const std::vector<TileId> tiles = {0, 1, 2, 3};
    const std::string out = obs::renderBankHeatmap("t", v, tiles, 2, 2);
    const std::string golden =
        "=== t (total 25, max 10) ===\n"
        "   @   |        0       10\n"
        "  +@   |        5       10\n";
    EXPECT_EQ(out, golden);
}

TEST(Obs, BankHeatmapFollowsNumbering)
{
    // Bank 0 placed at tile 3: its value must render bottom-right.
    const std::vector<std::uint64_t> v = {7, 0, 0, 0};
    const std::vector<TileId> tiles = {3, 1, 2, 0};
    const std::string out = obs::renderBankHeatmap("n", v, tiles, 2, 2);
    const std::string golden =
        "=== n (total 7, max 7) ===\n"
        "       |        0        0\n"
        "   @   |        0        7\n";
    EXPECT_EQ(out, golden);
}

TEST(Obs, LinkHeatmapGolden)
{
    // 2x1 mesh: tile0 east carries 3 flits, tile1 west carries 1.
    std::vector<std::uint64_t> links(2 * 1 * 4, 0);
    links[0 * 4 + 0] = 3; // tile 0 east
    links[1 * 4 + 1] = 1; // tile 1 west
    const std::string out = obs::renderLinkHeatmap("l", links, 2, 1);
    const std::string golden =
        "=== l (total 4, max 3) ===\n"
        "  (each cell: flits east+west or north+south between "
        "neighbouring tiles)\n"
        "  o-@       4@-o\n";
    EXPECT_EQ(out, golden);
}

TEST(Obs, ObservabilityIsDigestNeutral)
{
    VecAddParams p;
    p.n = 100'000;
    const auto plain = runVecAdd(RunConfig::forMode(ExecMode::affAlloc), p);

    TempFile trace("obs_neutral_trace.json");
    TempFile explain("obs_neutral_explain.txt");
    const auto observed = runVecAdd(
        obsConfig(ExecMode::affAlloc, true, trace.path, explain.path), p);

    EXPECT_EQ(plain.digest(), observed.digest());
    EXPECT_EQ(plain.cycles(), observed.cycles());
    EXPECT_EQ(plain.hops(), observed.hops());
}

TEST(Obs, TraceBytesDeterministicAcrossRunsAndJobs)
{
    graph::KroneckerParams kp;
    kp.scale = 10;
    kp.edgeFactor = 8;
    const auto g = graph::kronecker(kp);
    GraphParams gp;
    gp.graph = &g;
    gp.iters = 1;

    // The same two-point sweep under --jobs 1 and --jobs 4; each point
    // writes its own trace file, so parallelism must not change a
    // single byte of any of them (all timestamps are simulated).
    const auto sweep = [&](unsigned jobs, const std::string &tag) {
        TempFile *f0 = new TempFile(("obs_" + tag + "_0.json").c_str());
        TempFile *f1 = new TempFile(("obs_" + tag + "_1.json").c_str());
        std::vector<std::function<RunResult()>> points = {
            [&, f0] {
                VecAddParams p;
                p.n = 100'000;
                return runVecAdd(
                    obsConfig(ExecMode::affAlloc, false, f0->path), p);
            },
            [&, f1] {
                return runBfs(
                           obsConfig(ExecMode::nearL3, false, f1->path),
                           gp, BfsStrategy::pushOnly)
                    .run;
            }};
        const auto results = harness::runSweep(jobs, points);
        struct Out
        {
            std::vector<std::uint64_t> digests;
            std::vector<std::string> traces;
        } out;
        for (const auto &r : results)
            out.digests.push_back(r.digest());
        out.traces.push_back(slurp(f0->path));
        out.traces.push_back(slurp(f1->path));
        delete f0;
        delete f1;
        return out;
    };

    const auto j1 = sweep(1, "j1");
    const auto j4 = sweep(4, "j4");
    EXPECT_EQ(j1.digests, j4.digests);
    ASSERT_EQ(j1.traces.size(), j4.traces.size());
    for (std::size_t i = 0; i < j1.traces.size(); ++i) {
        EXPECT_FALSE(j1.traces[i].empty());
        EXPECT_EQ(j1.traces[i], j4.traces[i])
            << "trace " << i << " differs between --jobs 1 and --jobs 4";
    }
}

TEST(Obs, ExplainLogRecordsHybridDecisions)
{
    TempFile tmp("obs_explain.txt");
    graph::KroneckerParams kp;
    kp.scale = 10;
    kp.edgeFactor = 8;
    const auto g = graph::kronecker(kp);
    GraphParams gp;
    gp.graph = &g;
    gp.iters = 1;
    const auto r = runPageRankPush(
        obsConfig(ExecMode::affAlloc, false, "", tmp.path), gp);
    ASSERT_TRUE(r.valid);

    const std::string log = slurp(tmp.path);
    EXPECT_NE(log.find("# decision policy n_affinity chosen"),
              std::string::npos);
    // The affinity allocator ran under Hybrid: decisions were logged
    // with their Eq. 4 decomposition.
    EXPECT_NE(log.find(" Hybrid "), std::string::npos);
    const auto lines = std::count(log.begin(), log.end(), '\n');
    EXPECT_GT(lines, 1);
}

TEST(Obs, UnwritableOutputsAreFatal)
{
    EXPECT_THROW(obs::ChromeTracer("/nonexistent-dir/trace.json"),
                 FatalError);
    EXPECT_THROW(obs::PlacementExplainer("/nonexistent-dir/explain.txt"),
                 FatalError);

    // Spatial CSV writers refuse runs without a snapshot.
    RunResult empty;
    empty.workload = "none";
    empty.label = "none";
    TempFile tmp("obs_empty.csv");
    EXPECT_THROW(harness::writeBankMetricsCsv(empty, tmp.path),
                 FatalError);
    EXPECT_THROW(harness::writeLinkMetricsCsv(empty, tmp.path),
                 FatalError);
}

TEST(Obs, ComparisonCsvCarriesDegradationColumns)
{
    harness::Comparison cmp({"cfg"});
    RunResult r;
    r.stats.cycles = 10;
    r.stats.offloadRetries = 3;
    r.stats.allocFallbacks = 2;
    r.stats.victimMigrations = 1;
    r.stats.degradedLinkFlits = 7;
    r.valid = true;
    cmp.add("wl", {r});
    TempFile tmp("obs_cmp.csv");
    harness::writeComparisonCsv(cmp, {"cfg"}, tmp.path);
    const std::string csv = slurp(tmp.path);
    EXPECT_NE(csv.find("offload_retries,offload_fallbacks,"
                       "alloc_fallbacks,victim_migrations,"
                       "degraded_link_flits,valid,class"),
              std::string::npos);
    // offline,retries,offl_fb,alloc_fb,migr,degraded,valid,class tail.
    EXPECT_NE(csv.find(",0,3,0,2,1,7,1,ndc\n"), std::string::npos);
}
