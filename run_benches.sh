#!/usr/bin/env bash
# Regenerates every figure/table of the paper plus the ablations.
# Order: light figures first.
#
# Script-level options (everything else is forwarded to the benches):
#   --quick      smoke-sized inputs (forwarded; mapped to a short
#                minimum measuring time for micro_benchmarks)
#   --timings    write BENCH_overall.json next to this script with
#                per-bench wall-clock seconds and the total
#   --jobs N     forwarded to the figure benches (parallel sweep
#                points); defaults to the machine's hardware threads.
#                Bench output is byte-identical at any job count (the
#                sweep collects results in sweep order), so this only
#                changes wall-clock. Filtered out for
#                micro_benchmarks, which is google-benchmark based
#                and rejects foreign flags.
#   --sim-threads N  forwarded to the figure benches (intra-run
#                shard-parallel epoch replay). Digests and bench output
#                are bit-identical at any count; only wall-clock
#                changes. Filtered out for micro_benchmarks.
#   --no-prof    with --timings, skip the per-bench --prof-out export
#                (used by CI to measure the profiler's own overhead:
#                two --timings runs, one with --no-prof, diffed by
#                tools/perf_diff.py). Bench output is byte-identical
#                either way; profiling is digest/stdout-neutral.
set -euo pipefail

here="$(dirname "$0")"
timings=0
no_prof=0
jobs=""
sim_threads=""
quick=0
declare -a fwd=()
argv=("$@")
i=0
while [ $i -lt $# ]; do
    a="${argv[$i]}"
    case "$a" in
    --timings)
        timings=1
        ;;
    --no-prof)
        no_prof=1
        ;;
    --jobs)
        i=$((i + 1))
        jobs="${argv[$i]}"
        fwd+=(--jobs "$jobs")
        ;;
    --jobs=*)
        jobs="${a#--jobs=}"
        fwd+=("$a")
        ;;
    --sim-threads)
        i=$((i + 1))
        sim_threads="${argv[$i]}"
        fwd+=(--sim-threads "$sim_threads")
        ;;
    --sim-threads=*)
        sim_threads="${a#--sim-threads=}"
        fwd+=("$a")
        ;;
    --quick)
        quick=1
        fwd+=("$a")
        ;;
    *)
        fwd+=("$a")
        ;;
    esac
    i=$((i + 1))
done

# Default to one worker per hardware thread unless the caller chose a
# count via --jobs or the AFFALLOC_JOBS environment variable.
if [ -z "$jobs" ] && [ -z "${AFFALLOC_JOBS:-}" ]; then
    jobs=$(nproc 2>/dev/null || echo 1)
    fwd+=(--jobs "$jobs")
fi

declare -a names=()
declare -a seconds=()
total=0

# With --timings, each figure bench also exports its host-side
# self-profile (phase tree, worker utilization, peak RSS) so
# BENCH_overall.json can carry per-bench breakdowns, not just totals.
prof_dir="$here/build/prof"
with_prof=0
if [ "$timings" = 1 ] && [ "$no_prof" = 0 ]; then
    with_prof=1
    mkdir -p "$prof_dir"
fi

for b in fig04_affine_offset fig17_bfs_iters fig14_timeline \
         fig18_push_pull fig15_affine_scale fig12_overall \
         fig06_irregular_potential fig19_degree fig13_policy \
         fig20_real_graphs fig16_graph_scale \
         ablation_codesign ablation_numbering serve_availability \
         host_interference micro_benchmarks; do
    echo "################ $b"
    if [ "$b" = micro_benchmarks ]; then
        # google-benchmark rejects the figure benches' flags; map
        # --quick to a short minimum measuring time and drop the
        # script-level sweep/simcheck flags.
        args=()
        skip_next=0
        for a in ${fwd[@]+"${fwd[@]}"}; do
            if [ "$skip_next" = 1 ]; then
                skip_next=0
                continue
            fi
            case "$a" in
            --quick) args+=(--benchmark_min_time=0.01) ;;
            --jobs) skip_next=1 ;;
            --jobs=*) ;;
            --sim-threads) skip_next=1 ;;
            --sim-threads=*) ;;
            --simcheck | --simcheck-digest | --faulty) ;;
            --trace-out=* | --heatmap=* | --obs-csv=*) ;;
            --explain-placement | --explain-placement=*) ;;
            --prof-out) skip_next=1 ;;
            --prof-out=* | --progress | --progress=*) ;;
            *) args+=("$a") ;;
            esac
        done
        t0=$(date +%s.%N)
        rc=0
        "$here/build/bench/$b" ${args[@]+"${args[@]}"} || rc=$?
        t1=$(date +%s.%N)
    else
        prof_args=()
        if [ "$with_prof" = 1 ]; then
            prof_args=(--prof-out="$prof_dir/$b.prof.json")
        fi
        t0=$(date +%s.%N)
        rc=0
        "$here/build/bench/$b" ${fwd[@]+"${fwd[@]}"} \
            ${prof_args[@]+"${prof_args[@]}"} || rc=$?
        t1=$(date +%s.%N)
    fi
    # A bench exiting non-zero (validation or digest failure) fails
    # the whole run, loudly and with the offending bench named --
    # `set -e` alone would die silently inside the timing capture.
    if [ "$rc" -ne 0 ]; then
        echo "FAILED: bench $b exited with code $rc" >&2
        exit "$rc"
    fi
    dt=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }')
    names+=("$b")
    seconds+=("$dt")
    total=$(awk -v t="$total" -v d="$dt" 'BEGIN { printf "%.3f", t + d }')
    echo
done

echo "TOTAL ${total}s"

if [ "$timings" = 1 ]; then
    out="$here/BENCH_overall.json"
    # Provenance: which sources, build and host produced these numbers
    # (a timing regression is meaningless without them).
    git_rev="$(git -C "$here" rev-parse --short HEAD 2>/dev/null || echo unknown)"
    build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
        "$here/build/CMakeCache.txt" 2>/dev/null | head -1)"
    host_threads="$(nproc 2>/dev/null || echo 1)"
    {
        echo "{"
        echo "  \"quick\": $([ "$quick" = 1 ] && echo true || echo false),"
        echo "  \"jobs\": ${jobs:-${AFFALLOC_JOBS:-1}},"
        echo "  \"sim_threads\": ${sim_threads:-${AFFALLOC_SIM_THREADS:-1}},"
        echo "  \"git_revision\": \"$git_rev\","
        echo "  \"build_type\": \"${build_type:-unknown}\","
        echo "  \"host_threads\": $host_threads,"
        echo "  \"benches\": {"
        n=${#names[@]}
        for ((k = 0; k < n; ++k)); do
            sep=","
            [ $((k + 1)) -eq "$n" ] && sep=""
            echo "    \"${names[$k]}\": ${seconds[$k]}$sep"
        done
        echo "  },"
        echo "  \"prof\": $([ "$with_prof" = 1 ] && echo true || echo false),"
        echo "  \"total_seconds\": $total"
        echo "}"
    } > "$out"
    # Fold the per-bench self-profiles in: top-level phase breakdown
    # (inclusive/exclusive ns) and peak RSS per bench, so the perf gate
    # sees *where* a regression lives, not just that one happened.
    if [ "$with_prof" = 1 ]; then
        python3 - "$out" "$prof_dir" <<'PYEOF'
import json, os, sys

out_path, prof_dir = sys.argv[1], sys.argv[2]
with open(out_path) as f:
    overall = json.load(f)

profiles = {}
for bench in overall.get("benches", {}):
    path = os.path.join(prof_dir, bench + ".prof.json")
    if not os.path.exists(path):
        continue
    with open(path) as f:
        prof = json.load(f)
    # Flatten the nested phase tree, merging repeats by name (the
    # same phase can appear under several parents/threads), so the
    # per-bench breakdown is one row per phase.
    flat = {}

    def walk(nodes):
        for p in nodes:
            row = flat.setdefault(
                p["name"],
                {"inclusive_ns": 0, "exclusive_ns": 0, "count": 0})
            row["inclusive_ns"] += p["inclusive_ns"]
            row["exclusive_ns"] += p["exclusive_ns"]
            row["count"] += p["count"]
            walk(p.get("children", []))

    walk(prof.get("phases", []))
    profiles[bench] = {
        "schema": prof.get("schema"),
        "wall_ns": prof.get("wall_ns", 0),
        "peak_rss_kb": prof.get("rss", {}).get("peak_kb", 0),
        "phases": [
            {"name": name, **row} for name, row in sorted(flat.items())
        ],
    }
overall["profiles"] = profiles
with open(out_path, "w") as f:
    json.dump(overall, f, indent=2)
    f.write("\n")
PYEOF
    fi
    echo "wrote $out"
fi
