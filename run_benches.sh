#!/bin/sh
# Regenerates every figure/table of the paper plus the ablations.
# Order: light figures first. Pass --quick to each for a smoke run.
set -e
for b in fig04_affine_offset fig17_bfs_iters fig14_timeline \
         fig18_push_pull fig15_affine_scale fig12_overall \
         fig06_irregular_potential fig19_degree fig13_policy \
         fig20_real_graphs fig16_graph_scale \
         ablation_codesign ablation_numbering micro_benchmarks; do
    echo "################ $b"
    "$(dirname "$0")/build/bench/$b" "$@"
    echo
done
