#!/usr/bin/env bash
# Regenerates every figure/table of the paper plus the ablations.
# Order: light figures first. Pass --quick to each for a smoke run.
set -euo pipefail
for b in fig04_affine_offset fig17_bfs_iters fig14_timeline \
         fig18_push_pull fig15_affine_scale fig12_overall \
         fig06_irregular_potential fig19_degree fig13_policy \
         fig20_real_graphs fig16_graph_scale \
         ablation_codesign ablation_numbering micro_benchmarks; do
    echo "################ $b"
    if [ "$b" = micro_benchmarks ]; then
        # google-benchmark rejects the figure benches' --quick flag;
        # map it to a short minimum measuring time instead.
        args=()
        for a in "$@"; do
            if [ "$a" = --quick ]; then
                args+=(--benchmark_min_time=0.01)
            else
                args+=("$a")
            fi
        done
        "$(dirname "$0")/build/bench/$b" ${args[@]+"${args[@]}"}
    else
        "$(dirname "$0")/build/bench/$b" "$@"
    fi
    echo
done
