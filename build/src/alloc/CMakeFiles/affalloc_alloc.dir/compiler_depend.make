# Empty compiler generated dependencies file for affalloc_alloc.
# This may be replaced when dependencies are built.
