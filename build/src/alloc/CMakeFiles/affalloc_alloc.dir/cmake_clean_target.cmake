file(REMOVE_RECURSE
  "libaffalloc_alloc.a"
)
