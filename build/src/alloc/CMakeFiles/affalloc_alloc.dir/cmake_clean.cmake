file(REMOVE_RECURSE
  "CMakeFiles/affalloc_alloc.dir/affinity_alloc.cc.o"
  "CMakeFiles/affalloc_alloc.dir/affinity_alloc.cc.o.d"
  "libaffalloc_alloc.a"
  "libaffalloc_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affalloc_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
