
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/affinity_alloc.cc" "src/alloc/CMakeFiles/affalloc_alloc.dir/affinity_alloc.cc.o" "gcc" "src/alloc/CMakeFiles/affalloc_alloc.dir/affinity_alloc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nsc/CMakeFiles/affalloc_nsc.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/affalloc_os.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/affalloc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/affalloc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/affalloc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
