file(REMOVE_RECURSE
  "libaffalloc_harness.a"
)
