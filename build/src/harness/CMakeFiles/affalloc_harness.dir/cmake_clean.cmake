file(REMOVE_RECURSE
  "CMakeFiles/affalloc_harness.dir/report.cc.o"
  "CMakeFiles/affalloc_harness.dir/report.cc.o.d"
  "CMakeFiles/affalloc_harness.dir/trace.cc.o"
  "CMakeFiles/affalloc_harness.dir/trace.cc.o.d"
  "libaffalloc_harness.a"
  "libaffalloc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affalloc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
