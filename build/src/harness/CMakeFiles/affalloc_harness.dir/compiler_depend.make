# Empty compiler generated dependencies file for affalloc_harness.
# This may be replaced when dependencies are built.
