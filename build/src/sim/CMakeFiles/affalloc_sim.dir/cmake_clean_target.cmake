file(REMOVE_RECURSE
  "libaffalloc_sim.a"
)
