file(REMOVE_RECURSE
  "CMakeFiles/affalloc_sim.dir/config.cc.o"
  "CMakeFiles/affalloc_sim.dir/config.cc.o.d"
  "CMakeFiles/affalloc_sim.dir/energy.cc.o"
  "CMakeFiles/affalloc_sim.dir/energy.cc.o.d"
  "CMakeFiles/affalloc_sim.dir/fault.cc.o"
  "CMakeFiles/affalloc_sim.dir/fault.cc.o.d"
  "CMakeFiles/affalloc_sim.dir/log.cc.o"
  "CMakeFiles/affalloc_sim.dir/log.cc.o.d"
  "CMakeFiles/affalloc_sim.dir/stats.cc.o"
  "CMakeFiles/affalloc_sim.dir/stats.cc.o.d"
  "libaffalloc_sim.a"
  "libaffalloc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affalloc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
