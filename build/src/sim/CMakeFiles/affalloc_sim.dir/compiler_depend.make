# Empty compiler generated dependencies file for affalloc_sim.
# This may be replaced when dependencies are built.
