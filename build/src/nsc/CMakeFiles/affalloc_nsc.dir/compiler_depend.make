# Empty compiler generated dependencies file for affalloc_nsc.
# This may be replaced when dependencies are built.
