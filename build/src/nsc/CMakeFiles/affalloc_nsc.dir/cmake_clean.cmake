file(REMOVE_RECURSE
  "CMakeFiles/affalloc_nsc.dir/machine.cc.o"
  "CMakeFiles/affalloc_nsc.dir/machine.cc.o.d"
  "CMakeFiles/affalloc_nsc.dir/stream_executor.cc.o"
  "CMakeFiles/affalloc_nsc.dir/stream_executor.cc.o.d"
  "libaffalloc_nsc.a"
  "libaffalloc_nsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affalloc_nsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
