
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nsc/machine.cc" "src/nsc/CMakeFiles/affalloc_nsc.dir/machine.cc.o" "gcc" "src/nsc/CMakeFiles/affalloc_nsc.dir/machine.cc.o.d"
  "/root/repo/src/nsc/stream_executor.cc" "src/nsc/CMakeFiles/affalloc_nsc.dir/stream_executor.cc.o" "gcc" "src/nsc/CMakeFiles/affalloc_nsc.dir/stream_executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/affalloc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/affalloc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/affalloc_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/affalloc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
