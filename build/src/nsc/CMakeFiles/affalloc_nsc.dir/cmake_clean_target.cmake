file(REMOVE_RECURSE
  "libaffalloc_nsc.a"
)
