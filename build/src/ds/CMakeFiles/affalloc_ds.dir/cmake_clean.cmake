file(REMOVE_RECURSE
  "CMakeFiles/affalloc_ds.dir/dynamic_graph.cc.o"
  "CMakeFiles/affalloc_ds.dir/dynamic_graph.cc.o.d"
  "CMakeFiles/affalloc_ds.dir/linked_csr.cc.o"
  "CMakeFiles/affalloc_ds.dir/linked_csr.cc.o.d"
  "CMakeFiles/affalloc_ds.dir/pointer_structs.cc.o"
  "CMakeFiles/affalloc_ds.dir/pointer_structs.cc.o.d"
  "CMakeFiles/affalloc_ds.dir/spatial_pq.cc.o"
  "CMakeFiles/affalloc_ds.dir/spatial_pq.cc.o.d"
  "CMakeFiles/affalloc_ds.dir/spatial_queue.cc.o"
  "CMakeFiles/affalloc_ds.dir/spatial_queue.cc.o.d"
  "libaffalloc_ds.a"
  "libaffalloc_ds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affalloc_ds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
