# Empty dependencies file for affalloc_ds.
# This may be replaced when dependencies are built.
