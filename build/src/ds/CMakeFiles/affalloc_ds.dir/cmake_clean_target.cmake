file(REMOVE_RECURSE
  "libaffalloc_ds.a"
)
