file(REMOVE_RECURSE
  "CMakeFiles/affalloc_noc.dir/network.cc.o"
  "CMakeFiles/affalloc_noc.dir/network.cc.o.d"
  "CMakeFiles/affalloc_noc.dir/topology.cc.o"
  "CMakeFiles/affalloc_noc.dir/topology.cc.o.d"
  "libaffalloc_noc.a"
  "libaffalloc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affalloc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
