file(REMOVE_RECURSE
  "libaffalloc_noc.a"
)
