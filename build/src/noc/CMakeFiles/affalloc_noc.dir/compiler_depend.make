# Empty compiler generated dependencies file for affalloc_noc.
# This may be replaced when dependencies are built.
