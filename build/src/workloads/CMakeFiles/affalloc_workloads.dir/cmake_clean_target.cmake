file(REMOVE_RECURSE
  "libaffalloc_workloads.a"
)
