file(REMOVE_RECURSE
  "CMakeFiles/affalloc_workloads.dir/affine_workloads.cc.o"
  "CMakeFiles/affalloc_workloads.dir/affine_workloads.cc.o.d"
  "CMakeFiles/affalloc_workloads.dir/graph_workloads.cc.o"
  "CMakeFiles/affalloc_workloads.dir/graph_workloads.cc.o.d"
  "CMakeFiles/affalloc_workloads.dir/pointer_workloads.cc.o"
  "CMakeFiles/affalloc_workloads.dir/pointer_workloads.cc.o.d"
  "libaffalloc_workloads.a"
  "libaffalloc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affalloc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
