# Empty compiler generated dependencies file for affalloc_workloads.
# This may be replaced when dependencies are built.
