file(REMOVE_RECURSE
  "libaffalloc_mem.a"
)
