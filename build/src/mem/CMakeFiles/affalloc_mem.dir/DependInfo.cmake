
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_space.cc" "src/mem/CMakeFiles/affalloc_mem.dir/address_space.cc.o" "gcc" "src/mem/CMakeFiles/affalloc_mem.dir/address_space.cc.o.d"
  "/root/repo/src/mem/cache_model.cc" "src/mem/CMakeFiles/affalloc_mem.dir/cache_model.cc.o" "gcc" "src/mem/CMakeFiles/affalloc_mem.dir/cache_model.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/mem/CMakeFiles/affalloc_mem.dir/dram.cc.o" "gcc" "src/mem/CMakeFiles/affalloc_mem.dir/dram.cc.o.d"
  "/root/repo/src/mem/iot.cc" "src/mem/CMakeFiles/affalloc_mem.dir/iot.cc.o" "gcc" "src/mem/CMakeFiles/affalloc_mem.dir/iot.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/mem/CMakeFiles/affalloc_mem.dir/page_table.cc.o" "gcc" "src/mem/CMakeFiles/affalloc_mem.dir/page_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/affalloc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/affalloc_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
