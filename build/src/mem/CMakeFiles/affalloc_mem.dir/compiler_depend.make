# Empty compiler generated dependencies file for affalloc_mem.
# This may be replaced when dependencies are built.
