file(REMOVE_RECURSE
  "CMakeFiles/affalloc_mem.dir/address_space.cc.o"
  "CMakeFiles/affalloc_mem.dir/address_space.cc.o.d"
  "CMakeFiles/affalloc_mem.dir/cache_model.cc.o"
  "CMakeFiles/affalloc_mem.dir/cache_model.cc.o.d"
  "CMakeFiles/affalloc_mem.dir/dram.cc.o"
  "CMakeFiles/affalloc_mem.dir/dram.cc.o.d"
  "CMakeFiles/affalloc_mem.dir/iot.cc.o"
  "CMakeFiles/affalloc_mem.dir/iot.cc.o.d"
  "CMakeFiles/affalloc_mem.dir/page_table.cc.o"
  "CMakeFiles/affalloc_mem.dir/page_table.cc.o.d"
  "libaffalloc_mem.a"
  "libaffalloc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affalloc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
