# Empty dependencies file for affalloc_os.
# This may be replaced when dependencies are built.
