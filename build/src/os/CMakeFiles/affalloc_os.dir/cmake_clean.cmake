file(REMOVE_RECURSE
  "CMakeFiles/affalloc_os.dir/sim_os.cc.o"
  "CMakeFiles/affalloc_os.dir/sim_os.cc.o.d"
  "libaffalloc_os.a"
  "libaffalloc_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affalloc_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
