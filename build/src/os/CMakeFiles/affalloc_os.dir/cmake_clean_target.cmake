file(REMOVE_RECURSE
  "libaffalloc_os.a"
)
