# Empty compiler generated dependencies file for affalloc_graph.
# This may be replaced when dependencies are built.
