file(REMOVE_RECURSE
  "libaffalloc_graph.a"
)
