file(REMOVE_RECURSE
  "CMakeFiles/affalloc_graph.dir/csr.cc.o"
  "CMakeFiles/affalloc_graph.dir/csr.cc.o.d"
  "CMakeFiles/affalloc_graph.dir/generators.cc.o"
  "CMakeFiles/affalloc_graph.dir/generators.cc.o.d"
  "CMakeFiles/affalloc_graph.dir/reference.cc.o"
  "CMakeFiles/affalloc_graph.dir/reference.cc.o.d"
  "libaffalloc_graph.a"
  "libaffalloc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affalloc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
