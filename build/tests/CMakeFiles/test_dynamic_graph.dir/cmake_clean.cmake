file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_graph.dir/test_dynamic_graph.cc.o"
  "CMakeFiles/test_dynamic_graph.dir/test_dynamic_graph.cc.o.d"
  "test_dynamic_graph"
  "test_dynamic_graph.pdb"
  "test_dynamic_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
