# Empty dependencies file for test_affinity_alloc.
# This may be replaced when dependencies are built.
