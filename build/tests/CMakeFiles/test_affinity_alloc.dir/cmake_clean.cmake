file(REMOVE_RECURSE
  "CMakeFiles/test_affinity_alloc.dir/test_affinity_alloc.cc.o"
  "CMakeFiles/test_affinity_alloc.dir/test_affinity_alloc.cc.o.d"
  "test_affinity_alloc"
  "test_affinity_alloc.pdb"
  "test_affinity_alloc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_affinity_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
