# Empty dependencies file for test_stream_executor.
# This may be replaced when dependencies are built.
