file(REMOVE_RECURSE
  "CMakeFiles/test_stream_executor.dir/test_stream_executor.cc.o"
  "CMakeFiles/test_stream_executor.dir/test_stream_executor.cc.o.d"
  "test_stream_executor"
  "test_stream_executor.pdb"
  "test_stream_executor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
