# Empty compiler generated dependencies file for test_bank_mapper.
# This may be replaced when dependencies are built.
