file(REMOVE_RECURSE
  "CMakeFiles/test_bank_mapper.dir/test_bank_mapper.cc.o"
  "CMakeFiles/test_bank_mapper.dir/test_bank_mapper.cc.o.d"
  "test_bank_mapper"
  "test_bank_mapper.pdb"
  "test_bank_mapper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bank_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
