# Empty dependencies file for test_affine_workloads.
# This may be replaced when dependencies are built.
