file(REMOVE_RECURSE
  "CMakeFiles/test_affine_workloads.dir/test_affine_workloads.cc.o"
  "CMakeFiles/test_affine_workloads.dir/test_affine_workloads.cc.o.d"
  "test_affine_workloads"
  "test_affine_workloads.pdb"
  "test_affine_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_affine_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
