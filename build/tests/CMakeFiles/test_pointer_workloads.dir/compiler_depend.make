# Empty compiler generated dependencies file for test_pointer_workloads.
# This may be replaced when dependencies are built.
