file(REMOVE_RECURSE
  "CMakeFiles/test_pointer_workloads.dir/test_pointer_workloads.cc.o"
  "CMakeFiles/test_pointer_workloads.dir/test_pointer_workloads.cc.o.d"
  "test_pointer_workloads"
  "test_pointer_workloads.pdb"
  "test_pointer_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pointer_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
