file(REMOVE_RECURSE
  "CMakeFiles/test_affine_kernel_model.dir/test_affine_kernel_model.cc.o"
  "CMakeFiles/test_affine_kernel_model.dir/test_affine_kernel_model.cc.o.d"
  "test_affine_kernel_model"
  "test_affine_kernel_model.pdb"
  "test_affine_kernel_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_affine_kernel_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
