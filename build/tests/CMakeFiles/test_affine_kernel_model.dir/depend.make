# Empty dependencies file for test_affine_kernel_model.
# This may be replaced when dependencies are built.
