# Empty dependencies file for test_fault_campaign.
# This may be replaced when dependencies are built.
