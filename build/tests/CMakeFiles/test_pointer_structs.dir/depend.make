# Empty dependencies file for test_pointer_structs.
# This may be replaced when dependencies are built.
