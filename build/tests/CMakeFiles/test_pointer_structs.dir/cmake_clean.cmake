file(REMOVE_RECURSE
  "CMakeFiles/test_pointer_structs.dir/test_pointer_structs.cc.o"
  "CMakeFiles/test_pointer_structs.dir/test_pointer_structs.cc.o.d"
  "test_pointer_structs"
  "test_pointer_structs.pdb"
  "test_pointer_structs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pointer_structs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
