file(REMOVE_RECURSE
  "CMakeFiles/test_workload_matrix.dir/test_workload_matrix.cc.o"
  "CMakeFiles/test_workload_matrix.dir/test_workload_matrix.cc.o.d"
  "test_workload_matrix"
  "test_workload_matrix.pdb"
  "test_workload_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
