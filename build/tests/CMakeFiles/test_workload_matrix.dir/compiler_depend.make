# Empty compiler generated dependencies file for test_workload_matrix.
# This may be replaced when dependencies are built.
