# Empty compiler generated dependencies file for test_spatial_queue.
# This may be replaced when dependencies are built.
