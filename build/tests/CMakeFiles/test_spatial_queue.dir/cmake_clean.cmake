file(REMOVE_RECURSE
  "CMakeFiles/test_spatial_queue.dir/test_spatial_queue.cc.o"
  "CMakeFiles/test_spatial_queue.dir/test_spatial_queue.cc.o.d"
  "test_spatial_queue"
  "test_spatial_queue.pdb"
  "test_spatial_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spatial_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
