# Empty dependencies file for test_graph_workloads.
# This may be replaced when dependencies are built.
