file(REMOVE_RECURSE
  "CMakeFiles/test_graph_workloads.dir/test_graph_workloads.cc.o"
  "CMakeFiles/test_graph_workloads.dir/test_graph_workloads.cc.o.d"
  "test_graph_workloads"
  "test_graph_workloads.pdb"
  "test_graph_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
