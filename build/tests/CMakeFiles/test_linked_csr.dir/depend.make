# Empty dependencies file for test_linked_csr.
# This may be replaced when dependencies are built.
