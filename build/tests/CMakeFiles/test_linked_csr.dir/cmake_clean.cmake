file(REMOVE_RECURSE
  "CMakeFiles/test_linked_csr.dir/test_linked_csr.cc.o"
  "CMakeFiles/test_linked_csr.dir/test_linked_csr.cc.o.d"
  "test_linked_csr"
  "test_linked_csr.pdb"
  "test_linked_csr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linked_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
