# Empty dependencies file for test_bank_numbering.
# This may be replaced when dependencies are built.
