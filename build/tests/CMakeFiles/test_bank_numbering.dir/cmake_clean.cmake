file(REMOVE_RECURSE
  "CMakeFiles/test_bank_numbering.dir/test_bank_numbering.cc.o"
  "CMakeFiles/test_bank_numbering.dir/test_bank_numbering.cc.o.d"
  "test_bank_numbering"
  "test_bank_numbering.pdb"
  "test_bank_numbering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bank_numbering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
