
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_error_paths.cc" "tests/CMakeFiles/test_error_paths.dir/test_error_paths.cc.o" "gcc" "tests/CMakeFiles/test_error_paths.dir/test_error_paths.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/affalloc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/affalloc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ds/CMakeFiles/affalloc_ds.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/affalloc_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/nsc/CMakeFiles/affalloc_nsc.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/affalloc_os.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/affalloc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/affalloc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/affalloc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/affalloc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
