file(REMOVE_RECURSE
  "CMakeFiles/test_error_paths.dir/test_error_paths.cc.o"
  "CMakeFiles/test_error_paths.dir/test_error_paths.cc.o.d"
  "test_error_paths"
  "test_error_paths.pdb"
  "test_error_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_error_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
