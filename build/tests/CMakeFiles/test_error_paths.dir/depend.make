# Empty dependencies file for test_error_paths.
# This may be replaced when dependencies are built.
