file(REMOVE_RECURSE
  "CMakeFiles/test_bank_policy.dir/test_bank_policy.cc.o"
  "CMakeFiles/test_bank_policy.dir/test_bank_policy.cc.o.d"
  "test_bank_policy"
  "test_bank_policy.pdb"
  "test_bank_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bank_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
