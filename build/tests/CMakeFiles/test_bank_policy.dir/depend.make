# Empty dependencies file for test_bank_policy.
# This may be replaced when dependencies are built.
