file(REMOVE_RECURSE
  "CMakeFiles/test_realloc.dir/test_realloc.cc.o"
  "CMakeFiles/test_realloc.dir/test_realloc.cc.o.d"
  "test_realloc"
  "test_realloc.pdb"
  "test_realloc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_realloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
