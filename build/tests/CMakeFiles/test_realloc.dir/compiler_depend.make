# Empty compiler generated dependencies file for test_realloc.
# This may be replaced when dependencies are built.
