# Empty dependencies file for test_sim_os.
# This may be replaced when dependencies are built.
