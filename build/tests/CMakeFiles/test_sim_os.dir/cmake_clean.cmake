file(REMOVE_RECURSE
  "CMakeFiles/test_sim_os.dir/test_sim_os.cc.o"
  "CMakeFiles/test_sim_os.dir/test_sim_os.cc.o.d"
  "test_sim_os"
  "test_sim_os.pdb"
  "test_sim_os[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
