# Empty dependencies file for test_spatial_pq.
# This may be replaced when dependencies are built.
