file(REMOVE_RECURSE
  "CMakeFiles/test_spatial_pq.dir/test_spatial_pq.cc.o"
  "CMakeFiles/test_spatial_pq.dir/test_spatial_pq.cc.o.d"
  "test_spatial_pq"
  "test_spatial_pq.pdb"
  "test_spatial_pq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spatial_pq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
