# Empty compiler generated dependencies file for affalloc_sweep.
# This may be replaced when dependencies are built.
