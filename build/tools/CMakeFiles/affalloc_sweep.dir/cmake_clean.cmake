file(REMOVE_RECURSE
  "CMakeFiles/affalloc_sweep.dir/affalloc_sweep.cc.o"
  "CMakeFiles/affalloc_sweep.dir/affalloc_sweep.cc.o.d"
  "affalloc_sweep"
  "affalloc_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affalloc_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
