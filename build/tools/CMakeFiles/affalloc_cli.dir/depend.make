# Empty dependencies file for affalloc_cli.
# This may be replaced when dependencies are built.
