file(REMOVE_RECURSE
  "CMakeFiles/affalloc_cli.dir/affalloc_cli.cc.o"
  "CMakeFiles/affalloc_cli.dir/affalloc_cli.cc.o.d"
  "affalloc_cli"
  "affalloc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affalloc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
