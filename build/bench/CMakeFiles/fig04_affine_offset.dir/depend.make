# Empty dependencies file for fig04_affine_offset.
# This may be replaced when dependencies are built.
