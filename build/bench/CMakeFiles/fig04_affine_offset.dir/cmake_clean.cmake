file(REMOVE_RECURSE
  "CMakeFiles/fig04_affine_offset.dir/fig04_affine_offset.cc.o"
  "CMakeFiles/fig04_affine_offset.dir/fig04_affine_offset.cc.o.d"
  "fig04_affine_offset"
  "fig04_affine_offset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_affine_offset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
