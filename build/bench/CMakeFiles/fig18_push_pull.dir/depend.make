# Empty dependencies file for fig18_push_pull.
# This may be replaced when dependencies are built.
