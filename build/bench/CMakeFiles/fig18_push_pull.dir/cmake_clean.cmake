file(REMOVE_RECURSE
  "CMakeFiles/fig18_push_pull.dir/fig18_push_pull.cc.o"
  "CMakeFiles/fig18_push_pull.dir/fig18_push_pull.cc.o.d"
  "fig18_push_pull"
  "fig18_push_pull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_push_pull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
