file(REMOVE_RECURSE
  "CMakeFiles/fig06_irregular_potential.dir/fig06_irregular_potential.cc.o"
  "CMakeFiles/fig06_irregular_potential.dir/fig06_irregular_potential.cc.o.d"
  "fig06_irregular_potential"
  "fig06_irregular_potential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_irregular_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
