# Empty dependencies file for fig06_irregular_potential.
# This may be replaced when dependencies are built.
