# Empty dependencies file for fig19_degree.
# This may be replaced when dependencies are built.
