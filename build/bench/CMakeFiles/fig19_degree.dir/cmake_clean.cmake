file(REMOVE_RECURSE
  "CMakeFiles/fig19_degree.dir/fig19_degree.cc.o"
  "CMakeFiles/fig19_degree.dir/fig19_degree.cc.o.d"
  "fig19_degree"
  "fig19_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
