# Empty compiler generated dependencies file for fig17_bfs_iters.
# This may be replaced when dependencies are built.
