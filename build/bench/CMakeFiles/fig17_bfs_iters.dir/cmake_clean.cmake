file(REMOVE_RECURSE
  "CMakeFiles/fig17_bfs_iters.dir/fig17_bfs_iters.cc.o"
  "CMakeFiles/fig17_bfs_iters.dir/fig17_bfs_iters.cc.o.d"
  "fig17_bfs_iters"
  "fig17_bfs_iters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_bfs_iters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
