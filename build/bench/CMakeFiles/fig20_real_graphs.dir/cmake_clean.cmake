file(REMOVE_RECURSE
  "CMakeFiles/fig20_real_graphs.dir/fig20_real_graphs.cc.o"
  "CMakeFiles/fig20_real_graphs.dir/fig20_real_graphs.cc.o.d"
  "fig20_real_graphs"
  "fig20_real_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_real_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
