# Empty dependencies file for fig20_real_graphs.
# This may be replaced when dependencies are built.
