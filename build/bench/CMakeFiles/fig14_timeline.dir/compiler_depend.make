# Empty compiler generated dependencies file for fig14_timeline.
# This may be replaced when dependencies are built.
