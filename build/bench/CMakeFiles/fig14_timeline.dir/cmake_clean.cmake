file(REMOVE_RECURSE
  "CMakeFiles/fig14_timeline.dir/fig14_timeline.cc.o"
  "CMakeFiles/fig14_timeline.dir/fig14_timeline.cc.o.d"
  "fig14_timeline"
  "fig14_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
