# Empty compiler generated dependencies file for ablation_numbering.
# This may be replaced when dependencies are built.
