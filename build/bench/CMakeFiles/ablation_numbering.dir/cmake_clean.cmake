file(REMOVE_RECURSE
  "CMakeFiles/ablation_numbering.dir/ablation_numbering.cc.o"
  "CMakeFiles/ablation_numbering.dir/ablation_numbering.cc.o.d"
  "ablation_numbering"
  "ablation_numbering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_numbering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
