# Empty compiler generated dependencies file for ablation_codesign.
# This may be replaced when dependencies are built.
