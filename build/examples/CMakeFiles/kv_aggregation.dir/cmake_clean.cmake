file(REMOVE_RECURSE
  "CMakeFiles/kv_aggregation.dir/kv_aggregation.cpp.o"
  "CMakeFiles/kv_aggregation.dir/kv_aggregation.cpp.o.d"
  "kv_aggregation"
  "kv_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
