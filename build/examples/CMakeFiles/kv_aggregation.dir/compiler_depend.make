# Empty compiler generated dependencies file for kv_aggregation.
# This may be replaced when dependencies are built.
