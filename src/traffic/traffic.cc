#include "traffic/traffic.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/log.hh"
#include "sim/rng.hh"
#include "workloads/run_context.hh"

namespace affalloc::traffic
{

namespace
{

/** Whether the scheduler asked background agents to wrap up. */
bool
drainRequested(const workloads::RunContext &ctx)
{
    return ctx.config.stopRequested && *ctx.config.stopRequested;
}

/** Strictly parse a non-negative real; SIM_FATAL on garbage. */
double
parseReal(const char *flag, const std::string &text)
{
    if (text.empty())
        SIM_FATAL("traffic", "%s needs a value", flag);
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size())
        SIM_FATAL("traffic", "%s expects a number, got '%s'", flag,
                  text.c_str());
    if (v < 0.0)
        SIM_FATAL("traffic", "%s must be >= 0, got %g", flag, v);
    return v;
}

} // namespace

tenant::RunnerFn
makeHostAgent(const HostAgentParams &p)
{
    return [p](workloads::RunContext &ctx, std::uint64_t seed,
               bool quick) -> workloads::RunResult {
        const sim::MachineConfig &mc = ctx.machine.config();
        const std::uint64_t bytes = std::max<std::uint64_t>(
            mc.lineSize, quick ? p.footprintBytes / 4 : p.footprintBytes);
        void *buf =
            ctx.allocator.allocPlain(static_cast<std::size_t>(bytes));
        const Addr base = ctx.machine.addressSpace().simAddrOf(buf);
        const std::uint64_t lines = std::max<std::uint64_t>(
            1, bytes / mc.lineSize);
        const CoreId core = p.index % mc.numTiles();
        const std::uint32_t cap = std::max<std::uint32_t>(
            1, quick ? p.maxEpochs / 16 : p.maxEpochs);

        Rng rng(seed);
        std::uint64_t cursor = 0;
        for (std::uint32_t e = 0; e < cap && !drainRequested(ctx); ++e) {
            // Plain cacheline traffic tolerates deferral: the agent
            // never reads latencies back, so its epochs shard-replay
            // under --sim-threads like the bulk kernels do.
            ctx.machine.beginEpoch(/*deferrable=*/true);
            for (std::uint32_t op = 0; op < p.opsPerEpoch; ++op) {
                const bool strided = rng.chance(p.strideFraction);
                const bool write = rng.chance(p.writeFraction);
                const std::uint64_t line =
                    strided ? (cursor++ % lines) : rng.below(lines);
                ctx.machine.coreAccess(
                    core, base + line * mc.lineSize, 8,
                    write ? AccessType::write : AccessType::read,
                    /*prefetch_friendly=*/strided);
            }
            ctx.machine.endEpoch(0.0, "host");
        }
        workloads::RunResult res = ctx.finish("host_agent", true);
        res.cls = AgentClass::host;
        return res;
    };
}

tenant::RunnerFn
makeIoStream(const IoStreamParams &p)
{
    return [p](workloads::RunContext &ctx, std::uint64_t seed,
               bool quick) -> workloads::RunResult {
        const sim::MachineConfig &mc = ctx.machine.config();
        const std::uint64_t bytes = std::max<std::uint64_t>(
            mc.lineSize, quick ? p.windowBytes / 4 : p.windowBytes);
        void *buf =
            ctx.allocator.allocPlain(static_cast<std::size_t>(bytes));
        const Addr base = ctx.machine.addressSpace().simAddrOf(buf);
        const std::uint64_t lines = std::max<std::uint64_t>(
            1, bytes / mc.lineSize);
        // NIC/DMA engines sit at the mesh corners, like the memory
        // controllers.
        const TileId corners[4] = {0, mc.meshX - 1,
                                   mc.numTiles() - mc.meshX,
                                   mc.numTiles() - 1};
        const TileId ingress = corners[p.index % 4];
        const std::uint32_t cap = std::max<std::uint32_t>(
            1, quick ? p.maxEpochs / 16 : p.maxEpochs);

        Rng rng(seed);
        for (std::uint32_t e = 0; e < cap && !drainRequested(ctx); ++e) {
            // I/O epochs stay classic (ioWrite has no deferred twin).
            ctx.machine.beginEpoch(/*deferrable=*/false);
            // One DMA burst per epoch: a seeded start, then
            // consecutive lines — the sequential pattern real
            // descriptor rings produce.
            std::uint64_t line = rng.below(lines);
            for (std::uint32_t k = 0; k < p.linesPerEpoch; ++k) {
                ctx.machine.ioWrite(ingress,
                                    base + (line % lines) * mc.lineSize,
                                    mc.lineSize);
                ++line;
            }
            ctx.machine.endEpoch(0.0, "io");
        }
        workloads::RunResult res = ctx.finish("io_stream", true);
        res.cls = AgentClass::io;
        return res;
    };
}

std::vector<tenant::TenantSpec>
makeBackgroundSpecs(const TrafficConfig &cfg)
{
    std::vector<tenant::TenantSpec> specs;
    for (std::uint32_t i = 0; i < cfg.hostAgents; ++i) {
        HostAgentParams p;
        p.index = i;
        tenant::TenantSpec s;
        s.workload = "host_agent";
        s.cls = AgentClass::host;
        s.runner = makeHostAgent(p);
        specs.push_back(std::move(s));
    }
    for (std::uint32_t i = 0; i < cfg.ioStreams; ++i) {
        IoStreamParams p;
        p.index = i;
        tenant::TenantSpec s;
        s.workload = "io_stream";
        s.cls = AgentClass::io;
        s.runner = makeIoStream(p);
        specs.push_back(std::move(s));
    }
    return specs;
}

std::uint32_t
parseAgentCount(const char *flag, const std::string &text,
                std::uint32_t max)
{
    if (text.empty())
        SIM_FATAL("traffic", "%s needs a value", flag);
    if (text.size() > 9)
        SIM_FATAL("traffic", "%s value '%s' is out of range (1..%u)", flag,
                  text.c_str(), max);
    std::uint64_t v = 0;
    for (const char ch : text) {
        if (ch < '0' || ch > '9')
            SIM_FATAL("traffic",
                      "%s expects a positive integer, got '%s'", flag,
                      text.c_str());
        v = v * 10 + static_cast<std::uint64_t>(ch - '0');
    }
    if (v == 0)
        SIM_FATAL("traffic", "%s must be >= 1 (omit the flag for none)",
                  flag);
    if (v > max)
        SIM_FATAL("traffic", "%s value %llu exceeds the limit of %u "
                  "(one agent per mesh tile at most)", flag,
                  (unsigned long long)v, max);
    return static_cast<std::uint32_t>(v);
}

sim::LlcIoPolicy
parseLlcPolicy(const std::string &text, std::uint32_t *io_ways,
               std::uint32_t l3_assoc)
{
    if (text == "ddio")
        return sim::LlcIoPolicy::ddio;
    if (text == "bypass")
        return sim::LlcIoPolicy::bypass;
    if (text == "way" || text.rfind("way:", 0) == 0) {
        if (text.size() > 4) {
            *io_ways = parseAgentCount("--llc-policy way share",
                                       text.substr(4), l3_assoc - 1);
        }
        if (*io_ways == 0 || *io_ways >= l3_assoc)
            SIM_FATAL("traffic", "--llc-policy=way:K needs K in [1, %u), "
                      "got %u", l3_assoc, *io_ways);
        return sim::LlcIoPolicy::wayRestrict;
    }
    SIM_FATAL("traffic", "unknown LLC I/O policy '%s' (ddio, way[:K], "
              "bypass)", text.c_str());
    return sim::LlcIoPolicy::ddio;
}

sim::ClassArbConfig
parseClassBw(const std::string &text)
{
    sim::ClassArbConfig arb;
    if (text == "none")
        return arb;
    if (text == "prio" || text.rfind("prio:", 0) == 0) {
        arb.mode = sim::ClassArbMode::priority;
        if (text.size() > 5)
            arb.yieldPenalty =
                parseReal("--class-bw=prio yield penalty",
                          text.substr(5));
        return arb;
    }
    if (text.rfind("part:", 0) == 0) {
        arb.mode = sim::ClassArbMode::partition;
        const std::string rest = text.substr(5);
        std::vector<std::string> pieces;
        std::size_t pos = 0;
        while (true) {
            const std::size_t comma = rest.find(',', pos);
            pieces.push_back(rest.substr(
                pos, comma == std::string::npos ? std::string::npos
                                                : comma - pos));
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
        if (pieces.size() != static_cast<std::size_t>(numAgentClasses))
            SIM_FATAL("traffic", "--class-bw=part needs exactly %d "
                      "comma-separated shares (ndc,host,io), got '%s'",
                      numAgentClasses, text.c_str());
        for (int idx = 0; idx < numAgentClasses; ++idx) {
            const double share =
                parseReal("--class-bw=part share", pieces[idx]);
            if (share <= 0.0)
                SIM_FATAL("traffic", "--class-bw=part shares must be "
                          "positive, got %g for %s", share,
                          agentClassName(static_cast<AgentClass>(idx)));
            arb.share[idx] = share;
        }
        return arb;
    }
    SIM_FATAL("traffic", "unknown class bandwidth spec '%s' (none, "
              "part:NDC,HOST,IO, prio[:PENALTY])", text.c_str());
    return arb;
}

} // namespace affalloc::traffic
