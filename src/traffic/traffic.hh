/**
 * @file
 * Heterogeneous background traffic classes for datacenter co-location
 * runs: host-core agents issuing ordinary cacheline read/write streams
 * (CHoNDA-style concurrent host traffic) and DMA/NIC-style I/O
 * injectors whose writes allocate straight into L3 (DDIO/A4-style).
 * Both are first-class scheduler participants — regular TenantSpecs
 * with an explicit runner and a non-ndc AgentClass — so they get the
 * same deterministic quantum interleaving, RNG substreams, and exact
 * stats attribution as NDC tenants. The flag parsers for the
 * interference CLI surface live here too, following the
 * applySimThreads contract: garbage dies at parse time with a clear
 * message, never mid-run.
 */

#ifndef AFFALLOC_TRAFFIC_TRAFFIC_HH
#define AFFALLOC_TRAFFIC_TRAFFIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "tenant/workload_registry.hh"

namespace affalloc::traffic
{

/** One host-core background agent (AgentClass::host). */
struct HostAgentParams
{
    /** Agent index; picks the issuing core (index % tiles). */
    std::uint32_t index = 0;
    /** Working-set bytes the agent cycles over (quick: quartered). */
    std::uint64_t footprintBytes = 4ull << 20;
    /** Memory instructions issued per epoch. */
    std::uint32_t opsPerEpoch = 2048;
    /** Fraction of ops that are writes. */
    double writeFraction = 0.3;
    /** Fraction of ops that are sequential/strided (prefetchable). */
    double strideFraction = 0.5;
    /** Epoch cap when no drain signal arrives (quick: divided by 16). */
    std::uint32_t maxEpochs = 4096;
};

/** One DMA/NIC-style I/O injector (AgentClass::io). */
struct IoStreamParams
{
    /** Stream index; picks the ingress corner tile (index % 4). */
    std::uint32_t index = 0;
    /** DMA window bytes the device cycles over (quick: quartered). */
    std::uint64_t windowBytes = 8ull << 20;
    /** Cache lines written per epoch. */
    std::uint32_t linesPerEpoch = 512;
    /** Epoch cap when no drain signal arrives (quick: divided by 16). */
    std::uint32_t maxEpochs = 4096;
};

/**
 * Runner for a host-core agent: allocates its footprint from the
 * tenant arena, then issues seeded read/write cacheline streams
 * through the classic TLB/L1/L2/L3/DRAM path (no offload) until the
 * scheduler's drain signal (RunConfig::stopRequested) or the epoch
 * cap. The returned RunResult carries AgentClass::host.
 */
tenant::RunnerFn makeHostAgent(const HostAgentParams &p);

/**
 * Runner for an I/O injector: allocates its DMA window, then writes
 * seeded line bursts from a mesh-corner ingress tile via
 * Machine::ioWrite — landing in L3 or DRAM per the configured
 * LlcIoPolicy. The returned RunResult carries AgentClass::io.
 */
tenant::RunnerFn makeIoStream(const IoStreamParams &p);

/** Background interference requested on the command line. */
struct TrafficConfig
{
    /** Concurrent host-core agents (0 = none). */
    std::uint32_t hostAgents = 0;
    /** Concurrent I/O injector streams (0 = none). */
    std::uint32_t ioStreams = 0;

    bool any() const { return hostAgents > 0 || ioStreams > 0; }
};

/**
 * Expand @p cfg into background TenantSpecs (runner + class set) that
 * can be appended to a closed co-run's spec list or admitted as
 * open-system jobs. Workload names are "host_agent" / "io_stream".
 */
std::vector<tenant::TenantSpec> makeBackgroundSpecs(const TrafficConfig &cfg);

/**
 * Parse an agent-count flag value (--host-agents / --io-streams):
 * strict decimal, rejecting empty strings, garbage, zero (omit the
 * flag to request none), and counts beyond @p max (the mesh size —
 * one agent per tile at most). SIM_FATALs on violation, naming
 * @p flag in the message.
 */
std::uint32_t parseAgentCount(const char *flag, const std::string &text,
                              std::uint32_t max);

/**
 * Parse --llc-policy: "ddio" | "way[:K]" | "bypass". K (default:
 * *io_ways untouched) is the way-restricted allocation share and must
 * sit in [1, l3_assoc). SIM_FATALs on violation.
 */
sim::LlcIoPolicy parseLlcPolicy(const std::string &text,
                                std::uint32_t *io_ways,
                                std::uint32_t l3_assoc);

/**
 * Parse --class-bw: "none" | "part:NDC,HOST,IO" | "prio[:PENALTY]".
 * Shares must be positive reals; the penalty non-negative. SIM_FATALs
 * on violation.
 */
sim::ClassArbConfig parseClassBw(const std::string &text);

} // namespace affalloc::traffic

#endif // AFFALLOC_TRAFFIC_TRAFFIC_HH
