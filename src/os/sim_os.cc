#include "os/sim_os.hh"

#include <algorithm>

#include "sim/log.hh"

namespace affalloc::os
{

namespace
{

/** Physical base of the page-at-bank backing region. */
constexpr Addr largePhysBase =
    mem::poolPhysBase + Addr(mem::numInterleavePools + 1) * mem::terabyte;

/** Heap random-policy physical page span (64 M pages = 256 GB). */
constexpr Addr heapRandomSpanPages = Addr(1) << 26;

} // namespace

SimOS::SimOS(const sim::MachineConfig &cfg, PagePolicy heap_policy,
             std::uint64_t seed)
    : cfg_(cfg), heapPolicy_(heap_policy), rng_(seed),
      faultPlan_(cfg.faults, cfg.meshX, cfg.meshY),
      iot_(cfg.iotEntries),
      nextHeapPpage_(mem::pageOf(mem::heapPhysBase)),
      nextBankPpage_(cfg.numBanks())
{
    cfg_.validate();
    pageTable_.setReferenceMode(cfg.referencePaths);
    iot_.setReferenceMode(cfg.referencePaths);
    arenas_.resize(1);
    arenas_[0].iotIdx.fill(-1);
    for (BankId b = 0; b < cfg_.numBanks(); ++b)
        nextBankPpage_[b] = b;
}

std::uint32_t
SimOS::createArena()
{
    const Addr next = Addr(arenas_.size()) * mem::arenaStride;
    if (next + mem::arenaStride > mem::terabyte) {
        SIM_FATAL("os", "createArena: %zu arenas exhaust the 1 TB pool "
                  "segments (%llu-byte slices)",
                  arenas_.size() + 1,
                  (unsigned long long)mem::arenaStride);
    }
    arenas_.emplace_back();
    arenas_.back().iotIdx.fill(-1);
    return static_cast<std::uint32_t>(arenas_.size() - 1);
}

std::uint32_t
SimOS::arenaOfPoolAddr(Addr vaddr) const
{
    if (vaddr < mem::poolVirtBase ||
        vaddr >= mem::poolVirtBase +
                     Addr(mem::numInterleavePools) * mem::terabyte) {
        SIM_PANIC("os", "arenaOfPoolAddr: %llx outside the pool segments",
                  (unsigned long long)vaddr);
    }
    const Addr in_pool = (vaddr - mem::poolVirtBase) % mem::terabyte;
    return static_cast<std::uint32_t>(in_pool / mem::arenaStride);
}

Addr
SimOS::heapAlloc(std::size_t bytes, std::size_t align)
{
    if (bytes == 0)
        SIM_FATAL("os", "heapAlloc of zero bytes");
    if (align == 0 || (align & (align - 1)) != 0)
        SIM_FATAL("os", "heapAlloc alignment must be a power of two");
    heapBrk_ = (heapBrk_ + align - 1) & ~(Addr(align) - 1);
    const Addr vaddr = mem::heapVirtBase + heapBrk_;
    heapBrk_ += bytes;
    // Back any new pages eagerly.
    while (heapBacked_ < heapBrk_) {
        backHeapPage(mem::pageOf(mem::heapVirtBase + heapBacked_));
        heapBacked_ += mem::pageSize;
    }
    return vaddr;
}

void
SimOS::backHeapPage(Addr vpage)
{
    Addr ppage;
    if (heapPolicy_ == PagePolicy::linear) {
        ppage = nextHeapPpage_++;
    } else {
        const Addr base = mem::pageOf(mem::heapPhysBase);
        do {
            ppage = base + rng_.below(heapRandomSpanPages);
        } while (!usedHeapPpages_.insert(ppage).second);
    }
    pageTable_.map(vpage, ppage);
    ++backedPages_;
}

Addr
SimOS::poolVirtBaseOf(int k, std::uint32_t arena) const
{
    if (k < 0 || k >= mem::numInterleavePools)
        SIM_PANIC("os", "pool index %d out of range", k);
    if (arena >= arenas_.size())
        SIM_PANIC("os", "arena %u out of range (%zu exist)", arena,
                  arenas_.size());
    return mem::poolVirtBase + Addr(k) * mem::terabyte +
           Addr(arena) * mem::arenaStride;
}

Addr
SimOS::poolBrkOf(int k, std::uint32_t arena) const
{
    if (k < 0 || k >= mem::numInterleavePools)
        SIM_PANIC("os", "pool index %d out of range", k);
    if (arena >= arenas_.size())
        SIM_PANIC("os", "arena %u out of range (%zu exist)", arena,
                  arenas_.size());
    return arenas_[arena].brk[k];
}

Addr
SimOS::expandPool(int k, std::uint32_t arena, Addr min_bytes)
{
    if (k < 0 || k >= mem::numInterleavePools)
        SIM_PANIC("os", "pool index %d out of range", k);
    if (arena >= arenas_.size())
        SIM_PANIC("os", "arena %u out of range (%zu exist)", arena,
                  arenas_.size());
    const Addr new_brk = mem::roundUpPage(min_bytes);
    // With a single arena the slice is the whole legacy 1 TB segment;
    // with several, growing past the slice would alias the next
    // arena's pages.
    if (arenas_.size() > 1 && new_brk > mem::arenaStride) {
        SIM_FATAL("os", "pool %d arena %u: %llu bytes exceed the "
                  "%llu-byte arena slice",
                  k, arena, (unsigned long long)new_brk,
                  (unsigned long long)mem::arenaStride);
    }
    Addr &brk = arenas_[arena].brk[k];
    if (new_brk <= brk)
        return brk;

    const Addr vbase = poolVirtBaseOf(k, arena);
    const Addr pbase = mem::poolPhysBase + Addr(k) * mem::terabyte +
                       Addr(arena) * mem::arenaStride;
    for (Addr off = brk; off < new_brk; off += mem::pageSize) {
        pageTable_.map(mem::pageOf(vbase + off), mem::pageOf(pbase + off));
        ++backedPages_;
    }
    brk = new_brk;

    // Keep the (pool, arena) slice covered by exactly one IOT entry:
    // install on the first expansion, grow afterwards (contiguous
    // physical backing is what makes this possible; see §4.1). Bank
    // lookup is entry-start-relative, so each arena's offset 0 is
    // homed at bank 0 like the legacy pool base.
    std::ptrdiff_t &idx = arenas_[arena].iotIdx[k];
    if (idx < 0) {
        idx = static_cast<std::ptrdiff_t>(
            iot_.insert(pbase, pbase + brk, mem::poolInterleave(k)));
    } else {
        iot_.grow(static_cast<std::size_t>(idx), pbase + brk);
    }
    return brk;
}

Addr
SimOS::nextPagePhysAtBank(BankId bank)
{
    if (bank >= cfg_.numBanks())
        SIM_PANIC("os", "bank %u out of range", bank);
    const Addr idx = nextBankPpage_[bank];
    nextBankPpage_[bank] += cfg_.numBanks();
    largePhysHighWater_ = std::max(largePhysHighWater_, idx + 1);
    return mem::pageOf(largePhysBase) + idx;
}

Addr
SimOS::allocPagesAtBanks(const std::vector<BankId> &banks)
{
    if (banks.empty())
        SIM_FATAL("os", "allocPagesAtBanks with no pages");
    const Addr vbase =
        mem::largeVirtBase + largeBrkPages_ * mem::pageSize;
    for (std::size_t i = 0; i < banks.size(); ++i) {
        const Addr ppage = nextPagePhysAtBank(banks[i]);
        pageTable_.map(mem::pageOf(vbase) + i, ppage);
        ++backedPages_;
    }
    largeBrkPages_ += banks.size();

    // The whole region is one 4 kB-interleaved IOT entry (footnote 4:
    // large interleavings are tracked as 4 kB in the IOT).
    const Addr end = largePhysBase + largePhysHighWater_ * mem::pageSize;
    if (!largeIotInstalled_) {
        largeIotIdx_ = static_cast<std::ptrdiff_t>(
            iot_.insert(largePhysBase, end, mem::pageSize));
        largeIotInstalled_ = true;
    } else {
        iot_.grow(static_cast<std::size_t>(largeIotIdx_), end);
    }
    return vbase;
}

Topology
SimOS::topology() const
{
    Topology t;
    t.meshX = cfg_.meshX;
    t.meshY = cfg_.meshY;
    t.numBanks = cfg_.numBanks();
    t.lineSize = cfg_.lineSize;
    for (int k = 0; k < mem::numInterleavePools; ++k)
        t.poolInterleavings.push_back(mem::poolInterleave(k));
    if (faultPlan_.numOfflineBanks() > 0)
        t.liveBanks = faultPlan_.liveBankMask();
    return t;
}

} // namespace affalloc::os
