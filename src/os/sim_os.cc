#include "os/sim_os.hh"

#include <algorithm>

#include "sim/log.hh"

namespace affalloc::os
{

namespace
{

/** Physical base of the page-at-bank backing region. */
constexpr Addr largePhysBase =
    mem::poolPhysBase + Addr(mem::numInterleavePools + 1) * mem::terabyte;

/** Heap random-policy physical page span (64 M pages = 256 GB). */
constexpr Addr heapRandomSpanPages = Addr(1) << 26;

} // namespace

SimOS::SimOS(const sim::MachineConfig &cfg, PagePolicy heap_policy,
             std::uint64_t seed)
    : cfg_(cfg), heapPolicy_(heap_policy), rng_(seed),
      faultPlan_(cfg.faults, cfg.meshX, cfg.meshY),
      iot_(cfg.iotEntries),
      nextHeapPpage_(mem::pageOf(mem::heapPhysBase)),
      nextBankPpage_(cfg.numBanks())
{
    cfg_.validate();
    pageTable_.setReferenceMode(cfg.referencePaths);
    iot_.setReferenceMode(cfg.referencePaths);
    poolIotIdx_.fill(-1);
    for (BankId b = 0; b < cfg_.numBanks(); ++b)
        nextBankPpage_[b] = b;
}

Addr
SimOS::heapAlloc(std::size_t bytes, std::size_t align)
{
    if (bytes == 0)
        SIM_FATAL("os", "heapAlloc of zero bytes");
    if (align == 0 || (align & (align - 1)) != 0)
        SIM_FATAL("os", "heapAlloc alignment must be a power of two");
    heapBrk_ = (heapBrk_ + align - 1) & ~(Addr(align) - 1);
    const Addr vaddr = mem::heapVirtBase + heapBrk_;
    heapBrk_ += bytes;
    // Back any new pages eagerly.
    while (heapBacked_ < heapBrk_) {
        backHeapPage(mem::pageOf(mem::heapVirtBase + heapBacked_));
        heapBacked_ += mem::pageSize;
    }
    return vaddr;
}

void
SimOS::backHeapPage(Addr vpage)
{
    Addr ppage;
    if (heapPolicy_ == PagePolicy::linear) {
        ppage = nextHeapPpage_++;
    } else {
        const Addr base = mem::pageOf(mem::heapPhysBase);
        do {
            ppage = base + rng_.below(heapRandomSpanPages);
        } while (!usedHeapPpages_.insert(ppage).second);
    }
    pageTable_.map(vpage, ppage);
    ++backedPages_;
}

Addr
SimOS::poolVirtBaseOf(int k) const
{
    if (k < 0 || k >= mem::numInterleavePools)
        SIM_PANIC("os", "pool index %d out of range", k);
    return mem::poolVirtBase + Addr(k) * mem::terabyte;
}

Addr
SimOS::expandPool(int k, Addr min_bytes)
{
    if (k < 0 || k >= mem::numInterleavePools)
        SIM_PANIC("os", "pool index %d out of range", k);
    const Addr new_brk = mem::roundUpPage(min_bytes);
    Addr &brk = poolBrk_[k];
    if (new_brk <= brk)
        return brk;

    const Addr vbase = poolVirtBaseOf(k);
    const Addr pbase = mem::poolPhysBase + Addr(k) * mem::terabyte;
    for (Addr off = brk; off < new_brk; off += mem::pageSize) {
        pageTable_.map(mem::pageOf(vbase + off), mem::pageOf(pbase + off));
        ++backedPages_;
    }
    brk = new_brk;

    // Keep the pool covered by exactly one IOT entry: install on the
    // first expansion, grow afterwards (contiguous physical backing is
    // what makes this possible; see §4.1).
    if (poolIotIdx_[k] < 0) {
        poolIotIdx_[k] = static_cast<std::ptrdiff_t>(
            iot_.insert(pbase, pbase + brk, mem::poolInterleave(k)));
    } else {
        iot_.grow(static_cast<std::size_t>(poolIotIdx_[k]), pbase + brk);
    }
    return brk;
}

Addr
SimOS::nextPagePhysAtBank(BankId bank)
{
    if (bank >= cfg_.numBanks())
        SIM_PANIC("os", "bank %u out of range", bank);
    const Addr idx = nextBankPpage_[bank];
    nextBankPpage_[bank] += cfg_.numBanks();
    largePhysHighWater_ = std::max(largePhysHighWater_, idx + 1);
    return mem::pageOf(largePhysBase) + idx;
}

Addr
SimOS::allocPagesAtBanks(const std::vector<BankId> &banks)
{
    if (banks.empty())
        SIM_FATAL("os", "allocPagesAtBanks with no pages");
    const Addr vbase =
        mem::largeVirtBase + largeBrkPages_ * mem::pageSize;
    for (std::size_t i = 0; i < banks.size(); ++i) {
        const Addr ppage = nextPagePhysAtBank(banks[i]);
        pageTable_.map(mem::pageOf(vbase) + i, ppage);
        ++backedPages_;
    }
    largeBrkPages_ += banks.size();

    // The whole region is one 4 kB-interleaved IOT entry (footnote 4:
    // large interleavings are tracked as 4 kB in the IOT).
    const Addr end = largePhysBase + largePhysHighWater_ * mem::pageSize;
    if (!largeIotInstalled_) {
        largeIotIdx_ = static_cast<std::ptrdiff_t>(
            iot_.insert(largePhysBase, end, mem::pageSize));
        largeIotInstalled_ = true;
    } else {
        iot_.grow(static_cast<std::size_t>(largeIotIdx_), end);
    }
    return vbase;
}

Topology
SimOS::topology() const
{
    Topology t;
    t.meshX = cfg_.meshX;
    t.meshY = cfg_.meshY;
    t.numBanks = cfg_.numBanks();
    t.lineSize = cfg_.lineSize;
    for (int k = 0; k < mem::numInterleavePools; ++k)
        t.poolInterleavings.push_back(mem::poolInterleave(k));
    if (faultPlan_.numOfflineBanks() > 0)
        t.liveBanks = faultPlan_.liveBankMask();
    return t;
}

} // namespace affalloc::os
