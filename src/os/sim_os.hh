/**
 * @file
 * The simulated operating system layer. Responsibilities match §3.3 /
 * §4.1 of the paper exactly:
 *
 *  - reserve one virtual segment per power-of-two interleave pool
 *    (64 B .. 4 kB) at program start;
 *  - back pool virtual pages with *contiguous* physical pages on
 *    demand (direct-segment style), so one IOT entry covers a pool;
 *  - support large page-aligned interleavings (> 4 kB) by handing out
 *    virtual pages remapped onto 4 kB-interleaved physical pages at a
 *    requested bank (footnote 4);
 *  - manage a conventional heap (linear or randomized page placement)
 *    for baseline allocations;
 *  - program the interleave override table;
 *  - expose the topology to the allocator runtime (and nothing else:
 *    the OS stays oblivious to data structures and load balance).
 */

#ifndef AFFALLOC_OS_SIM_OS_HH
#define AFFALLOC_OS_SIM_OS_HH

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "mem/address.hh"
#include "mem/iot.hh"
#include "mem/page_table.hh"
#include "sim/config.hh"
#include "sim/fault.hh"
#include "sim/rng.hh"

namespace affalloc::os
{

/** Heap physical page placement policy (Fig. 4's Random config). */
enum class PagePolicy : std::uint8_t
{
    /** Virtual heap pages get consecutive physical pages. */
    linear,
    /** Each heap page maps to a pseudo-random physical page. */
    random
};

/** Topology information the OS exports to the allocator runtime. */
struct Topology
{
    std::uint32_t meshX = 0;
    std::uint32_t meshY = 0;
    std::uint32_t numBanks = 0;
    std::uint32_t lineSize = 0;
    /** Pool interleavings available on this machine, ascending. */
    std::vector<std::uint32_t> poolInterleavings;
    /**
     * Live-bank mask (1 = bank alive), one entry per bank. Empty when
     * the machine is fully healthy, so fault-oblivious consumers pay
     * nothing.
     */
    std::vector<std::uint8_t> liveBanks;
};

/**
 * The OS. Owns the page table and the IOT; everything above (runtime)
 * talks to it through brk-style requests, everything below (memory
 * system) through translate()/IOT lookups.
 */
class SimOS
{
  public:
    /** Boot: reserve pool segments and program nothing yet. */
    explicit SimOS(const sim::MachineConfig &cfg,
                   PagePolicy heap_policy = PagePolicy::linear,
                   std::uint64_t seed = 1);

    SimOS(const SimOS &) = delete;
    SimOS &operator=(const SimOS &) = delete;

    // ------------------------------------------------------------- heap
    /**
     * Allocate @p bytes from the conventional heap at @p align
     * alignment, backing pages immediately. Returns the simulated
     * virtual address.
     */
    Addr heapAlloc(std::size_t bytes, std::size_t align = 64);

    // ------------------------------------------------------------ pools
    /** Virtual base of interleave pool @p k (0..6) in arena 0. */
    Addr poolVirtBaseOf(int k) const { return poolVirtBaseOf(k, 0); }
    /** Virtual base of pool @p k inside @p arena. */
    Addr poolVirtBaseOf(int k, std::uint32_t arena) const;
    /** Current break (bytes backed) of pool @p k in arena 0. */
    Addr poolBrkOf(int k) const { return poolBrkOf(k, 0); }
    /** Current break of pool @p k inside @p arena. */
    Addr poolBrkOf(int k, std::uint32_t arena) const;
    /**
     * Expand pool @p k so at least @p min_bytes bytes are backed;
     * physical backing stays contiguous and the pool's IOT entry is
     * grown (installed on first touch). Returns the new break.
     */
    Addr expandPool(int k, Addr min_bytes)
    {
        return expandPool(k, 0, min_bytes);
    }
    /** Expand pool @p k of @p arena (arena-relative @p min_bytes). */
    Addr expandPool(int k, std::uint32_t arena, Addr min_bytes);

    // ----------------------------------------------------------- arenas
    /**
     * Create a new allocation arena: one mem::arenaStride-byte slice
     * of every pool segment with its own brk and IOT entries, backed
     * contiguously like arena 0's. Arena 0 always exists and owns the
     * legacy offsets (base 0 of every pool), so a single-arena SimOS
     * is byte-identical to one that never heard of arenas. Tenants in
     * a co-run each own one arena. Returns the new arena's id.
     */
    std::uint32_t createArena();
    /** Number of arenas (>= 1; arena 0 is implicit). */
    std::uint32_t
    numArenas() const
    {
        return static_cast<std::uint32_t>(arenas_.size());
    }
    /**
     * Arena owning a pool-segment virtual address (SimCheck audits
     * use this to catch cross-tenant pointers). SIM_PANIC when
     * @p vaddr is not inside any pool segment.
     */
    std::uint32_t arenaOfPoolAddr(Addr vaddr) const;

    // -------------------------------------------- large interleavings
    /**
     * Allocate @p banks.size() consecutive virtual pages where page i
     * is homed at bank banks[i], implementing page-aligned
     * interleavings larger than 4 kB. Returns the first page's
     * virtual address.
     */
    Addr allocPagesAtBanks(const std::vector<BankId> &banks);

    // ---------------------------------------------------------- queries
    /** Topology description for the runtime. */
    Topology topology() const;
    /** The page table (memory system translates through this). */
    const mem::PageTable &pageTable() const { return pageTable_; }
    /** The IOT (cache controllers look banks up through this). */
    const mem::InterleaveOverrideTable &iot() const { return iot_; }
    /** Mutable IOT access for tests. */
    mem::InterleaveOverrideTable &iotForTest() { return iot_; }
    /** Total physical pages backed so far. */
    std::uint64_t backedPages() const { return backedPages_; }
    /** Virtual pages handed out from the page-at-bank region. */
    Addr largeBrkPages() const { return largeBrkPages_; }
    /** The machine's fault plan (the OS tracks hardware health). */
    sim::FaultPlan &faultPlan() { return faultPlan_; }
    const sim::FaultPlan &faultPlan() const { return faultPlan_; }

  private:
    /** Back one heap virtual page per the heap policy. */
    void backHeapPage(Addr vpage);
    /** Physical page index pool for the page-at-bank region. */
    Addr nextPagePhysAtBank(BankId bank);

    sim::MachineConfig cfg_;
    PagePolicy heapPolicy_;
    Rng rng_;
    sim::FaultPlan faultPlan_;

    mem::PageTable pageTable_;
    mem::InterleaveOverrideTable iot_;

    // Heap state.
    Addr heapBrk_ = 0;   // bytes allocated from heapVirtBase
    Addr heapBacked_ = 0; // bytes of heap VA backed so far
    Addr nextHeapPpage_;
    std::unordered_set<Addr> usedHeapPpages_; // random policy only

    // Pool state, per arena. Brks are arena-relative byte counts;
    // IOT indices are per (arena, pool) since each arena slice is its
    // own contiguous physical segment.
    struct ArenaPools
    {
        std::array<Addr, mem::numInterleavePools> brk{};
        std::array<std::ptrdiff_t, mem::numInterleavePools> iotIdx;
    };
    std::vector<ArenaPools> arenas_;

    // Page-at-bank region state.
    Addr largeBrkPages_ = 0; // virtual pages handed out
    std::vector<Addr> nextBankPpage_; // per-bank next phys page index
    bool largeIotInstalled_ = false;
    std::ptrdiff_t largeIotIdx_ = -1;
    Addr largePhysHighWater_ = 0; // phys pages covered by IOT entry

    std::uint64_t backedPages_ = 0;
};

} // namespace affalloc::os

#endif // AFFALLOC_OS_SIM_OS_HH
