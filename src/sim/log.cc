#include "sim/log.hh"

#include <atomic>
#include <cstdarg>
#include <vector>

namespace affalloc
{

namespace
{
// Atomic so parallel sweep workers can warn()/inform() while another
// thread toggles quiet mode; plain loads keep the hot no-op path free.
std::atomic<bool> quietMode{false};
} // namespace

namespace detail
{

std::string
formatMessage(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
diagnosticMessage(const char *kind, const char *component, const char *file,
                  int line, const char *expr, const std::string &msg)
{
    // Trim absolute build paths down to the repo-relative part.
    std::string path(file ? file : "?");
    const std::size_t src = path.rfind("src/");
    if (src != std::string::npos) {
        path.erase(0, src);
    } else {
        const std::size_t slash = path.rfind('/');
        if (slash != std::string::npos)
            path.erase(0, slash + 1);
    }
    std::string out(kind);
    out += ": [";
    out += component;
    out += "] ";
    out += path;
    out += ':';
    out += std::to_string(line);
    out += ": ";
    if (expr) {
        out += '(';
        out += expr;
        out += ") ";
    }
    out += msg;
    return out;
}

} // namespace detail

void
warn(const char *fmt, ...)
{
    if (quietMode)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "warn: ");
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (quietMode)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "info: ");
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    va_end(ap);
}

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

} // namespace affalloc
