/**
 * @file
 * Event-based energy model standing in for McPAT + CACTI. Energy is
 * per-event dynamic energy plus static power integrated over the run;
 * the paper reports only *relative* energy efficiency, which is
 * dominated by these event counts.
 */

#ifndef AFFALLOC_SIM_ENERGY_HH
#define AFFALLOC_SIM_ENERGY_HH

#include "sim/config.hh"
#include "sim/stats.hh"

namespace affalloc::sim
{

/** Per-event dynamic energies (picojoules) and chip static power. */
struct EnergyParams
{
    /** L1 data access. */
    double l1AccessPj = 10.0;
    /** Private L2 access. */
    double l2AccessPj = 30.0;
    /** Shared L3 bank access. */
    double l3AccessPj = 100.0;
    /** DRAM energy per byte transferred (~20 pJ/bit incl. PHY). */
    double dramPerBytePj = 160.0;
    /** NoC energy per flit-hop (32 B flit: link + router). */
    double nocFlitHopPj = 26.0;
    /** Scalar op on the wide OOO core (incl. frontend overheads). */
    double coreOpPj = 32.0;
    /** Scalar op on a near-stream compute thread (no LSQ/bpred). */
    double seOpPj = 6.0;
    /** Remote atomic RMW at an L3 bank. */
    double atomicPj = 60.0;
    /** Whole-chip static + clock power in watts. */
    double staticWatts = 24.0;
};

/**
 * Compute total energy in joules for a Stats delta under a machine
 * configuration.
 */
class EnergyModel
{
  public:
    /** Build the model for one machine and parameter set. */
    explicit EnergyModel(const MachineConfig &cfg,
                         EnergyParams params = EnergyParams{})
        : cfg_(cfg), params_(params)
    {}

    /** Total energy (joules) consumed by the events in @p stats. */
    double totalJoules(const Stats &stats) const;

    /** Dynamic-only energy (joules). */
    double dynamicJoules(const Stats &stats) const;

    /** Static-only energy (joules) over the stats' cycle count. */
    double staticJoules(const Stats &stats) const;

    /** The parameters in use. */
    const EnergyParams &params() const { return params_; }

  private:
    MachineConfig cfg_;
    EnergyParams params_;
};

} // namespace affalloc::sim

#endif // AFFALLOC_SIM_ENERGY_HH
