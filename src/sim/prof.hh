/**
 * @file
 * Host-side run telemetry: a low-overhead hierarchical phase profiler
 * for the simulator *itself* (where does wall-clock go inside a run —
 * epoch record vs. shard replay, allocator metadata vs. memory-system
 * charging), plus worker-pool utilization telemetry, run-level memory
 * telemetry (peak RSS, per-tenant arena footprints), named counters,
 * and a stderr progress heartbeat for long serving/chaos runs.
 *
 * Everything here observes the *host*, never the simulated machine:
 * the profiler reads std::chrono::steady_clock and /proc/self/status
 * and writes only to its own JSON file (and, for the heartbeat,
 * stderr), so enabling it is digest- and stdout-neutral by
 * construction. CI asserts this.
 *
 * Usage:
 *   - `PROF_SCOPE("alloc/malloc_aff");` opens an RAII phase scope on
 *     the calling thread. Scopes nest: the harvested tree mirrors the
 *     runtime nesting, with inclusive/exclusive nanoseconds and entry
 *     counts per node. Each thread accumulates into its own tree;
 *     harvest() merges all threads by phase name.
 *   - `prof::addTimed(name, ns)` records a phase retroactively (the
 *     epoch record phase is timed this way: a scope cannot straddle
 *     beginEpoch()/endEpoch()).
 *   - `prof::counterAdd(name, v)` bumps a named counter.
 *   - `prof::writeJson(...)` emits the versioned schema (see
 *     profSchemaVersion) consumed by tools/perf_diff.py.
 *
 * Cost model: with profiling disabled (the default) every PROF_SCOPE
 * is one relaxed atomic load and a predictable branch; compiled with
 * -DAFFALLOC_PROF=OFF it is nothing at all. Enabled PROF_SCOPEs cost
 * two steady_clock reads plus a child lookup, so they sit on
 * epoch-frequency paths. Per-element-hot sites (the allocator calls,
 * millions per bench) use PROF_SCOPE_SAMPLED instead: exact entry
 * counts, but only ~1 in 64 entries is timed and harvest scales the
 * estimate back up — that keeps the whole-suite overhead inside the
 * 2% budget CI enforces.
 */

#ifndef AFFALLOC_SIM_PROF_HH
#define AFFALLOC_SIM_PROF_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace affalloc::prof
{

/** Whether profiler support is compiled in at all. */
#ifdef AFFALLOC_PROF_DISABLED
inline constexpr bool compiledIn = false;
#else
inline constexpr bool compiledIn = true;
#endif

/** Schema identifier written into every JSON export. */
inline constexpr const char *profSchemaVersion = "affalloc-prof-1";

#ifndef AFFALLOC_PROF_DISABLED

namespace detail
{
/** Process-wide runtime enable flag (off by default). */
extern std::atomic<bool> enabled_;
} // namespace detail

/** Whether profiling is runtime-enabled (one relaxed load). */
inline bool
enabled()
{
    return detail::enabled_.load(std::memory_order_relaxed);
}

#else

inline bool enabled() { return false; }

#endif // AFFALLOC_PROF_DISABLED

/**
 * Runtime-enable / disable profiling. Enabling also stamps the
 * profiler's epoch-zero wall-clock (wall_ns in the export measures
 * from here). Safe to call repeatedly; a no-op when compiled out.
 */
void setEnabled(bool on);

/** Monotonic nanoseconds (steady_clock); 0 is never returned. */
std::uint64_t nowNs();

/** nowNs() when profiling is enabled, else 0 (cheap disabled path). */
inline std::uint64_t
nowNsIfEnabled()
{
    return enabled() ? nowNs() : 0;
}

// --------------------------------------------------------------- scopes

#ifndef AFFALLOC_PROF_DISABLED

namespace detail
{
struct Node;
/** Enter phase @p name under the calling thread's current node. */
Node *scopeEnter(const char *name);
/** Close @p node, charging @p ns of inclusive time. */
void scopeExit(Node *node, std::uint64_t ns);
/** scopeEnter + the 1-in-N sampling decision for hot scopes. */
Node *scopeEnterSampled(const char *name, bool &sample);
/** Close a sampled-scope entry; @p ns only meaningful when timed. */
void scopeExitSampled(Node *node, std::uint64_t ns, bool timed);
} // namespace detail

/**
 * RAII phase scope. The name must be a string with static storage
 * duration (a literal): nodes cache the pointer, not a copy.
 */
class Scope
{
  public:
    explicit Scope(const char *name)
    {
        if (enabled()) {
            node_ = detail::scopeEnter(name);
            t0_ = nowNs();
        }
    }
    ~Scope()
    {
        if (node_)
            detail::scopeExit(node_, nowNs() - t0_);
    }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    detail::Node *node_ = nullptr;
    std::uint64_t t0_ = 0;
};

/**
 * RAII phase scope for *per-element-hot* sites (allocator calls that
 * run millions of times per bench). Every entry is counted exactly,
 * but only one entry in ~64 pays the two clock reads; harvest scales
 * the timed sample back up (and marks the phase `sampled` in the
 * export). A node's first entry is always timed, so rare phases still
 * get an estimate. Cost per untimed entry: the enabled check plus a
 * handful of thread-local/node writes — no clock reads.
 */
class ScopeSampled
{
  public:
    explicit ScopeSampled(const char *name)
    {
        if (enabled()) {
            node_ = detail::scopeEnterSampled(name, timed_);
            if (timed_)
                t0_ = nowNs();
        }
    }
    ~ScopeSampled()
    {
        if (node_)
            detail::scopeExitSampled(node_, timed_ ? nowNs() - t0_ : 0,
                                     timed_);
    }
    ScopeSampled(const ScopeSampled &) = delete;
    ScopeSampled &operator=(const ScopeSampled &) = delete;

  private:
    detail::Node *node_ = nullptr;
    std::uint64_t t0_ = 0;
    bool timed_ = false;
};

#define AFFALLOC_PROF_CONCAT2(a, b) a##b
#define AFFALLOC_PROF_CONCAT(a, b) AFFALLOC_PROF_CONCAT2(a, b)
/** Open a named RAII phase scope for the rest of the block. */
#define PROF_SCOPE(name)                                                      \
    ::affalloc::prof::Scope AFFALLOC_PROF_CONCAT(prof_scope_,                 \
                                                 __LINE__)(name)
/** PROF_SCOPE for per-element-hot sites: exact counts, sampled time. */
#define PROF_SCOPE_SAMPLED(name)                                              \
    ::affalloc::prof::ScopeSampled AFFALLOC_PROF_CONCAT(prof_scope_,          \
                                                        __LINE__)(name)

#else

class Scope
{
  public:
    explicit Scope(const char *) {}
};
class ScopeSampled
{
  public:
    explicit ScopeSampled(const char *) {}
};
#define PROF_SCOPE(name)                                                      \
    do {                                                                      \
    } while (0)
#define PROF_SCOPE_SAMPLED(name)                                              \
    do {                                                                      \
    } while (0)

#endif // AFFALLOC_PROF_DISABLED

/**
 * Record @p ns of phase @p name as a completed child of the calling
 * thread's current scope (entered and exited in one call). Used where
 * an RAII scope cannot bracket the interval — e.g. the epoch *record*
 * phase runs between beginEpoch() and endEpoch() across many calls.
 * No-op when disabled/compiled out.
 */
void addTimed(const char *name, std::uint64_t ns);

/** Bump named counter @p name by @p v (no-op when disabled). */
void counterAdd(const char *name, std::uint64_t v);

/**
 * Raise named counter @p name to at least @p v (running maximum;
 * no-op when disabled). Used for high-watermarks such as sweep
 * dispatch-queue depth.
 */
void counterMax(const char *name, std::uint64_t v);

// --------------------------------------------------- memory telemetry

/**
 * Sample /proc/self/status (VmRSS / VmHWM) if profiling is enabled
 * and at least ~100 ms have passed since the last sample; called from
 * Machine::endEpoch() so long runs track their footprint without
 * per-epoch /proc traffic. Returns true when a sample was taken.
 */
bool rssEpochTick();

/** Peak RSS (VmHWM) in kB read from /proc right now; 0 off-Linux. */
std::uint64_t peakRssKb();

/**
 * Note one tenant arena's allocator pool footprint at run teardown.
 * Repeated notes for the same arena keep the maximum (an arena is
 * recycled across serving requests; the high-watermark is the signal).
 */
void noteArenaFootprint(std::uint32_t arena, std::uint64_t bytes);

// ------------------------------------------------ worker-pool telemetry

/** One pool's accumulated utilization telemetry. */
struct PoolTelemetry
{
    /** Roles, including the dispatching caller. */
    unsigned threads = 0;
    /** dispatch() barriers executed (replay waves, sweep batches). */
    std::uint64_t dispatches = 0;
    /** Per-role total busy nanoseconds inside dispatched bodies. */
    std::vector<std::uint64_t> busyNs;
    /** Sum over dispatches of the slowest role's task-ns (the wave's
     *  critical path). */
    std::uint64_t sumMaxTaskNs = 0;
    /** Sum over dispatches of all roles' task-ns. sumMaxTaskNs *
     *  threads / sumTaskNs is the shard-imbalance ratio (1.0 =
     *  perfectly balanced waves). */
    std::uint64_t sumTaskNs = 0;
};

/**
 * Register / unregister a live pool's telemetry snapshot provider.
 * WorkerPool registers itself at construction and, at destruction,
 * unregisters and folds its final snapshot into the retired-pool
 * list so telemetry survives the pool. @p key identifies the pool.
 */
void registerPool(const void *key, PoolTelemetry (*fn)(const void *));
void unregisterPool(const void *key, const PoolTelemetry &final_snapshot);

// --------------------------------------------------------- progress

/**
 * Enable the stderr progress heartbeat with @p interval_sec seconds
 * between lines (validated > 0 by the flag parser). Independent of
 * the phase profiler: --progress without --prof-out works.
 */
void progressEnable(double interval_sec);

/** Whether the heartbeat is enabled. */
bool progressEnabled();

/** Declare the unit goal of the current run (requests, campaigns). */
void progressSetGoal(std::uint64_t goal);

/** Note @p n more admitted units (serving: requests entering slots). */
void progressNoteAdmitted(std::uint64_t n);

/** Note @p n more completed/resolved units toward the goal. */
void progressAdvance(std::uint64_t n);

/**
 * Heartbeat tick from the epoch loop: emits one `[progress]` line to
 * stderr (epoch, simulated cycle, admitted/completed, ETA) when the
 * configured interval has elapsed. Thread-safe; cheap when disabled.
 */
void progressTick(std::uint64_t epoch, std::uint64_t cycles);

// ----------------------------------------------------------- harvest

/** One merged phase node of the harvested tree. */
struct PhaseNode
{
    std::string name;
    /** Total ns inside this phase, children included. For sampled
     *  phases this is the scaled estimate (timed ns * count /
     *  timedCount), clamped to at least the children's sum. */
    std::uint64_t inclusiveNs = 0;
    /** inclusiveNs minus the children's inclusive ns (clamped >= 0). */
    std::uint64_t exclusiveNs = 0;
    /** Scope entries merged into this node (always exact). */
    std::uint64_t count = 0;
    /** Entries that actually paid the clock reads (== count for
     *  PROF_SCOPE / addTimed phases). */
    std::uint64_t timedCount = 0;
    /** True when inclusiveNs is a sampled estimate, not a full sum. */
    bool sampled = false;
    std::vector<PhaseNode> children;
};

/** A consistent copy of everything the profiler accumulated. */
struct Snapshot
{
    /** Wall ns since setEnabled(true); 0 when never enabled. */
    std::uint64_t wallNs = 0;
    /** Merged phase trees (roots sorted by name). */
    std::vector<PhaseNode> phases;
    /** Named counters, sorted by name. */
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    /** Live + retired worker-pool telemetry with any activity. */
    std::vector<PoolTelemetry> pools;
    /** Peak RSS (VmHWM) in kB at harvest; 0 when unavailable. */
    std::uint64_t peakRssKb = 0;
    /** Most recent VmRSS sample in kB; 0 when never sampled. */
    std::uint64_t lastRssKb = 0;
    /** /proc samples taken by rssEpochTick(). */
    std::uint64_t rssSamples = 0;
    /** (arena id, peak pool footprint bytes), sorted by arena. */
    std::vector<std::pair<std::uint32_t, std::uint64_t>> arenas;
};

/**
 * Merge every thread's tree and all telemetry into one snapshot.
 * Intended for after the measured work has quiesced (tests, the exit
 * writer); concurrent scope traffic cannot corrupt the harvest, it
 * can only be partially visible.
 */
Snapshot harvest();

/**
 * Write @p snap as schema-versioned JSON to @p out. The caller owns
 * the FILE*; write/flush errors are reported by writeJson returning
 * false (the exit-path writer cannot throw).
 */
bool writeJson(std::FILE *out, const Snapshot &snap);

/**
 * Reset all accumulated phase/counter/pool/arena state (tests). Does
 * not touch the enabled flags or any open output file.
 */
void resetForTest();

} // namespace affalloc::prof

#endif // AFFALLOC_SIM_PROF_HH
