/**
 * @file
 * Deterministic pseudo-random number generation. All stochastic
 * behaviour in the simulator (graph generation, random bank selection,
 * random page mapping) flows through Rng so every experiment is
 * reproducible from its seed.
 */

#ifndef AFFALLOC_SIM_RNG_HH
#define AFFALLOC_SIM_RNG_HH

#include <cstdint>

namespace affalloc
{

/**
 * splitmix64-seeded xoshiro256** generator. Small, fast, and good
 * enough statistically for workload synthesis.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (default: fixed project seed). */
    explicit Rng(std::uint64_t seed = 0xaffa110cULL) { reseed(seed); }

    /** Re-seed the generator deterministically. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // for workload synthesis (bias < 2^-64 * bound).
        return static_cast<std::uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Seed of named substream @p stream derived from @p root. Stream 0
     * *is* the root stream (substreamSeed(s, 0) == s), so consumers
     * that only ever use stream 0 behave byte-identically to code that
     * never heard of substreams. Other streams are splitmix64-mixed:
     * their sequences are statistically independent of each other and
     * of the root, and depend only on (root, stream) — never on the
     * order in which the streams are consumed (co-run tenants draw
     * the same numbers regardless of how they are scheduled).
     */
    static std::uint64_t
    substreamSeed(std::uint64_t root, std::uint64_t stream)
    {
        if (stream == 0)
            return root;
        std::uint64_t z = root ^ (stream * 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    static std::uint64_t
    rotl(std::uint64_t v, int k)
    {
        return (v << k) | (v >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace affalloc

#endif // AFFALLOC_SIM_RNG_HH
