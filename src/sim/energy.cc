#include "sim/energy.hh"

namespace affalloc::sim
{

double
EnergyModel::dynamicJoules(const Stats &s) const
{
    double pj = 0.0;
    pj += params_.l1AccessPj * static_cast<double>(s.l1Accesses);
    pj += params_.l2AccessPj * static_cast<double>(s.l2Accesses);
    pj += params_.l3AccessPj * static_cast<double>(s.l3Accesses);
    pj += params_.dramPerBytePj * static_cast<double>(s.dramBytes);
    pj += params_.nocFlitHopPj * static_cast<double>(s.totalFlitHops());
    pj += params_.coreOpPj * static_cast<double>(s.coreOps);
    pj += params_.seOpPj * static_cast<double>(s.seOps);
    pj += params_.atomicPj * static_cast<double>(s.atomicOps);
    return pj * 1e-12;
}

double
EnergyModel::staticJoules(const Stats &s) const
{
    const double seconds =
        static_cast<double>(s.cycles) / (cfg_.clockGhz * 1e9);
    return params_.staticWatts * seconds;
}

double
EnergyModel::totalJoules(const Stats &s) const
{
    return dynamicJoules(s) + staticJoules(s);
}

} // namespace affalloc::sim
