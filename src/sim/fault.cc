#include "sim/fault.hh"

#include <algorithm>
#include <sstream>

#include "sim/log.hh"

namespace affalloc::sim
{

namespace
{

/**
 * Directed link ids of the real links of an X-by-Y mesh, using the
 * Mesh::linkOf numbering (tile * 4 + direction, directions E/W/N/S =
 * 0..3). Edge slots (links that would leave the mesh) are excluded.
 */
std::vector<std::uint32_t>
realMeshLinks(std::uint32_t mesh_x, std::uint32_t mesh_y)
{
    std::vector<std::uint32_t> links;
    for (std::uint32_t y = 0; y < mesh_y; ++y) {
        for (std::uint32_t x = 0; x < mesh_x; ++x) {
            const std::uint32_t tile = y * mesh_x + x;
            if (x + 1 < mesh_x)
                links.push_back(tile * 4 + 0); // east
            if (x > 0)
                links.push_back(tile * 4 + 1); // west
            if (y > 0)
                links.push_back(tile * 4 + 2); // north
            if (y + 1 < mesh_y)
                links.push_back(tile * 4 + 3); // south
        }
    }
    return links;
}

} // namespace

FaultPlan::FaultPlan(const FaultConfig &cfg, std::uint32_t mesh_x,
                     std::uint32_t mesh_y)
    : cfg_(cfg), rng_(cfg.seed)
{
    const std::uint32_t num_banks = mesh_x * mesh_y;
    if (num_banks == 0)
        SIM_FATAL("fault", "fault plan over an empty mesh");
    if (cfg.offloadRejectRate < 0.0 || cfg.offloadRejectRate > 1.0)
        SIM_FATAL("fault", "offload reject rate %g outside [0, 1]",
              cfg.offloadRejectRate);
    if (cfg.offlineBanks >= num_banks)
        SIM_FATAL("fault", "cannot offline %u of %u banks (at least one must stay "
              "live)",
              cfg.offlineBanks, num_banks);
    if (cfg.linkDegradeFactor == 0)
        SIM_FATAL("fault", "link degrade factor must be >= 1");

    liveMask_.assign(num_banks, 1);
    for (std::uint32_t picked = 0; picked < cfg.offlineBanks;) {
        const BankId b = static_cast<BankId>(rng_.below(num_banks));
        if (liveMask_[b]) {
            liveMask_[b] = 0;
            ++picked;
            ++offlineCount_;
        }
    }
    rebuildRedirect();

    if (cfg.degradedLinks > 0) {
        const std::vector<std::uint32_t> real =
            realMeshLinks(mesh_x, mesh_y);
        linkMult_.assign(num_banks * 4, 1);
        const std::uint32_t want = std::min<std::uint32_t>(
            cfg.degradedLinks,
            static_cast<std::uint32_t>(real.size()));
        while (degradedCount_ < want) {
            const std::uint32_t link =
                real[rng_.below(real.size())];
            if (linkMult_[link] == 1) {
                linkMult_[link] = cfg.linkDegradeFactor;
                ++degradedCount_;
            }
        }
    }
}

void
FaultPlan::rebuildRedirect()
{
    const std::uint32_t n =
        static_cast<std::uint32_t>(liveMask_.size());
    redirect_.resize(n);
    for (BankId b = 0; b < n; ++b) {
        BankId target = b;
        for (std::uint32_t d = 0; d < n && !liveMask_[target]; ++d)
            target = (b + d + 1) % n;
        redirect_[b] = target;
    }
}

bool
FaultPlan::offlineBank(BankId b)
{
    if (liveMask_.empty() || b >= liveMask_.size())
        SIM_FATAL("fault", "offlineBank: bank %u out of range", b);
    if (!liveMask_[b])
        return false;
    if (numLiveBanks() <= 1)
        SIM_FATAL("fault", "offlineBank: cannot offline the last live bank %u", b);
    liveMask_[b] = 0;
    ++offlineCount_;
    rebuildRedirect();
    return true;
}

std::string
FaultPlan::toString() const
{
    std::ostringstream os;
    os << "faults: " << offlineCount_ << " offline banks";
    if (!liveMask_.empty() && offlineCount_ > 0) {
        os << " (";
        bool first = true;
        for (BankId b = 0; b < liveMask_.size(); ++b) {
            if (liveMask_[b])
                continue;
            os << (first ? "" : ",") << b;
            first = false;
        }
        os << ")";
    }
    os << ", " << degradedCount_ << " degraded links (x"
       << cfg_.linkDegradeFactor << "), offload reject p="
       << cfg_.offloadRejectRate;
    return os.str();
}

} // namespace affalloc::sim
