#include "sim/fault.hh"

#include <algorithm>
#include <sstream>

#include "sim/log.hh"

namespace affalloc::sim
{

namespace
{

/**
 * Directed link ids of the real links of an X-by-Y mesh, using the
 * Mesh::linkOf numbering (tile * 4 + direction, directions E/W/N/S =
 * 0..3). Edge slots (links that would leave the mesh) are excluded.
 */
std::vector<std::uint32_t>
realMeshLinks(std::uint32_t mesh_x, std::uint32_t mesh_y)
{
    std::vector<std::uint32_t> links;
    for (std::uint32_t y = 0; y < mesh_y; ++y) {
        for (std::uint32_t x = 0; x < mesh_x; ++x) {
            const std::uint32_t tile = y * mesh_x + x;
            if (x + 1 < mesh_x)
                links.push_back(tile * 4 + 0); // east
            if (x > 0)
                links.push_back(tile * 4 + 1); // west
            if (y > 0)
                links.push_back(tile * 4 + 2); // north
            if (y + 1 < mesh_y)
                links.push_back(tile * 4 + 3); // south
        }
    }
    return links;
}

/**
 * Whether directed link id @p link is a real link of the mesh (per the
 * Mesh::linkOf numbering; edge slots excluded).
 */
bool
isRealMeshLink(std::uint32_t link, std::uint32_t mesh_x,
               std::uint32_t mesh_y)
{
    const std::uint32_t tile = link / 4;
    if (tile >= mesh_x * mesh_y)
        return false;
    const std::uint32_t x = tile % mesh_x;
    const std::uint32_t y = tile / mesh_x;
    switch (link % 4) {
      case 0: return x + 1 < mesh_x; // east
      case 1: return x > 0;          // west
      case 2: return y > 0;          // north
      default: return y + 1 < mesh_y; // south
    }
}

} // namespace

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::killBank: return "bank";
      case FaultKind::degradeLink: return "link";
      case FaultKind::nackStorm: return "nack";
    }
    return "?";
}

std::vector<TimedFault>
parseFaultSchedule(const std::string &spec)
{
    std::vector<TimedFault> schedule;
    std::istringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        TimedFault ev;
        const std::size_t colon = item.find(':');
        const std::size_t at = item.find('@');
        if (colon == std::string::npos || at == std::string::npos ||
            at < colon)
            SIM_FATAL("fault",
                      "malformed fault event '%s' (want bank:<id>@<cycle>, "
                      "link:<id>@<cycle>[x<factor>], or "
                      "nack:<permille>@<cycle>)",
                      item.c_str());
        const std::string kind = item.substr(0, colon);
        if (kind == "bank")
            ev.kind = FaultKind::killBank;
        else if (kind == "link")
            ev.kind = FaultKind::degradeLink;
        else if (kind == "nack")
            ev.kind = FaultKind::nackStorm;
        else
            SIM_FATAL("fault",
                      "unknown fault event kind '%s' in '%s' (bank, link, "
                      "nack)",
                      kind.c_str(), item.c_str());
        std::string when = item.substr(at + 1);
        if (ev.kind == FaultKind::degradeLink) {
            const std::size_t xpos = when.find('x');
            if (xpos != std::string::npos) {
                try {
                    ev.factor = static_cast<std::uint32_t>(
                        std::stoul(when.substr(xpos + 1)));
                } catch (const std::exception &) {
                    SIM_FATAL("fault", "bad degrade factor in '%s'",
                              item.c_str());
                }
                when = when.substr(0, xpos);
            }
        }
        try {
            ev.target = static_cast<std::uint32_t>(
                std::stoul(item.substr(colon + 1, at - colon - 1)));
            ev.atCycle = static_cast<Cycles>(std::stoull(when));
        } catch (const std::exception &) {
            SIM_FATAL("fault", "bad number in fault event '%s'",
                      item.c_str());
        }
        schedule.push_back(ev);
    }
    return schedule;
}

std::string
formatFaultSchedule(const std::vector<TimedFault> &schedule)
{
    std::ostringstream os;
    bool first = true;
    for (const TimedFault &ev : schedule) {
        if (!first)
            os << ',';
        first = false;
        os << faultKindName(ev.kind) << ':' << ev.target << '@'
           << ev.atCycle;
        if (ev.kind == FaultKind::degradeLink)
            os << 'x' << ev.factor;
    }
    return os.str();
}

void
validateFaultSchedule(const std::vector<TimedFault> &schedule,
                      std::uint32_t mesh_x, std::uint32_t mesh_y,
                      Cycles max_cycles)
{
    const std::uint32_t num_banks = mesh_x * mesh_y;
    for (const TimedFault &ev : schedule) {
        if (ev.kind == FaultKind::killBank) {
            if (ev.target >= num_banks)
                SIM_FATAL("fault",
                          "fault event kills bank %u but the %ux%u mesh "
                          "has banks 0..%u",
                          ev.target, mesh_x, mesh_y, num_banks - 1);
        } else if (ev.kind == FaultKind::nackStorm) {
            if (ev.target > 1000)
                SIM_FATAL("fault",
                          "nack storm rate %u permille outside 0..1000",
                          ev.target);
        } else {
            if (!isRealMeshLink(ev.target, mesh_x, mesh_y))
                SIM_FATAL("fault",
                          "fault event degrades link %u, which is not a "
                          "real link of the %ux%u mesh",
                          ev.target, mesh_x, mesh_y);
            if (ev.factor == 0)
                SIM_FATAL("fault",
                          "fault event on link %u has degrade factor 0 "
                          "(must be >= 1)",
                          ev.target);
            if (ev.factor > maxLinkDegradeFactor)
                SIM_FATAL("fault",
                          "fault event on link %u has degrade factor %u "
                          "past the sanity bound %u",
                          ev.target, ev.factor, maxLinkDegradeFactor);
        }
        if (max_cycles != 0 && ev.atCycle > max_cycles)
            SIM_FATAL("fault",
                      "fault event at cycle %llu is beyond the %llu-cycle "
                      "horizon and would never fire",
                      static_cast<unsigned long long>(ev.atCycle),
                      static_cast<unsigned long long>(max_cycles));
    }
}

FaultPlan::FaultPlan(const FaultConfig &cfg, std::uint32_t mesh_x,
                     std::uint32_t mesh_y)
    : cfg_(cfg), rng_(cfg.seed)
{
    const std::uint32_t num_banks = mesh_x * mesh_y;
    if (num_banks == 0)
        SIM_FATAL("fault", "fault plan over an empty mesh");
    if (cfg.offloadRejectRate < 0.0 || cfg.offloadRejectRate > 1.0)
        SIM_FATAL("fault", "offload reject rate %g outside [0, 1]",
              cfg.offloadRejectRate);
    if (cfg.offlineBanks >= num_banks)
        SIM_FATAL("fault", "cannot offline %u of %u banks (at least one must stay "
              "live)",
              cfg.offlineBanks, num_banks);
    if (cfg.linkDegradeFactor == 0)
        SIM_FATAL("fault", "link degrade factor must be >= 1");
    if (cfg.linkDegradeFactor > maxLinkDegradeFactor)
        SIM_FATAL("fault", "link degrade factor %u past the sanity bound %u",
                  cfg.linkDegradeFactor, maxLinkDegradeFactor);
    // Target ids are checked here; event *times* are re-checked by the
    // driver that knows the horizon (validateFaultSchedule with
    // max_cycles), since the plan itself has no notion of a run length.
    validateFaultSchedule(cfg.schedule, mesh_x, mesh_y, 0);

    liveMask_.assign(num_banks, 1);
    for (std::uint32_t picked = 0; picked < cfg.offlineBanks;) {
        const BankId b = static_cast<BankId>(rng_.below(num_banks));
        if (liveMask_[b]) {
            liveMask_[b] = 0;
            ++picked;
            ++offlineCount_;
        }
    }
    rebuildRedirect();

    if (cfg.degradedLinks > 0) {
        const std::vector<std::uint32_t> real =
            realMeshLinks(mesh_x, mesh_y);
        linkMult_.assign(num_banks * 4, 1);
        const std::uint32_t want = std::min<std::uint32_t>(
            cfg.degradedLinks,
            static_cast<std::uint32_t>(real.size()));
        while (degradedCount_ < want) {
            const std::uint32_t link =
                real[rng_.below(real.size())];
            if (linkMult_[link] == 1) {
                linkMult_[link] = cfg.linkDegradeFactor;
                ++degradedCount_;
            }
        }
    }
}

void
FaultPlan::rebuildRedirect()
{
    const std::uint32_t n =
        static_cast<std::uint32_t>(liveMask_.size());
    redirect_.resize(n);
    for (BankId b = 0; b < n; ++b) {
        BankId target = b;
        for (std::uint32_t d = 0; d < n && !liveMask_[target]; ++d)
            target = (b + d + 1) % n;
        redirect_[b] = target;
    }
}

bool
FaultPlan::offlineBank(BankId b)
{
    if (liveMask_.empty() || b >= liveMask_.size())
        SIM_FATAL("fault", "offlineBank: bank %u out of range", b);
    if (!liveMask_[b])
        return false;
    if (numLiveBanks() <= 1)
        SIM_FATAL("fault", "offlineBank: cannot offline the last live bank %u", b);
    liveMask_[b] = 0;
    ++offlineCount_;
    rebuildRedirect();
    ++redirectVersion_;
    return true;
}

void
FaultPlan::setRedirect(BankId dead, BankId target)
{
    if (liveMask_.empty() || dead >= liveMask_.size() ||
        target >= liveMask_.size())
        SIM_FATAL("fault", "setRedirect: bank %u -> %u out of range", dead,
                  target);
    if (liveMask_[dead])
        SIM_FATAL("fault", "setRedirect: bank %u is still live", dead);
    if (!liveMask_[target])
        SIM_FATAL("fault", "setRedirect: target bank %u is offline",
                  target);
    if (redirect_[dead] != target) {
        redirect_[dead] = target;
        ++redirectVersion_;
    }
}

void
FaultPlan::setOffloadRejectRate(double rate)
{
    if (rate < 0.0 || rate > 1.0)
        SIM_FATAL("fault", "offload reject rate %g outside [0, 1]", rate);
    cfg_.offloadRejectRate = rate;
}

bool
FaultPlan::degradeLink(std::uint32_t link, std::uint32_t factor)
{
    const std::uint32_t num_links =
        static_cast<std::uint32_t>(liveMask_.size()) * 4;
    if (liveMask_.empty() || link >= num_links)
        SIM_FATAL("fault", "degradeLink: link %u out of range", link);
    if (factor == 0)
        SIM_FATAL("fault", "degradeLink: factor must be >= 1");
    if (factor > maxLinkDegradeFactor)
        SIM_FATAL("fault", "degradeLink: factor %u past the sanity bound %u",
                  factor, maxLinkDegradeFactor);
    if (linkMult_.empty())
        linkMult_.assign(num_links, 1);
    if (linkMult_[link] == factor)
        return false;
    if (linkMult_[link] == 1 && factor > 1)
        ++degradedCount_;
    else if (linkMult_[link] > 1 && factor == 1)
        --degradedCount_;
    linkMult_[link] = factor;
    return true;
}

std::string
FaultPlan::toString() const
{
    std::ostringstream os;
    os << "faults: " << offlineCount_ << " offline banks";
    if (!liveMask_.empty() && offlineCount_ > 0) {
        os << " (";
        bool first = true;
        for (BankId b = 0; b < liveMask_.size(); ++b) {
            if (liveMask_[b])
                continue;
            os << (first ? "" : ",") << b;
            first = false;
        }
        os << ")";
    }
    os << ", " << degradedCount_ << " degraded links (x"
       << cfg_.linkDegradeFactor << "), offload reject p="
       << cfg_.offloadRejectRate;
    return os.str();
}

} // namespace affalloc::sim
