/**
 * @file
 * Event counters and epoch timelines. Stats are plain additive
 * counters; figures are produced from Stats snapshots and deltas.
 */

#ifndef AFFALLOC_SIM_STATS_HH
#define AFFALLOC_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace affalloc::sim
{

/**
 * Additive event counters for one simulation run. Every field counts
 * events (not derived rates) so snapshots can be subtracted.
 */
struct Stats
{
    /** Messages injected, by traffic class. */
    std::array<std::uint64_t, numTrafficClasses> messages{};
    /** Message-hops traversed, by traffic class. */
    std::array<std::uint64_t, numTrafficClasses> hops{};
    /** Flit-hops (flits x links traversed), by traffic class. */
    std::array<std::uint64_t, numTrafficClasses> flitHops{};

    /** L1 data cache accesses / misses (In-Core mode only). */
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Misses = 0;
    /** Private L2 accesses / misses. */
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    /** Shared L3 accesses / misses (all modes). */
    std::uint64_t l3Accesses = 0;
    std::uint64_t l3Misses = 0;
    /** TLB lookups (core-side L1 dTLB + SEL3 TLB). */
    std::uint64_t tlbAccesses = 0;
    /** Lookups that missed all TLB levels (page walks). */
    std::uint64_t tlbWalks = 0;

    /** DRAM traffic in bytes (reads + writebacks). */
    std::uint64_t dramBytes = 0;
    /** DRAM accesses (line granularity). */
    std::uint64_t dramAccesses = 0;

    /** Scalar-op work executed on cores. */
    std::uint64_t coreOps = 0;
    /** Scalar-op work executed by near-stream compute at L3. */
    std::uint64_t seOps = 0;
    /** Remote atomic operations performed at L3 banks. */
    std::uint64_t atomicOps = 0;

    /** Stream configuration messages (offload starts). */
    std::uint64_t streamConfigs = 0;
    /** Stream migrations between banks. */
    std::uint64_t streamMigrations = 0;

    // ---------------------------------- fault / degradation observability
    /** L3 banks offline under the fault plan (boot + injected). */
    std::uint64_t offlineBanks = 0;
    /** Offload requests NACKed and retried. */
    std::uint64_t offloadRetries = 0;
    /** Streams that exhausted retries and fell back to in-core. */
    std::uint64_t offloadFallbacks = 0;
    /** Allocations degraded to another pool or the plain heap. */
    std::uint64_t allocFallbacks = 0;
    /** Irregular slots migrated off offline banks. */
    std::uint64_t victimMigrations = 0;
    /** Extra flit-link occupancy charged on degraded links. */
    std::uint64_t degradedLinkFlits = 0;
    /** Epochs abandoned mid-flight after an error (abortEpoch). */
    std::uint64_t abortedEpochs = 0;

    /** Total simulated cycles. */
    Cycles cycles = 0;
    /** Number of epochs simulated. */
    std::uint64_t epochs = 0;

    /** All message-hops across classes. */
    std::uint64_t totalHops() const;
    /** All flit-hops across classes. */
    std::uint64_t totalFlitHops() const;
    /** L3 miss ratio in [0,1]; 0 when no accesses. */
    double l3MissRate() const;

    /** Element-wise a - b (deltas between snapshots). */
    friend Stats operator-(Stats a, const Stats &b);
    /** Element-wise accumulate. */
    Stats &operator+=(const Stats &o);

    /** Multi-line human-readable dump. */
    std::string toString() const;
};

/**
 * One epoch's observation for timeline figures (Fig. 14 / Fig. 18):
 * when the epoch ended and how busy each bank's atomic streams were.
 */
struct EpochRecord
{
    /** Simulated cycle at which this epoch completed. */
    Cycles endCycle = 0;
    /** Per-bank count of atomic streams active during the epoch. */
    std::vector<std::uint32_t> atomicStreamsPerBank;
    /** Free-form phase label (e.g. "push"/"pull" for Fig. 18). */
    std::string phase;
};

/**
 * Ordered sequence of epoch records plus helpers to compute the
 * distribution bands (min/25%/avg/75%/max) the paper plots.
 */
class Timeline
{
  public:
    /** Append an epoch observation. */
    void
    record(EpochRecord rec)
    {
        records_.push_back(std::move(rec));
    }

    /** Whether any epochs were recorded. */
    bool empty() const { return records_.empty(); }
    /** Number of recorded epochs. */
    std::size_t size() const { return records_.size(); }
    /** Access one record. */
    const EpochRecord &at(std::size_t i) const { return records_.at(i); }
    /** All records. */
    const std::vector<EpochRecord> &records() const { return records_; }
    /** Drop all records. */
    void clear() { records_.clear(); }

    /**
     * Distribution bands over banks for one record: returns
     * {min, 25th percentile, mean, 75th percentile, max} of the
     * per-bank atomic stream occupancy, as plotted in Fig. 14.
     */
    static std::array<double, 5> bands(const EpochRecord &rec);

  private:
    std::vector<EpochRecord> records_;
};

/** Geometric mean of a sequence of positive values; 0 if empty. */
double geomean(const std::vector<double> &values);

/**
 * One named counter in the Stats registry: a stable name plus an
 * accessor. The registry drives the determinism digest and structured
 * diagnostics, so names must be unique — see validateCounterNames().
 */
struct CounterRef
{
    const char *name;
    std::uint64_t (*get)(const Stats &);
};

/**
 * Fail fast (FatalError naming the offender) if two counters share a
 * name. A silently shadowed counter would alias two distinct events
 * under one digest key and mask divergence.
 */
void validateCounterNames(const std::vector<CounterRef> &counters);

/**
 * Every Stats counter, by name, validated once on first use. Per-class
 * arrays appear as "messages.control", "hops.data", etc.
 */
const std::vector<CounterRef> &statsCounters();

} // namespace affalloc::sim

#endif // AFFALLOC_SIM_STATS_HH
