#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <string_view>
#include <unordered_set>

#include "sim/log.hh"

namespace affalloc::sim
{

void
validateCounterNames(const std::vector<CounterRef> &counters)
{
    std::unordered_set<std::string_view> seen;
    for (const CounterRef &c : counters) {
        if (!seen.insert(c.name).second)
            SIM_FATAL("sim", "duplicate stats counter registration: '%s'",
                      c.name);
    }
}

const std::vector<CounterRef> &
statsCounters()
{
    static const std::vector<CounterRef> table = [] {
        std::vector<CounterRef> t = {
            {"messages.control",
             +[](const Stats &s) { return s.messages[0]; }},
            {"messages.data", +[](const Stats &s) { return s.messages[1]; }},
            {"messages.offload",
             +[](const Stats &s) { return s.messages[2]; }},
            {"hops.control", +[](const Stats &s) { return s.hops[0]; }},
            {"hops.data", +[](const Stats &s) { return s.hops[1]; }},
            {"hops.offload", +[](const Stats &s) { return s.hops[2]; }},
            {"flitHops.control",
             +[](const Stats &s) { return s.flitHops[0]; }},
            {"flitHops.data", +[](const Stats &s) { return s.flitHops[1]; }},
            {"flitHops.offload",
             +[](const Stats &s) { return s.flitHops[2]; }},
            {"l1Accesses", +[](const Stats &s) { return s.l1Accesses; }},
            {"l1Misses", +[](const Stats &s) { return s.l1Misses; }},
            {"l2Accesses", +[](const Stats &s) { return s.l2Accesses; }},
            {"l2Misses", +[](const Stats &s) { return s.l2Misses; }},
            {"l3Accesses", +[](const Stats &s) { return s.l3Accesses; }},
            {"l3Misses", +[](const Stats &s) { return s.l3Misses; }},
            {"tlbAccesses", +[](const Stats &s) { return s.tlbAccesses; }},
            {"tlbWalks", +[](const Stats &s) { return s.tlbWalks; }},
            {"dramBytes", +[](const Stats &s) { return s.dramBytes; }},
            {"dramAccesses", +[](const Stats &s) { return s.dramAccesses; }},
            {"coreOps", +[](const Stats &s) { return s.coreOps; }},
            {"seOps", +[](const Stats &s) { return s.seOps; }},
            {"atomicOps", +[](const Stats &s) { return s.atomicOps; }},
            {"streamConfigs",
             +[](const Stats &s) { return s.streamConfigs; }},
            {"streamMigrations",
             +[](const Stats &s) { return s.streamMigrations; }},
            {"offlineBanks", +[](const Stats &s) { return s.offlineBanks; }},
            {"offloadRetries",
             +[](const Stats &s) { return s.offloadRetries; }},
            {"offloadFallbacks",
             +[](const Stats &s) { return s.offloadFallbacks; }},
            {"allocFallbacks",
             +[](const Stats &s) { return s.allocFallbacks; }},
            {"victimMigrations",
             +[](const Stats &s) { return s.victimMigrations; }},
            {"degradedLinkFlits",
             +[](const Stats &s) { return s.degradedLinkFlits; }},
            {"abortedEpochs",
             +[](const Stats &s) { return s.abortedEpochs; }},
            {"cycles",
             +[](const Stats &s) {
                 return static_cast<std::uint64_t>(s.cycles);
             }},
            {"epochs", +[](const Stats &s) { return s.epochs; }},
        };
        validateCounterNames(t);
        return t;
    }();
    return table;
}

std::uint64_t
Stats::totalHops() const
{
    return hops[0] + hops[1] + hops[2];
}

std::uint64_t
Stats::totalFlitHops() const
{
    return flitHops[0] + flitHops[1] + flitHops[2];
}

double
Stats::l3MissRate() const
{
    return l3Accesses == 0
               ? 0.0
               : static_cast<double>(l3Misses) / static_cast<double>(
                                                     l3Accesses);
}

Stats
operator-(Stats a, const Stats &b)
{
    for (int c = 0; c < numTrafficClasses; ++c) {
        a.messages[c] -= b.messages[c];
        a.hops[c] -= b.hops[c];
        a.flitHops[c] -= b.flitHops[c];
    }
    a.l1Accesses -= b.l1Accesses;
    a.l1Misses -= b.l1Misses;
    a.l2Accesses -= b.l2Accesses;
    a.l2Misses -= b.l2Misses;
    a.l3Accesses -= b.l3Accesses;
    a.l3Misses -= b.l3Misses;
    a.tlbAccesses -= b.tlbAccesses;
    a.tlbWalks -= b.tlbWalks;
    a.dramBytes -= b.dramBytes;
    a.dramAccesses -= b.dramAccesses;
    a.coreOps -= b.coreOps;
    a.seOps -= b.seOps;
    a.atomicOps -= b.atomicOps;
    a.streamConfigs -= b.streamConfigs;
    a.streamMigrations -= b.streamMigrations;
    a.offlineBanks -= b.offlineBanks;
    a.offloadRetries -= b.offloadRetries;
    a.offloadFallbacks -= b.offloadFallbacks;
    a.allocFallbacks -= b.allocFallbacks;
    a.victimMigrations -= b.victimMigrations;
    a.degradedLinkFlits -= b.degradedLinkFlits;
    a.abortedEpochs -= b.abortedEpochs;
    a.cycles -= b.cycles;
    a.epochs -= b.epochs;
    return a;
}

Stats &
Stats::operator+=(const Stats &o)
{
    for (int c = 0; c < numTrafficClasses; ++c) {
        messages[c] += o.messages[c];
        hops[c] += o.hops[c];
        flitHops[c] += o.flitHops[c];
    }
    l1Accesses += o.l1Accesses;
    l1Misses += o.l1Misses;
    l2Accesses += o.l2Accesses;
    l2Misses += o.l2Misses;
    l3Accesses += o.l3Accesses;
    l3Misses += o.l3Misses;
    tlbAccesses += o.tlbAccesses;
    tlbWalks += o.tlbWalks;
    dramBytes += o.dramBytes;
    dramAccesses += o.dramAccesses;
    coreOps += o.coreOps;
    seOps += o.seOps;
    atomicOps += o.atomicOps;
    streamConfigs += o.streamConfigs;
    streamMigrations += o.streamMigrations;
    offlineBanks += o.offlineBanks;
    offloadRetries += o.offloadRetries;
    offloadFallbacks += o.offloadFallbacks;
    allocFallbacks += o.allocFallbacks;
    victimMigrations += o.victimMigrations;
    degradedLinkFlits += o.degradedLinkFlits;
    abortedEpochs += o.abortedEpochs;
    cycles += o.cycles;
    epochs += o.epochs;
    return *this;
}

std::string
Stats::toString() const
{
    std::ostringstream os;
    os << "cycles " << cycles << " epochs " << epochs << "\n";
    for (int c = 0; c < numTrafficClasses; ++c) {
        os << trafficClassName(static_cast<TrafficClass>(c)) << ": msgs "
           << messages[c] << " hops " << hops[c] << " flit-hops "
           << flitHops[c] << "\n";
    }
    os << "L1 " << l1Misses << "/" << l1Accesses << " miss, L2 "
       << l2Misses << "/" << l2Accesses << " miss, L3 " << l3Misses << "/"
       << l3Accesses << " miss\n"
       << "TLB " << tlbWalks << "/" << tlbAccesses << " walks\n"
       << "DRAM " << dramBytes << " B in " << dramAccesses << " accesses\n"
       << "core ops " << coreOps << " se ops " << seOps << " atomics "
       << atomicOps << "\n"
       << "stream configs " << streamConfigs << " migrations "
       << streamMigrations;
    if (offlineBanks || offloadRetries || offloadFallbacks ||
        allocFallbacks || victimMigrations || degradedLinkFlits ||
        abortedEpochs) {
        os << "\ndegradation: offline banks " << offlineBanks
           << " offload retries " << offloadRetries << " fallbacks "
           << offloadFallbacks << " alloc fallbacks " << allocFallbacks
           << " victim migrations " << victimMigrations
           << " degraded flits " << degradedLinkFlits
           << " aborted epochs " << abortedEpochs;
    }
    return os.str();
}

std::array<double, 5>
Timeline::bands(const EpochRecord &rec)
{
    std::array<double, 5> out{0, 0, 0, 0, 0};
    if (rec.atomicStreamsPerBank.empty())
        return out;
    std::vector<std::uint32_t> sorted = rec.atomicStreamsPerBank;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    const double sum = std::accumulate(sorted.begin(), sorted.end(), 0.0);
    out[0] = sorted.front();
    out[1] = sorted[n / 4];
    out[2] = sum / static_cast<double>(n);
    out[3] = sorted[(3 * n) / 4];
    out[4] = sorted.back();
    return out;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += std::log(v);
    return std::exp(acc / static_cast<double>(values.size()));
}

} // namespace affalloc::sim
