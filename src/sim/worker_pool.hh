/**
 * @file
 * Persistent worker pool for shard-parallel simulation. One pool owns
 * N-1 long-lived threads plus the calling thread; dispatch() hands
 * every role a fixed index, so work sharded by role index keeps
 * landing on the same host thread across epochs (the
 * affinity_partitioner idiom: a shard's bank models stay warm in the
 * caches of the core that replayed them last epoch).
 */

#ifndef AFFALLOC_SIM_WORKER_POOL_HH
#define AFFALLOC_SIM_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/prof.hh"

namespace affalloc::sim
{

/**
 * A barrier-style pool: dispatch(body) runs body(role) once for every
 * role in [0, threads) — role threads-1 on the calling thread, the
 * rest on persistent workers — and returns when all roles finish.
 * Exceptions thrown by a role are captured and the lowest-role one is
 * rethrown on the caller after the barrier (deterministic reporting).
 *
 * A pool of 1 thread runs everything inline (no threads spawned), so
 * callers need no special-casing for the serial configuration.
 */
class WorkerPool
{
  public:
    /** Build a pool with @p threads total roles (including caller). */
    explicit WorkerPool(unsigned threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Total roles, including the dispatching caller. */
    unsigned threads() const { return numThreads_; }

    /**
     * Run body(role) for every role in [0, threads()) and block until
     * all complete. Not reentrant: dispatch() must not be called from
     * inside a body.
     */
    void dispatch(const std::function<void(unsigned)> &body);

    /**
     * Utilization telemetry accumulated since construction (all zeros
     * unless the profiler was runtime-enabled during dispatches).
     * Safe to call between dispatches; a concurrent dispatch can only
     * make the snapshot slightly stale, never torn.
     */
    prof::PoolTelemetry telemetrySnapshot() const;

  private:
    void workerLoop(unsigned role);
    void runRole(unsigned role);

    unsigned numThreads_;
    std::vector<std::thread> workers_;
    std::vector<std::exception_ptr> errors_;
    /** Per-role busy ns inside dispatched bodies (profiler-enabled
     *  dispatches only). */
    std::vector<std::atomic<std::uint64_t>> busyNs_;
    /** Per-role duration of the body in the current/last dispatch. */
    std::vector<std::atomic<std::uint64_t>> lastTaskNs_;
    std::atomic<std::uint64_t> dispatches_{0};
    std::atomic<std::uint64_t> sumMaxTaskNs_{0};
    std::atomic<std::uint64_t> sumTaskNs_{0};
    const std::function<void(unsigned)> *body_ = nullptr;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::uint64_t generation_ = 0;
    unsigned pending_ = 0;
    bool stop_ = false;
};

/**
 * Process-wide default for MachineConfig::simThreads. Starts at 1
 * (classic serial simulation); flag parsing installs overrides via
 * setDefaultSimThreads(). Deliberately does not read the environment
 * itself — AFFALLOC_SIM_THREADS is parsed (and validated) by the CLI
 * and by harness::applySimThreads so invalid values fail loudly at
 * startup instead of deep inside a run.
 */
unsigned defaultSimThreads();

/** Install the process-wide simThreads default (>= 1; 0 is fatal). */
void setDefaultSimThreads(unsigned n);

/**
 * A lazily-built process-wide pool with at least @p threads roles,
 * shared by callers that parallelize one-at-a-time (the sweep runner
 * reuses it across every figure's sweeps instead of spawning fresh
 * threads per call). Grows but never shrinks. The caller must
 * serialize use (see runSweepTasks for the busy-flag fallback).
 */
WorkerPool &sharedWorkerPool(unsigned threads);

} // namespace affalloc::sim

#endif // AFFALLOC_SIM_WORKER_POOL_HH
