/**
 * @file
 * Fundamental scalar types and enums shared by every subsystem.
 */

#ifndef AFFALLOC_SIM_TYPES_HH
#define AFFALLOC_SIM_TYPES_HH

#include <cstdint>
#include <string>

namespace affalloc
{

/** Simulated (virtual or physical) byte address. */
using Addr = std::uint64_t;

/** Simulated time in core clock cycles. */
using Cycles = std::uint64_t;

/** Identifier of an L3 bank (one bank per mesh tile in this work). */
using BankId = std::uint32_t;

/** Identifier of a mesh tile (core + private caches + L3 slice). */
using TileId = std::uint32_t;

/** Identifier of a core; cores and tiles are 1:1 in this machine. */
using CoreId = std::uint32_t;

/** Bank id that means "no bank" / invalid. */
inline constexpr BankId invalidBank = ~BankId(0);

/** Invalid simulated address sentinel. */
inline constexpr Addr invalidAddr = ~Addr(0);

/**
 * NoC message class, matching the traffic breakdown reported in the
 * paper's figures (Offload / Data / Control stacks).
 */
enum class TrafficClass : std::uint8_t
{
    /** Requests, credits, indirect/atomic commands, coherence. */
    control,
    /** Cache-line data, operand forwards, write data. */
    data,
    /** Stream configuration and stream migration messages. */
    offload,
    numClasses
};

/** Number of distinct traffic classes. */
inline constexpr int numTrafficClasses =
    static_cast<int>(TrafficClass::numClasses);

/** Human-readable name of a traffic class. */
const char *trafficClassName(TrafficClass tc);

/**
 * Class of agent sharing the machine. NDC tenants are the paper's
 * near-data workloads; host agents issue ordinary cacheline traffic
 * from the cores (CHoNDA-style co-location), and io agents model
 * DMA/NIC injectors whose writes land directly in L3 (DDIO/A4-style).
 * The enumeration order doubles as arbitration priority: lower values
 * are served first under priority arbitration.
 */
enum class AgentClass : std::uint8_t
{
    /** Near-data-computing tenant (default; the classic agents). */
    ndc,
    /** Host core issuing plain cacheline reads/writes, no offload. */
    host,
    /** DMA/NIC-style I/O injector writing into the LLC. */
    io,
    numClasses
};

/** Number of distinct agent classes. */
inline constexpr int numAgentClasses =
    static_cast<int>(AgentClass::numClasses);

/** Human-readable name of an agent class ("ndc"/"host"/"io"). */
const char *agentClassName(AgentClass c);

/**
 * Execution paradigm of a workload run, matching the paper's three
 * evaluated configurations (Fig. 12).
 */
enum class ExecMode : std::uint8_t
{
    /** Conventional in-core execution; no offloading (In-Core). */
    inCore,
    /** Near-stream computing at L3 with the default layout (Near-L3). */
    nearL3,
    /** Near-stream computing plus affinity alloc layout (Aff-Alloc). */
    affAlloc
};

/** Human-readable name of an execution mode. */
const char *execModeName(ExecMode mode);

/** Memory access direction. */
enum class AccessType : std::uint8_t { read, write, atomic };

} // namespace affalloc

#endif // AFFALLOC_SIM_TYPES_HH
