/**
 * @file
 * SimCheck: opt-in invariant auditing, livelock watchdog, and
 * determinism digests for the NDC stack.
 *
 * Components register named checks with the machine's Auditor; checks
 * fire at epoch boundaries (every `auditPeriodEpochs` epochs when
 * auditing is enabled) and on demand via Auditor::runAll(). A failed
 * check raises AuditError with a structured report of every violation
 * found in that pass. The LivelockWatchdog counts consecutive epochs
 * without forward progress and trips with a diagnostic instead of
 * letting a NACK-retry storm spin forever. The Digest is an
 * order-insensitive FNV-1a fold over (name, value) items, used to
 * fingerprint final stats and placement decisions so CI can assert
 * run-to-run determinism.
 *
 * Compile-time gate: configuring with -DAFFALLOC_SIMCHECK=OFF defines
 * AFFALLOC_SIMCHECK_DISABLED and pins the auditor off regardless of
 * runtime configuration; digests remain available.
 */

#ifndef AFFALLOC_SIM_SIMCHECK_HH
#define AFFALLOC_SIM_SIMCHECK_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/log.hh"

namespace affalloc::sim
{
struct Stats;
} // namespace affalloc::sim

namespace affalloc::simcheck
{

/** Whether SimCheck auditing support is compiled in at all. */
#ifdef AFFALLOC_SIMCHECK_DISABLED
inline constexpr bool compiledIn = false;
#else
inline constexpr bool compiledIn = true;
#endif

/**
 * Runtime knobs, carried inside sim::MachineConfig. Defaults come from
 * the environment so the whole bench/test surface can be audited
 * without per-binary flag plumbing:
 *   AFFALLOC_SIMCHECK=1          enable epoch auditing
 *   AFFALLOC_SIMCHECK_PERIOD=N   audit every N epochs (default 64)
 *   AFFALLOC_SIMCHECK_WATCHDOG=N trip after N stalled epochs
 *                                (default 100000; 0 disables)
 */
struct SimCheckConfig
{
    /** Run registered audits at epoch boundaries. */
    bool audit = false;
    /** Epochs between audit passes when enabled (>= 1). */
    std::uint32_t auditPeriodEpochs = 64;
    /** Consecutive no-progress epochs before the watchdog trips. */
    std::uint32_t watchdogStallEpochs = 100000;

    /** Defaults overridden by AFFALLOC_SIMCHECK* environment vars. */
    static SimCheckConfig fromEnv();
};

/** One failed invariant found during an audit pass. */
struct Violation
{
    std::string component;
    std::string check;
    std::string message;
};

/** Thrown by the Auditor when an audit pass found violations. */
class AuditError : public PanicError
{
  public:
    AuditError(const std::string &what, std::vector<Violation> report);

    /** All violations from the failing pass. */
    const std::vector<Violation> &report() const { return report_; }

  private:
    std::vector<Violation> report_;
};

/** Thrown when the livelock watchdog trips. */
class LivelockError : public PanicError
{
  public:
    using PanicError::PanicError;
};

/**
 * Handed to each check; the check calls fail()/failf() once per
 * violated invariant and simply returns. The Auditor collects
 * violations across all checks before throwing.
 */
class CheckContext
{
  public:
    /** Record one violation of the current check. */
    void fail(std::string message);

    /** printf-style convenience over fail(). */
    template <typename... Args>
    void
    failf(const char *fmt, Args &&...args)
    {
        fail(detail::formatMessage(fmt, std::forward<Args>(args)...));
    }

    /** Whether the current check has recorded any violation. */
    bool failed() const { return failed_; }

  private:
    friend class Auditor;

    CheckContext(std::string component, std::string check,
                 std::vector<Violation> &sink)
        : component_(std::move(component)), check_(std::move(check)),
          sink_(sink)
    {
    }

    std::string component_;
    std::string check_;
    std::vector<Violation> &sink_;
    bool failed_ = false;
};

/**
 * Registry of named invariant checks. Components register at
 * construction and unregister from their destructors; the Auditor is
 * owned by the Machine, which outlives every registrant.
 */
class Auditor
{
  public:
    using CheckFn = std::function<void(CheckContext &)>;

    /** Register a check; returns an id for unregisterCheck(). */
    int registerCheck(std::string component, std::string check, CheckFn fn);

    /** Remove a check by id; unknown ids are ignored. */
    void unregisterCheck(int id);

    /** Enable/disable epoch-boundary auditing (no-op when compiled out). */
    void setEnabled(bool enabled) { enabled_ = compiledIn && enabled; }
    bool enabled() const { return enabled_; }

    /** Epochs between audit passes (clamped to >= 1). */
    void setPeriodEpochs(std::uint32_t period);

    std::size_t numChecks() const { return checks_.size(); }

    /**
     * Run every registered check regardless of the enabled flag
     * (on-demand audit); throws AuditError if anything failed.
     */
    void runAll() const;

    /** Run every check and return the violations without throwing. */
    std::vector<Violation> collect() const;

    /**
     * Epoch hook: runs a full pass when auditing is enabled and
     * `epochsCompleted` is a multiple of the period.
     */
    void
    onEpochEnd(std::uint64_t epochsCompleted) const
    {
        if (!enabled_ || epochsCompleted % period_ != 0)
            return;
        runAll();
    }

  private:
    struct Entry
    {
        int id;
        std::string component;
        std::string check;
        CheckFn fn;
    };

    std::vector<Entry> checks_;
    int nextId_ = 1;
    bool enabled_ = false;
    std::uint32_t period_ = 64;
};

/**
 * Counts consecutive epochs with no forward progress. The caller
 * decides what "progress" means (the Machine uses work-counter deltas,
 * deliberately excluding NoC messages so a NACK-retry storm does not
 * masquerade as progress).
 */
class LivelockWatchdog
{
  public:
    explicit LivelockWatchdog(std::uint32_t limit = 0) : limit_(limit) {}

    void setLimit(std::uint32_t limit) { limit_ = limit; }

    /**
     * Note one completed epoch; returns true when the stall streak
     * just reached the limit (caller raises LivelockError). A limit of
     * 0 disables the watchdog.
     */
    bool
    observe(bool progress)
    {
        if (limit_ == 0 || progress) {
            stalled_ = 0;
            return false;
        }
        return ++stalled_ >= limit_;
    }

    std::uint32_t stalledEpochs() const { return stalled_; }

  private:
    std::uint32_t limit_;
    std::uint32_t stalled_ = 0;
};

/**
 * Order-insensitive digest: each item is hashed independently with
 * FNV-1a and folded in with wrapping addition, so two runs that make
 * the same decisions in any order produce the same value.
 */
class Digest
{
  public:
    static constexpr std::uint64_t fnvBasis = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t fnvPrime = 0x100000001b3ull;

    /** FNV-1a over raw bytes, continuing from @p h. */
    static std::uint64_t fnv1a(const void *data, std::size_t n,
                               std::uint64_t h = fnvBasis);

    /** Hash of one (key, value) item. */
    static std::uint64_t hashItem(std::string_view key, std::uint64_t value);

    /** Fold one (key, value) item into the digest. */
    void fold(std::string_view key, std::uint64_t value)
    {
        acc_ += hashItem(key, value);
    }

    /** Fold a pre-computed item hash (e.g. another digest). */
    void foldRaw(std::uint64_t itemHash) { acc_ += itemHash; }

    std::uint64_t value() const { return acc_; }

  private:
    std::uint64_t acc_ = 0;
};

/** Digest over every named counter in the stats registry. */
std::uint64_t digestOfStats(const sim::Stats &stats);

/** Render a digest as the canonical 0x%016llx string. */
std::string digestToString(std::uint64_t digest);

} // namespace affalloc::simcheck

#endif // AFFALLOC_SIM_SIMCHECK_HH
