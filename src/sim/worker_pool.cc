#include "sim/worker_pool.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "sim/log.hh"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace affalloc::sim
{

namespace
{

/** Whether workers pin themselves to host CPUs (AFFALLOC_SIM_PIN=1). */
bool
pinWorkers()
{
    static const bool pin = [] {
        const char *env = std::getenv("AFFALLOC_SIM_PIN");
        return env != nullptr && *env != '\0' && *env != '0';
    }();
    return pin;
}

void
pinToCpu(unsigned role)
{
#if defined(__linux__)
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        return;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(role % hw, &set);
    pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
    (void)role;
#endif
}

} // namespace

namespace
{

prof::PoolTelemetry
poolTelemetryThunk(const void *key)
{
    return static_cast<const WorkerPool *>(key)->telemetrySnapshot();
}

} // namespace

WorkerPool::WorkerPool(unsigned threads)
    : numThreads_(threads == 0 ? 1 : threads), errors_(numThreads_),
      busyNs_(numThreads_), lastTaskNs_(numThreads_)
{
    if (prof::compiledIn)
        prof::registerPool(this, &poolTelemetryThunk);
    workers_.reserve(numThreads_ - 1);
    for (unsigned role = 0; role + 1 < numThreads_; ++role)
        workers_.emplace_back([this, role] { workerLoop(role); });
}

WorkerPool::~WorkerPool()
{
    // Fold the final snapshot into prof's retired list first: pools
    // (e.g. the shared sweep pool) can be torn down before the
    // atexit prof writer harvests.
    if (prof::compiledIn)
        prof::unregisterPool(this, telemetrySnapshot());
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
WorkerPool::runRole(unsigned role)
{
    const std::uint64_t t0 = prof::nowNsIfEnabled();
    try {
        (*body_)(role);
    } catch (...) {
        errors_[role] = std::current_exception();
    }
    if (t0) {
        const std::uint64_t dt = prof::nowNs() - t0;
        busyNs_[role].fetch_add(dt, std::memory_order_relaxed);
        lastTaskNs_[role].store(dt, std::memory_order_relaxed);
    }
}

void
WorkerPool::workerLoop(unsigned role)
{
    if (pinWorkers())
        pinToCpu(role);
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(mutex_);
            wake_.wait(lk, [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
        }
        runRole(role);
        {
            std::lock_guard<std::mutex> lk(mutex_);
            if (--pending_ == 0)
                done_.notify_one();
        }
    }
}

void
WorkerPool::dispatch(const std::function<void(unsigned)> &body)
{
    body_ = &body;
    std::fill(errors_.begin(), errors_.end(), std::exception_ptr{});
    if (numThreads_ == 1) {
        runRole(0);
    } else {
        {
            std::lock_guard<std::mutex> lk(mutex_);
            generation_ += 1;
            pending_ = static_cast<unsigned>(workers_.size());
        }
        wake_.notify_all();
        runRole(numThreads_ - 1);
        std::unique_lock<std::mutex> lk(mutex_);
        done_.wait(lk, [&] { return pending_ == 0; });
    }
    body_ = nullptr;
    if (prof::enabled()) {
        // The barrier above orders every role's lastTaskNs_ store
        // before these loads; zero entries mean the role ran while
        // profiling was off (don't skew the imbalance ratio).
        std::uint64_t mx = 0, sum = 0;
        unsigned sampled = 0;
        for (unsigned role = 0; role < numThreads_; ++role) {
            const std::uint64_t v =
                lastTaskNs_[role].exchange(0, std::memory_order_relaxed);
            mx = std::max(mx, v);
            sum += v;
            sampled += v != 0;
        }
        if (sampled == numThreads_) {
            dispatches_.fetch_add(1, std::memory_order_relaxed);
            sumMaxTaskNs_.fetch_add(mx, std::memory_order_relaxed);
            sumTaskNs_.fetch_add(sum, std::memory_order_relaxed);
        }
    }
    for (auto &e : errors_) {
        if (e) {
            const std::exception_ptr first = e;
            std::rethrow_exception(first);
        }
    }
}

prof::PoolTelemetry
WorkerPool::telemetrySnapshot() const
{
    prof::PoolTelemetry t;
    t.threads = numThreads_;
    t.dispatches = dispatches_.load(std::memory_order_relaxed);
    t.busyNs.reserve(numThreads_);
    for (unsigned role = 0; role < numThreads_; ++role)
        t.busyNs.push_back(busyNs_[role].load(std::memory_order_relaxed));
    t.sumMaxTaskNs = sumMaxTaskNs_.load(std::memory_order_relaxed);
    t.sumTaskNs = sumTaskNs_.load(std::memory_order_relaxed);
    return t;
}

namespace
{
std::atomic<unsigned> defaultSimThreads_{1};
} // namespace

unsigned
defaultSimThreads()
{
    return defaultSimThreads_.load(std::memory_order_relaxed);
}

void
setDefaultSimThreads(unsigned n)
{
    if (n == 0)
        SIM_FATAL("sim", "sim-threads must be >= 1 (0 given)");
    defaultSimThreads_.store(n, std::memory_order_relaxed);
}

WorkerPool &
sharedWorkerPool(unsigned threads)
{
    static std::mutex m;
    static std::unique_ptr<WorkerPool> pool;
    std::lock_guard<std::mutex> lk(m);
    if (!pool || pool->threads() < threads)
        pool = std::make_unique<WorkerPool>(threads);
    return *pool;
}

} // namespace affalloc::sim
