/**
 * @file
 * Deterministic fault injection and the machine's degraded-state
 * bookkeeping. A FaultPlan is drawn once from a seeded Rng and then
 * consulted by every layer that can degrade gracefully:
 *
 *  - offline L3 banks: the bank mapper redirects lines homed at a
 *    dead bank to its spare (the next live bank in numbering order),
 *    the allocator's Eq. 4 policy skips dead banks, and irregular
 *    slots already placed there can be migrated off (victim
 *    migration);
 *  - degraded NoC links: a flit multiplier models a link running at
 *    reduced bandwidth (e.g. a lane-degraded SerDes) — routes still
 *    work but occupy the link longer;
 *  - transient offload rejection: stream-engine configuration
 *    requests NACK with a configured probability; the stream
 *    executor retries with capped exponential backoff and finally
 *    falls back to in-core execution per stream.
 *
 * An empty plan (the default FaultConfig) is guaranteed to be
 * zero-overhead: no Rng draws, identity bank redirection, unit link
 * multipliers — cycle counts are bit-identical to a build without
 * the subsystem.
 */

#ifndef AFFALLOC_SIM_FAULT_HH
#define AFFALLOC_SIM_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace affalloc::sim
{

/** Kind of one scheduled mid-run fault event. */
enum class FaultKind : std::uint8_t
{
    /** Mark an L3 bank offline at the scheduled cycle. */
    killBank,
    /** Degrade a directed mesh link at the scheduled cycle. */
    degradeLink,
    /**
     * Set the offload NACK rate at the scheduled cycle (a controller
     * brown-out rejecting stream configuration requests). target is
     * the reject probability in permille (0..1000); 0 ends the storm.
     */
    nackStorm
};

/** Short event-kind name matching the schedule grammar. */
const char *faultKindName(FaultKind k);

/** Largest accepted link flit multiplier (sanity bound on configs). */
inline constexpr std::uint32_t maxLinkDegradeFactor = 1024;

/**
 * One scheduled fault event of a mid-run campaign: at simulated cycle
 * @p atCycle, kill bank @p target or degrade link @p target. Applied
 * by open-system drivers (the serving front-end) at the first
 * scheduling round whose clock has reached the event.
 */
struct TimedFault
{
    /** Simulated cycle at (or after) which the event fires. */
    Cycles atCycle = 0;
    FaultKind kind = FaultKind::killBank;
    /** Bank id (killBank), directed link id (degradeLink), or the
     *  reject rate in permille (nackStorm). */
    std::uint32_t target = 0;
    /** Flit multiplier for degradeLink events (>= 1). */
    std::uint32_t factor = 4;

    bool
    operator==(const TimedFault &o) const
    {
        return atCycle == o.atCycle && kind == o.kind &&
               target == o.target &&
               (kind != FaultKind::degradeLink || factor == o.factor);
    }
};

/**
 * Parse a fault-campaign schedule such as
 * "bank:3@50000,link:12@80000x8,nack:800@90000" into TimedFault
 * events. Grammar: comma-separated `bank:<id>@<cycle>`,
 * `link:<id>@<cycle>[x<f>]` (f = flit multiplier, default 4), and
 * `nack:<permille>@<cycle>` (offload reject rate; 0 ends a storm).
 * Malformed specs SIM_FATAL; target ids are validated separately
 * (validateFaultSchedule) once the mesh is known.
 */
std::vector<TimedFault> parseFaultSchedule(const std::string &spec);

/**
 * Render a schedule back into the parseFaultSchedule grammar (the
 * canonical form round-trips: parse(format(s)) == s). Used by repro
 * bundles and the chaos CLI so a shrunk campaign is copy-pasteable.
 */
std::string formatFaultSchedule(const std::vector<TimedFault> &schedule);

/**
 * Validate a fault schedule against an @p mesh_x by @p mesh_y
 * machine: bank targets must be real banks, link targets real mesh
 * links (edge slots that would leave the mesh are rejected), degrade
 * factors >= 1, and — when @p max_cycles is nonzero — every event
 * must fire within the horizon. SIM_FATALs with the offending event
 * instead of letting a typo'd campaign silently never fire.
 */
void validateFaultSchedule(const std::vector<TimedFault> &schedule,
                           std::uint32_t mesh_x, std::uint32_t mesh_y,
                           Cycles max_cycles = 0);

/**
 * Fault-campaign configuration, carried inside MachineConfig so a
 * whole experiment (machine + faults) is one value. All fields
 * default to "healthy machine".
 */
struct FaultConfig
{
    /** Seed for all fault draws (bank picks, link picks, NACKs). */
    std::uint64_t seed = 0xfa117;
    /** Number of L3 banks to mark offline at boot. */
    std::uint32_t offlineBanks = 0;
    /** Probability an offload (stream config) request is NACKed. */
    double offloadRejectRate = 0.0;
    /** Number of mesh links to degrade at boot. */
    std::uint32_t degradedLinks = 0;
    /** Flit multiplier on degraded links (bandwidth divisor). */
    std::uint32_t linkDegradeFactor = 4;
    /** Offload retries before a stream falls back to in-core. */
    std::uint32_t maxOffloadRetries = 4;
    /** Base backoff in cycles; doubles per retry (capped). */
    std::uint32_t offloadRetryBackoff = 16;
    /**
     * Scheduled mid-run fault events (empty: none). Boot-time faults
     * above fire before cycle 0; these fire while work is in flight,
     * applied by the driver that owns the clock (serving front-end).
     */
    std::vector<TimedFault> schedule;

    /** Whether any fault class is active. */
    bool
    any() const
    {
        return offlineBanks > 0 || offloadRejectRate > 0.0 ||
               degradedLinks > 0 || !schedule.empty();
    }
};

/**
 * The realized fault plan of one machine instance: which banks are
 * dead, which links are slow, and the NACK draw stream. Owned by the
 * simulated OS (which learns of hardware faults and exports the
 * live-bank mask to the runtime); mutated only by dynamic injection
 * (offlineBank()).
 */
class FaultPlan
{
  public:
    /** A healthy plan over zero banks (placeholder). */
    FaultPlan() = default;

    /**
     * Draw a plan for an @p mesh_x by @p mesh_y machine from
     * @p cfg's seed. Offline banks and degraded links are picked
     * uniformly without replacement; at least one bank always stays
     * live.
     */
    FaultPlan(const FaultConfig &cfg, std::uint32_t mesh_x,
              std::uint32_t mesh_y);

    /** Whether any fault is (or became) active. */
    bool
    any() const
    {
        return cfg_.any() || offlineCount_ > 0 || degradedCount_ > 0;
    }
    /** The configuration the plan was drawn from. */
    const FaultConfig &config() const { return cfg_; }

    // ------------------------------------------------------------ banks
    /** Whether bank @p b is alive. */
    bool
    bankLive(BankId b) const
    {
        return liveMask_.empty() || liveMask_[b] != 0;
    }
    /** Banks currently offline. */
    std::uint32_t numOfflineBanks() const { return offlineCount_; }
    /** Banks still alive. */
    std::uint32_t
    numLiveBanks() const
    {
        return static_cast<std::uint32_t>(liveMask_.size()) -
               offlineCount_;
    }
    /**
     * Live-bank mask (1 = alive), one entry per bank; exported to
     * the allocator runtime through SimOS::topology().
     */
    const std::vector<std::uint8_t> &liveBankMask() const
    {
        return liveMask_;
    }
    /**
     * Spare bank serving @p b's lines: @p b itself when alive, else
     * the next live bank in bank-numbering order.
     */
    BankId
    redirect(BankId b) const
    {
        return redirect_.empty() ? b : redirect_[b];
    }
    /**
     * Dynamically mark @p b offline (fault injection mid-run).
     * fatal() if this would kill the last live bank; no-op when @p b
     * is already offline. Returns true when the mask changed.
     */
    bool offlineBank(BankId b);

    /**
     * Re-target dead bank @p dead's spare to live bank @p target
     * (re-affinity recovery: spread dead banks' lines over the least
     * contended survivors instead of the default next-in-order spare).
     * fatal() when @p dead is still live or @p target is not live.
     * Note offlineBank() rebuilds the default map, clobbering custom
     * redirects — recovery re-runs its assignment after every kill.
     */
    void setRedirect(BankId dead, BankId target);

    // ------------------------------------------------------------ links
    /** Flit multiplier of directed link @p link (1 = healthy). */
    std::uint32_t
    linkFlitMultiplier(std::uint32_t link) const
    {
        return linkMult_.empty() ? 1 : linkMult_[link];
    }
    /** Number of degraded links in the plan. */
    std::uint32_t numDegradedLinks() const { return degradedCount_; }
    /**
     * Dynamically degrade directed link @p link to @p factor x flit
     * occupancy (mid-run fault injection). fatal() on out-of-range
     * links or a zero factor. Returns true when the multiplier
     * changed (false: link already at that factor).
     */
    bool degradeLink(std::uint32_t link, std::uint32_t factor);

    /**
     * Monotonic counter bumped whenever the bank -> served-bank
     * mapping may have changed (offlineBank, setRedirect). Consumers
     * that cache bank-keyed state (the allocator's free lists)
     * compare against it to re-key lazily and deterministically.
     */
    std::uint64_t redirectVersion() const { return redirectVersion_; }

    // --------------------------------------------------------- offloads
    /** Whether offload requests can ever be rejected. */
    bool rejectsOffloads() const { return cfg_.offloadRejectRate > 0.0; }
    /**
     * Dynamically set the offload NACK rate (a nackStorm event).
     * fatal() outside [0, 1]. Draw determinism is preserved: the Rng
     * is still only consulted while the rate is nonzero.
     */
    void setOffloadRejectRate(double rate);
    /**
     * Draw one offload admission decision. Never touches the Rng
     * when the reject rate is zero (determinism guarantee).
     */
    bool
    rejectOffload()
    {
        return cfg_.offloadRejectRate > 0.0 &&
               rng_.chance(cfg_.offloadRejectRate);
    }

    /** One-line human-readable description. */
    std::string toString() const;

  private:
    void rebuildRedirect();

    FaultConfig cfg_{};
    Rng rng_{0};
    /** 1 = live, per bank; empty means "no banks modeled". */
    std::vector<std::uint8_t> liveMask_;
    /** Per-bank spare map (identity for live banks). */
    std::vector<BankId> redirect_;
    /** Per-directed-link flit multiplier; empty = all healthy. */
    std::vector<std::uint32_t> linkMult_;
    std::uint32_t offlineCount_ = 0;
    std::uint32_t degradedCount_ = 0;
    std::uint64_t redirectVersion_ = 0;
};

} // namespace affalloc::sim

#endif // AFFALLOC_SIM_FAULT_HH
