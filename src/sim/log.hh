/**
 * @file
 * Minimal logging / error helpers in the spirit of gem5's logging.hh:
 * panic() for internal invariant violations, fatal() for user errors,
 * warn()/inform() for status messages.
 */

#ifndef AFFALLOC_SIM_LOG_HH
#define AFFALLOC_SIM_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace affalloc
{

/** Thrown by panic(); signals a simulator bug. */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/** Thrown by fatal(); signals a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

namespace detail
{

/** Format a printf-style message into a std::string. */
std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/**
 * Report a condition that indicates a bug in the simulator itself.
 * Throws PanicError so tests can assert on invariant enforcement.
 */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args &&...args)
{
    throw PanicError("panic: " +
                     detail::formatMessage(fmt, std::forward<Args>(args)...));
}

/**
 * Report a condition caused by invalid user input or configuration.
 * Throws FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args &&...args)
{
    throw FatalError("fatal: " +
                     detail::formatMessage(fmt, std::forward<Args>(args)...));
}

/** Print a warning to stderr; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr; execution continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by benchmarks). */
void setQuiet(bool quiet);

} // namespace affalloc

#endif // AFFALLOC_SIM_LOG_HH
