/**
 * @file
 * Minimal logging / error helpers in the spirit of gem5's logging.hh:
 * panic() for internal invariant violations, fatal() for user errors,
 * warn()/inform() for status messages.
 */

#ifndef AFFALLOC_SIM_LOG_HH
#define AFFALLOC_SIM_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace affalloc
{

/** Thrown by panic(); signals a simulator bug. */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/** Thrown by fatal(); signals a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

namespace detail
{

/** Format a printf-style message into a std::string. */
std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Build the one-line structured diagnostic shared by the SIM_* macro
 * family and simcheck audit reports:
 *
 *     <kind>: [<component>] <file>:<line>: (<expr>) <message>
 *
 * @p expr may be null (unconditional SIM_PANIC/SIM_FATAL). The file
 * path is trimmed to the repo-relative part.
 */
std::string diagnosticMessage(const char *kind, const char *component,
                              const char *file, int line, const char *expr,
                              const std::string &msg);

} // namespace detail

/**
 * Report a condition that indicates a bug in the simulator itself.
 * Throws PanicError so tests can assert on invariant enforcement.
 */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args &&...args)
{
    throw PanicError("panic: " +
                     detail::formatMessage(fmt, std::forward<Args>(args)...));
}

/**
 * Report a condition caused by invalid user input or configuration.
 * Throws FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args &&...args)
{
    throw FatalError("fatal: " +
                     detail::formatMessage(fmt, std::forward<Args>(args)...));
}

/** Throw a PanicError carrying the structured SIM_CHECK diagnostic. */
template <typename... Args>
[[noreturn]] void
simCheckFail(const char *component, const char *file, int line,
             const char *expr, const char *fmt, Args &&...args)
{
    throw PanicError(detail::diagnosticMessage(
        "panic", component, file, line, expr,
        detail::formatMessage(fmt, std::forward<Args>(args)...)));
}

/** Throw a FatalError carrying the structured SIM_REQUIRE diagnostic. */
template <typename... Args>
[[noreturn]] void
simRequireFail(const char *component, const char *file, int line,
               const char *expr, const char *fmt, Args &&...args)
{
    throw FatalError(detail::diagnosticMessage(
        "fatal", component, file, line, expr,
        detail::formatMessage(fmt, std::forward<Args>(args)...)));
}

/**
 * SIM_CHECK(component, cond, fmt, ...) — internal invariant; a failure
 * is a simulator bug. Throws PanicError with component, file:line, and
 * the failed expression. SIM_REQUIRE is the same shape for user /
 * configuration errors and throws FatalError. SIM_PANIC / SIM_FATAL
 * are the unconditional forms.
 */
#define SIM_CHECK(component, cond, ...)                                       \
    do {                                                                      \
        if (!(cond))                                                          \
            ::affalloc::simCheckFail(component, __FILE__, __LINE__, #cond,    \
                                     __VA_ARGS__);                            \
    } while (0)

#define SIM_REQUIRE(component, cond, ...)                                     \
    do {                                                                      \
        if (!(cond))                                                          \
            ::affalloc::simRequireFail(component, __FILE__, __LINE__, #cond,  \
                                       __VA_ARGS__);                          \
    } while (0)

#define SIM_PANIC(component, ...)                                             \
    ::affalloc::simCheckFail(component, __FILE__, __LINE__, nullptr,          \
                             __VA_ARGS__)

#define SIM_FATAL(component, ...)                                             \
    ::affalloc::simRequireFail(component, __FILE__, __LINE__, nullptr,        \
                               __VA_ARGS__)

/** Print a warning to stderr; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr; execution continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by benchmarks). */
void setQuiet(bool quiet);

} // namespace affalloc

#endif // AFFALLOC_SIM_LOG_HH
