#include "sim/simcheck.hh"

#include <cstdlib>

#include "sim/stats.hh"

namespace affalloc::simcheck
{

namespace
{

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 0);
    if (end == v || *end != '\0') {
        warn("ignoring malformed %s='%s'", name, v);
        return fallback;
    }
    return parsed;
}

} // namespace

SimCheckConfig
SimCheckConfig::fromEnv()
{
    SimCheckConfig cfg;
    cfg.audit = envU64("AFFALLOC_SIMCHECK", 0) != 0;
    cfg.auditPeriodEpochs = static_cast<std::uint32_t>(
        envU64("AFFALLOC_SIMCHECK_PERIOD", cfg.auditPeriodEpochs));
    cfg.watchdogStallEpochs = static_cast<std::uint32_t>(
        envU64("AFFALLOC_SIMCHECK_WATCHDOG", cfg.watchdogStallEpochs));
    return cfg;
}

AuditError::AuditError(const std::string &what, std::vector<Violation> report)
    : PanicError(what), report_(std::move(report))
{
}

void
CheckContext::fail(std::string message)
{
    failed_ = true;
    sink_.push_back({component_, check_, std::move(message)});
}

int
Auditor::registerCheck(std::string component, std::string check, CheckFn fn)
{
    SIM_CHECK("simcheck", fn != nullptr, "null check '%s/%s'",
              component.c_str(), check.c_str());
    const int id = nextId_++;
    checks_.push_back(
        {id, std::move(component), std::move(check), std::move(fn)});
    return id;
}

void
Auditor::unregisterCheck(int id)
{
    for (auto it = checks_.begin(); it != checks_.end(); ++it) {
        if (it->id == id) {
            checks_.erase(it);
            return;
        }
    }
}

void
Auditor::setPeriodEpochs(std::uint32_t period)
{
    period_ = period ? period : 1;
}

std::vector<Violation>
Auditor::collect() const
{
    std::vector<Violation> violations;
    for (const Entry &e : checks_) {
        CheckContext ctx(e.component, e.check, violations);
        e.fn(ctx);
    }
    return violations;
}

void
Auditor::runAll() const
{
    std::vector<Violation> violations = collect();
    if (violations.empty())
        return;
    std::string what = detail::formatMessage(
        "panic: simcheck audit failed: %zu violation(s)", violations.size());
    for (const Violation &v : violations) {
        what += "\n  audit: [" + v.component + "] " + v.check + ": " +
                v.message;
    }
    throw AuditError(what, std::move(violations));
}

std::uint64_t
Digest::fnv1a(const void *data, std::size_t n, std::uint64_t h)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= fnvPrime;
    }
    return h;
}

std::uint64_t
Digest::hashItem(std::string_view key, std::uint64_t value)
{
    std::uint64_t h = fnv1a(key.data(), key.size());
    // Separator so ("ab", x) and ("a", ...) can't collide trivially.
    const unsigned char sep = 0xff;
    h = fnv1a(&sep, 1, h);
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<unsigned char>(value >> (8 * i));
    return fnv1a(bytes, sizeof(bytes), h);
}

std::uint64_t
digestOfStats(const sim::Stats &stats)
{
    Digest d;
    for (const sim::CounterRef &c : sim::statsCounters())
        d.fold(c.name, c.get(stats));
    return d.value();
}

std::string
digestToString(std::uint64_t digest)
{
    return detail::formatMessage("0x%016llx",
                                 static_cast<unsigned long long>(digest));
}

} // namespace affalloc::simcheck
