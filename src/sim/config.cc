#include "sim/config.hh"

#include <sstream>

#include "sim/log.hh"

namespace affalloc::sim
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

std::string
MachineConfig::toString() const
{
    std::ostringstream os;
    os << "System      " << clockGhz << " GHz, " << meshX << "x" << meshY
       << " cores\n"
       << "Core        " << coreIssueWidth << "-issue OOO, " << robEntries
       << " ROB, " << simdLanes << "-lane SIMD\n"
       << "L1 D$       " << l1SizeBytes / 1024 << "KB " << l1Assoc
       << "-way, " << l1Latency << " cy\n"
       << "Priv. L2 $  " << l2SizeBytes / 1024 << "KB " << l2Assoc
       << "-way, " << l2Latency << " cy\n"
       << "Shared L3 $ " << l3BankSizeBytes / 1024 / 1024 << "MB/bank x "
       << numBanks() << " banks, " << l3Assoc << "-way, " << l3Latency
       << " cy, static NUCA " << l3DefaultInterleave << "B interleave\n"
       << "NoC         " << meshX << "x" << meshY << " mesh, " << linkBytes
       << "B links, " << hopLatency << " cy/hop, X-Y routing\n"
       << "DRAM        " << dramTotalGBs << " GB/s, " << dramChannels
       << " channels at corners, " << dramLatency << " cy\n"
       << "SEcore      " << seCoreStreams << " streams\n"
       << "SEL3        " << seL3Streams << " streams, "
       << seComputeInitLatency << " cy compute init\n"
       << "IOT         " << iotEntries << " regions";
    return os.str();
}

const char *
bankNumberingName(BankNumbering n)
{
    switch (n) {
      case BankNumbering::rowMajor:
        return "row-major";
      case BankNumbering::snake:
        return "snake";
      case BankNumbering::block2:
        return "block2x2";
      default:
        return "?";
    }
}

void
MachineConfig::validate() const
{
    if (meshX == 0 || meshY == 0)
        SIM_FATAL("config", "mesh dimensions must be nonzero (%ux%u)", meshX, meshY);
    if (clockGhz <= 0.0)
        SIM_FATAL("config", "clock frequency must be positive (%g GHz)", clockGhz);
    if (!isPow2(lineSize))
        SIM_FATAL("config", "line size must be a power of two (%u)", lineSize);
    if (!isPow2(l3DefaultInterleave) || l3DefaultInterleave < lineSize)
        SIM_FATAL("config", "default L3 interleave must be a power of two >= line size");
    if (l1SizeBytes % (l1Assoc * lineSize) != 0)
        SIM_FATAL("config", "L1 size must be a multiple of assoc * line size");
    if (l2SizeBytes % (l2Assoc * lineSize) != 0)
        SIM_FATAL("config", "L2 size must be a multiple of assoc * line size");
    if (l3BankSizeBytes % (l3Assoc * lineSize) != 0)
        SIM_FATAL("config", "L3 bank size must be a multiple of assoc * line size");
    if (dramChannels == 0 || dramChannels > numTiles())
        SIM_FATAL("config", "dram channels must be in [1, tiles]");
    if (dramTotalGBs <= 0.0)
        SIM_FATAL("config", "DRAM bandwidth must be positive (%g GB/s)", dramTotalGBs);
    if (linkBytes == 0)
        SIM_FATAL("config", "NoC link width must be nonzero");
    if (epochChunk == 0)
        SIM_FATAL("config", "epoch chunk must be nonzero");
    if (simThreads == 0)
        SIM_FATAL("config", "simThreads must be >= 1 (0 would leave no one "
              "to replay the epoch)");
    if (faults.offloadRejectRate < 0.0 || faults.offloadRejectRate > 1.0)
        SIM_FATAL("config", "offload reject rate %g outside [0, 1]",
              faults.offloadRejectRate);
    if (faults.offlineBanks >= numTiles())
        SIM_FATAL("config", "cannot offline %u of %u banks (at least one must stay "
              "live)",
              faults.offlineBanks, numTiles());
    if (faults.linkDegradeFactor == 0)
        SIM_FATAL("config", "link degrade factor must be >= 1");
    if (llcIoPolicy == LlcIoPolicy::wayRestrict &&
        (llcIoWays == 0 || llcIoWays >= l3Assoc))
        SIM_FATAL("config", "way-restricted I/O allocation needs llcIoWays in "
              "[1, %u), got %u", l3Assoc, llcIoWays);
    for (int c = 0; c < numAgentClasses; ++c)
        if (classArb.share[c] <= 0.0)
            SIM_FATAL("config", "class bandwidth share for %s must be positive "
                  "(%g)", agentClassName(static_cast<AgentClass>(c)),
                  classArb.share[c]);
    if (classArb.yieldPenalty < 0.0)
        SIM_FATAL("config", "class yield penalty must be >= 0 (%g)",
              classArb.yieldPenalty);
}

const char *
llcIoPolicyName(LlcIoPolicy p)
{
    switch (p) {
      case LlcIoPolicy::ddio:
        return "ddio";
      case LlcIoPolicy::wayRestrict:
        return "way";
      case LlcIoPolicy::bypass:
        return "bypass";
      default:
        return "?";
    }
}

const char *
classArbModeName(ClassArbMode m)
{
    switch (m) {
      case ClassArbMode::none:
        return "none";
      case ClassArbMode::partition:
        return "part";
      case ClassArbMode::priority:
        return "prio";
      default:
        return "?";
    }
}

} // namespace affalloc::sim

namespace affalloc
{

const char *
trafficClassName(TrafficClass tc)
{
    switch (tc) {
      case TrafficClass::control:
        return "Control";
      case TrafficClass::data:
        return "Data";
      case TrafficClass::offload:
        return "Offload";
      default:
        return "?";
    }
}

const char *
agentClassName(AgentClass c)
{
    switch (c) {
      case AgentClass::ndc:
        return "ndc";
      case AgentClass::host:
        return "host";
      case AgentClass::io:
        return "io";
      default:
        return "?";
    }
}

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::inCore:
        return "In-Core";
      case ExecMode::nearL3:
        return "Near-L3";
      case ExecMode::affAlloc:
        return "Aff-Alloc";
      default:
        return "?";
    }
}

} // namespace affalloc
