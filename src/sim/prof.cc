#include "sim/prof.hh"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

namespace affalloc::prof
{

namespace
{

std::uint64_t
steadyNs()
{
    const auto t = std::chrono::steady_clock::now().time_since_epoch();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t).count();
    // 0 is the "disabled" sentinel in a couple of fast paths; the
    // steady clock starting exactly at zero is not worth a branch
    // everywhere else.
    return static_cast<std::uint64_t>(ns) | 1u;
}

/** Read one "Vm...: N kB" field out of /proc/self/status. */
std::uint64_t
readProcStatusKb(const char *field)
{
#if defined(__linux__)
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return 0;
    char line[256];
    std::uint64_t kb = 0;
    const std::size_t flen = std::strlen(field);
    while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, field, flen) == 0 && line[flen] == ':') {
            kb = std::strtoull(line + flen + 1, nullptr, 10);
            break;
        }
    }
    std::fclose(f);
    return kb;
#else
    (void)field;
    return 0;
#endif
}

} // namespace

std::uint64_t
nowNs()
{
    return steadyNs();
}

std::uint64_t
peakRssKb()
{
    return readProcStatusKb("VmHWM");
}

#ifndef AFFALLOC_PROF_DISABLED

namespace detail
{

std::atomic<bool> enabled_{false};

/**
 * One phase node of one thread's tree. Accumulators are relaxed
 * atomics so a harvest racing a still-running scope reads torn-free
 * values; tree *shape* mutations happen only on the owning thread,
 * except for the child list, which harvest walks — hence the
 * per-thread node mutex around child insertion and child-list copies.
 */
struct Node
{
    const char *name = "";
    Node *parent = nullptr;
    std::vector<Node *> children;
    /** For sampled nodes: the sum over *timed* entries only. */
    std::atomic<std::uint64_t> inclusiveNs{0};
    std::atomic<std::uint64_t> count{0};
    /** Entries that paid the clock reads (== count for plain scopes). */
    std::atomic<std::uint64_t> timedCount{0};
};

struct ThreadState
{
    Node root;
    Node *current = &root;
    /** Owns every node of this thread's tree (root excepted). */
    std::deque<std::unique_ptr<Node>> nodes;
    /** Guards children vectors against harvest-time walks. */
    std::mutex shape;
    /** Rolling tick deciding which sampled-scope entries get timed. */
    std::uint64_t sampleTick = 0;
};

/** Sampled scopes time one entry in this many (plus first entries). */
constexpr std::uint64_t kSamplePeriod = 64;

namespace
{

std::mutex registryMu_;
std::vector<ThreadState *> threads_;

ThreadState &
threadState()
{
    // Leaked on purpose: worker threads outlive neither the process
    // nor the final harvest, and their trees must stay readable after
    // the thread exits (ad-hoc sweep threads die mid-run). Ownership
    // sits in the registry, which is never torn down.
    static thread_local ThreadState *state = [] {
        auto *s = new ThreadState();
        std::lock_guard<std::mutex> lk(registryMu_);
        threads_.push_back(s);
        return s;
    }();
    return *state;
}

} // namespace

Node *
scopeEnter(const char *name)
{
    ThreadState &ts = threadState();
    Node *cur = ts.current;
    // Sites pass string literals, so pointer equality catches the
    // steady state; strcmp handles the same phase named from two
    // translation units.
    for (Node *c : cur->children) {
        if (c->name == name || std::strcmp(c->name, name) == 0) {
            ts.current = c;
            return c;
        }
    }
    auto owned = std::make_unique<Node>();
    Node *child = owned.get();
    child->name = name;
    child->parent = cur;
    ts.nodes.push_back(std::move(owned));
    {
        std::lock_guard<std::mutex> lk(ts.shape);
        cur->children.push_back(child);
    }
    ts.current = child;
    return child;
}

void
scopeExit(Node *node, std::uint64_t ns)
{
    node->inclusiveNs.fetch_add(ns, std::memory_order_relaxed);
    node->count.fetch_add(1, std::memory_order_relaxed);
    node->timedCount.fetch_add(1, std::memory_order_relaxed);
    threadState().current = node->parent;
}

Node *
scopeEnterSampled(const char *name, bool &sample)
{
    ThreadState &ts = threadState();
    Node *node = scopeEnter(name);
    // Deterministic per-thread decimation; a node's first entry is
    // always timed so phases entered fewer than kSamplePeriod times
    // still get an estimate.
    sample = (ts.sampleTick++ % kSamplePeriod) == 0 ||
             node->timedCount.load(std::memory_order_relaxed) == 0;
    return node;
}

void
scopeExitSampled(Node *node, std::uint64_t ns, bool timed)
{
    if (timed) {
        node->inclusiveNs.fetch_add(ns, std::memory_order_relaxed);
        node->timedCount.fetch_add(1, std::memory_order_relaxed);
    }
    node->count.fetch_add(1, std::memory_order_relaxed);
    threadState().current = node->parent;
}

} // namespace detail

namespace
{

using detail::registryMu_;
using detail::threads_;

std::uint64_t enabledAtNs_ = 0;

// ------------------------------------------------------------- counters
std::mutex countersMu_;
std::map<std::string, std::uint64_t> counters_;

// ------------------------------------------------------------------ rss
std::atomic<std::uint64_t> rssLastSampleNs_{0};
std::atomic<std::uint64_t> rssLastKb_{0};
std::atomic<std::uint64_t> rssSamples_{0};
constexpr std::uint64_t rssSampleIntervalNs = 100'000'000; // 100 ms

// --------------------------------------------------------------- arenas
std::mutex arenasMu_;
std::map<std::uint32_t, std::uint64_t> arenas_;

// ---------------------------------------------------------------- pools
std::mutex poolsMu_;
std::map<const void *, PoolTelemetry (*)(const void *)> livePools_;
std::vector<PoolTelemetry> retiredPools_;

// ------------------------------------------------------------- progress
std::atomic<bool> progressOn_{false};
std::uint64_t progressIntervalNs_ = 5'000'000'000;
std::atomic<std::uint64_t> progressLastEmitNs_{0};
std::atomic<std::uint64_t> progressStartNs_{0};
std::atomic<std::uint64_t> progressGoal_{0};
std::atomic<std::uint64_t> progressDone_{0};
std::atomic<std::uint64_t> progressAdmitted_{0};

void
mergeInto(std::vector<PhaseNode> &out, const detail::Node &node,
          detail::ThreadState &ts)
{
    const std::uint64_t inc =
        node.inclusiveNs.load(std::memory_order_relaxed);
    const std::uint64_t cnt = node.count.load(std::memory_order_relaxed);
    const std::uint64_t timed =
        node.timedCount.load(std::memory_order_relaxed);
    std::vector<detail::Node *> kids;
    {
        std::lock_guard<std::mutex> lk(ts.shape);
        kids = node.children;
    }
    if (inc == 0 && cnt == 0 && kids.empty())
        return;
    PhaseNode *slot = nullptr;
    for (PhaseNode &p : out) {
        if (p.name == node.name) {
            slot = &p;
            break;
        }
    }
    if (!slot) {
        out.emplace_back();
        slot = &out.back();
        slot->name = node.name;
    }
    slot->inclusiveNs += inc;
    slot->count += cnt;
    slot->timedCount += timed;
    for (const detail::Node *c : kids)
        mergeInto(slot->children, *c, ts);
}

void
finalizeTree(std::vector<PhaseNode> &nodes)
{
    std::sort(nodes.begin(), nodes.end(),
              [](const PhaseNode &a, const PhaseNode &b) {
                  return a.name < b.name;
              });
    for (PhaseNode &n : nodes) {
        finalizeTree(n.children);
        // Sampled phases accumulated time for only timedCount of their
        // count entries: scale the sum up to the estimate.
        if (n.timedCount > 0 && n.timedCount < n.count) {
            n.sampled = true;
            n.inclusiveNs = n.inclusiveNs / n.timedCount * n.count +
                            n.inclusiveNs % n.timedCount * n.count /
                                n.timedCount;
        }
        std::uint64_t kids = 0;
        for (const PhaseNode &c : n.children)
            kids += c.inclusiveNs;
        // Estimates can land a hair under an exactly-timed child sum;
        // clamp so the child-contained-in-parent invariant is strict.
        n.inclusiveNs = std::max(n.inclusiveNs, kids);
        n.exclusiveNs = n.inclusiveNs - kids;
    }
}

} // namespace

void
setEnabled(bool on)
{
    if (on && !detail::enabled_.load(std::memory_order_relaxed))
        enabledAtNs_ = steadyNs();
    detail::enabled_.store(on, std::memory_order_relaxed);
}

void
addTimed(const char *name, std::uint64_t ns)
{
    if (!enabled())
        return;
    detail::Node *node = detail::scopeEnter(name);
    detail::scopeExit(node, ns);
}

void
counterAdd(const char *name, std::uint64_t v)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lk(countersMu_);
    counters_[name] += v;
}

void
counterMax(const char *name, std::uint64_t v)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lk(countersMu_);
    std::uint64_t &slot = counters_[name];
    slot = std::max(slot, v);
}

bool
rssEpochTick()
{
    if (!enabled())
        return false;
    const std::uint64_t now = steadyNs();
    std::uint64_t last = rssLastSampleNs_.load(std::memory_order_relaxed);
    if (now - last < rssSampleIntervalNs)
        return false;
    if (!rssLastSampleNs_.compare_exchange_strong(
            last, now, std::memory_order_relaxed))
        return false; // another thread is sampling this window
    const std::uint64_t kb = readProcStatusKb("VmRSS");
    if (kb) {
        rssLastKb_.store(kb, std::memory_order_relaxed);
        rssSamples_.fetch_add(1, std::memory_order_relaxed);
    }
    return kb != 0;
}

void
noteArenaFootprint(std::uint32_t arena, std::uint64_t bytes)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lk(arenasMu_);
    std::uint64_t &slot = arenas_[arena];
    slot = std::max(slot, bytes);
}

void
registerPool(const void *key, PoolTelemetry (*fn)(const void *))
{
    std::lock_guard<std::mutex> lk(poolsMu_);
    livePools_[key] = fn;
}

void
unregisterPool(const void *key, const PoolTelemetry &final_snapshot)
{
    std::lock_guard<std::mutex> lk(poolsMu_);
    livePools_.erase(key);
    if (final_snapshot.dispatches > 0)
        retiredPools_.push_back(final_snapshot);
}

void
progressEnable(double interval_sec)
{
    progressIntervalNs_ =
        static_cast<std::uint64_t>(interval_sec * 1e9);
    progressStartNs_.store(steadyNs(), std::memory_order_relaxed);
    progressLastEmitNs_.store(steadyNs(), std::memory_order_relaxed);
    progressOn_.store(true, std::memory_order_relaxed);
}

bool
progressEnabled()
{
    return progressOn_.load(std::memory_order_relaxed);
}

void
progressSetGoal(std::uint64_t goal)
{
    progressGoal_.store(goal, std::memory_order_relaxed);
    progressDone_.store(0, std::memory_order_relaxed);
    progressAdmitted_.store(0, std::memory_order_relaxed);
}

void
progressNoteAdmitted(std::uint64_t n)
{
    if (progressEnabled())
        progressAdmitted_.fetch_add(n, std::memory_order_relaxed);
}

void
progressAdvance(std::uint64_t n)
{
    if (progressEnabled())
        progressDone_.fetch_add(n, std::memory_order_relaxed);
}

void
progressTick(std::uint64_t epoch, std::uint64_t cycles)
{
    if (!progressEnabled())
        return;
    const std::uint64_t now = steadyNs();
    std::uint64_t last = progressLastEmitNs_.load(std::memory_order_relaxed);
    if (now - last < progressIntervalNs_)
        return;
    if (!progressLastEmitNs_.compare_exchange_strong(
            last, now, std::memory_order_relaxed))
        return; // another thread owns this emission window
    const std::uint64_t goal = progressGoal_.load(std::memory_order_relaxed);
    const std::uint64_t done = progressDone_.load(std::memory_order_relaxed);
    const std::uint64_t adm =
        progressAdmitted_.load(std::memory_order_relaxed);
    const double elapsed =
        double(now - progressStartNs_.load(std::memory_order_relaxed)) /
        1e9;
    // stderr only: stdout stays byte-identical with the heartbeat on.
    if (goal > 0 && done > 0 && done < goal) {
        const double eta = elapsed * double(goal - done) / double(done);
        std::fprintf(stderr,
                     "[progress] epoch %" PRIu64 " cycle %" PRIu64
                     " admitted %" PRIu64 " done %" PRIu64 "/%" PRIu64
                     " elapsed %.0fs eta %.0fs\n",
                     epoch, cycles, adm, done, goal, elapsed, eta);
    } else {
        std::fprintf(stderr,
                     "[progress] epoch %" PRIu64 " cycle %" PRIu64
                     " admitted %" PRIu64 " done %" PRIu64 "/%" PRIu64
                     " elapsed %.0fs\n",
                     epoch, cycles, adm, done, goal, elapsed);
    }
}

Snapshot
harvest()
{
    Snapshot snap;
    if (enabledAtNs_)
        snap.wallNs = steadyNs() - enabledAtNs_;
    {
        std::lock_guard<std::mutex> lk(registryMu_);
        for (detail::ThreadState *ts : threads_) {
            std::vector<detail::Node *> roots;
            {
                std::lock_guard<std::mutex> sk(ts->shape);
                roots = ts->root.children;
            }
            for (const detail::Node *r : roots)
                mergeInto(snap.phases, *r, *ts);
        }
    }
    finalizeTree(snap.phases);
    {
        std::lock_guard<std::mutex> lk(countersMu_);
        snap.counters.assign(counters_.begin(), counters_.end());
    }
    {
        std::lock_guard<std::mutex> lk(poolsMu_);
        snap.pools = retiredPools_;
        for (const auto &[key, fn] : livePools_) {
            PoolTelemetry t = fn(key);
            if (t.dispatches > 0)
                snap.pools.push_back(std::move(t));
        }
    }
    snap.peakRssKb = readProcStatusKb("VmHWM");
    snap.lastRssKb = rssLastKb_.load(std::memory_order_relaxed);
    snap.rssSamples = rssSamples_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(arenasMu_);
        snap.arenas.assign(arenas_.begin(), arenas_.end());
    }
    return snap;
}

void
resetForTest()
{
    {
        std::lock_guard<std::mutex> lk(registryMu_);
        for (detail::ThreadState *ts : threads_) {
            std::vector<detail::Node *> stack;
            {
                std::lock_guard<std::mutex> sk(ts->shape);
                stack = ts->root.children;
            }
            while (!stack.empty()) {
                detail::Node *n = stack.back();
                stack.pop_back();
                n->inclusiveNs.store(0, std::memory_order_relaxed);
                n->count.store(0, std::memory_order_relaxed);
                n->timedCount.store(0, std::memory_order_relaxed);
                std::lock_guard<std::mutex> sk(ts->shape);
                for (detail::Node *c : n->children)
                    stack.push_back(c);
            }
        }
    }
    {
        std::lock_guard<std::mutex> lk(countersMu_);
        counters_.clear();
    }
    {
        std::lock_guard<std::mutex> lk(poolsMu_);
        retiredPools_.clear();
    }
    {
        std::lock_guard<std::mutex> lk(arenasMu_);
        arenas_.clear();
    }
    rssLastSampleNs_.store(0, std::memory_order_relaxed);
    rssLastKb_.store(0, std::memory_order_relaxed);
    rssSamples_.store(0, std::memory_order_relaxed);
    if (enabled())
        enabledAtNs_ = steadyNs();
}

#else // AFFALLOC_PROF_DISABLED

void setEnabled(bool) {}
void addTimed(const char *, std::uint64_t) {}
void counterAdd(const char *, std::uint64_t) {}
void counterMax(const char *, std::uint64_t) {}
bool rssEpochTick() { return false; }
void noteArenaFootprint(std::uint32_t, std::uint64_t) {}
void registerPool(const void *, PoolTelemetry (*)(const void *)) {}
void unregisterPool(const void *, const PoolTelemetry &) {}
void progressEnable(double) {}
bool progressEnabled() { return false; }
void progressSetGoal(std::uint64_t) {}
void progressNoteAdmitted(std::uint64_t) {}
void progressAdvance(std::uint64_t) {}
void progressTick(std::uint64_t, std::uint64_t) {}
Snapshot harvest() { return Snapshot{}; }
void resetForTest() {}

#endif // AFFALLOC_PROF_DISABLED

namespace
{

/** Minimal JSON string escaper (phase/counter names are tame, but a
 *  counter name with a quote must not corrupt the document). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

void
writePhase(std::FILE *out, const PhaseNode &n, int depth)
{
    const std::string pad(2 * (depth + 2), ' ');
    std::fprintf(out,
                 "%s{\"name\":\"%s\",\"inclusive_ns\":%" PRIu64
                 ",\"exclusive_ns\":%" PRIu64 ",\"count\":%" PRIu64
                 ",\"sampled\":%s,\"timed_entries\":%" PRIu64
                 ",\"children\":[",
                 pad.c_str(), jsonEscape(n.name).c_str(), n.inclusiveNs,
                 n.exclusiveNs, n.count, n.sampled ? "true" : "false",
                 n.timedCount);
    for (std::size_t i = 0; i < n.children.size(); ++i) {
        std::fprintf(out, "%s\n", i ? "," : "");
        writePhase(out, n.children[i], depth + 1);
    }
    if (!n.children.empty())
        std::fprintf(out, "\n%s", pad.c_str());
    std::fprintf(out, "]}");
}

} // namespace

bool
writeJson(std::FILE *out, const Snapshot &snap)
{
#ifndef AFFALLOC_GIT_REVISION
#define AFFALLOC_GIT_REVISION "unknown"
#endif
#ifndef AFFALLOC_BUILD_TYPE
#define AFFALLOC_BUILD_TYPE "unknown"
#endif
    std::fprintf(out,
                 "{\n"
                 "  \"schema\": \"%s\",\n"
                 "  \"git_revision\": \"%s\",\n"
                 "  \"build_type\": \"%s\",\n"
                 "  \"prof_compiled\": %s,\n"
                 "  \"wall_ns\": %" PRIu64 ",\n",
                 profSchemaVersion, AFFALLOC_GIT_REVISION,
                 AFFALLOC_BUILD_TYPE, compiledIn ? "true" : "false",
                 snap.wallNs);

    std::fprintf(out, "  \"phases\": [");
    for (std::size_t i = 0; i < snap.phases.size(); ++i) {
        std::fprintf(out, "%s\n", i ? "," : "");
        writePhase(out, snap.phases[i], 0);
    }
    std::fprintf(out, "%s],\n", snap.phases.empty() ? "" : "\n  ");

    std::fprintf(out, "  \"counters\": {");
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
        std::fprintf(out, "%s\n    \"%s\": %" PRIu64, i ? "," : "",
                     jsonEscape(snap.counters[i].first).c_str(),
                     snap.counters[i].second);
    }
    std::fprintf(out, "%s},\n", snap.counters.empty() ? "" : "\n  ");

    std::fprintf(out, "  \"worker_pools\": [");
    for (std::size_t i = 0; i < snap.pools.size(); ++i) {
        const PoolTelemetry &p = snap.pools[i];
        std::uint64_t maxBusy = 0;
        for (const std::uint64_t b : p.busyNs)
            maxBusy = std::max(maxBusy, b);
        std::fprintf(out,
                     "%s\n    {\"threads\": %u, \"dispatches\": %" PRIu64
                     ", \"sum_max_task_ns\": %" PRIu64
                     ", \"sum_task_ns\": %" PRIu64
                     ", \"imbalance\": %.4f, \"workers\": [",
                     i ? "," : "", p.threads, p.dispatches,
                     p.sumMaxTaskNs, p.sumTaskNs,
                     p.sumTaskNs
                         ? double(p.sumMaxTaskNs) * double(p.threads) /
                               double(p.sumTaskNs)
                         : 0.0);
        for (std::size_t w = 0; w < p.busyNs.size(); ++w) {
            std::fprintf(
                out,
                "%s{\"busy_ns\": %" PRIu64 ", \"utilization\": %.4f}",
                w ? ", " : "", p.busyNs[w],
                maxBusy ? double(p.busyNs[w]) / double(maxBusy) : 0.0);
        }
        std::fprintf(out, "]}");
    }
    std::fprintf(out, "%s],\n", snap.pools.empty() ? "" : "\n  ");

    std::fprintf(out,
                 "  \"rss\": {\"peak_kb\": %" PRIu64
                 ", \"last_kb\": %" PRIu64 ", \"samples\": %" PRIu64
                 "},\n",
                 snap.peakRssKb, snap.lastRssKb, snap.rssSamples);

    std::fprintf(out, "  \"arenas\": [");
    for (std::size_t i = 0; i < snap.arenas.size(); ++i) {
        std::fprintf(out,
                     "%s{\"arena\": %u, \"peak_pool_bytes\": %" PRIu64 "}",
                     i ? ", " : "", snap.arenas[i].first,
                     snap.arenas[i].second);
    }
    std::fprintf(out, "]\n}\n");

    return std::fflush(out) == 0 && std::ferror(out) == 0;
}

} // namespace affalloc::prof
