/**
 * @file
 * Machine configuration, mirroring Table 2 of the paper ("System and
 * uarch Parameters"). One MachineConfig instance parameterizes the
 * whole simulated system; defaults reproduce the paper's setup.
 */

#ifndef AFFALLOC_SIM_CONFIG_HH
#define AFFALLOC_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/fault.hh"
#include "sim/simcheck.hh"
#include "sim/types.hh"

namespace affalloc::sim
{

/**
 * Process-wide default for MachineConfig::simThreads (starts at 1;
 * defined with the worker pool in worker_pool.cc). Flag parsing
 * installs overrides with setDefaultSimThreads() before machines are
 * configured.
 */
unsigned defaultSimThreads();
void setDefaultSimThreads(unsigned n);

/**
 * How bank ids map onto mesh tiles (§4.1 "Other Interleave Patterns":
 * more sophisticated interleavings "can be supported by changing how
 * L3 banks are numbered"). The 1D pool interleave of Eq. 1 walks bank
 * ids in order, so the numbering decides the physical walk pattern.
 */
enum class BankNumbering : std::uint8_t
{
    /** bank b at tile b (row-major; the paper's default). */
    rowMajor,
    /** Boustrophedon: odd mesh rows reversed, so bank b and b+1 are
     *  always adjacent (no row-wrap jumps). */
    snake,
    /** 2x2 quadrant blocks: consecutive banks fill a 2x2 tile block
     *  before moving on (a simple 2D pattern). */
    block2
};

/** Human-readable numbering name. */
const char *bankNumberingName(BankNumbering n);

/**
 * LLC management policy for I/O-class writes (the A4-style ablation).
 * Decides where a DMA/NIC write lands and how much tenant data it may
 * evict.
 */
enum class LlcIoPolicy : std::uint8_t
{
    /** Unrestricted DDIO: I/O writes allocate anywhere in the set. */
    ddio,
    /** Way-restricted: I/O allocation confined to llcIoWays ways. */
    wayRestrict,
    /** Bypass: I/O writes go straight to DRAM, never touch L3. */
    bypass
};

/** Human-readable LLC I/O policy name ("ddio"/"way"/"bypass"). */
const char *llcIoPolicyName(LlcIoPolicy p);

/**
 * How bank/link queue time is arbitrated between concurrently present
 * agent classes (the ROADMAP's per-class bank-bandwidth partitioning
 * and priority arbitration).
 */
enum class ClassArbMode : std::uint8_t
{
    /** No arbitration: classes share queues freely (classic model). */
    none,
    /** Weighted bandwidth partitioning by per-class shares. */
    partition,
    /** Strict priority by AgentClass order (ndc > host > io), with a
     *  yield penalty per higher-priority class present. */
    priority
};

/** Human-readable arbitration mode name. */
const char *classArbModeName(ClassArbMode m);

/**
 * Per-class arbitration configuration. With partition mode, a class
 * holding share s_c out of the total share of *present* classes sees
 * its bank/link service time scaled by (sum of present shares)/s_c —
 * the fluid model of a weighted round-robin queue. With priority
 * mode, a class is slowed by yieldPenalty for every higher-priority
 * class present. Both collapse to 1.0 when a class runs alone, so
 * single-class runs are digest-identical to the classic model.
 */
struct ClassArbConfig
{
    ClassArbMode mode = ClassArbMode::none;
    /** Bandwidth shares, indexed by AgentClass (ndc, host, io). */
    double share[numAgentClasses] = {1.0, 1.0, 1.0};
    /** Priority mode: fractional slowdown per higher class present. */
    double yieldPenalty = 0.5;
};

/**
 * Full system configuration (Table 2). All sizes in bytes, all
 * latencies in core cycles at the configured frequency.
 */
struct MachineConfig
{
    // ------------------------------------------------------------ system
    /** Core/uncore clock in GHz (Table 2: 2.0 GHz). */
    double clockGhz = 2.0;
    /** Mesh width (Table 2: 8x8 cores). */
    std::uint32_t meshX = 8;
    /** Mesh height. */
    std::uint32_t meshY = 8;

    // -------------------------------------------------------------- core
    /** Max scalar ops issued per cycle (8-issue OOO). */
    std::uint32_t coreIssueWidth = 8;
    /** SIMD lanes per vector op (AVX-512 on 4B floats). */
    std::uint32_t simdLanes = 16;
    /** Reorder-buffer entries; bounds in-core pointer-chase MLP. */
    std::uint32_t robEntries = 224;

    // ------------------------------------------------------------ caches
    /** Cache line size in bytes. */
    std::uint32_t lineSize = 64;
    /** L1 data cache capacity (32 KB). */
    std::uint32_t l1SizeBytes = 32 * 1024;
    /** L1 associativity. */
    std::uint32_t l1Assoc = 8;
    /** L1 hit latency. */
    Cycles l1Latency = 2;
    /** L1 data TLB entries (Table 2: 64-entry, 8-way). */
    std::uint32_t l1TlbEntries = 64;
    /** L1 TLB associativity. */
    std::uint32_t l1TlbAssoc = 8;
    /** Per-core L2 TLB entries (Table 2: 2k-entry, 16-way, 8 cy). */
    std::uint32_t l2TlbEntries = 2048;
    /** SEL3 TLB entries per bank (Table 2: 1k-entry, 16-way, 8 cy). */
    std::uint32_t seTlbEntries = 1024;
    /** L2/SEL3 TLB hit latency. */
    Cycles tlbLatency = 8;
    /** Page-table walk latency on a full TLB miss. */
    Cycles tlbWalkLatency = 40;
    /** Private L2 capacity (256 KB). */
    std::uint32_t l2SizeBytes = 256 * 1024;
    /** L2 associativity. */
    std::uint32_t l2Assoc = 16;
    /** L2 hit latency. */
    Cycles l2Latency = 16;
    /** Per-bank shared L3 capacity (1 MB/bank, 64 MB total). */
    std::uint32_t l3BankSizeBytes = 1024 * 1024;
    /** L3 associativity. */
    std::uint32_t l3Assoc = 16;
    /** L3 bank access latency. */
    Cycles l3Latency = 20;
    /** Default static-NUCA interleaving granularity (1 kB). */
    std::uint32_t l3DefaultInterleave = 1024;

    // --------------------------------------------------------------- NoC
    /** Link width in bytes per cycle (32 B bidirectional links). */
    std::uint32_t linkBytes = 32;
    /** Per-hop latency: 1-cycle link + pipelined 5-stage router. */
    Cycles hopLatency = 3;

    // -------------------------------------------------------------- DRAM
    /** Number of memory controllers (at mesh corners). */
    std::uint32_t dramChannels = 4;
    /** Aggregate DRAM bandwidth in GB/s (DDR4-3200 x4 = 25.6). */
    double dramTotalGBs = 25.6;
    /** DRAM access latency in cycles (~60 ns at 2 GHz). */
    Cycles dramLatency = 120;

    // ----------------------------------------------------- stream engines
    /** Max concurrent streams in the core stream engine. */
    std::uint32_t seCoreStreams = 12;
    /** Max concurrent streams per L3 stream engine. */
    std::uint32_t seL3Streams = 768;
    /** Near-stream compute initiation latency (cycles). */
    Cycles seComputeInitLatency = 4;
    /** Interleave override table entries per controller. */
    std::uint32_t iotEntries = 16;
    /** Bank-id-to-tile numbering scheme. */
    BankNumbering bankNumbering = BankNumbering::rowMajor;

    // ------------------------------------------------- traffic classes
    /** LLC management policy for I/O-class (DMA/NIC) writes. */
    LlcIoPolicy llcIoPolicy = LlcIoPolicy::ddio;
    /** Ways per set an I/O write may allocate under wayRestrict. */
    std::uint32_t llcIoWays = 2;
    /** Bank/link queue arbitration between agent classes. */
    ClassArbConfig classArb;

    // ------------------------------------------------- simulation control
    /** Elements simulated per epoch for bulk kernels. */
    std::uint32_t epochChunk = 1 << 14;
    /**
     * Capacity of each interleave pool segment in bytes; 0 means the
     * full 1 TB virtual segment backs every pool (effectively
     * unlimited). Small values exercise the allocator's fallback
     * ladder (pool -> other interleavings -> plain heap).
     */
    std::uint64_t poolCapacityBytes = 0;
    /**
     * Run the memory/NoC lookup structures on their reference (slow)
     * paths: no software TLB in front of the page table, linear IOT
     * scans, no host-range MRU cache, coordinate-walked NoC routes.
     * Simulated behaviour is identical either way — the
     * digest-equivalence regression test runs both and asserts
     * identical digests; this flag exists only for that test and for
     * debugging suspected fast-path divergence.
     */
    bool referencePaths = false;

    // ------------------------------------------------ parallel simulation
    /**
     * Worker threads for shard-parallel epoch replay (1 = the classic
     * serial simulator). Parallelism is an implementation detail of
     * endEpoch(): results are bit-identical at any thread count, so
     * this knob trades host cores for wall-clock only. The default
     * follows the process-wide setting installed by --sim-threads /
     * AFFALLOC_SIM_THREADS parsing. Kept deliberately uncapped here
     * (only >= 1 is validated) so programmatic configs — e.g. the
     * 7-thread shard-split test — work on any host; strict host-aware
     * validation lives at the flag parsers.
     */
    std::uint32_t simThreads = defaultSimThreads();

    // ----------------------------------------------------- fault injection
    /** Fault campaign drawn at machine construction (default: none). */
    FaultConfig faults;

    // ------------------------------------------------------------ simcheck
    /** Invariant auditing / watchdog knobs (env vars set defaults). */
    ::affalloc::simcheck::SimCheckConfig simcheck =
        ::affalloc::simcheck::SimCheckConfig::fromEnv();

    /** Total tiles (== cores == L3 banks). */
    std::uint32_t numTiles() const { return meshX * meshY; }
    /** Total L3 banks. */
    std::uint32_t numBanks() const { return numTiles(); }
    /** Total L3 capacity across banks. */
    std::uint64_t
    l3TotalBytes() const
    {
        return std::uint64_t(l3BankSizeBytes) * numBanks();
    }
    /** Per-channel DRAM bandwidth in bytes per core cycle. */
    double
    dramChannelBytesPerCycle() const
    {
        return dramTotalGBs / dramChannels / clockGhz;
    }
    /** NoC flit payload size in bytes. */
    std::uint32_t flitBytes() const { return linkBytes; }

    /** Render the configuration as a Table 2-style description. */
    std::string toString() const;

    /** Validate invariants (power-of-two sizes etc.); fatal() if bad. */
    void validate() const;
};

} // namespace affalloc::sim

#endif // AFFALLOC_SIM_CONFIG_HH
