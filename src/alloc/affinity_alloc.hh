/**
 * @file
 * The affinity alloc runtime (§4.2, §5) — the paper's primary
 * contribution. The application describes *affinity* (which data
 * should live near which) through two declarative APIs:
 *
 *  - the affine API: malloc_aff(AffineArray) with inter-array
 *    alignment (align_to + align_p/q/x, Eq. 2/3), intra-array row
 *    affinity, and a partition flag (Fig. 8, Fig. 9);
 *  - the irregular API: malloc_aff(size, affinity addresses)
 *    (Fig. 10), with the bank-select policy of Eq. 4 balancing
 *    affinity against load.
 *
 * The runtime lowers these to interleave-pool allocations (via the
 * simulated OS) and never exposes microarchitectural details to the
 * application; it learns the topology from the OS at construction.
 *
 * Host backing: the library is execution-driven, so every allocation
 * returns a *real host pointer* the application reads and writes; the
 * runtime registers the host range against the simulated range it
 * occupies so the timing model can locate every byte.
 */

#ifndef AFFALLOC_ALLOC_AFFINITY_ALLOC_HH
#define AFFALLOC_ALLOC_AFFINITY_ALLOC_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/address.hh"
#include "nsc/machine.hh"
#include "obs/placement_explain.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace affalloc::alloc
{

/**
 * Affine allocation request (Fig. 8(a)). Field names keep the paper's
 * snake_case spelling since this is the public API the paper defines.
 */
struct AffineArray
{
    /** Element size in bytes. */
    int elem_size = 4;
    /** Number of elements. */
    std::uint64_t num_elem = 0;
    /** Pointer to the aligned-to affine array (nullptr: none). */
    const void *align_to = nullptr;
    /** Alignment ratio numerator: B[i] aligns to A[(p/q)i + x]. */
    int align_p = 1;
    /** Alignment ratio denominator. */
    int align_q = 1;
    /** Alignment offset x; with align_to == nullptr, a nonzero x
     *  requests intra-array affinity between A[i] and A[i+x]. */
    std::int64_t align_x = 0;
    /** Evenly distribute the array across all banks (Fig. 9). */
    bool partition = false;
};

/** Bank selection policy for irregular allocations (§5.2, Fig. 13). */
enum class BankPolicy : std::uint8_t
{
    /** Uniformly random bank (Rnd). */
    random,
    /** Round-robin across banks (Lnr). */
    linear,
    /** Minimize average hops to affinity addresses (Min-Hop). */
    minHop,
    /** Eq. 4: avg_hops + H * (load/avg_load - 1) (Hybrid-H). */
    hybrid
};

/** Human-readable policy name (figure labels). */
const char *bankPolicyName(BankPolicy p);

/**
 * Cross-tenant bank-load scoreboard. In a co-run every tenant's
 * allocator mirrors its irregular load updates into one shared board,
 * and Eq. 4's load term reads the board instead of the allocator's
 * private counters — placement competes with *machine-wide* pressure,
 * not just the tenant's own. With a single tenant the board trivially
 * equals the private counters, so scores (and digests) are
 * bit-identical to an allocator without a board.
 */
struct BankLoadBoard
{
    /** Machine-wide irregular load per bank (all tenants). */
    std::vector<std::uint64_t> loads;
    /** Sum of loads. */
    std::uint64_t total = 0;

    /** Size for a machine; idempotent across tenant constructions. */
    void
    init(std::uint32_t num_banks)
    {
        if (loads.size() != num_banks) {
            loads.assign(num_banks, 0);
            total = 0;
        }
    }
};

/** Runtime construction options. */
struct AllocatorOptions
{
    /** Irregular bank-select policy. */
    BankPolicy policy = BankPolicy::hybrid;
    /** Load-balance weight H of Eq. 4 (paper default: Hybrid-5). */
    double hybridH = 5.0;
    /** Seed for the random policy. */
    std::uint64_t seed = 7;
    /** Max affinity addresses considered per allocation (§5.1). */
    std::uint32_t maxAffinityAddrs = 32;
    /** OS arena this allocator draws pools from (tenant isolation). */
    std::uint32_t arena = 0;
    /**
     * Shared cross-tenant load board (not owned; must outlive the
     * allocator). Null: Eq. 4 sees only this allocator's own loads.
     */
    BankLoadBoard *sharedLoads = nullptr;
    /**
     * Keep the historical free-list keying behaviour: slots stay
     * keyed by the bank that served them when they were carved or
     * freed, even after later bank kills or re-affinity re-targets
     * move their service elsewhere. This reproduces the
     * spare-exhaustion defect the chaos fuzzer surfaced (stranded
     * capacity on dead banks, stale-keying audit failures) and exists
     * only so regressions and repro bundles can replay it; production
     * paths re-key lazily against FaultPlan::redirectVersion().
     */
    bool legacySpareKeying = false;
};

/** Metadata the runtime records per affine/plain allocation. */
struct ArrayInfo
{
    /** Simulated virtual base address. */
    Addr simBase = 0;
    /** Total bytes (possibly padded). */
    std::uint64_t bytes = 0;
    /** Element size. */
    std::uint32_t elemSize = 0;
    /** Element count. */
    std::uint64_t numElem = 0;
    /** Interleaving in bytes (0: default NUCA heap layout). */
    std::uint64_t intrlv = 0;
    /** Bank of element 0. */
    BankId startBank = 0;
    /** Whether the partition flag produced a per-bank chunking. */
    bool partitioned = false;
    /** Bytes of one per-bank chunk when partitioned. */
    std::uint64_t chunkBytes = 0;
    /** Pool the array came from (-1: heap or page-at-bank region). */
    int poolIdx = -1;
    /** Pool byte offset of the (padded) allocation. */
    Addr poolOffset = 0;
    /** Padded pool bytes actually claimed. */
    std::uint64_t allocBytes = 0;
};

/** Allocator statistics (fragmentation / fallback accounting). */
struct AllocStats
{
    /** Affine allocations served from pools. */
    std::uint64_t affineAllocs = 0;
    /** Irregular allocations served from pools. */
    std::uint64_t irregularAllocs = 0;
    /** Allocations that fell back to the plain heap. */
    std::uint64_t fallbacks = 0;
    /** Bytes wasted aligning pool bumps to a start bank. */
    std::uint64_t alignmentWasteBytes = 0;
    /** Frees returned to pool free lists. */
    std::uint64_t frees = 0;
    /** Affine allocations served by reusing freed pool regions. */
    std::uint64_t regionReuses = 0;
    /** Bytes currently sitting in pool free regions. */
    std::uint64_t freeRegionBytes = 0;
    /** Free slots re-keyed after a bank kill / re-affinity re-target. */
    std::uint64_t rekeyedSlots = 0;
};

/**
 * The affinity allocator runtime. One instance per simulated process.
 * Thread-unsafe by design (the simulation is single-threaded).
 */
class AffinityAllocator
{
  public:
    /** Bind to a machine (whose OS provides pools and topology). */
    explicit AffinityAllocator(nsc::Machine &machine,
                               AllocatorOptions opts = AllocatorOptions{});
    ~AffinityAllocator();

    AffinityAllocator(const AffinityAllocator &) = delete;
    AffinityAllocator &operator=(const AffinityAllocator &) = delete;

    // ------------------------------------------------------ public API
    /**
     * Affine allocation (Fig. 8(a)). Returns a host pointer of
     * elem_size * num_elem bytes laid out per the affinity request,
     * or a plain heap allocation when the constraints cannot be met
     * exactly (the paper's fallback rule).
     */
    void *mallocAff(const AffineArray &request);

    /**
     * Irregular allocation (Fig. 10): @p size bytes placed close to
     * the given affinity addresses, subject to load balance. Sizes
     * are rounded up to a valid interleaving (64 B .. 4 kB); larger
     * sizes fall back to the plain heap.
     */
    void *mallocAff(std::size_t size, int num_aff_addrs,
                    const void *const *aff_addrs);

    /** Free either kind of affinity allocation (§5.1 free_aff). */
    void freeAff(void *ptr);

    /**
     * Resize an affinity allocation (§8's dynamic-structure hook).
     * The new array keeps the old one's interleaving and start bank
     * (so existing alignment relationships survive) and its contents
     * are copied. Irregular slots resize in place when the rounded
     * size class is unchanged, else move within the same bank.
     */
    void *reallocAff(void *ptr, std::size_t new_bytes);

    /**
     * Migrate irregular slots stranded on offline banks: each victim
     * is realloc'd to a live bank picked by the selection policy
     * (seeded with the dead bank's spare), its contents copied, and
     * its migration traffic charged to the machine. Returns
     * (old host pointer, new host pointer) pairs so callers can patch
     * their own references; old pointers are freed. Call after
     * Machine::injectBankFault() to restore affinity.
     */
    std::vector<std::pair<void *, void *>> migrateVictims();

    /** Plain baseline allocation from the conventional heap. */
    void *allocPlain(std::size_t bytes, std::size_t align = 64);

    // --------------------------------------------------- low-level API
    /**
     * Allocate @p bytes from the pool of @p intrlv with element 0 at
     * @p start_bank. Used by benchmarks that control layout exactly
     * (Fig. 4's Delta-bank sweep) and internally by mallocAff.
     */
    void *allocInterleaved(std::size_t bytes, std::uint64_t intrlv,
                           BankId start_bank);

    /**
     * Allocate one irregular slot pinned to an explicit bank,
     * bypassing the selection policy. Used by limit studies (Fig. 6's
     * free chunk remapping) and by co-designed structures that
     * compute placement themselves.
     */
    void *allocSlotAtBank(std::size_t size, BankId bank);

    // ------------------------------------------------------ inspection
    /** Metadata of an allocation starting at @p ptr, or nullptr. */
    const ArrayInfo *arrayInfo(const void *ptr) const;
    /** Bank of element @p idx of a recorded array. */
    BankId bankOfElement(const void *array, std::uint64_t idx) const;
    /** Current irregular-allocation load per bank (Eq. 4's load). */
    const std::vector<std::uint64_t> &bankLoads() const
    {
        return bankLoads_;
    }
    /** Allocator counters. */
    const AllocStats &allocStats() const { return stats_; }
    /**
     * Order-insensitive digest of every placement decision made so far
     * (simulated base, size, interleaving, bank). Combined with the
     * stats digest for run-to-run determinism checks.
     */
    std::uint64_t placementDigest() const { return placement_.value(); }
    /**
     * SimCheck audit: free-list integrity (canaries, bank keying,
     * duplicate/misaligned slots), free-region accounting, and
     * irregular load reconciliation. Registered with the machine's
     * Auditor at construction. Re-keys stale free lists first (the
     * audit point doubles as a reconcile point), hence non-const.
     */
    void auditFreeLists(simcheck::CheckContext &ctx);
    /** The policy in use. */
    BankPolicy policy() const { return opts_.policy; }
    /** Hybrid weight in use. */
    double hybridH() const { return opts_.hybridH; }

    /**
     * Bank the policy would select for the given affinity banks
     * (exposed for tests and for data structures that reason about
     * placement without allocating).
     */
    BankId selectBank(const std::vector<BankId> &affinity_banks);

    /**
     * Attach (or detach, with nullptr) a placement-explain log; every
     * selectBank decision is recorded with its Eq. 4 decomposition.
     * Observe-only: scoring is unchanged whether or not a log is
     * attached.
     */
    void setExplainer(obs::PlacementExplainer *e) { explain_ = e; }

    /** The OS arena this allocator allocates from. */
    std::uint32_t arena() const { return opts_.arena; }

    /**
     * Total bytes claimed from the interleave pool segments (bump
     * offsets summed across pools). This is the arena's pool
     * footprint high-watermark: bump offsets never rewind, freed
     * regions are recycled in place. Host-side telemetry only.
     */
    std::uint64_t
    footprintBytes() const
    {
        std::uint64_t total = 0;
        for (const Addr bump : poolBump_)
            total += bump;
        return total;
    }

    /**
     * Test-only corruption injection: plant a free slot claiming a
     * simulated address (typically inside *another* tenant's arena) so
     * the cross-tenant audit can prove it detects foreign pointers.
     */
    void
    adoptFreeSlotForTest(int k, BankId bank, void *host, Addr sim)
    {
        freeSlots_.at(k).at(bank).push_back(Slot{host, sim});
    }

  private:
    struct Slot
    {
        void *host = nullptr;
        Addr sim = 0;
    };

    /**
     * Carve one stripe (numBanks slots) of pool @p k into free
     * lists, keyed by each slot's live home bank (offline banks'
     * slots land at their spare). Returns false when the pool is at
     * capacity (the caller must degrade).
     */
    bool carveStripe(int k);
    /** One claimed pool region. */
    struct PoolCut
    {
        void *host = nullptr;
        Addr offset = 0;
        std::uint64_t bytes = 0;
    };

    /**
     * Affine pool allocation core (free-region reuse, then bump).
     * Returns an empty cut (null host) when pool @p k is at capacity;
     * no allocator state is mutated in that case.
     */
    PoolCut poolAllocAligned(std::size_t bytes, int k, BankId start_bank);
    /**
     * poolAllocAligned with graceful degradation: on exhaustion of
     * pool @p k, retries finer interleavings (k-1 .. 0), counting an
     * allocFallback and updating @p k to the pool actually used.
     * Returns an empty cut only when every pool is exhausted (the
     * caller then falls back to the conventional heap).
     */
    PoolCut poolAllocFallback(std::size_t bytes, int &k,
                              BankId start_bank);
    /** The @p n-th live bank in numbering order (fault degradation). */
    BankId nthLiveBank(std::uint32_t n) const;
    /**
     * Re-key free slots to the bank now serving them when the fault
     * plan's bank -> served-bank mapping changed since the last call
     * (bank kill, re-affinity re-target). Without this, slots carved
     * or freed before a fault stay keyed at their old spare: capacity
     * strands on dead banks and the keying audit reports stale
     * entries. No-op (and the defect preserved) under
     * AllocatorOptions::legacySpareKeying.
     */
    void maybeReconcileFreeLists();
    /** Large page-multiple interleaving via page-at-bank remapping. */
    void *largeAlloc(std::size_t bytes, std::uint64_t intrlv,
                     BankId start_bank, bool partitioned,
                     std::uint64_t chunk_bytes);
    /** Record an ArrayInfo keyed by host pointer. */
    void record(void *host, ArrayInfo info);
    /** Pick the interleaving for an intra-array affinity request. */
    std::uint64_t chooseIntraInterleave(std::uint64_t row_bytes) const;

    nsc::Machine &machine_;
    AllocatorOptions opts_;
    Rng rng_;
    std::uint32_t numBanks_;
    std::uint32_t lineSize_;
    /** Usable bytes per pool segment (config; 1 TB when unset). */
    std::uint64_t poolCapacity_;

    /** A freed affine region inside a pool (reusable for the same
     *  interleaving only — the paper's fragmentation rule, §8). */
    struct FreeRegion
    {
        Addr offset = 0;
        std::uint64_t bytes = 0;
    };

    /** Bump offsets per pool (bytes used from each pool segment). */
    std::array<Addr, mem::numInterleavePools> poolBump_{};
    /** Freed affine regions per pool, reusable by poolAllocAligned. */
    std::array<std::vector<FreeRegion>, mem::numInterleavePools>
        freeRegions_;
    /** Free slots per pool per bank. */
    std::array<std::vector<std::vector<Slot>>, mem::numInterleavePools>
        freeSlots_;
    /** Host backing buffers owned by the allocator. */
    std::unordered_set<void *> ownedHost_;

    /** Shared cross-tenant load board (null outside co-runs). */
    BankLoadBoard *board_ = nullptr;
    /** Irregular load per bank (this allocator's own). */
    std::vector<std::uint64_t> bankLoads_;
    std::uint64_t totalLoad_ = 0;
    std::uint32_t nextLinear_ = 0;

    /** Charge/release one irregular slot's load, mirroring the board. */
    void
    addLoad(BankId bank)
    {
        bankLoads_[bank] += 1;
        totalLoad_ += 1;
        if (board_) {
            board_->loads[bank] += 1;
            board_->total += 1;
        }
    }
    void
    subLoad(BankId bank)
    {
        bankLoads_[bank] -= 1;
        totalLoad_ -= 1;
        if (board_) {
            board_->loads[bank] -= 1;
            board_->total -= 1;
        }
    }

    /** Metadata for affine/plain allocations keyed by host pointer. */
    std::unordered_map<const void *, ArrayInfo> arrays_;
    /** Live irregular slots keyed by host pointer (value: pool idx). */
    std::unordered_map<const void *, std::pair<int, BankId>> irregular_;

    AllocStats stats_;

    /** Fold one placement decision into the determinism digest. */
    void foldPlacement(Addr sim, std::uint64_t bytes, std::uint64_t intrlv,
                       std::uint64_t bank);

    /** FaultPlan::redirectVersion() at the last free-list reconcile. */
    std::uint64_t faultVersion_ = 0;
    /** Stamp canaries on free slots (simcheck audit mode only). */
    bool canaries_ = false;
    /** Auditor registration id (unregistered in the destructor). */
    int auditId_ = 0;
    /** Running digest of placement decisions. */
    simcheck::Digest placement_;
    /** Optional placement-explain log (null = disabled). */
    obs::PlacementExplainer *explain_ = nullptr;
};

} // namespace affalloc::alloc

#endif // AFFALLOC_ALLOC_AFFINITY_ALLOC_HH
