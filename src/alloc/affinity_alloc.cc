#include "alloc/affinity_alloc.hh"

#include <algorithm>
#include <cstring>
#include <limits>
#include <new>

#include "sim/log.hh"
#include "sim/prof.hh"

namespace affalloc::alloc
{

namespace
{

/** Round up to the next power of two (>= 1). */
std::uint64_t
pow2Ceil(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/** Aligned host buffer (64 B so host lines mirror simulated lines). */
void *
newHost(std::size_t bytes)
{
    return ::operator new(bytes, std::align_val_t(64));
}

void
deleteHost(void *p)
{
    ::operator delete(p, std::align_val_t(64));
}

/**
 * Canary stamped into the first 8 bytes of a free slot (audit mode):
 * derived from the slot's simulated address, so a write through a
 * stale pointer into any free slot is detected by the audit.
 */
std::uint64_t
canaryFor(Addr sim)
{
    return (sim * 0x9e3779b97f4a7c15ULL) ^ 0xdeadbeefcafef00dULL;
}

} // namespace

const char *
bankPolicyName(BankPolicy p)
{
    switch (p) {
      case BankPolicy::random:
        return "Rnd";
      case BankPolicy::linear:
        return "Lnr";
      case BankPolicy::minHop:
        return "Min-Hop";
      case BankPolicy::hybrid:
        return "Hybrid";
      default:
        return "?";
    }
}

AffinityAllocator::AffinityAllocator(nsc::Machine &machine,
                                     AllocatorOptions opts)
    : machine_(machine), opts_(opts), rng_(opts.seed),
      numBanks_(machine.config().numBanks()),
      lineSize_(machine.config().lineSize),
      poolCapacity_(machine.config().poolCapacityBytes != 0
                        ? machine.config().poolCapacityBytes
                        : mem::terabyte),
      board_(opts.sharedLoads),
      bankLoads_(machine.config().numBanks(), 0)
{
    // Arena-scoped allocators (tenants) are confined to their slice of
    // each pool segment; a lone arena-0 allocator keeps the legacy
    // full-segment capacity.
    if (board_ != nullptr || opts_.arena > 0)
        poolCapacity_ = std::min<std::uint64_t>(poolCapacity_,
                                                mem::arenaStride);
    if (board_ != nullptr)
        board_->init(numBanks_);
    if (opts_.arena >= machine.simOs().numArenas()) {
        SIM_FATAL("alloc", "allocator bound to arena %u but the OS only "
                  "has %u",
                  opts_.arena, machine.simOs().numArenas());
    }
    for (auto &pool : freeSlots_)
        pool.assign(numBanks_, {});
    faultVersion_ = machine.faultPlan().redirectVersion();
    canaries_ = machine.config().simcheck.audit;
    auditId_ = machine.auditor().registerCheck(
        "alloc", "freelist-integrity",
        [this](simcheck::CheckContext &ctx) { auditFreeLists(ctx); });
}

AffinityAllocator::~AffinityAllocator()
{
    // Release this tenant's remaining pressure from the shared board
    // so a board outliving the allocator never carries stale load.
    if (board_) {
        for (BankId b = 0; b < numBanks_; ++b) {
            board_->loads[b] -= bankLoads_[b];
            board_->total -= bankLoads_[b];
        }
    }
    machine_.auditor().unregisterCheck(auditId_);
    // Unregister host ranges before freeing them: on a shared machine
    // (co-run tenants) the AddressSpace outlives this allocator, and a
    // later tenant may be handed the same host addresses by the heap.
    // Freed heap/page-at-bank arrays were already unregistered in
    // freeAff but keep their host backing (and ownedHost_ entry) until
    // destruction, hence the rangeStartingAt guard.
    for (void *p : ownedHost_) {
        if (machine_.addressSpace().rangeStartingAt(p))
            machine_.addressSpace().unregisterRange(p);
        deleteHost(p);
    }
}

// --------------------------------------------------------------- plain

void *
AffinityAllocator::allocPlain(std::size_t bytes, std::size_t align)
{
    void *host = newHost(bytes);
    ownedHost_.insert(host);
    const Addr sim = machine_.simOs().heapAlloc(bytes, align);
    machine_.addressSpace().registerRange(host, bytes, sim);
    ArrayInfo info;
    info.simBase = sim;
    info.bytes = bytes;
    info.elemSize = 1;
    info.numElem = bytes;
    info.intrlv = 0;
    info.startBank = machine_.bankOfSim(sim);
    record(host, info);
    return host;
}

// ---------------------------------------------------------- pool cores

AffinityAllocator::PoolCut
AffinityAllocator::poolAllocAligned(std::size_t bytes, int k,
                                    BankId start_bank)
{
    const std::uint64_t intrlv = mem::poolInterleave(k);
    const std::uint64_t alloc_bytes =
        (bytes + intrlv - 1) & ~(intrlv - 1);

    // First try to satisfy the request from a freed region of the
    // same pool (same-interleaving reuse is exactly what the paper's
    // fragmentation rule permits, §8).
    auto &regions = freeRegions_[k];
    Addr off = invalidAddr;
    for (std::size_t i = 0; i < regions.size(); ++i) {
        FreeRegion &r = regions[i];
        Addr cand = (r.offset + intrlv - 1) & ~(intrlv - 1);
        const BankId cur =
            static_cast<BankId>((cand / intrlv) % numBanks_);
        cand += Addr((start_bank + numBanks_ - cur) % numBanks_) *
                intrlv;
        if (cand + alloc_bytes > r.offset + r.bytes)
            continue;
        // Claim [cand, cand + alloc_bytes); return the leftovers.
        const FreeRegion tail{cand + alloc_bytes,
                              r.offset + r.bytes - cand - alloc_bytes};
        const FreeRegion head{r.offset, cand - r.offset};
        regions.erase(regions.begin() +
                      static_cast<std::ptrdiff_t>(i));
        if (head.bytes >= intrlv)
            regions.push_back(head);
        if (tail.bytes >= intrlv)
            regions.push_back(tail);
        stats_.freeRegionBytes -=
            alloc_bytes + (head.bytes < intrlv ? head.bytes : 0) +
            (tail.bytes < intrlv ? tail.bytes : 0);
        stats_.regionReuses += 1;
        off = cand;
        break;
    }

    if (off == invalidAddr) {
        const Addr bump = poolBump_[k];
        // Align the bump to an interleave-block boundary.
        Addr cand = (bump + intrlv - 1) & ~(intrlv - 1);
        const Addr align_waste = cand - bump;
        // Advance to a block homed at the requested start bank.
        const BankId cur =
            static_cast<BankId>((cand / intrlv) % numBanks_);
        const std::uint32_t skip =
            (start_bank + numBanks_ - cur) % numBanks_;
        cand += Addr(skip) * intrlv;
        if (cand + alloc_bytes > poolCapacity_) {
            // Pool exhausted: report failure without mutating any
            // state so the caller can degrade to another pool or the
            // conventional heap.
            return PoolCut{};
        }
        stats_.alignmentWasteBytes += align_waste + Addr(skip) * intrlv;
        machine_.simOs().expandPool(k, opts_.arena, cand + alloc_bytes);
        poolBump_[k] = cand + alloc_bytes;
        off = cand;
    }

    const Addr sim =
        machine_.simOs().poolVirtBaseOf(k, opts_.arena) + off;
    void *host = newHost(alloc_bytes);
    ownedHost_.insert(host);
    machine_.addressSpace().registerRange(host, alloc_bytes, sim);
    return PoolCut{host, off, alloc_bytes};
}

AffinityAllocator::PoolCut
AffinityAllocator::poolAllocFallback(std::size_t bytes, int &k,
                                     BankId start_bank)
{
    PoolCut cut = poolAllocAligned(bytes, k, start_bank);
    if (cut.host != nullptr)
        return cut;
    // Requested pool exhausted: degrade to finer interleavings (the
    // affinity relationship weakens but data still spreads across
    // banks and stays in pools).
    for (int f = k - 1; f >= 0; --f) {
        cut = poolAllocAligned(bytes, f, start_bank);
        if (cut.host != nullptr) {
            warn("pool %d exhausted; degraded allocation of %zu bytes "
                 "to pool %d",
                 k, bytes, f);
            machine_.stats().allocFallbacks += 1;
            stats_.fallbacks += 1;
            k = f;
            return cut;
        }
    }
    return PoolCut{};
}

BankId
AffinityAllocator::nthLiveBank(std::uint32_t n) const
{
    const sim::FaultPlan &plan = machine_.faultPlan();
    for (BankId b = 0; b < numBanks_; ++b) {
        if (plan.bankLive(b) && n-- == 0)
            return b;
    }
    // Unreachable: the fault plan always keeps at least one bank live.
    return 0;
}

void *
AffinityAllocator::largeAlloc(std::size_t bytes, std::uint64_t intrlv,
                              BankId start_bank, bool partitioned,
                              std::uint64_t chunk_bytes)
{
    if (intrlv % mem::pageSize != 0)
        SIM_PANIC("alloc", "large interleaving %llu not page aligned",
              (unsigned long long)intrlv);
    const std::uint64_t pages_per_block = intrlv / mem::pageSize;
    const std::uint64_t num_pages = mem::roundUpPage(bytes) / mem::pageSize;
    std::vector<BankId> banks(num_pages);
    for (std::uint64_t i = 0; i < num_pages; ++i)
        banks[i] = static_cast<BankId>(
            (start_bank + i / pages_per_block) % numBanks_);
    const Addr sim = machine_.simOs().allocPagesAtBanks(banks);

    const std::uint64_t alloc_bytes = num_pages * mem::pageSize;
    void *host = newHost(alloc_bytes);
    ownedHost_.insert(host);
    machine_.addressSpace().registerRange(host, alloc_bytes, sim);

    (void)partitioned;
    (void)chunk_bytes;
    return host;
}

void *
AffinityAllocator::allocInterleaved(std::size_t bytes, std::uint64_t intrlv,
                                    BankId start_bank)
{
    if (bytes == 0)
        SIM_FATAL("alloc", "allocInterleaved of zero bytes");
    void *host = nullptr;
    ArrayInfo info;
    const int k = mem::poolIndexFor(intrlv);
    if (k >= 0) {
        const PoolCut cut = poolAllocAligned(bytes, k, start_bank);
        if (cut.host == nullptr) {
            SIM_FATAL("alloc", "allocInterleaved: pool %d (%llu B interleave) "
                  "exhausted (capacity %llu bytes); use mallocAff for "
                  "graceful fallback",
                  k, (unsigned long long)intrlv,
                  (unsigned long long)poolCapacity_);
        }
        host = cut.host;
        info.poolIdx = k;
        info.poolOffset = cut.offset;
        info.allocBytes = cut.bytes;
    } else if (intrlv >= mem::pageSize && intrlv % mem::pageSize == 0) {
        host = largeAlloc(bytes, intrlv, start_bank, false, 0);
    } else {
        SIM_FATAL("alloc", "unsupported interleaving %llu", (unsigned long long)intrlv);
    }
    info.simBase = machine_.addressSpace().simAddrOf(host);
    info.bytes = bytes;
    info.elemSize = 1;
    info.numElem = bytes;
    info.intrlv = intrlv;
    info.startBank = start_bank;
    record(host, info);
    stats_.affineAllocs += 1;
    return host;
}

// ----------------------------------------------------------- affine API

std::uint64_t
AffinityAllocator::chooseIntraInterleave(std::uint64_t row_bytes) const
{
    const auto &mesh_cfg = machine_.config();
    const std::uint32_t B = numBanks_;
    double best_cost = std::numeric_limits<double>::infinity();
    std::uint64_t best = lineSize_;

    auto avg_dist_for_advance = [&](std::uint64_t adv) {
        double sum = 0.0;
        for (BankId b = 0; b < B; ++b)
            sum += machine_.hopsBetween(b, (b + adv) % B);
        return sum / B;
    };

    // Sequential accesses also cross block boundaries: finer
    // interleavings trade vertical (row-offset) distance for more
    // frequent horizontal crossings. Weight by crossing frequency.
    auto seq_cost = [&](std::uint64_t intrlv) {
        return 0.5 * double(lineSize_) / double(intrlv) *
               avg_dist_for_advance(1);
    };

    for (int k = 0; k < mem::numInterleavePools; ++k) {
        const std::uint64_t intrlv = mem::poolInterleave(k);
        if (row_bytes % intrlv == 0) {
            // Fine interleaving: rows advance by a fixed bank offset.
            const std::uint64_t adv = (row_bytes / intrlv) % B;
            const double cost =
                avg_dist_for_advance(adv) + seq_cost(intrlv);
            if (cost < best_cost) {
                best_cost = cost;
                best = intrlv;
            }
        } else if (intrlv % row_bytes == 0) {
            // §4.2: several rows fit one bank; only 1-in-k row
            // transitions cross to the next bank. Coarse blocks trade
            // bank-level parallelism for locality, so they carry a
            // balance penalty and only win when fine interleavings
            // are clearly bad.
            const double k_rows = double(intrlv / row_bytes);
            const double cost =
                avg_dist_for_advance(1) / k_rows + 2.5;
            if (cost < best_cost) {
                best_cost = cost;
                best = intrlv;
            }
        }
    }
    // One or several rows per page-multiple block (large
    // interleavings served by page remapping), with the same
    // parallelism penalty.
    if (row_bytes % mem::pageSize == 0) {
        for (std::uint64_t m : {1ull, 2ull, 4ull, 8ull}) {
            const double cost =
                avg_dist_for_advance(1) / double(m) + 2.5;
            if (cost < best_cost) {
                best_cost = cost;
                best = m * row_bytes;
            }
        }
    }
    (void)mesh_cfg;
    return best;
}

void *
AffinityAllocator::mallocAff(const AffineArray &req)
{
    PROF_SCOPE_SAMPLED("alloc/malloc_aff.affine");
    if (req.num_elem == 0 || req.elem_size <= 0)
        SIM_FATAL("alloc", "mallocAff: empty affine request");
    const std::uint64_t elem = static_cast<std::uint64_t>(req.elem_size);
    const std::uint64_t bytes = elem * req.num_elem;

    ArrayInfo info;
    info.bytes = bytes;
    info.elemSize = static_cast<std::uint32_t>(elem);
    info.numElem = req.num_elem;

    void *host = nullptr;

    if (req.partition) {
        // Fig. 9: distribute the array evenly across all banks.
        const std::uint64_t chunk_raw =
            (bytes + numBanks_ - 1) / numBanks_;
        if (chunk_raw <= mem::maxPoolInterleave) {
            const std::uint64_t intrlv =
                pow2Ceil(std::max<std::uint64_t>(chunk_raw, lineSize_));
            int kp = mem::poolIndexFor(intrlv);
            const PoolCut cut = poolAllocFallback(bytes, kp, 0);
            if (cut.host == nullptr) {
                warn("mallocAff: pools exhausted; partitioned request "
                     "degraded to the conventional heap");
                machine_.stats().allocFallbacks += 1;
                stats_.fallbacks += 1;
                return allocPlain(bytes);
            }
            host = cut.host;
            info.poolIdx = kp;
            info.poolOffset = cut.offset;
            info.allocBytes = cut.bytes;
            info.intrlv = mem::poolInterleave(kp);
            info.chunkBytes = info.intrlv;
        } else {
            const std::uint64_t chunk = mem::roundUpPage(chunk_raw);
            host = largeAlloc(bytes, chunk, 0, true, chunk);
            info.intrlv = chunk;
            info.chunkBytes = chunk;
        }
        info.partitioned = true;
        info.startBank = 0;
    } else if (req.align_to != nullptr) {
        // Eq. 2 / Eq. 3: inter-array affinity.
        const ArrayInfo *ali = arrayInfo(req.align_to);
        if (!ali || ali->intrlv == 0 || req.align_p <= 0 ||
            req.align_q <= 0) {
            warn("mallocAff: align_to target unknown; falling back");
            stats_.fallbacks += 1;
            return allocPlain(bytes);
        }
        // intrlv_B = (elem_B / elem_A) * (q / p) * intrlv_A, as a
        // rational to detect inexact cases.
        const std::uint64_t num =
            elem * static_cast<std::uint64_t>(req.align_q) * ali->intrlv;
        const std::uint64_t den =
            std::uint64_t(ali->elemSize) *
            static_cast<std::uint64_t>(req.align_p);
        const std::int64_t off_bytes =
            req.align_x * std::int64_t(ali->elemSize);
        if (num % den != 0 ||
            (req.align_x != 0 &&
             off_bytes % std::int64_t(ali->intrlv) != 0)) {
            stats_.fallbacks += 1;
            return allocPlain(bytes);
        }
        const std::uint64_t intrlv = num / den;
        // align_x may be negative (B[i] aligns to A[i - |x|]); wrap
        // the start bank modularly.
        const std::int64_t blocks =
            off_bytes / std::int64_t(ali->intrlv);
        const std::int64_t b = std::int64_t(numBanks_);
        const BankId start = static_cast<BankId>(
            ((std::int64_t(ali->startBank) + blocks) % b + b) % b);
        int k = mem::poolIndexFor(intrlv);
        if (k >= 0) {
            const PoolCut cut = poolAllocFallback(bytes, k, start);
            if (cut.host == nullptr) {
                warn("mallocAff: pools exhausted; aligned request "
                     "degraded to the conventional heap");
                machine_.stats().allocFallbacks += 1;
                stats_.fallbacks += 1;
                return allocPlain(bytes);
            }
            host = cut.host;
            info.poolIdx = k;
            info.poolOffset = cut.offset;
            info.allocBytes = cut.bytes;
            info.intrlv = mem::poolInterleave(k);
        } else if (intrlv >= mem::pageSize &&
                   intrlv % mem::pageSize == 0) {
            host = largeAlloc(bytes, intrlv, start,
                              ali->partitioned, intrlv);
            info.partitioned = ali->partitioned;
            info.chunkBytes = ali->partitioned ? intrlv : 0;
            info.intrlv = intrlv;
        } else {
            // Unsupported interleaving (e.g. below a line or not a
            // power of two): the paper's fallback rule.
            stats_.fallbacks += 1;
            return allocPlain(bytes);
        }
        info.startBank = start;
    } else if (req.align_x != 0) {
        // Intra-array affinity: keep A[i] close to A[i + x].
        const std::uint64_t row_bytes =
            static_cast<std::uint64_t>(req.align_x) * elem;
        const std::uint64_t intrlv = chooseIntraInterleave(row_bytes);
        int k = mem::poolIndexFor(intrlv);
        if (k >= 0) {
            const PoolCut cut = poolAllocFallback(bytes, k, 0);
            if (cut.host == nullptr) {
                warn("mallocAff: pools exhausted; intra-affinity "
                     "request degraded to the conventional heap");
                machine_.stats().allocFallbacks += 1;
                stats_.fallbacks += 1;
                return allocPlain(bytes);
            }
            host = cut.host;
            info.poolIdx = k;
            info.poolOffset = cut.offset;
            info.allocBytes = cut.bytes;
            info.intrlv = mem::poolInterleave(k);
        } else {
            host = largeAlloc(bytes, intrlv, 0, false, 0);
            info.intrlv = intrlv;
        }
        info.startBank = 0;
    } else {
        // Default: finest interleaving (one cache line).
        int k = 0;
        const PoolCut cut = poolAllocFallback(bytes, k, 0);
        if (cut.host == nullptr) {
            warn("mallocAff: pools exhausted; default request degraded "
                 "to the conventional heap");
            machine_.stats().allocFallbacks += 1;
            stats_.fallbacks += 1;
            return allocPlain(bytes);
        }
        host = cut.host;
        info.poolIdx = k;
        info.poolOffset = cut.offset;
        info.allocBytes = cut.bytes;
        info.intrlv = mem::poolInterleave(k);
        info.startBank = 0;
    }

    info.simBase = machine_.addressSpace().simAddrOf(host);
    record(host, info);
    stats_.affineAllocs += 1;
    return host;
}

// -------------------------------------------------------- irregular API

bool
AffinityAllocator::carveStripe(int k)
{
    const std::uint64_t intrlv = mem::poolInterleave(k);
    const Addr bump = poolBump_[k];
    const Addr off = (bump + intrlv - 1) & ~(intrlv - 1);
    const std::uint64_t stripe = intrlv * numBanks_;
    if (off + stripe > poolCapacity_)
        return false;
    stats_.alignmentWasteBytes += off - bump;
    machine_.simOs().expandPool(k, opts_.arena, off + stripe);
    const Addr sim_base =
        machine_.simOs().poolVirtBaseOf(k, opts_.arena) + off;
    poolBump_[k] = off + stripe;

    void *host = newHost(stripe);
    ownedHost_.insert(host);
    machine_.addressSpace().registerRange(host, stripe, sim_base);

    for (std::uint32_t s = 0; s < numBanks_; ++s) {
        const Addr sim = sim_base + Addr(s) * intrlv;
        // Key the slot by its *served* bank: lines homed at an
        // offline bank are redirected to the spare, so the slot
        // belongs on the spare's free list.
        const BankId bank = machine_.bankOfSim(sim);
        void *slot_host = static_cast<char *>(host) + Addr(s) * intrlv;
        if (canaries_) {
            const std::uint64_t canary = canaryFor(sim);
            std::memcpy(slot_host, &canary, sizeof(canary));
        }
        freeSlots_[k][bank].push_back(Slot{slot_host, sim});
    }
    return true;
}

void
AffinityAllocator::maybeReconcileFreeLists()
{
    const sim::FaultPlan &plan = machine_.faultPlan();
    if (opts_.legacySpareKeying ||
        plan.redirectVersion() == faultVersion_)
        return;
    faultVersion_ = plan.redirectVersion();
    // Deterministic sweep in (pool, bank, slot) order: every slot
    // moves to the bank now serving its lines, so dead banks' lists
    // drain (their capacity un-strands) and the keying audit holds an
    // exact served == keyed invariant. Slots pushed forward to a
    // higher-numbered bank are re-examined there and kept; the sweep
    // touches each slot at most twice.
    for (int k = 0; k < mem::numInterleavePools; ++k) {
        for (std::uint32_t b = 0; b < numBanks_; ++b) {
            auto &list = freeSlots_[k][b];
            std::size_t kept = 0;
            for (std::size_t i = 0; i < list.size(); ++i) {
                const BankId served = machine_.bankOfSim(list[i].sim);
                if (served == b) {
                    list[kept++] = list[i];
                } else {
                    freeSlots_[k][served].push_back(list[i]);
                    stats_.rekeyedSlots += 1;
                }
            }
            list.resize(kept);
        }
    }
}

BankId
AffinityAllocator::selectBank(const std::vector<BankId> &affinity_banks)
{
    PROF_SCOPE_SAMPLED("alloc/select_bank");
    // Unscored decision (random/linear policies, or Min-Hop with no
    // affinity info): the explain log still gets a line so the
    // decision stream is complete, but there is no Eq. 4
    // decomposition to report.
    const auto explained = [&](BankId chosen) {
        if (explain_) {
            obs::PlacementDecision d;
            d.policy = bankPolicyName(opts_.policy);
            d.numAffinity =
                static_cast<std::uint32_t>(affinity_banks.size());
            d.chosen = chosen;
            explain_->record(d);
        }
        return chosen;
    };

    // Offline banks are never selected; the healthy path is kept
    // draw-for-draw identical to a machine without the fault
    // subsystem (zero overhead when disabled).
    const sim::FaultPlan &plan = machine_.faultPlan();
    const bool degraded = plan.numOfflineBanks() > 0;

    switch (opts_.policy) {
      case BankPolicy::random:
        if (!degraded)
            return explained(static_cast<BankId>(rng_.below(numBanks_)));
        return explained(nthLiveBank(static_cast<std::uint32_t>(
            rng_.below(plan.numLiveBanks()))));
      case BankPolicy::linear: {
        BankId b = nextLinear_++ % numBanks_;
        while (degraded && !plan.bankLive(b))
            b = nextLinear_++ % numBanks_;
        return explained(b);
      }
      case BankPolicy::minHop:
      case BankPolicy::hybrid:
        break;
    }

    if (affinity_banks.empty() && opts_.policy == BankPolicy::minHop) {
        // No affinity information: every bank scores equally under
        // Min-Hop, so fall back to a random pick instead of always
        // returning bank 0.
        if (!degraded)
            return explained(static_cast<BankId>(rng_.below(numBanks_)));
        return explained(nthLiveBank(static_cast<std::uint32_t>(
            rng_.below(plan.numLiveBanks()))));
    }
    const double H =
        opts_.policy == BankPolicy::minHop ? 0.0 : opts_.hybridH;
    // Eq. 4's load term: machine-wide pressure when a co-run shares a
    // board, own pressure otherwise. With one tenant the board equals
    // the private counters bit-for-bit.
    const std::vector<std::uint64_t> &loads =
        board_ ? board_->loads : bankLoads_;
    const double avg_load =
        static_cast<double>(board_ ? board_->total : totalLoad_) /
        static_cast<double>(numBanks_);

    // Manhattan distances are separable, so each bank's affinity-hop
    // sum Σ_a (|xb - xa| + |yb - ya|) comes from per-axis histograms
    // of the affinity tiles in O(|A| + mesh) instead of the direct
    // O(banks x |A|) accumulation. Integer hop sums are exact in
    // double (the direct accumulation also only ever adds integers),
    // so Eq. 4 scores are bit-identical either way; the direct loop
    // remains for meshes wider than the stack histograms.
    constexpr std::uint32_t maxDim = 64;
    const noc::Mesh &mesh = machine_.network().mesh();
    const std::uint32_t xd = mesh.xDim(), yd = mesh.yDim();
    const bool separable =
        !affinity_banks.empty() && xd <= maxDim && yd <= maxDim;
    std::array<std::uint64_t, maxDim> sum_x{}, sum_y{};
    if (separable) {
        std::array<std::uint32_t, maxDim> cnt_x{}, cnt_y{};
        for (BankId a : affinity_banks) {
            const TileId t = machine_.tileOfBank(a);
            cnt_x[mesh.xOf(t)] += 1;
            cnt_y[mesh.yOf(t)] += 1;
        }
        for (std::uint32_t x = 0; x < xd; ++x)
            for (std::uint32_t cx = 0; cx < xd; ++cx)
                sum_x[x] += std::uint64_t(cnt_x[cx]) *
                            (x > cx ? x - cx : cx - x);
        for (std::uint32_t y = 0; y < yd; ++y)
            for (std::uint32_t cy = 0; cy < yd; ++cy)
                sum_y[y] += std::uint64_t(cnt_y[cy]) *
                            (y > cy ? y - cy : cy - y);
    }

    double best_score = std::numeric_limits<double>::infinity();
    BankId best = degraded ? plan.redirect(0) : 0;
    // Explain-only state: the chosen bank's score decomposition and
    // the runner-up. Maintained behind `explain_` checks so the
    // disabled path scores exactly as before.
    double best_hops = 0.0, best_load = 0.0;
    double second_score = std::numeric_limits<double>::infinity();
    BankId second = invalidBank;
    for (BankId b = 0; b < numBanks_; ++b) {
        if (degraded && !plan.bankLive(b))
            continue; // Eq. 4 skips offline banks
        double avg_hops = 0.0;
        if (separable) {
            const TileId t = machine_.tileOfBank(b);
            avg_hops =
                double(sum_x[mesh.xOf(t)] + sum_y[mesh.yOf(t)]) /
                static_cast<double>(affinity_banks.size());
        } else if (!affinity_banks.empty()) {
            double sum = 0.0;
            for (BankId a : affinity_banks)
                sum += machine_.hopsBetween(b, a);
            avg_hops = sum / static_cast<double>(affinity_banks.size());
        }
        double load_term = 0.0;
        if (avg_load > 0.0) {
            load_term = H * (static_cast<double>(loads[b]) /
                                 avg_load -
                             1.0);
        }
        const double score = avg_hops + load_term; // Eq. 4
        if (score < best_score) {
            if (explain_) {
                second_score = best_score;
                second = best;
                best_hops = avg_hops;
                best_load = load_term;
            }
            best_score = score;
            best = b;
        } else if (explain_ && score < second_score) {
            second_score = score;
            second = b;
        }
    }
    if (explain_) {
        if (second_score == std::numeric_limits<double>::infinity()) {
            // Single live candidate: no runner-up to report.
            second = invalidBank;
            second_score = 0.0;
        }
        obs::PlacementDecision d;
        d.policy = bankPolicyName(opts_.policy);
        d.numAffinity = static_cast<std::uint32_t>(affinity_banks.size());
        d.chosen = best;
        d.chosenAffinity = best_hops;
        d.chosenLoad = best_load;
        d.chosenScore = best_score;
        d.runnerUp = second;
        d.runnerUpScore = second_score;
        explain_->record(d);
    }
    return best;
}

void *
AffinityAllocator::mallocAff(std::size_t size, int num_aff_addrs,
                             const void *const *aff_addrs)
{
    PROF_SCOPE_SAMPLED("alloc/malloc_aff.irregular");
    if (size == 0)
        SIM_FATAL("alloc", "mallocAff: zero-size irregular request");
    if (size > mem::maxPoolInterleave) {
        warn("mallocAff: irregular size %zu exceeds max interleaving; "
             "falling back",
             size);
        stats_.fallbacks += 1;
        return allocPlain(size);
    }
    const std::uint64_t intrlv =
        pow2Ceil(std::max<std::uint64_t>(size, lineSize_));
    const int k = mem::poolIndexFor(intrlv);
    maybeReconcileFreeLists();

    std::vector<BankId> banks;
    const std::uint32_t limit =
        std::min<std::uint32_t>(static_cast<std::uint32_t>(
                                    std::max(num_aff_addrs, 0)),
                                opts_.maxAffinityAddrs);
    banks.reserve(limit);
    for (std::uint32_t i = 0; i < limit; ++i) {
        if (!aff_addrs[i])
            continue;
        const Addr sim = machine_.addressSpace().trySimAddrOf(aff_addrs[i]);
        if (sim == invalidAddr)
            continue;
        banks.push_back(machine_.bankOfSim(sim));
    }

    const BankId bank = selectBank(banks);
    // Graceful degradation: when the requested size class's pool is
    // exhausted, place the object in a coarser pool (the slot is
    // bigger than needed but keeps its bank affinity) before giving
    // up and using the conventional heap.
    for (int kk = k; kk < mem::numInterleavePools; ++kk) {
        auto &list = freeSlots_[kk][bank];
        if (list.empty() && !carveStripe(kk))
            continue; // this pool is at capacity; try a coarser one
        if (list.empty())
            SIM_PANIC("alloc", "carveStripe did not produce a slot for bank %u", bank);
        const Slot slot = list.back();
        list.pop_back();
        if (kk != k) {
            machine_.stats().allocFallbacks += 1;
            stats_.fallbacks += 1;
        }
        addLoad(bank);
        irregular_.emplace(slot.host, std::make_pair(kk, bank));
        stats_.irregularAllocs += 1;
        foldPlacement(slot.sim, mem::poolInterleave(kk),
                      mem::poolInterleave(kk), bank);
        return slot.host;
    }
    warn("mallocAff: every irregular pool >= %zu bytes exhausted; "
         "falling back to the conventional heap",
         size);
    machine_.stats().allocFallbacks += 1;
    stats_.fallbacks += 1;
    return allocPlain(size);
}

void *
AffinityAllocator::allocSlotAtBank(std::size_t size, BankId bank)
{
    if (size == 0 || size > mem::maxPoolInterleave)
        SIM_FATAL("alloc", "allocSlotAtBank: size %zu unsupported", size);
    if (bank >= numBanks_)
        SIM_FATAL("alloc", "allocSlotAtBank: bank %u out of range", bank);
    maybeReconcileFreeLists();
    const sim::FaultPlan &plan = machine_.faultPlan();
    if (!plan.bankLive(bank)) {
        // The requested bank is offline: its spare serves its lines,
        // so the slot lands there (counted as a degraded placement).
        bank = plan.redirect(bank);
        machine_.stats().allocFallbacks += 1;
        stats_.fallbacks += 1;
    }
    const std::uint64_t intrlv =
        pow2Ceil(std::max<std::uint64_t>(size, lineSize_));
    const int k = mem::poolIndexFor(intrlv);
    // Same degradation ladder as the policy-driven path: the pinned
    // bank's pool, then coarser pools at that bank, then the
    // conventional heap. Exhausted spare capacity degrades with
    // counters; it never crashes the run.
    for (int kk = k; kk < mem::numInterleavePools; ++kk) {
        auto &list = freeSlots_[kk][bank];
        if (list.empty() && !carveStripe(kk))
            continue; // this pool is at capacity; try a coarser one
        if (list.empty())
            SIM_PANIC("alloc",
                      "carveStripe did not produce a slot for bank %u",
                      bank);
        const Slot slot = list.back();
        list.pop_back();
        if (kk != k) {
            machine_.stats().allocFallbacks += 1;
            stats_.fallbacks += 1;
        }
        addLoad(bank);
        irregular_.emplace(slot.host, std::make_pair(kk, bank));
        stats_.irregularAllocs += 1;
        foldPlacement(slot.sim, mem::poolInterleave(kk),
                      mem::poolInterleave(kk), bank);
        return slot.host;
    }
    warn("allocSlotAtBank: every pool >= %zu bytes exhausted at bank "
         "%u; falling back to the conventional heap",
         size, bank);
    machine_.stats().allocFallbacks += 1;
    stats_.fallbacks += 1;
    return allocPlain(size);
}

// ---------------------------------------------------------------- free

void
AffinityAllocator::freeAff(void *ptr)
{
    PROF_SCOPE_SAMPLED("alloc/free_aff");
    if (auto it = irregular_.find(ptr); it != irregular_.end()) {
        const auto [k, bank] = it->second;
        const Addr sim = machine_.addressSpace().simAddrOf(ptr);
        maybeReconcileFreeLists();
        // Return the slot to the free list of the bank that actually
        // serves it now. The legacy keying approximated that with the
        // alloc-time bank's spare, which goes stale the moment a
        // re-affinity re-target (or a second kill) moves the raw home
        // bank's service elsewhere; the hardened path asks the mapper
        // directly.
        const sim::FaultPlan &plan = machine_.faultPlan();
        const BankId home =
            opts_.legacySpareKeying
                ? (plan.bankLive(bank) ? bank : plan.redirect(bank))
                : machine_.bankOfSim(sim);
        if (canaries_) {
            const std::uint64_t canary = canaryFor(sim);
            std::memcpy(ptr, &canary, sizeof(canary));
        }
        freeSlots_[k][home].push_back(Slot{ptr, sim});
        subLoad(bank);
        irregular_.erase(it);
        stats_.frees += 1;
        return;
    }
    if (auto it = arrays_.find(ptr); it != arrays_.end()) {
        const ArrayInfo info = it->second;
        machine_.addressSpace().unregisterRange(ptr);
        arrays_.erase(it);
        stats_.frees += 1;
        if (info.poolIdx >= 0) {
            // Same-interleaving reuse (§8): the region returns to its
            // pool's free list and the host backing is released.
            freeRegions_[info.poolIdx].push_back(
                FreeRegion{info.poolOffset, info.allocBytes});
            stats_.freeRegionBytes += info.allocBytes;
            if (ownedHost_.erase(ptr)) {
                deleteHost(ptr);
            }
        }
        // Heap / page-at-bank allocations keep their host backing
        // until destruction; their simulated VA is not recycled.
        return;
    }
    // Unknown pointer. In audit mode, scan the free lists so a double
    // free is reported as such rather than as a foreign pointer.
    if (canaries_) {
        for (int k = 0; k < mem::numInterleavePools; ++k) {
            for (std::uint32_t b = 0; b < numBanks_; ++b) {
                for (const Slot &slot : freeSlots_[k][b]) {
                    if (slot.host == ptr) {
                        SIM_FATAL("alloc",
                                  "double free of irregular slot %p "
                                  "(already on pool %d bank %u free list)",
                                  ptr, k, b);
                    }
                }
            }
        }
    }
    SIM_FATAL("alloc", "freeAff of foreign pointer %p (never returned by "
              "this allocator, or already freed)",
              ptr);
}

void *
AffinityAllocator::reallocAff(void *ptr, std::size_t new_bytes)
{
    if (new_bytes == 0)
        SIM_FATAL("alloc", "reallocAff to zero bytes");
    if (auto it = irregular_.find(ptr); it != irregular_.end()) {
        const auto [k, bank] = it->second;
        const std::uint64_t slot_bytes = mem::poolInterleave(k);
        if (new_bytes <= slot_bytes)
            return ptr; // fits the existing size class in place
        // Move within the same bank so existing affinity holds.
        void *next = allocSlotAtBank(
            std::min<std::size_t>(new_bytes, mem::maxPoolInterleave),
            bank);
        std::memcpy(next, ptr, slot_bytes);
        freeAff(ptr);
        return next;
    }
    const ArrayInfo *info = arrayInfo(ptr);
    if (!info)
        SIM_FATAL("alloc", "reallocAff of unknown pointer %p", ptr);
    const ArrayInfo old = *info;
    void *next;
    if (old.intrlv != 0 && mem::poolIndexFor(old.intrlv) >= 0) {
        // Preserve interleaving and start bank: alignment to/from
        // other arrays survives the resize.
        next = allocInterleaved(new_bytes, old.intrlv, old.startBank);
    } else if (old.intrlv != 0) {
        next = largeAlloc(new_bytes, old.intrlv, old.startBank,
                          old.partitioned, old.chunkBytes);
        ArrayInfo ninfo = old;
        ninfo.simBase = machine_.addressSpace().simAddrOf(next);
        ninfo.bytes = new_bytes;
        ninfo.poolIdx = -1;
        record(next, ninfo);
    } else {
        next = allocPlain(new_bytes);
    }
    std::memcpy(next, ptr,
                std::min<std::uint64_t>(old.bytes, new_bytes));
    // Update element bookkeeping on the new record.
    if (ArrayInfo *ninfo =
            const_cast<ArrayInfo *>(arrayInfo(next))) {
        ninfo->elemSize = old.elemSize;
        ninfo->numElem = new_bytes / std::max<std::uint32_t>(
                                         1, old.elemSize);
        ninfo->partitioned = old.partitioned;
        ninfo->chunkBytes = old.chunkBytes;
    }
    freeAff(ptr);
    return next;
}

std::vector<std::pair<void *, void *>>
AffinityAllocator::migrateVictims()
{
    const sim::FaultPlan &plan = machine_.faultPlan();
    std::vector<std::pair<void *, void *>> moved;
    if (plan.numOfflineBanks() == 0)
        return moved;
    maybeReconcileFreeLists();

    // Collect first: the migration below mutates irregular_.
    struct Victim
    {
        void *host;
        int k;
        BankId bank;
    };
    std::vector<Victim> victims;
    for (const auto &[host, kb] : irregular_) {
        if (!plan.bankLive(kb.second))
            victims.push_back(
                Victim{const_cast<void *>(host), kb.first, kb.second});
    }
    // irregular_ hashes host pointers, so its iteration order varies
    // with the host heap layout; migration order feeds selectBank's
    // load balancing, so order it by simulated address to keep the
    // machine's behaviour reproducible run-to-run.
    std::sort(victims.begin(), victims.end(),
              [this](const Victim &a, const Victim &b) {
                  return machine_.addressSpace().simAddrOf(a.host) <
                         machine_.addressSpace().simAddrOf(b.host);
              });

    for (const Victim &v : victims) {
        const std::uint64_t slot_bytes = mem::poolInterleave(v.k);
        // Re-run the selection policy seeded with the dead bank's
        // spare (the bank already serving the victim's lines), so the
        // replacement stays close while load balance has a say.
        const BankId spare = plan.redirect(v.bank);
        const BankId nb = selectBank({spare});
        void *next = allocSlotAtBank(slot_bytes, nb);
        std::memcpy(next, v.host, slot_bytes);
        // The data physically moves spare -> new bank.
        machine_.forwardData(spare, machine_.bankOfHost(next),
                             static_cast<std::uint32_t>(slot_bytes));
        freeAff(v.host);
        machine_.stats().victimMigrations += 1;
        moved.emplace_back(v.host, next);
    }
    return moved;
}

// ------------------------------------------------------------ metadata

void
AffinityAllocator::record(void *host, ArrayInfo info)
{
    arrays_[host] = info;
    // Host pointers are a host-allocator artifact and never hashed;
    // the simulated coordinates are deterministic run to run.
    foldPlacement(info.simBase, info.bytes, info.intrlv, info.startBank);
}

void
AffinityAllocator::foldPlacement(Addr sim, std::uint64_t bytes,
                                 std::uint64_t intrlv, std::uint64_t bank)
{
    std::uint64_t h = simcheck::Digest::fnv1a(&sim, sizeof(sim));
    h = simcheck::Digest::fnv1a(&bytes, sizeof(bytes), h);
    h = simcheck::Digest::fnv1a(&intrlv, sizeof(intrlv), h);
    h = simcheck::Digest::fnv1a(&bank, sizeof(bank), h);
    placement_.foldRaw(h);
}

void
AffinityAllocator::auditFreeLists(simcheck::CheckContext &ctx)
{
    // The audit point doubles as a reconcile point so a fault landing
    // between allocator calls cannot leave a transiently stale keying
    // for the strict check below to trip over.
    maybeReconcileFreeLists();
    const sim::FaultPlan &plan = machine_.faultPlan();
    std::unordered_set<const void *> free_hosts;

    for (int k = 0; k < mem::numInterleavePools; ++k) {
        const std::uint64_t intrlv = mem::poolInterleave(k);
        const Addr vbase =
            machine_.simOs().poolVirtBaseOf(k, opts_.arena);
        for (std::uint32_t b = 0; b < numBanks_; ++b) {
            for (const Slot &slot : freeSlots_[k][b]) {
                if (slot.host == nullptr) {
                    ctx.failf("pool %d bank %u: null host in free list",
                              k, b);
                    continue;
                }
                if (!free_hosts.insert(slot.host).second) {
                    ctx.failf("slot %p appears on more than one free list",
                              slot.host);
                    continue;
                }
                // Arena ownership: a slot whose simulated address sits
                // in another tenant's arena is a cross-tenant breach
                // (tenant A holding memory inside tenant B's slice).
                // Addresses outside the pool segments entirely fall
                // through to the range check below.
                const bool in_pools =
                    slot.sim >= mem::poolVirtBase &&
                    slot.sim < mem::poolVirtBase +
                                   Addr(mem::numInterleavePools) *
                                       mem::terabyte;
                const std::uint32_t owner =
                    in_pools ? machine_.simOs().arenaOfPoolAddr(slot.sim)
                             : opts_.arena;
                if (owner != opts_.arena) {
                    ctx.failf("pool %d bank %u: slot sim %llx belongs to "
                              "arena %u but this allocator owns arena %u "
                              "(cross-tenant pointer)",
                              k, b, (unsigned long long)slot.sim, owner,
                              opts_.arena);
                    continue;
                }
                if (slot.sim < vbase ||
                    slot.sim - vbase + intrlv > poolBump_[k]) {
                    ctx.failf("pool %d bank %u: slot sim %llx outside the "
                              "pool's allocated range",
                              k, b, (unsigned long long)slot.sim);
                    continue;
                }
                if ((slot.sim - vbase) % intrlv != 0) {
                    ctx.failf("pool %d bank %u: slot sim %llx misaligned "
                              "to the %llu B interleaving",
                              k, b, (unsigned long long)slot.sim,
                              (unsigned long long)intrlv);
                    continue;
                }
                const BankId served = machine_.bankOfSim(slot.sim);
                if (opts_.legacySpareKeying) {
                    // Legacy keying tolerates slots keyed at a dead
                    // bank's current spare; a redirect change after the
                    // free leaves them stranded and trips this.
                    if (served != b && served != plan.redirect(b)) {
                        ctx.failf("pool %d: slot sim %llx on bank %u's "
                                  "free list but served by bank %u",
                                  k, (unsigned long long)slot.sim, b,
                                  served);
                    }
                } else if (served != b) {
                    ctx.failf("pool %d: stale spare keying — slot sim "
                              "%llx keyed at bank %u but served by bank "
                              "%u after redirect change",
                              k, (unsigned long long)slot.sim, b, served);
                }
                if (canaries_) {
                    std::uint64_t got = 0;
                    std::memcpy(&got, slot.host, sizeof(got));
                    if (got != canaryFor(slot.sim)) {
                        ctx.failf(
                            "pool %d bank %u: free slot %p (sim %llx) "
                            "canary clobbered — write through a stale "
                            "pointer",
                            k, b, slot.host,
                            (unsigned long long)slot.sim);
                    }
                }
            }
        }
    }

    // Free regions: within the bump, pairwise disjoint, and summing to
    // the freeRegionBytes counter.
    std::uint64_t region_bytes = 0;
    for (int k = 0; k < mem::numInterleavePools; ++k) {
        std::vector<FreeRegion> regions = freeRegions_[k];
        std::sort(regions.begin(), regions.end(),
                  [](const FreeRegion &a, const FreeRegion &b) {
                      return a.offset < b.offset;
                  });
        Addr prev_end = 0;
        for (const FreeRegion &r : regions) {
            if (r.offset + r.bytes > poolBump_[k]) {
                ctx.failf("pool %d: free region [%llx,%llx) beyond the "
                          "bump %llx",
                          k, (unsigned long long)r.offset,
                          (unsigned long long)(r.offset + r.bytes),
                          (unsigned long long)poolBump_[k]);
            }
            if (r.offset < prev_end) {
                ctx.failf("pool %d: free regions overlap at offset %llx",
                          k, (unsigned long long)r.offset);
            }
            prev_end = r.offset + r.bytes;
            region_bytes += r.bytes;
        }
    }
    if (region_bytes != stats_.freeRegionBytes) {
        ctx.failf("freeRegionBytes counter %llu != %llu summed over pools",
                  (unsigned long long)stats_.freeRegionBytes,
                  (unsigned long long)region_bytes);
    }

    // Irregular bookkeeping: live slots are never on a free list and
    // the per-bank loads reconcile with the live-slot map.
    std::vector<std::uint64_t> loads(numBanks_, 0);
    std::uint64_t total = 0;
    for (const auto &[host, kb] : irregular_) {
        if (free_hosts.count(host)) {
            ctx.failf("live irregular slot %p is also on a free list "
                      "(double-booked)",
                      host);
        }
        const Addr sim = machine_.addressSpace().trySimAddrOf(host);
        if (sim != invalidAddr && sim >= mem::poolVirtBase &&
            sim < mem::poolVirtBase +
                      Addr(mem::numInterleavePools) * mem::terabyte &&
            machine_.simOs().arenaOfPoolAddr(sim) != opts_.arena) {
            ctx.failf("live irregular slot %p (sim %llx) lives in arena "
                      "%u but this allocator owns arena %u "
                      "(cross-tenant pointer)",
                      host, (unsigned long long)sim,
                      machine_.simOs().arenaOfPoolAddr(sim), opts_.arena);
        }
        loads[kb.second] += 1;
        total += 1;
    }
    if (total != totalLoad_) {
        ctx.failf("totalLoad %llu != %llu live irregular slots",
                  (unsigned long long)totalLoad_,
                  (unsigned long long)total);
    }
    for (std::uint32_t b = 0; b < numBanks_; ++b) {
        if (loads[b] != bankLoads_[b]) {
            ctx.failf("bankLoads[%u] %llu != %llu recomputed from live "
                      "slots",
                      b, (unsigned long long)bankLoads_[b],
                      (unsigned long long)loads[b]);
        }
    }

    // Shared board: this tenant's contribution can never exceed the
    // machine-wide totals (a violation means a tenant mutated the
    // board without mirroring, or double-released).
    if (board_) {
        for (std::uint32_t b = 0; b < numBanks_; ++b) {
            if (bankLoads_[b] > board_->loads[b]) {
                ctx.failf("shared board loads[%u]=%llu below this "
                          "tenant's own %llu",
                          b, (unsigned long long)board_->loads[b],
                          (unsigned long long)bankLoads_[b]);
            }
        }
        if (totalLoad_ > board_->total) {
            ctx.failf("shared board total %llu below this tenant's own "
                      "%llu",
                      (unsigned long long)board_->total,
                      (unsigned long long)totalLoad_);
        }
    }
}

const ArrayInfo *
AffinityAllocator::arrayInfo(const void *ptr) const
{
    auto it = arrays_.find(ptr);
    return it == arrays_.end() ? nullptr : &it->second;
}

BankId
AffinityAllocator::bankOfElement(const void *array,
                                 std::uint64_t idx) const
{
    const ArrayInfo *info = arrayInfo(array);
    if (!info)
        SIM_FATAL("alloc", "bankOfElement: %p is not a recorded array", array);
    return machine_.bankOfSim(info->simBase +
                              idx * std::uint64_t(info->elemSize));
}

} // namespace affalloc::alloc
