/**
 * @file
 * Log-scale latency histogram (HdrHistogram-style): power-of-two
 * octaves split into 8 linear sub-buckets, so any recorded value lands
 * in a bucket whose upper edge is within 12.5% of the value, with O(1)
 * record and O(buckets) quantile. The serving front-end records one
 * end-to-end latency per completed request and reads p50/p99/p999
 * upper bounds out; everything is integer arithmetic, so two
 * deterministic runs produce bit-identical quantiles regardless of
 * host threading.
 */

#ifndef AFFALLOC_OBS_LATENCY_HIST_HH
#define AFFALLOC_OBS_LATENCY_HIST_HH

#include <cstdint>
#include <vector>

namespace affalloc::obs
{

/** Fixed-precision log-scale histogram over uint64 samples. */
class LatencyHistogram
{
  public:
    /** Record one sample. */
    void
    record(std::uint64_t value)
    {
        const std::uint32_t idx = bucketOf(value);
        if (idx >= counts_.size())
            counts_.resize(idx + 1, 0);
        counts_[idx] += 1;
        total_ += 1;
    }

    /** Samples recorded so far. */
    std::uint64_t count() const { return total_; }

    /**
     * Upper bound of the bucket containing the @p q quantile
     * (0 < q <= 1) of the recorded samples; 0 when empty. The bound
     * over-estimates the true quantile by at most 12.5%.
     */
    std::uint64_t
    quantileUpperBound(double q) const
    {
        if (total_ == 0)
            return 0;
        std::uint64_t target =
            static_cast<std::uint64_t>(q * static_cast<double>(total_));
        if (target < 1)
            target = 1;
        if (target > total_)
            target = total_;
        std::uint64_t seen = 0;
        for (std::uint32_t i = 0; i < counts_.size(); ++i) {
            seen += counts_[i];
            if (seen >= target)
                return bucketUpper(i);
        }
        return bucketUpper(
            static_cast<std::uint32_t>(counts_.size()) - 1);
    }

    /** Fold another histogram's samples into this one. */
    void
    merge(const LatencyHistogram &other)
    {
        if (other.counts_.size() > counts_.size())
            counts_.resize(other.counts_.size(), 0);
        for (std::size_t i = 0; i < other.counts_.size(); ++i)
            counts_[i] += other.counts_[i];
        total_ += other.total_;
    }

    /**
     * Bucket index of @p value: values below 16 are exact; larger
     * values map to (octave, 3-bit mantissa) pairs.
     */
    static std::uint32_t
    bucketOf(std::uint64_t value)
    {
        if (value < 16)
            return static_cast<std::uint32_t>(value);
        std::uint32_t octave = 0;
        for (std::uint64_t v = value; v > 1; v >>= 1)
            ++octave;
        const std::uint32_t sub = static_cast<std::uint32_t>(
            (value >> (octave - 3)) & 7);
        return octave * 8 + sub;
    }

    /** Largest value mapping to bucket @p idx. */
    static std::uint64_t
    bucketUpper(std::uint32_t idx)
    {
        if (idx < 16)
            return idx;
        const std::uint32_t octave = idx / 8;
        const std::uint32_t sub = idx % 8;
        const std::uint64_t base = std::uint64_t(1) << octave;
        return base + (std::uint64_t(sub) + 1) * (base >> 3) - 1;
    }

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace affalloc::obs

#endif // AFFALLOC_OBS_LATENCY_HIST_HH
