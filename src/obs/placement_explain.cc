#include "obs/placement_explain.hh"

#include "sim/log.hh"

namespace affalloc::obs
{

PlacementExplainer::PlacementExplainer(const std::string &path)
    : path_(path)
{
    file_ = std::fopen(path.c_str(), "w");
    if (!file_)
        SIM_FATAL("obs", "cannot open placement-explain output %s for "
                  "writing", path.c_str());
    std::fputs("# decision policy n_affinity chosen affinity_term "
               "load_term score runner_up runner_up_score margin\n",
               file_);
}

PlacementExplainer::~PlacementExplainer()
{
    if (file_) {
        try {
            close();
        } catch (...) {
            std::fclose(file_);
            file_ = nullptr;
        }
    }
}

void
PlacementExplainer::record(const PlacementDecision &d)
{
    if (!file_)
        SIM_PANIC("obs", "placement decision after close() on %s",
                  path_.c_str());
    decisions_ += 1;
    if (d.runnerUp == invalidBank) {
        // Unscored policies (random / round-robin / no affinity info):
        // there is no meaningful decomposition, only the pick.
        std::fprintf(file_, "%llu %s %u bank%u - - - - - -\n",
                     (unsigned long long)decisions_, d.policy,
                     d.numAffinity, d.chosen);
        return;
    }
    std::fprintf(file_,
                 "%llu %s %u bank%u %.4f %.4f %.4f bank%u %.4f %.4f\n",
                 (unsigned long long)decisions_, d.policy, d.numAffinity,
                 d.chosen, d.chosenAffinity, d.chosenLoad, d.chosenScore,
                 d.runnerUp, d.runnerUpScore,
                 d.runnerUpScore - d.chosenScore);
}

void
PlacementExplainer::close()
{
    if (!file_)
        return;
    const bool bad = std::ferror(file_) != 0;
    const bool close_failed = std::fclose(file_) != 0;
    file_ = nullptr;
    if (bad || close_failed)
        SIM_FATAL("obs", "I/O error writing placement-explain output %s "
                  "(log is incomplete)", path_.c_str());
}

} // namespace affalloc::obs
