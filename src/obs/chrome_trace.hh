/**
 * @file
 * Stream-lifecycle tracer emitting Chrome trace_event JSON (the
 * object format: {"traceEvents":[...]}), loadable in Perfetto or
 * chrome://tracing. Timestamps are simulated cycles reported in the
 * "ts" microsecond field, so one trace microsecond equals one core
 * cycle.
 *
 * Lanes (tid) are allocated deterministically and named through
 * metadata events the first time they are used:
 *   tid 0              epoch phase spans ("X" complete events)
 *   tid 1              machine-level instants (offload NACKs, faults)
 *   tid 1000 + id      one lane per configured stream; the stream's
 *                      config -> migrations -> completion live here
 *
 * Events are streamed to the file as they happen, so trace memory is
 * O(open spans), not O(events). All output is derived from simulated
 * state only — two deterministic runs produce byte-identical traces
 * regardless of wall clock or thread count (the obs tests diff the
 * bytes). Any I/O error is a SIM_FATAL naming the path; a trace is
 * never silently truncated.
 */

#ifndef AFFALLOC_OBS_CHROME_TRACE_HH
#define AFFALLOC_OBS_CHROME_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "sim/types.hh"

namespace affalloc::obs
{

/** Chrome trace_event JSON writer. */
class ChromeTracer
{
  public:
    /** Lane of machine-scoped instant events. */
    static constexpr std::uint32_t machineLane = 1;
    /** First per-tenant lane; tenant @p id traces on tenantLane + id. */
    static constexpr std::uint32_t tenantLane = 500;
    /** First per-stream lane; stream @p id traces on streamLane + id. */
    static constexpr std::uint32_t streamLane = 1000;

    /** Open @p path for writing; SIM_FATAL if it cannot be created. */
    explicit ChromeTracer(const std::string &path);
    ~ChromeTracer();

    ChromeTracer(const ChromeTracer &) = delete;
    ChromeTracer &operator=(const ChromeTracer &) = delete;

    // ------------------------------------------------------ event kinds
    /**
     * One completed epoch as a complete ("X") span on the epoch lane.
     * @p phase labels the span ("push"/"pull"/...); empty means
     * "epoch".
     */
    void epochSpan(const std::string &phase, Cycles start, Cycles duration,
                   std::uint64_t epoch_index);

    /** Begin a stream's lifetime span on its own lane. */
    void streamBegin(std::uint32_t stream_id, const char *kind,
                     CoreId owner, BankId bank, Cycles ts);

    /** End a stream's lifetime span (reconfigure or fallback). */
    void streamEnd(std::uint32_t stream_id, Cycles ts);

    /**
     * Instant on a stream's lane (migration, NACK, fallback).
     * @p args_json is the comma-joined member list of the "args"
     * object, *without* surrounding braces (e.g. "\"from\":2,\"to\":5").
     */
    void streamInstant(std::uint32_t stream_id, const char *name,
                       Cycles ts, const std::string &args_json);

    /** Instant on the machine lane; @p args_json as in streamInstant. */
    void machineInstant(const char *name, Cycles ts,
                        const std::string &args_json);

    /**
     * One scheduler quantum of a co-run tenant as a complete ("X")
     * span on the tenant's own lane (tenantLane + id), so each
     * tenant's machine occupancy reads as a Gantt track.
     */
    void tenantSpan(std::uint32_t tenant_id, const std::string &name,
                    Cycles start, Cycles end);

    /**
     * Flush and close the file, auto-closing any stream span still
     * open at the last observed timestamp so the JSON stays loadable
     * even when a workload never tears its streams down. Idempotent;
     * SIM_FATAL on write failure.
     */
    void close();

    /** Events written so far (tests). */
    std::uint64_t numEvents() const { return events_; }

  private:
    /** Emit a thread_name metadata event once per lane. */
    void ensureLane(std::uint32_t tid, const std::string &name);
    /** Write one already-rendered JSON event object. */
    void emit(const std::string &json);
    /** Escape a string for embedding in a JSON literal. */
    static std::string escape(const std::string &s);

    std::FILE *file_ = nullptr;
    std::string path_;
    bool first_ = true;
    std::uint64_t events_ = 0;
    Cycles lastTs_ = 0;
    /** Lanes already named via metadata events. */
    std::map<std::uint32_t, std::string> lanes_;
    /** Stream lanes with an open "B" span (closed on close()). */
    std::map<std::uint32_t, bool> openStreams_;
};

} // namespace affalloc::obs

#endif // AFFALLOC_OBS_CHROME_TRACE_HH
