#include "obs/spatial_metrics.hh"

#include <algorithm>

#include "sim/log.hh"

namespace affalloc::obs
{

std::uint64_t
SpatialSnapshot::sum(const std::vector<std::uint64_t> &v)
{
    std::uint64_t total = 0;
    for (const std::uint64_t x : v)
        total += x;
    return total;
}

void
SpatialMetrics::init(std::uint32_t mesh_x, std::uint32_t mesh_y,
                     std::vector<TileId> bank_tile, std::size_t num_links)
{
    SIM_REQUIRE("obs", mesh_x > 0 && mesh_y > 0,
                "spatial metrics need a non-empty mesh (%ux%u)", mesh_x,
                mesh_y);
    const std::size_t banks = bank_tile.size();
    snap_.meshX = mesh_x;
    snap_.meshY = mesh_y;
    snap_.bankTile = std::move(bank_tile);
    snap_.bankAccesses.assign(banks, 0);
    snap_.bankMisses.assign(banks, 0);
    snap_.bankAtomics.assign(banks, 0);
    snap_.bankSeOps.assign(banks, 0);
    snap_.bankStreamNotes.assign(banks, 0);
    snap_.bankBusyCycles.assign(banks, 0.0);
    snap_.linkFlits.assign(num_links, 0);
    snap_.epochs.clear();
}

void
SpatialMetrics::endEpoch(Cycles end_cycle,
                         const std::vector<double> &bank_busy,
                         std::uint64_t max_link_flits,
                         std::uint64_t epoch_flits)
{
    double max_busy = 0.0;
    for (std::size_t b = 0; b < bank_busy.size(); ++b) {
        snap_.bankBusyCycles[b] += bank_busy[b];
        max_busy = std::max(max_busy, bank_busy[b]);
    }
    EpochMetrics em;
    em.endCycle = end_cycle;
    em.maxBankBusy = max_busy;
    em.maxLinkFlits = max_link_flits;
    em.epochFlits = epoch_flits;
    snap_.epochs.push_back(em);
}

void
SpatialMetrics::setTenants(std::vector<std::string> names)
{
    SIM_REQUIRE("obs", !snap_.bankAccesses.empty(),
                "setTenants() before init(): bank count unknown");
    snap_.tenantNames = std::move(names);
    snap_.tenantBankAccesses.assign(
        snap_.tenantNames.size(),
        std::vector<std::uint64_t>(snap_.bankAccesses.size(), 0));
    currentTenant_ = 0;
}

void
SpatialMetrics::setLinkFlits(const std::vector<std::uint64_t> &lifetime,
                             std::size_t num_route_links)
{
    // The network's lifetime vector carries the per-tile local ports
    // after the route links; only the mesh links are spatial.
    const std::size_t n = std::min(lifetime.size(), num_route_links);
    snap_.linkFlits.assign(lifetime.begin(),
                           lifetime.begin() +
                               static_cast<std::ptrdiff_t>(n));
}

} // namespace affalloc::obs
