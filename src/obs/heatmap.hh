/**
 * @file
 * ASCII heatmap rendering of per-bank and per-link spatial metrics on
 * the mesh. Banks render as one shaded cell per tile plus a numeric
 * grid; links render each tile's four directed-link loads so hot rows
 * or columns of the X-Y routed mesh stand out in a terminal.
 */

#ifndef AFFALLOC_OBS_HEATMAP_HH
#define AFFALLOC_OBS_HEATMAP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/spatial_metrics.hh"

namespace affalloc::obs
{

/**
 * Render @p per_bank values as a meshX x meshY grid. Each tile shows
 * its shade character (scaled to the max) and value; the bank's id is
 * looked up through @p bank_tile (bank b's value renders at its tile).
 * Deterministic: golden-tested byte-for-byte.
 */
std::string renderBankHeatmap(const std::string &title,
                              const std::vector<std::uint64_t> &per_bank,
                              const std::vector<TileId> &bank_tile,
                              std::uint32_t mesh_x, std::uint32_t mesh_y);

/**
 * Render per-directed-link flit loads. Link ids follow
 * noc::Mesh::linkOf (tile*4 + dir, dir 0=E 1=W 2=N 3=S). Each mesh
 * row prints the horizontal (E/W) loads between its tiles, then the
 * vertical (N/S) loads to the next row.
 */
std::string renderLinkHeatmap(const std::string &title,
                              const std::vector<std::uint64_t> &link_flits,
                              std::uint32_t mesh_x, std::uint32_t mesh_y);

/** Shade character for @p value scaled against @p max_value. */
char heatShade(std::uint64_t value, std::uint64_t max_value);

/**
 * Render the per-tenant L3 access overlay of a co-run snapshot: one
 * bank heatmap per tenant, titled with the tenant's label, so each
 * tenant's spatial footprint (and who causes the shared pressure) is
 * visible side by side. Empty string when the snapshot has no tenant
 * overlay.
 */
std::string renderTenantBankHeatmaps(const SpatialSnapshot &snap);

} // namespace affalloc::obs

#endif // AFFALLOC_OBS_HEATMAP_HH
