#include "obs/chrome_trace.hh"

#include <algorithm>

#include "sim/log.hh"

namespace affalloc::obs
{

ChromeTracer::ChromeTracer(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "w");
    if (!file_)
        SIM_FATAL("obs", "cannot open trace output %s for writing",
                  path.c_str());
    std::fputs("{\"traceEvents\":[", file_);
    ensureLane(0, "epochs");
}

ChromeTracer::~ChromeTracer()
{
    // Destruction without close() still produces a loadable trace,
    // but swallows I/O errors; RunContext::finish closes explicitly.
    if (file_) {
        try {
            close();
        } catch (...) {
            std::fclose(file_);
            file_ = nullptr;
        }
    }
}

std::string
ChromeTracer::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
ChromeTracer::emit(const std::string &json)
{
    if (!file_)
        SIM_PANIC("obs", "trace event after close() on %s", path_.c_str());
    if (!first_)
        std::fputs(",\n", file_);
    first_ = false;
    std::fputs(json.c_str(), file_);
    events_ += 1;
}

void
ChromeTracer::ensureLane(std::uint32_t tid, const std::string &name)
{
    const auto it = lanes_.find(tid);
    if (it != lanes_.end())
        return;
    lanes_.emplace(tid, name);
    emit(detail::formatMessage(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
        "\"args\":{\"name\":\"%s\"}}",
        tid, escape(name).c_str()));
}

void
ChromeTracer::epochSpan(const std::string &phase, Cycles start,
                        Cycles duration, std::uint64_t epoch_index)
{
    lastTs_ = std::max(lastTs_, start + duration);
    emit(detail::formatMessage(
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":0,"
        "\"ts\":%llu,\"dur\":%llu,\"args\":{\"epoch\":%llu}}",
        phase.empty() ? "epoch" : escape(phase).c_str(),
        (unsigned long long)start, (unsigned long long)duration,
        (unsigned long long)epoch_index));
}

void
ChromeTracer::streamBegin(std::uint32_t stream_id, const char *kind,
                          CoreId owner, BankId bank, Cycles ts)
{
    const std::uint32_t tid = streamLane + stream_id;
    ensureLane(tid, detail::formatMessage("stream %u", stream_id));
    lastTs_ = std::max(lastTs_, ts);
    emit(detail::formatMessage(
        "{\"name\":\"%s\",\"ph\":\"B\",\"pid\":1,\"tid\":%u,"
        "\"ts\":%llu,\"args\":{\"core\":%u,\"bank\":%u}}",
        kind, tid, (unsigned long long)ts, owner, bank));
    openStreams_[tid] = true;
}

void
ChromeTracer::streamEnd(std::uint32_t stream_id, Cycles ts)
{
    const std::uint32_t tid = streamLane + stream_id;
    const auto it = openStreams_.find(tid);
    if (it == openStreams_.end() || !it->second)
        return; // never configured, or already ended
    it->second = false;
    lastTs_ = std::max(lastTs_, ts);
    emit(detail::formatMessage(
        "{\"ph\":\"E\",\"pid\":1,\"tid\":%u,\"ts\":%llu}", tid,
        (unsigned long long)ts));
}

void
ChromeTracer::streamInstant(std::uint32_t stream_id, const char *name,
                            Cycles ts, const std::string &args_json)
{
    const std::uint32_t tid = streamLane + stream_id;
    ensureLane(tid, detail::formatMessage("stream %u", stream_id));
    lastTs_ = std::max(lastTs_, ts);
    emit(detail::formatMessage(
        "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
        "\"tid\":%u,\"ts\":%llu,\"args\":{%s}}",
        name, tid, (unsigned long long)ts, args_json.c_str()));
}

void
ChromeTracer::machineInstant(const char *name, Cycles ts,
                             const std::string &args_json)
{
    ensureLane(machineLane, "machine");
    lastTs_ = std::max(lastTs_, ts);
    emit(detail::formatMessage(
        "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
        "\"tid\":%u,\"ts\":%llu,\"args\":{%s}}",
        name, machineLane, (unsigned long long)ts, args_json.c_str()));
}

void
ChromeTracer::tenantSpan(std::uint32_t tenant_id, const std::string &name,
                         Cycles start, Cycles end)
{
    const std::uint32_t tid = tenantLane + tenant_id;
    ensureLane(tid, "tenant " + name);
    lastTs_ = std::max(lastTs_, end);
    emit(detail::formatMessage(
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
        "\"ts\":%llu,\"dur\":%llu,\"args\":{\"tenant\":%u}}",
        escape(name).c_str(), tid, (unsigned long long)start,
        (unsigned long long)(end - start), tenant_id));
}

void
ChromeTracer::close()
{
    if (!file_)
        return;
    // Streams a workload never tore down get their span closed at the
    // last timestamp so the JSON nests correctly.
    for (auto &kv : openStreams_) {
        if (kv.second) {
            kv.second = false;
            emit(detail::formatMessage(
                "{\"ph\":\"E\",\"pid\":1,\"tid\":%u,\"ts\":%llu}",
                kv.first, (unsigned long long)lastTs_));
        }
    }
    std::fputs("\n],\"displayTimeUnit\":\"ns\"}\n", file_);
    const bool bad = std::ferror(file_) != 0;
    const bool close_failed = std::fclose(file_) != 0;
    file_ = nullptr;
    if (bad || close_failed)
        SIM_FATAL("obs", "I/O error writing trace output %s "
                  "(trace is incomplete)", path_.c_str());
}

} // namespace affalloc::obs
