#include "obs/heatmap.hh"

#include <algorithm>

#include "sim/log.hh"

namespace affalloc::obs
{

namespace
{

/** 10-step shade ramp from cold to hot. */
constexpr const char *shadeRamp = " .:-=+*#%@";

std::string
formatHeader(const std::string &title, std::uint64_t total,
             std::uint64_t max_value)
{
    return detail::formatMessage(
        "=== %s (total %llu, max %llu) ===\n", title.c_str(),
        (unsigned long long)total, (unsigned long long)max_value);
}

} // namespace

char
heatShade(std::uint64_t value, std::uint64_t max_value)
{
    if (max_value == 0 || value == 0)
        return shadeRamp[0];
    // Nonzero values never render as blank: the lowest hot shade is
    // '.', and the maximum is '@'.
    const std::uint64_t step = (value * 9 + max_value - 1) / max_value;
    return shadeRamp[std::min<std::uint64_t>(step, 9)];
}

std::string
renderBankHeatmap(const std::string &title,
                  const std::vector<std::uint64_t> &per_bank,
                  const std::vector<TileId> &bank_tile,
                  std::uint32_t mesh_x, std::uint32_t mesh_y)
{
    SIM_REQUIRE("obs", per_bank.size() == bank_tile.size(),
                "heatmap: %zu bank values vs %zu bank->tile entries",
                per_bank.size(), bank_tile.size());
    SIM_REQUIRE("obs",
                per_bank.size() == std::size_t(mesh_x) * mesh_y,
                "heatmap: %zu banks on a %ux%u mesh", per_bank.size(),
                mesh_x, mesh_y);

    // Tile -> value through the numbering scheme.
    std::vector<std::uint64_t> tile_value(per_bank.size(), 0);
    std::uint64_t total = 0, max_value = 0;
    for (std::size_t b = 0; b < per_bank.size(); ++b) {
        tile_value[bank_tile[b]] = per_bank[b];
        total += per_bank[b];
        max_value = std::max(max_value, per_bank[b]);
    }

    std::string out = formatHeader(title, total, max_value);
    for (std::uint32_t y = 0; y < mesh_y; ++y) {
        // Shade strip.
        out += "  ";
        for (std::uint32_t x = 0; x < mesh_x; ++x)
            out += heatShade(tile_value[y * mesh_x + x], max_value);
        // Numeric strip.
        out += "   |";
        for (std::uint32_t x = 0; x < mesh_x; ++x)
            out += detail::formatMessage(
                " %8llu",
                (unsigned long long)tile_value[y * mesh_x + x]);
        out += "\n";
    }
    return out;
}

std::string
renderLinkHeatmap(const std::string &title,
                  const std::vector<std::uint64_t> &link_flits,
                  std::uint32_t mesh_x, std::uint32_t mesh_y)
{
    SIM_REQUIRE("obs",
                link_flits.size() >= std::size_t(mesh_x) * mesh_y * 4,
                "link heatmap: %zu link slots for a %ux%u mesh",
                link_flits.size(), mesh_x, mesh_y);

    const auto link = [&](std::uint32_t x, std::uint32_t y,
                          std::uint32_t dir) {
        return link_flits[(std::size_t(y) * mesh_x + x) * 4 + dir];
    };
    std::uint64_t total = 0, max_value = 0;
    for (std::size_t l = 0; l < std::size_t(mesh_x) * mesh_y * 4; ++l) {
        total += link_flits[l];
        max_value = std::max(max_value, link_flits[l]);
    }

    // dir 0=east 1=west 2=north 3=south (noc::Direction order). A
    // bidirectional channel between horizontal neighbours is the east
    // link of the left tile plus the west link of the right tile.
    std::string out = formatHeader(title, total, max_value);
    out += "  (each cell: flits east+west or north+south between "
           "neighbouring tiles)\n";
    for (std::uint32_t y = 0; y < mesh_y; ++y) {
        out += "  o";
        for (std::uint32_t x = 0; x + 1 < mesh_x; ++x) {
            const std::uint64_t h = link(x, y, 0) + link(x + 1, y, 1);
            out += detail::formatMessage("-%c%8llu%c-o",
                                         heatShade(h, max_value),
                                         (unsigned long long)h,
                                         heatShade(h, max_value));
        }
        out += "\n";
        if (y + 1 == mesh_y)
            break;
        out += "  ";
        for (std::uint32_t x = 0; x < mesh_x; ++x) {
            const std::uint64_t v = link(x, y, 3) + link(x, y + 1, 2);
            out += detail::formatMessage("%c%8llu%c ",
                                         heatShade(v, max_value),
                                         (unsigned long long)v,
                                         heatShade(v, max_value));
        }
        out += "\n";
    }
    return out;
}

std::string
renderTenantBankHeatmaps(const SpatialSnapshot &snap)
{
    std::string out;
    for (std::size_t t = 0; t < snap.tenantBankAccesses.size(); ++t) {
        const std::string label =
            t < snap.tenantNames.size()
                ? snap.tenantNames[t]
                : detail::formatMessage("tenant %zu", t);
        out += renderBankHeatmap("L3 accesses [" + label + "]",
                                 snap.tenantBankAccesses[t],
                                 snap.bankTile, snap.meshX, snap.meshY);
    }
    return out;
}

} // namespace affalloc::obs
