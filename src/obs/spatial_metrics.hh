/**
 * @file
 * Spatial metrics registry: per-bank and per-link counters that
 * attribute the machine-global sim::Stats scalars to *where* on the
 * mesh the events happened. The whole thesis of affinity alloc is
 * spatial (Eq. 4 trades affinity against per-bank load), so a
 * placement regression that leaves aggregate cycles unchanged is
 * invisible without this lens.
 *
 * Recording is observe-only: the registry duplicates counts that the
 * timing model already charges and never feeds anything back, so
 * enabling it is provably digest-neutral (the obs test suite asserts
 * identical determinism digests with metrics on and off). When no
 * observer is attached the charge points reduce to one predictable
 * null-pointer test.
 */

#ifndef AFFALLOC_OBS_SPATIAL_METRICS_HH
#define AFFALLOC_OBS_SPATIAL_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace affalloc::obs
{

/**
 * One epoch's scalar observation (bounded history: a handful of
 * scalars per epoch, not per-bank vectors — the per-bank occupancy
 * series already lives in sim::Timeline).
 */
struct EpochMetrics
{
    /** Simulated cycle at which the epoch ended. */
    Cycles endCycle = 0;
    /** Busiest bank's occupancy this epoch (queue-depth proxy). */
    double maxBankBusy = 0.0;
    /** Flits on the busiest link this epoch. */
    std::uint64_t maxLinkFlits = 0;
    /** Flits injected this epoch. */
    std::uint64_t epochFlits = 0;
};

/**
 * Immutable copy of the spatial counters harvested at the end of a
 * run. Cheap to copy (a few vectors of numBanks / 4*numTiles length),
 * carried inside workloads::RunResult so reports and heatmaps outlive
 * the machine.
 */
struct SpatialSnapshot
{
    /** Mesh geometry (tiles are row-major y*meshX+x). */
    std::uint32_t meshX = 0;
    std::uint32_t meshY = 0;
    /** Bank id -> tile id under the run's numbering scheme. */
    std::vector<TileId> bankTile;

    // ------------------------------------------------ per-bank counters
    /** L3 accesses served at each bank (sum == Stats::l3Accesses). */
    std::vector<std::uint64_t> bankAccesses;
    /** L3 misses at each bank (sum == Stats::l3Misses). */
    std::vector<std::uint64_t> bankMisses;
    /** Remote atomics performed at each bank (sum == atomicOps). */
    std::vector<std::uint64_t> bankAtomics;
    /** Near-stream ops at each bank's SE (sum == Stats::seOps). */
    std::vector<std::uint64_t> bankSeOps;
    /** Atomic-stream activations noted per bank (stream occupancy). */
    std::vector<std::uint64_t> bankStreamNotes;
    /** Accumulated per-epoch busy cycles per bank (queue depth). */
    std::vector<double> bankBusyCycles;

    // ------------------------------------------------ per-link counters
    /**
     * Flit-hops per directed link over the whole run. Link ids follow
     * noc::Mesh::linkOf: link = tile*4 + direction with direction
     * 0=east 1=west 2=north 3=south; edge slots stay zero.
     */
    std::vector<std::uint64_t> linkFlits;

    /** Per-epoch scalar history. */
    std::vector<EpochMetrics> epochs;

    // ---------------------------------------------- per-tenant overlays
    /** Tenant labels, index == tenant id (empty: single-tenant run). */
    std::vector<std::string> tenantNames;
    /**
     * L3 accesses per (tenant, bank): who generated the pressure at
     * each bank. Summing over tenants reproduces bankAccesses for the
     * charge points made while a tenant held the machine.
     */
    std::vector<std::vector<std::uint64_t>> tenantBankAccesses;

    /** Whether the snapshot holds any data. */
    bool empty() const { return bankAccesses.empty(); }
    /** Sum of one per-bank counter (conservation checks). */
    static std::uint64_t sum(const std::vector<std::uint64_t> &v);
};

/**
 * The live registry a machine records into. All methods are O(1)
 * increments; the machine only calls them through a nullable pointer,
 * so a run without observability never executes them.
 */
class SpatialMetrics
{
  public:
    /** Size the counters for a machine (called once on attach). */
    void init(std::uint32_t mesh_x, std::uint32_t mesh_y,
              std::vector<TileId> bank_tile, std::size_t num_links);

    // --------------------------------------------------- charge points
    /** One L3 access served at @p bank (hit or miss). */
    void
    bankAccess(BankId bank, bool hit)
    {
        snap_.bankAccesses[bank] += 1;
        if (!hit)
            snap_.bankMisses[bank] += 1;
        if (!snap_.tenantBankAccesses.empty())
            snap_.tenantBankAccesses[currentTenant_][bank] += 1;
    }

    /** One remote atomic RMW performed at @p bank. */
    void bankAtomic(BankId bank) { snap_.bankAtomics[bank] += 1; }

    /** @p ops near-stream scalar ops executed at @p bank's SE. */
    void bankSeOps(BankId bank, std::uint64_t ops)
    {
        snap_.bankSeOps[bank] += ops;
    }

    /** One atomic-stream activation noted at @p bank. */
    void bankStreamNote(BankId bank) { snap_.bankStreamNotes[bank] += 1; }

    /**
     * Epoch-boundary snapshot: accumulates per-bank busy cycles and
     * appends one EpochMetrics scalar record.
     */
    void endEpoch(Cycles end_cycle, const std::vector<double> &bank_busy,
                  std::uint64_t max_link_flits, std::uint64_t epoch_flits);

    /**
     * Record the whole-run per-link flit totals (copied once from the
     * network's lifetime counters at harvest; zero hot-path cost).
     */
    void setLinkFlits(const std::vector<std::uint64_t> &lifetime,
                      std::size_t num_route_links);

    /**
     * Declare the co-run tenants (index == tenant id) and allocate
     * the per-tenant bank overlay. Call after init(); a run that
     * never calls this records no tenant overlay.
     */
    void setTenants(std::vector<std::string> names);

    /** Attribute subsequent charges to @p tenant (scheduler grant). */
    void setCurrentTenant(std::uint32_t tenant)
    {
        currentTenant_ = tenant;
    }

    /** The collected counters (harvested into RunResult). */
    const SpatialSnapshot &snapshot() const { return snap_; }

  private:
    SpatialSnapshot snap_;
    std::uint32_t currentTenant_ = 0;
};

} // namespace affalloc::obs

#endif // AFFALLOC_OBS_SPATIAL_METRICS_HH
