/**
 * @file
 * Placement-decision explain log: one line per AffinityAllocator
 * bank-selection decision, recording the Eq. 4 score decomposition
 * (affinity term, load term) of the chosen bank and the runner-up so
 * a placement regression can be traced to the decision that made it.
 *
 * Observe-only and digest-neutral: the allocator hands the explainer
 * data it already computed; scoring never changes. Lines are written
 * eagerly (memory stays O(1)) and any I/O failure is a SIM_FATAL
 * naming the path.
 */

#ifndef AFFALLOC_OBS_PLACEMENT_EXPLAIN_HH
#define AFFALLOC_OBS_PLACEMENT_EXPLAIN_HH

#include <cstdint>
#include <cstdio>
#include <string>

#include "sim/types.hh"

namespace affalloc::obs
{

/** One bank-selection decision, as scored by Eq. 4. */
struct PlacementDecision
{
    /** Policy that made the call ("hybrid", "minhop", "rnd", "lnr"). */
    const char *policy = "?";
    /** Affinity addresses that survived resolution to banks. */
    std::uint32_t numAffinity = 0;
    /** The chosen bank. */
    BankId chosen = invalidBank;
    /** Average hops from the chosen bank to the affinity banks. */
    double chosenAffinity = 0.0;
    /** Load-balance term H * (load/avg_load - 1) of the chosen bank. */
    double chosenLoad = 0.0;
    /** Total Eq. 4 score of the chosen bank. */
    double chosenScore = 0.0;
    /** Second-best bank (invalidBank when the policy has no scores). */
    BankId runnerUp = invalidBank;
    /** Runner-up's total score. */
    double runnerUpScore = 0.0;
};

/** Eager line-per-decision writer. */
class PlacementExplainer
{
  public:
    /** Open @p path for writing; SIM_FATAL if it cannot be created. */
    explicit PlacementExplainer(const std::string &path);
    ~PlacementExplainer();

    PlacementExplainer(const PlacementExplainer &) = delete;
    PlacementExplainer &operator=(const PlacementExplainer &) = delete;

    /** Append one decision line. */
    void record(const PlacementDecision &d);

    /** Flush and close; idempotent; SIM_FATAL on write failure. */
    void close();

    /** Decisions recorded so far (tests). */
    std::uint64_t numDecisions() const { return decisions_; }

  private:
    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint64_t decisions_ = 0;
};

} // namespace affalloc::obs

#endif // AFFALLOC_OBS_PLACEMENT_EXPLAIN_HH
