/**
 * @file
 * The observability aggregate a run attaches to its machine. Holds
 * whichever of the three instruments the ObsConfig enabled:
 *
 *   - SpatialMetrics     per-bank / per-link counters
 *   - ChromeTracer       stream-lifecycle Chrome trace JSON
 *   - PlacementExplainer Eq. 4 decision log
 *
 * Like SimCheck, everything is opt-in: a default ObsConfig constructs
 * nothing and the machine's observer pointer stays null, so the
 * simulation hot paths pay one never-taken branch. Enabling any
 * instrument is digest-neutral — instruments only read what the
 * timing model already computed.
 */

#ifndef AFFALLOC_OBS_OBSERVER_HH
#define AFFALLOC_OBS_OBSERVER_HH

#include <memory>
#include <string>

#include "obs/chrome_trace.hh"
#include "obs/placement_explain.hh"
#include "obs/spatial_metrics.hh"

namespace affalloc::obs
{

/** What to observe and where to write it (part of RunConfig). */
struct ObsConfig
{
    /** Collect per-bank / per-link spatial metrics. */
    bool metrics = false;
    /** Non-empty: write Chrome trace_event JSON to this path. */
    std::string tracePath;
    /** Non-empty: write the placement-explain log to this path. */
    std::string explainPath;

    /** Whether anything at all is enabled. */
    bool
    any() const
    {
        return metrics || !tracePath.empty() || !explainPath.empty();
    }
};

/** Owns the enabled instruments for one run. */
class Observer
{
  public:
    /** Construct the instruments @p cfg enables (opens output files). */
    explicit Observer(const ObsConfig &cfg)
    {
        if (cfg.metrics)
            metrics_ = std::make_unique<SpatialMetrics>();
        if (!cfg.tracePath.empty())
            tracer_ = std::make_unique<ChromeTracer>(cfg.tracePath);
        if (!cfg.explainPath.empty())
            explainer_ =
                std::make_unique<PlacementExplainer>(cfg.explainPath);
    }

    /** The metrics registry, or nullptr when disabled. */
    SpatialMetrics *metrics() { return metrics_.get(); }
    /** The tracer, or nullptr when disabled. */
    ChromeTracer *tracer() { return tracer_.get(); }
    /** The explainer, or nullptr when disabled. */
    PlacementExplainer *explainer() { return explainer_.get(); }

    /** Flush and close every file-backed instrument (SIM_FATAL on
     *  I/O errors, unlike silent destruction). */
    void
    closeOutputs()
    {
        if (tracer_)
            tracer_->close();
        if (explainer_)
            explainer_->close();
    }

  private:
    std::unique_ptr<SpatialMetrics> metrics_;
    std::unique_ptr<ChromeTracer> tracer_;
    std::unique_ptr<PlacementExplainer> explainer_;
};

} // namespace affalloc::obs

#endif // AFFALLOC_OBS_OBSERVER_HH
