/**
 * @file
 * Chaos engine: seeded fault-space fuzzing over the open-system
 * serving stack, with deterministic repro shrinking.
 *
 * The fuzzer generates randomized-but-deterministic campaigns — a
 * serving configuration (workload mix, arrival schedule, tenant
 * slots) plus a sim::TimedFault schedule with bank-kill clusters
 * (including spare-of-spare shapes), spatially-correlated link
 * degradations, and NACK storms — and runs each under full SimCheck
 * with the livelock watchdog as the oracle. Any oracle violation is
 * automatically shrunk: delta-debugging over the fault events first,
 * then over the workload size and horizon, down to a minimal
 * reproducer emitted as a self-contained JSON bundle replayable via
 * `affalloc_cli chaos --replay`.
 *
 * Everything is deterministic from FuzzOptions::seed: campaign i is
 * drawn from Rng substream (seed, i), oracle runs go through
 * harness::runSweep (results in sweep order at any job count), and
 * shrinking never consults wall-clock or host state — so the same
 * seed produces byte-identical campaign sets, verdicts, and shrunk
 * reproducers regardless of --jobs.
 */

#ifndef AFFALLOC_CHAOS_CHAOS_HH
#define AFFALLOC_CHAOS_CHAOS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/serve.hh"

namespace affalloc::chaos
{

/**
 * The oracle's judgement of one serving run. `signature` is the
 * normalized failure fingerprint (first line, volatile numbers
 * collapsed — see normalizeSignature); `klass` is the coarser
 * failure class used as the shrink predicate, stable across timing
 * perturbations that renumber banks/cycles inside the message.
 */
struct Verdict
{
    bool failed = false;
    /** "audit" | "livelock" | "panic" | "fatal" | "invalid" | "". */
    std::string errorType;
    /** Normalized fingerprint; recorded in bundles, exact on replay. */
    std::string signature;
    /** Coarse failure class (errorType + check identity). */
    std::string klass;
};

/** One generated (or shrunk, or replayed) campaign. */
struct Campaign
{
    /** Position in the fuzzer's campaign matrix. */
    std::uint32_t index = 0;
    /** The full serving configuration, fault schedule included. */
    serve::ServeOptions opts;
};

/** Fuzzing run configuration. */
struct FuzzOptions
{
    /** Root seed; campaign i draws from substream (seed, i). */
    std::uint64_t seed = 1;
    /** Campaigns in the matrix. */
    std::uint32_t campaigns = 8;
    /** Worker threads for the oracle/shrink sweeps (>= 1). */
    unsigned jobs = 1;
    /** CI-scale workload inputs (strongly recommended). */
    bool quick = true;
    /**
     * Seed campaign 0 with the directed known-bad spare-of-spare
     * campaign (plantedSpareKeyingCampaign) and run every generated
     * campaign with AllocatorOptions::legacySpareKeying — the
     * historical free-list keying defect — so the fuzzer finds, and
     * the shrinker minimizes, a known-bad configuration. Used by
     * regression tests and for exercising the repro pipeline.
     */
    bool plantSpareKeying = false;
    /** Livelock watchdog threshold; 0 keeps the env/config default. */
    std::uint32_t watchdogStallEpochs = 0;
    /** Directory for repro bundles of failures; empty = don't write. */
    std::string bundleDir;
};

/** Outcome of one campaign, shrink artifacts included on failure. */
struct CampaignResult
{
    std::uint32_t index = 0;
    /** formatFaultSchedule of the original campaign. */
    std::string schedule;
    Verdict verdict;

    // Populated only when verdict.failed:
    Campaign shrunk;
    Verdict shrunkVerdict;
    /** Oracle invocations the shrinker spent. */
    std::uint32_t shrinkOracleRuns = 0;
    /** Bundle file written for this failure (empty if none). */
    std::string bundlePath;
};

/** Aggregate outcome of a fuzzing run. */
struct FuzzReport
{
    std::uint32_t campaigns = 0;
    std::uint32_t failures = 0;
    /** Per-campaign results in matrix (index) order. */
    std::vector<CampaignResult> results;
    /** Fingerprint of the whole run (campaigns + verdicts + shrinks). */
    std::uint64_t digest = 0;
};

/** Deterministically generate campaign @p index of the matrix. */
Campaign generateCampaign(const FuzzOptions &f, std::uint32_t index);

/**
 * Run one campaign under the SimCheck/watchdog oracle. Catches
 * AuditError, LivelockError, PanicError and FatalError into a failed
 * Verdict; a run whose completed requests fail workload validation is
 * also a failure ("invalid"). Never throws on oracle violations.
 */
Verdict runOracle(const serve::ServeOptions &opts);

/**
 * Minimize a failing campaign: ddmin over the fault events (removing
 * complements at doubling granularity, then single events), then
 * binary shrink of numRequests and maxCycles. The predicate is
 * "still fails with the same Verdict::klass". Returns the minimized
 * campaign; @p oracle_runs (optional) counts predicate evaluations.
 */
Campaign shrinkCampaign(const Campaign &failing, const Verdict &verdict,
                        std::uint32_t *oracle_runs = nullptr);

/** Run the whole matrix: generate, judge, shrink failures, bundle. */
FuzzReport runFuzz(const FuzzOptions &f);

/**
 * The known-bad spare-of-spare campaign: legacy free-list keying plus
 * a clustered kill schedule (a bank and its next-in-order spare) with
 * decoy link/NACK events, under a pointer-chasing mix that recycles
 * irregular slots. Fails the free-list audit pre-hardening; the
 * shrinker reduces it to the two kills.
 */
Campaign plantedSpareKeyingCampaign(bool quick = true);

/**
 * Normalize a failure message into a stable fingerprint: first line
 * only, every numeric token of >= 5 hex/decimal digits (addresses,
 * cycle counts, host pointers) collapsed to '#', truncated to 240
 * chars. Short numbers (bank ids, pool indices) are preserved.
 */
std::string normalizeSignature(const std::string &raw);

// ------------------------------------------------------ repro bundles

/**
 * Serialize a failing (usually shrunk) campaign and its verdict as a
 * self-contained flat-JSON repro bundle.
 */
std::string formatBundle(const Campaign &c, const Verdict &v);

/**
 * Parse a bundle produced by formatBundle. Throws FatalError with a
 * parse diagnostic on malformed input. @p expected (optional)
 * receives the recorded verdict.
 */
Campaign parseBundle(const std::string &json, Verdict *expected = nullptr);

/** Write a bundle file; throws FatalError on I/O failure. */
void writeBundleFile(const std::string &path, const Campaign &c,
                     const Verdict &v);

/** Outcome of replaying a bundle against the current build. */
struct ReplayResult
{
    Campaign campaign;
    /** Verdict recorded in the bundle. */
    Verdict expected;
    /** Verdict from re-running the campaign now. */
    Verdict got;
    /** got.failed and signatures match. */
    bool reproduced = false;
};

/** Load a bundle file and re-run it under the oracle. */
ReplayResult replayBundleFile(const std::string &path);

} // namespace affalloc::chaos

#endif // AFFALLOC_CHAOS_CHAOS_HH
