/**
 * @file
 * Campaign generation and the fuzz loop. See chaos.hh for the
 * determinism contract; the one rule that matters throughout this
 * file is that every random draw comes from an Rng seeded by
 * (FuzzOptions::seed, campaign index) and nothing consults host
 * state, so campaign i is the same bytes on every machine.
 */

#include <algorithm>
#include <cctype>
#include <functional>

#include "chaos/chaos.hh"
#include "harness/sweep.hh"
#include "sim/log.hh"
#include "sim/prof.hh"
#include "sim/rng.hh"
#include "sim/simcheck.hh"

namespace affalloc::chaos
{

namespace
{

// Substream bases for the per-campaign seeds. Offsets keep the three
// derived streams (campaign draws, serve arrivals, allocator) apart
// for any campaign count below 2^24.
constexpr std::uint64_t campaignStreamBase = 0x0c4a05000ULL;
constexpr std::uint64_t serveSeedStreamBase = 0x05e47e000ULL;
constexpr std::uint64_t allocSeedStreamBase = 0x0a110c000ULL;

/** Cheap workloads the fuzzer mixes; all exercise the allocator's
 *  irregular or affine paths at quick scale in well under a second. */
const std::vector<std::string> &
mixPool()
{
    static const std::vector<std::string> pool = {
        "vecadd",    "link_list",  "hash_join",
        "bin_tree",  "pathfinder", "churn_list"};
    return pool;
}

bool
hexish(char c)
{
    return std::isxdigit(static_cast<unsigned char>(c)) || c == 'x' ||
           c == 'X';
}

/**
 * First line of @p raw with every alphanumeric token that is made of
 * hex/decimal digits, contains at least one digit, and is at least
 * @p min_len long collapsed to '#'. min_len 5 keeps bank/pool ids
 * readable while erasing addresses, cycle counts and host pointers;
 * min_len 1 erases every number (the coarse shrink-predicate class).
 */
std::string
collapseNumbers(const std::string &raw, std::size_t min_len)
{
    const std::string line = raw.substr(0, raw.find('\n'));
    std::string out;
    out.reserve(line.size());
    std::size_t i = 0;
    while (i < line.size()) {
        const unsigned char uc = static_cast<unsigned char>(line[i]);
        if (std::isalnum(uc) || line[i] == '_') {
            std::size_t j = i;
            bool has_digit = false;
            bool all_hex = true;
            while (j < line.size()) {
                const unsigned char jc =
                    static_cast<unsigned char>(line[j]);
                if (!std::isalnum(jc) && line[j] != '_')
                    break;
                has_digit |= std::isdigit(jc) != 0;
                all_hex &= hexish(line[j]);
                ++j;
            }
            if (has_digit && all_hex && j - i >= min_len)
                out += '#';
            else
                out.append(line, i, j - i);
            i = j;
        } else {
            out += line[i++];
        }
    }
    if (out.size() > 240)
        out.resize(240);
    return out;
}

} // namespace

std::string
normalizeSignature(const std::string &raw)
{
    return collapseNumbers(raw, 5);
}

Verdict
runOracle(const serve::ServeOptions &opts)
{
    Verdict v;
    try {
        const serve::ServeReport report = serve::runServe(opts);
        if (!report.allValid) {
            v.failed = true;
            v.errorType = "invalid";
            v.signature = "a completed request failed workload "
                          "self-validation";
            v.klass = "invalid";
        }
    } catch (const simcheck::AuditError &e) {
        v.failed = true;
        v.errorType = "audit";
        if (!e.report().empty()) {
            const simcheck::Violation &viol = e.report().front();
            v.signature = viol.component + "/" + viol.check + ": " +
                          normalizeSignature(viol.message);
            v.klass = "audit:" + viol.component + "/" + viol.check;
        } else {
            v.signature = normalizeSignature(e.what());
            v.klass = "audit";
        }
    } catch (const simcheck::LivelockError &e) {
        v.failed = true;
        v.errorType = "livelock";
        v.signature = normalizeSignature(e.what());
        v.klass = "livelock";
    } catch (const PanicError &e) {
        v.failed = true;
        v.errorType = "panic";
        v.signature = normalizeSignature(e.what());
        v.klass = "panic:" + collapseNumbers(e.what(), 1);
    } catch (const FatalError &e) {
        v.failed = true;
        v.errorType = "fatal";
        v.signature = normalizeSignature(e.what());
        v.klass = "fatal:" + collapseNumbers(e.what(), 1);
    }
    return v;
}

Campaign
generateCampaign(const FuzzOptions &f, std::uint32_t index)
{
    Rng rng(Rng::substreamSeed(f.seed, campaignStreamBase + index));
    Campaign c;
    c.index = index;
    serve::ServeOptions &o = c.opts;
    o.quick = f.quick;
    o.seed = Rng::substreamSeed(f.seed, serveSeedStreamBase + index);
    o.allocOpts.seed =
        Rng::substreamSeed(f.seed, allocSeedStreamBase + index);
    o.allocOpts.legacySpareKeying = f.plantSpareKeying;
    o.machine.simcheck.audit = true;
    o.machine.simcheck.auditPeriodEpochs = 16;
    if (f.watchdogStallEpochs)
        o.machine.simcheck.watchdogStallEpochs = f.watchdogStallEpochs;

    const auto &pool = mixPool();
    const std::size_t numClasses = 1 + rng.below(2);
    o.classes.clear();
    for (std::size_t k = 0; k < numClasses; ++k) {
        serve::ServeClass cls;
        cls.workload = pool[rng.below(pool.size())];
        cls.weight = 1.0 + static_cast<double>(rng.below(3));
        cls.maxRetries = 1 + static_cast<std::uint32_t>(rng.below(4));
        cls.retryBackoff = 20'000 + rng.below(80'000);
        cls.giveUpAfter = 8'000'000 + rng.below(24'000'000);
        o.classes.push_back(cls);
    }
    o.numRequests = 6 + static_cast<std::uint32_t>(rng.below(10));
    o.arrivalsPerMcycle = 1.0 + rng.uniform() * 7.0;
    o.burstiness = rng.chance(0.5) ? rng.uniform() * 0.8 : 0.0;
    o.slots = 1 + static_cast<std::uint32_t>(rng.below(3));
    o.queueCapacity = 2 + static_cast<std::uint32_t>(rng.below(6));
    o.maxCycles = 2'000'000'000ULL;
    o.reaffinity = !rng.chance(0.1);

    // Fault bursts: clustered in time (one burst window) and mesh
    // space (one anchor tile per burst). Kills walk the anchor bank
    // and its next-in-order neighbours — the default spare chain — so
    // spare-of-spare shapes occur organically.
    const std::uint32_t meshX = o.machine.meshX;
    const std::uint32_t meshY = o.machine.meshY;
    const std::uint32_t numBanks = o.machine.numBanks();
    const std::uint32_t maxKills = numBanks / 2;
    std::uint32_t kills = 0;
    std::vector<sim::TimedFault> sched;
    const std::uint32_t numBursts =
        1 + static_cast<std::uint32_t>(rng.below(3));
    for (std::uint32_t b = 0; b < numBursts; ++b) {
        const Cycles base = 100'000 + rng.below(40'000'000);
        const std::uint32_t ax =
            static_cast<std::uint32_t>(rng.below(meshX));
        const std::uint32_t ay =
            static_cast<std::uint32_t>(rng.below(meshY));
        const BankId anchor = ay * meshX + ax;
        const std::uint32_t events =
            1 + static_cast<std::uint32_t>(rng.below(4));
        for (std::uint32_t e = 0; e < events; ++e) {
            sim::TimedFault ev;
            ev.atCycle = base + rng.below(250'000);
            std::uint64_t roll = rng.below(10);
            if (roll < 5 && kills >= maxKills)
                roll = 8; // kill budget spent: degrade instead
            if (roll >= 5 && roll < 8 && (meshX < 3 || meshY < 3))
                roll = 8; // no interior tile: NACK instead
            if (roll < 5) {
                ev.kind = sim::FaultKind::killBank;
                ev.target = (anchor + static_cast<std::uint32_t>(
                                          rng.below(3))) %
                            numBanks;
                ++kills;
            } else if (roll < 8) {
                // Correlated degradation: a link of an interior tile
                // adjacent to the anchor (interior tiles have all
                // four directions real).
                const auto clampi = [](std::int64_t v, std::int64_t lo,
                                       std::int64_t hi) {
                    return std::max(lo, std::min(hi, v));
                };
                const std::uint32_t tx = static_cast<std::uint32_t>(
                    clampi(static_cast<std::int64_t>(ax) +
                               static_cast<std::int64_t>(rng.below(3)) -
                               1,
                           1, static_cast<std::int64_t>(meshX) - 2));
                const std::uint32_t ty = static_cast<std::uint32_t>(
                    clampi(static_cast<std::int64_t>(ay) +
                               static_cast<std::int64_t>(rng.below(3)) -
                               1,
                           1, static_cast<std::int64_t>(meshY) - 2));
                ev.kind = sim::FaultKind::degradeLink;
                ev.target = (ty * meshX + tx) * 4 +
                            static_cast<std::uint32_t>(rng.below(4));
                ev.factor = 1u << (1 + rng.below(10)); // 2..1024
            } else {
                // NACK storm: a start/stop pair.
                ev.kind = sim::FaultKind::nackStorm;
                ev.target =
                    100 + static_cast<std::uint32_t>(rng.below(801));
                sched.push_back(ev);
                ev.target = 0;
                ev.atCycle += 200'000 + rng.below(2'000'000);
            }
            sched.push_back(ev);
        }
    }
    std::stable_sort(sched.begin(), sched.end(),
                     [](const sim::TimedFault &a,
                        const sim::TimedFault &b) {
                         return a.atCycle < b.atCycle;
                     });
    o.faultSchedule = std::move(sched);
    return c;
}

Campaign
plantedSpareKeyingCampaign(bool quick)
{
    Campaign c;
    c.index = 0;
    serve::ServeOptions &o = c.opts;
    o.quick = quick;
    o.seed = 1337;
    o.allocOpts.seed = 1338;
    o.allocOpts.legacySpareKeying = true;
    o.machine.simcheck.audit = true;
    o.machine.simcheck.auditPeriodEpochs = 8;
    serve::ServeClass churn;
    churn.workload = "churn_list";
    churn.weight = 1.0;
    o.classes = {churn};
    o.numRequests = 20;
    // Arrivals far denser than the service rate keep a backlog
    // queued, so the machine is continuously busy — faults land
    // mid-request instead of being idle-skipped to a request
    // boundary where no tenant holds dead-bank slots.
    o.arrivalsPerMcycle = 50.0;
    o.slots = 2;
    o.queueCapacity = 24;
    // Single-epoch quanta: the fault hook runs between every epoch,
    // so the kill pair below lands inside one request's churn rounds
    // (a whole quick request fits in the default 8-epoch quantum,
    // which would quantize every fault to a request boundary).
    o.quantumEpochs = 1;
    o.maxCycles = 2'000'000'000ULL;
    o.reaffinity = true;
    // A tight kill pair mid-churn: the first kill makes churn_list
    // free dead-bank slots keyed at the victim's redirect, the second
    // kills that redirect target (spare-of-spare) and re-derives the
    // survivors' redirects, stranding the keyed slots — buried in
    // decoy link degradations and a NACK storm the shrinker has to
    // peel away.
    o.faultSchedule = sim::parseFaultSchedule(
        "link:20@150000x4,nack:400@200000,bank:27@250000,"
        "bank:0@270000,nack:0@290000,link:74@300000x8,"
        "link:75@320000x2");
    return c;
}

FuzzReport
runFuzz(const FuzzOptions &f)
{
    if (f.campaigns == 0)
        SIM_FATAL("chaos", "a fuzz run needs >= 1 campaign");
    const unsigned jobs = f.jobs ? f.jobs : 1;

    std::vector<Campaign> camps;
    camps.reserve(f.campaigns);
    for (std::uint32_t i = 0; i < f.campaigns; ++i)
        camps.push_back(generateCampaign(f, i));
    if (f.plantSpareKeying) {
        // Seed the matrix with the directed known-bad campaign so a
        // planted run always exercises the full find -> shrink ->
        // bundle pipeline, not just legacy keying on random inputs.
        camps[0] = plantedSpareKeyingCampaign(f.quick);
        camps[0].index = 0;
    }

    // Phase 1: judge every campaign. runSweep delivers verdicts in
    // campaign order at any job count.
    prof::progressSetGoal(f.campaigns);
    std::vector<std::function<Verdict()>> points;
    points.reserve(camps.size());
    for (const Campaign &c : camps) {
        points.push_back([&c] {
            Verdict v = runOracle(c.opts);
            prof::progressAdvance(1);
            return v;
        });
    }
    const std::vector<Verdict> verdicts =
        harness::runSweep<Verdict>(jobs, points);

    FuzzReport rep;
    rep.campaigns = f.campaigns;
    rep.results.resize(camps.size());
    std::vector<std::size_t> failing;
    for (std::size_t i = 0; i < camps.size(); ++i) {
        CampaignResult &r = rep.results[i];
        r.index = camps[i].index;
        r.schedule = sim::formatFaultSchedule(camps[i].opts.faultSchedule);
        r.verdict = verdicts[i];
        if (r.verdict.failed)
            failing.push_back(i);
    }
    rep.failures = static_cast<std::uint32_t>(failing.size());

    // Phase 2: shrink the failures. Each shrink is sequential and
    // self-contained, so the failures shrink in parallel without
    // affecting each other's outcome.
    struct Shrunk
    {
        Campaign campaign;
        Verdict verdict;
        std::uint32_t runs = 0;
    };
    std::vector<std::function<Shrunk()>> shrinkPoints;
    shrinkPoints.reserve(failing.size());
    for (const std::size_t i : failing) {
        const Campaign &camp = camps[i];
        const Verdict &v = verdicts[i];
        shrinkPoints.push_back([&camp, &v] {
            Shrunk s;
            s.campaign = shrinkCampaign(camp, v, &s.runs);
            s.verdict = runOracle(s.campaign.opts);
            return s;
        });
    }
    const std::vector<Shrunk> shrunk =
        harness::runSweep<Shrunk>(jobs, shrinkPoints);
    for (std::size_t k = 0; k < failing.size(); ++k) {
        CampaignResult &r = rep.results[failing[k]];
        r.shrunk = shrunk[k].campaign;
        r.shrunkVerdict = shrunk[k].verdict;
        r.shrinkOracleRuns = shrunk[k].runs;
        if (!f.bundleDir.empty()) {
            r.bundlePath = f.bundleDir + "/repro-" +
                           std::to_string(r.index) + ".json";
            writeBundleFile(r.bundlePath, r.shrunk, r.shrunkVerdict);
        }
    }

    // Fingerprint the whole run so CI can diff two invocations.
    std::uint64_t d = simcheck::Digest::fnvBasis;
    const auto fold = [&d](const std::string &s) {
        d = simcheck::Digest::fnv1a(s.data(), s.size(), d);
    };
    for (const CampaignResult &r : rep.results) {
        fold(std::to_string(r.index));
        fold(r.schedule);
        fold(r.verdict.failed ? r.verdict.signature : "ok");
        if (r.verdict.failed) {
            fold(sim::formatFaultSchedule(r.shrunk.opts.faultSchedule));
            fold(r.shrunkVerdict.signature);
        }
    }
    rep.digest = d;
    return rep;
}

} // namespace affalloc::chaos
