/**
 * @file
 * Repro minimization. Two stages, both driven by the predicate "the
 * candidate still fails with the same coarse failure class":
 *
 *  1. ddmin over the fault-event list — remove complements at a
 *     doubling granularity, then a greedy single-event pass to a
 *     fixpoint. Events are the usual culprit, so they shrink first.
 *  2. scalar shrink — halve numRequests, then halve the horizon down
 *     to just past the last surviving event.
 *
 * The predicate matches on Verdict::klass (not the full signature)
 * because removing an event perturbs timing, which can renumber the
 * banks and cycles embedded in the failure message without changing
 * the defect. Oracle results are memoized on the candidate's
 * (schedule, requests, horizon) key, so re-visited candidates are
 * free and the run count stays deterministic.
 */

#include <algorithm>
#include <map>

#include "chaos/chaos.hh"
#include "sim/log.hh"

namespace affalloc::chaos
{

namespace
{

/** Memoized "does this candidate still fail the same way" oracle. */
class Predicate
{
  public:
    Predicate(std::string klass) : klass_(std::move(klass)) {}

    bool
    stillFails(const serve::ServeOptions &o)
    {
        const std::string key =
            sim::formatFaultSchedule(o.faultSchedule) + "|" +
            std::to_string(o.numRequests) + "|" +
            std::to_string(o.maxCycles);
        const auto it = cache_.find(key);
        if (it != cache_.end())
            return it->second;
        ++runs_;
        const Verdict v = runOracle(o);
        const bool same = v.failed && v.klass == klass_;
        cache_.emplace(key, same);
        return same;
    }

    std::uint32_t runs() const { return runs_; }

  private:
    std::string klass_;
    std::map<std::string, bool> cache_;
    std::uint32_t runs_ = 0;
};

} // namespace

Campaign
shrinkCampaign(const Campaign &failing, const Verdict &verdict,
               std::uint32_t *oracle_runs)
{
    if (!verdict.failed)
        SIM_FATAL("chaos", "shrinkCampaign on a passing campaign");
    Predicate pred(verdict.klass);
    Campaign best = failing;

    const auto withEvents =
        [&best](const std::vector<sim::TimedFault> &ev) {
            serve::ServeOptions o = best.opts;
            o.faultSchedule = ev;
            return o;
        };

    // Stage 1a: ddmin complement removal.
    std::vector<sim::TimedFault> events = failing.opts.faultSchedule;
    std::size_t n = 2;
    while (events.size() >= 2 && n <= events.size()) {
        bool reduced = false;
        const std::size_t chunk = (events.size() + n - 1) / n;
        for (std::size_t i = 0; i < n && i * chunk < events.size();
             ++i) {
            std::vector<sim::TimedFault> cand;
            cand.reserve(events.size());
            for (std::size_t j = 0; j < events.size(); ++j) {
                if (j < i * chunk || j >= (i + 1) * chunk)
                    cand.push_back(events[j]);
            }
            if (cand.size() < events.size() &&
                pred.stillFails(withEvents(cand))) {
                events = std::move(cand);
                n = std::max<std::size_t>(2, n - 1);
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (n >= events.size())
                break;
            n = std::min(events.size(), n * 2);
        }
    }

    // Stage 1b: greedy single-event removal to a fixpoint (catches
    // what the chunked pass misses; may shrink to an empty schedule
    // if the failure needs no faults at all).
    bool changed = true;
    while (changed && !events.empty()) {
        changed = false;
        for (std::size_t i = 0; i < events.size(); ++i) {
            std::vector<sim::TimedFault> cand = events;
            cand.erase(cand.begin() +
                       static_cast<std::ptrdiff_t>(i));
            if (pred.stillFails(withEvents(cand))) {
                events = std::move(cand);
                changed = true;
                break;
            }
        }
    }
    best.opts.faultSchedule = events;

    // Stage 2: scalar shrink — fewer requests, shorter horizon.
    while (best.opts.numRequests > 1) {
        serve::ServeOptions o = best.opts;
        o.numRequests = best.opts.numRequests / 2;
        if (!pred.stillFails(o))
            break;
        best.opts.numRequests = o.numRequests;
    }
    Cycles lastEvent = 0;
    for (const sim::TimedFault &ev : best.opts.faultSchedule)
        lastEvent = std::max(lastEvent, ev.atCycle);
    while (best.opts.maxCycles > 2'000'000 &&
           best.opts.maxCycles / 2 > lastEvent) {
        serve::ServeOptions o = best.opts;
        o.maxCycles = best.opts.maxCycles / 2;
        if (!pred.stillFails(o))
            break;
        best.opts.maxCycles = o.maxCycles;
    }

    if (oracle_runs)
        *oracle_runs = pred.runs();
    return best;
}

} // namespace affalloc::chaos
