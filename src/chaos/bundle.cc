/**
 * @file
 * Self-contained repro bundles. A bundle is one flat JSON object
 * holding everything needed to re-run a (shrunk) failing campaign on
 * any build: the serving configuration, the fault schedule in the
 * CLI's `bank:<id>@<cycle>,...` grammar, and the recorded verdict to
 * compare against. The writer and the hand-rolled reader here are
 * the only JSON code in the repo, so the format stays deliberately
 * minimal: string and integer/double values only, no nesting.
 *
 * The class list round-trips through an extended mix grammar
 * `wl:weight:maxRetries:retryBackoff:giveUpAfter`, comma-separated,
 * so client patience — which shapes whether a campaign sheds or
 * livelocks — replays exactly.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "chaos/chaos.hh"
#include "sim/log.hh"

namespace affalloc::chaos
{

namespace
{

constexpr int bundleVersion = 1;

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
jsonUnescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 >= s.size()) {
            out += s[i];
            continue;
        }
        ++i;
        switch (s[i]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: out += s[i];
        }
    }
    return out;
}

/** Position of the value after `"key":` (whitespace skipped), or npos. */
std::size_t
findKey(const std::string &json, const char *key)
{
    const std::string token = std::string("\"") + key + "\":";
    std::size_t at = json.find(token);
    if (at == std::string::npos)
        return std::string::npos;
    at += token.size();
    while (at < json.size() &&
           (json[at] == ' ' || json[at] == '\t' || json[at] == '\n'))
        ++at;
    return at;
}

std::string
getString(const std::string &json, const char *key)
{
    const std::size_t at = findKey(json, key);
    if (at == std::string::npos || at >= json.size() ||
        json[at] != '"')
        SIM_FATAL("chaos", "bundle is missing string key \"%s\"", key);
    std::string raw;
    for (std::size_t i = at + 1; i < json.size(); ++i) {
        if (json[i] == '\\' && i + 1 < json.size()) {
            raw += json[i];
            raw += json[i + 1];
            ++i;
        } else if (json[i] == '"') {
            return jsonUnescape(raw);
        } else {
            raw += json[i];
        }
    }
    SIM_FATAL("chaos", "bundle key \"%s\": unterminated string", key);
}

double
getDouble(const std::string &json, const char *key)
{
    const std::size_t at = findKey(json, key);
    if (at == std::string::npos)
        SIM_FATAL("chaos", "bundle is missing numeric key \"%s\"", key);
    char *end = nullptr;
    const double v = std::strtod(json.c_str() + at, &end);
    if (end == json.c_str() + at)
        SIM_FATAL("chaos", "bundle key \"%s\" is not a number", key);
    return v;
}

std::uint64_t
getU64(const std::string &json, const char *key)
{
    const std::size_t at = findKey(json, key);
    if (at == std::string::npos)
        SIM_FATAL("chaos", "bundle is missing numeric key \"%s\"", key);
    char *end = nullptr;
    const std::uint64_t v =
        std::strtoull(json.c_str() + at, &end, 10);
    if (end == json.c_str() + at)
        SIM_FATAL("chaos", "bundle key \"%s\" is not a number", key);
    return v;
}

/** %.17g: shortest form that round-trips an IEEE double. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
formatMix(const std::vector<serve::ServeClass> &classes)
{
    std::string s;
    for (const serve::ServeClass &c : classes) {
        if (!s.empty())
            s += ',';
        s += c.workload + ":" + fmtDouble(c.weight) + ":" +
             std::to_string(c.maxRetries) + ":" +
             std::to_string(c.retryBackoff) + ":" +
             std::to_string(c.giveUpAfter);
    }
    return s;
}

std::vector<serve::ServeClass>
parseMix(const std::string &spec)
{
    std::vector<serve::ServeClass> classes;
    std::istringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        std::istringstream fields(item);
        std::string wl, weight, retries, backoff, giveup;
        if (!std::getline(fields, wl, ':') ||
            !std::getline(fields, weight, ':') ||
            !std::getline(fields, retries, ':') ||
            !std::getline(fields, backoff, ':') ||
            !std::getline(fields, giveup, ':'))
            SIM_FATAL("chaos",
                      "bundle mix entry '%s' (want "
                      "wl:weight:retries:backoff:giveup)",
                      item.c_str());
        serve::ServeClass c;
        c.workload = wl;
        c.weight = std::strtod(weight.c_str(), nullptr);
        c.maxRetries =
            static_cast<std::uint32_t>(std::strtoul(retries.c_str(),
                                                    nullptr, 10));
        c.retryBackoff = std::strtoull(backoff.c_str(), nullptr, 10);
        c.giveUpAfter = std::strtoull(giveup.c_str(), nullptr, 10);
        classes.push_back(c);
    }
    return classes;
}

} // namespace

std::string
formatBundle(const Campaign &c, const Verdict &v)
{
    const serve::ServeOptions &o = c.opts;
    std::ostringstream os;
    os << "{\n";
    os << "  \"version\": " << bundleVersion << ",\n";
    os << "  \"index\": " << c.index << ",\n";
    os << "  \"mode\": " << static_cast<int>(o.mode) << ",\n";
    os << "  \"mesh_x\": " << o.machine.meshX << ",\n";
    os << "  \"mesh_y\": " << o.machine.meshY << ",\n";
    os << "  \"mix\": \"" << jsonEscape(formatMix(o.classes))
       << "\",\n";
    os << "  \"requests\": " << o.numRequests << ",\n";
    os << "  \"rate\": " << fmtDouble(o.arrivalsPerMcycle) << ",\n";
    os << "  \"burstiness\": " << fmtDouble(o.burstiness) << ",\n";
    os << "  \"slots\": " << o.slots << ",\n";
    os << "  \"queue\": " << o.queueCapacity << ",\n";
    os << "  \"quantum\": " << o.quantumEpochs << ",\n";
    os << "  \"max_cycles\": " << o.maxCycles << ",\n";
    os << "  \"serve_seed\": " << o.seed << ",\n";
    os << "  \"alloc_seed\": " << o.allocOpts.seed << ",\n";
    os << "  \"legacy_spare_keying\": "
       << (o.allocOpts.legacySpareKeying ? 1 : 0) << ",\n";
    os << "  \"quick\": " << (o.quick ? 1 : 0) << ",\n";
    os << "  \"reaffinity\": " << (o.reaffinity ? 1 : 0) << ",\n";
    os << "  \"audit\": " << (o.machine.simcheck.audit ? 1 : 0)
       << ",\n";
    os << "  \"audit_period\": " << o.machine.simcheck.auditPeriodEpochs
       << ",\n";
    os << "  \"watchdog\": " << o.machine.simcheck.watchdogStallEpochs
       << ",\n";
    os << "  \"schedule\": \""
       << jsonEscape(sim::formatFaultSchedule(o.faultSchedule))
       << "\",\n";
    os << "  \"error_type\": \"" << jsonEscape(v.errorType) << "\",\n";
    os << "  \"klass\": \"" << jsonEscape(v.klass) << "\",\n";
    os << "  \"signature\": \"" << jsonEscape(v.signature) << "\"\n";
    os << "}\n";
    return os.str();
}

Campaign
parseBundle(const std::string &json, Verdict *expected)
{
    const std::uint64_t version = getU64(json, "version");
    if (version != bundleVersion)
        SIM_FATAL("chaos", "bundle version %llu unsupported (want %d)",
                  static_cast<unsigned long long>(version),
                  bundleVersion);
    Campaign c;
    c.index = static_cast<std::uint32_t>(getU64(json, "index"));
    serve::ServeOptions &o = c.opts;
    o.mode = static_cast<ExecMode>(getU64(json, "mode"));
    o.machine.meshX =
        static_cast<std::uint32_t>(getU64(json, "mesh_x"));
    o.machine.meshY =
        static_cast<std::uint32_t>(getU64(json, "mesh_y"));
    o.classes = parseMix(getString(json, "mix"));
    o.numRequests =
        static_cast<std::uint32_t>(getU64(json, "requests"));
    o.arrivalsPerMcycle = getDouble(json, "rate");
    o.burstiness = getDouble(json, "burstiness");
    o.slots = static_cast<std::uint32_t>(getU64(json, "slots"));
    o.queueCapacity =
        static_cast<std::uint32_t>(getU64(json, "queue"));
    o.quantumEpochs =
        static_cast<std::uint32_t>(getU64(json, "quantum"));
    o.maxCycles = getU64(json, "max_cycles");
    o.seed = getU64(json, "serve_seed");
    o.allocOpts.seed = getU64(json, "alloc_seed");
    o.allocOpts.legacySpareKeying =
        getU64(json, "legacy_spare_keying") != 0;
    o.quick = getU64(json, "quick") != 0;
    o.reaffinity = getU64(json, "reaffinity") != 0;
    o.machine.simcheck.audit = getU64(json, "audit") != 0;
    o.machine.simcheck.auditPeriodEpochs =
        static_cast<std::uint32_t>(getU64(json, "audit_period"));
    o.machine.simcheck.watchdogStallEpochs =
        static_cast<std::uint32_t>(getU64(json, "watchdog"));
    o.faultSchedule =
        sim::parseFaultSchedule(getString(json, "schedule"));
    if (expected) {
        expected->failed = true;
        expected->errorType = getString(json, "error_type");
        expected->klass = getString(json, "klass");
        expected->signature = getString(json, "signature");
    }
    return c;
}

void
writeBundleFile(const std::string &path, const Campaign &c,
                const Verdict &v)
{
    const std::filesystem::path p(path);
    std::error_code ec;
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream out(path);
    out << formatBundle(c, v);
    if (!out)
        SIM_FATAL("chaos", "cannot write repro bundle '%s'",
                  path.c_str());
}

ReplayResult
replayBundleFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        SIM_FATAL("chaos", "cannot read repro bundle '%s'",
                  path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    ReplayResult r;
    r.campaign = parseBundle(buf.str(), &r.expected);
    r.got = runOracle(r.campaign.opts);
    r.reproduced = r.got.failed &&
                   r.got.errorType == r.expected.errorType &&
                   r.got.signature == r.expected.signature;
    return r;
}

} // namespace affalloc::chaos
