/**
 * @file
 * Reference (host-only, no timing) graph algorithms used to validate
 * the simulated workloads' functional results.
 */

#ifndef AFFALLOC_GRAPH_REFERENCE_HH
#define AFFALLOC_GRAPH_REFERENCE_HH

#include <cstdint>
#include <vector>

#include "graph/csr.hh"

namespace affalloc::graph
{

/** Distance value for unreachable vertices. */
inline constexpr std::int64_t unreachable = -1;

/** BFS depths from @p source (unreachable vertices get -1). */
std::vector<std::int64_t> bfsReference(const Csr &g, VertexId source);

/** Dijkstra shortest-path distances from @p source (-1 unreachable). */
std::vector<std::int64_t> ssspReference(const Csr &g, VertexId source);

/**
 * Pull-based PageRank run for a fixed number of iterations with
 * damping 0.85 (the simulated workloads use the same schedule so
 * results compare exactly).
 */
std::vector<double> pageRankReference(const Csr &g, int iterations);

} // namespace affalloc::graph

#endif // AFFALLOC_GRAPH_REFERENCE_HH
