#include "graph/generators.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace affalloc::graph
{

Csr
kronecker(const KroneckerParams &p)
{
    if (p.a + p.b + p.c >= 1.0)
        SIM_FATAL("graph", "Kronecker quadrant probabilities must sum below 1");
    const VertexId n = VertexId(1) << p.scale;
    const std::uint64_t m = std::uint64_t(p.edgeFactor) * n;
    Rng rng(p.seed);

    // Graph500 convention: permute vertex labels so degree is not
    // correlated with vertex id (otherwise contiguous partitioning
    // would pile every hub into one partition).
    std::vector<VertexId> perm(n);
    for (VertexId v = 0; v < n; ++v)
        perm[v] = v;
    for (VertexId v = n - 1; v > 0; --v)
        std::swap(perm[v], perm[rng.below(v + 1)]);

    std::vector<Edge> edges;
    edges.reserve(m);
    const bool weighted = p.maxWeight > 0;
    for (std::uint64_t e = 0; e < m; ++e) {
        VertexId src = 0;
        VertexId dst = 0;
        for (std::uint32_t bit = 0; bit < p.scale; ++bit) {
            const double r = rng.uniform();
            if (r < p.a) {
                // top-left quadrant: no bits set
            } else if (r < p.a + p.b) {
                dst |= VertexId(1) << bit;
            } else if (r < p.a + p.b + p.c) {
                src |= VertexId(1) << bit;
            } else {
                src |= VertexId(1) << bit;
                dst |= VertexId(1) << bit;
            }
        }
        Edge edge{perm[src], perm[dst], 1};
        if (weighted) {
            edge.weight = static_cast<std::uint32_t>(
                rng.between(p.minWeight, p.maxWeight));
        }
        edges.push_back(edge);
    }
    return buildCsr(n, std::move(edges), p.symmetric, weighted);
}

Csr
powerLaw(VertexId num_vertices, std::uint64_t num_edges, double exponent,
         std::uint64_t seed, bool weighted, bool symmetrize)
{
    Rng rng(seed);
    // Chung-Lu: vertex v gets expected degree proportional to
    // (v+1)^(-1/(exponent-1)); sample endpoints from the cumulative
    // weight distribution via inversion.
    const double theta = 1.0 / (exponent - 1.0);
    std::vector<double> cum(num_vertices + 1, 0.0);
    for (VertexId v = 0; v < num_vertices; ++v)
        cum[v + 1] = cum[v] + std::pow(double(v + 1), -theta);
    const double total = cum.back();

    // Permute labels so degree is uncorrelated with vertex id (see
    // kronecker()).
    std::vector<VertexId> perm(num_vertices);
    for (VertexId v = 0; v < num_vertices; ++v)
        perm[v] = v;
    for (VertexId v = num_vertices - 1; v > 0; --v)
        std::swap(perm[v], perm[rng.below(v + 1)]);

    auto sample = [&]() -> VertexId {
        const double r = rng.uniform() * total;
        const auto it = std::upper_bound(cum.begin(), cum.end(), r);
        const std::size_t idx = std::size_t(it - cum.begin());
        return perm[static_cast<VertexId>(idx == 0 ? 0 : idx - 1)];
    };

    std::vector<Edge> edges;
    edges.reserve(num_edges);
    for (std::uint64_t e = 0; e < num_edges; ++e) {
        Edge edge{sample(), sample(), 1};
        if (weighted)
            edge.weight = static_cast<std::uint32_t>(rng.between(1, 255));
        edges.push_back(edge);
    }
    return buildCsr(num_vertices, std::move(edges), symmetrize, weighted);
}

Csr
twitchLike(std::uint64_t seed)
{
    // Table 4: 168,114 vertices, 13.6M directed edges, avg degree 81.
    return powerLaw(168114, 13595114 / 2, 2.2, seed, /*weighted=*/true,
                    /*symmetrize=*/true);
}

Csr
gplusLike(std::uint64_t seed)
{
    // Table 4: 107,614 vertices, 13.7M directed edges, avg degree 127.
    return powerLaw(107614, 13673453 / 2, 2.05, seed, /*weighted=*/true,
                    /*symmetrize=*/true);
}

} // namespace affalloc::graph
