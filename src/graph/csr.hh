/**
 * @file
 * Compressed sparse row graph representation (Fig. 11, top) and the
 * edge-list builder shared by every generator.
 */

#ifndef AFFALLOC_GRAPH_CSR_HH
#define AFFALLOC_GRAPH_CSR_HH

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace affalloc::graph
{

/** Vertex identifier. */
using VertexId = std::uint32_t;

/** A directed edge with an optional weight. */
struct Edge
{
    VertexId src = 0;
    VertexId dst = 0;
    std::uint32_t weight = 1;
};

/**
 * Standard CSR: per-vertex index into a single edge array, edges
 * sorted by source vertex (the common practice §7.2 relies on).
 */
struct Csr
{
    /** Number of vertices. */
    VertexId numVertices = 0;
    /** rowOffsets[v]..rowOffsets[v+1] indexes v's outgoing edges. */
    std::vector<std::uint64_t> rowOffsets;
    /** Destination vertex of each edge. */
    std::vector<VertexId> edges;
    /** Edge weights; empty when the graph is unweighted. */
    std::vector<std::uint32_t> weights;

    /** Number of directed edges stored. */
    std::uint64_t numEdges() const { return edges.size(); }
    /** Out-degree of @p v. */
    std::uint32_t
    degree(VertexId v) const
    {
        return static_cast<std::uint32_t>(rowOffsets[v + 1] -
                                          rowOffsets[v]);
    }
    /** Outgoing neighbours of @p v. */
    std::span<const VertexId>
    neighbors(VertexId v) const
    {
        return {edges.data() + rowOffsets[v],
                edges.data() + rowOffsets[v + 1]};
    }
    /** Average degree. */
    double
    averageDegree() const
    {
        return numVertices == 0
                   ? 0.0
                   : static_cast<double>(numEdges()) / numVertices;
    }

    /** Structural sanity check; throws on inconsistency. */
    void validate() const;

    /** The transpose (incoming-edge CSR) for pull-based algorithms. */
    Csr transpose() const;
};

/**
 * Build a CSR from an edge list. Self-loops and duplicate edges are
 * removed; @p symmetrize adds the reverse of every edge (undirected
 * graphs a la GAP).
 */
Csr buildCsr(VertexId num_vertices, std::vector<Edge> edges,
             bool symmetrize, bool keep_weights);

} // namespace affalloc::graph

#endif // AFFALLOC_GRAPH_CSR_HH
