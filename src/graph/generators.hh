/**
 * @file
 * Synthetic graph generators standing in for the paper's inputs:
 * Graph500-style Kronecker (Table 3), degree-controlled power-law
 * graphs (Fig. 19), and synthetic stand-ins matched to the published
 * statistics of the Table 4 real-world graphs.
 */

#ifndef AFFALLOC_GRAPH_GENERATORS_HH
#define AFFALLOC_GRAPH_GENERATORS_HH

#include <cstdint>

#include "graph/csr.hh"

namespace affalloc::graph
{

/** Parameters of the RMAT/Kronecker generator. */
struct KroneckerParams
{
    /** log2 of the vertex count (Table 3: 17 -> 128k vertices). */
    std::uint32_t scale = 17;
    /** Directed edges generated per vertex before symmetrization. */
    std::uint32_t edgeFactor = 16;
    /** RMAT quadrant probabilities (Table 3: 0.57 / 0.19 / 0.19). */
    double a = 0.57;
    double b = 0.19;
    double c = 0.19;
    /** Weight range (Table 3: [1, 255]); 0 max means unweighted. */
    std::uint32_t minWeight = 1;
    std::uint32_t maxWeight = 255;
    /** Symmetrize into an undirected graph (GAP convention). */
    bool symmetric = true;
    std::uint64_t seed = 42;
};

/** Generate a Kronecker (RMAT) graph. */
Csr kronecker(const KroneckerParams &params);

/**
 * Chung-Lu style power-law graph with a target vertex count and
 * average degree (Fig. 19's degree sweep fixes |E| and varies D).
 */
Csr powerLaw(VertexId num_vertices, std::uint64_t num_edges,
             double exponent, std::uint64_t seed, bool weighted = false,
             bool symmetrize = false);

/** Synthetic stand-in for twitch-gamers (Table 4: 168k V, 13.6M E). */
Csr twitchLike(std::uint64_t seed = 1);

/** Synthetic stand-in for gplus (Table 4: 108k V, 13.7M E). */
Csr gplusLike(std::uint64_t seed = 2);

} // namespace affalloc::graph

#endif // AFFALLOC_GRAPH_GENERATORS_HH
