#include "graph/reference.hh"

#include <queue>

#include "sim/log.hh"

namespace affalloc::graph
{

std::vector<std::int64_t>
bfsReference(const Csr &g, VertexId source)
{
    if (source >= g.numVertices)
        SIM_FATAL("graph", "BFS source %u out of range", source);
    std::vector<std::int64_t> depth(g.numVertices, unreachable);
    std::queue<VertexId> q;
    depth[source] = 0;
    q.push(source);
    while (!q.empty()) {
        const VertexId u = q.front();
        q.pop();
        for (VertexId v : g.neighbors(u)) {
            if (depth[v] == unreachable) {
                depth[v] = depth[u] + 1;
                q.push(v);
            }
        }
    }
    return depth;
}

std::vector<std::int64_t>
ssspReference(const Csr &g, VertexId source)
{
    if (source >= g.numVertices)
        SIM_FATAL("graph", "SSSP source %u out of range", source);
    if (g.weights.empty())
        SIM_FATAL("graph", "SSSP requires a weighted graph");
    std::vector<std::int64_t> dist(g.numVertices, unreachable);
    using Item = std::pair<std::int64_t, VertexId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[source] = 0;
    pq.emplace(0, source);
    while (!pq.empty()) {
        const auto [d, u] = pq.top();
        pq.pop();
        if (d != dist[u])
            continue;
        for (std::uint64_t e = g.rowOffsets[u]; e < g.rowOffsets[u + 1];
             ++e) {
            const VertexId v = g.edges[e];
            const std::int64_t nd = d + g.weights[e];
            if (dist[v] == unreachable || nd < dist[v]) {
                dist[v] = nd;
                pq.emplace(nd, v);
            }
        }
    }
    return dist;
}

std::vector<double>
pageRankReference(const Csr &g, int iterations)
{
    constexpr double damping = 0.85;
    const double base = (1.0 - damping) / g.numVertices;
    std::vector<double> rank(g.numVertices, 1.0 / g.numVertices);
    std::vector<double> next(g.numVertices, 0.0);
    const Csr in = g.transpose();
    for (int it = 0; it < iterations; ++it) {
        for (VertexId v = 0; v < g.numVertices; ++v) {
            double sum = 0.0;
            for (VertexId u : in.neighbors(v)) {
                const std::uint32_t deg = g.degree(u);
                if (deg > 0)
                    sum += rank[u] / deg;
            }
            next[v] = base + damping * sum;
        }
        rank.swap(next);
    }
    return rank;
}

} // namespace affalloc::graph
