#include "graph/csr.hh"

#include <algorithm>

#include "sim/log.hh"

namespace affalloc::graph
{

void
Csr::validate() const
{
    if (rowOffsets.size() != std::size_t(numVertices) + 1)
        SIM_PANIC("graph", "CSR rowOffsets size mismatch");
    if (rowOffsets.front() != 0 || rowOffsets.back() != edges.size())
        SIM_PANIC("graph", "CSR rowOffsets endpoints inconsistent");
    for (VertexId v = 0; v < numVertices; ++v)
        if (rowOffsets[v] > rowOffsets[v + 1])
            SIM_PANIC("graph", "CSR rowOffsets not monotone at vertex %u", v);
    for (VertexId dst : edges)
        if (dst >= numVertices)
            SIM_PANIC("graph", "CSR edge destination %u out of range", dst);
    if (!weights.empty() && weights.size() != edges.size())
        SIM_PANIC("graph", "CSR weights size mismatch");
}

Csr
Csr::transpose() const
{
    Csr t;
    t.numVertices = numVertices;
    t.rowOffsets.assign(std::size_t(numVertices) + 1, 0);
    for (VertexId dst : edges)
        ++t.rowOffsets[dst + 1];
    for (VertexId v = 0; v < numVertices; ++v)
        t.rowOffsets[v + 1] += t.rowOffsets[v];
    t.edges.resize(edges.size());
    if (!weights.empty())
        t.weights.resize(edges.size());
    std::vector<std::uint64_t> cursor(t.rowOffsets.begin(),
                                      t.rowOffsets.end() - 1);
    for (VertexId src = 0; src < numVertices; ++src) {
        for (std::uint64_t e = rowOffsets[src]; e < rowOffsets[src + 1];
             ++e) {
            const std::uint64_t slot = cursor[edges[e]]++;
            t.edges[slot] = src;
            if (!weights.empty())
                t.weights[slot] = weights[e];
        }
    }
    return t;
}

Csr
buildCsr(VertexId num_vertices, std::vector<Edge> edges, bool symmetrize,
         bool keep_weights)
{
    if (symmetrize) {
        const std::size_t n = edges.size();
        edges.reserve(n * 2);
        for (std::size_t i = 0; i < n; ++i)
            edges.push_back(
                Edge{edges[i].dst, edges[i].src, edges[i].weight});
    }
    // Drop self loops, sort, and dedup (first weight wins).
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [](const Edge &e) {
                                   return e.src == e.dst;
                               }),
                edges.end());
    std::sort(edges.begin(), edges.end(),
              [](const Edge &a, const Edge &b) {
                  return a.src != b.src ? a.src < b.src : a.dst < b.dst;
              });
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const Edge &a, const Edge &b) {
                                return a.src == b.src && a.dst == b.dst;
                            }),
                edges.end());

    Csr g;
    g.numVertices = num_vertices;
    g.rowOffsets.assign(std::size_t(num_vertices) + 1, 0);
    for (const Edge &e : edges) {
        if (e.src >= num_vertices || e.dst >= num_vertices)
            SIM_FATAL("graph", "edge (%u,%u) outside vertex range", e.src, e.dst);
        ++g.rowOffsets[e.src + 1];
    }
    for (VertexId v = 0; v < num_vertices; ++v)
        g.rowOffsets[v + 1] += g.rowOffsets[v];
    g.edges.reserve(edges.size());
    if (keep_weights)
        g.weights.reserve(edges.size());
    for (const Edge &e : edges) {
        g.edges.push_back(e.dst);
        if (keep_weights)
            g.weights.push_back(e.weight);
    }
    g.validate();
    return g;
}

} // namespace affalloc::graph
