#include "harness/sweep.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <thread>

#include "sim/log.hh"

namespace affalloc::harness
{

namespace
{

unsigned
clampJobs(long requested)
{
    if (requested == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : hw;
    }
    if (requested < 0)
        return 1;
    return static_cast<unsigned>(requested);
}

} // namespace

unsigned
parseJobs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--jobs") == 0) {
            if (i + 1 >= argc)
                SIM_FATAL("harness", "--jobs requires a value");
            return clampJobs(std::strtol(argv[i + 1], nullptr, 10));
        }
        if (std::strncmp(arg, "--jobs=", 7) == 0)
            return clampJobs(std::strtol(arg + 7, nullptr, 10));
    }
    if (const char *env = std::getenv("AFFALLOC_JOBS"); env && *env)
        return clampJobs(std::strtol(env, nullptr, 10));
    return 1;
}

void
runSweepTasks(unsigned jobs, std::vector<std::function<void()>> tasks)
{
    const std::size_t n = tasks.size();
    if (n == 0)
        return;
    if (jobs <= 1 || n == 1) {
        // Inline execution: identical to the pre-parallel bench loops.
        for (auto &task : tasks)
            task();
        return;
    }

    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(jobs, n));
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(n);

    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                tasks[i]();
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();

    // Deterministic error reporting: the lowest-indexed failure wins,
    // exactly as it would have surfaced from the serial loop.
    for (std::size_t i = 0; i < n; ++i) {
        if (errors[i])
            std::rethrow_exception(errors[i]);
    }
}

} // namespace affalloc::harness
