#include "harness/sweep.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <thread>

#include "sim/config.hh"
#include "sim/log.hh"
#include "sim/prof.hh"
#include "sim/worker_pool.hh"

namespace affalloc::harness
{

namespace
{

unsigned
clampJobs(long requested)
{
    if (requested == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : hw;
    }
    if (requested < 0)
        return 1;
    return static_cast<unsigned>(requested);
}

unsigned
validateSimThreads(const char *text, const char *origin)
{
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0')
        SIM_FATAL("harness", "%s: '%s' is not a number", origin, text);
    if (v <= 0) {
        SIM_FATAL("harness",
                  "%s: %ld is invalid; need at least 1 thread to replay "
                  "the epoch (1 = classic serial execution)",
                  origin, v);
    }
    if (v > 1024)
        SIM_FATAL("harness", "%s: %ld threads is absurd (max 1024)",
                  origin, v);
    const unsigned hw = std::thread::hardware_concurrency();
    const char *over = std::getenv("AFFALLOC_SIM_OVERSUBSCRIBE");
    const bool oversubscribe = over && *over && *over != '0';
    if (hw != 0 && static_cast<unsigned>(v) > hw && !oversubscribe) {
        SIM_FATAL("harness",
                  "%s: %ld exceeds this host's %u hardware threads; "
                  "oversubscribing only slows the replay down (set "
                  "AFFALLOC_SIM_OVERSUBSCRIBE=1 to force, e.g. in a "
                  "cgroup-limited container)",
                  origin, v, hw);
    }
    return static_cast<unsigned>(v);
}

} // namespace

unsigned
parseJobs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--jobs") == 0) {
            if (i + 1 >= argc)
                SIM_FATAL("harness", "--jobs requires a value");
            return clampJobs(std::strtol(argv[i + 1], nullptr, 10));
        }
        if (std::strncmp(arg, "--jobs=", 7) == 0)
            return clampJobs(std::strtol(arg + 7, nullptr, 10));
    }
    if (const char *env = std::getenv("AFFALLOC_JOBS"); env && *env)
        return clampJobs(std::strtol(env, nullptr, 10));
    return 1;
}

unsigned
applySimThreads(int argc, char **argv)
{
    unsigned threads = 1;
    bool found = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--sim-threads") == 0) {
            if (i + 1 >= argc)
                SIM_FATAL("harness", "--sim-threads requires a value");
            threads = validateSimThreads(argv[i + 1], "--sim-threads");
            found = true;
            break;
        }
        if (std::strncmp(arg, "--sim-threads=", 14) == 0) {
            threads = validateSimThreads(arg + 14, "--sim-threads");
            found = true;
            break;
        }
    }
    if (!found) {
        if (const char *env = std::getenv("AFFALLOC_SIM_THREADS");
            env && *env) {
            threads = validateSimThreads(env, "AFFALLOC_SIM_THREADS");
        }
    }
    sim::setDefaultSimThreads(threads);
    return threads;
}

namespace
{

/** The --prof-out destination, held open from parse time to exit. */
std::FILE *profOut_ = nullptr;
std::string profOutPath_;

void
writeProfAtExit()
{
    if (!profOut_)
        return;
    const prof::Snapshot snap = prof::harvest();
    const bool wrote = prof::writeJson(profOut_, snap);
    const bool closed = std::fclose(profOut_) == 0;
    profOut_ = nullptr;
    if (!wrote || !closed) {
        // atexit context: throwing SIM_FATAL here would terminate();
        // report and fail the process directly.
        std::fprintf(stderr,
                     "fatal: [harness] failed writing profile to '%s': "
                     "%s\n",
                     profOutPath_.c_str(), std::strerror(errno));
        std::_Exit(1);
    }
}

void
openProfOut(const char *path)
{
    if (!path || *path == '\0')
        SIM_FATAL("harness", "--prof-out: empty path");
    if (profOut_)
        SIM_FATAL("harness", "--prof-out given twice");
    profOut_ = std::fopen(path, "w");
    if (!profOut_) {
        SIM_FATAL("harness", "--prof-out: cannot open '%s': %s", path,
                  std::strerror(errno));
    }
    profOutPath_ = path;
    std::atexit(&writeProfAtExit);
    prof::setEnabled(true);
}

double
validateProgressInterval(const char *text, const char *origin)
{
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0')
        SIM_FATAL("harness", "%s: '%s' is not a number", origin, text);
    if (!(v > 0.0) || v > 86400.0) {
        SIM_FATAL("harness",
                  "%s: %g is not a usable heartbeat interval (need "
                  "0 < seconds <= 86400)",
                  origin, v);
    }
    return v;
}

} // namespace

bool
applyProfFlags(int argc, char **argv)
{
    const char *prof_path = nullptr;
    bool progress = false;
    double interval = 5.0;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--prof-out") == 0) {
            if (i + 1 >= argc)
                SIM_FATAL("harness", "--prof-out requires a value");
            prof_path = argv[++i];
        } else if (std::strncmp(arg, "--prof-out=", 11) == 0) {
            prof_path = arg + 11;
        } else if (std::strcmp(arg, "--progress") == 0) {
            progress = true;
        } else if (std::strncmp(arg, "--progress=", 11) == 0) {
            progress = true;
            interval = validateProgressInterval(arg + 11, "--progress");
        }
    }
    if (!prof_path) {
        if (const char *env = std::getenv("AFFALLOC_PROF_OUT");
            env && *env)
            prof_path = env;
    }
    if (!progress) {
        if (const char *env = std::getenv("AFFALLOC_PROGRESS");
            env && *env && std::strcmp(env, "0") != 0) {
            progress = true;
            if (std::strcmp(env, "1") != 0)
                interval =
                    validateProgressInterval(env, "AFFALLOC_PROGRESS");
        }
    }
    if (prof_path) {
        openProfOut(prof_path);
        if (!prof::compiledIn) {
            std::fprintf(stderr,
                         "warning: [harness] this build has "
                         "AFFALLOC_PROF=OFF; '%s' will carry an empty "
                         "profile\n",
                         prof_path);
        }
    }
    if (progress)
        prof::progressEnable(interval);
    return prof_path != nullptr;
}

void
runSweepTasks(unsigned jobs, std::vector<std::function<void()>> tasks)
{
    const std::size_t n = tasks.size();
    if (n == 0)
        return;
    PROF_SCOPE("harness/sweep");
    prof::counterMax("sweep/max_batch_tasks", n);
    if (jobs <= 1 || n == 1) {
        // Inline execution: identical to the pre-parallel bench loops.
        for (auto &task : tasks)
            task();
        return;
    }

    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(jobs, n));
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(n);

    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                tasks[i]();
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    // Reuse the process-wide worker pool so back-to-back sweeps stop
    // paying thread spawn/join per call. dispatch() is not reentrant,
    // so a sweep nested inside another sweep's task falls back to the
    // original ad-hoc threads.
    static std::atomic<bool> poolBusy{false};
    bool expected = false;
    if (poolBusy.compare_exchange_strong(expected, true)) {
        prof::counterAdd("sweep/pool_batches", 1);
        sim::WorkerPool &pool = sim::sharedWorkerPool(workers);
        pool.dispatch([&](unsigned role) {
            // The shared pool only ever grows; excess roles from a
            // wider earlier sweep sit this one out.
            if (role < workers)
                worker();
        });
        poolBusy.store(false);
    } else {
        prof::counterAdd("sweep/adhoc_batches", 1);
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    // Deterministic error reporting: the lowest-indexed failure wins,
    // exactly as it would have surfaced from the serial loop.
    for (std::size_t i = 0; i < n; ++i) {
        if (errors[i])
            std::rethrow_exception(errors[i]);
    }
}

} // namespace affalloc::harness
