/**
 * @file
 * CSV export of run timelines and comparisons, for plotting the
 * figures outside the terminal (Fig. 14/18 are timeline plots in the
 * paper; the benches print distilled tables, this writes the raw
 * series).
 */

#ifndef AFFALLOC_HARNESS_TRACE_HH
#define AFFALLOC_HARNESS_TRACE_HH

#include <string>

#include "harness/report.hh"

namespace affalloc::harness
{

/**
 * Write a run's epoch timeline as CSV:
 * epoch,end_cycle,phase,min,p25,mean,p75,max
 * (the atomic-stream occupancy bands of Fig. 14 per epoch).
 */
void writeTimelineCsv(const workloads::RunResult &run,
                      const std::string &path);

/**
 * Write a comparison as CSV:
 * workload,config,cycles,joules,hops,offload_hops,data_hops,
 * control_hops,l3_miss_rate,noc_utilization,offline_banks,
 * offload_retries,offload_fallbacks,alloc_fallbacks,
 * victim_migrations,degraded_link_flits,valid
 * (the degradation counters mirror the table Comparison::print shows
 * when a run degraded; the CSV always carries them so plots can).
 */
void writeComparisonCsv(const Comparison &cmp,
                        const std::vector<std::string> &config_labels,
                        const std::string &path);

/**
 * Write a run's spatial per-bank counters as CSV:
 * bank,tile,x,y,accesses,misses,atomics,se_ops,stream_notes,busy_cycles
 * SIM_FATAL when the run carries no spatial snapshot (the caller
 * forgot to enable RunConfig::obs.metrics).
 */
void writeBankMetricsCsv(const workloads::RunResult &run,
                         const std::string &path);

/**
 * Write a run's spatial per-link counters as CSV:
 * link,tile,dir,flits
 * with dir in {E,W,N,S} per noc::Mesh::linkOf; edge slots are omitted
 * only if they carried nothing *and* their direction leaves the mesh.
 */
void writeLinkMetricsCsv(const workloads::RunResult &run,
                         const std::string &path);

} // namespace affalloc::harness

#endif // AFFALLOC_HARNESS_TRACE_HH
