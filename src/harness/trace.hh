/**
 * @file
 * CSV export of run timelines and comparisons, for plotting the
 * figures outside the terminal (Fig. 14/18 are timeline plots in the
 * paper; the benches print distilled tables, this writes the raw
 * series).
 */

#ifndef AFFALLOC_HARNESS_TRACE_HH
#define AFFALLOC_HARNESS_TRACE_HH

#include <string>

#include "harness/report.hh"

namespace affalloc::harness
{

/**
 * Write a run's epoch timeline as CSV:
 * epoch,end_cycle,phase,min,p25,mean,p75,max
 * (the atomic-stream occupancy bands of Fig. 14 per epoch).
 */
void writeTimelineCsv(const workloads::RunResult &run,
                      const std::string &path);

/**
 * Write a comparison as CSV:
 * workload,config,cycles,joules,hops,offload_hops,data_hops,
 * control_hops,l3_miss_rate,noc_utilization,valid
 */
void writeComparisonCsv(const Comparison &cmp,
                        const std::vector<std::string> &config_labels,
                        const std::string &path);

} // namespace affalloc::harness

#endif // AFFALLOC_HARNESS_TRACE_HH
