#include "harness/trace.hh"

#include <cstdio>

#include "sim/log.hh"

namespace affalloc::harness
{

void
writeTimelineCsv(const workloads::RunResult &run, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        SIM_FATAL("harness", "cannot open %s for writing", path.c_str());
    std::fprintf(f, "epoch,end_cycle,phase,min,p25,mean,p75,max\n");
    for (std::size_t i = 0; i < run.timeline.size(); ++i) {
        const auto &rec = run.timeline.at(i);
        const auto bands = sim::Timeline::bands(rec);
        std::fprintf(f, "%zu,%llu,%s,%.0f,%.0f,%.2f,%.0f,%.0f\n", i,
                     (unsigned long long)rec.endCycle,
                     rec.phase.c_str(), bands[0], bands[1], bands[2],
                     bands[3], bands[4]);
    }
    std::fclose(f);
}

void
writeComparisonCsv(const Comparison &cmp,
                   const std::vector<std::string> &config_labels,
                   const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        SIM_FATAL("harness", "cannot open %s for writing", path.c_str());
    std::fprintf(f, "workload,config,cycles,joules,hops,offload_hops,"
                    "data_hops,control_hops,l3_miss_rate,"
                    "noc_utilization,valid\n");
    for (const auto &row : cmp.rows()) {
        for (std::size_t c = 0; c < row.byConfig.size(); ++c) {
            const auto &r = row.byConfig[c];
            std::fprintf(
                f, "%s,%s,%llu,%.9g,%llu,%llu,%llu,%llu,%.6f,%.6f,%d\n",
                row.name.c_str(),
                c < config_labels.size() ? config_labels[c].c_str()
                                         : "?",
                (unsigned long long)r.cycles(), r.joules,
                (unsigned long long)r.hops(),
                (unsigned long long)r.stats.hops[int(
                    TrafficClass::offload)],
                (unsigned long long)r.stats.hops[int(
                    TrafficClass::data)],
                (unsigned long long)r.stats.hops[int(
                    TrafficClass::control)],
                r.l3MissRate, r.nocUtilization, r.valid ? 1 : 0);
        }
    }
    std::fclose(f);
}

} // namespace affalloc::harness
