#include "harness/trace.hh"

#include <cstdio>

#include "sim/log.hh"

namespace affalloc::harness
{

namespace
{

/**
 * Flush-and-close with error reporting: a writer that ran out of disk
 * mid-file must fail the run, not leave a silently truncated CSV that
 * plots as "everything is fine".
 */
void
closeChecked(std::FILE *f, const std::string &path)
{
    const bool bad = std::ferror(f) != 0;
    const bool close_failed = std::fclose(f) != 0;
    if (bad || close_failed)
        SIM_FATAL("harness", "I/O error writing %s (output is incomplete)",
                  path.c_str());
}

std::FILE *
openChecked(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        SIM_FATAL("harness", "cannot open %s for writing", path.c_str());
    return f;
}

} // namespace

void
writeTimelineCsv(const workloads::RunResult &run, const std::string &path)
{
    std::FILE *f = openChecked(path);
    std::fprintf(f, "epoch,end_cycle,phase,min,p25,mean,p75,max\n");
    for (std::size_t i = 0; i < run.timeline.size(); ++i) {
        const auto &rec = run.timeline.at(i);
        const auto bands = sim::Timeline::bands(rec);
        std::fprintf(f, "%zu,%llu,%s,%.0f,%.0f,%.2f,%.0f,%.0f\n", i,
                     (unsigned long long)rec.endCycle,
                     rec.phase.c_str(), bands[0], bands[1], bands[2],
                     bands[3], bands[4]);
    }
    closeChecked(f, path);
}

void
writeComparisonCsv(const Comparison &cmp,
                   const std::vector<std::string> &config_labels,
                   const std::string &path)
{
    std::FILE *f = openChecked(path);
    // `class` is appended last (default "ndc") so existing positional
    // parsers of the original columns keep working.
    std::fprintf(f, "workload,config,cycles,joules,hops,offload_hops,"
                    "data_hops,control_hops,l3_miss_rate,"
                    "noc_utilization,offline_banks,offload_retries,"
                    "offload_fallbacks,alloc_fallbacks,"
                    "victim_migrations,degraded_link_flits,valid,"
                    "class\n");
    for (const auto &row : cmp.rows()) {
        for (std::size_t c = 0; c < row.byConfig.size(); ++c) {
            const auto &r = row.byConfig[c];
            std::fprintf(
                f,
                "%s,%s,%llu,%.9g,%llu,%llu,%llu,%llu,%.6f,%.6f,"
                "%llu,%llu,%llu,%llu,%llu,%llu,%d,%s\n",
                row.name.c_str(),
                c < config_labels.size() ? config_labels[c].c_str()
                                         : "?",
                (unsigned long long)r.cycles(), r.joules,
                (unsigned long long)r.hops(),
                (unsigned long long)r.stats.hops[int(
                    TrafficClass::offload)],
                (unsigned long long)r.stats.hops[int(
                    TrafficClass::data)],
                (unsigned long long)r.stats.hops[int(
                    TrafficClass::control)],
                r.l3MissRate, r.nocUtilization,
                (unsigned long long)r.stats.offlineBanks,
                (unsigned long long)r.stats.offloadRetries,
                (unsigned long long)r.stats.offloadFallbacks,
                (unsigned long long)r.stats.allocFallbacks,
                (unsigned long long)r.stats.victimMigrations,
                (unsigned long long)r.stats.degradedLinkFlits,
                r.valid ? 1 : 0, agentClassName(r.cls));
        }
    }
    closeChecked(f, path);
}

void
writeBankMetricsCsv(const workloads::RunResult &run,
                    const std::string &path)
{
    const obs::SpatialSnapshot &s = run.obsSnapshot;
    if (s.empty())
        SIM_FATAL("harness", "writeBankMetricsCsv(%s): run '%s/%s' carries "
                  "no spatial snapshot (enable RunConfig::obs.metrics)",
                  path.c_str(), run.workload.c_str(), run.label.c_str());
    std::FILE *f = openChecked(path);
    std::fprintf(f, "bank,tile,x,y,accesses,misses,atomics,se_ops,"
                    "stream_notes,busy_cycles\n");
    for (std::size_t b = 0; b < s.bankAccesses.size(); ++b) {
        const TileId t = s.bankTile[b];
        std::fprintf(f, "%zu,%u,%u,%u,%llu,%llu,%llu,%llu,%llu,%.2f\n",
                     b, t, t % s.meshX, t / s.meshX,
                     (unsigned long long)s.bankAccesses[b],
                     (unsigned long long)s.bankMisses[b],
                     (unsigned long long)s.bankAtomics[b],
                     (unsigned long long)s.bankSeOps[b],
                     (unsigned long long)s.bankStreamNotes[b],
                     s.bankBusyCycles[b]);
    }
    closeChecked(f, path);
}

void
writeLinkMetricsCsv(const workloads::RunResult &run,
                    const std::string &path)
{
    const obs::SpatialSnapshot &s = run.obsSnapshot;
    if (s.empty())
        SIM_FATAL("harness", "writeLinkMetricsCsv(%s): run '%s/%s' carries "
                  "no spatial snapshot (enable RunConfig::obs.metrics)",
                  path.c_str(), run.workload.c_str(), run.label.c_str());
    std::FILE *f = openChecked(path);
    std::fprintf(f, "link,tile,dir,flits\n");
    // Link id = tile*4 + dir, dir 0=E 1=W 2=N(y-1) 3=S(y+1); slots
    // whose direction leaves the mesh are structural zeros and are
    // skipped so every emitted row is a physical link.
    static const char dir_name[4] = {'E', 'W', 'N', 'S'};
    for (std::size_t l = 0; l < s.linkFlits.size(); ++l) {
        const TileId t = static_cast<TileId>(l / 4);
        const std::uint32_t d = static_cast<std::uint32_t>(l % 4);
        const std::uint32_t x = t % s.meshX, y = t / s.meshX;
        const bool exists = (d == 0 && x + 1 < s.meshX) ||
                            (d == 1 && x > 0) || (d == 2 && y > 0) ||
                            (d == 3 && y + 1 < s.meshY);
        if (!exists)
            continue;
        std::fprintf(f, "%zu,%u,%c,%llu\n", l, t, dir_name[d],
                     (unsigned long long)s.linkFlits[l]);
    }
    closeChecked(f, path);
}

} // namespace affalloc::harness
