/**
 * @file
 * Parallel sweep runner. Figure benches sweep many independent
 * (workload, configuration) points; every point builds its own
 * os::SimOS + nsc::Machine + workload state inside its run function,
 * so points share no mutable state and can execute on a small thread
 * pool. Results are always delivered in sweep order — callers print
 * from the collected vector, so bench output (and the determinism
 * digests folded from it) is byte-identical at any job count.
 */

#ifndef AFFALLOC_HARNESS_SWEEP_HH
#define AFFALLOC_HARNESS_SWEEP_HH

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace affalloc::harness
{

/**
 * Parse the shared --jobs flag: `--jobs N`, `--jobs=N`, or the
 * AFFALLOC_JOBS environment variable (flag wins). Returns at least 1;
 * `--jobs 0` means "one per hardware thread".
 */
unsigned parseJobs(int argc, char **argv);

/**
 * Parse and apply the shared --sim-threads flag: `--sim-threads N`,
 * `--sim-threads=N`, or the AFFALLOC_SIM_THREADS environment variable
 * (flag wins). Installs the value as the process-wide default every
 * subsequently constructed MachineConfig picks up (intra-run
 * shard-parallel epoch replay; results are bit-identical at any
 * count), and returns it. Unset means 1 (classic serial execution).
 * Fatal on 0, non-numeric values, counts above 1024, and counts above
 * the host's hardware threads — oversubscription only slows the
 * replay down; AFFALLOC_SIM_OVERSUBSCRIBE=1 overrides that last check
 * for constrained CI containers whose cgroup quota understates the
 * real parallelism.
 */
unsigned applySimThreads(int argc, char **argv);

/**
 * Parse and apply the shared host-telemetry flags:
 *
 *   --prof-out FILE / --prof-out=FILE (or AFFALLOC_PROF_OUT): enable
 *   the self-profiler and write its JSON export to FILE at process
 *   exit. FILE is opened immediately — an empty or unwritable path is
 *   fatal at parse time, not at harvest time after a long run.
 *
 *   --progress[=SECONDS] (or AFFALLOC_PROGRESS): emit a `[progress]`
 *   heartbeat line to stderr roughly every SECONDS (default 5).
 *   SECONDS must be a positive number; the separate-argument form is
 *   deliberately not accepted (a bare `--progress` is valid, so a
 *   following value would be ambiguous).
 *
 * Returns true when --prof-out was given. Unknown flags are left for
 * the caller; benches ignore them, affalloc_cli rejects them.
 */
bool applyProfFlags(int argc, char **argv);

/**
 * Execute every task, spreading them over @p jobs worker threads
 * (inline on the calling thread when jobs <= 1 or there is only one
 * task). Tasks are claimed in index order. If any task throws, the
 * exception of the lowest-indexed failing task is rethrown on the
 * caller after all workers have drained.
 */
void runSweepTasks(unsigned jobs, std::vector<std::function<void()>> tasks);

/**
 * Run every sweep point and return their results in sweep order
 * (points[i] -> results[i], regardless of completion order).
 */
template <typename Result>
std::vector<Result>
runSweep(unsigned jobs, const std::vector<std::function<Result()>> &points)
{
    std::vector<Result> results(points.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        tasks.push_back([&results, &points, i] {
            results[i] = points[i]();
        });
    }
    runSweepTasks(jobs, std::move(tasks));
    return results;
}

} // namespace affalloc::harness

#endif // AFFALLOC_HARNESS_SWEEP_HH
