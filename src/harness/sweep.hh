/**
 * @file
 * Parallel sweep runner. Figure benches sweep many independent
 * (workload, configuration) points; every point builds its own
 * os::SimOS + nsc::Machine + workload state inside its run function,
 * so points share no mutable state and can execute on a small thread
 * pool. Results are always delivered in sweep order — callers print
 * from the collected vector, so bench output (and the determinism
 * digests folded from it) is byte-identical at any job count.
 */

#ifndef AFFALLOC_HARNESS_SWEEP_HH
#define AFFALLOC_HARNESS_SWEEP_HH

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace affalloc::harness
{

/**
 * Parse the shared --jobs flag: `--jobs N`, `--jobs=N`, or the
 * AFFALLOC_JOBS environment variable (flag wins). Returns at least 1;
 * `--jobs 0` means "one per hardware thread".
 */
unsigned parseJobs(int argc, char **argv);

/**
 * Execute every task, spreading them over @p jobs worker threads
 * (inline on the calling thread when jobs <= 1 or there is only one
 * task). Tasks are claimed in index order. If any task throws, the
 * exception of the lowest-indexed failing task is rethrown on the
 * caller after all workers have drained.
 */
void runSweepTasks(unsigned jobs, std::vector<std::function<void()>> tasks);

/**
 * Run every sweep point and return their results in sweep order
 * (points[i] -> results[i], regardless of completion order).
 */
template <typename Result>
std::vector<Result>
runSweep(unsigned jobs, const std::vector<std::function<Result()>> &points)
{
    std::vector<Result> results(points.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        tasks.push_back([&results, &points, i] {
            results[i] = points[i]();
        });
    }
    runSweepTasks(jobs, std::move(tasks));
    return results;
}

} // namespace affalloc::harness

#endif // AFFALLOC_HARNESS_SWEEP_HH
