/**
 * @file
 * Figure/table reporting: turns collections of RunResults into the
 * normalized rows the paper's figures plot (speedup, energy
 * efficiency, NoC hops with per-class breakdown, NoC utilization).
 */

#ifndef AFFALLOC_HARNESS_REPORT_HH
#define AFFALLOC_HARNESS_REPORT_HH

#include <cstdio>
#include <string>
#include <vector>

#include "workloads/run_context.hh"

namespace affalloc::harness
{

using workloads::RunResult;

/** Results for one workload across all compared configurations. */
struct WorkloadResults
{
    std::string name;
    std::vector<RunResult> byConfig;
};

/**
 * A figure-style comparison: N workloads x M configurations with a
 * chosen speedup baseline and traffic baseline (the paper normalizes
 * speedup to Near-L3 and traffic to In-Core in Fig. 12).
 */
class Comparison
{
  public:
    /** @param config_labels one label per configuration column. */
    explicit Comparison(std::vector<std::string> config_labels)
        : configLabels_(std::move(config_labels))
    {}

    /** Add one workload's results (must match the label count). */
    void add(const std::string &workload, std::vector<RunResult> runs);

    /** Number of configurations. */
    std::size_t numConfigs() const { return configLabels_.size(); }
    /** The collected rows. */
    const std::vector<WorkloadResults> &rows() const { return rows_; }

    /** Speedup of config @p c on workload @p w over @p baseline. */
    double speedup(std::size_t w, std::size_t c,
                   std::size_t baseline) const;
    /** Energy efficiency of config @p c over @p baseline. */
    double energyEff(std::size_t w, std::size_t c,
                     std::size_t baseline) const;
    /** Total hops of config @p c normalized to @p baseline. */
    double hopsNorm(std::size_t w, std::size_t c,
                    std::size_t baseline) const;
    /** Hops of one traffic class normalized to baseline *total*. */
    double hopsClassNorm(std::size_t w, std::size_t c,
                         std::size_t baseline, TrafficClass tc) const;

    /** Geomean of speedups across workloads for config @p c. */
    double geomeanSpeedup(std::size_t c, std::size_t baseline) const;
    /** Geomean of energy efficiency across workloads. */
    double geomeanEnergyEff(std::size_t c, std::size_t baseline) const;
    /** Arithmetic mean of normalized hops across workloads. */
    double meanHops(std::size_t c, std::size_t baseline) const;

    /** True if every collected run validated. */
    bool allValid() const;

    /**
     * Print the paper-style blocks: a speedup table, an energy table
     * and a traffic table (with Offload/Data/Control breakdown),
     * normalized to the given baseline columns.
     */
    void print(const std::string &title, std::size_t speedup_baseline,
               std::size_t traffic_baseline) const;

  private:
    const RunResult &at(std::size_t w, std::size_t c) const;

    std::vector<std::string> configLabels_;
    std::vector<WorkloadResults> rows_;
};

/** Print the Table 2 machine description banner once per bench. */
void printMachineBanner(const sim::MachineConfig &cfg,
                        const std::string &bench_name);

/** Parse a --quick flag (smaller inputs for smoke runs). */
bool quickMode(int argc, char **argv);

/**
 * SimCheck-related flags shared by every figure binary:
 *   --simcheck         run the invariant audits at epoch boundaries
 *   --simcheck-digest  print one determinism digest per run + overall
 *   --faulty           run under a canned fault campaign (offline
 *                      banks + offload rejection) so CI exercises the
 *                      degradation paths under audit
 * The audit default also honours AFFALLOC_SIMCHECK=1 (env) so whole
 * bench suites can be audited without touching their command lines.
 */
struct BenchSimCheck
{
    bool audit = false;
    bool digest = false;
    bool faulty = false;

    static BenchSimCheck parse(int argc, char **argv);

    /** Apply the requests to one run's machine config. */
    void apply(sim::MachineConfig &cfg) const;

    /**
     * Print `digest <workload> <config> 0x...` lines for every run of
     * @p cmp plus a final `digest overall` fold, when --simcheck-digest
     * was given. CI runs a figure twice and diffs these lines.
     */
    void printDigests(const Comparison &cmp) const;
};

/**
 * Observability flags shared by every figure binary (all opt-in and
 * digest-neutral; see src/obs/):
 *   --trace-out=PREFIX     write Chrome trace JSON per run to
 *                          PREFIX.<workload>.<config>.json
 *   --heatmap=banks|links  print an ASCII mesh heatmap per run
 *   --explain-placement[=PREFIX]
 *                          write the Eq. 4 placement-explain log per
 *                          run to PREFIX.<workload>.<config>.txt
 *                          (default PREFIX: placement_explain)
 *   --obs-csv=PREFIX       write per-bank / per-link counter CSVs per
 *                          run to PREFIX.{banks,links}.<wl>.<cfg>.csv
 */
struct BenchObs
{
    std::string tracePrefix;
    std::string heatmap;
    std::string explainPrefix;
    std::string csvPrefix;

    static BenchObs parse(int argc, char **argv);

    /** Whether any observability was requested. */
    bool
    any() const
    {
        return !tracePrefix.empty() || !heatmap.empty() ||
               !explainPrefix.empty() || !csvPrefix.empty();
    }

    /** Fill @p rc.obs for the run of @p workload under @p config. */
    void apply(workloads::RunConfig &rc, const std::string &workload,
               const std::string &config) const;

    /** Print heatmaps and write spatial CSVs for every collected run. */
    void report(const Comparison &cmp) const;

    /** Heatmap + CSVs for one run (benches without a Comparison). */
    void reportRun(const workloads::RunResult &run,
                   const std::string &workload,
                   const std::string &config) const;

    /** `PREFIX.<workload>.<config><ext>` with labels made path-safe. */
    static std::string runFile(const std::string &prefix,
                               const std::string &workload,
                               const std::string &config,
                               const std::string &ext);
};

/**
 * Co-run flags shared by multi-tenant benches (see src/tenant/):
 *   --sched=rr|weighted  scheduling policy (validated by the tenant
 *                        layer's parser, so the error message lists
 *                        the valid policies)
 *   --quantum=N          epochs per scheduling quantum
 *   --qos-csv=PREFIX     one QoS CSV per co-run:
 *                        PREFIX.<corun>.<config>.csv
 *   --csv=PATH           one per-tenant comparison CSV across all
 *                        co-runs and configs (writeComparisonCsv)
 * Both `--flag=value` and `--flag value` spellings are accepted.
 */
struct BenchCorun
{
    std::string sched = "rr";
    std::uint32_t quantumEpochs = 8;
    std::string qosPrefix;
    std::string comparisonCsv;

    static BenchCorun parse(int argc, char **argv);
};

} // namespace affalloc::harness

#endif // AFFALLOC_HARNESS_REPORT_HH
