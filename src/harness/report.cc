#include "harness/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "harness/trace.hh"
#include "obs/heatmap.hh"
#include "sim/log.hh"
#include "sim/simcheck.hh"
#include "sim/stats.hh"

namespace affalloc::harness
{

void
Comparison::add(const std::string &workload, std::vector<RunResult> runs)
{
    if (runs.size() != configLabels_.size())
        SIM_FATAL("harness", "comparison row '%s' has %zu runs, expected %zu",
              workload.c_str(), runs.size(), configLabels_.size());
    rows_.push_back(WorkloadResults{workload, std::move(runs)});
}

const RunResult &
Comparison::at(std::size_t w, std::size_t c) const
{
    return rows_.at(w).byConfig.at(c);
}

double
Comparison::speedup(std::size_t w, std::size_t c,
                    std::size_t baseline) const
{
    return double(at(w, baseline).cycles()) / double(at(w, c).cycles());
}

double
Comparison::energyEff(std::size_t w, std::size_t c,
                      std::size_t baseline) const
{
    return at(w, baseline).joules / at(w, c).joules;
}

double
Comparison::hopsNorm(std::size_t w, std::size_t c,
                     std::size_t baseline) const
{
    const double base = double(at(w, baseline).hops());
    return base == 0.0 ? 0.0 : double(at(w, c).hops()) / base;
}

double
Comparison::hopsClassNorm(std::size_t w, std::size_t c,
                          std::size_t baseline, TrafficClass tc) const
{
    const double base = double(at(w, baseline).hops());
    return base == 0.0
               ? 0.0
               : double(at(w, c).stats.hops[int(tc)]) / base;
}

double
Comparison::geomeanSpeedup(std::size_t c, std::size_t baseline) const
{
    std::vector<double> v;
    for (std::size_t w = 0; w < rows_.size(); ++w)
        v.push_back(speedup(w, c, baseline));
    return sim::geomean(v);
}

double
Comparison::geomeanEnergyEff(std::size_t c, std::size_t baseline) const
{
    std::vector<double> v;
    for (std::size_t w = 0; w < rows_.size(); ++w)
        v.push_back(energyEff(w, c, baseline));
    return sim::geomean(v);
}

double
Comparison::meanHops(std::size_t c, std::size_t baseline) const
{
    double sum = 0.0;
    for (std::size_t w = 0; w < rows_.size(); ++w)
        sum += hopsNorm(w, c, baseline);
    return rows_.empty() ? 0.0 : sum / double(rows_.size());
}

bool
Comparison::allValid() const
{
    for (const auto &row : rows_)
        for (const auto &run : row.byConfig)
            if (!run.valid)
                return false;
    return true;
}

void
Comparison::print(const std::string &title, std::size_t speedup_baseline,
                  std::size_t traffic_baseline) const
{
    std::printf("=== %s ===\n", title.c_str());

    // ------------------------------------------------------- speedup
    std::printf("\nSpeedup (normalized to %s):\n%-12s",
                configLabels_[speedup_baseline].c_str(), "");
    for (const auto &row : rows_)
        std::printf(" %10.10s", row.name.c_str());
    std::printf(" %10s\n", "geomean");
    for (std::size_t c = 0; c < configLabels_.size(); ++c) {
        std::printf("%-12s", configLabels_[c].c_str());
        for (std::size_t w = 0; w < rows_.size(); ++w)
            std::printf(" %10.2f", speedup(w, c, speedup_baseline));
        std::printf(" %10.2f\n", geomeanSpeedup(c, speedup_baseline));
    }

    // -------------------------------------------------------- energy
    std::printf("\nEnergy efficiency (normalized to %s):\n%-12s",
                configLabels_[speedup_baseline].c_str(), "");
    for (const auto &row : rows_)
        std::printf(" %10.10s", row.name.c_str());
    std::printf(" %10s\n", "geomean");
    for (std::size_t c = 0; c < configLabels_.size(); ++c) {
        std::printf("%-12s", configLabels_[c].c_str());
        for (std::size_t w = 0; w < rows_.size(); ++w)
            std::printf(" %10.2f", energyEff(w, c, speedup_baseline));
        std::printf(" %10.2f\n", geomeanEnergyEff(c, speedup_baseline));
    }

    // ------------------------------------------------------- traffic
    std::printf("\nNoC hops (normalized to %s; "
                "offload/data/control breakdown):\n%-12s",
                configLabels_[traffic_baseline].c_str(), "");
    for (const auto &row : rows_)
        std::printf(" %16.16s", row.name.c_str());
    std::printf(" %10s\n", "avg");
    for (std::size_t c = 0; c < configLabels_.size(); ++c) {
        std::printf("%-12s", configLabels_[c].c_str());
        for (std::size_t w = 0; w < rows_.size(); ++w) {
            std::printf(" %4.2f=%4.2f+%4.2f+%4.2f",
                        hopsNorm(w, c, traffic_baseline),
                        hopsClassNorm(w, c, traffic_baseline,
                                      TrafficClass::offload),
                        hopsClassNorm(w, c, traffic_baseline,
                                      TrafficClass::data),
                        hopsClassNorm(w, c, traffic_baseline,
                                      TrafficClass::control));
        }
        std::printf(" %10.2f\n", meanHops(c, traffic_baseline));
    }

    // --------------------------------------------------- degradation
    // Printed only when some run actually degraded, so healthy
    // reports are unchanged.
    bool any_degraded = false;
    for (const auto &row : rows_) {
        for (const auto &run : row.byConfig) {
            const sim::Stats &s = run.stats;
            if (s.offlineBanks || s.offloadRetries || s.offloadFallbacks ||
                s.allocFallbacks || s.victimMigrations ||
                s.degradedLinkFlits) {
                any_degraded = true;
                break;
            }
        }
        if (any_degraded)
            break;
    }
    if (any_degraded) {
        std::printf("\nDegradation (faults absorbed per config; "
                    "offline banks are the max across workloads):\n");
        std::printf("%-12s %8s %8s %8s %8s %8s %12s\n", "",
                    "offl.bk", "retries", "offl.fb", "alloc.fb",
                    "migr", "degr.flits");
        for (std::size_t c = 0; c < configLabels_.size(); ++c) {
            std::uint64_t offline = 0, retries = 0, offl_fb = 0,
                          alloc_fb = 0, migr = 0, degr = 0;
            for (std::size_t w = 0; w < rows_.size(); ++w) {
                const sim::Stats &s = at(w, c).stats;
                offline = std::max(offline, s.offlineBanks);
                retries += s.offloadRetries;
                offl_fb += s.offloadFallbacks;
                alloc_fb += s.allocFallbacks;
                migr += s.victimMigrations;
                degr += s.degradedLinkFlits;
            }
            std::printf("%-12s %8llu %8llu %8llu %8llu %8llu %12llu\n",
                        configLabels_[c].c_str(),
                        (unsigned long long)offline,
                        (unsigned long long)retries,
                        (unsigned long long)offl_fb,
                        (unsigned long long)alloc_fb,
                        (unsigned long long)migr,
                        (unsigned long long)degr);
        }
    }

    // --------------------------------------------------- utilization
    std::printf("\nNoC utilization:\n");
    for (std::size_t c = 0; c < configLabels_.size(); ++c) {
        double sum = 0.0;
        for (std::size_t w = 0; w < rows_.size(); ++w)
            sum += at(w, c).nocUtilization;
        std::printf("%-12s %5.1f%%\n", configLabels_[c].c_str(),
                    100.0 * sum / double(rows_.size()));
    }

    std::printf("\nValidation: %s\n\n",
                allValid() ? "all runs produced correct results"
                           : "SOME RUNS FAILED VALIDATION");
}

void
printMachineBanner(const sim::MachineConfig &cfg,
                   const std::string &bench_name)
{
    std::printf("affinity-alloc reproduction | %s\n", bench_name.c_str());
    std::printf("---------------- machine (Table 2) ----------------\n"
                "%s\n"
                "----------------------------------------------------\n\n",
                cfg.toString().c_str());
}

bool
quickMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            return true;
    return false;
}

BenchSimCheck
BenchSimCheck::parse(int argc, char **argv)
{
    BenchSimCheck sc;
    // Honour the env-var opt-in so `AFFALLOC_SIMCHECK=1 ./bench` audits
    // without flag plumbing; flags can only turn checking *on*.
    sc.audit = simcheck::SimCheckConfig::fromEnv().audit;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--simcheck") == 0)
            sc.audit = true;
        else if (std::strcmp(argv[i], "--simcheck-digest") == 0)
            sc.digest = true;
        else if (std::strcmp(argv[i], "--faulty") == 0)
            sc.faulty = true;
    }
    if (sc.audit && !simcheck::compiledIn) {
        std::fprintf(stderr,
                     "warning: --simcheck requested but this binary was "
                     "built with AFFALLOC_SIMCHECK=OFF\n");
    }
    return sc;
}

void
BenchSimCheck::apply(sim::MachineConfig &cfg) const
{
    if (audit)
        cfg.simcheck.audit = true;
    if (faulty) {
        // Canned, seeded campaign: dead banks force spare redirection
        // and victim migration; rejected offloads force retry/backoff
        // and in-core fallback. Deterministic by construction, so the
        // digest must still be reproducible under it.
        cfg.faults.offlineBanks = 2;
        cfg.faults.offloadRejectRate = 0.05;
    }
}

BenchObs
BenchObs::parse(int argc, char **argv)
{
    BenchObs ob;
    const auto value = [](const char *arg, const char *flag) -> const char * {
        const std::size_t n = std::strlen(flag);
        if (std::strncmp(arg, flag, n) == 0 && arg[n] == '=')
            return arg + n + 1;
        return nullptr;
    };
    for (int i = 1; i < argc; ++i) {
        if (const char *v = value(argv[i], "--trace-out"))
            ob.tracePrefix = v;
        else if (const char *h = value(argv[i], "--heatmap"))
            ob.heatmap = h;
        else if (std::strcmp(argv[i], "--explain-placement") == 0)
            ob.explainPrefix = "placement_explain";
        else if (const char *e = value(argv[i], "--explain-placement"))
            ob.explainPrefix = e;
        else if (const char *c = value(argv[i], "--obs-csv"))
            ob.csvPrefix = c;
    }
    if (!ob.heatmap.empty() && ob.heatmap != "banks" &&
        ob.heatmap != "links") {
        SIM_FATAL("harness", "--heatmap=%s: expected 'banks' or 'links'",
                  ob.heatmap.c_str());
    }
    return ob;
}

std::string
BenchObs::runFile(const std::string &prefix, const std::string &workload,
                  const std::string &config, const std::string &ext)
{
    std::string name = prefix + "." + workload + "." + config;
    for (char &ch : name) {
        const bool ok = (ch >= 'a' && ch <= 'z') ||
                        (ch >= 'A' && ch <= 'Z') ||
                        (ch >= '0' && ch <= '9') || ch == '.' ||
                        ch == '_' || ch == '-' || ch == '/';
        if (!ok)
            ch = '-';
    }
    return name + ext;
}

BenchCorun
BenchCorun::parse(int argc, char **argv)
{
    BenchCorun co;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        // Accept both --flag=value and --flag value.
        const auto value = [&](const char *flag) -> std::string {
            const std::size_t n = std::strlen(flag);
            if (a.size() > n && a[n] == '=')
                return a.substr(n + 1);
            if (i + 1 < argc)
                return argv[++i];
            SIM_FATAL("harness", "missing value for %s", flag);
            return {};
        };
        if (a.rfind("--sched", 0) == 0)
            co.sched = value("--sched");
        else if (a.rfind("--quantum", 0) == 0) {
            const std::string v = value("--quantum");
            char *end = nullptr;
            const unsigned long q = std::strtoul(v.c_str(), &end, 10);
            if (v.empty() || *end != '\0' || q == 0)
                SIM_FATAL("harness",
                          "--quantum=%s: expected a positive epoch count",
                          v.c_str());
            co.quantumEpochs = static_cast<std::uint32_t>(q);
        } else if (a.rfind("--qos-csv", 0) == 0)
            co.qosPrefix = value("--qos-csv");
        else if (a == "--csv" || a.rfind("--csv=", 0) == 0)
            co.comparisonCsv = value("--csv");
    }
    return co;
}

void
BenchObs::apply(workloads::RunConfig &rc, const std::string &workload,
                const std::string &config) const
{
    // Heatmaps and CSVs both need the spatial counters collected.
    if (!heatmap.empty() || !csvPrefix.empty())
        rc.obs.metrics = true;
    if (!tracePrefix.empty())
        rc.obs.tracePath = runFile(tracePrefix, workload, config, ".json");
    if (!explainPrefix.empty())
        rc.obs.explainPath =
            runFile(explainPrefix, workload, config, ".txt");
}

void
BenchObs::reportRun(const workloads::RunResult &run,
                    const std::string &workload,
                    const std::string &config) const
{
    const obs::SpatialSnapshot &s = run.obsSnapshot;
    if (s.empty())
        return;
    if (heatmap == "banks") {
        std::fputs(obs::renderBankHeatmap(
                       workload + "/" + config + " L3 accesses per bank",
                       s.bankAccesses, s.bankTile, s.meshX, s.meshY)
                       .c_str(),
                   stdout);
    } else if (heatmap == "links") {
        std::fputs(obs::renderLinkHeatmap(
                       workload + "/" + config + " link flit-hops",
                       s.linkFlits, s.meshX, s.meshY)
                       .c_str(),
                   stdout);
    }
    if (!csvPrefix.empty()) {
        writeBankMetricsCsv(
            run, runFile(csvPrefix + ".banks", workload, config, ".csv"));
        writeLinkMetricsCsv(
            run, runFile(csvPrefix + ".links", workload, config, ".csv"));
    }
}

void
BenchObs::report(const Comparison &cmp) const
{
    if (heatmap.empty() && csvPrefix.empty())
        return;
    for (const auto &row : cmp.rows())
        for (const auto &run : row.byConfig)
            reportRun(run, row.name, run.label);
}

void
BenchSimCheck::printDigests(const Comparison &cmp) const
{
    if (!digest)
        return;
    simcheck::Digest overall;
    for (const auto &row : cmp.rows()) {
        for (const auto &run : row.byConfig) {
            const std::uint64_t d = run.digest();
            std::printf("digest %-12s %-8s %s\n", row.name.c_str(),
                        run.label.c_str(),
                        simcheck::digestToString(d).c_str());
            overall.fold(row.name + "/" + run.label, d);
        }
    }
    std::printf("digest overall %s\n",
                simcheck::digestToString(overall.value()).c_str());
}

} // namespace affalloc::harness
