#include "nsc/machine.hh"

#include <algorithm>
#include <bit>
#include <optional>

#include "mem/address.hh"
#include "sim/log.hh"

namespace affalloc::nsc
{

void
TimingParams::validate() const
{
    if (l3ServiceCycles <= 0.0)
        SIM_FATAL("nsc", "timing: l3ServiceCycles must be positive (%g)",
              l3ServiceCycles);
    if (atomicExtraCycles < 0.0)
        SIM_FATAL("nsc", "timing: atomicExtraCycles must be non-negative (%g)",
              atomicExtraCycles);
    if (coreIssueCycles <= 0.0)
        SIM_FATAL("nsc", "timing: coreIssueCycles must be positive (%g)",
              coreIssueCycles);
    if (coreFlopsPerCycle <= 0.0)
        SIM_FATAL("nsc", "timing: coreFlopsPerCycle must be positive (%g)",
              coreFlopsPerCycle);
    if (seFlopsPerCycle <= 0.0)
        SIM_FATAL("nsc", "timing: seFlopsPerCycle must be positive (%g)",
              seFlopsPerCycle);
    if (epochOverheadCycles < 0.0)
        SIM_FATAL("nsc", "timing: epochOverheadCycles must be non-negative (%g)",
              epochOverheadCycles);
    if (coreMaxMlp <= 0.0)
        SIM_FATAL("nsc", "timing: coreMaxMlp must be positive (%g); zero would "
              "divide irregular-access occupancy by zero",
              coreMaxMlp);
}

Machine::Machine(const sim::MachineConfig &cfg, os::SimOS &os,
                 TimingParams tp)
    : cfg_(cfg), tp_(tp), os_(os), net_(cfg, stats_),
      mapper_(cfg, os.iot(), &os.faultPlan()),
      dram_(cfg, net_.mesh(), stats_),
      bankBusy_(cfg.numBanks(), 0.0), coreBusy_(cfg.numTiles(), 0.0),
      seBusy_(cfg.numBanks(), 0.0), epochAtomics_(cfg.numBanks(), 0)
{
    cfg_.validate();
    tp_.validate();
    net_.setReferenceMode(cfg.referencePaths);
    addrSpace_.setReferenceMode(cfg.referencePaths);
    net_.setFaultPlan(&os_.faultPlan());
    stats_.offlineBanks = os_.faultPlan().numOfflineBanks();
    // Bank numbering (§4.1): where bank id b physically sits.
    bankTile_.resize(cfg.numBanks());
    const auto &mesh = net_.mesh();
    for (BankId b = 0; b < cfg.numBanks(); ++b) {
        switch (cfg.bankNumbering) {
          case sim::BankNumbering::rowMajor:
            bankTile_[b] = b;
            break;
          case sim::BankNumbering::snake: {
            const std::uint32_t y = b / cfg.meshX;
            std::uint32_t x = b % cfg.meshX;
            if (y % 2 == 1)
                x = cfg.meshX - 1 - x;
            bankTile_[b] = mesh.tileAt(x, y);
            break;
          }
          case sim::BankNumbering::block2: {
            const std::uint32_t block = b / 4;
            const std::uint32_t within = b % 4;
            const std::uint32_t per_row = cfg.meshX / 2;
            const std::uint32_t bx = block % per_row;
            const std::uint32_t by = block / per_row;
            bankTile_[b] =
                mesh.tileAt(bx * 2 + within % 2, by * 2 + within / 2);
            break;
          }
        }
    }
    l3Banks_.reserve(cfg.numBanks());
    for (std::uint32_t b = 0; b < cfg.numBanks(); ++b)
        l3Banks_.emplace_back(cfg.l3BankSizeBytes, cfg.l3Assoc,
                              cfg.lineSize, /*hashed_index=*/true);
    l1_.reserve(cfg.numTiles());
    l2_.reserve(cfg.numTiles());
    for (std::uint32_t c = 0; c < cfg.numTiles(); ++c) {
        l1_.emplace_back(cfg.l1SizeBytes, cfg.l1Assoc, cfg.lineSize);
        l2_.emplace_back(cfg.l2SizeBytes, cfg.l2Assoc, cfg.lineSize);
        // TLBs track page-number tags: unit "line size" with the
        // entry count as the capacity.
        l1Tlb_.emplace_back(cfg.l1TlbEntries, cfg.l1TlbAssoc, 1);
        l2Tlb_.emplace_back(cfg.l2TlbEntries, 16, 1);
    }
    seTlb_.reserve(cfg.numBanks());
    for (std::uint32_t b = 0; b < cfg.numBanks(); ++b)
        seTlb_.emplace_back(cfg.seTlbEntries, 16, 1, true);

    auditor_.setEnabled(cfg_.simcheck.audit);
    auditor_.setPeriodEpochs(cfg_.simcheck.auditPeriodEpochs);
    watchdog_.setLimit(cfg_.simcheck.watchdogStallEpochs);
    auditor_.registerCheck("noc", "flit-conservation",
                           [this](simcheck::CheckContext &ctx) {
                               net_.auditConservation(ctx);
                           });
    auditor_.registerCheck("mem", "cache-integrity",
                           [this](simcheck::CheckContext &ctx) {
                               auditCaches(ctx);
                           });
    auditor_.registerCheck("mem", "mapping-consistency",
                           [this](simcheck::CheckContext &ctx) {
                               auditMapping(ctx);
                           });
    auditor_.registerCheck("traffic", "class-conservation",
                           [this](simcheck::CheckContext &ctx) {
                               // The per-class side counters and their
                               // snapshot only move together in the
                               // attribution flush, so the class slices
                               // must always sum to exactly the
                               // attributed total — no charge may leak
                               // out of (or be double-counted into) a
                               // class.
                               for (const auto &ref : sim::statsCounters()) {
                                   std::uint64_t sum = 0;
                                   for (int c = 0; c < numAgentClasses; ++c)
                                       sum += ref.get(classStats_[c]);
                                   const std::uint64_t want =
                                       ref.get(classAttribSnap_);
                                   if (sum != want) {
                                       ctx.failf(
                                           "per-class %s sums to %llu, "
                                           "attributed total is %llu",
                                           ref.name,
                                           (unsigned long long)sum,
                                           (unsigned long long)want);
                                       return;
                                   }
                               }
                           });
}

void
Machine::setActiveClass(AgentClass c)
{
    // Flush everything charged since the last flush to the class that
    // was active while it accrued, then switch.
    classStats_[static_cast<int>(activeClass_)] +=
        stats_ - classAttribSnap_;
    classAttribSnap_ = stats_;
    if (c != activeClass_) {
        activeClass_ = c;
        refreshArbScale();
    }
}

void
Machine::setPresentClasses(std::uint32_t mask)
{
    SIM_REQUIRE("nsc", mask != 0 &&
                mask < (1u << numAgentClasses),
                "present-class mask %#x invalid", mask);
    presentClasses_ = mask;
    refreshArbScale();
}

void
Machine::refreshArbScale()
{
    arbScale_ = 1.0;
    const int a = static_cast<int>(activeClass_);
    if (!(presentClasses_ & (1u << a)))
        return;
    int present = 0;
    for (int c = 0; c < numAgentClasses; ++c)
        if (presentClasses_ & (1u << c))
            ++present;
    if (present <= 1)
        return;
    const sim::ClassArbConfig &arb = cfg_.classArb;
    switch (arb.mode) {
      case sim::ClassArbMode::none:
        break;
      case sim::ClassArbMode::partition: {
        // Fluid weighted round-robin: a class holding share s out of
        // the present total serves its queue at s/total speed, so its
        // occupancy stretches by total/s.
        double total = 0.0;
        for (int c = 0; c < numAgentClasses; ++c)
            if (presentClasses_ & (1u << c))
                total += arb.share[c];
        arbScale_ = total / arb.share[a];
        break;
      }
      case sim::ClassArbMode::priority: {
        // Strict priority by class order: each higher-priority class
        // present steals yieldPenalty of this class's queue time.
        int higher = 0;
        for (int c = 0; c < a; ++c)
            if (presentClasses_ & (1u << c))
                ++higher;
        arbScale_ = 1.0 + arb.yieldPenalty * higher;
        break;
      }
    }
}

void
Machine::attachObserver(obs::Observer *o)
{
    obs_ = o;
    metrics_ = o ? o->metrics() : nullptr;
    tracer_ = o ? o->tracer() : nullptr;
    if (metrics_) {
        metrics_->init(cfg_.meshX, cfg_.meshY, bankTile_,
                       net_.mesh().numLinks());
    }
}

Cycles
Machine::coreTranslate(CoreId core, Addr vaddr)
{
    // Interleave pools are backed by contiguous physical segments
    // (direct-segment style, §4.1): translation is a base+offset
    // range check with no TLB involvement.
    if (vaddr >= mem::poolVirtBase)
        return 0;
    const Addr vpage = mem::pageOf(vaddr);
    stats_.tlbAccesses += 1;
    if (l1Tlb_[core].access(vpage, false).hit)
        return 0;
    if (l2Tlb_[core].access(vpage, false).hit)
        return cfg_.tlbLatency;
    stats_.tlbWalks += 1;
    return cfg_.tlbLatency + cfg_.tlbWalkLatency;
}

Cycles
Machine::seTranslate(BankId bank, Addr vaddr)
{
    if (vaddr >= mem::poolVirtBase)
        return 0; // direct-segment pool translation (§4.1)
    const Addr vpage = mem::pageOf(vaddr);
    stats_.tlbAccesses += 1;
    if (seTlb_[bank].access(vpage, false).hit)
        return 0;
    stats_.tlbWalks += 1;
    return cfg_.tlbLatency + cfg_.tlbWalkLatency;
}

BankId
Machine::bankOfHost(const void *p) const
{
    return bankOfSim(addrSpace_.simAddrOf(p));
}

void
Machine::beginEpoch(bool deferrable)
{
    std::fill(bankBusy_.begin(), bankBusy_.end(), 0.0);
    std::fill(coreBusy_.begin(), coreBusy_.end(), 0.0);
    std::fill(seBusy_.begin(), seBusy_.end(), 0.0);
    std::fill(epochAtomics_.begin(), epochAtomics_.end(), 0u);
    bankBusyMax_ = 0.0;
    coreBusyMax_ = 0.0;
    seBusyMax_ = 0.0;
    net_.resetEpoch();
    dram_.resetEpoch();
    epochStartStats_ = stats_;
    inEpoch_ = true;
    epochProfT0_ = prof::nowNsIfEnabled();
    deferActive_ = deferrable && cfg_.simThreads > 1;
    if (deferActive_) {
        if (!log_) {
            log_ = std::make_unique<EpochLog>();
            log_->init(cfg_.numBanks(), cfg_.numTiles());
        }
        log_->clear();
    }
}

void
Machine::abortEpoch()
{
    if (!inEpoch_)
        return;
    if (epochProfT0_) {
        prof::addTimed("machine/epoch.record", prof::nowNs() - epochProfT0_);
        epochProfT0_ = 0;
    }
    // A deferred epoch still replays its bank events: classic inline
    // execution would already have moved the L3/SE-TLB state and the
    // lifetime NoC counters, and abortEpoch() deliberately keeps those
    // (only the Stats counters rewind). Wave two is skipped — the busy
    // accumulators are wiped right below.
    if (deferActive_)
        replayDeferred(/*commit=*/false);
    // The restore rewinds every counter to the beginEpoch() snapshot;
    // carry the abort count itself across it so degradation stays
    // observable.
    const std::uint64_t aborted = stats_.abortedEpochs + 1;
    stats_ = epochStartStats_;
    stats_.abortedEpochs = aborted;
    // The rewind can only move counters back toward (never below) the
    // last attribution snapshot — snapshots are taken outside open
    // epochs — so attributing the post-restore delta keeps the
    // per-class slices conserved.
    classStats_[static_cast<int>(activeClass_)] +=
        stats_ - classAttribSnap_;
    classAttribSnap_ = stats_;
    std::fill(bankBusy_.begin(), bankBusy_.end(), 0.0);
    std::fill(coreBusy_.begin(), coreBusy_.end(), 0.0);
    std::fill(seBusy_.begin(), seBusy_.end(), 0.0);
    std::fill(epochAtomics_.begin(), epochAtomics_.end(), 0u);
    bankBusyMax_ = 0.0;
    coreBusyMax_ = 0.0;
    seBusyMax_ = 0.0;
    net_.resetEpoch();
    dram_.resetEpoch();
    inEpoch_ = false;
    if (tracer_)
        tracer_->machineInstant("epoch-abort", stats_.cycles, "");
}

Cycles
Machine::endEpoch(double latency_floor, const std::string &phase)
{
    // Close the record phase before replay starts so "record" and
    // "replay" partition the epoch's host time cleanly.
    if (epochProfT0_) {
        prof::addTimed("machine/epoch.record", prof::nowNs() - epochProfT0_);
        epochProfT0_ = 0;
    }
    if (deferActive_)
        replayDeferred(/*commit=*/true);
    // The busy maxima are maintained at charge time (and by the replay
    // barrier), so closing the epoch no longer rescans every per-bank
    // accumulator and link counter. Class arbitration stretches only
    // the bank and link terms (the shared queues classes contend on);
    // the guard keeps single-class runs on the exact classic
    // arithmetic.
    double bankTerm = bankBusyMax_;
    double linkTerm = static_cast<double>(net_.maxLinkFlits());
    if (arbScale_ != 1.0) {
        bankTerm *= arbScale_;
        linkTerm *= arbScale_;
    }
    double busiest = latency_floor;
    busiest = std::max(busiest, bankTerm);
    busiest = std::max(busiest, coreBusyMax_);
    busiest = std::max(busiest, seBusyMax_);
    busiest = std::max(busiest, linkTerm);
    busiest = std::max(busiest, dram_.maxChannelBusy());

    const Cycles duration =
        static_cast<Cycles>(busiest + tp_.epochOverheadCycles);
    stats_.cycles += duration;
    stats_.epochs += 1;
    // Cleared before the watchdog/audit throw points below: once the
    // clock has advanced the epoch is committed, and a later
    // abortEpoch() must not rewind it.
    inEpoch_ = false;

    // Attribute the epoch's charges (including its duration) to the
    // active class before the audit below checks conservation.
    classStats_[static_cast<int>(activeClass_)] +=
        stats_ - classAttribSnap_;
    classAttribSnap_ = stats_;

    sim::EpochRecord rec;
    rec.endCycle = stats_.cycles;
    rec.atomicStreamsPerBank.assign(epochAtomics_.begin(),
                                    epochAtomics_.end());
    rec.phase = phase;
    timeline_.record(std::move(rec));

    if (metrics_) {
        metrics_->endEpoch(stats_.cycles, bankBusy_, net_.maxLinkFlits(),
                           net_.epochFlits());
    }
    if (tracer_) {
        tracer_->epochSpan(phase, stats_.cycles - duration, duration,
                           stats_.epochs);
    }

    // Livelock watchdog: an epoch counts as stalled when no *work*
    // counter moved. NoC messages deliberately do not count — an
    // offload NACK-retry storm generates plenty of traffic while
    // making zero forward progress, which is exactly the livelock
    // shape this exists to catch.
    const sim::Stats &pre = epochStartStats_;
    const bool progress =
        stats_.coreOps != pre.coreOps || stats_.seOps != pre.seOps ||
        stats_.atomicOps != pre.atomicOps ||
        stats_.l1Accesses != pre.l1Accesses ||
        stats_.l3Accesses != pre.l3Accesses ||
        stats_.dramAccesses != pre.dramAccesses ||
        stats_.streamConfigs != pre.streamConfigs ||
        stats_.streamMigrations != pre.streamMigrations;
    if (watchdog_.observe(progress)) {
        throw simcheck::LivelockError(detail::formatMessage(
            "panic: [nsc] livelock watchdog: %u consecutive epochs with no "
            "forward progress (cycle %llu, epoch %llu, offload retries this "
            "epoch %llu, offline banks %llu/%u); aborting instead of "
            "spinning",
            watchdog_.stalledEpochs(),
            static_cast<unsigned long long>(stats_.cycles),
            static_cast<unsigned long long>(stats_.epochs),
            static_cast<unsigned long long>(stats_.offloadRetries -
                                            pre.offloadRetries),
            static_cast<unsigned long long>(stats_.offlineBanks),
            cfg_.numBanks()));
    }

    {
        PROF_SCOPE("machine/epoch.audit");
        auditor_.onEpochEnd(stats_.epochs);
    }
    prof::rssEpochTick();
    prof::progressTick(stats_.epochs, stats_.cycles);
    if (epochHook_)
        epochHook_();
    return duration;
}

void
Machine::auditCaches(simcheck::CheckContext &ctx) const
{
    const auto check = [&ctx](const char *what, std::size_t idx,
                              const mem::CacheModel &c) {
        const std::string err = c.checkIntegrity();
        if (!err.empty())
            ctx.failf("%s[%zu]: %s", what, idx, err.c_str());
    };
    for (std::size_t b = 0; b < l3Banks_.size(); ++b)
        check("l3", b, l3Banks_[b]);
    for (std::size_t c = 0; c < l1_.size(); ++c)
        check("l1", c, l1_[c]);
    for (std::size_t c = 0; c < l2_.size(); ++c)
        check("l2", c, l2_[c]);
    for (std::size_t c = 0; c < l1Tlb_.size(); ++c)
        check("l1tlb", c, l1Tlb_[c]);
    for (std::size_t c = 0; c < l2Tlb_.size(); ++c)
        check("l2tlb", c, l2Tlb_[c]);
    for (std::size_t b = 0; b < seTlb_.size(); ++b)
        check("setlb", b, seTlb_[b]);
}

void
Machine::auditMapping(simcheck::CheckContext &ctx) const
{
    const auto &pt = os_.pageTable();
    const auto &iot = os_.iot();
    const sim::FaultPlan &plan = os_.faultPlan();

    // IOT entries must never overlap; hardware would pick one
    // nondeterministically.
    for (std::size_t i = 0; i < iot.size(); ++i) {
        for (std::size_t j = i + 1; j < iot.size(); ++j) {
            const mem::IotEntry &a = iot.entry(i);
            const mem::IotEntry &b = iot.entry(j);
            if (a.start < b.end && b.start < a.end) {
                ctx.failf("IOT entries %zu and %zu overlap "
                          "([%llx,%llx) vs [%llx,%llx))",
                          i, j, (unsigned long long)a.start,
                          (unsigned long long)a.end,
                          (unsigned long long)b.start,
                          (unsigned long long)b.end);
            }
        }
    }

    // One sampled page: translation, IOT coverage, Eq. 1 bank.
    const auto checkPage = [&](const char *what, int k, Addr vaddr,
                               std::optional<Addr> expect_pa,
                               std::uint32_t expect_intrlv) {
        const std::optional<Addr> pa = pt.tryTranslate(vaddr);
        if (!pa) {
            ctx.failf("%s %d: vaddr %llx inside brk but unmapped", what, k,
                      (unsigned long long)vaddr);
            return;
        }
        if (expect_pa && *pa != *expect_pa) {
            ctx.failf("%s %d: vaddr %llx maps to %llx, expected contiguous "
                      "backing at %llx",
                      what, k, (unsigned long long)vaddr,
                      (unsigned long long)*pa,
                      (unsigned long long)*expect_pa);
            return;
        }
        const mem::IotEntry *e = iot.lookup(*pa);
        if (!e) {
            ctx.failf("%s %d: paddr %llx not covered by any IOT entry",
                      what, k, (unsigned long long)*pa);
            return;
        }
        if (e->intrlv != expect_intrlv) {
            ctx.failf("%s %d: IOT interleave %u != %u the OS installed "
                      "(stale entry)",
                      what, k, e->intrlv, expect_intrlv);
            return;
        }
        const BankId raw = e->bankOf(*pa, cfg_.numBanks());
        const BankId expect = plan.redirect(raw);
        const BankId got = mapper_.bankOf(*pa);
        if (got != expect) {
            ctx.failf("%s %d: paddr %llx homed at bank %u, Eq. 1 predicts "
                      "%u (redirected from %u)",
                      what, k, (unsigned long long)*pa, got, expect, raw);
        }
    };

    for (std::uint32_t arena = 0; arena < os_.numArenas(); ++arena) {
        for (int k = 0; k < mem::numInterleavePools; ++k) {
            const Addr brk = os_.poolBrkOf(k, arena);
            if (brk == 0)
                continue;
            const Addr vbase = os_.poolVirtBaseOf(k, arena);
            const Addr pbase = mem::poolPhysBase +
                               Addr(k) * mem::terabyte +
                               Addr(arena) * mem::arenaStride;
            const Addr pages = mem::pageOf(brk + mem::pageSize - 1);
            const Addr stride = std::max<Addr>(1, pages / 32);
            for (Addr pg = 0; pg < pages; pg += stride) {
                checkPage("pool", k, vbase + pg * mem::pageSize,
                          pbase + pg * mem::pageSize,
                          mem::poolInterleave(k));
            }
            checkPage("pool", k, vbase + (pages - 1) * mem::pageSize,
                      pbase + (pages - 1) * mem::pageSize,
                      mem::poolInterleave(k));
        }
    }

    const Addr lpages = os_.largeBrkPages();
    if (lpages != 0) {
        const Addr stride = std::max<Addr>(1, lpages / 32);
        for (Addr pg = 0; pg < lpages; pg += stride) {
            checkPage("page-at-bank", 0, mem::largeVirtBase +
                      pg * mem::pageSize, std::nullopt,
                      static_cast<std::uint32_t>(mem::pageSize));
        }
    }
}

Cycles
Machine::probeL3Line(BankId home, Addr pline, bool is_write, bool &out_hit)
{
    stats_.l3Accesses += 1;
    chargeBankBusy(home, tp_.l3ServiceCycles);
    const auto res = l3Banks_[home].access(pline, is_write);
    out_hit = res.hit;
    if (metrics_)
        metrics_->bankAccess(home, res.hit);
    Cycles extra = 0;
    if (!res.hit) {
        stats_.l3Misses += 1;
        const std::uint32_t ch = dram_.channelOf(pline);
        const TileId ctrl = dram_.controllerTile(ch);
        extra += net_.send(bankTile_[home], ctrl, tp_.controlBytes,
                           TrafficClass::control);
        extra += dram_.access(pline, is_write);
        extra += net_.send(ctrl, bankTile_[home],
                           cfg_.lineSize + tp_.controlBytes,
                           TrafficClass::data);
    }
    if (res.writeback) {
        // Dirty victim travels to its DRAM controller off the
        // critical path.
        const std::uint32_t ch = dram_.channelOf(res.victimLine);
        const TileId ctrl = dram_.controllerTile(ch);
        net_.send(bankTile_[home], ctrl,
                  cfg_.lineSize + tp_.controlBytes, TrafficClass::data);
        dram_.access(res.victimLine, true);
    }
    return extra;
}

Cycles
Machine::ioWrite(TileId ingress, Addr vaddr, std::uint32_t bytes)
{
    SIM_REQUIRE("nsc", !deferActive_,
                "ioWrite is not supported inside deferred epochs "
                "(I/O injector epochs must be classic)");
    SIM_REQUIRE("nsc", ingress < cfg_.numTiles(),
                "I/O ingress tile %u outside the %u-tile mesh", ingress,
                cfg_.numTiles());
    Cycles total = 0;
    const Addr first = vaddr / cfg_.lineSize;
    const Addr last = (vaddr + bytes - 1) / cfg_.lineSize;
    for (Addr vline = first; vline <= last; ++vline) {
        // Device-side translation (IOMMU/direct segment): no core TLB
        // is charged; the pool segments translate by range check.
        const Addr paddr =
            os_.pageTable().translate(vline * cfg_.lineSize);
        const Addr pline = paddr / cfg_.lineSize;

        if (cfg_.llcIoPolicy == sim::LlcIoPolicy::bypass) {
            // Straight to DRAM: the LLC never sees the line, so tenant
            // occupancy is untouched.
            const std::uint32_t ch = dram_.channelOf(pline);
            const TileId ctrl = dram_.controllerTile(ch);
            total += net_.send(ingress, ctrl,
                               cfg_.lineSize + tp_.controlBytes,
                               TrafficClass::data);
            total += dram_.access(pline, true);
            continue;
        }

        // DDIO-style allocate into the line's home L3 bank. A write
        // allocation needs no DRAM fill (the device supplies the full
        // line); only dirty victims travel to memory.
        const BankId home = mapper_.bankOf(paddr);
        total += net_.send(ingress, bankTile_[home],
                           cfg_.lineSize + tp_.controlBytes,
                           TrafficClass::data);
        stats_.l3Accesses += 1;
        chargeBankBusy(home, tp_.l3ServiceCycles);
        const auto res =
            cfg_.llcIoPolicy == sim::LlcIoPolicy::wayRestrict
                ? l3Banks_[home].accessCapped(pline, true, cfg_.llcIoWays)
                : l3Banks_[home].access(pline, true);
        if (metrics_)
            metrics_->bankAccess(home, res.hit);
        if (!res.hit)
            stats_.l3Misses += 1;
        total += cfg_.l3Latency;
        if (res.writeback) {
            const std::uint32_t ch = dram_.channelOf(res.victimLine);
            const TileId ctrl = dram_.controllerTile(ch);
            net_.send(bankTile_[home], ctrl,
                      cfg_.lineSize + tp_.controlBytes,
                      TrafficClass::data);
            dram_.access(res.victimLine, true);
        }
    }
    return total;
}

AccessOutcome
Machine::coreAccess(CoreId core, Addr vaddr, std::uint32_t bytes,
                    AccessType type, bool prefetch_friendly)
{
    if (deferActive_)
        return coreAccessDeferred(core, vaddr, bytes, type,
                                  prefetch_friendly);
    AccessOutcome out;
    out.servedBy = 1;
    const Addr first = vaddr / cfg_.lineSize;
    const Addr last = (vaddr + bytes - 1) / cfg_.lineSize;
    const bool is_write = type != AccessType::read;

    for (Addr vline = first; vline <= last; ++vline) {
        chargeCoreBusy(core, tp_.coreIssueCycles);

        if (type != AccessType::atomic) {
            // L1 probe (virtually indexed model).
            stats_.l1Accesses += 1;
            const auto r1 = l1_[core].access(vline, is_write);
            if (r1.writeback) {
                stats_.l2Accesses += 1;
                l2_[core].access(r1.victimLine, true);
            }
            if (r1.hit) {
                out.latency += cfg_.l1Latency;
                continue;
            }
            stats_.l1Misses += 1;

            // L2 probe.
            stats_.l2Accesses += 1;
            const auto r2 = l2_[core].access(vline, is_write);
            if (r2.hit) {
                out.latency += cfg_.l1Latency + cfg_.l2Latency;
                out.servedBy = std::max(out.servedBy, 2);
                if (r2.writeback) {
                    // L2 victim writes back to its home L3 bank.
                    const Addr wb_p =
                        os_.pageTable().translate(r2.victimLine *
                                                  cfg_.lineSize);
                    const BankId wb_home = mapper_.bankOf(wb_p);
                    net_.send(core, bankTile_[wb_home],
                              cfg_.lineSize + tp_.controlBytes,
                              TrafficClass::data);
                    bool dummy = false;
                    probeL3Line(wb_home, wb_p / cfg_.lineSize, true,
                                dummy);
                }
                continue;
            }
            stats_.l2Misses += 1;
            if (r2.writeback) {
                const Addr wb_p = os_.pageTable().translate(
                    r2.victimLine * cfg_.lineSize);
                const BankId wb_home = mapper_.bankOf(wb_p);
                net_.send(core, bankTile_[wb_home],
                          cfg_.lineSize + tp_.controlBytes,
                          TrafficClass::data);
                bool dummy = false;
                probeL3Line(wb_home, wb_p / cfg_.lineSize, true, dummy);
            }
        }

        // Go to the home L3 bank over the NoC; translation happens
        // here (L1/L2 are virtually indexed in this model).
        const Cycles tlb_lat = coreTranslate(core, vline * cfg_.lineSize);
        const Addr paddr = os_.pageTable().translate(vline * cfg_.lineSize);
        const Addr pline = paddr / cfg_.lineSize;
        const BankId home = mapper_.bankOf(paddr);
        out.bank = home;

        Cycles lat = tlb_lat;
        lat += net_.send(core, bankTile_[home], tp_.controlBytes,
                         TrafficClass::control);
        bool hit = false;
        lat += cfg_.l3Latency;
        lat += probeL3Line(home, pline, is_write, hit);
        out.servedBy = std::max(out.servedBy, hit ? 3 : 4);

        if (type == AccessType::atomic) {
            // RMW performed at the directory/L3; small response plus
            // an invalidation message to a sharer (coherence cost).
            stats_.atomicOps += 1;
            if (metrics_)
                metrics_->bankAtomic(home);
            chargeBankBusy(home, tp_.atomicExtraCycles);
            lat += net_.send(bankTile_[home], core, tp_.controlBytes,
                             TrafficClass::control);
            net_.send(bankTile_[home], core, tp_.controlBytes,
                      TrafficClass::control);
        } else {
            lat += net_.send(bankTile_[home], core,
                             cfg_.lineSize + tp_.controlBytes,
                             TrafficClass::data);
        }
        out.latency += cfg_.l1Latency + cfg_.l2Latency + lat;
        if (!prefetch_friendly) {
            // Irregular L2 miss: the core can only hide coreMaxMlp of
            // these, so sustained throughput is latency / MLP.
            chargeCoreBusy(core,
                           double(cfg_.l1Latency + cfg_.l2Latency + lat) /
                               tp_.coreMaxMlp);
        }
    }
    return out;
}

void
Machine::coreCompute(CoreId core, double flops)
{
    stats_.coreOps += static_cast<std::uint64_t>(flops);
    if (deferActive_) {
        recordCoreBusy(core, flops / tp_.coreFlopsPerCycle);
        return;
    }
    chargeCoreBusy(core, flops / tp_.coreFlopsPerCycle);
}

AccessOutcome
Machine::l3StreamAccess(BankId requester, Addr vaddr, std::uint32_t bytes,
                        AccessType type)
{
    if (deferActive_)
        return l3StreamAccessDeferred(requester, vaddr, bytes, type);
    AccessOutcome out;
    out.servedBy = 3;
    const Addr first = vaddr / cfg_.lineSize;
    const Addr last = (vaddr + bytes - 1) / cfg_.lineSize;
    const bool is_write = type != AccessType::read;

    for (Addr vline = first; vline <= last; ++vline) {
        const Cycles tlb_lat =
            seTranslate(requester, vline * cfg_.lineSize);
        const Addr paddr = os_.pageTable().translate(vline * cfg_.lineSize);
        const Addr pline = paddr / cfg_.lineSize;
        const BankId home = mapper_.bankOf(paddr);
        out.bank = home;

        Cycles lat = tlb_lat;
        const bool remote = home != requester;
        if (remote) {
            // Indirect request to the home bank.
            lat += net_.send(bankTile_[requester], bankTile_[home],
                             is_write && type != AccessType::atomic
                                 ? std::min<std::uint32_t>(bytes,
                                                           cfg_.lineSize) +
                                       tp_.controlBytes
                                 : tp_.controlBytes,
                             type == AccessType::atomic
                                 ? TrafficClass::control
                                 : (is_write ? TrafficClass::data
                                             : TrafficClass::control));
        }
        bool hit = false;
        lat += cfg_.l3Latency;
        lat += probeL3Line(home, pline, is_write, hit);
        out.servedBy = std::max(out.servedBy, hit ? 3 : 4);

        if (type == AccessType::atomic) {
            stats_.atomicOps += 1;
            if (metrics_)
                metrics_->bankAtomic(home);
            chargeBankBusy(home, tp_.atomicExtraCycles);
            noteAtomicStream(home);
            if (remote) {
                lat += net_.send(bankTile_[home], bankTile_[requester],
                                 tp_.controlBytes,
                                 TrafficClass::control);
            }
        } else if (remote) {
            if (!is_write) {
                const std::uint32_t resp =
                    std::min<std::uint32_t>(bytes, cfg_.lineSize);
                lat += net_.send(bankTile_[home], bankTile_[requester],
                                 resp + tp_.controlBytes,
                                 TrafficClass::data);
            } else {
                // Write ack.
                lat += net_.send(bankTile_[home], bankTile_[requester],
                                 tp_.controlBytes,
                                 TrafficClass::control);
            }
        }
        out.latency += lat;
    }
    return out;
}

Cycles
Machine::forwardData(BankId from, BankId to, std::uint32_t bytes)
{
    // Streaming a buffered line into/out of the SE's FIFO is cheap
    // relative to a tag+data bank access.
    chargeBankBusy(from, 0.25);
    chargeBankBusy(to, 0.25);
    if (deferActive_) {
        recordSend(to, bankTile_[from], bankTile_[to], bytes,
                   TrafficClass::data);
        return net_.latencyOf(bankTile_[from], bankTile_[to], bytes);
    }
    return net_.send(bankTile_[from], bankTile_[to], bytes,
                     TrafficClass::data);
}

Cycles
Machine::migrateStream(BankId from, BankId to)
{
    stats_.streamMigrations += 1;
    if (deferActive_) {
        recordSend(to, bankTile_[from], bankTile_[to], tp_.migrateBytes,
                   TrafficClass::offload);
        return net_.latencyOf(bankTile_[from], bankTile_[to],
                              tp_.migrateBytes);
    }
    return net_.send(bankTile_[from], bankTile_[to], tp_.migrateBytes,
                     TrafficClass::offload);
}

Cycles
Machine::configStream(CoreId core, BankId first_bank)
{
    stats_.streamConfigs += 1;
    if (deferActive_) {
        recordSend(first_bank, core, bankTile_[first_bank],
                   tp_.configBytes, TrafficClass::offload);
        return net_.latencyOf(core, bankTile_[first_bank],
                              tp_.configBytes);
    }
    return net_.send(core, bankTile_[first_bank], tp_.configBytes,
                     TrafficClass::offload);
}

void
Machine::injectBankFault(BankId b)
{
    if (b >= cfg_.numBanks())
        SIM_FATAL("nsc", "injectBankFault: bank %u out of range", b);
    if (os_.faultPlan().offlineBank(b)) {
        stats_.offlineBanks += 1;
        if (tracer_) {
            tracer_->machineInstant(
                "bank-fault", stats_.cycles,
                detail::formatMessage("\"bank\":%u", b));
        }
        // The bank's cached lines are gone; future accesses to its
        // lines miss at the spare and refill from DRAM.
        l3Banks_[b].reset();
    }
}

void
Machine::injectLinkDegrade(std::uint32_t link, std::uint32_t factor)
{
    if (os_.faultPlan().degradeLink(link, factor) && tracer_) {
        tracer_->machineInstant(
            "link-degrade", stats_.cycles,
            detail::formatMessage("\"link\":%u,\"factor\":%u", link,
                                  factor));
    }
}

void
Machine::injectNackStorm(std::uint32_t permille)
{
    if (permille > 1000)
        SIM_FATAL("nsc", "injectNackStorm: rate %u permille outside 0..1000",
                  permille);
    os_.faultPlan().setOffloadRejectRate(permille / 1000.0);
    if (tracer_) {
        tracer_->machineInstant(
            "nack-storm", stats_.cycles,
            detail::formatMessage("\"permille\":%u", permille));
    }
}

void
Machine::advanceIdle(Cycles cycles)
{
    stats_.cycles += cycles;
}

Cycles
Machine::offloadNack(CoreId core, BankId bank)
{
    stats_.offloadRetries += 1;
    if (tracer_) {
        tracer_->machineInstant(
            "offload-nack", stats_.cycles,
            detail::formatMessage("\"core\":%u,\"bank\":%u", core, bank));
    }
    if (deferActive_) {
        recordSend(bank, core, bankTile_[bank], tp_.configBytes,
                   TrafficClass::offload);
        recordSend(bank, bankTile_[bank], core, tp_.controlBytes,
                   TrafficClass::control);
        return net_.latencyOf(core, bankTile_[bank], tp_.configBytes) +
               net_.latencyOf(bankTile_[bank], core, tp_.controlBytes);
    }
    Cycles lat = net_.send(core, bankTile_[bank], tp_.configBytes,
                           TrafficClass::offload);
    lat += net_.send(bankTile_[bank], core, tp_.controlBytes,
                     TrafficClass::control);
    return lat;
}

void
Machine::creditMessage(CoreId core, BankId bank)
{
    if (deferActive_) {
        recordSend(bank, core, bankTile_[bank], tp_.controlBytes,
                   TrafficClass::control);
        return;
    }
    net_.send(core, bankTile_[bank], tp_.controlBytes,
              TrafficClass::control);
}

void
Machine::seCompute(BankId bank, double flops)
{
    stats_.seOps += static_cast<std::uint64_t>(flops);
    if (metrics_)
        metrics_->bankSeOps(bank, static_cast<std::uint64_t>(flops));
    chargeSeBusy(bank, flops / tp_.seFlopsPerCycle);
}

void
Machine::noteAtomicStream(BankId bank)
{
    epochAtomics_[bank] += 1;
    if (metrics_)
        metrics_->bankStreamNote(bank);
}

double
Machine::nocUtilization() const
{
    if (stats_.cycles == 0)
        return 0.0;
    const auto &mesh = net_.mesh();
    const std::uint64_t real_links =
        2ull * (mesh.xDim() - 1) * mesh.yDim() +
        2ull * mesh.xDim() * (mesh.yDim() - 1);
    std::uint64_t flits = 0;
    const auto &lifetime = net_.lifetimeLinkFlits();
    // Only mesh links count toward utilization (the tail entries are
    // the endpoint local ports).
    for (std::uint32_t l = 0; l < mesh.numLinks(); ++l)
        flits += lifetime[l];
    return static_cast<double>(flits) /
           (static_cast<double>(real_links) *
            static_cast<double>(stats_.cycles));
}

void
Machine::preloadL3Range(Addr sim_base, std::uint64_t bytes)
{
    const Addr first = sim_base / cfg_.lineSize;
    const Addr last = (sim_base + bytes - 1) / cfg_.lineSize;
    for (Addr vline = first; vline <= last; ++vline) {
        const Addr vaddr = vline * cfg_.lineSize;
        const Addr paddr = os_.pageTable().translate(vaddr);
        const BankId home = mapper_.bankOf(paddr);
        l3Banks_[home].access(paddr / cfg_.lineSize, false);
    }
}

void
Machine::flushPrivateCaches()
{
    for (auto &c : l1_)
        c.reset();
    for (auto &c : l2_)
        c.reset();
}

// ---------------------------------------------------------------------
// Deferred (shard-parallel) epoch execution. The record-side twins below
// mirror their classic counterparts statement for statement; anything
// they charge inline happens in the same serial program order as
// classic execution, and anything they defer is replayed either in
// per-bank serial-projected order (wave one) or per-core record order
// (wave two), so the result is bit-identical at any --sim-threads.
// ---------------------------------------------------------------------

void
Machine::recordSend(BankId queue_bank, TileId src, TileId dst,
                    std::uint32_t bytes, TrafficClass tc)
{
    BankEvent ev;
    ev.kind = BankEvent::netSend;
    ev.arg = bytes;
    ev.src = static_cast<std::uint16_t>(src);
    ev.dst = static_cast<std::uint16_t>(dst);
    ev.flags = static_cast<std::uint8_t>(tc);
    log_->bank[queue_bank].push_back(ev);
}

std::uint32_t
Machine::recordProbe(BankId home, Addr pline, bool is_write)
{
    BankEvent ev;
    ev.kind = BankEvent::l3Probe;
    ev.addr = pline;
    ev.arg = log_->numSlots++;
    ev.flags = is_write ? BankEvent::probeWrite : 0;
    log_->bank[home].push_back(ev);
    return ev.arg;
}

void
Machine::recordCoreBusy(CoreId core, double cycles)
{
    CoreEvent ev;
    ev.kind = CoreEvent::constBusy;
    ev.a = std::bit_cast<std::uint64_t>(cycles);
    log_->core[core].push_back(ev);
}

void
Machine::recordL3Writeback(CoreId core, Addr victim_vline)
{
    // Classic: send the dirty L2 victim to its home bank, then
    // probeL3Line(wb_home, ..., write) there. The bank-busy charge
    // stays inline (record order == classic order); the probe and
    // both messages replay on the home bank's queue.
    const Addr wb_p =
        os_.pageTable().translate(victim_vline * cfg_.lineSize);
    const BankId wb_home = mapper_.bankOf(wb_p);
    recordSend(wb_home, core, bankTile_[wb_home],
               cfg_.lineSize + tp_.controlBytes, TrafficClass::data);
    chargeBankBusy(wb_home, tp_.l3ServiceCycles);
    recordProbe(wb_home, wb_p / cfg_.lineSize, true);
}

AccessOutcome
Machine::coreAccessDeferred(CoreId core, Addr vaddr, std::uint32_t bytes,
                            AccessType type, bool prefetch_friendly)
{
    AccessOutcome out;
    out.servedBy = 1;
    const Addr first = vaddr / cfg_.lineSize;
    const Addr last = (vaddr + bytes - 1) / cfg_.lineSize;
    const bool is_write = type != AccessType::read;

    for (Addr vline = first; vline <= last; ++vline) {
        recordCoreBusy(core, tp_.coreIssueCycles);

        if (type != AccessType::atomic) {
            // Private caches are core-owned and only touched by the
            // serial record pass, so they run inline exactly as in
            // classic execution.
            stats_.l1Accesses += 1;
            const auto r1 = l1_[core].access(vline, is_write);
            if (r1.writeback) {
                stats_.l2Accesses += 1;
                l2_[core].access(r1.victimLine, true);
            }
            if (r1.hit) {
                out.latency += cfg_.l1Latency;
                continue;
            }
            stats_.l1Misses += 1;

            stats_.l2Accesses += 1;
            const auto r2 = l2_[core].access(vline, is_write);
            if (r2.hit) {
                out.latency += cfg_.l1Latency + cfg_.l2Latency;
                out.servedBy = std::max(out.servedBy, 2);
                if (r2.writeback)
                    recordL3Writeback(core, r2.victimLine);
                continue;
            }
            stats_.l2Misses += 1;
            if (r2.writeback)
                recordL3Writeback(core, r2.victimLine);
        }

        const Cycles tlb_lat = coreTranslate(core, vline * cfg_.lineSize);
        const Addr paddr = os_.pageTable().translate(vline * cfg_.lineSize);
        const Addr pline = paddr / cfg_.lineSize;
        const BankId home = mapper_.bankOf(paddr);
        out.bank = home;

        recordSend(home, core, bankTile_[home], tp_.controlBytes,
                   TrafficClass::control);
        chargeBankBusy(home, tp_.l3ServiceCycles);
        const std::uint32_t slot = recordProbe(home, pline, is_write);
        // The L3 hit/miss resolves at replay; deferrable callers never
        // read servedBy (see beginEpoch(deferrable)), so report the L3
        // level without the miss refinement.
        out.servedBy = std::max(out.servedBy, 3);

        Cycles resp = 0;
        if (type == AccessType::atomic) {
            stats_.atomicOps += 1;
            if (metrics_)
                metrics_->bankAtomic(home);
            chargeBankBusy(home, tp_.atomicExtraCycles);
            recordSend(home, bankTile_[home], core, tp_.controlBytes,
                       TrafficClass::control);
            recordSend(home, bankTile_[home], core, tp_.controlBytes,
                       TrafficClass::control);
            resp = net_.latencyOf(bankTile_[home], core, tp_.controlBytes);
        } else {
            recordSend(home, bankTile_[home], core,
                       cfg_.lineSize + tp_.controlBytes,
                       TrafficClass::data);
            resp = net_.latencyOf(bankTile_[home], core,
                                  cfg_.lineSize + tp_.controlBytes);
        }

        if (!prefetch_friendly) {
            // Both penalty operands are integer cycle counts, so wave
            // two reproduces classic's double(base + extra) / MLP
            // charge bit-exactly once the probe's hit bit is known.
            const std::uint32_t ch = dram_.channelOf(pline);
            const TileId ctrl = dram_.controllerTile(ch);
            CoreEvent ev;
            ev.kind = CoreEvent::mlpPenalty;
            ev.a = cfg_.l1Latency + cfg_.l2Latency + tlb_lat +
                   net_.latencyOf(core, bankTile_[home],
                                  tp_.controlBytes) +
                   cfg_.l3Latency + resp;
            ev.b = net_.latencyOf(bankTile_[home], ctrl,
                                  tp_.controlBytes) +
                   dram_.latency() +
                   net_.latencyOf(ctrl, bankTile_[home],
                                  cfg_.lineSize + tp_.controlBytes);
            ev.slot = slot;
            log_->core[core].push_back(ev);
        }
        // Unloaded latency without the replay-resolved miss component;
        // deferrable epoch bodies never read it.
        out.latency += cfg_.l1Latency + cfg_.l2Latency + tlb_lat +
                       net_.latencyOf(core, bankTile_[home],
                                      tp_.controlBytes) +
                       cfg_.l3Latency + resp;
    }
    return out;
}

AccessOutcome
Machine::l3StreamAccessDeferred(BankId requester, Addr vaddr,
                                std::uint32_t bytes, AccessType type)
{
    AccessOutcome out;
    out.servedBy = 3;
    const Addr first = vaddr / cfg_.lineSize;
    const Addr last = (vaddr + bytes - 1) / cfg_.lineSize;
    const bool is_write = type != AccessType::read;

    for (Addr vline = first; vline <= last; ++vline) {
        const Addr line_vaddr = vline * cfg_.lineSize;
        // seTranslate() deferred: the SE TLB belongs to the requester
        // bank's shard. Pool addresses translate as direct segments
        // with no TLB involvement, exactly like classic.
        if (line_vaddr < mem::poolVirtBase) {
            BankEvent ev;
            ev.kind = BankEvent::seTlbProbe;
            ev.addr = mem::pageOf(line_vaddr);
            log_->bank[requester].push_back(ev);
        }
        const Addr paddr = os_.pageTable().translate(line_vaddr);
        const Addr pline = paddr / cfg_.lineSize;
        const BankId home = mapper_.bankOf(paddr);
        out.bank = home;

        const bool remote = home != requester;
        if (remote) {
            recordSend(home, bankTile_[requester], bankTile_[home],
                       is_write && type != AccessType::atomic
                           ? std::min<std::uint32_t>(bytes,
                                                     cfg_.lineSize) +
                                 tp_.controlBytes
                           : tp_.controlBytes,
                       type == AccessType::atomic
                           ? TrafficClass::control
                           : (is_write ? TrafficClass::data
                                       : TrafficClass::control));
        }
        chargeBankBusy(home, tp_.l3ServiceCycles);
        recordProbe(home, pline, is_write);

        if (type == AccessType::atomic) {
            stats_.atomicOps += 1;
            if (metrics_)
                metrics_->bankAtomic(home);
            chargeBankBusy(home, tp_.atomicExtraCycles);
            noteAtomicStream(home);
            if (remote) {
                recordSend(home, bankTile_[home], bankTile_[requester],
                           tp_.controlBytes, TrafficClass::control);
            }
        } else if (remote) {
            if (!is_write) {
                const std::uint32_t resp =
                    std::min<std::uint32_t>(bytes, cfg_.lineSize);
                recordSend(home, bankTile_[home], bankTile_[requester],
                           resp + tp_.controlBytes, TrafficClass::data);
            } else {
                recordSend(home, bankTile_[home], bankTile_[requester],
                           tp_.controlBytes, TrafficClass::control);
            }
        }
        // Deferrable epoch bodies never read the outcome latency.
        out.latency += cfg_.l3Latency;
    }
    return out;
}

void
Machine::replayBankEvents(BankId b, ReplayDelta &d)
{
    for (const BankEvent &ev : log_->bank[b]) {
        switch (ev.kind) {
        case BankEvent::l3Probe: {
            const bool is_write = (ev.flags & BankEvent::probeWrite) != 0;
            d.stats.l3Accesses += 1;
            const auto res = l3Banks_[b].access(ev.addr, is_write);
            log_->hitBits[ev.arg] = res.hit ? 1 : 0;
            if (metrics_)
                metrics_->bankAccess(b, res.hit);
            if (!res.hit) {
                d.stats.l3Misses += 1;
                const std::uint32_t ch = dram_.channelOf(ev.addr);
                const TileId ctrl = dram_.controllerTile(ch);
                net_.sendDelta(bankTile_[b], ctrl, tp_.controlBytes,
                               TrafficClass::control, d.net);
                d.dramChannel[ch] += 1;
                d.stats.dramAccesses += 1;
                d.stats.dramBytes += cfg_.lineSize;
                net_.sendDelta(ctrl, bankTile_[b],
                               cfg_.lineSize + tp_.controlBytes,
                               TrafficClass::data, d.net);
            }
            if (res.writeback) {
                const std::uint32_t ch = dram_.channelOf(res.victimLine);
                const TileId ctrl = dram_.controllerTile(ch);
                net_.sendDelta(bankTile_[b], ctrl,
                               cfg_.lineSize + tp_.controlBytes,
                               TrafficClass::data, d.net);
                d.dramChannel[ch] += 1;
                d.stats.dramAccesses += 1;
                d.stats.dramBytes += cfg_.lineSize;
            }
            break;
        }
        case BankEvent::seTlbProbe:
            d.stats.tlbAccesses += 1;
            if (!seTlb_[b].access(ev.addr, false).hit)
                d.stats.tlbWalks += 1;
            break;
        case BankEvent::netSend:
            net_.sendDelta(ev.src, ev.dst, ev.arg,
                           static_cast<TrafficClass>(ev.flags), d.net);
            break;
        }
    }
}

void
Machine::replayCoreEvents(CoreId c)
{
    for (const CoreEvent &ev : log_->core[c]) {
        if (ev.kind == CoreEvent::constBusy) {
            coreBusy_[c] += std::bit_cast<double>(ev.a);
        } else {
            const std::uint64_t lat =
                ev.a + (log_->hitBits[ev.slot] ? 0 : ev.b);
            coreBusy_[c] += double(lat) / tp_.coreMaxMlp;
        }
    }
}

void
Machine::replayDeferred(bool commit)
{
    PROF_SCOPE("machine/epoch.replay");
    deferActive_ = false;
    const std::uint32_t banks = cfg_.numBanks();
    const std::uint32_t cores = cfg_.numTiles();
    const unsigned T = cfg_.simThreads;
    if (!pool_ || pool_->threads() != T)
        pool_ = std::make_unique<sim::WorkerPool>(T);
    if (replayDeltas_.size() < T)
        replayDeltas_.resize(T);
    log_->hitBits.assign(log_->numSlots, 0);

    // Wave one: each worker owns a contiguous bank shard and replays
    // its queues in serial-projected order. The static shard -> worker
    // map keeps a shard on the same thread across epochs (warm caches,
    // and a stable home if AFFALLOC_SIM_PIN pins workers to CPUs).
    const std::size_t net_entries = net_.numLinkEntries();
    const std::uint32_t channels = cfg_.dramChannels;
    {
        PROF_SCOPE("machine/epoch.replay/wave1");
        pool_->dispatch([&](unsigned w) {
            ReplayDelta &d = replayDeltas_[w];
            d.reset(net_entries, channels);
            const auto b0 = static_cast<std::uint32_t>(
                std::uint64_t(banks) * w / T);
            const auto b1 = static_cast<std::uint32_t>(
                std::uint64_t(banks) * (w + 1) / T);
            for (std::uint32_t b = b0; b < b1; ++b)
                replayBankEvents(b, d);
        });
    }

    // Fold the worker deltas in fixed worker order. Everything here is
    // an integer counter, so the fold is exact at any thread count.
    {
        PROF_SCOPE("machine/epoch.replay/fold");
        if (dramDeferred_.size() != channels)
            dramDeferred_.assign(channels, 0);
        else
            std::fill(dramDeferred_.begin(), dramDeferred_.end(), 0);
        for (unsigned w = 0; w < T; ++w) {
            const ReplayDelta &d = replayDeltas_[w];
            stats_ += d.stats;
            net_.mergeDelta(d.net);
            for (std::uint32_t ch = 0; ch < channels; ++ch)
                dramDeferred_[ch] += d.dramChannel[ch];
        }
        net_.refreshEpochMax();
        dram_.chargeDeferred(dramDeferred_);
    }

    if (commit) {
        // Wave two: per-core busy replays need wave one's hit bits.
        // Events replay in record order, so the floating-point
        // accumulation matches classic execution exactly.
        PROF_SCOPE("machine/epoch.replay/wave2");
        pool_->dispatch([&](unsigned w) {
            const auto c0 = static_cast<std::uint32_t>(
                std::uint64_t(cores) * w / T);
            const auto c1 = static_cast<std::uint32_t>(
                std::uint64_t(cores) * (w + 1) / T);
            for (std::uint32_t c = c0; c < c1; ++c)
                replayCoreEvents(c);
        });
        for (std::uint32_t c = 0; c < cores; ++c)
            coreBusyMax_ = std::max(coreBusyMax_, coreBusy_[c]);
    }
    log_->clear();
}

} // namespace affalloc::nsc
