/**
 * @file
 * The simulated machine: one object aggregating the mesh network, the
 * NUCA L3, the private-cache filters, DRAM, and the OS-owned address
 * translation / IOT. It exposes the *event primitives* that workload
 * models call (core accesses, stream accesses, forwards, migrations,
 * atomics) and an epoch-based timing model that converts per-resource
 * occupancy into simulated cycles.
 *
 * Timing model: work proceeds in epochs. Every event charges occupancy
 * to the resources it uses (L3 banks, SE compute threads, cores, NoC
 * links, DRAM channels). An epoch's duration is the maximum occupancy
 * over all resources (the bottleneck), floored by the caller-supplied
 * critical-path latency (serial dependence chains such as pointer
 * chasing). This reproduces bandwidth bottlenecks, bank load imbalance
 * and latency-bound behaviour with one mechanism.
 */

#ifndef AFFALLOC_NSC_MACHINE_HH
#define AFFALLOC_NSC_MACHINE_HH

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "mem/address_space.hh"
#include "mem/bank_mapper.hh"
#include "mem/cache_model.hh"
#include "mem/dram.hh"
#include "noc/network.hh"
#include "nsc/epoch_log.hh"
#include "obs/observer.hh"
#include "os/sim_os.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "sim/worker_pool.hh"

namespace affalloc::nsc
{

/** Tunable event costs of the timing model. */
struct TimingParams
{
    /** L3 bank occupancy per line access (pipelined tag+data). */
    double l3ServiceCycles = 0.5;
    /** Extra L3 bank occupancy for an atomic RMW (serializes). */
    double atomicExtraCycles = 0.5;
    /** Core occupancy per issued memory instruction. */
    double coreIssueCycles = 0.5;
    /** Flops retired per cycle by a core (SIMD FMA throughput). */
    double coreFlopsPerCycle = 32.0;
    /** Flops retired per cycle by a near-stream SMT compute thread. */
    double seFlopsPerCycle = 32.0;
    /** Control message payload bytes (requests, credits). */
    std::uint32_t controlBytes = 16;
    /** Stream migration message payload bytes. */
    std::uint32_t migrateBytes = 64;
    /** Stream configuration message payload bytes. */
    std::uint32_t configBytes = 96;
    /** Fixed per-epoch overhead (sync, credit turnaround). */
    double epochOverheadCycles = 64.0;
    /** Max memory-level parallelism of one core (ROB/LQ bound). */
    double coreMaxMlp = 12.0;

    /**
     * Reject non-positive rates/costs that would silently produce
     * zero or negative epoch durations; fatal() with a clear message.
     */
    void validate() const;
};

/** What happened on a simulated memory access (for callers/tests). */
struct AccessOutcome
{
    /** Total unloaded latency of the access. */
    Cycles latency = 0;
    /** Level that served it: 1/2/3 = cache level, 4 = DRAM. */
    int servedBy = 3;
    /** Home bank of the line. */
    BankId bank = 0;
};

/**
 * The machine. Constructed per experiment run; owns all hardware
 * state and statistics. Workload models drive it through the event
 * primitives, bracketed by beginEpoch()/endEpoch().
 */
class Machine
{
  public:
    /** Build a machine over a booted OS. */
    Machine(const sim::MachineConfig &cfg, os::SimOS &os,
            TimingParams tp = TimingParams{});

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    // --------------------------------------------------------- accessors
    const sim::MachineConfig &config() const { return cfg_; }
    const TimingParams &timing() const { return tp_; }
    sim::Stats &stats() { return stats_; }
    const sim::Stats &stats() const { return stats_; }
    noc::Network &network() { return net_; }
    os::SimOS &simOs() { return os_; }
    mem::AddressSpace &addressSpace() { return addrSpace_; }
    const sim::Timeline &timeline() const { return timeline_; }
    sim::Timeline &timeline() { return timeline_; }
    Cycles now() const { return stats_.cycles; }

    // ------------------------------------------------------ observability
    /**
     * Attach an observability aggregate (not owned; must outlive the
     * machine or be detached with attachObserver(nullptr)). Sizes the
     * spatial-metrics registry for this machine's mesh. Observe-only:
     * attaching changes no simulated behaviour (digest-neutral).
     */
    void attachObserver(obs::Observer *o);
    /** The attached observer, or nullptr (disabled). */
    obs::Observer *observer() { return obs_; }
    /** The attached tracer, or nullptr (hot paths branch on this). */
    obs::ChromeTracer *tracer() { return tracer_; }
    /** The attached metrics registry, or nullptr. */
    obs::SpatialMetrics *metrics() { return metrics_; }

    // ----------------------------------------------------------- simcheck
    /** Invariant-check registry; components register in their ctors. */
    simcheck::Auditor &auditor() { return auditor_; }
    const simcheck::Auditor &auditor() const { return auditor_; }
    /** Run every registered audit now; throws AuditError on violation. */
    void audit() const { auditor_.runAll(); }

    // ------------------------------------------------------ bank lookup
    /** Home bank of a simulated virtual address. */
    BankId
    bankOfSim(Addr vaddr) const
    {
        return mapper_.bankOf(os_.pageTable().translate(vaddr));
    }
    /** Home bank of a registered host pointer. */
    BankId bankOfHost(const void *p) const;
    /** Mesh tile hosting bank @p b (per the numbering scheme). */
    TileId tileOfBank(BankId b) const { return bankTile_[b]; }
    /** Manhattan distance in hops between two banks' tiles. */
    std::uint32_t
    hopsBetween(BankId a, BankId b) const
    {
        return net_.mesh().distance(bankTile_[a], bankTile_[b]);
    }

    // ---------------------------------------------- faults / degradation
    /** The machine's fault plan (owned by the OS). */
    sim::FaultPlan &faultPlan() { return os_.faultPlan(); }
    const sim::FaultPlan &faultPlan() const { return os_.faultPlan(); }
    /** Whether bank @p b is alive under the fault plan. */
    bool bankLive(BankId b) const { return os_.faultPlan().bankLive(b); }
    /**
     * Dynamically mark bank @p b offline (mid-run fault injection):
     * its cached lines are lost (the bank model resets) and future
     * lines homed there are served by its spare.
     */
    void injectBankFault(BankId b);
    /**
     * Dynamically degrade directed link @p link to @p factor x flit
     * occupancy (mid-run fault injection); routes through the fault
     * plan, which every subsequent link charge consults.
     */
    void injectLinkDegrade(std::uint32_t link, std::uint32_t factor);
    /**
     * Dynamically set the offload NACK rate to @p permille / 1000
     * (mid-run nackStorm event; 0 ends the storm). Every subsequent
     * stream configuration draws against the new rate.
     */
    void injectNackStorm(std::uint32_t permille);
    /**
     * Advance the shared clock by @p cycles with the machine idle —
     * the open-system front-end uses this to fast-forward between a
     * drained machine and the next request arrival or fault event.
     * Pure time: no occupancy, traffic, or energy is charged.
     */
    void advanceIdle(Cycles cycles);
    /**
     * Model one NACKed offload attempt: the rejected configuration
     * message plus the NACK response. Returns the round-trip latency
     * (the stream engine's retry backoff is added by the caller).
     */
    Cycles offloadNack(CoreId core, BankId bank);

    // ------------------------------------------------- epoch life-cycle
    /**
     * Start a new epoch: clears per-epoch occupancy.
     *
     * @param deferrable the epoch body tolerates deferred execution:
     *        it never reads AccessOutcome latencies or servedBy levels
     *        from inside the epoch (the bulk affine/graph kernels —
     *        pointer chasing, which feeds latencies back into its
     *        floor, must stay classic). With cfg.simThreads > 1 such
     *        an epoch records bank-owned work into an event log that
     *        endEpoch() replays shard-parallel; results are
     *        bit-identical to the serial simulator either way.
     */
    void beginEpoch(bool deferrable = false);
    /** Whether the open epoch is recording for parallel replay. */
    bool epochDeferred() const { return deferActive_; }
    /**
     * Close the epoch: duration = max(resource occupancy,
     * latency_floor) + fixed overhead. Advances simulated time,
     * records the timeline sample, and returns the duration.
     */
    Cycles endEpoch(double latency_floor = 0.0,
                    const std::string &phase = "");
    /**
     * Abandon an epoch after an error was thrown mid-epoch: restores
     * the Stats counters to their beginEpoch() snapshot and clears
     * all per-epoch occupancy, so a caught PanicError does not leave
     * stale link/DRAM/bank state corrupting the next run's timing.
     * Counts into Stats::abortedEpochs. A no-op when no epoch is open
     * (the error unwound from between epochs), so error paths can call
     * it unconditionally.
     */
    void abortEpoch();
    /** Whether a beginEpoch() is open (no endEpoch()/abortEpoch() yet). */
    bool inEpoch() const { return inEpoch_; }

    // ------------------------------------------------- traffic classes
    /**
     * Declare which agent class the *currently executing* agent
     * belongs to. The tenant scheduler calls this at every quantum
     * grant; everything charged to Stats until the next call is
     * attributed to this class (per-class side counters, outside the
     * digest). Also refreshes the arbitration scale applied to bank
     * and link occupancy in endEpoch(). Defaults to AgentClass::ndc,
     * and with a single present class the scale is exactly 1.0, so
     * classic runs are untouched.
     */
    void setActiveClass(AgentClass c);
    /** The class charged for current activity. */
    AgentClass activeClass() const { return activeClass_; }
    /**
     * Declare the set of classes sharing the machine this run, as a
     * bit mask over AgentClass values. Arbitration (partition /
     * priority scaling) only engages between *present* classes, so a
     * mask with one bit set always yields scale 1.0.
     */
    void setPresentClasses(std::uint32_t mask);
    /** Exact per-class slice of the global Stats (side counters). */
    const sim::Stats &classStats(AgentClass c) const
    {
        return classStats_[static_cast<int>(c)];
    }

    /**
     * A DMA/NIC-style I/O write of @p bytes at @p vaddr injected at
     * mesh tile @p ingress (no core, no TLB charge — device-side
     * IOMMU translation is off the critical path). Where the data
     * lands follows cfg.llcIoPolicy: ddio allocates freely into the
     * home L3 bank, wayRestrict confines allocation to cfg.llcIoWays
     * ways per set, bypass sends the line straight to DRAM. Returns
     * the injection latency. Not supported inside deferred epochs
     * (I/O injector epochs are classic).
     */
    Cycles ioWrite(TileId ingress, Addr vaddr, std::uint32_t bytes);

    /**
     * Hook invoked at the very end of every endEpoch() (after the
     * audit). The tenant scheduler uses this as its preemption point:
     * the hook may block the calling logical thread while other
     * tenants advance the same machine. Null (the default) costs one
     * never-taken branch; installing a hook changes no timing and is
     * digest-neutral when the hook itself mutates nothing.
     */
    void setEpochHook(std::function<void()> hook)
    {
        epochHook_ = std::move(hook);
    }

    // ----------------------------------------------- in-core primitives
    /**
     * A load/store/atomic executed by core @p core on simulated
     * address @p vaddr. Walks L1 -> L2 -> L3 -> DRAM, generating NoC
     * traffic and occupancy along the way. Spans lines if needed.
     *
     * @param prefetch_friendly sequential/strided accesses covered by
     *        the L1/L2 prefetchers (Table 2): their miss latency is
     *        hidden, so only issue bandwidth is charged. Irregular
     *        accesses instead charge latency divided by the core's
     *        maximum memory-level parallelism (ROB/LQ bound).
     */
    AccessOutcome coreAccess(CoreId core, Addr vaddr, std::uint32_t bytes,
                             AccessType type,
                             bool prefetch_friendly = false);

    /** Charge @p flops of computation to core @p core. */
    void coreCompute(CoreId core, double flops);

    // -------------------------------------------- near-stream primitives
    /**
     * A stream-engine access issued from bank @p requester to the
     * home bank of @p vaddr. Local when the line is homed at the
     * requester (the affinity-alloc goal); otherwise a remote
     * (indirect) request/response pair is modeled. Misses go to DRAM.
     */
    AccessOutcome l3StreamAccess(BankId requester, Addr vaddr,
                                 std::uint32_t bytes, AccessType type);

    /** Forward @p bytes of operand data from one bank to another. */
    Cycles forwardData(BankId from, BankId to, std::uint32_t bytes);

    /** Migrate a stream context between banks (offload traffic). */
    Cycles migrateStream(BankId from, BankId to);

    /** Configure (offload) a stream from a core to its first bank. */
    Cycles configStream(CoreId core, BankId first_bank);

    /** Coarse-grained credit/sync control message core <-> bank. */
    void creditMessage(CoreId core, BankId bank);

    /** Charge @p flops of near-stream compute to @p bank's SE thread. */
    void seCompute(BankId bank, double flops);

    /** Record one active atomic stream at @p bank for the timeline. */
    void noteAtomicStream(BankId bank);

    // -------------------------------------------------------- utilization
    /** Average NoC link utilization over the whole run, in [0,1]. */
    double nocUtilization() const;

    /** Resident lines currently tracked in bank @p b (tests). */
    const mem::CacheModel &l3Bank(BankId b) const { return l3Banks_.at(b); }

    /** Flush all private caches (phase boundaries between kernels). */
    void flushPrivateCaches();

    /**
     * Warm the L3 with a simulated range without charging stats or
     * occupancy (steady-state experiments skip cold-start DRAM).
     */
    void preloadL3Range(Addr sim_base, std::uint64_t bytes);

  private:
    /**
     * Probe L3 at the line's home bank; on miss fetch from DRAM
     * (request + response messages, channel occupancy, writebacks).
     * Returns the latency beyond the bank access itself.
     */
    Cycles probeL3Line(BankId home, Addr pline, bool is_write,
                       bool &out_hit);

    /**
     * Core-side address translation: L1 dTLB -> L2 TLB -> page walk
     * (Table 2 latencies). Returns the added translation latency.
     */
    Cycles coreTranslate(CoreId core, Addr vaddr);

    /** SEL3-side translation at bank @p bank's stream-engine TLB. */
    Cycles seTranslate(BankId bank, Addr vaddr);

    // ------------------------------------- deferred (parallel) epochs
    /** Busy charges funnel through these to keep running maxima. */
    void
    chargeBankBusy(BankId b, double cycles)
    {
        const double v = (bankBusy_[b] += cycles);
        if (v > bankBusyMax_)
            bankBusyMax_ = v;
    }
    void
    chargeCoreBusy(CoreId c, double cycles)
    {
        const double v = (coreBusy_[c] += cycles);
        if (v > coreBusyMax_)
            coreBusyMax_ = v;
    }
    void
    chargeSeBusy(BankId b, double cycles)
    {
        const double v = (seBusy_[b] += cycles);
        if (v > seBusyMax_)
            seBusyMax_ = v;
    }

    /** Append one NoC message to @p queue_bank's replay queue. */
    void recordSend(BankId queue_bank, TileId src, TileId dst,
                    std::uint32_t bytes, TrafficClass tc);
    /** Append an L3 probe at @p home; returns its hit-bit slot. */
    std::uint32_t recordProbe(BankId home, Addr pline, bool is_write);
    /** Append a const core-busy charge to @p core's replay queue. */
    void recordCoreBusy(CoreId core, double cycles);

    /** Deferred-record twin of coreAccess() (same stats/state). */
    AccessOutcome coreAccessDeferred(CoreId core, Addr vaddr,
                                     std::uint32_t bytes, AccessType type,
                                     bool prefetch_friendly);
    /** Deferred-record twin of l3StreamAccess(). */
    AccessOutcome l3StreamAccessDeferred(BankId requester, Addr vaddr,
                                         std::uint32_t bytes,
                                         AccessType type);
    /** Record-side half of a deferred L2-victim writeback to L3. */
    void recordL3Writeback(CoreId core, Addr victim_vline);

    /** Replay one bank's queue into @p d (wave one; worker thread). */
    void replayBankEvents(BankId b, ReplayDelta &d);
    /** Replay one core's busy queue (wave two; worker thread). */
    void replayCoreEvents(CoreId c);
    /**
     * Run both replay waves on the worker pool and fold the deltas in
     * fixed worker order. @p commit false (abortEpoch) still replays
     * wave one — cache/TLB state and lifetime NoC counters must end
     * exactly where classic inline execution would have left them —
     * but skips the wave-two busy charges the abort wipes anyway.
     */
    void replayDeferred(bool commit);

    /**
     * Recompute the arbitration occupancy scale for the active class
     * from the configured mode, the per-class shares, and the set of
     * present classes. 1.0 whenever arbitration is off or the active
     * class runs alone.
     */
    void refreshArbScale();

    /** SimCheck audit: every cache model's internal consistency. */
    void auditCaches(simcheck::CheckContext &ctx) const;
    /**
     * SimCheck audit: bank-mapper <-> IOT <-> page-table
     * cross-consistency — sampled pool and page-at-bank pages must be
     * mapped where the OS placed them, covered by an IOT entry with
     * the pool's interleaving, and homed at the bank Eq. 1 predicts
     * (modulo fault-plan spare redirection).
     */
    void auditMapping(simcheck::CheckContext &ctx) const;

    sim::MachineConfig cfg_;
    TimingParams tp_;
    os::SimOS &os_;
    sim::Stats stats_;
    noc::Network net_;
    mem::BankMapper mapper_;
    mem::Dram dram_;
    mem::AddressSpace addrSpace_;

    /** Bank id -> tile per the configured numbering scheme. */
    std::vector<TileId> bankTile_;

    std::vector<mem::CacheModel> l3Banks_;
    std::vector<mem::CacheModel> l1_;
    std::vector<mem::CacheModel> l2_;
    // TLBs (Table 2): per-core L1 dTLB + L2 TLB, per-bank SEL3 TLB.
    // Modeled as set-associative tag stores over virtual page numbers.
    std::vector<mem::CacheModel> l1Tlb_;
    std::vector<mem::CacheModel> l2Tlb_;
    std::vector<mem::CacheModel> seTlb_;

    // Per-epoch occupancy (cycles of busy time per resource).
    std::vector<double> bankBusy_;
    std::vector<double> coreBusy_;
    std::vector<double> seBusy_;
    std::vector<std::uint32_t> epochAtomics_;
    // Running maxima over the occupancy vectors, maintained at charge
    // time (occupancy only grows within an epoch) so endEpoch() does
    // not rescan 3 x 64 accumulators per epoch.
    double bankBusyMax_ = 0.0;
    double coreBusyMax_ = 0.0;
    double seBusyMax_ = 0.0;

    /** Whether the open epoch records for shard-parallel replay. */
    bool deferActive_ = false;
    /** Event log for deferred epochs (lazily built; reused). */
    std::unique_ptr<EpochLog> log_;
    /** Persistent replay workers (lazily built on first replay). */
    std::unique_ptr<sim::WorkerPool> pool_;
    /** Per-worker replay accumulators (reused across epochs). */
    std::vector<ReplayDelta> replayDeltas_;
    /** Per-channel deferred DRAM access totals (merge scratch). */
    std::vector<std::uint64_t> dramDeferred_;

    // Per-class attribution (side counters; never in the digest).
    /** Class charged for current activity. */
    AgentClass activeClass_ = AgentClass::ndc;
    /** Bit mask of classes sharing the machine this run (bit 0=ndc). */
    std::uint32_t presentClasses_ = 1u << 0;
    /** Occupancy scale applied to bank/link terms for activeClass_. */
    double arbScale_ = 1.0;
    /** Exact per-class slices of stats_ (sum == attributed total). */
    std::array<sim::Stats, numAgentClasses> classStats_;
    /** stats_ snapshot at the last attribution flush. */
    sim::Stats classAttribSnap_;

    /** Stats snapshot taken at beginEpoch() (abortEpoch() restores). */
    sim::Stats epochStartStats_;
    /** Between beginEpoch() and endEpoch()/abortEpoch(). */
    bool inEpoch_ = false;
    /** Host ns at beginEpoch() when the profiler is enabled, else 0.
     *  The record phase spans the whole open epoch, so it cannot be an
     *  RAII scope; endEpoch()/abortEpoch() close it via addTimed(). */
    std::uint64_t epochProfT0_ = 0;

    sim::Timeline timeline_;

    // Observability (all null when no observer is attached).
    obs::Observer *obs_ = nullptr;
    obs::SpatialMetrics *metrics_ = nullptr;
    obs::ChromeTracer *tracer_ = nullptr;

    simcheck::Auditor auditor_;
    simcheck::LivelockWatchdog watchdog_;

    /** Epoch-boundary yield point (tenant scheduler); null = off. */
    std::function<void()> epochHook_;
};

} // namespace affalloc::nsc

#endif // AFFALLOC_NSC_MACHINE_HH
