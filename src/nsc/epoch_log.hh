/**
 * @file
 * Event log for shard-parallel epoch replay. In a deferred epoch the
 * workload body runs serially in *record* mode: all control flow,
 * RNG draws, host-data mutation, translation and core-private cache
 * state advance exactly as in the classic simulator, while the
 * bank-owned and order-free work (L3 probes, SE-TLB probes, NoC
 * traffic, DRAM accesses, core MLP penalties) is appended here as
 * compact events. endEpoch() then replays the per-bank queues on the
 * worker pool — each worker owns a contiguous bank shard, so every
 * cache/TLB model is mutated by exactly one thread, in the serial
 * program order projected onto that bank — followed by a second wave
 * that replays per-core busy charges (which need the probe hit/miss
 * results of wave one). The result is bit-identical to classic serial
 * execution at any thread count; see DESIGN.md §17.
 */

#ifndef AFFALLOC_NSC_EPOCH_LOG_HH
#define AFFALLOC_NSC_EPOCH_LOG_HH

#include <cstdint>
#include <vector>

#include "noc/network.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace affalloc::nsc
{

/**
 * One deferred event in a bank's replay queue. A queue entry either
 * probes the owning bank's L3, probes its SE TLB, or carries one NoC
 * message whose link charges this worker will account (the message's
 * endpoints may be any tiles — flit counters are integers, so it only
 * matters that exactly one worker charges it).
 */
struct BankEvent
{
    enum Kind : std::uint8_t
    {
        /** L3 probe at the owning bank; addr = physical line. */
        l3Probe,
        /** SE TLB probe at the owning bank; addr = virtual page. */
        seTlbProbe,
        /** One NoC message src -> dst of arg payload bytes. */
        netSend,
    };
    /** Bit in flags: the l3Probe is a write. */
    static constexpr std::uint8_t probeWrite = 1;

    Addr addr = 0;
    /** l3Probe: hit-bit slot; netSend: payload bytes. */
    std::uint32_t arg = 0;
    /** netSend route endpoints (tile ids). */
    std::uint16_t src = 0;
    std::uint16_t dst = 0;
    std::uint8_t kind = l3Probe;
    /** l3Probe: probeWrite bit; netSend: TrafficClass. */
    std::uint8_t flags = 0;
};

/**
 * One deferred busy charge in a core's replay queue, replayed in
 * record order so the floating-point accumulation matches classic
 * execution exactly.
 */
struct CoreEvent
{
    enum Kind : std::uint8_t
    {
        /** coreBusy += bit_cast<double>(a); amount fixed at record. */
        constBusy,
        /**
         * The irregular-access MLP penalty: coreBusy +=
         * double(a + (hit ? 0 : b)) / coreMaxMlp, where the hit bit
         * comes from wave one's probe at `slot`. Both operands are
         * integer cycle counts, so the conversion and division
         * reproduce the classic charge bit-exactly.
         */
        mlpPenalty,
    };

    /** constBusy: bit-cast double; mlpPenalty: base latency cycles. */
    std::uint64_t a = 0;
    /** mlpPenalty: extra latency cycles when the probe missed. */
    std::uint64_t b = 0;
    /** mlpPenalty: index into EpochLog::hitBits. */
    std::uint32_t slot = 0;
    std::uint8_t kind = constBusy;
};

/** All deferred events of one epoch. */
struct EpochLog
{
    /** Per-bank replay queues (index == owning bank id). */
    std::vector<std::vector<BankEvent>> bank;
    /** Per-core replay queues (index == core id). */
    std::vector<std::vector<CoreEvent>> core;
    /** Probe results, filled by wave one, read by wave two. */
    std::vector<std::uint8_t> hitBits;
    /** Hit-bit slots allocated so far this epoch. */
    std::uint32_t numSlots = 0;

    void
    init(std::uint32_t banks, std::uint32_t cores)
    {
        bank.resize(banks);
        core.resize(cores);
    }

    /** Drop the epoch's events, keeping queue capacity warm. */
    void
    clear()
    {
        for (auto &q : bank)
            q.clear();
        for (auto &q : core)
            q.clear();
        numSlots = 0;
    }
};

/**
 * One replay worker's private accumulators, folded into the shared
 * machine state in fixed worker order at the epoch barrier. All
 * integer counters, so the fold is exact.
 */
struct ReplayDelta
{
    sim::Stats stats;
    noc::NetDelta net;
    /** Deferred DRAM accesses per channel (Dram::chargeDeferred). */
    std::vector<std::uint64_t> dramChannel;

    void
    reset(std::size_t net_entries, std::uint32_t channels)
    {
        stats = sim::Stats{};
        net.reset(net_entries);
        dramChannel.assign(channels, 0);
    }
};

} // namespace affalloc::nsc

#endif // AFFALLOC_NSC_EPOCH_LOG_HH
