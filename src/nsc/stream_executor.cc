#include "nsc/stream_executor.hh"

#include <algorithm>

#include "obs/chrome_trace.hh"
#include "sim/log.hh"

namespace affalloc::nsc
{

StreamExecutor::StreamExecutor(Machine &m, ExecMode mode)
    : machine_(m), mode_(mode)
{
    audit_ = machine_.config().simcheck.audit;
    auditId_ = machine_.auditor().registerCheck(
        "nsc", "offload-conservation",
        [this](simcheck::CheckContext &ctx) { auditOffloads(ctx); });
}

StreamExecutor::~StreamExecutor()
{
    machine_.auditor().unregisterCheck(auditId_);
}

void
StreamExecutor::auditOffloads(simcheck::CheckContext &ctx) const
{
    if (!offloaded() && offloadAttempts_ != 0) {
        ctx.failf("%llu offload attempts under in-core mode",
                  (unsigned long long)offloadAttempts_);
    }
    if (offloadAttempts_ != offloadAdmits_ + offloadFallbacks_) {
        ctx.failf("stranded offloads: %llu attempts != %llu admits + "
                  "%llu in-core fallbacks",
                  (unsigned long long)offloadAttempts_,
                  (unsigned long long)offloadAdmits_,
                  (unsigned long long)offloadFallbacks_);
    }
}

bool
StreamExecutor::offloadAdmitted(CoreId core, BankId bank, double &penalty)
{
    offloadAttempts_ += 1;
    // Bank selection (bankOfSim) already redirects faulted banks to
    // their spares, so an offload aimed at a dead bank means the
    // mapper and the fault plan disagree.
    if (audit_) {
        SIM_CHECK("nsc", machine_.bankLive(bank),
                  "offload targets dead bank %u", bank);
    }
    sim::FaultPlan &plan = machine_.faultPlan();
    if (!plan.rejectsOffloads()) {
        offloadAdmits_ += 1;
        return true;
    }
    const sim::FaultConfig &fc = plan.config();
    for (std::uint32_t attempt = 0; attempt <= fc.maxOffloadRetries;
         ++attempt) {
        if (!plan.rejectOffload()) {
            offloadAdmits_ += 1;
            return true;
        }
        // The rejected config message and its NACK still travel.
        penalty += double(machine_.offloadNack(core, bank));
        // Exponential backoff, capped at 2^8 x the base.
        penalty += double(fc.offloadRetryBackoff) *
                   double(1u << std::min<std::uint32_t>(attempt, 8u));
    }
    offloadFallbacks_ += 1;
    machine_.stats().offloadFallbacks += 1;
    return false;
}

void
StreamExecutor::affineKernel(const std::vector<AffineRef> &loads,
                             const std::vector<AffineRef> &stores,
                             std::uint64_t num_elems,
                             double flops_per_elem,
                             const std::string &phase)
{
    if (num_elems == 0)
        return;
    const auto &cfg = machine_.config();
    const std::uint32_t cores = cfg.numTiles();
    const std::uint32_t line = cfg.lineSize;
    const std::uint64_t slice = (num_elems + cores - 1) / cores;
    const std::uint64_t chunk = cfg.epochChunk;
    const std::uint64_t epochs = (slice + chunk - 1) / chunk;

    const std::size_t n_refs = loads.size() + stores.size();

    auto ref_at = [&](std::size_t r) -> const AffineRef & {
        return r < loads.size() ? loads[r] : stores[r - loads.size()];
    };

    // Refs over the same array whose offsets fall within one line of
    // each other share a dedup slot: the compiler coalesces
    // unit-offset streams (e.g. the A[i-1]/A[i]/A[i+1] streams of a
    // stencil) so a line is fetched and forwarded once, not once per
    // offset. Distant offsets (row stencils' +/-N) remain separate
    // streams — their traffic is what intra-array affinity targets.
    std::vector<std::size_t> dedup_slot(n_refs);
    for (std::size_t r = 0; r < n_refs; ++r) {
        dedup_slot[r] = r;
        for (std::size_t q = 0; q < r; ++q) {
            const AffineRef &a = ref_at(q);
            const AffineRef &b = ref_at(r);
            const std::int64_t gap =
                (b.offsetElems - a.offsetElems) *
                std::int64_t(b.elemSize);
            if (a.simBase == b.simBase &&
                gap > -std::int64_t(line) && gap < std::int64_t(line)) {
                dedup_slot[r] = dedup_slot[q];
                break;
            }
        }
    }

    // Per-(core, ref) line/bank tracking across the whole kernel.
    std::vector<Addr> last_line(cores * n_refs, invalidAddr);
    std::vector<BankId> cur_bank(cores * n_refs, invalidBank);

    // Per-core offload admission: a core whose streams cannot get
    // configured (offload rejection faults) runs its whole slice
    // in-core instead.
    std::vector<std::uint8_t> core_offloaded(cores, 0);
    std::vector<std::uint32_t> core_trace(cores, 0);
    obs::ChromeTracer *tr = machine_.tracer();
    double setup_penalty = 0.0;
    if (offloaded()) {
        // Each core offloads one stream per array for its slice.
        for (std::uint32_t c = 0; c < cores; ++c) {
            const std::uint64_t e0 = std::uint64_t(c) * slice;
            if (e0 >= num_elems)
                break;
            core_offloaded[c] = 1;
            double penalty = 0.0;
            for (std::size_t r = 0; r < n_refs; ++r) {
                const AffineRef &ref = ref_at(r);
                const std::int64_t i =
                    std::clamp<std::int64_t>(std::int64_t(e0) +
                                                 ref.offsetElems,
                                             0,
                                             std::int64_t(num_elems) - 1);
                const Addr a = ref.simBase + Addr(i) * ref.elemSize;
                const BankId bank = machine_.bankOfSim(a);
                if (!offloadAdmitted(c, bank, penalty)) {
                    core_offloaded[c] = 0;
                    break;
                }
                machine_.configStream(c, bank);
                cur_bank[c * n_refs + r] = bank;
            }
            setup_penalty = std::max(setup_penalty, penalty);
            if (tr) {
                core_trace[c] = ++nextStreamId_;
                tr->streamBegin(core_trace[c],
                                core_offloaded[c] ? "affine"
                                                  : "affine-fallback",
                                c, cur_bank[c * n_refs],
                                machine_.stats().cycles);
            }
        }
    }

    // Unloaded pipeline-fill latency floor of one epoch.
    const double floor =
        double(cfg.l3Latency) +
        double(cfg.hopLatency) * (cfg.meshX + cfg.meshY) / 2.0 +
        double(cfg.seComputeInitLatency);

    for (std::uint64_t e = 0; e < epochs; ++e) {
        machine_.beginEpoch(/*deferrable=*/true);
        for (std::uint32_t c = 0; c < cores; ++c) {
            const std::uint64_t s0 = std::uint64_t(c) * slice;
            const std::uint64_t s1 =
                std::min<std::uint64_t>(s0 + slice, num_elems);
            const std::uint64_t e0 = s0 + e * chunk;
            const std::uint64_t e1 = std::min(e0 + chunk, s1);
            if (e0 >= e1)
                continue;

            if (!offloaded() || !core_offloaded[c]) {
                // In-core: walk each array's lines through the
                // private hierarchy; one access per new line
                // (SIMD-width accesses). A ref's addresses grow
                // monotonically with i and only elements that start a
                // new line (past the dedup slot's last line) access the
                // machine, so the loop hops from line to line instead
                // of visiting every element; the visited (i, address)
                // pairs are exactly those the per-element walk acts on.
                for (std::size_t r = 0; r < n_refs; ++r) {
                    const AffineRef &ref = ref_at(r);
                    const bool is_store = r >= loads.size();
                    const std::int64_t off = ref.offsetElems;
                    const std::uint64_t es = ref.elemSize;
                    Addr &ll = last_line[c * n_refs + dedup_slot[r]];
                    // i range whose j = i + off stays in bounds.
                    std::int64_t i = std::max<std::int64_t>(
                        std::int64_t(e0), -off);
                    const std::int64_t i_hi = std::min<std::int64_t>(
                        std::int64_t(e1), std::int64_t(num_elems) - off);
                    while (i < i_hi) {
                        const Addr a =
                            ref.simBase + Addr(i + off) * es;
                        const Addr al = a / line;
                        // Coalesced streams advance monotonically: a
                        // lagging offset's line was already fetched.
                        if (ll == invalidAddr || al > ll) {
                            ll = al;
                            machine_.coreAccess(c, a, line,
                                                is_store
                                                    ? AccessType::write
                                                    : AccessType::read,
                                                /*prefetch_friendly=*/
                                                true);
                        }
                        // First element whose line exceeds ll.
                        const Addr next_byte = (ll + 1) * Addr(line);
                        const std::int64_t jn = std::int64_t(
                            (next_byte - ref.simBase + es - 1) / es);
                        i = std::max(i + 1, jn - off);
                    }
                }
                machine_.coreCompute(c, flops_per_elem *
                                            double(e1 - e0));
                continue;
            }

            // NSC: compute sits at the bank of the (first) store
            // stream's current line; loads forward their lines there.
            const AffineRef &site_ref =
                stores.empty() ? loads.front() : stores.front();
            std::uint64_t i = e0;
            while (i < e1) {
                const Addr site_addr =
                    site_ref.simBase + Addr(i) * site_ref.elemSize;
                const std::uint64_t per_line =
                    std::max<std::uint64_t>(1, line / site_ref.elemSize);
                const std::uint64_t group_end = std::min<std::uint64_t>(
                    e1, (i / per_line + 1) * per_line);
                const BankId site = machine_.bankOfSim(site_addr);

                for (std::size_t r = 0; r < n_refs; ++r) {
                    const AffineRef &ref = ref_at(r);
                    const bool is_store = r >= loads.size();
                    const std::int64_t off = ref.offsetElems;
                    const std::uint64_t es = ref.elemSize;
                    Addr &ll = last_line[c * n_refs + dedup_slot[r]];
                    BankId &cb = cur_bank[c * n_refs + r];
                    // Same line-hopping walk as the in-core path.
                    std::int64_t g = std::max<std::int64_t>(
                        std::int64_t(i), -off);
                    const std::int64_t g_hi = std::min<std::int64_t>(
                        std::int64_t(group_end),
                        std::int64_t(num_elems) - off);
                    while (g < g_hi) {
                        const Addr a =
                            ref.simBase + Addr(g + off) * es;
                        const Addr al = a / line;
                        if (ll == invalidAddr || al > ll) {
                            ll = al;
                            const BankId home = machine_.bankOfSim(a);
                            // Affine streams execute as strided
                            // sub-streams: every participating bank
                            // works on its own stripe after one
                            // configuration, so no per-line migration
                            // is paid (only irregular streams
                            // migrate).
                            cb = home;
                            machine_.l3StreamAccess(home, a, line,
                                                    is_store
                                                        ? AccessType::write
                                                        : AccessType::read);
                            if (!is_store && home != site)
                                machine_.forwardData(home, site, line);
                        }
                        const Addr next_byte = (ll + 1) * Addr(line);
                        const std::int64_t jn = std::int64_t(
                            (next_byte - ref.simBase + es - 1) / es);
                        g = std::max(g + 1, jn - off);
                    }
                }
                machine_.seCompute(site,
                                   flops_per_elem * double(group_end - i));
                i = group_end;
            }
            // Coarse-grained credits core -> current site.
            const std::uint64_t credits =
                (e1 - e0 + creditBatch - 1) / creditBatch;
            const BankId credit_bank = machine_.bankOfSim(
                site_ref.simBase + Addr(e1 - 1) * site_ref.elemSize);
            for (std::uint64_t k = 0; k < credits; ++k)
                machine_.creditMessage(c, credit_bank);
        }
        // Retried offload setup serializes before the first epoch's
        // pipeline fill.
        machine_.endEpoch(e == 0 ? floor + setup_penalty : floor, phase);
    }

    if (tr) {
        for (std::uint32_t c = 0; c < cores; ++c) {
            if (core_trace[c] != 0)
                tr->streamEnd(core_trace[c], machine_.stats().cycles);
        }
    }
}

AccessOutcome
StreamExecutor::streamStep(MigratingStream &stream, Addr vaddr,
                           std::uint32_t bytes, AccessType type,
                           bool sequential)
{
    if (!offloaded() || stream.inCoreFallback_) {
        const AccessOutcome out = machine_.coreAccess(
            stream.owner_, vaddr, bytes, type, sequential);
        stream.chain_ += double(out.latency);
        return out;
    }
    const Addr line = vaddr / machine_.config().lineSize;
    if (line == stream.lastLine_ && type == AccessType::read) {
        // Served out of the stream's line buffer.
        AccessOutcome out;
        out.bank = stream.bank_;
        out.latency = 0;
        return out;
    }
    const BankId home = machine_.bankOfSim(vaddr);
    obs::ChromeTracer *tr = machine_.tracer();
    if (stream.bank_ == invalidBank) {
        double penalty = 0.0;
        if (!offloadAdmitted(stream.owner_, home, penalty)) {
            // Retries exhausted: this stream degrades to in-core
            // execution for the rest of its life (until reconfigured).
            stream.inCoreFallback_ = true;
            stream.chain_ += penalty;
            if (tr && stream.traceId_ != 0) {
                tr->streamInstant(stream.traceId_, "in-core-fallback",
                                  machine_.stats().cycles,
                                  detail::formatMessage("\"core\":%u",
                                                        stream.owner_));
            }
            const AccessOutcome out = machine_.coreAccess(
                stream.owner_, vaddr, bytes, type, sequential);
            stream.chain_ += double(out.latency);
            return out;
        }
        stream.chain_ += penalty;
        stream.chain_ +=
            double(machine_.configStream(stream.owner_, home));
        stream.bank_ = home;
        if (tr && stream.traceId_ == 0) {
            // Implicitly configured stream (no explicit configure()).
            stream.traceId_ = ++nextStreamId_;
            tr->streamBegin(stream.traceId_, "irregular", stream.owner_,
                            home, machine_.stats().cycles);
        }
    } else if (home != stream.bank_) {
        if (audit_) {
            SIM_CHECK("nsc", machine_.bankLive(home),
                      "stream migrating to dead bank %u", home);
        }
        if (tr && stream.traceId_ != 0) {
            tr->streamInstant(stream.traceId_, "migrate",
                              machine_.stats().cycles,
                              detail::formatMessage(
                                  "\"from\":%u,\"to\":%u",
                                  stream.bank_, home));
        }
        stream.chain_ +=
            double(machine_.migrateStream(stream.bank_, home));
        stream.bank_ = home;
    }
    const AccessOutcome out =
        machine_.l3StreamAccess(stream.bank_, vaddr, bytes, type);
    stream.lastLine_ = line;
    stream.chain_ += double(out.latency);
    maybeCredit(stream);
    return out;
}

AccessOutcome
StreamExecutor::indirect(MigratingStream &stream, Addr vaddr,
                         std::uint32_t bytes, AccessType type)
{
    if (!offloaded() || stream.inCoreFallback_) {
        const AccessOutcome out =
            machine_.coreAccess(stream.owner_, vaddr, bytes, type);
        stream.chain_ += double(out.latency);
        return out;
    }
    if (stream.bank_ == invalidBank)
        SIM_PANIC("nsc", "indirect from an unconfigured stream");
    const AccessOutcome out =
        machine_.l3StreamAccess(stream.bank_, vaddr, bytes, type);
    stream.chain_ += double(out.latency);
    maybeCredit(stream);
    return out;
}

void
StreamExecutor::configure(MigratingStream &stream, Addr vaddr)
{
    obs::ChromeTracer *tr = machine_.tracer();
    if (tr && stream.traceId_ != 0) {
        // Reconfiguration ends the previous lifetime span.
        tr->streamEnd(stream.traceId_, machine_.stats().cycles);
        stream.traceId_ = 0;
    }
    stream.lastLine_ = invalidAddr;
    stream.inCoreFallback_ = false;
    if (!offloaded()) {
        stream.bank_ = invalidBank;
        return;
    }
    const BankId home = machine_.bankOfSim(vaddr);
    double penalty = 0.0;
    if (!offloadAdmitted(stream.owner_, home, penalty)) {
        stream.inCoreFallback_ = true;
        stream.bank_ = invalidBank;
        stream.chain_ += penalty;
        if (tr) {
            stream.traceId_ = ++nextStreamId_;
            tr->streamBegin(stream.traceId_, "in-core-fallback",
                            stream.owner_, invalidBank,
                            machine_.stats().cycles);
        }
        return;
    }
    stream.chain_ += penalty;
    machine_.configStream(stream.owner_, home);
    stream.bank_ = home;
    if (tr) {
        stream.traceId_ = ++nextStreamId_;
        tr->streamBegin(stream.traceId_, "irregular", stream.owner_, home,
                        machine_.stats().cycles);
    }
}

void
StreamExecutor::compute(const MigratingStream &stream, double flops)
{
    if (offloaded() && !stream.inCoreFallback_) {
        machine_.seCompute(stream.bank_ == invalidBank ? 0 : stream.bank_,
                           flops);
    } else {
        machine_.coreCompute(stream.owner_, flops);
    }
}

void
StreamExecutor::maybeCredit(MigratingStream &stream)
{
    if (++stream.sinceCredit_ >= creditBatch) {
        stream.sinceCredit_ = 0;
        machine_.creditMessage(stream.owner_, stream.bank_);
    }
}

} // namespace affalloc::nsc
