/**
 * @file
 * Near-stream-computing execution model (§2). Workloads express their
 * access patterns as streams; the executor replays them against the
 * machine under one of the three evaluated modes:
 *
 *  - ExecMode::inCore   — streams run at the cores (loads/stores walk
 *    the private hierarchy; no offloading);
 *  - ExecMode::nearL3   — streams offload to L3 stream engines,
 *    migrate along their data, and forward operands to the consumer
 *    stream's bank (Fig. 1(b));
 *  - ExecMode::affAlloc — identical execution to nearL3; the layout
 *    produced by the affinity allocator is what changes the traffic.
 *
 * The executor provides bulk affine kernels (Fig. 2(a)) plus building
 * blocks for irregular workloads: migrating streams (edge scans,
 * pointer chasing per Fig. 2(b)) and indirect/atomic requests
 * (Fig. 2(c)).
 */

#ifndef AFFALLOC_NSC_STREAM_EXECUTOR_HH
#define AFFALLOC_NSC_STREAM_EXECUTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nsc/machine.hh"
#include "sim/types.hh"

namespace affalloc::nsc
{

/** One array operand of an affine stream kernel. */
struct AffineRef
{
    /** Simulated base address of element 0. */
    Addr simBase = 0;
    /** Element size in bytes. */
    std::uint32_t elemSize = 4;
    /** Access element [i + offsetElems] at iteration i (stencils). */
    std::int64_t offsetElems = 0;
};

/**
 * A stream that walks memory and migrates between L3 banks as its
 * access pattern crosses interleave boundaries (NSC modes), or issues
 * from a fixed core (in-core mode). Used for edge-array scans and
 * pointer chasing.
 */
class MigratingStream
{
  public:
    /** @param owner core that configured the stream. */
    explicit MigratingStream(CoreId owner = 0) : owner_(owner) {}

    /** Current bank the stream executes at (NSC modes). */
    BankId currentBank() const { return bank_; }
    /** Owning core. */
    CoreId owner() const { return owner_; }
    /** Accumulated serial-chain latency since reset. */
    double chainLatency() const { return chain_; }
    /** Reset the chain accumulator (new dependence chain). */
    void resetChain() { chain_ = 0.0; }
    /**
     * Whether this stream exhausted its offload retries and now
     * executes at its owning core despite an NSC mode (graceful
     * degradation under offload rejection). Cleared by configure().
     */
    bool fellBackInCore() const { return inCoreFallback_; }

  private:
    friend class StreamExecutor;
    CoreId owner_;
    BankId bank_ = invalidBank;
    double chain_ = 0.0;
    Addr lastLine_ = invalidAddr;
    std::uint32_t sinceCredit_ = 0;
    bool inCoreFallback_ = false;
    /** Tracer lane id while a lifetime span is open (0 = untraced). */
    std::uint32_t traceId_ = 0;
};

/**
 * Executes stream programs against a Machine under a mode. Stateless
 * apart from configuration; all hardware state lives in the Machine.
 */
class StreamExecutor
{
  public:
    /** Bind to a machine and execution mode. */
    StreamExecutor(Machine &m, ExecMode mode);
    ~StreamExecutor();

    StreamExecutor(const StreamExecutor &) = delete;
    StreamExecutor &operator=(const StreamExecutor &) = delete;

    /** The mode streams execute under. */
    ExecMode mode() const { return mode_; }
    /** Whether streams are offloaded to L3 (either NSC mode). */
    bool offloaded() const { return mode_ != ExecMode::inCore; }
    /** The machine. */
    Machine &machine() { return machine_; }

    // --------------------------------------------------- affine kernels
    /**
     * Run an elementwise affine kernel over @p num_elems iterations:
     * stores[m][i] = f(loads[k][i + offset_k]). Work is partitioned
     * statically across all cores; in NSC modes each load stream
     * forwards its lines to the store stream's bank and compute runs
     * on the bank's SE thread. Charges all traffic/occupancy and
     * advances simulated time in epochs.
     *
     * @param flops_per_elem compute intensity of f.
     */
    void affineKernel(const std::vector<AffineRef> &loads,
                      const std::vector<AffineRef> &stores,
                      std::uint64_t num_elems, double flops_per_elem,
                      const std::string &phase = "");

    // ------------------------------------------------ irregular streams
    /**
     * Sequential stream access (scan or pointer-chase step) by
     * @p stream at @p vaddr. In NSC modes the stream migrates to the
     * line's home bank when it moves (offload traffic) and accesses
     * locally; in-core mode issues from the owning core. Duplicate
     * accesses to the stream's last line are free (stream buffer).
     * Chain latency accumulates into the stream.
     */
    AccessOutcome streamStep(MigratingStream &stream, Addr vaddr,
                             std::uint32_t bytes, AccessType type,
                             bool sequential = true);

    /**
     * Indirect request from @p stream's current location to the home
     * bank of @p vaddr (A[B[i]] traffic, Fig. 1(c)). Does not migrate
     * the stream.
     */
    AccessOutcome indirect(MigratingStream &stream, Addr vaddr,
                           std::uint32_t bytes, AccessType type);

    /** Configure (offload) @p stream starting at the bank of @p vaddr. */
    void configure(MigratingStream &stream, Addr vaddr);

    /** Compute attached to @p stream at its current site. */
    void compute(const MigratingStream &stream, double flops);

    /** Credit-batch size for coarse-grained core<->SE sync. */
    std::uint32_t creditBatch = 256;

  private:
    void maybeCredit(MigratingStream &stream);

    /**
     * Try to get an offload admitted at @p bank: retries NACKed
     * requests with capped exponential backoff per the fault plan,
     * accumulating the wasted round-trips and backoff into
     * @p penalty (cycles). Returns false when retries are exhausted
     * (the caller must fall back to in-core execution).
     */
    bool offloadAdmitted(CoreId core, BankId bank, double &penalty);

    /**
     * SimCheck audit: offload conservation — every offload attempt
     * either got admitted at a bank or fell back in-core; nothing is
     * left stranded (admitted but never configured, or neither).
     */
    void auditOffloads(simcheck::CheckContext &ctx) const;

    Machine &machine_;
    ExecMode mode_;

    /** Auditor registration id (unregistered in the destructor). */
    int auditId_ = 0;
    /** Cached config().simcheck.audit: gates per-offload SIM_CHECKs. */
    bool audit_ = false;
    // Offload-conservation shadow counters (simcheck audit).
    std::uint64_t offloadAttempts_ = 0;
    std::uint64_t offloadAdmits_ = 0;
    std::uint64_t offloadFallbacks_ = 0;
    /** Next stream-lifecycle trace id (ids are 1-based; 0 = untraced). */
    std::uint32_t nextStreamId_ = 0;
};

} // namespace affalloc::nsc

#endif // AFFALLOC_NSC_STREAM_EXECUTOR_HH
