#include "mem/cache_model.hh"

#include "sim/log.hh"

namespace affalloc::mem
{

CacheModel::CacheModel(std::uint64_t size_bytes, std::uint32_t assoc,
                       std::uint32_t line_size, bool hashed_index)
    : assoc_(assoc), hashedIndex_(hashed_index)
{
    if (assoc == 0 || line_size == 0 || size_bytes == 0)
        SIM_FATAL("mem", "cache parameters must be nonzero");
    const std::uint64_t lines = size_bytes / line_size;
    if (lines % assoc != 0)
        SIM_FATAL("mem", "cache lines (%llu) not divisible by assoc (%u)",
              (unsigned long long)lines, assoc);
    numSets_ = static_cast<std::uint32_t>(lines / assoc);
    if ((numSets_ & (numSets_ - 1)) != 0)
        SIM_FATAL("mem", "cache set count must be a power of two (%u)", numSets_);
    setMask_ = numSets_ - 1;
    ways_.resize(std::uint64_t(numSets_) * assoc_);
}

CacheAccessResult
CacheModel::access(Addr line, bool is_write)
{
    CacheAccessResult res;
    Way *set = &ways_[std::uint64_t(setIndexOf(line)) * assoc_];
    ++useClock_;

    Way *lru = &set[0];
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Way &way = set[w];
        if (way.line == line) {
            way.lastUse = useClock_;
            way.dirty = way.dirty || is_write;
            res.hit = true;
            return res;
        }
        if (way.line == invalidAddr) {
            // Prefer an empty way over any valid LRU victim.
            if (lru->line != invalidAddr || way.lastUse < lru->lastUse)
                lru = &way;
        } else if (lru->line != invalidAddr && way.lastUse < lru->lastUse) {
            lru = &way;
        }
    }

    // Miss: fill into the victim way.
    if (lru->line != invalidAddr) {
        if (lru->dirty) {
            res.writeback = true;
            res.victimLine = lru->line;
        }
    } else {
        ++residentLines_;
    }
    lru->line = line;
    lru->lastUse = useClock_;
    lru->dirty = is_write;
    return res;
}

bool
CacheModel::contains(Addr line) const
{
    const Way *set = &ways_[std::uint64_t(setIndexOf(line)) * assoc_];
    for (std::uint32_t w = 0; w < assoc_; ++w)
        if (set[w].line == line)
            return true;
    return false;
}

std::string
CacheModel::checkIntegrity() const
{
    std::uint64_t live = 0;
    for (std::uint32_t s = 0; s < numSets_; ++s) {
        const Way *set = &ways_[std::uint64_t(s) * assoc_];
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (set[w].line == invalidAddr)
                continue;
            ++live;
            // A resident line must index to the set holding it.
            if (setIndexOf(set[w].line) != s) {
                return detail::formatMessage(
                    "line %llx resident in set %u but indexes to set %u",
                    (unsigned long long)set[w].line, s,
                    setIndexOf(set[w].line));
            }
            for (std::uint32_t v = w + 1; v < assoc_; ++v) {
                if (set[v].line == set[w].line) {
                    return detail::formatMessage(
                        "line %llx duplicated in set %u (ways %u and %u)",
                        (unsigned long long)set[w].line, s, w, v);
                }
            }
        }
    }
    if (live != residentLines_) {
        return detail::formatMessage(
            "residentLines %llu != %llu live ways",
            (unsigned long long)residentLines_, (unsigned long long)live);
    }
    if (live > std::uint64_t(numSets_) * assoc_) {
        return detail::formatMessage(
            "occupancy %llu exceeds capacity %llu",
            (unsigned long long)live,
            (unsigned long long)(std::uint64_t(numSets_) * assoc_));
    }
    return {};
}

void
CacheModel::reset()
{
    for (auto &way : ways_)
        way = Way{};
    residentLines_ = 0;
    useClock_ = 0;
}

} // namespace affalloc::mem
