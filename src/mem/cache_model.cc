#include "mem/cache_model.hh"

#include "sim/log.hh"

namespace affalloc::mem
{

CacheModel::CacheModel(std::uint64_t size_bytes, std::uint32_t assoc,
                       std::uint32_t line_size, bool hashed_index)
    : assoc_(assoc), hashedIndex_(hashed_index)
{
    if (assoc == 0 || line_size == 0 || size_bytes == 0)
        fatal("cache parameters must be nonzero");
    const std::uint64_t lines = size_bytes / line_size;
    if (lines % assoc != 0)
        fatal("cache lines (%llu) not divisible by assoc (%u)",
              (unsigned long long)lines, assoc);
    numSets_ = static_cast<std::uint32_t>(lines / assoc);
    if ((numSets_ & (numSets_ - 1)) != 0)
        fatal("cache set count must be a power of two (%u)", numSets_);
    setMask_ = numSets_ - 1;
    ways_.resize(std::uint64_t(numSets_) * assoc_);
}

CacheAccessResult
CacheModel::access(Addr line, bool is_write)
{
    CacheAccessResult res;
    Way *set = &ways_[std::uint64_t(setIndexOf(line)) * assoc_];
    ++useClock_;

    Way *lru = &set[0];
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Way &way = set[w];
        if (way.line == line) {
            way.lastUse = useClock_;
            way.dirty = way.dirty || is_write;
            res.hit = true;
            return res;
        }
        if (way.line == invalidAddr) {
            // Prefer an empty way over any valid LRU victim.
            if (lru->line != invalidAddr || way.lastUse < lru->lastUse)
                lru = &way;
        } else if (lru->line != invalidAddr && way.lastUse < lru->lastUse) {
            lru = &way;
        }
    }

    // Miss: fill into the victim way.
    if (lru->line != invalidAddr) {
        if (lru->dirty) {
            res.writeback = true;
            res.victimLine = lru->line;
        }
    } else {
        ++residentLines_;
    }
    lru->line = line;
    lru->lastUse = useClock_;
    lru->dirty = is_write;
    return res;
}

bool
CacheModel::contains(Addr line) const
{
    const Way *set = &ways_[std::uint64_t(setIndexOf(line)) * assoc_];
    for (std::uint32_t w = 0; w < assoc_; ++w)
        if (set[w].line == line)
            return true;
    return false;
}

void
CacheModel::reset()
{
    for (auto &way : ways_)
        way = Way{};
    residentLines_ = 0;
    useClock_ = 0;
}

} // namespace affalloc::mem
