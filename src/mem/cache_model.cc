#include "mem/cache_model.hh"

#include "sim/log.hh"

namespace affalloc::mem
{

CacheModel::CacheModel(std::uint64_t size_bytes, std::uint32_t assoc,
                       std::uint32_t line_size, bool hashed_index)
    : assoc_(assoc), hashedIndex_(hashed_index)
{
    if (assoc == 0 || line_size == 0 || size_bytes == 0)
        SIM_FATAL("mem", "cache parameters must be nonzero");
    const std::uint64_t lines = size_bytes / line_size;
    if (lines % assoc != 0)
        SIM_FATAL("mem", "cache lines (%llu) not divisible by assoc (%u)",
              (unsigned long long)lines, assoc);
    numSets_ = static_cast<std::uint32_t>(lines / assoc);
    if ((numSets_ & (numSets_ - 1)) != 0)
        SIM_FATAL("mem", "cache set count must be a power of two (%u)", numSets_);
    setMask_ = numSets_ - 1;
    ways_.assign(std::uint64_t(numSets_) * assoc_, invalidEntry);
}

CacheAccessResult
CacheModel::access(Addr line, bool is_write)
{
    CacheAccessResult res;
    std::uint64_t *set = &ways_[std::uint64_t(setIndexOf(line)) * assoc_];
    const std::uint64_t clean = entryOf(line, false);

    std::uint32_t w = 0;
    for (; w < assoc_; ++w) {
        const std::uint64_t e = set[w];
        if ((e & ~std::uint64_t(1)) == clean) {
            // Hit: rotate [0, w] right so the line becomes MRU.
            const std::uint64_t mru = e | (is_write ? 1 : 0);
            for (std::uint32_t k = w; k > 0; --k)
                set[k] = set[k - 1];
            set[0] = mru;
            res.hit = true;
            return res;
        }
        if (e == invalidEntry)
            break; // valid lines form a prefix; nothing past this
    }

    // Miss: fill at the front. The victim is the LRU (last valid) way
    // when the set is full, otherwise the first empty way absorbs the
    // shift and residency grows.
    if (w == assoc_) {
        w = assoc_ - 1;
        const std::uint64_t victim = set[w];
        if (dirtyOf(victim)) {
            res.writeback = true;
            res.victimLine = lineOf(victim);
        }
    } else {
        ++residentLines_;
    }
    for (std::uint32_t k = w; k > 0; --k)
        set[k] = set[k - 1];
    set[0] = entryOf(line, is_write);
    return res;
}

CacheAccessResult
CacheModel::accessCapped(Addr line, bool is_write, std::uint32_t max_ways)
{
    if (max_ways >= assoc_)
        return access(line, is_write);
    if (max_ways == 0)
        SIM_FATAL("mem", "accessCapped needs at least one way");

    CacheAccessResult res;
    std::uint64_t *set = &ways_[std::uint64_t(setIndexOf(line)) * assoc_];
    const std::uint64_t clean = entryOf(line, false);

    std::uint32_t w = 0;
    for (; w < assoc_; ++w) {
        const std::uint64_t e = set[w];
        if ((e & ~std::uint64_t(1)) == clean) {
            // Hit in place: no recency promotion, so the capped
            // stream's footprint stays pinned to the low ways.
            set[w] = e | (is_write ? 1 : 0);
            res.hit = true;
            return res;
        }
        if (e == invalidEntry)
            break;
    }

    // Miss: fill at recency position base = assoc - max_ways, leaving
    // the max_ways - 1 younger capped slots plus this fill as the only
    // ways this stream can ever occupy. Positions [0, base) — the
    // protected tenant ways — are never displaced.
    const std::uint32_t base = assoc_ - max_ways;
    if (w == assoc_) {
        const std::uint64_t victim = set[assoc_ - 1];
        if (dirtyOf(victim)) {
            res.writeback = true;
            res.victimLine = lineOf(victim);
        }
        for (std::uint32_t k = assoc_ - 1; k > base; --k)
            set[k] = set[k - 1];
        set[base] = entryOf(line, is_write);
    } else {
        const std::uint32_t pos = w < base ? w : base;
        for (std::uint32_t k = w; k > pos; --k)
            set[k] = set[k - 1];
        set[pos] = entryOf(line, is_write);
        ++residentLines_;
    }
    return res;
}

bool
CacheModel::contains(Addr line) const
{
    const std::uint64_t *set =
        &ways_[std::uint64_t(setIndexOf(line)) * assoc_];
    const std::uint64_t clean = entryOf(line, false);
    for (std::uint32_t w = 0; w < assoc_ && set[w] != invalidEntry; ++w)
        if ((set[w] & ~std::uint64_t(1)) == clean)
            return true;
    return false;
}

std::string
CacheModel::checkIntegrity() const
{
    std::uint64_t live = 0;
    for (std::uint32_t s = 0; s < numSets_; ++s) {
        const std::uint64_t *set = &ways_[std::uint64_t(s) * assoc_];
        bool seen_invalid = false;
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (set[w] == invalidEntry) {
                seen_invalid = true;
                continue;
            }
            if (seen_invalid) {
                return detail::formatMessage(
                    "set %u violates the recency-order invariant "
                    "(valid way %u after an invalid way)", s, w);
            }
            ++live;
            const Addr line = lineOf(set[w]);
            // A resident line must index to the set holding it.
            if (setIndexOf(line) != s) {
                return detail::formatMessage(
                    "line %llx resident in set %u but indexes to set %u",
                    (unsigned long long)line, s, setIndexOf(line));
            }
            for (std::uint32_t v = w + 1; v < assoc_; ++v) {
                if (set[v] != invalidEntry && lineOf(set[v]) == line) {
                    return detail::formatMessage(
                        "line %llx duplicated in set %u (ways %u and %u)",
                        (unsigned long long)line, s, w, v);
                }
            }
        }
    }
    if (live != residentLines_) {
        return detail::formatMessage(
            "residentLines %llu != %llu live ways",
            (unsigned long long)residentLines_, (unsigned long long)live);
    }
    if (live > std::uint64_t(numSets_) * assoc_) {
        return detail::formatMessage(
            "occupancy %llu exceeds capacity %llu",
            (unsigned long long)live,
            (unsigned long long)(std::uint64_t(numSets_) * assoc_));
    }
    return {};
}

void
CacheModel::reset()
{
    ways_.assign(ways_.size(), invalidEntry);
    residentLines_ = 0;
}

} // namespace affalloc::mem
