#include "mem/address_space.hh"

#include "sim/log.hh"

namespace affalloc::mem
{

void
AddressSpace::registerRange(const void *host_ptr, std::size_t bytes,
                            Addr sim_start)
{
    const auto start = reinterpret_cast<std::uintptr_t>(host_ptr);
    if (bytes == 0)
        SIM_FATAL("mem", "cannot register empty host range");
    HostRange range{start, start + bytes, sim_start};
    // Reject overlap with the neighbouring ranges.
    auto next = ranges_.lower_bound(start);
    if (next != ranges_.end() && next->second.hostStart < range.hostEnd)
        SIM_FATAL("mem", "host range overlaps an existing registration");
    if (next != ranges_.begin()) {
        auto prev = std::prev(next);
        if (prev->second.hostEnd > start)
            SIM_FATAL("mem", "host range overlaps an existing registration");
    }
    ranges_.emplace(start, range);
    mru_.fill(nullptr);
}

void
AddressSpace::unregisterRange(const void *host_ptr)
{
    const auto start = reinterpret_cast<std::uintptr_t>(host_ptr);
    if (ranges_.erase(start) == 0)
        SIM_FATAL("mem", "unregister of unknown host range %p", host_ptr);
    mru_.fill(nullptr);
}

std::size_t
AddressSpace::numRangesInSimWindow(Addr sim_lo, Addr sim_hi) const
{
    std::size_t n = 0;
    for (const auto &[host, range] : ranges_)
        if (range.simStart >= sim_lo && range.simStart < sim_hi)
            ++n;
    return n;
}

const HostRange *
AddressSpace::rangeContaining(const void *host_ptr) const
{
    const auto p = reinterpret_cast<std::uintptr_t>(host_ptr);
    if (!referenceMode_) {
        for (std::size_t s = 0; s < mruSlots; ++s) {
            const HostRange *r = mru_[s];
            if (r && p >= r->hostStart && p < r->hostEnd) {
                // Rotate [0, s] right so the hit becomes MRU.
                for (; s > 0; --s)
                    mru_[s] = mru_[s - 1];
                mru_[0] = r;
                return r;
            }
        }
    }
    auto it = ranges_.upper_bound(p);
    if (it == ranges_.begin())
        return nullptr;
    --it;
    const HostRange &r = it->second;
    if (p < r.hostStart || p >= r.hostEnd)
        return nullptr;
    if (!referenceMode_) {
        for (std::size_t s = mruSlots - 1; s > 0; --s)
            mru_[s] = mru_[s - 1];
        mru_[0] = &r;
    }
    return &r;
}

const HostRange *
AddressSpace::rangeStartingAt(const void *host_ptr) const
{
    const auto p = reinterpret_cast<std::uintptr_t>(host_ptr);
    auto it = ranges_.find(p);
    return it == ranges_.end() ? nullptr : &it->second;
}

Addr
AddressSpace::simAddrOf(const void *host_ptr) const
{
    const HostRange *r = rangeContaining(host_ptr);
    if (!r)
        SIM_FATAL("mem", "host pointer %p is not in any registered range", host_ptr);
    const auto p = reinterpret_cast<std::uintptr_t>(host_ptr);
    return r->simStart + (p - r->hostStart);
}

Addr
AddressSpace::trySimAddrOf(const void *host_ptr) const
{
    const HostRange *r = rangeContaining(host_ptr);
    if (!r)
        return invalidAddr;
    const auto p = reinterpret_cast<std::uintptr_t>(host_ptr);
    return r->simStart + (p - r->hostStart);
}

} // namespace affalloc::mem
