#include "mem/iot.hh"

#include <algorithm>

#include "mem/address.hh"
#include "sim/log.hh"

namespace affalloc::mem
{

InterleaveOverrideTable::InterleaveOverrideTable(std::uint32_t capacity)
    : capacity_(capacity)
{
}

std::size_t
InterleaveOverrideTable::sortedUpperBound(Addr paddr) const
{
    const auto it = std::upper_bound(
        sorted_.begin(), sorted_.end(), paddr,
        [this](Addr p, std::uint32_t idx) { return p < entries_[idx].start; });
    return static_cast<std::size_t>(it - sorted_.begin());
}

std::size_t
InterleaveOverrideTable::insert(Addr start, Addr end, std::uint32_t intrlv)
{
    if (entries_.size() >= capacity_)
        SIM_FATAL("mem", "IOT full (%u entries)", capacity_);
    if (start >= end)
        SIM_FATAL("mem", "IOT range empty [%#lx, %#lx)", (unsigned long)start,
              (unsigned long)end);
    if (intrlv < minInterleave || (intrlv & (intrlv - 1)) != 0)
        SIM_FATAL("mem", "IOT interleaving %u invalid (must be pow2 >= %u)", intrlv,
              minInterleave);
    // Entries are non-overlapping and sorted_ orders them by start, so
    // only the two neighbours of the insertion point can overlap the
    // new range.
    const std::size_t pos = sortedUpperBound(start);
    if (pos > 0 && entries_[sorted_[pos - 1]].end > start)
        SIM_FATAL("mem", "IOT range overlaps existing entry");
    if (pos < sorted_.size() && entries_[sorted_[pos]].start < end)
        SIM_FATAL("mem", "IOT range overlaps existing entry");
    const std::uint32_t idx = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(IotEntry{start, end, intrlv});
    sorted_.insert(sorted_.begin() + pos, idx);
    return idx;
}

void
InterleaveOverrideTable::grow(std::size_t idx, Addr new_end)
{
    IotEntry &e = entries_.at(idx);
    if (new_end < e.end)
        SIM_FATAL("mem", "IOT entries can only grow (end %#lx -> %#lx)",
              (unsigned long)e.end, (unsigned long)new_end);
    // Growing moves only `end` upward, so the sole entry that can
    // newly overlap is the next one in start order.
    const std::size_t pos = sortedUpperBound(e.start);
    if (pos < sorted_.size() && entries_[sorted_[pos]].start < new_end)
        SIM_FATAL("mem", "IOT grow would overlap another entry");
    e.end = new_end;
}

const IotEntry *
InterleaveOverrideTable::lookupSlow(Addr paddr) const
{
    if (referenceMode_) {
        for (const auto &e : entries_) {
            if (e.contains(paddr))
                return &e;
        }
        return nullptr;
    }
    const std::size_t pos = sortedUpperBound(paddr);
    if (pos == 0)
        return nullptr;
    const std::uint32_t idx = sorted_[pos - 1];
    if (!entries_[idx].contains(paddr))
        return nullptr;
    mru_ = static_cast<std::int32_t>(idx);
    return &entries_[idx];
}

} // namespace affalloc::mem
