#include "mem/iot.hh"

#include "mem/address.hh"
#include "sim/log.hh"

namespace affalloc::mem
{

InterleaveOverrideTable::InterleaveOverrideTable(std::uint32_t capacity)
    : capacity_(capacity)
{
}

std::size_t
InterleaveOverrideTable::insert(Addr start, Addr end, std::uint32_t intrlv)
{
    if (entries_.size() >= capacity_)
        SIM_FATAL("mem", "IOT full (%u entries)", capacity_);
    if (start >= end)
        SIM_FATAL("mem", "IOT range empty [%#lx, %#lx)", (unsigned long)start,
              (unsigned long)end);
    if (intrlv < minInterleave || (intrlv & (intrlv - 1)) != 0)
        SIM_FATAL("mem", "IOT interleaving %u invalid (must be pow2 >= %u)", intrlv,
              minInterleave);
    for (const auto &e : entries_) {
        if (start < e.end && e.start < end)
            SIM_FATAL("mem", "IOT range overlaps existing entry");
    }
    entries_.push_back(IotEntry{start, end, intrlv});
    return entries_.size() - 1;
}

void
InterleaveOverrideTable::grow(std::size_t idx, Addr new_end)
{
    IotEntry &e = entries_.at(idx);
    if (new_end < e.end)
        SIM_FATAL("mem", "IOT entries can only grow (end %#lx -> %#lx)",
              (unsigned long)e.end, (unsigned long)new_end);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (i == idx)
            continue;
        const auto &o = entries_[i];
        if (e.start < o.end && o.start < new_end)
            SIM_FATAL("mem", "IOT grow would overlap another entry");
    }
    e.end = new_end;
}

const IotEntry *
InterleaveOverrideTable::lookup(Addr paddr) const
{
    for (const auto &e : entries_) {
        if (e.contains(paddr))
            return &e;
    }
    return nullptr;
}

} // namespace affalloc::mem
