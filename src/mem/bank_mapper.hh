/**
 * @file
 * Physical-address-to-L3-bank mapping. The default policy is the
 * baseline static-NUCA interleave (Table 2: 1 kB); the IOT overrides
 * it for physical ranges belonging to interleave pools (Eq. 1).
 */

#ifndef AFFALLOC_MEM_BANK_MAPPER_HH
#define AFFALLOC_MEM_BANK_MAPPER_HH

#include <cstdint>

#include "mem/iot.hh"
#include "sim/config.hh"
#include "sim/fault.hh"

namespace affalloc::mem
{

/**
 * Maps physical addresses to banks. Every simulated access (cache
 * controllers and both stream engines) resolves its home bank through
 * this object, so the IOT is exercised exactly where the paper's
 * hardware consults it.
 */
class BankMapper
{
  public:
    /**
     * Build for a machine; the IOT is owned externally (by the OS),
     * as is the optional fault plan (lines homed at an offline bank
     * are served by its spare).
     */
    BankMapper(const sim::MachineConfig &cfg,
               const InterleaveOverrideTable &iot,
               const sim::FaultPlan *faults = nullptr)
        : numBanks_(cfg.numBanks()),
          defaultInterleave_(cfg.l3DefaultInterleave), iot_(iot),
          faults_(faults)
    {}

    /** Home L3 bank of physical address @p paddr. */
    BankId
    bankOf(Addr paddr) const
    {
        BankId b;
        if (const IotEntry *e = iot_.lookup(paddr))
            b = e->bankOf(paddr, numBanks_);
        else
            b = defaultBankOf(paddr);
        return faults_ ? faults_->redirect(b) : b;
    }

    /** Baseline static-NUCA mapping (ignoring the IOT). */
    BankId
    defaultBankOf(Addr paddr) const
    {
        // Simple block interleave with a mixing term so consecutive
        // 1 kB blocks stripe banks while large structures still
        // spread; mirrors commodity LLC hashes being effectively
        // uniform but deterministic.
        const Addr block = paddr / defaultInterleave_;
        return static_cast<BankId>(block % numBanks_);
    }

    /** Number of banks. */
    std::uint32_t numBanks() const { return numBanks_; }

  private:
    std::uint32_t numBanks_;
    std::uint32_t defaultInterleave_;
    const InterleaveOverrideTable &iot_;
    const sim::FaultPlan *faults_ = nullptr;
};

} // namespace affalloc::mem

#endif // AFFALLOC_MEM_BANK_MAPPER_HH
