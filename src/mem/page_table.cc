#include "mem/page_table.hh"

#include <algorithm>

#include "sim/log.hh"

namespace affalloc::mem
{

void
PageTable::flushTlb()
{
    tlbVpage_.fill(invalidAddr);
    tlbPpage_.fill(invalidAddr);
}

void
PageTable::map(Addr vpage, Addr ppage)
{
    auto [it, inserted] = table_.emplace(vpage, ppage);
    if (!inserted)
        SIM_FATAL("mem", "virtual page %#lx already mapped", (unsigned long)vpage);
    (void)it;
    // A remap after unmap must not serve the stale translation.
    const std::uint32_t slot = slotOf(vpage);
    if (tlbVpage_[slot] == vpage)
        tlbVpage_[slot] = invalidAddr;
}

bool
PageTable::isMapped(Addr vpage) const
{
    return table_.count(vpage) != 0;
}

Addr
PageTable::translateMiss(Addr vaddr) const
{
    const Addr vpage = pageOf(vaddr);
    const std::uint32_t slot = slotOf(vpage);
    auto it = table_.find(vpage);
    if (it == table_.end())
        SIM_FATAL("mem", "access to unmapped virtual address %#lx",
              (unsigned long)vaddr);
    if (!referenceMode_) {
        tlbVpage_[slot] = vpage;
        tlbPpage_[slot] = it->second;
    }
    return pageBase(it->second) + pageOffset(vaddr);
}

std::optional<Addr>
PageTable::tryTranslate(Addr vaddr) const
{
    const Addr vpage = pageOf(vaddr);
    const std::uint32_t slot = slotOf(vpage);
    if (!referenceMode_ && tlbVpage_[slot] == vpage)
        return pageBase(tlbPpage_[slot]) + pageOffset(vaddr);
    auto it = table_.find(vpage);
    if (it == table_.end())
        return std::nullopt;
    if (!referenceMode_) {
        tlbVpage_[slot] = vpage;
        tlbPpage_[slot] = it->second;
    }
    return pageBase(it->second) + pageOffset(vaddr);
}

void
PageTable::unmap(Addr vpage)
{
    if (table_.erase(vpage) == 0)
        SIM_FATAL("mem", "unmap of unmapped virtual page %#lx", (unsigned long)vpage);
    const std::uint32_t slot = slotOf(vpage);
    if (tlbVpage_[slot] == vpage)
        tlbVpage_[slot] = invalidAddr;
}

std::optional<Addr>
PageTable::tlbPeek(Addr vpage) const
{
    const std::uint32_t slot = slotOf(vpage);
    if (tlbVpage_[slot] != vpage)
        return std::nullopt;
    return tlbPpage_[slot];
}

} // namespace affalloc::mem
