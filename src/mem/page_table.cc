#include "mem/page_table.hh"

#include "sim/log.hh"

namespace affalloc::mem
{

void
PageTable::map(Addr vpage, Addr ppage)
{
    auto [it, inserted] = table_.emplace(vpage, ppage);
    if (!inserted)
        SIM_FATAL("mem", "virtual page %#lx already mapped", (unsigned long)vpage);
    (void)it;
    cachedVpage_ = invalidAddr;
}

bool
PageTable::isMapped(Addr vpage) const
{
    return table_.count(vpage) != 0;
}

Addr
PageTable::translate(Addr vaddr) const
{
    const Addr vpage = pageOf(vaddr);
    if (vpage == cachedVpage_)
        return pageBase(cachedPpage_) + pageOffset(vaddr);
    auto it = table_.find(vpage);
    if (it == table_.end())
        SIM_FATAL("mem", "access to unmapped virtual address %#lx",
              (unsigned long)vaddr);
    cachedVpage_ = vpage;
    cachedPpage_ = it->second;
    return pageBase(it->second) + pageOffset(vaddr);
}

std::optional<Addr>
PageTable::tryTranslate(Addr vaddr) const
{
    const Addr vpage = pageOf(vaddr);
    auto it = table_.find(vpage);
    if (it == table_.end())
        return std::nullopt;
    return pageBase(it->second) + pageOffset(vaddr);
}

void
PageTable::unmap(Addr vpage)
{
    if (table_.erase(vpage) == 0)
        SIM_FATAL("mem", "unmap of unmapped virtual page %#lx", (unsigned long)vpage);
    cachedVpage_ = invalidAddr;
}

} // namespace affalloc::mem
