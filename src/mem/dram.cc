#include "mem/dram.hh"

#include <algorithm>

#include "sim/log.hh"
#include "sim/prof.hh"

namespace affalloc::mem
{

Dram::Dram(const sim::MachineConfig &cfg, const noc::Mesh &mesh,
           sim::Stats &stats)
    : channels_(cfg.dramChannels), lineSize_(cfg.lineSize),
      latency_(cfg.dramLatency),
      cyclesPerLine_(cfg.lineSize / cfg.dramChannelBytesPerCycle()),
      stats_(stats), epochBusy_(cfg.dramChannels, 0.0)
{
    const auto corners = mesh.cornerTiles();
    if (channels_ > corners.size())
        SIM_FATAL("mem", "more DRAM channels (%u) than mesh corners", channels_);
    controllerTiles_.assign(corners.begin(), corners.begin() + channels_);
}

Cycles
Dram::access(Addr line_addr, bool is_write)
{
    (void)is_write;
    const std::uint32_t ch = channelOf(line_addr);
    epochBusy_[ch] += cyclesPerLine_;
    stats_.dramAccesses += 1;
    stats_.dramBytes += lineSize_;
    return latency_;
}

void
Dram::chargeDeferred(const std::vector<std::uint64_t> &counts)
{
    PROF_SCOPE("mem/dram.charge_deferred");
    if (foldCache_.empty())
        foldCache_.push_back(0.0);
    for (std::uint32_t ch = 0; ch < channels_; ++ch) {
        const std::uint64_t n = counts[ch];
        while (foldCache_.size() <= n)
            foldCache_.push_back(foldCache_.back() + cyclesPerLine_);
        // In a deferred epoch every DRAM access is counted (none are
        // charged inline), so the accumulator is at its beginEpoch()
        // 0.0 and this add reproduces the serial sum bit-exactly.
        epochBusy_[ch] += foldCache_[n];
    }
}

double
Dram::maxChannelBusy() const
{
    return *std::max_element(epochBusy_.begin(), epochBusy_.end());
}

void
Dram::resetEpoch()
{
    std::fill(epochBusy_.begin(), epochBusy_.end(), 0.0);
}

} // namespace affalloc::mem
