/**
 * @file
 * DRAM channel model: four memory controllers at the mesh corners
 * (Table 2), line-interleaved across channels, with per-channel
 * bandwidth occupancy used by the epoch timing model.
 */

#ifndef AFFALLOC_MEM_DRAM_HH
#define AFFALLOC_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "noc/topology.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace affalloc::mem
{

/**
 * Bandwidth/occupancy model of the DRAM channels. Latency is a fixed
 * access latency; throughput contention is tracked per channel per
 * epoch in cycles of channel busy time.
 */
class Dram
{
  public:
    /** Build for a machine; controllers sit on the mesh corners. */
    Dram(const sim::MachineConfig &cfg, const noc::Mesh &mesh,
         sim::Stats &stats);

    /** Channel servicing physical line @p line_addr. */
    std::uint32_t
    channelOf(Addr line_addr) const
    {
        return static_cast<std::uint32_t>(line_addr % channels_);
    }

    /** Mesh tile hosting @p channel's controller. */
    TileId controllerTile(std::uint32_t channel) const
    {
        return controllerTiles_[channel];
    }

    /**
     * Account one line-sized access on the channel owning
     * @p line_addr. Returns the unloaded access latency.
     */
    Cycles access(Addr line_addr, bool is_write);

    /** Busy cycles of the most-loaded channel this epoch. */
    double maxChannelBusy() const;

    /**
     * Fold @p counts deferred accesses per channel into this epoch's
     * occupancy (shard-parallel replay: workers count accesses, the
     * barrier charges them). Exact: every access adds the same
     * cyclesPerLine_ constant, so n sequential additions from the
     * epoch's zero depend only on n — which is why the replay may
     * count per worker and fold once. The fold itself is memoized so
     * the barrier stays O(channels), not O(accesses).
     */
    void chargeDeferred(const std::vector<std::uint64_t> &counts);

    /** Reset per-epoch occupancy. */
    void resetEpoch();

    /** Fixed access latency. */
    Cycles latency() const { return latency_; }

  private:
    std::uint32_t channels_;
    std::uint32_t lineSize_;
    Cycles latency_;
    double cyclesPerLine_;
    sim::Stats &stats_;
    std::vector<TileId> controllerTiles_;
    std::vector<double> epochBusy_;
    /** foldCache_[n] == n sequential additions of cyclesPerLine_. */
    std::vector<double> foldCache_;
};

} // namespace affalloc::mem

#endif // AFFALLOC_MEM_DRAM_HH
