/**
 * @file
 * Simulated page table: maps simulated virtual pages to simulated
 * physical pages. The OS layer installs mappings (contiguous backing
 * for interleave pools, linear or randomized for the heap); the
 * memory system translates on every simulated access.
 */

#ifndef AFFALLOC_MEM_PAGE_TABLE_HH
#define AFFALLOC_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "mem/address.hh"
#include "sim/types.hh"

namespace affalloc::mem
{

/**
 * Flat single-level page table with a one-entry translation cache
 * (accesses have strong page locality).
 */
class PageTable
{
  public:
    /** Map virtual page @p vpage to physical page @p ppage. */
    void map(Addr vpage, Addr ppage);

    /** Whether @p vpage is mapped. */
    bool isMapped(Addr vpage) const;

    /** Translate a virtual address; fatal() on unmapped access. */
    Addr translate(Addr vaddr) const;

    /** Translate, returning nullopt when unmapped. */
    std::optional<Addr> tryTranslate(Addr vaddr) const;

    /** Remove a mapping (pool shrink); fatal() if absent. */
    void unmap(Addr vpage);

    /** Number of mapped pages. */
    std::size_t size() const { return table_.size(); }

  private:
    std::unordered_map<Addr, Addr> table_;
    // Last-translation cache; mutable because translate() is
    // semantically const.
    mutable Addr cachedVpage_ = invalidAddr;
    mutable Addr cachedPpage_ = invalidAddr;
};

} // namespace affalloc::mem

#endif // AFFALLOC_MEM_PAGE_TABLE_HH
