/**
 * @file
 * Simulated page table: maps simulated virtual pages to simulated
 * physical pages. The OS layer installs mappings (contiguous backing
 * for interleave pools, linear or randomized for the heap); the
 * memory system translates on every simulated access.
 */

#ifndef AFFALLOC_MEM_PAGE_TABLE_HH
#define AFFALLOC_MEM_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "mem/address.hh"
#include "sim/types.hh"

namespace affalloc::mem
{

/**
 * Flat single-level page table fronted by a software TLB: a
 * direct-mapped, multi-entry translation cache indexed by virtual page
 * number. Accesses have strong page locality but commonly stream
 * through several arrays at once (A/B/C of vecadd, frontier + edge +
 * value arrays of the graph kernels), which a single-entry cache
 * thrashes on; 1024 entries cover every concurrently-live page stream
 * even when all cores of an 8x8 machine each walk several arrays.
 *
 * The TLB is a pure host-side fast path: hits and misses return
 * exactly what the backing table returns, entries are invalidated on
 * unmap and overwritten on remap, and setReferenceMode(true) bypasses
 * it entirely (the digest-equivalence test runs both ways).
 */
class PageTable
{
  public:
    /** Software-TLB entry count (power of two, direct-mapped). */
    static constexpr std::uint32_t tlbEntries = 1024;

    PageTable() { flushTlb(); }

    /** Map virtual page @p vpage to physical page @p ppage. */
    void map(Addr vpage, Addr ppage);

    /** Whether @p vpage is mapped. */
    bool isMapped(Addr vpage) const;

    /** Translate a virtual address; fatal() on unmapped access. */
    Addr
    translate(Addr vaddr) const
    {
        const Addr vpage = pageOf(vaddr);
        const std::uint32_t slot = slotOf(vpage);
        if (!referenceMode_ && tlbVpage_[slot] == vpage)
            return pageBase(tlbPpage_[slot]) + pageOffset(vaddr);
        return translateMiss(vaddr);
    }

    /** Translate, returning nullopt when unmapped. */
    std::optional<Addr> tryTranslate(Addr vaddr) const;

    /** Remove a mapping (pool shrink); fatal() if absent. */
    void unmap(Addr vpage);

    /** Number of mapped pages. */
    std::size_t size() const { return table_.size(); }

    /** Drop every cached translation. */
    void flushTlb();

    /**
     * Bypass the TLB and look pages up in the backing table directly
     * (reference mode). Used by the digest-equivalence regression test
     * to prove the fast path is behavior-preserving.
     */
    void setReferenceMode(bool reference) { referenceMode_ = reference; }

    /**
     * Probe the TLB slot for @p vpage without filling it: the cached
     * physical page if resident, nullopt otherwise. Test-only — lets
     * the TLB unit tests observe fills, evictions and invalidations.
     */
    std::optional<Addr> tlbPeek(Addr vpage) const;

  private:
    std::uint32_t slotOf(Addr vpage) const
    {
        return static_cast<std::uint32_t>(vpage) & (tlbEntries - 1);
    }

    /** TLB-miss path of translate(): backing lookup + TLB fill. */
    Addr translateMiss(Addr vaddr) const;

    std::unordered_map<Addr, Addr> table_;
    bool referenceMode_ = false;
    // Direct-mapped translation cache; mutable because translate() is
    // semantically const.
    mutable std::array<Addr, tlbEntries> tlbVpage_;
    mutable std::array<Addr, tlbEntries> tlbPpage_;
};

} // namespace affalloc::mem

#endif // AFFALLOC_MEM_PAGE_TABLE_HH
