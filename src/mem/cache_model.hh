/**
 * @file
 * Set-associative LRU cache tag model. Used for the private L1/L2
 * filters (In-Core mode) and for every shared L3 bank. Tracks tags and
 * dirty bits only; data lives in host memory (execution-driven).
 */

#ifndef AFFALLOC_MEM_CACHE_MODEL_HH
#define AFFALLOC_MEM_CACHE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace affalloc::mem
{

/** Result of a cache probe. */
struct CacheAccessResult
{
    /** True if the line was present. */
    bool hit = false;
    /** True if a dirty line was evicted (writeback needed). */
    bool writeback = false;
    /** Line address (not byte address) of the evicted dirty line. */
    Addr victimLine = invalidAddr;
};

/**
 * A single set-associative cache with true-LRU replacement. Addresses
 * are presented as *line numbers* (byte address / line size); the
 * model is agnostic to line size.
 *
 * Ways are kept in recency order: way 0 is the MRU line, the last
 * valid way is the LRU victim, and valid lines always form a prefix of
 * the set (fills insert at the front). This is behaviour-for-behaviour
 * identical to a timestamped true-LRU implementation — same hits, same
 * victims, same writebacks — but a hit near the front touches only a
 * few tag words and never needs a full-set victim scan.
 */
class CacheModel
{
  public:
    /**
     * @param size_bytes total capacity
     * @param assoc ways per set
     * @param line_size line size in bytes (for set count only)
     * @param hashed_index hash the line address into the set index.
     *        L3 bank slices must use this: bank interleaving strips
     *        entropy from the low line bits, so modulo indexing would
     *        alias a bank's lines into a handful of sets (commodity
     *        LLCs hash their slice index for the same reason).
     */
    CacheModel(std::uint64_t size_bytes, std::uint32_t assoc,
               std::uint32_t line_size, bool hashed_index = false);

    /**
     * Access @p line (a line number). Allocates on miss, evicting LRU.
     * Write hits/fills mark the line dirty.
     */
    CacheAccessResult access(Addr line, bool is_write);

    /**
     * Access @p line while confining the line's *footprint* to at most
     * @p max_ways ways of the set: fills insert at recency position
     * assoc - max_ways instead of the front, so at most the max_ways
     * least-recent ways are ever evicted by this access stream, and a
     * hit does not promote the line. Models DDIO-style way-restricted
     * I/O allocation (A4): lines in positions [0, assoc - max_ways)
     * are never displaced. max_ways >= assoc degenerates to access().
     */
    CacheAccessResult accessCapped(Addr line, bool is_write,
                                   std::uint32_t max_ways);

    /** Probe without modifying state. */
    bool contains(Addr line) const;

    /** Invalidate everything (workload phase boundaries in tests). */
    void reset();

    /** Number of sets. */
    std::uint32_t numSets() const { return numSets_; }
    /** Ways per set. */
    std::uint32_t assoc() const { return assoc_; }
    /** Currently resident lines. */
    std::uint64_t residentLines() const { return residentLines_; }

    /**
     * SimCheck audit: verify internal consistency — the resident-line
     * count matches the live ways, occupancy is within sets x assoc,
     * no line appears twice in one set, and valid ways form a prefix
     * of every set (the recency-order invariant). Returns an empty
     * string when healthy, else a description of the first
     * inconsistency.
     */
    std::string checkIntegrity() const;

  private:
    std::uint32_t
    setIndexOf(Addr line) const
    {
        if (!hashedIndex_)
            return static_cast<std::uint32_t>(line) & setMask_;
        std::uint64_t z = line * 0x9e3779b97f4a7c15ULL;
        z ^= z >> 29;
        return static_cast<std::uint32_t>(z) & setMask_;
    }

    /** Empty way marker: no real line shifts up into bit 63. */
    static constexpr std::uint64_t invalidEntry = ~std::uint64_t(0);

    static std::uint64_t entryOf(Addr line, bool dirty)
    {
        return (std::uint64_t(line) << 1) | (dirty ? 1 : 0);
    }
    static Addr lineOf(std::uint64_t entry) { return entry >> 1; }
    static bool dirtyOf(std::uint64_t entry) { return entry & 1; }

    std::uint32_t assoc_;
    bool hashedIndex_ = false;
    std::uint32_t numSets_;
    std::uint32_t setMask_;
    std::uint64_t residentLines_ = 0;
    // Set-major, recency-ordered within each set. One word per way:
    // the line number in bits [63:1] and the dirty bit in bit 0, so
    // the hit scan and the recency shifts touch a single dense array.
    std::vector<std::uint64_t> ways_; // numSets_ * assoc_
};

} // namespace affalloc::mem

#endif // AFFALLOC_MEM_CACHE_MODEL_HH
