/**
 * @file
 * Interleave Override Table (Table 1 of the paper). Each entry maps a
 * physical address range [start, end) to a custom interleaving; cache
 * controllers and stream engines query it on every access to decide
 * which L3 bank owns a line. One entry per interleave pool keeps the
 * table small (16 entries, Table 2).
 */

#ifndef AFFALLOC_MEM_IOT_HH
#define AFFALLOC_MEM_IOT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.hh"

namespace affalloc::mem
{

/** One IOT entry: [start, end) physical range with its interleaving. */
struct IotEntry
{
    /** First physical address covered. */
    Addr start = 0;
    /** One past the last physical address covered. */
    Addr end = 0;
    /** Interleaving granularity in bytes (Table 1: 16-bit field). */
    std::uint32_t intrlv = 0;

    /** Whether @p paddr falls in this entry's range. */
    bool contains(Addr paddr) const { return paddr >= start && paddr < end; }

    /**
     * Bank of @p paddr under this entry (Eq. 1):
     * bank = floor((paddr - start) / intrlv) mod num_banks.
     */
    BankId
    bankOf(Addr paddr, std::uint32_t num_banks) const
    {
        return static_cast<BankId>(((paddr - start) / intrlv) % num_banks);
    }
};

/**
 * The table itself. Entries are non-overlapping; capacity is bounded
 * by the hardware entry count. Ranges may be grown in place (pool
 * expansion updates `end`).
 *
 * Entry indices returned by insert() are stable (append order); a
 * separate index kept sorted by `start` makes lookup a binary search
 * (plus an MRU slot, since consecutive accesses overwhelmingly hit the
 * same pool) and reduces the insert/grow overlap checks to the two
 * sorted neighbours of the affected range.
 */
class InterleaveOverrideTable
{
  public:
    /** Construct with a hardware capacity (Table 2: 16 regions). */
    explicit InterleaveOverrideTable(std::uint32_t capacity = 16);

    /**
     * Install a new entry. fatal()s if the table is full, the range is
     * empty/overlapping, or the interleaving is invalid (< 64 B or not
     * a power of two).
     *
     * @return index of the installed entry.
     */
    std::size_t insert(Addr start, Addr end, std::uint32_t intrlv);

    /** Grow entry @p idx to cover up to @p new_end (pool expansion). */
    void grow(std::size_t idx, Addr new_end);

    /** Look up the entry covering @p paddr, if any. */
    const IotEntry *
    lookup(Addr paddr) const
    {
        if (!referenceMode_ && mru_ >= 0 && entries_[mru_].contains(paddr))
            return &entries_[mru_];
        return lookupSlow(paddr);
    }

    /** Number of installed entries. */
    std::size_t size() const { return entries_.size(); }
    /** Hardware capacity. */
    std::uint32_t capacity() const { return capacity_; }
    /** Access entry by index. */
    const IotEntry &entry(std::size_t idx) const { return entries_.at(idx); }

    /**
     * Mutable entry access for simcheck corruption tests only — lets a
     * test plant a stale interleaving and assert the cross-consistency
     * audit catches it. Production code must go through insert()/grow().
     */
    IotEntry &entryForTest(std::size_t idx) { return entries_.at(idx); }

    /**
     * Look entries up with the original linear scan instead of the
     * binary search + MRU slot (reference mode). The digest-equivalence
     * regression test runs both ways and asserts identical results.
     */
    void setReferenceMode(bool reference) { referenceMode_ = reference; }

  private:
    /** Position in sorted_ of the first entry with start > paddr. */
    std::size_t sortedUpperBound(Addr paddr) const;

    /** MRU-miss path of lookup(): binary search (or reference scan). */
    const IotEntry *lookupSlow(Addr paddr) const;

    std::uint32_t capacity_;
    std::vector<IotEntry> entries_;
    /** Indices into entries_, ordered by ascending start. */
    std::vector<std::uint32_t> sorted_;
    /** Most recently hit entry index, or -1 (lookup locality). */
    mutable std::int32_t mru_ = -1;
    bool referenceMode_ = false;
};

} // namespace affalloc::mem

#endif // AFFALLOC_MEM_IOT_HH
