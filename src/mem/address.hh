/**
 * @file
 * Simulated address-space layout constants and helpers. The virtual
 * address space reserves one 1 TB segment per interleave pool plus a
 * conventional heap segment (2.7% of the 48-bit space, matching the
 * paper's footnote 3).
 */

#ifndef AFFALLOC_MEM_ADDRESS_HH
#define AFFALLOC_MEM_ADDRESS_HH

#include <cstdint>

#include "sim/types.hh"

namespace affalloc::mem
{

/** Simulated page size. */
inline constexpr Addr pageSize = 4096;
/** log2(pageSize). */
inline constexpr int pageShift = 12;
/** One terabyte: the reservation granule for pools and the heap. */
inline constexpr Addr terabyte = Addr(1) << 40;

/** Smallest supported interleaving: one cache line (64 B). */
inline constexpr std::uint32_t minInterleave = 64;
/** Largest pool interleaving: one page (4 kB). */
inline constexpr std::uint32_t maxPoolInterleave = 4096;
/** Number of power-of-two interleave pools: 64 B .. 4 kB. */
inline constexpr int numInterleavePools = 7;

/** Virtual base of the conventional heap segment. */
inline constexpr Addr heapVirtBase = Addr(0x100) * terabyte;
/** Virtual base of interleave pool segments; pool k at +k TB. */
inline constexpr Addr poolVirtBase = Addr(0x200) * terabyte;
/** Virtual base of the large-interleave (page-remapped) segment. */
inline constexpr Addr largeVirtBase = Addr(0x300) * terabyte;

/**
 * Per-tenant arena slice inside each pool segment: 16 GB. A multiple
 * of every pool's interleave stripe (maxPoolInterleave * numBanks for
 * any power-of-two bank count up to 4 M), so an arena base is homed
 * at bank 0 exactly like pool offset 0 — arena-relative offsets obey
 * the same `(offset / intrlv) % numBanks` bank formula as arena 0.
 */
inline constexpr Addr arenaStride = Addr(16) << 30;

/** Physical base of the heap backing region. */
inline constexpr Addr heapPhysBase = Addr(0x1) * terabyte;
/** Physical base of pool backing regions; pool k at +k TB. */
inline constexpr Addr poolPhysBase = Addr(0x10) * terabyte;

/** Interleaving of pool index k (0 -> 64 B ... 6 -> 4 kB). */
constexpr std::uint32_t
poolInterleave(int k)
{
    return minInterleave << k;
}

/** Pool index for an exact power-of-two interleaving, or -1. */
constexpr int
poolIndexFor(std::uint64_t intrlv)
{
    for (int k = 0; k < numInterleavePools; ++k)
        if (poolInterleave(k) == intrlv)
            return k;
    return -1;
}

/** Page number containing an address. */
constexpr Addr pageOf(Addr a) { return a >> pageShift; }
/** Byte offset within the page. */
constexpr Addr pageOffset(Addr a) { return a & (pageSize - 1); }
/** First address of a page number. */
constexpr Addr pageBase(Addr page) { return page << pageShift; }
/** Round up to the next page boundary. */
constexpr Addr
roundUpPage(Addr a)
{
    return (a + pageSize - 1) & ~(pageSize - 1);
}

/** Line number containing an address for a given line size. */
constexpr Addr
lineOf(Addr a, std::uint32_t line_size)
{
    return a / line_size;
}

} // namespace affalloc::mem

#endif // AFFALLOC_MEM_ADDRESS_HH
