/**
 * @file
 * Host-pointer <-> simulated-virtual-address registry. The library is
 * execution-driven: workload data lives in real host memory, while
 * the timing model reasons about simulated addresses. Every
 * allocation registers its host range against its simulated range so
 * either direction can be resolved.
 */

#ifndef AFFALLOC_MEM_ADDRESS_SPACE_HH
#define AFFALLOC_MEM_ADDRESS_SPACE_HH

#include <cstdint>
#include <map>

#include "sim/types.hh"

namespace affalloc::mem
{

/** One registered allocation. */
struct HostRange
{
    /** Host address of the first byte. */
    std::uintptr_t hostStart = 0;
    /** One past the last host byte. */
    std::uintptr_t hostEnd = 0;
    /** Simulated virtual address of the first byte. */
    Addr simStart = 0;
};

/**
 * Sorted registry of host ranges with a one-entry lookup cache
 * (consecutive lookups overwhelmingly hit the same array).
 */
class AddressSpace
{
  public:
    /** Register a host range backing simulated range @p sim_start. */
    void registerRange(const void *host_ptr, std::size_t bytes,
                       Addr sim_start);

    /** Remove the range starting exactly at @p host_ptr. */
    void unregisterRange(const void *host_ptr);

    /** Simulated address of @p host_ptr; fatal() if unregistered. */
    Addr simAddrOf(const void *host_ptr) const;

    /** Simulated address, or invalidAddr if unregistered. */
    Addr trySimAddrOf(const void *host_ptr) const;

    /** The range starting exactly at @p host_ptr, or nullptr. */
    const HostRange *rangeStartingAt(const void *host_ptr) const;

    /** The range containing @p host_ptr, or nullptr. */
    const HostRange *rangeContaining(const void *host_ptr) const;

    /** Number of registered ranges. */
    std::size_t size() const { return ranges_.size(); }

  private:
    std::map<std::uintptr_t, HostRange> ranges_; // keyed by hostStart
    mutable const HostRange *cached_ = nullptr;
};

} // namespace affalloc::mem

#endif // AFFALLOC_MEM_ADDRESS_SPACE_HH
