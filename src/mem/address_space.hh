/**
 * @file
 * Host-pointer <-> simulated-virtual-address registry. The library is
 * execution-driven: workload data lives in real host memory, while
 * the timing model reasons about simulated addresses. Every
 * allocation registers its host range against its simulated range so
 * either direction can be resolved.
 */

#ifndef AFFALLOC_MEM_ADDRESS_SPACE_HH
#define AFFALLOC_MEM_ADDRESS_SPACE_HH

#include <array>
#include <cstdint>
#include <map>

#include "sim/types.hh"

namespace affalloc::mem
{

/** One registered allocation. */
struct HostRange
{
    /** Host address of the first byte. */
    std::uintptr_t hostStart = 0;
    /** One past the last host byte. */
    std::uintptr_t hostEnd = 0;
    /** Simulated virtual address of the first byte. */
    Addr simStart = 0;
};

/**
 * Sorted registry of host ranges with a small MRU lookup cache in
 * front of the sorted map. Kernels interleave lookups across a handful
 * of concurrently-live arrays (A/B/C of vecadd, frontier + edge +
 * value arrays of the graph kernels), which a one-entry cache thrashes
 * on; eight recency-ordered slots cover them. The cache is a pure
 * host-side fast path (hits return exactly what the map lookup
 * returns) and is emptied on any register/unregister.
 */
class AddressSpace
{
  public:
    /** Register a host range backing simulated range @p sim_start. */
    void registerRange(const void *host_ptr, std::size_t bytes,
                       Addr sim_start);

    /** Remove the range starting exactly at @p host_ptr. */
    void unregisterRange(const void *host_ptr);

    /** Simulated address of @p host_ptr; fatal() if unregistered. */
    Addr simAddrOf(const void *host_ptr) const;

    /** Simulated address, or invalidAddr if unregistered. */
    Addr trySimAddrOf(const void *host_ptr) const;

    /** The range starting exactly at @p host_ptr, or nullptr. */
    const HostRange *rangeStartingAt(const void *host_ptr) const;

    /** The range containing @p host_ptr, or nullptr. */
    const HostRange *rangeContaining(const void *host_ptr) const;

    /** Number of registered ranges. */
    std::size_t size() const { return ranges_.size(); }

    /**
     * Number of registered ranges whose simulated start address lies
     * in [sim_lo, sim_hi). Linear in the number of ranges (the map is
     * keyed by host address) — meant for hygiene assertions at slot
     * recycle boundaries, not hot paths. The serving front-end uses it
     * to prove a freed tenant arena left no host ranges behind before
     * the arena is handed to the next request.
     */
    std::size_t numRangesInSimWindow(Addr sim_lo, Addr sim_hi) const;

    /**
     * Resolve every lookup through the sorted map, bypassing the MRU
     * cache (reference mode). The digest-equivalence regression test
     * runs both ways and asserts identical results.
     */
    void setReferenceMode(bool reference) { referenceMode_ = reference; }

  private:
    /** MRU cache slots (recency-ordered, nullptr when empty). */
    static constexpr std::size_t mruSlots = 8;

    std::map<std::uintptr_t, HostRange> ranges_; // keyed by hostStart
    // Map nodes are pointer-stable, so cached pointers stay valid
    // until the cache is emptied on the next register/unregister.
    mutable std::array<const HostRange *, mruSlots> mru_{};
    bool referenceMode_ = false;
};

} // namespace affalloc::mem

#endif // AFFALLOC_MEM_ADDRESS_SPACE_HH
