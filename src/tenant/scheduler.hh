/**
 * @file
 * Multi-tenant co-run scheduling: N workload instances share one
 * machine (L3 banks, NoC, DRAM, IOT) while each owns a private
 * allocator arena and RNG substream. A TenantScheduler advances the
 * tenants in deterministic epoch-interleaved rounds — at every epoch
 * boundary the running tenant's quantum is charged, and when it
 * expires the machine is handed to the next tenant. Timing remains a
 * single shared clock, so co-run interference (bank pressure via the
 * shared BankLoadBoard, queueing for the machine) is visible in each
 * tenant's finish time, and the QoS report quantifies it against
 * solo-run baselines.
 */

#ifndef AFFALLOC_TENANT_SCHEDULER_HH
#define AFFALLOC_TENANT_SCHEDULER_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/observer.hh"
#include "tenant/workload_registry.hh"
#include "workloads/run_context.hh"

namespace affalloc::tenant
{

/** How the scheduler orders tenant quanta. */
enum class SchedPolicy : std::uint8_t
{
    /** Equal quanta, cyclic order. */
    roundRobin,
    /** Quantum scaled by each tenant's weight, cyclic order. */
    weighted
};

/** Short policy name ("rr" / "weighted"). */
const char *schedPolicyName(SchedPolicy p);

/** Parse "rr" or "weighted"; anything else SIM_FATALs. */
SchedPolicy parseSchedPolicy(const std::string &s);

/** Configuration of one co-run. */
struct CorunOptions
{
    sim::MachineConfig machine{};
    ExecMode mode = ExecMode::affAlloc;
    alloc::AllocatorOptions allocOpts{};
    os::PagePolicy heapPolicy = os::PagePolicy::linear;
    SchedPolicy policy = SchedPolicy::roundRobin;
    /** Root seed; tenant i uses Rng::substreamSeed(seed, i). */
    std::uint64_t seed = 42;
    /** Epochs per quantum (x weight under the weighted policy). */
    std::uint32_t quantumEpochs = 8;
    /** Use the reduced CI-scale workload inputs. */
    bool quick = false;
    /** Also run per-tenant solo baselines to fill the QoS columns. */
    bool solo = true;
    /** Observability on the shared machine (per-tenant lanes). */
    obs::ObsConfig obs{};
};

/**
 * One job admitted into the open-system scheduler (see
 * AdmissionControl). Jobs are the dynamic analogue of boot-time
 * TenantSpecs: each runs one registry workload in a recycled arena
 * slot and reports back through AdmissionControl::onFinish.
 */
struct AdmittedJob
{
    /** Caller's request id; also the job's RNG substream index. */
    std::uint64_t requestId = 0;
    /** Registry workload name. */
    std::string workload;
    /** Instance label, e.g. "bfs#17". */
    std::string name;
    /** Arena slot the job allocates from (recycled across jobs). */
    std::uint32_t arena = 0;
    /** Scheduling weight under the weighted policy. */
    std::uint32_t weight = 1;
    /** Traffic class of the job (ndc = classic request). */
    AgentClass cls = AgentClass::ndc;
    /** Explicit runner for non-registry agents; null = registry. */
    RunnerFn runner = nullptr;
};

/**
 * Driver of an open-system run (TenantScheduler::runOpen): decides
 * which jobs enter the machine and when, and is told when they leave.
 * All three hooks run on the scheduler thread while every job thread
 * is parked, so implementations need no locking; they must be
 * deterministic functions of the simulated clock for the run to be
 * digest-stable.
 */
class AdmissionControl
{
  public:
    virtual ~AdmissionControl() = default;

    /**
     * Called at every scheduling round with the shared clock. Returns
     * the jobs to admit now (possibly none). Each returned job must
     * name a free arena slot in [0, numSlots).
     */
    virtual std::vector<AdmittedJob> admit(Cycles now) = 0;

    /**
     * Called when no admitted job is runnable. Returns how many
     * cycles to fast-forward the idle machine (to the next arrival,
     * retry, or fault event), or 0 to end the run.
     */
    virtual Cycles idleAdvance(Cycles now) = 0;

    /**
     * Called after @p job's thread finished and was joined.
     * @p finish_cycle is the shared-clock cycle of its last epoch.
     */
    virtual void onFinish(const AdmittedJob &job,
                          const workloads::RunResult &result,
                          Cycles finish_cycle) = 0;
};

/** One tenant's outcome inside a co-run. */
struct TenantResult
{
    std::uint32_t id = 0;
    /** Instance label, e.g. "bfs#0". */
    std::string name;
    std::string workload;
    std::uint32_t weight = 1;
    /** Traffic class of the agent (ndc = classic tenant). */
    AgentClass cls = AgentClass::ndc;
    /** Attributed run record (stats = this tenant's share only). */
    workloads::RunResult run;
    /** Shared-clock cycle at which the tenant finished. */
    Cycles finishCycle = 0;
    /** Epochs this tenant executed. */
    std::uint64_t epochs = 0;
    /** Solo-run cycles for the same work (0 when solo disabled). */
    Cycles soloCycles = 0;
    /** finishCycle / soloCycles (0 when solo disabled). */
    double slowdown = 0.0;
};

/** The co-run outcome plus QoS aggregates (see tenant/qos.hh). */
struct CorunReport
{
    std::vector<TenantResult> tenants;
    SchedPolicy policy = SchedPolicy::roundRobin;
    /** Shared-clock cycle at which the last tenant finished. */
    Cycles makespan = 0;
    /** System throughput: sum of solo_i / finish_i (0 w/o solo). */
    double weightedSpeedup = 0.0;
    /** Jain fairness index over per-tenant progress (1 w/o solo). */
    double fairness = 1.0;
    /** Whether every tenant's workload validated. */
    bool allValid = false;
    /**
     * Shared-machine spatial counters with the per-tenant overlay
     * (empty unless CorunOptions::obs.metrics was set).
     */
    obs::SpatialSnapshot obsSnapshot;

    /**
     * Determinism digest: per-tenant run digests and finish cycles
     * folded in tenant-id order. Independent of host thread timing
     * and of the sweep's --jobs value.
     */
    std::uint64_t digest() const;
};

/**
 * Runs one co-run to completion. Construction builds the shared
 * machine; run() spawns one cooperative thread per tenant and
 * interleaves them under the configured policy. Handoffs are strictly
 * serialized (exactly one thread touches the machine at any time), so
 * results are bit-deterministic regardless of host scheduling.
 */
class TenantScheduler
{
  public:
    TenantScheduler(std::vector<TenantSpec> specs, CorunOptions opts);

    /**
     * Open-system mode: no boot-time tenants; jobs are admitted
     * dynamically by an AdmissionControl into @p num_slots recycled
     * arena slots (the machine's IOT is sized for the slots, not the
     * job count). Drive with runOpen().
     */
    TenantScheduler(CorunOptions opts, std::uint32_t num_slots);

    ~TenantScheduler();

    TenantScheduler(const TenantScheduler &) = delete;
    TenantScheduler &operator=(const TenantScheduler &) = delete;

    /** Execute the co-run (once) and return the report. */
    CorunReport run();

    /**
     * Execute an open-system run (once): repeatedly ask @p adm for
     * new jobs, interleave the admitted ones under the quantum
     * policy, fast-forward the idle machine between arrivals, and
     * report each completion back. Finished job threads are joined
     * eagerly so at most num_slots threads exist at a time. Ends when
     * no job is running and @p adm.idleAdvance returns 0.
     */
    CorunReport runOpen(AdmissionControl &adm);

    /** The shared machine (valid for the scheduler's lifetime). */
    nsc::Machine &machine() { return *machine_; }

    /**
     * Ask open-ended background agents (host traffic / I/O injectors)
     * to finish at their next epoch boundary. Closed co-runs raise
     * this automatically once every NDC tenant finished; open-system
     * admission controls call it (on the scheduler thread, e.g. from
     * admit()) once all real requests resolved.
     */
    void requestBackgroundDrain() { drainBackground_ = true; }

    /** Shared cross-tenant bank-load board (Eq. 4's load input; the
     *  serving front-end's recovery ranking reads it too). */
    alloc::BankLoadBoard &loadBoard() { return board_; }

  private:
    struct Tenant
    {
        std::uint32_t id = 0;
        std::string name;
        TenantSpec spec;
        RunnerFn fn;
        workloads::TenantBinding binding;
        std::thread thread;
        bool finished = false;
        std::uint64_t epochsRun = 0;
        workloads::RunResult result;
        std::exception_ptr error;
        /** Arena the tenant allocates from (== id in closed co-runs). */
        std::uint32_t arena = 0;
        /** RNG substream index (== id in closed co-runs). */
        std::uint64_t seedIndex = 0;
        /** The admission record (open-system mode only). */
        AdmittedJob job;
        /** Whether the finished thread was already joined. */
        bool joined = false;
    };

    /** Tenant-thread body: wait for the grant, run the workload. */
    void tenantMain(Tenant &t);
    /** Machine epoch hook; runs on the granted tenant's thread. */
    void onEpoch();
    /** Next unfinished tenant in cyclic order, or -1 when done. */
    int pickNext();
    /** Quantum (epochs) for one grant of @p t under the policy. */
    std::uint64_t quantumFor(const Tenant &t) const;
    /** Build the tenant's RunConfig (arena, board, substream seed). */
    workloads::RunConfig tenantRunConfig(const Tenant &t);
    /** Spawn one admitted job as a tenant thread (open mode). */
    Tenant &spawnJob(const AdmittedJob &job);
    /** Grant one quantum to tenant @p next and wait for its yield. */
    void grantQuantum(int next);
    /** Package tenants_ into a CorunReport (shared by both modes). */
    CorunReport buildReport();
    /** Whether every NDC (foreground) tenant has finished. */
    bool allForegroundDone() const;
    /** Fold @p cls into the machine's present-class mask. */
    void notePresentClass(AgentClass cls);

    CorunOptions opts_;
    std::unique_ptr<os::SimOS> os_;
    std::unique_ptr<nsc::Machine> machine_;
    std::unique_ptr<obs::Observer> observer_;
    alloc::BankLoadBoard board_;
    std::vector<std::unique_ptr<Tenant>> tenants_;
    bool ran_ = false;
    /** Arena slots in open-system mode (0: closed co-run). */
    std::uint32_t openSlots_ = 0;
    /** Bit mask of agent classes seen on this machine (bit 0 = ndc). */
    std::uint32_t presentMask_ = 0;
    /** Whether this run has at least one NDC (foreground) tenant. */
    bool haveForeground_ = false;
    /**
     * Cooperative stop signal handed to background agents through
     * RunConfig::stopRequested. Written on the scheduler thread while
     * all tenant threads are parked; the grant handoff mutex orders
     * the agents' reads.
     */
    bool drainBackground_ = false;

    // Cooperative handoff state. `running_` is the tenant id granted
    // the machine (-1: the scheduler thread). All transitions happen
    // under `mu_`; unlocked reads in the epoch fast path are ordered
    // by the grant handoff itself (strict alternation through the
    // mutex), so exactly one thread ever touches them at a time.
    std::mutex mu_;
    std::condition_variable cv_;
    int running_ = -1;
    std::uint32_t current_ = 0;
    std::uint64_t quantum_ = 1;
    std::uint64_t quantumUsed_ = 0;
    std::uint32_t rrNext_ = 0;
};

/**
 * Convenience: build a scheduler, run the co-run, and (per
 * opts.solo) the per-tenant solo baselines that fill the QoS fields.
 */
CorunReport runCorun(const std::vector<TenantSpec> &specs,
                     const CorunOptions &opts);

} // namespace affalloc::tenant

#endif // AFFALLOC_TENANT_SCHEDULER_HH
