/**
 * @file
 * QoS / fairness accounting for co-runs: per-tenant slowdown against
 * solo baselines, system throughput (weighted speedup), and Jain's
 * fairness index, plus the CSV and stdout surfaces benchmarks use.
 */

#ifndef AFFALLOC_TENANT_QOS_HH
#define AFFALLOC_TENANT_QOS_HH

#include <string>
#include <vector>

#include "tenant/scheduler.hh"

namespace affalloc::tenant
{

/**
 * Jain's fairness index (sum x)^2 / (n * sum x^2) over positive
 * values; 1.0 for an empty or single-element vector. 1.0 means every
 * tenant progresses at the same normalized rate; 1/n means one tenant
 * monopolizes the machine.
 */
double jainFairness(const std::vector<double> &xs);

/**
 * Fill the QoS fields of @p report from the already-populated
 * soloCycles: per-tenant slowdown (finish / solo), weighted speedup
 * (sum of solo_i / finish_i — the STP metric), and Jain fairness over
 * per-tenant normalized progress. Tenants without a solo baseline
 * (soloCycles == 0) keep slowdown 0 and are excluded from aggregates.
 */
void computeQos(CorunReport &report);

/**
 * Write one row per tenant: identity (tenant, workload, weight,
 * @p config label, policy), progress (epochs, service cycles, finish
 * cycle, solo cycles), and the QoS columns (slowdown, weighted
 * speedup, fairness, makespan) plus joules/hops/valid. Aggregates
 * repeat on every row so each line is self-contained. SIM_FATAL on
 * I/O error.
 */
void writeQosCsv(const std::string &path, const CorunReport &report,
                 const std::string &config = "");

/** Human-readable QoS table on stdout. */
void printCorunReport(const CorunReport &report);

} // namespace affalloc::tenant

#endif // AFFALLOC_TENANT_QOS_HH
