#include "tenant/workload_registry.hh"

#include <cstdlib>

#include "graph/generators.hh"
#include "sim/log.hh"
#include "workloads/affine_workloads.hh"
#include "workloads/graph_workloads.hh"
#include "workloads/pointer_workloads.hh"

namespace affalloc::tenant
{

namespace
{

using workloads::RunContext;
using workloads::RunResult;

/** Build the tenant's private graph (seeded by its substream). */
graph::Csr
tenantGraph(std::uint64_t seed, bool quick)
{
    graph::KroneckerParams kp;
    kp.scale = quick ? 14 : 17;
    kp.edgeFactor = 16;
    kp.seed = seed;
    return graph::kronecker(kp);
}

workloads::GraphParams
graphParams(const graph::Csr &g, bool quick)
{
    workloads::GraphParams p;
    p.graph = &g;
    p.iters = quick ? 2 : 8;
    return p;
}

struct Entry
{
    const char *name;
    RunnerFn fn;
};

const std::vector<Entry> &
registry()
{
    using namespace workloads;
    static const std::vector<Entry> entries = {
        {"vecadd",
         [](RunContext &ctx, std::uint64_t, bool quick) {
             VecAddParams p;
             if (quick)
                 p.n = 187'500;
             p.layout = ctx.affinity() ? VecAddLayout::affinity
                                       : VecAddLayout::heapLinear;
             return runVecAdd(ctx, p);
         }},
        {"pathfinder",
         [](RunContext &ctx, std::uint64_t, bool quick) {
             PathfinderParams p;
             if (quick)
                 p.cols = 187'500;
             return runPathfinder(ctx, p);
         }},
        {"hotspot",
         [](RunContext &ctx, std::uint64_t, bool quick) {
             HotspotParams p;
             if (quick) {
                 p.rows = 512;
                 p.cols = 512;
             }
             return runHotspot(ctx, p);
         }},
        {"srad",
         [](RunContext &ctx, std::uint64_t, bool quick) {
             SradParams p;
             if (quick) {
                 p.rows = 512;
                 p.cols = 512;
             }
             return runSrad(ctx, p);
         }},
        {"hotspot3d",
         [](RunContext &ctx, std::uint64_t, bool quick) {
             Hotspot3dParams p;
             if (quick)
                 p.ny = 256;
             return runHotspot3d(ctx, p);
         }},
        {"pr",
         [](RunContext &ctx, std::uint64_t seed, bool quick) {
             // §6: pull for In-Core, push for the NSC modes.
             const graph::Csr g = tenantGraph(seed, quick);
             const auto p = graphParams(g, quick);
             return ctx.config.mode == ExecMode::inCore
                        ? runPageRankPull(ctx, p)
                        : runPageRankPush(ctx, p);
         }},
        {"pr_push",
         [](RunContext &ctx, std::uint64_t seed, bool quick) {
             const graph::Csr g = tenantGraph(seed, quick);
             return runPageRankPush(ctx, graphParams(g, quick));
         }},
        {"pr_pull",
         [](RunContext &ctx, std::uint64_t seed, bool quick) {
             const graph::Csr g = tenantGraph(seed, quick);
             return runPageRankPull(ctx, graphParams(g, quick));
         }},
        {"bfs",
         [](RunContext &ctx, std::uint64_t seed, bool quick) {
             const graph::Csr g = tenantGraph(seed, quick);
             return runBfs(ctx, graphParams(g, quick),
                           defaultBfsStrategy(ctx.config.mode))
                 .run;
         }},
        {"sssp",
         [](RunContext &ctx, std::uint64_t seed, bool quick) {
             const graph::Csr g = tenantGraph(seed, quick);
             return runSssp(ctx, graphParams(g, quick));
         }},
        {"sssp_pq",
         [](RunContext &ctx, std::uint64_t seed, bool quick) {
             const graph::Csr g = tenantGraph(seed, quick);
             return runSsspPq(ctx, graphParams(g, quick));
         }},
        {"link_list",
         [](RunContext &ctx, std::uint64_t seed, bool quick) {
             LinkListParams p;
             if (quick) {
                 p.numLists = 256;
                 p.nodesPerList = 128;
             }
             p.seed = seed;
             return runLinkList(ctx, p);
         }},
        {"churn_list",
         [](RunContext &ctx, std::uint64_t seed, bool quick) {
             ChurnListParams p;
             if (quick) {
                 p.numLists = 192;
                 p.nodesPerList = 96;
                 p.rounds = 12;
             }
             p.seed = seed;
             return runChurnList(ctx, p);
         }},
        {"hash_join",
         [](RunContext &ctx, std::uint64_t seed, bool quick) {
             HashJoinParams p;
             if (quick) {
                 p.buildRows = 32 * 1024;
                 p.probeRows = 64 * 1024;
                 p.numBuckets = 8 * 1024;
             }
             p.seed = seed;
             return runHashJoin(ctx, p);
         }},
        {"bin_tree",
         [](RunContext &ctx, std::uint64_t seed, bool quick) {
             BinTreeParams p;
             if (quick) {
                 p.numNodes = 32 * 1024;
                 p.numLookups = 64 * 1024;
             }
             p.seed = seed;
             return runBinTree(ctx, p);
         }},
    };
    return entries;
}

std::string
namesCsv()
{
    std::string s;
    for (const auto &n : workloadNames()) {
        if (!s.empty())
            s += ", ";
        s += n;
    }
    return s;
}

} // namespace

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &e : registry())
            v.emplace_back(e.name);
        return v;
    }();
    return names;
}

bool
isWorkloadName(const std::string &name)
{
    for (const auto &e : registry())
        if (name == e.name)
            return true;
    return false;
}

RunnerFn
workloadRunner(const std::string &name)
{
    for (const auto &e : registry())
        if (name == e.name)
            return e.fn;
    SIM_FATAL("tenant", "unknown workload '%s'; available: %s",
              name.c_str(), namesCsv().c_str());
    return {};
}

std::vector<TenantSpec>
parseTenantSpecs(const std::string &spec)
{
    std::vector<TenantSpec> out;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string item =
            spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
        if (item.empty()) {
            SIM_FATAL("tenant",
                      "empty tenant entry in spec '%s'; expected "
                      "name[:count[:weight]],...",
                      spec.c_str());
        }
        // name[:count[:weight]]
        std::string name = item;
        std::uint64_t count = 1;
        std::uint64_t weight = 1;
        const std::size_t c1 = item.find(':');
        if (c1 != std::string::npos) {
            name = item.substr(0, c1);
            const std::size_t c2 = item.find(':', c1 + 1);
            const std::string countStr =
                item.substr(c1 + 1, c2 == std::string::npos
                                        ? std::string::npos
                                        : c2 - c1 - 1);
            const std::string weightStr =
                c2 == std::string::npos ? "" : item.substr(c2 + 1);
            char *end = nullptr;
            count = std::strtoull(countStr.c_str(), &end, 10);
            if (countStr.empty() || *end != '\0' || count == 0) {
                SIM_FATAL("tenant",
                          "bad instance count '%s' in tenant entry "
                          "'%s' (want a positive integer)",
                          countStr.c_str(), item.c_str());
            }
            if (!weightStr.empty()) {
                weight = std::strtoull(weightStr.c_str(), &end, 10);
                if (*end != '\0' || weight == 0) {
                    SIM_FATAL("tenant",
                              "bad weight '%s' in tenant entry '%s' "
                              "(want a positive integer)",
                              weightStr.c_str(), item.c_str());
                }
            } else if (c2 != std::string::npos) {
                SIM_FATAL("tenant", "trailing ':' in tenant entry '%s'",
                          item.c_str());
            }
        }
        if (!isWorkloadName(name)) {
            SIM_FATAL("tenant",
                      "unknown workload '%s' in tenant spec; "
                      "available: %s",
                      name.c_str(), namesCsv().c_str());
        }
        for (std::uint64_t i = 0; i < count; ++i)
            out.push_back(
                {.workload = name,
                 .weight = static_cast<std::uint32_t>(weight)});
        if (comma == std::string::npos)
            break;
    }
    if (out.empty())
        SIM_FATAL("tenant", "tenant spec '%s' names no tenants",
                  spec.c_str());
    return out;
}

} // namespace affalloc::tenant
