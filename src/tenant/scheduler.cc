#include "tenant/scheduler.hh"

#include <algorithm>

#include "obs/chrome_trace.hh"
#include "obs/spatial_metrics.hh"
#include "sim/log.hh"
#include "sim/prof.hh"
#include "sim/rng.hh"
#include "tenant/qos.hh"

namespace affalloc::tenant
{

const char *
schedPolicyName(SchedPolicy p)
{
    return p == SchedPolicy::weighted ? "weighted" : "rr";
}

SchedPolicy
parseSchedPolicy(const std::string &s)
{
    if (s == "rr" || s == "round-robin")
        return SchedPolicy::roundRobin;
    if (s == "weighted")
        return SchedPolicy::weighted;
    SIM_FATAL("tenant", "unknown scheduling policy '%s' (rr, weighted)",
              s.c_str());
    return SchedPolicy::roundRobin;
}

std::uint64_t
CorunReport::digest() const
{
    std::uint64_t d = 0xcbf29ce484222325ULL;
    for (const auto &t : tenants) {
        d ^= t.run.digest() + (t.id + 1) * 0x9e3779b97f4a7c15ULL;
        d *= 0x100000001b3ULL;
        d ^= t.finishCycle;
        d *= 0x100000001b3ULL;
    }
    return d;
}

TenantScheduler::TenantScheduler(std::vector<TenantSpec> specs,
                                 CorunOptions opts)
    : opts_(std::move(opts))
{
    SIM_REQUIRE("tenant", !specs.empty(), "co-run needs >= 1 tenant");
    // Each tenant adds one IOT entry per interleave pool; make sure
    // the default table does not silently cap the tenant count.
    const std::uint32_t needed = static_cast<std::uint32_t>(
        mem::numInterleavePools * specs.size() + 2);
    opts_.machine.iotEntries = std::max(opts_.machine.iotEntries, needed);

    os_ = std::make_unique<os::SimOS>(opts_.machine, opts_.heapPolicy);
    machine_ = std::make_unique<nsc::Machine>(opts_.machine, *os_);
    if (opts_.obs.any()) {
        observer_ = std::make_unique<obs::Observer>(opts_.obs);
        machine_->attachObserver(observer_.get());
    }

    for (std::size_t i = 0; i < specs.size(); ++i) {
        auto t = std::make_unique<Tenant>();
        t->id = static_cast<std::uint32_t>(i);
        t->spec = specs[i];
        t->name = specs[i].workload + "#" + std::to_string(i);
        t->fn = specs[i].runner ? specs[i].runner
                                : workloadRunner(specs[i].workload);
        t->binding.id = t->id;
        t->binding.name = t->name;
        t->arena = t->id;
        t->seedIndex = t->id;
        notePresentClass(specs[i].cls);
        tenants_.push_back(std::move(t));
    }
}

void
TenantScheduler::notePresentClass(AgentClass cls)
{
    presentMask_ |= 1u << static_cast<int>(cls);
    if (cls == AgentClass::ndc)
        haveForeground_ = true;
    machine_->setPresentClasses(presentMask_);
}

bool
TenantScheduler::allForegroundDone() const
{
    for (const auto &t : tenants_)
        if (t->spec.cls == AgentClass::ndc && !t->finished)
            return false;
    return true;
}

TenantScheduler::TenantScheduler(CorunOptions opts,
                                 std::uint32_t num_slots)
    : opts_(std::move(opts))
{
    SIM_REQUIRE("tenant", num_slots > 0,
                "open-system run needs >= 1 arena slot");
    openSlots_ = num_slots;
    // The IOT is sized for the recycled slots, not the (unbounded)
    // job count: each slot adds one entry per interleave pool.
    const std::uint32_t needed = static_cast<std::uint32_t>(
        mem::numInterleavePools * num_slots + 2);
    opts_.machine.iotEntries = std::max(opts_.machine.iotEntries, needed);

    os_ = std::make_unique<os::SimOS>(opts_.machine, opts_.heapPolicy);
    machine_ = std::make_unique<nsc::Machine>(opts_.machine, *os_);
    if (opts_.obs.any()) {
        observer_ = std::make_unique<obs::Observer>(opts_.obs);
        machine_->attachObserver(observer_.get());
    }
    // Arena 0 is implicit; create the remaining slots now so the IOT
    // layout is fixed before the first job runs.
    for (std::uint32_t i = 1; i < num_slots; ++i)
        os_->createArena();
}

TenantScheduler::~TenantScheduler()
{
    // run() always joins before returning; nothing lingers here. The
    // explicit destructor only anchors the vtable-free impl in one TU.
}

workloads::RunConfig
TenantScheduler::tenantRunConfig(const Tenant &t)
{
    workloads::RunConfig rc;
    rc.mode = opts_.mode;
    rc.machine = opts_.machine;
    rc.heapPolicy = opts_.heapPolicy;
    rc.allocOpts = opts_.allocOpts;
    rc.allocOpts.arena = t.arena;
    rc.allocOpts.sharedLoads = &board_;
    rc.allocOpts.seed =
        Rng::substreamSeed(opts_.allocOpts.seed, t.seedIndex);
    rc.stopRequested = &drainBackground_;
    return rc;
}

std::uint64_t
TenantScheduler::quantumFor(const Tenant &t) const
{
    const std::uint64_t q = std::max<std::uint64_t>(1, opts_.quantumEpochs);
    return opts_.policy == SchedPolicy::weighted
               ? q * std::max<std::uint32_t>(1, t.spec.weight)
               : q;
}

int
TenantScheduler::pickNext()
{
    const std::size_t n = tenants_.size();
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t idx = (rrNext_ + k) % n;
        if (!tenants_[idx]->finished) {
            rrNext_ = static_cast<std::uint32_t>((idx + 1) % n);
            return static_cast<int>(idx);
        }
    }
    return -1;
}

void
TenantScheduler::onEpoch()
{
    Tenant &t = *tenants_[current_];
    t.epochsRun += 1;
    t.binding.lastEpochCycle = machine_->now();
    if (++quantumUsed_ < quantum_)
        return;
    // Quantum expired: charge this tenant for the epochs it ran and
    // hand the machine back to the scheduler thread.
    std::unique_lock<std::mutex> lk(mu_);
    t.binding.attributed += machine_->stats() - t.binding.resumeSnapshot;
    t.binding.resumeSnapshot = machine_->stats();
    running_ = -1;
    cv_.notify_all();
    cv_.wait(lk, [&] { return running_ == static_cast<int>(t.id); });
    t.binding.resumeSnapshot = machine_->stats();
    quantumUsed_ = 0;
}

void
TenantScheduler::tenantMain(Tenant &t)
{
    {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return running_ == static_cast<int>(t.id); });
        t.binding.resumeSnapshot = machine_->stats();
        quantumUsed_ = 0;
    }
    try {
        const workloads::RunConfig rc = tenantRunConfig(t);
        workloads::RunContext ctx(rc, *machine_, &t.binding);
        const std::uint64_t seed =
            Rng::substreamSeed(opts_.seed, t.seedIndex);
        t.result = t.fn(ctx, seed, opts_.quick);
    } catch (...) {
        t.error = std::current_exception();
        // The error may have unwound from mid-epoch while this tenant
        // held the machine. Abandon the half-built epoch so its stale
        // occupancy cannot corrupt the tenants still draining on the
        // shared machine (no-op if the epoch already closed).
        machine_->abortEpoch();
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        t.finished = true;
        running_ = -1;
    }
    cv_.notify_all();
}

void
TenantScheduler::grantQuantum(int next)
{
    // One scope per scheduling quantum: inclusive time covers the
    // handoff plus everything the tenant ran before yielding back.
    PROF_SCOPE("tenant/quantum");
    Tenant &t = *tenants_[next];
    obs::SpatialMetrics *metrics =
        observer_ ? observer_->metrics() : nullptr;
    obs::ChromeTracer *tracer = observer_ ? observer_->tracer() : nullptr;
    const Cycles grantCycle = machine_->now();
    // Everything until the yield is this agent's activity: per-class
    // attribution and the arbitration scale follow the grant.
    machine_->setActiveClass(t.spec.cls);
    {
        std::unique_lock<std::mutex> lk(mu_);
        current_ = static_cast<std::uint32_t>(next);
        quantum_ = quantumFor(t);
        // The per-tenant metrics overlay needs the full tenant list
        // up front (closed co-runs declare it); open-system jobs are
        // dynamic, so the overlay stays off there.
        if (metrics && openSlots_ == 0)
            metrics->setCurrentTenant(t.id);
        running_ = next;
        cv_.notify_all();
        cv_.wait(lk, [&] { return running_ == -1; });
    }
    const Cycles yieldCycle = machine_->now();
    if (tracer && yieldCycle > grantCycle)
        tracer->tenantSpan(t.id, t.name, grantCycle, yieldCycle);
}

CorunReport
TenantScheduler::buildReport()
{
    obs::SpatialMetrics *metrics =
        observer_ ? observer_->metrics() : nullptr;

    CorunReport report;
    if (metrics) {
        metrics->setLinkFlits(machine_->network().lifetimeLinkFlits(),
                              machine_->network().mesh().numLinks());
        report.obsSnapshot = metrics->snapshot();
    }
    if (observer_)
        observer_->closeOutputs();

    report.policy = opts_.policy;
    report.allValid = true;
    for (auto &t : tenants_) {
        TenantResult r;
        r.id = t->id;
        r.name = t->name;
        r.workload = t->spec.workload;
        r.weight = t->spec.weight;
        r.cls = t->spec.cls;
        r.run = t->result;
        r.finishCycle = t->binding.finishCycle;
        r.epochs = t->epochsRun;
        report.makespan = std::max(report.makespan, r.finishCycle);
        report.allValid = report.allValid && r.run.valid;
        report.tenants.push_back(std::move(r));
    }
    return report;
}

CorunReport
TenantScheduler::run()
{
    SIM_REQUIRE("tenant", !ran_, "TenantScheduler::run() is one-shot");
    SIM_REQUIRE("tenant", openSlots_ == 0,
                "open-system schedulers run through runOpen()");
    ran_ = true;

    // Tenant 0 uses the boot arena; every further tenant gets its own.
    for (std::size_t i = 1; i < tenants_.size(); ++i)
        os_->createArena();
    machine_->setEpochHook([this] { onEpoch(); });

    obs::SpatialMetrics *metrics =
        observer_ ? observer_->metrics() : nullptr;
    if (metrics) {
        std::vector<std::string> names;
        for (const auto &t : tenants_)
            names.push_back(t->name);
        metrics->setTenants(std::move(names));
    }

    for (auto &t : tenants_) {
        Tenant *tp = t.get();
        t->thread = std::thread([this, tp] { tenantMain(*tp); });
    }

    while (true) {
        const int next = pickNext();
        if (next < 0)
            break;
        grantQuantum(next);
        // Once every foreground tenant finished, ask the open-ended
        // background agents to wrap up at their next epoch boundary
        // (they would otherwise run to their own epoch caps).
        if (haveForeground_ && !drainBackground_ && allForegroundDone())
            drainBackground_ = true;
    }
    for (auto &t : tenants_)
        t->thread.join();
    machine_->setEpochHook(nullptr);
    for (auto &t : tenants_)
        if (t->error)
            std::rethrow_exception(t->error);

    return buildReport();
}

TenantScheduler::Tenant &
TenantScheduler::spawnJob(const AdmittedJob &job)
{
    SIM_REQUIRE("tenant", job.arena < openSlots_,
                "admitted job '%s' names arena %u but the run has %u "
                "slots",
                job.workload.c_str(), job.arena, openSlots_);
    auto t = std::make_unique<Tenant>();
    t->id = static_cast<std::uint32_t>(tenants_.size());
    t->name = job.name.empty()
                  ? job.workload + "#" + std::to_string(job.requestId)
                  : job.name;
    t->spec.workload = job.workload;
    t->spec.weight = job.weight;
    t->spec.cls = job.cls;
    t->fn = job.runner ? job.runner : workloadRunner(job.workload);
    notePresentClass(job.cls);
    t->binding.id = t->id;
    t->binding.name = t->name;
    t->arena = job.arena;
    t->seedIndex = job.requestId;
    t->job = job;
    tenants_.push_back(std::move(t));
    Tenant *tp = tenants_.back().get();
    tp->thread = std::thread([this, tp] { tenantMain(*tp); });
    return *tp;
}

CorunReport
TenantScheduler::runOpen(AdmissionControl &adm)
{
    SIM_REQUIRE("tenant", !ran_, "TenantScheduler::runOpen() is one-shot");
    SIM_REQUIRE("tenant", openSlots_ > 0,
                "runOpen needs the open-system constructor");
    ran_ = true;
    machine_->setEpochHook([this] { onEpoch(); });

    // On a job error: stop admitting, drain the jobs already in
    // flight (their threads must be granted to finish), then rethrow.
    std::exception_ptr firstError;
    while (true) {
        // An admission hook that throws must not unwind past parked
        // job threads (their std::thread dtors would terminate); fold
        // the error into the drain path instead.
        if (!firstError) {
            try {
                for (const AdmittedJob &job : adm.admit(machine_->now()))
                    spawnJob(job);
            } catch (...) {
                firstError = std::current_exception();
            }
        }
        const int next = pickNext();
        if (next < 0) {
            if (firstError)
                break;
            Cycles dt = 0;
            try {
                dt = adm.idleAdvance(machine_->now());
            } catch (...) {
                firstError = std::current_exception();
                break; // nothing in flight: pickNext() was negative
            }
            if (dt == 0)
                break;
            machine_->advanceIdle(dt);
            continue;
        }
        grantQuantum(next);
        Tenant &t = *tenants_[next];
        if (t.finished && !t.joined) {
            // Join eagerly so at most openSlots_ threads exist.
            t.thread.join();
            t.joined = true;
            if (t.error && !firstError) {
                firstError = t.error;
            } else if (!t.error && !firstError) {
                try {
                    adm.onFinish(t.job, t.result,
                                 t.binding.finishCycle);
                } catch (...) {
                    firstError = std::current_exception();
                }
            }
        }
    }
    machine_->setEpochHook(nullptr);
    if (firstError)
        std::rethrow_exception(firstError);
    return buildReport();
}

CorunReport
runCorun(const std::vector<TenantSpec> &specs, const CorunOptions &opts)
{
    TenantScheduler sched(specs, opts);
    CorunReport report = sched.run();
    if (opts.solo) {
        // Solo baselines: the same work (same substream seed, same
        // inputs) alone on an identical machine. Sequential on
        // purpose — baselines must not perturb the co-run.
        for (auto &t : report.tenants) {
            // Background interference agents have no solo baseline:
            // they exist to perturb the foreground, and computeQos
            // already excludes soloCycles == 0 rows from aggregates.
            if (t.cls != AgentClass::ndc)
                continue;
            workloads::RunConfig rc;
            rc.mode = opts.mode;
            rc.machine = opts.machine;
            rc.heapPolicy = opts.heapPolicy;
            rc.allocOpts = opts.allocOpts;
            rc.allocOpts.seed =
                Rng::substreamSeed(opts.allocOpts.seed, t.id);
            workloads::RunContext ctx(rc);
            const RunnerFn fn = workloadRunner(t.workload);
            const workloads::RunResult solo =
                fn(ctx, Rng::substreamSeed(opts.seed, t.id), opts.quick);
            t.soloCycles = solo.stats.cycles;
            report.allValid = report.allValid && solo.valid;
        }
        computeQos(report);
    }
    return report;
}

} // namespace affalloc::tenant
