#include "tenant/qos.hh"

#include <cstdio>

#include "sim/log.hh"

namespace affalloc::tenant
{

double
jainFairness(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 1.0;
    double sum = 0.0;
    double sumSq = 0.0;
    for (const double x : xs) {
        sum += x;
        sumSq += x * x;
    }
    if (sumSq <= 0.0)
        return 1.0;
    return (sum * sum) / (static_cast<double>(xs.size()) * sumSq);
}

void
computeQos(CorunReport &report)
{
    std::vector<double> progress;
    double stp = 0.0;
    for (auto &t : report.tenants) {
        if (t.soloCycles == 0 || t.finishCycle == 0) {
            t.slowdown = 0.0;
            continue;
        }
        t.slowdown = static_cast<double>(t.finishCycle) /
                     static_cast<double>(t.soloCycles);
        const double p = 1.0 / t.slowdown;
        progress.push_back(p);
        stp += p;
    }
    report.weightedSpeedup = stp;
    report.fairness = jainFairness(progress);
}

void
writeQosCsv(const std::string &path, const CorunReport &report,
            const std::string &config)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        SIM_FATAL("tenant", "cannot open QoS csv %s for writing",
                  path.c_str());
    // Aggregates (weighted speedup, fairness, makespan) repeat on
    // every row so each line is a self-contained observation. The
    // class column is appended last so existing positional parsers of
    // the original columns keep working; classic NDC tenants write the
    // backward-compatible default "ndc".
    std::fprintf(f, "tenant,workload,weight,config,policy,epochs,"
                    "service_cycles,finish_cycle,solo_cycles,slowdown,"
                    "weighted_speedup,fairness,makespan,joules,hops,"
                    "valid,class\n");
    for (const auto &t : report.tenants) {
        std::fprintf(f,
                     "%s,%s,%u,%s,%s,%llu,%llu,%llu,%llu,%.6f,%.6f,"
                     "%.6f,%llu,%.6f,%llu,%d,%s\n",
                     t.name.c_str(), t.workload.c_str(), t.weight,
                     config.c_str(), schedPolicyName(report.policy),
                     (unsigned long long)t.epochs,
                     (unsigned long long)t.run.stats.cycles,
                     (unsigned long long)t.finishCycle,
                     (unsigned long long)t.soloCycles, t.slowdown,
                     report.weightedSpeedup, report.fairness,
                     (unsigned long long)report.makespan, t.run.joules,
                     (unsigned long long)t.run.hops(),
                     t.run.valid ? 1 : 0, agentClassName(t.cls));
    }
    if (std::fclose(f) != 0)
        SIM_FATAL("tenant", "error closing QoS csv %s", path.c_str());
}

void
printCorunReport(const CorunReport &report)
{
    std::printf("Co-run (%s policy, %zu tenants):\n",
                schedPolicyName(report.policy), report.tenants.size());
    std::printf("  %-16s %8s %14s %14s %14s %9s %6s\n", "tenant",
                "epochs", "service_cyc", "finish_cyc", "solo_cyc",
                "slowdown", "valid");
    for (const auto &t : report.tenants) {
        std::printf("  %-16s %8llu %14llu %14llu %14llu %9.3f %6s\n",
                    t.name.c_str(), (unsigned long long)t.epochs,
                    (unsigned long long)t.run.stats.cycles,
                    (unsigned long long)t.finishCycle,
                    (unsigned long long)t.soloCycles, t.slowdown,
                    t.run.valid ? "yes" : "NO");
    }
    std::printf("  makespan %llu cycles, weighted speedup %.3f, "
                "Jain fairness %.3f\n",
                (unsigned long long)report.makespan,
                report.weightedSpeedup, report.fairness);
}

} // namespace affalloc::tenant
