/**
 * @file
 * Name-indexed registry of co-runnable workloads plus the
 * `--tenants=<spec>` parser. Each registry entry adapts one Table 3
 * workload to run on a caller-provided RunContext with a per-tenant
 * RNG substream seed, so the same entry serves both co-run tenants
 * (shared machine, private arena) and their solo baselines.
 */

#ifndef AFFALLOC_TENANT_WORKLOAD_REGISTRY_HH
#define AFFALLOC_TENANT_WORKLOAD_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "workloads/run_context.hh"

namespace affalloc::tenant
{

/**
 * Run the workload on @p ctx. @p seed is the tenant's RNG substream
 * seed (drives workload-private randomness such as pointer-chase keys
 * and Kronecker edges); @p quick selects the reduced CI-scale inputs.
 */
using RunnerFn = std::function<workloads::RunResult(
    workloads::RunContext &ctx, std::uint64_t seed, bool quick)>;

/** One tenant instance requested on the command line. */
struct TenantSpec
{
    /** Registry workload name (see workloadNames()). */
    std::string workload;
    /** Scheduling weight (epochs per round under the weighted policy). */
    std::uint32_t weight = 1;
    /** Traffic class this agent belongs to (ndc = classic tenant). */
    AgentClass cls = AgentClass::ndc;
    /**
     * Explicit runner for non-registry agents (host traffic / I/O
     * injectors from src/traffic). Null (the default) resolves
     * `workload` through the registry.
     */
    RunnerFn runner = nullptr;
};

/** All registered workload names, in stable order. */
const std::vector<std::string> &workloadNames();

/** Whether @p name is a registered workload. */
bool isWorkloadName(const std::string &name);

/**
 * The runner for @p name. Unknown names SIM_FATAL with a message
 * listing every registered workload.
 */
RunnerFn workloadRunner(const std::string &name);

/**
 * Parse a tenant spec such as "bfs:2,vecadd:1" into one TenantSpec
 * per instance. Grammar: `name[:count[:weight]]` comma-separated;
 * count expands to that many instances, weight defaults to 1.
 * Malformed specs and unknown workload names SIM_FATAL with the list
 * of valid names.
 */
std::vector<TenantSpec> parseTenantSpecs(const std::string &spec);

} // namespace affalloc::tenant

#endif // AFFALLOC_TENANT_WORKLOAD_REGISTRY_HH
