/**
 * @file
 * The serving engine: arrival schedule generation, the admission
 * controller (an AdmissionControl driving TenantScheduler::runOpen),
 * mid-flight fault campaign application with re-affinity recovery,
 * and the per-class availability summary.
 */

#include <algorithm>
#include <cmath>
#include <deque>
#include <set>

#include "mem/address.hh"
#include "obs/latency_hist.hh"
#include "serve/serve.hh"
#include "sim/log.hh"
#include "sim/prof.hh"
#include "sim/rng.hh"

namespace affalloc::serve
{

namespace
{

/** RNG substream ids private to the front-end (clear of request ids,
 *  which occupy 0..numRequests). */
constexpr std::uint64_t arrivalStream = 0x0a22117a1ULL;
constexpr std::uint64_t baselineStreamBase = 0x0ba5e11eULL;

/**
 * Request-id base for background interference jobs. Far above any
 * request id, so onFinish can tell the two apart without extra state
 * and the seed substreams stay clear of the request streams.
 */
constexpr std::uint64_t bgIdBase = 1ULL << 60;

std::string
jsonPair(const char *a, std::uint64_t av, const char *b, std::uint64_t bv)
{
    return std::string("\"") + a + "\":" + std::to_string(av) + ",\"" +
           b + "\":" + std::to_string(bv);
}

/**
 * The engine. One instance per runServe call; implements the
 * scheduler's admission interface. All state transitions happen on
 * the scheduler thread at scheduling rounds, keyed off the simulated
 * clock only — host threading never influences an outcome.
 */
class ServeEngine final : public tenant::AdmissionControl
{
  public:
    explicit ServeEngine(ServeOptions opts);

    ServeReport run();

    // ------------------------------------------- AdmissionControl hooks
    std::vector<tenant::AdmittedJob> admit(Cycles now) override;
    Cycles idleAdvance(Cycles now) override;
    void onFinish(const tenant::AdmittedJob &job,
                  const workloads::RunResult &result,
                  Cycles finish_cycle) override;

  private:
    struct Arrival
    {
        Cycles cycle = 0;
        std::uint64_t id = 0;
    };

    void generateArrivals();
    void measureUnloadedBaselines();
    void applyFaultsUpTo(Cycles now);
    void reassignRedirects();
    /** Try to enqueue one arrival attempt (fresh or retried). */
    void attemptAdmission(RequestRecord &r, Cycles now);
    /** Drop queued requests older than their class give-up age. */
    void expireQueued(Cycles now);
    /** Horizon reached: everything not yet in service times out. */
    void flushPendingAtHorizon();
    void traceInstant(const char *name, Cycles ts,
                      const std::string &args);
    bool allResolved() const;
    void summarize(const tenant::CorunReport &corun);

    ServeOptions opts_;
    std::vector<Cycles> unloaded_; // per class
    std::vector<sim::TimedFault> schedule_;
    std::size_t nextFault_ = 0;

    std::vector<RequestRecord> requests_; // by id
    std::vector<Arrival> arrivals_;       // sorted by (cycle, id)
    std::size_t nextArrival_ = 0;
    /** Scheduled client retries, ordered by (due cycle, id). */
    std::set<std::pair<Cycles, std::uint64_t>> retries_;
    std::deque<std::uint64_t> queue_;
    std::set<std::uint32_t> freeSlots_;
    std::uint32_t resolved_ = 0;
    std::uint32_t iotCap_ = 0;
    /** Background interference jobs spawned (first admit() only). */
    bool backgroundAdmitted_ = false;
    /** Drain request already sent to the scheduler. */
    bool drainRequested_ = false;
    /** resolved_ value last reported to the progress heartbeat. */
    std::uint32_t progressReported_ = 0;

    tenant::TenantScheduler *sched_ = nullptr; // valid during run()
    ServeReport report_;
};

ServeEngine::ServeEngine(ServeOptions opts) : opts_(std::move(opts))
{
    if (opts_.classes.empty())
        opts_.classes = defaultServeClasses();
    SIM_REQUIRE("serve", opts_.numRequests > 0,
                "a serving run needs >= 1 request");
    SIM_REQUIRE("serve", opts_.slots > 0, "need >= 1 tenant slot");
    SIM_REQUIRE("serve", opts_.queueCapacity > 0,
                "need an admission queue of capacity >= 1");
    SIM_REQUIRE("serve", opts_.maxCycles > 0,
                "an open-system run needs a finite horizon (maxCycles)");
    SIM_REQUIRE("serve", opts_.arrivalsPerMcycle > 0.0,
                "arrival rate must be positive");
    SIM_REQUIRE("serve",
                opts_.burstiness >= 0.0 && opts_.burstiness <= 1.0,
                "burstiness %g outside [0, 1]", opts_.burstiness);
    double totalWeight = 0.0;
    for (const ServeClass &c : opts_.classes) {
        SIM_REQUIRE("serve", tenant::isWorkloadName(c.workload),
                    "unknown serve workload '%s'", c.workload.c_str());
        SIM_REQUIRE("serve", c.weight > 0.0,
                    "class '%s' needs a positive weight",
                    c.workload.c_str());
        totalWeight += c.weight;
    }
    SIM_REQUIRE("serve", totalWeight > 0.0, "empty workload mix");
    for (const tenant::TenantSpec &b : opts_.background)
        SIM_REQUIRE("serve",
                    b.runner || tenant::isWorkloadName(b.workload),
                    "background spec '%s' has neither a runner nor a "
                    "registered workload",
                    b.workload.c_str());

    // Merge the explicit campaign with any schedule carried inside
    // the machine's fault config, and fix the firing order.
    schedule_ = opts_.machine.faults.schedule;
    schedule_.insert(schedule_.end(), opts_.faultSchedule.begin(),
                     opts_.faultSchedule.end());
    std::stable_sort(schedule_.begin(), schedule_.end(),
                     [](const sim::TimedFault &a, const sim::TimedFault &b) {
                         return a.atCycle < b.atCycle;
                     });
    sim::validateFaultSchedule(schedule_, opts_.machine.meshX,
                               opts_.machine.meshY, opts_.maxCycles);
    // The scheduler's machine must not see the schedule again at boot
    // (events fire through this engine, not the FaultPlan ctor).
    opts_.machine.faults.schedule.clear();

    // Background agents hold dedicated arenas past the request slots,
    // so the IOT budget covers both populations.
    const std::uint32_t totalSlots =
        opts_.slots +
        static_cast<std::uint32_t>(opts_.background.size());
    iotCap_ = static_cast<std::uint32_t>(mem::numInterleavePools) *
                  totalSlots + 2;
    for (std::uint32_t s = 0; s < opts_.slots; ++s)
        freeSlots_.insert(s);
}

void
ServeEngine::generateArrivals()
{
    Rng rng(Rng::substreamSeed(opts_.seed, arrivalStream));
    const double meanGap = 1e6 / opts_.arrivalsPerMcycle;
    double totalWeight = 0.0;
    for (const ServeClass &c : opts_.classes)
        totalWeight += c.weight;

    Cycles t = 0;
    requests_.resize(opts_.numRequests);
    for (std::uint32_t i = 0; i < opts_.numRequests; ++i) {
        // Exponential interarrival; a bursty draw compresses the gap
        // 8x, clustering arrivals without changing the offered count.
        double gap = -std::log(1.0 - rng.uniform()) * meanGap;
        if (opts_.burstiness > 0.0 && rng.uniform() < opts_.burstiness)
            gap /= 8.0;
        t += std::max<Cycles>(1, static_cast<Cycles>(gap));

        double pick = rng.uniform() * totalWeight;
        std::uint32_t cls = 0;
        for (; cls + 1 < opts_.classes.size(); ++cls) {
            if (pick < opts_.classes[cls].weight)
                break;
            pick -= opts_.classes[cls].weight;
        }
        RequestRecord &r = requests_[i];
        r.id = i;
        r.classIdx = cls;
        r.arrival = t;
        arrivals_.push_back(Arrival{t, i});
    }
}

void
ServeEngine::measureUnloadedBaselines()
{
    unloaded_.resize(opts_.classes.size(), 0);
    for (std::size_t c = 0; c < opts_.classes.size(); ++c) {
        workloads::RunConfig rc;
        rc.mode = opts_.mode;
        rc.machine = opts_.machine;
        rc.machine.faults = sim::FaultConfig{}; // healthy baseline
        rc.heapPolicy = opts_.heapPolicy;
        rc.allocOpts = opts_.allocOpts;
        rc.allocOpts.seed = Rng::substreamSeed(
            opts_.allocOpts.seed, baselineStreamBase + c);
        workloads::RunContext ctx(rc);
        const tenant::RunnerFn fn =
            tenant::workloadRunner(opts_.classes[c].workload);
        const workloads::RunResult solo = fn(
            ctx,
            Rng::substreamSeed(opts_.seed, baselineStreamBase + c),
            opts_.quick);
        SIM_REQUIRE("serve", solo.valid,
                    "unloaded baseline of '%s' failed validation",
                    opts_.classes[c].workload.c_str());
        unloaded_[c] = std::max<Cycles>(1, solo.stats.cycles);
    }
}

void
ServeEngine::traceInstant(const char *name, Cycles ts,
                          const std::string &args)
{
    if (obs::Observer *o = sched_ ? sched_->machine().observer() : nullptr)
        if (obs::ChromeTracer *t = o->tracer())
            t->machineInstant(name, ts, args);
}

void
ServeEngine::attemptAdmission(RequestRecord &r, Cycles now)
{
    if (queue_.size() < opts_.queueCapacity) {
        queue_.push_back(r.id);
        r.enqueue = now;
        report_.peakQueueDepth = std::max(
            report_.peakQueueDepth,
            static_cast<std::uint32_t>(queue_.size()));
        traceInstant("request-enqueue", now,
                     jsonPair("req", r.id, "class", r.classIdx));
        return;
    }
    report_.shedAttempts += 1;
    const ServeClass &cls = opts_.classes[r.classIdx];
    if (r.retries < cls.maxRetries) {
        PROF_SCOPE("serve/retry");
        r.retries += 1;
        report_.retries += 1;
        prof::counterAdd("serve/retries", 1);
        const Cycles backoff =
            cls.retryBackoff
            << std::min<std::uint32_t>(r.retries - 1, 6);
        retries_.insert({now + std::max<Cycles>(1, backoff), r.id});
        traceInstant("request-retry", now,
                     jsonPair("req", r.id, "attempt", r.retries));
    } else {
        r.outcome = RequestOutcome::shed;
        resolved_ += 1;
        traceInstant("request-shed", now,
                     jsonPair("req", r.id, "class", r.classIdx));
    }
}

void
ServeEngine::expireQueued(Cycles now)
{
    std::deque<std::uint64_t> keep;
    for (const std::uint64_t id : queue_) {
        RequestRecord &r = requests_[id];
        const ServeClass &cls = opts_.classes[r.classIdx];
        if (now >= r.arrival && now - r.arrival >= cls.giveUpAfter) {
            r.outcome = RequestOutcome::timedOut;
            resolved_ += 1;
            traceInstant("request-timeout", now,
                         jsonPair("req", r.id, "waited",
                                  now - r.arrival));
        } else {
            keep.push_back(id);
        }
    }
    queue_.swap(keep);
}

void
ServeEngine::flushPendingAtHorizon()
{
    const Cycles now = sched_->machine().now();
    for (; nextArrival_ < arrivals_.size(); ++nextArrival_) {
        RequestRecord &r = requests_[arrivals_[nextArrival_].id];
        r.outcome = RequestOutcome::timedOut;
        resolved_ += 1;
    }
    for (const auto &[due, id] : retries_) {
        requests_[id].outcome = RequestOutcome::timedOut;
        resolved_ += 1;
    }
    retries_.clear();
    for (const std::uint64_t id : queue_) {
        requests_[id].outcome = RequestOutcome::timedOut;
        resolved_ += 1;
    }
    if (!queue_.empty() || nextArrival_ < arrivals_.size())
        traceInstant("serve-horizon", now, "\"flushed\":1");
    queue_.clear();
}

void
ServeEngine::applyFaultsUpTo(Cycles now)
{
    bool killed = false;
    nsc::Machine &m = sched_->machine();
    while (nextFault_ < schedule_.size() &&
           schedule_[nextFault_].atCycle <= now) {
        const sim::TimedFault &ev = schedule_[nextFault_++];
        if (ev.kind == sim::FaultKind::killBank) {
            if (!m.bankLive(ev.target))
                continue;
            if (m.faultPlan().numLiveBanks() <= 1) {
                // Spare capacity is exhausted: killing the last live
                // bank would leave nowhere to serve from. Degrade
                // gracefully instead of crashing the run.
                report_.killsSuppressed += 1;
                traceInstant("bank-kill-suppressed", now,
                             jsonPair("bank", ev.target, "live", 1));
                continue;
            }
            m.injectBankFault(ev.target);
            report_.banksKilled += 1;
            killed = true;
        } else if (ev.kind == sim::FaultKind::nackStorm) {
            m.injectNackStorm(ev.target);
            report_.nackStorms += 1;
        } else {
            m.injectLinkDegrade(ev.target, ev.factor);
            report_.linksDegraded += 1;
        }
    }
    if (killed && opts_.reaffinity)
        reassignRedirects();
}

void
ServeEngine::reassignRedirects()
{
    nsc::Machine &m = sched_->machine();
    sim::FaultPlan &plan = m.faultPlan();
    alloc::BankLoadBoard &board = sched_->loadBoard();
    const std::uint32_t numBanks = opts_.machine.numBanks();
    board.init(numBanks); // idempotent; zero if nothing allocated yet

    // Redirects assigned in this pass, so dead banks spread instead
    // of piling onto one lightly-loaded survivor.
    std::vector<std::uint32_t> pending(numBanks, 0);
    for (BankId dead = 0; dead < numBanks; ++dead) {
        if (plan.bankLive(dead))
            continue;
        const auto betterThan = [&](BankId a, BankId b) {
            if (pending[a] != pending[b])
                return pending[a] < pending[b];
            if (board.loads[a] != board.loads[b])
                return board.loads[a] < board.loads[b];
            return a < b;
        };
        BankId best = invalidBank;
        BankId runnerUp = invalidBank;
        for (BankId t = 0; t < numBanks; ++t) {
            if (!plan.bankLive(t))
                continue;
            if (best == invalidBank || betterThan(t, best)) {
                runnerUp = best;
                best = t;
            } else if (runnerUp == invalidBank ||
                       betterThan(t, runnerUp)) {
                runnerUp = t;
            }
        }
        SIM_REQUIRE("serve", best != invalidBank,
                    "re-affinity recovery found no live bank");
        const BankId defaultSpare = plan.redirect(dead);
        plan.setRedirect(dead, best);
        pending[best] += 1;
        report_.reaffinityMoves += 1;
        // The spare re-target moves the dead bank's stream context
        // and a line-buffer's worth of hot state; charge the traffic
        // (counters only — the clock is advanced by the next epoch).
        m.migrateStream(dead, best);
        m.forwardData(dead, best, 4096);
        if (obs::Observer *o = m.observer()) {
            if (obs::PlacementExplainer *e = o->explainer()) {
                obs::PlacementDecision dec;
                dec.policy = "reaffinity";
                dec.numAffinity = 1;
                dec.chosen = best;
                dec.chosenLoad =
                    static_cast<double>(board.loads[best]);
                dec.chosenScore =
                    static_cast<double>(pending[best] - 1);
                dec.runnerUp = runnerUp;
                dec.runnerUpScore =
                    runnerUp == invalidBank
                        ? 0.0
                        : static_cast<double>(board.loads[runnerUp]);
                e->record(dec);
            }
            if (obs::ChromeTracer *t = o->tracer())
                t->machineInstant(
                    "reaffinity", m.now(),
                    jsonPair("dead", dead, "to", best) +
                        ",\"defaultSpare\":" +
                        std::to_string(defaultSpare));
        }
    }
}

std::vector<tenant::AdmittedJob>
ServeEngine::admit(Cycles now)
{
    PROF_SCOPE("serve/admit");
    applyFaultsUpTo(now);

    // Background interference agents enter once, before any request:
    // they hold the arenas past the request slots for the whole run
    // and are drained (below) once every request resolves.
    std::vector<tenant::AdmittedJob> jobs;
    if (!backgroundAdmitted_) {
        backgroundAdmitted_ = true;
        for (std::size_t i = 0; i < opts_.background.size(); ++i) {
            const tenant::TenantSpec &spec = opts_.background[i];
            tenant::AdmittedJob job;
            job.requestId = bgIdBase + i;
            job.workload = spec.workload;
            job.name = spec.workload + "#bg" + std::to_string(i);
            job.weight = spec.weight;
            job.cls = spec.cls;
            job.runner = spec.runner;
            job.arena = opts_.slots + static_cast<std::uint32_t>(i);
            jobs.push_back(std::move(job));
            traceInstant("background-admit", now,
                         jsonPair("bg", i, "arena",
                                  opts_.slots + i));
        }
    }

    // Collect every arrival attempt due by now — fresh arrivals and
    // retried ones — and replay them in (cycle, id) order so the
    // admission sequence is a pure function of the simulated clock.
    std::vector<Arrival> due;
    while (nextArrival_ < arrivals_.size() &&
           arrivals_[nextArrival_].cycle <= now) {
        due.push_back(arrivals_[nextArrival_]);
        ++nextArrival_;
    }
    while (!retries_.empty() && retries_.begin()->first <= now) {
        due.push_back(Arrival{retries_.begin()->first,
                              retries_.begin()->second});
        retries_.erase(retries_.begin());
    }
    std::sort(due.begin(), due.end(),
              [](const Arrival &a, const Arrival &b) {
                  return a.cycle != b.cycle ? a.cycle < b.cycle
                                            : a.id < b.id;
              });

    if (now >= opts_.maxCycles) {
        for (const Arrival &a : due) {
            requests_[a.id].outcome = RequestOutcome::timedOut;
            resolved_ += 1;
        }
        flushPendingAtHorizon();
    } else {
        for (const Arrival &a : due)
            attemptAdmission(requests_[a.id], now);
        expireQueued(now);
    }

    // Dispatch from the queue into free slots, FIFO.
    while (!queue_.empty() && !freeSlots_.empty()) {
        const std::uint64_t id = queue_.front();
        queue_.pop_front();
        RequestRecord &r = requests_[id];
        const std::uint32_t arena = *freeSlots_.begin();
        freeSlots_.erase(freeSlots_.begin());
        r.admit = now;
        const ServeClass &cls = opts_.classes[r.classIdx];
        tenant::AdmittedJob job;
        job.requestId = id;
        job.workload = cls.workload;
        job.name = cls.workload + "#" + std::to_string(id);
        job.arena = arena;
        jobs.push_back(std::move(job));
        traceInstant("request-admit", now,
                     jsonPair("req", id, "arena", arena));
    }
    prof::progressNoteAdmitted(jobs.size());
    if (prof::progressEnabled() && resolved_ != progressReported_) {
        prof::progressAdvance(resolved_ - progressReported_);
        progressReported_ = resolved_;
    }
    // Every request resolved: ask the open-ended background agents to
    // wrap up at their next epoch boundary so the run can drain.
    if (allResolved() && !drainRequested_) {
        drainRequested_ = true;
        sched_->requestBackgroundDrain();
    }
    return jobs;
}

Cycles
ServeEngine::idleAdvance(Cycles now)
{
    // Called only when nothing is in service, which means every slot
    // is free, which means admit() drained the queue first.
    SIM_REQUIRE("serve", queue_.empty(),
                "idle with a non-empty admission queue");
    if (allResolved())
        return 0;
    Cycles next = opts_.maxCycles; // the horizon flush itself
    if (nextArrival_ < arrivals_.size())
        next = std::min(next, arrivals_[nextArrival_].cycle);
    if (!retries_.empty())
        next = std::min(next, retries_.begin()->first);
    if (nextFault_ < schedule_.size())
        next = std::min(next, schedule_[nextFault_].atCycle);
    return next > now ? next - now : 1;
}

void
ServeEngine::onFinish(const tenant::AdmittedJob &job,
                      const workloads::RunResult &result,
                      Cycles finish_cycle)
{
    if (job.requestId >= bgIdBase) {
        // Background interference agent: not a request — no record,
        // no slot to recycle (its arena is dedicated), no resolution
        // bookkeeping. It must still have validated its own run.
        SIM_REQUIRE("serve", result.valid,
                    "background agent '%s' failed validation",
                    job.name.c_str());
        traceInstant("background-finish", finish_cycle,
                     jsonPair("bg", job.requestId - bgIdBase, "arena",
                              job.arena));
        return;
    }

    RequestRecord &r = requests_[job.requestId];
    r.finish = finish_cycle;
    r.outcome = RequestOutcome::completed;
    r.valid = result.valid;
    resolved_ += 1;

    // Arena-recycle hygiene: the finished job's allocator must have
    // unregistered every host range in the slot's pool windows before
    // the arena is handed to the next request (the dtor/range-reuse
    // bug class turns into silent cross-request aliasing otherwise).
    os::SimOS &os = sched_->machine().simOs();
    const mem::AddressSpace &as = sched_->machine().addressSpace();
    for (int k = 0; k < mem::numInterleavePools; ++k) {
        const Addr base = os.poolVirtBaseOf(k, job.arena);
        const std::size_t left =
            as.numRangesInSimWindow(base, base + mem::arenaStride);
        SIM_REQUIRE("serve", left == 0,
                    "arena %u pool %d still has %zu host ranges "
                    "registered at slot recycle",
                    job.arena, k, left);
    }
    // And the IOT must stay sized by the slots, not the job count:
    // per-job entry leakage would exhaust the table under churn.
    SIM_REQUIRE("serve", os.iot().size() <= iotCap_,
                "IOT has %zu entries, past the %u-entry slot budget "
                "(per-job entries leaked)",
                os.iot().size(), iotCap_);

    freeSlots_.insert(job.arena);
    traceInstant("request-finish", finish_cycle,
                 jsonPair("req", job.requestId, "arena", job.arena));
}

bool
ServeEngine::allResolved() const
{
    return resolved_ >= opts_.numRequests;
}

void
ServeEngine::summarize(const tenant::CorunReport &corun)
{
    report_.offered = opts_.numRequests;
    report_.corunDigest = corun.digest();
    report_.endCycle = sched_->machine().now();

    std::vector<obs::LatencyHistogram> hist(opts_.classes.size());
    std::vector<ClassSummary> classes(opts_.classes.size());
    report_.allValid = true;
    for (const RequestRecord &r : requests_) {
        SIM_REQUIRE("serve", r.outcome != RequestOutcome::pending,
                    "request %llu left pending at end of run",
                    static_cast<unsigned long long>(r.id));
        ClassSummary &c = classes[r.classIdx];
        c.offered += 1;
        c.retries += r.retries;
        switch (r.outcome) {
          case RequestOutcome::completed:
            c.completed += 1;
            hist[r.classIdx].record(r.finish - r.arrival);
            report_.allValid = report_.allValid && r.valid;
            break;
          case RequestOutcome::shed:
            c.shed += 1;
            break;
          default:
            c.timedOut += 1;
            break;
        }
    }

    report_.completed = report_.shed = report_.timedOut = 0;
    for (std::size_t i = 0; i < classes.size(); ++i) {
        ClassSummary &c = classes[i];
        c.workload = opts_.classes[i].workload;
        c.unloadedCycles = unloaded_[i];
        c.p50 = hist[i].quantileUpperBound(0.50);
        c.p99 = hist[i].quantileUpperBound(0.99);
        c.p999 = hist[i].quantileUpperBound(0.999);
        const double base = static_cast<double>(c.unloadedCycles);
        c.p50Slowdown = static_cast<double>(c.p50) / base;
        c.p99Slowdown = static_cast<double>(c.p99) / base;
        c.p999Slowdown = static_cast<double>(c.p999) / base;
        c.availability =
            c.offered ? static_cast<double>(c.completed) / c.offered
                      : 0.0;
        report_.completed += c.completed;
        report_.shed += c.shed;
        report_.timedOut += c.timedOut;
        if (c.completed > 0)
            report_.worstP99Slowdown =
                std::max(report_.worstP99Slowdown, c.p99Slowdown);
    }
    report_.availability =
        static_cast<double>(report_.completed) / report_.offered;
    report_.goodputPerMcycle =
        report_.endCycle
            ? static_cast<double>(report_.completed) * 1e6 /
                  static_cast<double>(report_.endCycle)
            : 0.0;
    report_.classes = std::move(classes);
    report_.requests = std::move(requests_);
}

ServeReport
ServeEngine::run()
{
    prof::progressSetGoal(opts_.numRequests);
    generateArrivals();
    measureUnloadedBaselines();

    tenant::CorunOptions copts;
    copts.machine = opts_.machine;
    copts.mode = opts_.mode;
    copts.allocOpts = opts_.allocOpts;
    copts.heapPolicy = opts_.heapPolicy;
    copts.policy = opts_.policy;
    copts.seed = opts_.seed;
    copts.quantumEpochs = opts_.quantumEpochs;
    copts.quick = opts_.quick;
    copts.solo = false;
    copts.obs = opts_.obs;

    // Arena layout: [0, slots) recycle across requests; one dedicated
    // slot per background agent follows at [slots, slots + bg).
    const std::uint32_t totalSlots =
        opts_.slots +
        static_cast<std::uint32_t>(opts_.background.size());
    tenant::TenantScheduler sched(copts, totalSlots);
    sched_ = &sched;
    const tenant::CorunReport corun = sched.runOpen(*this);

    // Every request resolved, every slot back in the pool, and no
    // host range left registered anywhere: the machine fully drained.
    SIM_REQUIRE("serve", allResolved(),
                "run ended with unresolved requests");
    SIM_REQUIRE("serve", freeSlots_.size() == opts_.slots,
                "run ended with slots still claimed");
    SIM_REQUIRE("serve",
                sched.machine().addressSpace().size() == 0,
                "%zu host ranges still registered after drain",
                sched.machine().addressSpace().size());

    summarize(corun);
    sched_ = nullptr;
    return report_;
}

} // namespace

std::vector<ServeClass>
defaultServeClasses()
{
    // A cheap, shape-diverse mix: an affine stream kernel, a pointer
    // chase, and a hash join — all modest at quick scale so an open
    // run stays CI-sized.
    std::vector<ServeClass> mix(3);
    mix[0].workload = "vecadd";
    mix[0].weight = 3.0;
    mix[1].workload = "link_list";
    mix[1].weight = 2.0;
    mix[2].workload = "hash_join";
    mix[2].weight = 1.0;
    return mix;
}

ServeReport
runServe(const ServeOptions &opts)
{
    ServeEngine engine(opts);
    return engine.run();
}

} // namespace affalloc::serve
