/**
 * @file
 * Open-system serving front-end. Where every other driver in the repo
 * is closed (a fixed batch of jobs, makespan as the metric), this one
 * is open: requests *arrive* on a seeded Poisson/bursty schedule, pass
 * an admission controller into a bounded queue, are dispatched into
 * recycled tenant arena slots on the shared machine, run under the
 * epoch-quantum scheduler, and free — so pool fragmentation, arena
 * reuse and scheduler churn are exercised continuously, and the
 * reported metric is what a *user* sees: per-class tail latency
 * (p50/p99/p999 slowdown vs the unloaded service time), goodput, and
 * availability.
 *
 * Overload policy, all deterministic in the simulated clock:
 *  - a full admission queue sheds the arrival; the client retries
 *    with capped exponential backoff up to a per-class retry budget,
 *    after which the request counts as shed;
 *  - queued requests older than the per-class give-up age time out;
 *  - the run has a hard horizon (maxCycles): admission stops there
 *    and everything still pending is marked timed out, so an
 *    overloaded system terminates with bounded work.
 *
 * Mid-flight fault campaigns (sim::TimedFault) kill banks / degrade
 * links at scheduled cycles while requests are in service. On a bank
 * kill with re-affinity recovery enabled, each dead bank's spare is
 * re-targeted to the least-contended surviving bank (ranked by the
 * shared BankLoadBoard) instead of the default next-in-order spare,
 * the migration traffic is charged, and every decision is logged
 * through the placement explainer and tracer.
 */

#ifndef AFFALLOC_SERVE_SERVE_HH
#define AFFALLOC_SERVE_SERVE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tenant/scheduler.hh"

namespace affalloc::serve
{

/** One request class: a workload plus its arrival mix and patience. */
struct ServeClass
{
    /** Registry workload name. */
    std::string workload;
    /** Relative arrival weight in the mix. */
    double weight = 1.0;
    /** Client retries after shed admissions before giving up. */
    std::uint32_t maxRetries = 3;
    /** Base client backoff in cycles; doubles per retry (capped). */
    Cycles retryBackoff = 50'000;
    /** Queued requests older than this (since arrival) time out. */
    Cycles giveUpAfter = 8'000'000;
};

/** Configuration of one open-system serving run. */
struct ServeOptions
{
    sim::MachineConfig machine{};
    ExecMode mode = ExecMode::affAlloc;
    alloc::AllocatorOptions allocOpts{};
    os::PagePolicy heapPolicy = os::PagePolicy::linear;
    tenant::SchedPolicy policy = tenant::SchedPolicy::roundRobin;
    std::uint64_t seed = 42;
    std::uint32_t quantumEpochs = 8;
    /** Use the reduced CI-scale workload inputs. */
    bool quick = false;
    obs::ObsConfig obs{};

    /** Request classes (empty: defaultServeClasses()). */
    std::vector<ServeClass> classes;
    /** Requests offered over the run. */
    std::uint32_t numRequests = 48;
    /** Mean arrival rate in requests per million cycles. */
    double arrivalsPerMcycle = 2.0;
    /**
     * Fraction of interarrival gaps drawn 8x compressed (bursty
     * arrivals); 0 = pure Poisson.
     */
    double burstiness = 0.0;
    /** Tenant arena slots == max requests in service at once. */
    std::uint32_t slots = 4;
    /** Bounded admission queue capacity. */
    std::uint32_t queueCapacity = 8;
    /** Hard horizon; 0 is rejected (the run must terminate). */
    Cycles maxCycles = 400'000'000;
    /** Mid-flight fault campaign, applied at scheduling rounds. */
    std::vector<sim::TimedFault> faultSchedule;
    /** Re-target dead banks' spares to least-contended survivors. */
    bool reaffinity = true;
    /**
     * Background interference agents (host traffic / I/O injectors
     * from src/traffic) admitted at run start alongside the request
     * stream. They occupy dedicated arena slots beyond `slots`, never
     * consume request slots, and are drained once every request
     * resolves.
     */
    std::vector<tenant::TenantSpec> background;
};

/** The workload mix used when ServeOptions::classes is empty. */
std::vector<ServeClass> defaultServeClasses();

/** Final state of one offered request. */
enum class RequestOutcome : std::uint8_t
{
    /** Still in flight (never appears in a finished report). */
    pending,
    /** Ran and finished. */
    completed,
    /** Dropped by admission after exhausting its retry budget. */
    shed,
    /** Gave up in the queue, or was pending when the horizon hit. */
    timedOut
};

/** Short outcome name ("ok" / "shed" / "timeout" / "pending"). */
const char *requestOutcomeName(RequestOutcome o);

/** The lifecycle of one offered request. */
struct RequestRecord
{
    std::uint64_t id = 0;
    std::uint32_t classIdx = 0;
    /** First arrival attempt (cycle). */
    Cycles arrival = 0;
    /** Cycle it entered the admission queue (0: never admitted). */
    Cycles enqueue = 0;
    /** Cycle it left the queue into a slot (0: never served). */
    Cycles admit = 0;
    /** Cycle its job finished (0: never finished). */
    Cycles finish = 0;
    /** Shed admissions that were retried. */
    std::uint32_t retries = 0;
    RequestOutcome outcome = RequestOutcome::pending;
    /** Workload self-validation (completed requests only). */
    bool valid = false;
};

/** Per-class availability summary. */
struct ClassSummary
{
    std::string workload;
    std::uint32_t offered = 0;
    std::uint32_t completed = 0;
    std::uint32_t shed = 0;
    std::uint32_t timedOut = 0;
    std::uint64_t retries = 0;
    /** Healthy unloaded service time (solo run, no faults). */
    Cycles unloadedCycles = 0;
    /** End-to-end latency (finish - arrival) quantile upper bounds. */
    Cycles p50 = 0;
    Cycles p99 = 0;
    Cycles p999 = 0;
    /** pXX / unloadedCycles. */
    double p50Slowdown = 0.0;
    double p99Slowdown = 0.0;
    double p999Slowdown = 0.0;
    /** completed / offered. */
    double availability = 0.0;
};

/** The outcome of one serving run. */
struct ServeReport
{
    std::vector<RequestRecord> requests;
    std::vector<ClassSummary> classes;

    std::uint32_t offered = 0;
    std::uint32_t completed = 0;
    std::uint32_t shed = 0;
    std::uint32_t timedOut = 0;
    /** Total client retry attempts. */
    std::uint64_t retries = 0;
    /** Admission rejections (each may later be retried). */
    std::uint64_t shedAttempts = 0;
    /** Largest queue depth observed. */
    std::uint32_t peakQueueDepth = 0;

    /** Fault campaign bookkeeping. */
    std::uint32_t banksKilled = 0;
    std::uint32_t linksDegraded = 0;
    /** Re-affinity redirect re-targets performed. */
    std::uint32_t reaffinityMoves = 0;
    /**
     * Scheduled bank kills that would have taken the last live bank
     * offline and were suppressed instead of crashing the run. The
     * system keeps serving on the surviving bank in degraded mode.
     */
    std::uint32_t killsSuppressed = 0;
    /** NACK-storm rate changes applied from the fault schedule. */
    std::uint32_t nackStorms = 0;

    /** Shared-clock cycle at which the system drained. */
    Cycles endCycle = 0;
    /** completed / offered. */
    double availability = 0.0;
    /** Completed requests per million cycles of run time. */
    double goodputPerMcycle = 0.0;
    /** Worst per-class p99 slowdown (the headline tail metric). */
    double worstP99Slowdown = 0.0;
    /** Whether every completed request validated. */
    bool allValid = false;
    /** Digest of the underlying co-run (per-job stats). */
    std::uint64_t corunDigest = 0;

    /**
     * Determinism digest: every request record folded in id order
     * with the co-run digest and the end cycle. Bit-identical across
     * reruns and sweep --jobs counts.
     */
    std::uint64_t digest() const;
};

/** Run one open-system serving experiment to completion. */
ServeReport runServe(const ServeOptions &opts);

/** Header line of the availability CSV. */
std::string serveCsvHeader();

/**
 * Append one row per class plus a "total" row for this run to @p os.
 * @p config labels the sweep point (e.g. "affAlloc/rate2/bankkill").
 */
void appendServeCsv(std::ostream &os, const ServeReport &report,
                    const std::string &config);

/** Human-readable availability table on stdout. */
void printServeReport(const ServeReport &report,
                      const std::string &config = "");

} // namespace affalloc::serve

#endif // AFFALLOC_SERVE_SERVE_HH
