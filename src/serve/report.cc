/**
 * @file
 * Serving report surfaces: the determinism digest, the availability
 * CSV, and the human-readable stdout table.
 */

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "serve/serve.hh"
#include "sim/log.hh"

namespace affalloc::serve
{

const char *
requestOutcomeName(RequestOutcome o)
{
    switch (o) {
      case RequestOutcome::pending:
        return "pending";
      case RequestOutcome::completed:
        return "ok";
      case RequestOutcome::shed:
        return "shed";
      case RequestOutcome::timedOut:
        return "timeout";
    }
    return "?";
}

std::uint64_t
ServeReport::digest() const
{
    constexpr std::uint64_t prime = 0x100000001b3ULL;
    std::uint64_t d = 0xcbf29ce484222325ULL;
    const auto fold = [&](std::uint64_t v) {
        d ^= v;
        d *= prime;
    };
    for (const RequestRecord &r : requests) {
        fold(r.id + 1);
        fold(r.classIdx);
        fold(r.arrival);
        fold(r.enqueue);
        fold(r.admit);
        fold(r.finish);
        fold(r.retries);
        fold(static_cast<std::uint64_t>(r.outcome));
        fold(r.valid ? 1 : 0);
    }
    fold(corunDigest);
    fold(endCycle);
    fold(banksKilled);
    fold(linksDegraded);
    fold(reaffinityMoves);
    fold(killsSuppressed);
    fold(nackStorms);
    return d;
}

std::string
serveCsvHeader()
{
    return "config,class,offered,completed,shed,timeout,retries,"
           "availability,unloaded_cycles,p50_cycles,p99_cycles,"
           "p999_cycles,p50_slowdown,p99_slowdown,p999_slowdown,"
           "goodput_per_mcycle,peak_queue,banks_killed,"
           "links_degraded,reaffinity_moves,end_cycle,valid,digest";
}

namespace
{

void
appendRow(std::ostream &os, const ServeReport &r,
          const std::string &config, const ClassSummary &c)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s,%s,%u,%u,%u,%u,%" PRIu64
        ",%.4f,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
        ",%.3f,%.3f,%.3f,%.4f,%u,%u,%u,%u,%" PRIu64 ",%d,0x%016" PRIx64,
        config.c_str(), c.workload.c_str(), c.offered, c.completed,
        c.shed, c.timedOut, c.retries, c.availability,
        c.unloadedCycles, c.p50, c.p99, c.p999, c.p50Slowdown,
        c.p99Slowdown, c.p999Slowdown, r.goodputPerMcycle,
        r.peakQueueDepth, r.banksKilled, r.linksDegraded,
        r.reaffinityMoves, r.endCycle, r.allValid ? 1 : 0,
        r.digest());
    os << buf << '\n';
}

} // namespace

void
appendServeCsv(std::ostream &os, const ServeReport &report,
               const std::string &config)
{
    for (const ClassSummary &c : report.classes)
        appendRow(os, report, config, c);
    // One aggregate row so each config is a single grep away.
    ClassSummary total;
    total.workload = "total";
    total.offered = report.offered;
    total.completed = report.completed;
    total.shed = report.shed;
    total.timedOut = report.timedOut;
    total.retries = report.retries;
    total.availability = report.availability;
    total.p99Slowdown = report.worstP99Slowdown;
    appendRow(os, report, config, total);
    SIM_REQUIRE("serve", static_cast<bool>(os),
                "availability CSV write failed");
}

void
printServeReport(const ServeReport &report, const std::string &config)
{
    if (!config.empty())
        std::printf("serve config %s\n", config.c_str());
    std::printf("  %-12s %7s %5s %5s %5s %7s %6s %12s %12s %8s %8s\n",
                "class", "offered", "ok", "shed", "tmo", "retries",
                "avail", "p50(cyc)", "p99(cyc)", "p50x", "p99x");
    for (const ClassSummary &c : report.classes) {
        std::printf("  %-12s %7u %5u %5u %5u %7" PRIu64
                    " %5.1f%% %12" PRIu64 " %12" PRIu64
                    " %8.2f %8.2f\n",
                    c.workload.c_str(), c.offered, c.completed, c.shed,
                    c.timedOut, c.retries, 100.0 * c.availability,
                    c.p50, c.p99, c.p50Slowdown, c.p99Slowdown);
    }
    std::printf("  total offered %u ok %u shed %u timeout %u "
                "availability %.1f%% goodput %.3f/Mcyc "
                "worst p99 slowdown %.2fx\n",
                report.offered, report.completed, report.shed,
                report.timedOut, 100.0 * report.availability,
                report.goodputPerMcycle, report.worstP99Slowdown);
    std::printf("  faults: banks killed %u (suppressed %u) links "
                "degraded %u nack storms %u reaffinity moves %u | "
                "peak queue %u | end cycle %" PRIu64
                " | valid %s | digest 0x%016" PRIx64 "\n",
                report.banksKilled, report.killsSuppressed,
                report.linksDegraded, report.nackStorms,
                report.reaffinityMoves, report.peakQueueDepth,
                report.endCycle, report.allValid ? "yes" : "NO",
                report.digest());
}

} // namespace affalloc::serve
