#include "ds/spatial_pq.hh"

#include <algorithm>

#include "sim/log.hh"

namespace affalloc::ds
{

SpatialPriorityQueue::SpatialPriorityQueue(
    alloc::AffinityAllocator &allocator, const void *aligned_array,
    std::uint64_t num_elems, std::uint32_t num_partitions,
    std::uint32_t capacity_factor)
    : allocator_(allocator), numElems_(num_elems),
      numPartitions_(num_partitions)
{
    if (num_elems == 0 || num_partitions == 0 || capacity_factor == 0)
        SIM_FATAL("ds", "spatial priority queue: empty configuration");
    if (!allocator.arrayInfo(aligned_array))
        SIM_FATAL("ds", "spatial priority queue: aligned array is not recorded");

    capacity_ = static_cast<std::uint32_t>(
        (num_elems * capacity_factor + num_partitions - 1) /
        num_partitions);

    // Heap storage aligned to the partitioned array, exactly like the
    // FIFO spatial queue's storage (Fig. 9).
    alloc::AffineArray req;
    req.elem_size = sizeof(PqEntry);
    req.num_elem = std::uint64_t(capacity_) * num_partitions;
    req.align_to = aligned_array;
    req.align_p = 1;
    req.align_q = static_cast<int>(capacity_factor);
    storage_ = static_cast<PqEntry *>(allocator.mallocAff(req));
    sizes_.assign(num_partitions, 0);
}

SpatialPriorityQueue::~SpatialPriorityQueue()
{
    allocator_.freeAff(storage_);
}

void
SpatialPriorityQueue::siftUp(std::uint32_t p, std::uint32_t idx)
{
    while (idx > 0) {
        const std::uint32_t parent = (idx - 1) / 2;
        if (at(p, parent).priority <= at(p, idx).priority)
            break;
        std::swap(at(p, parent), at(p, idx));
        ++heapMoves_;
        idx = parent;
    }
}

void
SpatialPriorityQueue::siftDown(std::uint32_t p, std::uint32_t idx)
{
    const std::uint32_t n = sizes_[p];
    while (true) {
        const std::uint32_t l = 2 * idx + 1;
        const std::uint32_t r = 2 * idx + 2;
        std::uint32_t best = idx;
        if (l < n && at(p, l).priority < at(p, best).priority)
            best = l;
        if (r < n && at(p, r).priority < at(p, best).priority)
            best = r;
        if (best == idx)
            break;
        std::swap(at(p, best), at(p, idx));
        ++heapMoves_;
        idx = best;
    }
}

void
SpatialPriorityQueue::push(std::uint32_t id, std::uint32_t priority)
{
    const std::uint32_t p = partitionOf(id);
    if (sizes_[p] >= capacity_) {
        spills_.push_back(PqEntry{id, priority});
        ++size_;
        return;
    }
    at(p, sizes_[p]) = PqEntry{id, priority};
    siftUp(p, sizes_[p]);
    ++sizes_[p];
    ++size_;
}

bool
SpatialPriorityQueue::popLocal(std::uint32_t p, PqEntry &out)
{
    if (sizes_[p] == 0)
        return false;
    out = at(p, 0);
    --sizes_[p];
    if (sizes_[p] > 0) {
        at(p, 0) = at(p, sizes_[p]);
        siftDown(p, 0);
    }
    --size_;
    return true;
}

bool
SpatialPriorityQueue::popRelaxed(Rng &rng, PqEntry &out, int samples)
{
    if (size_ == 0)
        return false;
    // Drain spills eagerly (rare overflow path).
    if (!spills_.empty()) {
        auto it = std::min_element(spills_.begin(), spills_.end(),
                                   [](const PqEntry &a, const PqEntry &b) {
                                       return a.priority < b.priority;
                                   });
        out = *it;
        spills_.erase(it);
        --size_;
        return true;
    }
    // MultiQueues: sample sub-queues, pop the best non-empty one.
    std::uint32_t best = numPartitions_;
    for (int s = 0; s < samples; ++s) {
        const std::uint32_t p =
            static_cast<std::uint32_t>(rng.below(numPartitions_));
        if (sizes_[p] == 0)
            continue;
        if (best == numPartitions_ ||
            at(p, 0).priority < at(best, 0).priority) {
            best = p;
        }
    }
    if (best == numPartitions_) {
        // All samples empty: linear fallback keeps pop total.
        for (std::uint32_t p = 0; p < numPartitions_; ++p) {
            if (sizes_[p] != 0) {
                best = p;
                break;
            }
        }
    }
    return popLocal(best, out);
}

} // namespace affalloc::ds
