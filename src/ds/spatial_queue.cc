#include "ds/spatial_queue.hh"

#include "sim/log.hh"

namespace affalloc::ds
{

SpatialQueue::SpatialQueue(alloc::AffinityAllocator &allocator,
                           const void *aligned_array,
                           std::uint64_t num_elems,
                           std::uint32_t num_partitions,
                           std::uint32_t capacity_factor)
    : allocator_(allocator), numElems_(num_elems),
      numPartitions_(num_partitions)
{
    if (num_elems == 0 || num_partitions == 0 || capacity_factor == 0)
        SIM_FATAL("ds", "spatial queue: empty configuration");
    if (!allocator.arrayInfo(aligned_array))
        SIM_FATAL("ds", "spatial queue: aligned array is not a recorded allocation");

    capacity_ = static_cast<std::uint32_t>(
        (num_elems * capacity_factor + num_partitions - 1) /
        num_partitions);

    // Storage: Q[i] aligns to V[i / capacity_factor] (Fig. 9), i.e.
    // align_p = 1, align_q = capacity_factor in Eq. 2.
    alloc::AffineArray q_req;
    q_req.elem_size = sizeof(std::uint32_t);
    q_req.num_elem = std::uint64_t(capacity_) * num_partitions;
    q_req.align_to = aligned_array;
    q_req.align_p = 1;
    q_req.align_q = static_cast<int>(capacity_factor);
    storage_ =
        static_cast<std::uint32_t *>(allocator.mallocAff(q_req));

    // Tails: one line-padded counter pinned to each partition's bank
    // (the co-designed structure computes placement itself through
    // the low-level runtime API).
    tailSlots_.resize(num_partitions);
    for (std::uint32_t p = 0; p < num_partitions; ++p) {
        const std::uint64_t first =
            std::uint64_t(p) * num_elems / num_partitions;
        const BankId bank = allocator.bankOfElement(aligned_array, first);
        tailSlots_[p] =
            static_cast<std::uint32_t *>(allocator.allocSlotAtBank(
                64, bank));
        *tailSlots_[p] = 0;
    }
    counts_.assign(num_partitions, 0);
}

SpatialQueue::~SpatialQueue()
{
    for (auto *t : tailSlots_)
        allocator_.freeAff(t);
    if (storage_)
        allocator_.freeAff(storage_);
}

std::uint32_t
SpatialQueue::push(std::uint32_t v)
{
    const std::uint32_t p = partitionOf(v);
    std::uint32_t &tail = *tailSlots_[p];
    if (tail >= capacity_) {
        spills_.push_back(v);
        return capacity_;
    }
    const std::uint32_t idx = tail++;
    storage_[std::uint64_t(p) * capacity_ + idx] = v;
    counts_[p] = tail;
    return idx;
}

std::span<const std::uint32_t>
SpatialQueue::partition(std::uint32_t p) const
{
    return {storage_ + std::uint64_t(p) * capacity_, counts_[p]};
}

std::uint64_t
SpatialQueue::size() const
{
    std::uint64_t total = spills_.size();
    for (std::uint32_t c : counts_)
        total += c;
    return total;
}

void
SpatialQueue::clear()
{
    for (std::uint32_t p = 0; p < numPartitions_; ++p) {
        *tailSlots_[p] = 0;
        counts_[p] = 0;
    }
    spills_.clear();
}

} // namespace affalloc::ds
